package pramsim_test

import (
	"strings"
	"testing"

	pramsim "repro"
	"repro/internal/workloads"
)

// TestFacadeConstructors builds every machine through the public API and
// runs the same trivial program on each.
func TestFacadeConstructors(t *testing.T) {
	const n = 16
	backends := []pramsim.Backend{
		pramsim.NewIdeal(n, n*n, pramsim.CRCWPriority),
		pramsim.NewMPC(n, pramsim.MPCConfig{}),
		pramsim.NewDMMPC(n, pramsim.DMMPCConfig{}),
		pramsim.NewMOT2D(n, pramsim.MOTConfig{}),
		pramsim.NewLuccio(n, pramsim.MOTConfig{}),
		pramsim.NewSchuster(n, pramsim.SchusterConfig{}),
		pramsim.NewHashed(n, pramsim.HashedConfig{}),
	}
	for _, b := range backends {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			rep := pramsim.Run(b, func(p *pramsim.Proc) {
				p.Write(p.ID(), pramsim.Word(p.ID()*2))
			})
			if err := rep.Err(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if got := b.ReadCell(i); got != pramsim.Word(i*2) {
					t.Fatalf("cell %d = %d, want %d", i, got, i*2)
				}
			}
		})
	}
}

func TestFacadeRunEach(t *testing.T) {
	b := pramsim.NewDMMPC(8, pramsim.DMMPCConfig{})
	rep := pramsim.RunEach(b, func(id int) pramsim.Program {
		return func(p *pramsim.Proc) {
			p.Write(id, pramsim.Word(100+id))
		}
	})
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if b.ReadCell(3) != 103 {
		t.Errorf("cell 3 = %d", b.ReadCell(3))
	}
}

func TestFacadeRunWorkload(t *testing.T) {
	w := workloads.PrefixSum(16, 7)
	b := pramsim.NewDMMPC(w.Procs, pramsim.DMMPCConfig{Mode: w.Mode})
	rep, err := pramsim.RunWorkload(w, b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps == 0 || rep.Phases == 0 {
		t.Errorf("degenerate report: %+v", rep)
	}
}

func TestFacadeNamesDescriptive(t *testing.T) {
	checks := map[string]pramsim.Backend{
		"DMMPC": pramsim.NewDMMPC(8, pramsim.DMMPCConfig{}),
		"2DMOT": pramsim.NewMOT2D(8, pramsim.MOTConfig{}),
		"MPC":   pramsim.NewMPC(8, pramsim.MPCConfig{}),
	}
	for frag, b := range checks {
		if !strings.Contains(b.Name(), frag) {
			t.Errorf("name %q lacks %q", b.Name(), frag)
		}
	}
}

// TestFacadeModesExported sanity-checks the re-exported constants map to
// distinct modes.
func TestFacadeModesExported(t *testing.T) {
	modes := []pramsim.Mode{pramsim.EREW, pramsim.CREW, pramsim.CRCWPriority,
		pramsim.CRCWCommon, pramsim.CRCWArbitrary}
	seen := map[pramsim.Mode]bool{}
	for _, m := range modes {
		if seen[m] {
			t.Fatalf("duplicate mode %v", m)
		}
		seen[m] = true
	}
}
