// Package pramsim is the public API of the repository: deterministic P-RAM
// simulation with constant redundancy (Hornick & Preparata, SPAA 1989 /
// Information and Computation 92:81–96, 1991), together with every machine
// model the paper defines or compares against.
//
// A P-RAM program is an ordinary Go function run once per processor (one
// goroutine each); the three primitives Read, Write and Sync are P-RAM step
// boundaries. The same program runs unchanged on any Backend:
//
//	ideal   — the abstract P-RAM itself (unit-time steps)
//	MPC     — Upfal–Wigderson '87 majority rule, M = n, r = Θ(log m)
//	DMMPC   — the paper's Theorem 2: M = n^(1+ε), r = Θ(1), O(log n) phases
//	MOT2D   — the paper's Theorem 3: √M×√M mesh of trees, modules at the
//	          leaves, r = Θ(1), O(log²n/log log n) network cycles
//	Luccio  — Luccio et al. '90 mesh of trees, modules at the roots,
//	          r = Θ(log m) (the baseline Theorem 3 improves on)
//	Schuster— Rabin-IDA dispersed memory, constant SPACE blowup,
//	          Θ(log n) work per access
//	Hashed  — probabilistic universal-hashing baseline, r = 1, fast on
//	          random traffic, Θ(n) worst case
//
// Quickstart:
//
//	b := pramsim.NewMOT2D(64, pramsim.MOTConfig{})
//	rep := pramsim.Run(b, func(p *pramsim.Proc) {
//	    v := p.Read(p.ID())
//	    p.Write(p.ID()+64, v*2)
//	})
//	fmt.Println(rep.SimTime, "network cycles")
//
// The mesh-of-trees machines route packets on multiple OS cores when
// MOTConfig.Parallelism > 1 (or PRAMSIM_PARALLEL is set): phases are
// partitioned into tree-connectivity components and advanced on a worker
// pool, bit-for-bit identical to the serial router — simulated time,
// grants and statistics never depend on the setting.
package pramsim

import (
	"repro/internal/core"
	"repro/internal/hashsim"
	"repro/internal/ida"
	"repro/internal/ideal"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/mpc"
	"repro/internal/workloads"
)

// Core vocabulary, re-exported from the internal model.
type (
	// Word is the unit of shared memory (64-bit).
	Word = model.Word
	// Addr indexes the shared address space.
	Addr = model.Addr
	// Mode is the P-RAM conflict convention.
	Mode = model.Mode
	// Backend is any machine that can execute P-RAM steps.
	Backend = model.Backend
	// Batch is one P-RAM step's worth of requests (for direct step
	// driving; most users run Programs instead).
	Batch = model.Batch
	// Request is one processor's action in a Batch.
	Request = model.Request
	// StepReport is the cost report of one executed step.
	StepReport = model.StepReport
)

// Conflict conventions.
const (
	EREW          = model.EREW
	CREW          = model.CREW
	CRCWPriority  = model.CRCWPriority
	CRCWCommon    = model.CRCWCommon
	CRCWArbitrary = model.CRCWArbitrary
)

// Program/processor surface, re-exported from the execution harness.
type (
	// Program is the per-processor code of a P-RAM program.
	Program = machine.Program
	// Proc is a running processor's handle (ID, N, Read, Write, Sync).
	Proc = machine.Proc
	// RunReport aggregates the simulated cost of a full program run.
	RunReport = machine.RunReport
)

// Machine configurations.
type (
	// MPCConfig tunes the Upfal–Wigderson MPC baseline.
	MPCConfig = mpc.Config
	// DMMPCConfig tunes the paper's Theorem 2 machine.
	DMMPCConfig = core.Config
	// MOTConfig tunes the mesh-of-trees machines (Theorem 3 and the
	// Luccio et al. baseline).
	MOTConfig = core.MOTConfig
	// SchusterConfig tunes the IDA-based memory.
	SchusterConfig = ida.Config
	// HashedConfig tunes the probabilistic baseline.
	HashedConfig = hashsim.Config
)

// Workload is a self-verifying P-RAM program with sizing and an oracle.
type Workload = workloads.Workload

// NewIdeal returns the abstract P-RAM: n processors, m cells, unit-time
// steps under the given conflict mode.
func NewIdeal(n, m int, mode Mode) Backend { return ideal.New(n, m, mode) }

// NewMPC returns the Upfal–Wigderson MPC baseline (M = n modules,
// r = Θ(log m) copies).
func NewMPC(n int, cfg MPCConfig) Backend { return mpc.New(n, cfg) }

// NewDMMPC returns the paper's Theorem 2 machine: M = n^(1+ε) modules on a
// complete bipartite interconnect, constant redundancy, O(log n) phases
// per step.
func NewDMMPC(n int, cfg DMMPCConfig) Backend { return core.NewDMMPC(n, cfg) }

// NewMOT2D returns the paper's Theorem 3 machine: a mesh of trees with
// memory modules at the leaves, constant redundancy,
// O(log²n/log log n)-cycle steps.
func NewMOT2D(n int, cfg MOTConfig) Backend { return core.NewMOT2D(n, cfg) }

// NewLuccio returns the Luccio et al. (1990) baseline: mesh of trees with
// modules at the root processors, Θ(log m) redundancy.
func NewLuccio(n int, cfg MOTConfig) Backend { return core.NewLuccio(n, cfg) }

// NewSchuster returns the Rabin-IDA memory of Schuster (1987): constant
// storage blowup, Θ(log n) field work per access.
func NewSchuster(n int, cfg SchusterConfig) Backend { return ida.NewMemory(n, cfg) }

// NewHashed returns the probabilistic universal-hashing baseline.
func NewHashed(n int, cfg HashedConfig) Backend { return hashsim.New(n, cfg) }

// Run executes program on every processor of b and blocks until all halt.
func Run(b Backend, program Program) *RunReport {
	return machine.New(b).Run(program)
}

// RunEach executes a per-processor program selected by pick(id).
func RunEach(b Backend, pick func(id int) Program) *RunReport {
	return machine.New(b).RunEach(pick)
}

// RunWorkload executes a self-verifying workload from the standard library
// of P-RAM kernels (see package repro/internal/workloads for constructors).
func RunWorkload(w Workload, b Backend) (*RunReport, error) {
	return workloads.RunOn(w, b)
}
