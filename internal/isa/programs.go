package isa

// Library of P-RAM assembly programs — the classical kernels written in
// the formal RAM model, used by tests, cmd/pramasm demos and the assembly
// example. Each constant assembles with Assemble and runs SPMD.

// ProgTreeSum reduces cells [0,n) into cell 0 by a balanced binary tree
// (EREW, 3 shared ops per round for actives and passives alike).
const ProgTreeSum = `
        id     r1            ; r1 = my id
        nprocs r2            ; r2 = n
        loadi  r3, 1         ; r3 = stride
round:  slt    r4, r3, r2
        beqz   r4, done
        loadi  r5, 2
        mul    r5, r5, r3    ; 2*stride
        mod    r6, r1, r5
        add    r7, r1, r3    ; partner = id + stride
        slt    r8, r7, r2
        seq    r9, r6, r0    ; id % 2stride == 0
        and    r9, r9, r8
        beqz   r9, passive
        read   r10, (r1)
        read   r11, (r7)
        add    r10, r10, r11
        write  (r1), r10
        jmp    next
passive: sync
        sync
        sync
next:   loadi  r5, 2
        mul    r3, r3, r5
        jmp    round
done:   halt
`

// ProgPrefixSum computes inclusive prefix sums of cells [0,n) by
// Hillis–Steele doubling with a scratch buffer at [n,2n) (CREW). The
// result is normalized back into [0,n).
const ProgPrefixSum = `
        id     r1            ; id
        nprocs r2            ; n
        loadi  r3, 1         ; stride
        mov    r4, r0        ; src base = 0
        mov    r5, r2        ; dst base = n
        mov    r15, r0       ; rounds parity
loop:   slt    r6, r3, r2
        beqz   r6, fixup
        add    r7, r4, r1    ; src + id
        read   r8, (r7)      ; v = buf[src+id]
        slt    r9, r1, r3    ; id < stride ?
        bnez   r9, nosum
        sub    r10, r1, r3
        add    r10, r4, r10
        read   r11, (r10)    ; buf[src+id-stride]
        add    r8, r8, r11
        jmp    wr
nosum:  sync                 ; keep lockstep with the readers
wr:     add    r12, r5, r1
        write  (r12), r8     ; buf[dst+id] = v
        ; swap src/dst
        mov    r13, r4
        mov    r4, r5
        mov    r5, r13
        loadi  r6, 1
        xor    r15, r15, r6  ; flip parity
        loadi  r6, 2
        mul    r3, r3, r6
        jmp    loop
fixup:  beqz   r15, done     ; even rounds: result already in [0,n)
        add    r7, r2, r1
        read   r8, (r7)
        write  (r1), r8
done:   halt
`

// ProgMaxDoubling finds the maximum of cells [0,n) into cell 0 by the
// same tree schedule as ProgTreeSum, keeping the larger of each pair
// (EREW).
const ProgMaxDoubling = `
        id     r1
        nprocs r2
        loadi  r3, 1
round:  slt    r4, r3, r2
        beqz   r4, done
        loadi  r5, 2
        mul    r5, r5, r3
        mod    r6, r1, r5
        add    r7, r1, r3
        slt    r8, r7, r2
        seq    r9, r6, r0
        and    r9, r9, r8
        beqz   r9, passive
        read   r10, (r1)
        read   r11, (r7)
        slt    r12, r10, r11  ; mine < theirs ?
        beqz   r12, keep
        mov    r10, r11
keep:   write  (r1), r10
        jmp    next
passive: sync
        sync
        sync
next:   loadi  r5, 2
        mul    r3, r3, r5
        jmp    round
done:   halt
`

// Programs lists the library for enumeration in tools and tests.
var Programs = map[string]string{
	"treesum":   ProgTreeSum,
	"prefixsum": ProgPrefixSum,
	"max":       ProgMaxDoubling,
}
