package isa

import (
	"strings"
	"testing"
)

// FuzzAssemble: the assembler must never panic — arbitrary text yields
// either a program or an *AsmError.
func FuzzAssemble(f *testing.F) {
	f.Add(ProgTreeSum)
	f.Add(ProgPrefixSum)
	f.Add("loadi r1, 5\nwrite (r0), r1\nhalt")
	f.Add("label:::")
	f.Add("jmp jmp jmp")
	f.Add("read r1, (r999)")
	f.Add(strings.Repeat("a: ", 100))
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src)
		if err == nil && prog == nil {
			t.Fatal("nil program without error")
		}
		if err != nil {
			if _, ok := err.(*AsmError); !ok {
				t.Fatalf("non-AsmError failure: %v", err)
			}
		}
	})
}
