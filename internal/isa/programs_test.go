package isa

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ideal"
	"repro/internal/machine"
	"repro/internal/model"
)

func TestAllLibraryProgramsAssemble(t *testing.T) {
	for name, src := range Programs {
		if _, err := Assemble(src); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func runAsm(t *testing.T, src string, b model.Backend) *machine.RunReport {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	rep := machine.New(b).Run(Bind(prog, VMConfig{}))
	if err := rep.Err(); err != nil {
		t.Fatalf("%s: %v", b.Name(), err)
	}
	return rep
}

func TestProgPrefixSum(t *testing.T) {
	const n = 16
	rng := rand.New(rand.NewSource(5))
	input := make([]model.Word, n)
	want := make([]model.Word, n)
	var acc model.Word
	for i := range input {
		input[i] = model.Word(rng.Intn(100))
		acc += input[i]
		want[i] = acc
	}
	for _, mk := range []func() model.Backend{
		func() model.Backend { return ideal.New(n, 2*n, model.CREW) },
		func() model.Backend { return core.NewDMMPC(n, core.Config{Mode: model.CREW}) },
	} {
		b := mk()
		b.LoadCells(0, input)
		runAsm(t, ProgPrefixSum, b)
		for i := 0; i < n; i++ {
			if got := b.ReadCell(i); got != want[i] {
				t.Errorf("%s: prefix[%d] = %d, want %d", b.Name(), i, got, want[i])
			}
		}
	}
}

func TestProgPrefixSumOddRoundCount(t *testing.T) {
	// n = 8 → 3 doubling rounds (odd): exercises the fixup path.
	const n = 8
	input := []model.Word{1, 2, 3, 4, 5, 6, 7, 8}
	b := ideal.New(n, 2*n, model.CREW)
	b.LoadCells(0, input)
	runAsm(t, ProgPrefixSum, b)
	acc := model.Word(0)
	for i, v := range input {
		acc += v
		if got := b.ReadCell(i); got != acc {
			t.Errorf("prefix[%d] = %d, want %d", i, got, acc)
		}
	}
}

func TestProgMaxDoubling(t *testing.T) {
	const n = 32
	rng := rand.New(rand.NewSource(9))
	input := make([]model.Word, n)
	var want model.Word
	for i := range input {
		input[i] = model.Word(rng.Intn(10000))
		if input[i] > want {
			want = input[i]
		}
	}
	b := ideal.New(n, n, model.EREW)
	b.LoadCells(0, input)
	rep := runAsm(t, ProgMaxDoubling, b)
	if got := b.ReadCell(0); got != want {
		t.Errorf("max = %d, want %d", got, want)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("EREW violated: %v", rep.Violations[0])
	}
}

func TestProgTreeSumEquivalentOnMOT(t *testing.T) {
	const n = 8
	input := []model.Word{3, 1, 4, 1, 5, 9, 2, 6}
	b := core.NewMOT2D(n, core.MOTConfig{Mode: model.EREW})
	b.LoadCells(0, input)
	runAsm(t, ProgTreeSum, b)
	if got := b.ReadCell(0); got != 31 {
		t.Errorf("sum on 2DMOT = %d, want 31", got)
	}
}
