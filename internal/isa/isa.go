// Package isa implements the formal P-RAM processor model: each processor
// is a RAM executing instructions fetched from a private program (Fortune &
// Wyllie 1978 — the definition the paper's Section 1 adopts). The package
// provides a small word-RAM assembly language, a two-pass assembler, and a
// VM that binds an assembled program to the execution harness, so P-RAM
// algorithms can be written as actual RAM programs rather than Go closures
// and still run on every simulated machine.
//
// Instruction set (registers r0..r15; `(rX)` is an indirect address):
//
//	loadi r, imm        r ← imm
//	mov   r, s          r ← s
//	add|sub|mul|div|mod r, s, t
//	and|or|xor|shl|shr  r, s, t
//	slt   r, s, t       r ← 1 if s < t else 0
//	seq   r, s, t       r ← 1 if s = t else 0
//	id    r             r ← processor id
//	nprocs r            r ← processor count
//	load  r, (s)        r ← private[s]
//	store (s), r        private[s] ← r
//	read  r, (s)        r ← SHARED[s]     (one P-RAM step)
//	write (s), r        SHARED[s] ← r     (one P-RAM step)
//	sync                idle P-RAM step
//	jmp  label
//	beqz r, label       branch if r = 0
//	bnez r, label       branch if r ≠ 0
//	halt
//
// Comments run from ';' or '#' to end of line; labels are `name:` on their
// own or before an instruction. Local (non-memory) instructions are free,
// matching the harness convention that a step boundary is a shared-memory
// access.
package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Op enumerates the instruction opcodes.
type Op uint8

// Opcodes.
const (
	OpLoadI Op = iota
	OpMov
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpSlt
	OpSeq
	OpID
	OpNProcs
	OpLoad
	OpStore
	OpRead
	OpWrite
	OpSync
	OpJmp
	OpBeqz
	OpBnez
	OpHalt
)

// NumRegs is the register-file size.
const NumRegs = 16

// Instr is one decoded instruction.
type Instr struct {
	Op      Op
	A, B, C int   // register operands
	Imm     int64 // immediate (loadi)
	Target  int   // resolved branch target (jmp/beqz/bnez)
	Line    int   // source line, for diagnostics
}

// Program is an assembled processor program.
type Program struct {
	Instrs []Instr
	Labels map[string]int
	Source string
}

// AsmError reports an assembly failure with its source line.
type AsmError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *AsmError) Error() string { return fmt.Sprintf("isa: line %d: %s", e.Line, e.Msg) }

// Assemble parses and resolves src into a Program.
func Assemble(src string) (*Program, error) {
	p := &Program{Labels: map[string]int{}, Source: src}
	type patch struct {
		instr int
		label string
		line  int
	}
	var patches []patch

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Leading labels (possibly several).
		for {
			if i := strings.Index(line, ":"); i >= 0 && !strings.ContainsAny(line[:i], " \t,()") {
				label := strings.TrimSpace(line[:i])
				if label == "" {
					return nil, &AsmError{ln + 1, "empty label"}
				}
				if _, dup := p.Labels[label]; dup {
					return nil, &AsmError{ln + 1, "duplicate label " + label}
				}
				p.Labels[label] = len(p.Instrs)
				line = strings.TrimSpace(line[i+1:])
				if line == "" {
					break
				}
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
		mn := strings.ToLower(fields[0])
		args := fields[1:]
		in := Instr{Line: ln + 1}
		reg := func(s string) (int, error) {
			s = strings.ToLower(strings.TrimSpace(s))
			if !strings.HasPrefix(s, "r") {
				return 0, &AsmError{ln + 1, "expected register, got " + s}
			}
			k, err := strconv.Atoi(s[1:])
			if err != nil || k < 0 || k >= NumRegs {
				return 0, &AsmError{ln + 1, "bad register " + s}
			}
			return k, nil
		}
		ind := func(s string) (int, error) {
			s = strings.TrimSpace(s)
			if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
				return 0, &AsmError{ln + 1, "expected (rX), got " + s}
			}
			return reg(s[1 : len(s)-1])
		}
		need := func(k int) error {
			if len(args) != k {
				return &AsmError{ln + 1, fmt.Sprintf("%s wants %d operands, got %d", mn, k, len(args))}
			}
			return nil
		}
		var err error
		switch mn {
		case "loadi":
			if err = need(2); err == nil {
				if in.A, err = reg(args[0]); err == nil {
					in.Imm, err = strconv.ParseInt(args[1], 0, 64)
					if err != nil {
						err = &AsmError{ln + 1, "bad immediate " + args[1]}
					}
				}
			}
			in.Op = OpLoadI
		case "mov":
			in.Op = OpMov
			err = twoRegs(&in, args, need, reg)
		case "add", "sub", "mul", "div", "mod", "and", "or", "xor", "shl", "shr", "slt", "seq":
			in.Op = map[string]Op{"add": OpAdd, "sub": OpSub, "mul": OpMul,
				"div": OpDiv, "mod": OpMod, "and": OpAnd, "or": OpOr,
				"xor": OpXor, "shl": OpShl, "shr": OpShr, "slt": OpSlt, "seq": OpSeq}[mn]
			err = threeRegs(&in, args, need, reg)
		case "id":
			in.Op = OpID
			if err = need(1); err == nil {
				in.A, err = reg(args[0])
			}
		case "nprocs":
			in.Op = OpNProcs
			if err = need(1); err == nil {
				in.A, err = reg(args[0])
			}
		case "load":
			in.Op = OpLoad
			if err = need(2); err == nil {
				if in.A, err = reg(args[0]); err == nil {
					in.B, err = ind(args[1])
				}
			}
		case "store":
			in.Op = OpStore
			if err = need(2); err == nil {
				if in.B, err = ind(args[0]); err == nil {
					in.A, err = reg(args[1])
				}
			}
		case "read":
			in.Op = OpRead
			if err = need(2); err == nil {
				if in.A, err = reg(args[0]); err == nil {
					in.B, err = ind(args[1])
				}
			}
		case "write":
			in.Op = OpWrite
			if err = need(2); err == nil {
				if in.B, err = ind(args[0]); err == nil {
					in.A, err = reg(args[1])
				}
			}
		case "sync":
			in.Op = OpSync
			err = need(0)
		case "jmp":
			in.Op = OpJmp
			if err = need(1); err == nil {
				patches = append(patches, patch{len(p.Instrs), args[0], ln + 1})
			}
		case "beqz", "bnez":
			if mn == "beqz" {
				in.Op = OpBeqz
			} else {
				in.Op = OpBnez
			}
			if err = need(2); err == nil {
				if in.A, err = reg(args[0]); err == nil {
					patches = append(patches, patch{len(p.Instrs), args[1], ln + 1})
				}
			}
		case "halt":
			in.Op = OpHalt
			err = need(0)
		default:
			err = &AsmError{ln + 1, "unknown mnemonic " + mn}
		}
		if err != nil {
			return nil, err
		}
		p.Instrs = append(p.Instrs, in)
	}
	for _, pt := range patches {
		tgt, ok := p.Labels[pt.label]
		if !ok {
			return nil, &AsmError{pt.line, "undefined label " + pt.label}
		}
		p.Instrs[pt.instr].Target = tgt
	}
	return p, nil
}

func twoRegs(in *Instr, args []string, need func(int) error, reg func(string) (int, error)) error {
	if err := need(2); err != nil {
		return err
	}
	var err error
	if in.A, err = reg(args[0]); err != nil {
		return err
	}
	in.B, err = reg(args[1])
	return err
}

func threeRegs(in *Instr, args []string, need func(int) error, reg func(string) (int, error)) error {
	if err := need(3); err != nil {
		return err
	}
	var err error
	if in.A, err = reg(args[0]); err != nil {
		return err
	}
	if in.B, err = reg(args[1]); err != nil {
		return err
	}
	in.C, err = reg(args[2])
	return err
}
