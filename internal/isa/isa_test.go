package isa

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ideal"
	"repro/internal/machine"
	"repro/internal/model"
)

// treeSumAsm is the canonical EREW tree reduction written in P-RAM
// assembly: cell i starts with value i+1; cell 0 ends with n(n+1)/2.
// All processors execute identical instruction sequences (3 shared ops per
// round, actives doing read/read/write, passives sync/sync/sync), keeping
// lockstep.
const treeSumAsm = `
        id     r1            ; r1 = my id
        nprocs r2            ; r2 = n
        loadi  r3, 1         ; r3 = stride
round:  slt    r4, r3, r2    ; stride < n ?
        beqz   r4, done
        ; active iff id % (2*stride) == 0 and id+stride < n
        loadi  r5, 2
        mul    r5, r5, r3    ; r5 = 2*stride
        mod    r6, r1, r5    ; id % 2stride
        add    r7, r1, r3    ; id + stride
        slt    r8, r7, r2    ; (id+stride) < n
        seq    r9, r6, r0    ; id%2stride == 0  (r0 is always 0)
        and    r9, r9, r8
        beqz   r9, passive
        read   r10, (r1)     ; a = S[id]
        read   r11, (r7)     ; b = S[id+stride]
        add    r10, r10, r11
        write  (r1), r10     ; S[id] = a+b
        jmp    next
passive: sync
        sync
        sync
next:   loadi  r5, 2
        mul    r3, r3, r5    ; stride *= 2
        jmp    round
done:   halt
`

func TestAssembleTreeSum(t *testing.T) {
	p, err := Assemble(treeSumAsm)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) == 0 {
		t.Fatal("no instructions")
	}
	for _, l := range []string{"round", "done", "passive", "next"} {
		if _, ok := p.Labels[l]; !ok {
			t.Errorf("label %s missing", l)
		}
	}
}

func TestTreeSumRunsOnIdealAndDMMPC(t *testing.T) {
	prog, err := Assemble(treeSumAsm)
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	vals := make([]model.Word, n)
	for i := range vals {
		vals[i] = model.Word(i + 1)
	}
	backends := []model.Backend{
		ideal.New(n, n, model.EREW),
		core.NewDMMPC(n, core.Config{Mode: model.EREW}),
	}
	for _, b := range backends {
		b.LoadCells(0, vals)
		rep := machine.New(b).Run(Bind(prog, VMConfig{}))
		if err := rep.Err(); err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if got := b.ReadCell(0); got != n*(n+1)/2 {
			t.Errorf("%s: sum = %d, want %d", b.Name(), got, n*(n+1)/2)
		}
	}
}

func TestArithmeticOps(t *testing.T) {
	src := `
        loadi r1, 10
        loadi r2, 3
        add   r3, r1, r2
        sub   r4, r1, r2
        mul   r5, r1, r2
        div   r6, r1, r2
        mod   r7, r1, r2
        and   r8, r1, r2
        or    r9, r1, r2
        xor   r10, r1, r2
        shl   r11, r1, r2
        shr   r12, r1, r2
        slt   r13, r2, r1
        seq   r14, r1, r1
        write (r0), r3    ; keep the harness engaged
        halt`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	b := ideal.New(1, 4, model.CREW)
	var vm *VM
	machine.New(b).Run(func(p *machine.Proc) {
		vm = &VM{prog: prog, proc: p, priv: make([]int64, 16), fuel: 1000}
		vm.Run()
	})
	want := map[int]int64{3: 13, 4: 7, 5: 30, 6: 3, 7: 1, 8: 2, 9: 11,
		10: 9, 11: 80, 12: 1, 13: 1, 14: 1}
	for reg, v := range want {
		if vm.Reg(reg) != v {
			t.Errorf("r%d = %d, want %d", reg, vm.Reg(reg), v)
		}
	}
}

func TestPrivateMemory(t *testing.T) {
	src := `
        loadi r1, 42
        loadi r2, 7
        store (r2), r1
        load  r3, (r2)
        write (r0), r3
        halt`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	b := ideal.New(1, 2, model.CREW)
	machine.New(b).Run(Bind(prog, VMConfig{PrivSize: 16}))
	if got := b.ReadCell(0); got != 42 {
		t.Errorf("private roundtrip = %d, want 42", got)
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{"bogus r1, r2", "unknown mnemonic"},
		{"add r1, r2", "wants 3 operands"},
		{"loadi r99, 5", "bad register"},
		{"loadi r1, xyz", "bad immediate"},
		{"jmp nowhere", "undefined label"},
		{"x: loadi r1, 1\nx: halt", "duplicate label"},
		{"load r1, r2", "expected (rX)"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("src %q: err = %v, want fragment %q", c.src, err, c.frag)
		}
	}
}

func TestFuelExhaustionIsIsolated(t *testing.T) {
	prog, err := Assemble("spin: jmp spin")
	if err != nil {
		t.Fatal(err)
	}
	b := ideal.New(2, 4, model.CREW)
	rep := machine.New(b).RunEach(func(id int) machine.Program {
		if id == 0 {
			return Bind(prog, VMConfig{Fuel: 100})
		}
		return func(p *machine.Proc) { p.Write(1, 5) }
	})
	if len(rep.Panics) != 1 || !strings.Contains(rep.Panics[0].Error(), "fuel exhausted") {
		t.Errorf("runaway program not caught: %v", rep.Panics)
	}
	if b.ReadCell(1) != 5 {
		t.Error("healthy processor was disturbed")
	}
}

func TestDivisionByZeroCaught(t *testing.T) {
	prog, err := Assemble("loadi r1, 4\ndiv r2, r1, r0\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	b := ideal.New(1, 2, model.CREW)
	rep := machine.New(b).Run(Bind(prog, VMConfig{}))
	if len(rep.Panics) != 1 || !strings.Contains(rep.Panics[0].Error(), "division by zero") {
		t.Errorf("div-by-zero not caught: %v", rep.Panics)
	}
}

func TestPrivateOutOfRangeCaught(t *testing.T) {
	prog, err := Assemble("loadi r1, 9999999\nload r2, (r1)\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	b := ideal.New(1, 2, model.CREW)
	rep := machine.New(b).Run(Bind(prog, VMConfig{PrivSize: 8}))
	if len(rep.Panics) != 1 || !strings.Contains(rep.Panics[0].Error(), "private address") {
		t.Errorf("oob not caught: %v", rep.Panics)
	}
}

func TestCommentsAndLabelsOnOwnLines(t *testing.T) {
	src := `
; standalone comment
start:
        loadi r1, 1   # trailing comment
        write (r0), r1
        halt
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Labels["start"] != 0 {
		t.Errorf("label start = %d, want 0", prog.Labels["start"])
	}
}
