package isa

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/model"
)

// DefaultFuel caps executed instructions per processor; exceeding it is a
// runaway program (reported as a processor panic by the harness).
const DefaultFuel = 1 << 22

// DefaultPrivSize is the private RAM size per processor.
const DefaultPrivSize = 1 << 12

// VMConfig tunes a bound program.
type VMConfig struct {
	// PrivSize is the private memory size in words (default 4096).
	PrivSize int
	// Fuel is the instruction budget (default DefaultFuel).
	Fuel int64
}

// Bind turns an assembled program into a machine.Program: every processor
// runs its own VM instance over the same code, with private registers and
// private RAM, exactly the P-RAM's n identical RAMs.
func Bind(p *Program, cfg VMConfig) machine.Program {
	if cfg.PrivSize == 0 {
		cfg.PrivSize = DefaultPrivSize
	}
	if cfg.Fuel == 0 {
		cfg.Fuel = DefaultFuel
	}
	return func(proc *machine.Proc) {
		vm := &VM{
			prog: p,
			proc: proc,
			priv: make([]int64, cfg.PrivSize),
			fuel: cfg.Fuel,
		}
		vm.Run()
	}
}

// VM executes one processor's instance of a program.
type VM struct {
	prog *Program
	proc *machine.Proc
	regs [NumRegs]int64
	priv []int64
	pc   int
	fuel int64

	// Executed counts retired instructions (for tests/diagnostics).
	Executed int64
}

// Reg returns a register value (diagnostics).
func (vm *VM) Reg(i int) int64 { return vm.regs[i] }

// Run executes until halt, end-of-program, or fuel exhaustion (which
// panics — the harness converts it to a reported processor failure).
func (vm *VM) Run() {
	for vm.pc < len(vm.prog.Instrs) {
		if vm.fuel--; vm.fuel < 0 {
			panic(fmt.Sprintf("isa: fuel exhausted at pc=%d (line %d)",
				vm.pc, vm.prog.Instrs[vm.pc].Line))
		}
		in := vm.prog.Instrs[vm.pc]
		vm.pc++
		vm.Executed++
		r := &vm.regs
		switch in.Op {
		case OpLoadI:
			r[in.A] = in.Imm
		case OpMov:
			r[in.A] = r[in.B]
		case OpAdd:
			r[in.A] = r[in.B] + r[in.C]
		case OpSub:
			r[in.A] = r[in.B] - r[in.C]
		case OpMul:
			r[in.A] = r[in.B] * r[in.C]
		case OpDiv:
			if r[in.C] == 0 {
				panic(fmt.Sprintf("isa: division by zero at line %d", in.Line))
			}
			r[in.A] = r[in.B] / r[in.C]
		case OpMod:
			if r[in.C] == 0 {
				panic(fmt.Sprintf("isa: modulo by zero at line %d", in.Line))
			}
			r[in.A] = r[in.B] % r[in.C]
		case OpAnd:
			r[in.A] = r[in.B] & r[in.C]
		case OpOr:
			r[in.A] = r[in.B] | r[in.C]
		case OpXor:
			r[in.A] = r[in.B] ^ r[in.C]
		case OpShl:
			r[in.A] = r[in.B] << uint(r[in.C]&63)
		case OpShr:
			r[in.A] = r[in.B] >> uint(r[in.C]&63)
		case OpSlt:
			r[in.A] = bool2int(r[in.B] < r[in.C])
		case OpSeq:
			r[in.A] = bool2int(r[in.B] == r[in.C])
		case OpID:
			r[in.A] = int64(vm.proc.ID())
		case OpNProcs:
			r[in.A] = int64(vm.proc.N())
		case OpLoad:
			r[in.A] = vm.priv[vm.privAddr(r[in.B], in.Line)]
		case OpStore:
			vm.priv[vm.privAddr(r[in.B], in.Line)] = r[in.A]
		case OpRead:
			r[in.A] = vm.proc.Read(model.Addr(r[in.B]))
		case OpWrite:
			vm.proc.Write(model.Addr(r[in.B]), r[in.A])
		case OpSync:
			vm.proc.Sync()
		case OpJmp:
			vm.pc = in.Target
		case OpBeqz:
			if r[in.A] == 0 {
				vm.pc = in.Target
			}
		case OpBnez:
			if r[in.A] != 0 {
				vm.pc = in.Target
			}
		case OpHalt:
			return
		default:
			panic(fmt.Sprintf("isa: bad opcode %d at line %d", in.Op, in.Line))
		}
	}
}

func (vm *VM) privAddr(a int64, line int) int {
	if a < 0 || a >= int64(len(vm.priv)) {
		panic(fmt.Sprintf("isa: private address %d out of [0,%d) at line %d",
			a, len(vm.priv), line))
	}
	return int(a)
}

func bool2int(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
