package vlsi

import (
	"math"
	"testing"
)

func TestMOTAreaGrowth(t *testing.T) {
	// Doubling the side quadruples the leaf count; area must grow a bit
	// faster (the log² wiring term) but far less than 8×.
	a1 := MOTArea(256, 1)
	a2 := MOTArea(512, 1)
	if a2 <= 4*a1 {
		t.Errorf("area ratio %.2f ≤ 4: wiring term missing", a2/a1)
	}
	if a2 >= 8*a1 {
		t.Errorf("area ratio %.2f ≥ 8: super-polylog blowup", a2/a1)
	}
}

func TestMOTAreaTinySide(t *testing.T) {
	if MOTArea(1, 5) != 5 {
		t.Error("degenerate side mishandled")
	}
}

func TestSimulatorAreaLinearAtLogSquaredGranule(t *testing.T) {
	// The paper's claim: g = Ω(log²n) ⇒ area O(m). Check the ratio
	// area/(r·m) stays bounded as m grows with g = log²n.
	const r = 7
	var prevRatio float64
	for _, n := range []int{1 << 8, 1 << 10, 1 << 12, 1 << 14} {
		m := n * n
		g := AreaOptimalGranule(n)
		ratio := SimulatorArea(m, g, r) / (r * float64(m))
		if ratio > 3 {
			t.Errorf("n=%d: area ratio %.2f not O(1)", n, ratio)
		}
		if prevRatio != 0 && ratio > prevRatio*1.5 {
			t.Errorf("ratio growing: %v -> %v", prevRatio, ratio)
		}
		prevRatio = ratio
		if !IsAreaLinear(m, g, r, 3) {
			t.Errorf("n=%d: IsAreaLinear false at slack 3", n)
		}
	}
}

func TestSimulatorAreaBlowsUpAtUnitGranule(t *testing.T) {
	// g = 1 (one cell per module): the wiring term dominates, area is
	// ω(m) — the reason the paper keeps granules "not exceedingly small".
	n := 1 << 12
	m := n * n
	if IsAreaLinear(m, 1, 7, 3) {
		t.Error("unit granule should NOT be area-linear at slack 3")
	}
	if SimulatorArea(m, 1, 7) <= SimulatorArea(m, AreaOptimalGranule(n), 7) {
		t.Error("smaller granule must cost more area")
	}
}

func TestModuleShapes(t *testing.T) {
	mpc := MPCModule(1<<20, 1<<10) // m/n = 1024 cells per module
	if mpc.Area != 1024 {
		t.Errorf("MPC module area = %v", mpc.Area)
	}
	if mpc.Bandwidth != 1 {
		t.Errorf("MPC module bandwidth = %v, must be 1", mpc.Bandwidth)
	}
	if math.Abs(mpc.Perimeter-4*32) > 1e-9 {
		t.Errorf("MPC module perimeter = %v", mpc.Perimeter)
	}
	mot := MOTMemory(1<<20, 1<<20)
	if mot.Bandwidth != 1024 {
		t.Errorf("MOT bandwidth = %v, want √M = 1024", mot.Bandwidth)
	}
}

func TestBandwidthGainGrows(t *testing.T) {
	g1 := BandwidthGain(1<<16, 256, 1<<16)
	g2 := BandwidthGain(1<<20, 1024, 1<<20)
	if g2 <= g1 {
		t.Errorf("bandwidth gain should grow with machine size: %v -> %v", g1, g2)
	}
	if g1 != 256 {
		t.Errorf("gain = %v, want √M = 256", g1)
	}
}
