// Package vlsi implements the layout-area accounting of Section 3: the
// Leighton-optimal area of the 2DMOT, the area of the paper's P-RAM
// simulator as a function of the memory granule g, and the
// perimeter-vs-bandwidth comparison against monolithic MPC/BDN modules.
// All quantities are analytic (unit: squared wire pitches, with explicit
// constants), so the paper's inequalities can be checked numerically.
package vlsi

import "math"

// MOTArea returns the layout area of an a×a 2DMOT whose leaves have area
// leafArea: Θ(a²·(log²a + A_leaf)) (Leighton 1984 proves this optimal).
// The constant 1 on the log² term corresponds to the obvious H-layout in
// the paper's Fig. 4.
func MOTArea(side int, leafArea float64) float64 {
	if side < 2 {
		return float64(side) * leafArea
	}
	lg := math.Log2(float64(side))
	return float64(side) * float64(side) * (lg*lg + leafArea)
}

// SimulatorArea returns the VLSI area of the paper's P-RAM simulator for a
// P-RAM with m cells when the memory granule (cells per module) is g and
// the redundancy is r: M = r·m/g modules on a √M-side 2DMOT whose leaves
// each hold a granule of area g.
func SimulatorArea(m int, g float64, r int) float64 {
	if g < 1 {
		g = 1
	}
	modules := float64(r) * float64(m) / g
	side := math.Sqrt(modules)
	return modules * (math.Log2(side)*math.Log2(side) + g)
}

// AreaOptimalGranule reports the paper's claim threshold: with
// g = Ω(log²n), SimulatorArea is O(m). It returns the granule log²n.
func AreaOptimalGranule(n int) float64 {
	lg := math.Log2(float64(n))
	return lg * lg
}

// IsAreaLinear checks SimulatorArea(m, g, r) ≤ slack · r · m, the
// "area on the same order as the memory of the P-RAM itself" property.
func IsAreaLinear(m int, g float64, r int, slack float64) bool {
	return SimulatorArea(m, g, r) <= slack*float64(r)*float64(m)
}

// ModuleShape describes the geometry of a monolithic memory module in the
// MPC/BDN models versus the distributed layout.
type ModuleShape struct {
	Area      float64 // cells (≈ layout area)
	Perimeter float64 // boundary length of a square layout
	Bandwidth float64 // simultaneous accesses the organization supports
}

// MPCModule is a classical coarse module holding m/n cells with a single
// port: bandwidth 1 regardless of its O(√(m/n)) perimeter — the "von
// Neumann bottleneck" imported into P-RAM simulation that Section 2 calls
// out.
func MPCModule(m, n int) ModuleShape {
	area := float64(m) / float64(n)
	return ModuleShape{Area: area, Perimeter: 4 * math.Sqrt(area), Bandwidth: 1}
}

// MOTMemory is the same total memory deployed on the 2DMOT's leaves:
// bandwidth Θ(√M) — one access per column tree — from the same silicon.
func MOTMemory(m int, modules int) ModuleShape {
	side := math.Sqrt(float64(modules))
	return ModuleShape{
		Area:      float64(m),
		Perimeter: 4 * math.Sqrt(float64(m)),
		Bandwidth: side,
	}
}

// BandwidthGain returns the memory-bandwidth ratio between the paper's
// leaf deployment and a coarse MPC, the quantity Section 3 credits for the
// redundancy reduction: Θ(√M) vs Θ(n·1)/n = 1 per module.
func BandwidthGain(m, n, modules int) float64 {
	return MOTMemory(m, modules).Bandwidth / MPCModule(m, n).Bandwidth
}
