// Wall-clock use here is the MEASUREMENT, not an input: E14 reports
// replay step latency in µs/round, so time.Now brackets rp.Run() and
// feeds only the reported timing column. Simulation state — batches,
// verification hashes, merge censuses — is produced before the clock is
// read and never depends on it, so the run's correctness columns remain
// a pure function of (seed, config, pattern).
//
//pram:wallclock
package experiments

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/replay"
	"repro/internal/stats"
)

// E14ReplaySweep is the ROADMAP's "replay-driven sweep": one workload
// shape — the same total simulated processor count, split into K
// band-local lanes — is RECORDED through the real machines at each K ∈
// {1,2,4,8}, then REPLAYED straight into a fresh pool, measuring
// wall-clock step latency alongside the pool's serial-component census.
// The banded pattern keeps lanes on disjoint module bands (components
// stay at K: the zero-locking fast path the serving front end schedules
// for), the uniform pattern lets lanes collide on modules, so the sweep
// shows exactly what serial-component merges cost as K grows — the
// latency-vs-merge-rate trade the multi-tenant scheduler navigates. Each
// replay is verified (recorded costs, Values hashes, final fingerprint)
// before its timing is reported; render with `cmd/experiments -csv e14`
// for the CSV form.
func E14ReplaySweep() Result {
	const (
		nTotal = 128
		rounds = 12
	)
	tb := stats.NewTable("pattern", "K", "n/lane", "rounds", "us/round",
		"components/round", "merges/round", "merge rate", "verify")
	var worstMerge float64
	for _, pattern := range []replay.Pattern{replay.Banded, replay.Uniform} {
		for _, K := range []int{1, 2, 4, 8} {
			cfg := replay.Config{Kind: replay.KindDMMPC, Lanes: K, Procs: nTotal / K,
				Mode: model.CRCWPriority}
			row, mergeRate := replaySweepPoint(cfg, pattern, rounds)
			if pattern == replay.Uniform && mergeRate > worstMerge {
				worstMerge = mergeRate
			}
			tb.AddRow(row...)
		}
	}
	return Result{
		ID:    "E14",
		Title: "Replay-driven serving sweep: step latency vs serial-component merges over K engines",
		Claim: "K band-local lanes replayed onto one sharded image keep K disjoint components per round " +
			"(constant redundancy makes concurrent tenants safe against one memory image); " +
			"cross-band traffic pays for itself in forced serial merges, not in corruption",
		Table: tb,
		Notes: []string{
			fmt.Sprintf("uniform (cross-band) traffic peaks at %.2f merges per possible merge; banded stays at 0", worstMerge),
			"every replay point verified bit-for-bit against its recording before timing",
		},
	}
}

// replaySweepPoint records one (config, pattern) workload in memory and
// replays it with verification, returning the rendered table row and the
// merge rate.
func replaySweepPoint(cfg replay.Config, pattern replay.Pattern, rounds int) ([]any, float64) {
	built, err := cfg.Build()
	if err != nil {
		return []any{pattern.String(), cfg.Lanes, cfg.Procs, 0, "build error", err.Error(), "-", "-", "-"}, 0
	}
	var buf bytes.Buffer
	rec, err := replay.NewRecorder(&buf, built)
	if err != nil {
		return []any{pattern.String(), cfg.Lanes, cfg.Procs, 0, "record error", err.Error(), "-", "-", "-"}, 0
	}
	gen := replay.NewGenerator(pattern, cfg.Lanes, cfg.Procs, built.Params.Mem, 17)
	for s := 0; s < rounds; s++ {
		batches := gen.Step(s)
		if built.Pool != nil {
			if agg, _ := built.Pool.ExecuteSteps(batches); agg.Err != nil {
				return []any{pattern.String(), cfg.Lanes, cfg.Procs, s, "step error", agg.Err.Error(), "-", "-", "-"}, 0
			}
		} else {
			if rep := built.Machine.ExecuteStep(batches[0]); rep.Err != nil {
				return []any{pattern.String(), cfg.Lanes, cfg.Procs, s, "step error", rep.Err.Error(), "-", "-", "-"}, 0
			}
		}
	}
	if err := rec.Close(); err != nil {
		return []any{pattern.String(), cfg.Lanes, cfg.Procs, rounds, "close error", err.Error(), "-", "-", "-"}, 0
	}

	rp, err := replay.Open(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return []any{pattern.String(), cfg.Lanes, cfg.Procs, rounds, "open error", err.Error(), "-", "-", "-"}, 0
	}
	rp.Verify = true
	var components int64
	if rp.Built().Pool != nil {
		pool := rp.Built().Pool
		rp.OnRound = func(model.StepReport, []model.StepReport) {
			components += int64(pool.LastComponents())
		}
	} else {
		rp.OnRound = func(model.StepReport, []model.StepReport) { components++ }
	}
	start := time.Now()
	sum, err := rp.Run()
	elapsed := time.Since(start)
	if err != nil {
		return []any{pattern.String(), cfg.Lanes, cfg.Procs, rounds, "replay error", err.Error(), "-", "-", "-"}, 0
	}
	verify := "ok"
	if !sum.VerifyOK() {
		verify = fmt.Sprintf("MISMATCH(%d)", sum.Mismatches)
	}
	compPerRound := float64(components) / float64(sum.Rounds)
	mergesPerRound := float64(cfg.Lanes) - compPerRound
	mergeRate := 0.0
	if cfg.Lanes > 1 {
		// Merges per possible merge: 0 = fully disjoint, 1 = one serial chain.
		mergeRate = mergesPerRound / float64(cfg.Lanes-1)
	}
	usPerRound := float64(elapsed.Microseconds()) / float64(sum.Rounds)
	return []any{pattern.String(), cfg.Lanes, cfg.Procs, int(sum.Rounds), usPerRound,
		compPerRound, mergesPerRound, mergeRate, verify}, mergeRate
}
