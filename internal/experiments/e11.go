package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ideal"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// E11Slowdown measures end-to-end program slowdown: for each workload in
// the standard suite, the total simulated time on the paper's machines
// divided by the ideal P-RAM's step count — the practical meaning of
// "simulating each P-RAM step in polylog time". This is the whole-program
// view that single-step experiments (E3–E5) cannot show: combining,
// idle-step overlap and per-step variance all wash into one number.
func E11Slowdown() Result {
	const n = 32
	tb := stats.NewTable("workload", "ideal steps", "DMMPC time", "slowdown",
		"2DMOT cycles", "cycles/step")
	var worstDM float64
	for _, w := range workloads.All(n, 13) {
		idealRep, err := workloads.RunOn(w, ideal.New(w.Procs, w.Cells, w.Mode))
		if err != nil {
			tb.AddRow(w.Name, "error", err.Error(), "-", "-", "-")
			continue
		}
		dm := core.NewDMMPC(w.Procs, core.Config{Mode: w.Mode})
		var dmTime int64 = -1
		if dm.MemSize() >= w.Cells {
			if rep, err := workloads.RunOn(w, dm); err == nil {
				dmTime = rep.SimTime
			}
		}
		mt := core.NewMOT2D(w.Procs, core.MOTConfig{Mode: w.Mode})
		var mtCycles int64 = -1
		if mt.MemSize() >= w.Cells {
			if rep, err := workloads.RunOn(w, mt); err == nil {
				mtCycles = rep.NetworkCycles
			}
		}
		slow := float64(dmTime) / float64(idealRep.Steps)
		if dmTime >= 0 && slow > worstDM {
			worstDM = slow
		}
		row := []any{w.Name, idealRep.Steps}
		if dmTime >= 0 {
			row = append(row, dmTime, slow)
		} else {
			row = append(row, "n/a", "n/a")
		}
		if mtCycles >= 0 {
			row = append(row, mtCycles, float64(mtCycles)/float64(idealRep.Steps))
		} else {
			row = append(row, "n/a", "n/a")
		}
		tb.AddRow(row...)
	}
	return Result{
		ID:    "E11",
		Title: "End-to-end program slowdown on the paper's machines",
		Claim: "whole algorithms — not just single steps — run at a uniform polylog slowdown with constant redundancy",
		Table: tb,
		Notes: []string{
			fmt.Sprintf("worst DMMPC slowdown across the suite at n=%d: %.1f× per ideal step (r stays constant throughout).", n, worstDM),
			"2DMOT cycles/step is the physical-network price; both columns are flat across wildly different access patterns.",
		},
	}
}
