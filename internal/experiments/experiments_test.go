package experiments

import (
	"strings"
	"testing"
)

func TestIDsComplete(t *testing.T) {
	want := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e14", "e17"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("ids = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ids[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, ok := Run("e99"); ok {
		t.Error("unknown id accepted")
	}
}

func TestRunCaseInsensitive(t *testing.T) {
	r, ok := Run("E1")
	if !ok {
		t.Fatal("uppercase id rejected")
	}
	if r.ID != "E1" {
		t.Errorf("got %s", r.ID)
	}
}

// Each experiment must produce a non-empty table and coherent metadata.
// (E3–E6 build real machines, so this doubles as an integration smoke
// test of the whole stack.)
func TestEveryExperimentProducesTable(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are heavyweight")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			r, ok := Run(id)
			if !ok {
				t.Fatal("runner missing")
			}
			if r.Table == nil || r.Table.Len() == 0 {
				t.Fatal("empty table")
			}
			if r.Claim == "" || r.Title == "" {
				t.Error("missing metadata")
			}
			out := r.String()
			if !strings.Contains(out, r.ID) || !strings.Contains(out, "claim:") {
				t.Error("render incomplete")
			}
		})
	}
}

func TestE1AdversaryNoteMentionsBothMaps(t *testing.T) {
	if testing.Short() {
		t.Skip("heavyweight")
	}
	r := E1LowerBound()
	joined := strings.Join(r.Notes, " ")
	if !strings.Contains(joined, "healthy") || !strings.Contains(joined, "concentrated") {
		t.Errorf("adversary note incomplete: %v", r.Notes)
	}
}

func TestAuditMapHelper(t *testing.T) {
	res := AuditMap(128, 2, 1, 3, 5)
	if res.Q == 0 || res.Bound == 0 {
		t.Errorf("audit degenerate: %+v", res)
	}
}
