package experiments

import (
	"fmt"

	"repro/internal/replay"
	"repro/internal/serve"
	"repro/internal/stats"
)

// E17StageAttribution sweeps workload shape × engine count K over the
// serving lane and reports where each run's simulated time went, using
// the span recorder's stage split: the quorum (retrieval) leg versus the
// commit (update) leg, summed per run as WORK (over all tenant steps)
// and as MAKESPAN (each round's critical shard only). The whole sweep is
// virtual-time — no wall clock touches any column — so the table is
// bit-for-bit reproducible. Band-local shapes demonstrate the
// K-invariance the serve package proves: their work-side quorum/commit
// totals are identical at every K, because every tenant executes the
// same step multiset regardless of how many engines carry it. The
// critical-path split and the forced-merge census are schedule
// properties and legitimately move with K — the global (cross-band)
// shape shows merges growing as K does, the erosion the partition stage
// spans make visible. Render with `cmd/experiments -csv e17`.
func E17StageAttribution() Result {
	const (
		tenants = 4
		procs   = 32
		steps   = 12
	)
	tb := stats.NewTable("shape", "K", "steps", "quorum", "commit", "quorum share",
		"crit quorum", "crit commit", "crit share", "merges")
	shapes := []struct {
		name   string
		pat    replay.Pattern
		global bool
	}{
		{"uniform", replay.Uniform, false},
		{"hotspot", replay.Hotspot, false},
		{"broadcast", replay.Broadcast, false},
		{"global", replay.Uniform, true},
	}
	share := func(a, b int64) string {
		if a+b == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.3f", float64(a)/float64(a+b))
	}
	for _, sh := range shapes {
		for _, K := range []int{1, 2, 4} {
			cfg := serve.Config{Bands: tenants, Engines: K, Seed: 7}
			for i := 0; i < tenants; i++ {
				tc := serve.TenantConfig{
					Name:    fmt.Sprintf("%s%d", sh.name, i),
					Band:    i,
					Procs:   procs,
					Arrival: serve.Arrival{Window: 2},
				}
				if sh.global {
					tc.Source = serve.NewGlobalPatternSource(sh.pat, procs, steps, int64(101+i))
				} else {
					tc.Source = serve.NewPatternSource(sh.pat, procs, steps, int64(101+i))
				}
				cfg.Tenants = append(cfg.Tenants, tc)
			}
			s, err := serve.NewServer(cfg)
			if err != nil {
				// The sweep's parameter points are static and feasible; an
				// error here is a programming bug, not a data point.
				panic(err)
			}
			if err := s.ServeAll(4096); err != nil {
				s.Close()
				panic(err)
			}
			var q, c, executed int64
			for i := 0; i < s.NumTenants(); i++ {
				ts := s.TenantStats(i)
				q += ts.QuorumTime
				c += ts.CommitTime
				executed += ts.Steps
			}
			ss := s.Stats()
			s.Close()
			tb.AddRow(sh.name, K, executed, q, c, share(q, c),
				ss.CritQuorumTime, ss.CritCommitTime,
				share(ss.CritQuorumTime, ss.CritCommitTime), ss.ForcedMerges)
		}
	}
	return Result{
		ID:    "E17",
		Title: "Stage attribution sweep: quorum vs commit share of work and makespan over shape × K",
		Claim: "the span recorder's quorum/commit split tiles every tenant's simulated time exactly, and " +
			"for band-local shapes the work-side split is K-invariant (the step multiset is); " +
			"only the critical-path split and the forced-merge census move with K, because they " +
			"are properties of the round schedule, not of the computation",
		Table: tb,
		Notes: []string{
			"quorum/commit sum WORK over all tenant steps; crit quorum/commit sum each round's critical-shard MAKESPAN split",
			"band-local rows (uniform/hotspot/broadcast) repeat identical quorum/commit totals at every K — the serve package's K-invariance, per stage",
			"the global shape deliberately crosses bands: forced serial-component merges appear once K > 1 and grow with it",
			"all columns are virtual-time and bit-for-bit reproducible; `serve spans` renders the same decomposition per round as a Perfetto trace",
		},
	}
}
