package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/mpc"
	"repro/internal/stats"
)

// E1LowerBound evaluates Theorem 1's redundancy lower bound across the
// granularity grid and demonstrates the counting adversary on a concrete
// low-expansion map.
func E1LowerBound() Result {
	tb := stats.NewTable("k", "eps", "n", "h=log²n", "r_lower (asympt.)", "p_exact")
	for _, k := range []float64{1.5, 2, 3} {
		for _, eps := range []float64{0, 0.25, 0.5, 1} {
			for _, n := range []int{1 << 8, 1 << 12, 1 << 16} {
				h := math.Pow(math.Log2(float64(n)), 2)
				modules := int(math.Min(math.Pow(float64(n), 1+eps), 1e12))
				pEx := lowerbound.ExactP(n, modules, math.Pow(float64(n), k), int(h))
				tb.AddRow(k, eps, n, fmt.Sprintf("%.0f", h),
					lowerbound.AsymptoticR(n, k, eps, h), pEx)
			}
		}
	}
	// Adversary demo: identical parameters, healthy vs concentrated map.
	p := memmap.LemmaTwo(256, 2, 1)
	healthy := lowerbound.FindConcentrated(memmap.Generate(p, 7), 256)
	corrupt := lowerbound.FindConcentrated(memmap.GenerateCorrupt(p, 4*p.R(), 7), 256)
	return Result{
		ID:    "E1",
		Title: "Theorem 1 — redundancy lower bound vs memory granularity",
		Claim: "r = Ω((k−1)·log n/(ε·log n + log h)): Θ(log n/log log n) at ε=0, Θ(1) for any ε>0",
		Table: tb,
		Notes: []string{
			"ε=0 rows grow with n (coarse-grain MPC regime); every ε>0 row is bounded by (k−1)/ε.",
			fmt.Sprintf("counting adversary at n=256: against a healthy Lemma-2 map it forces only %.1f serialized phases; against a map concentrated in %d modules it forces ≥ %.1f.",
				healthy.SerialLower, corrupt.Modules, corrupt.SerialLower),
		},
	}
}

// E2Expansion audits random Lemma-2 memory maps against the expansion
// bound (2c−1)q/b, with the adversary choosing live copies.
func E2Expansion() Result {
	tb := stats.NewTable("n", "eps", "c", "r", "q", "bound", "min distinct", "mean", "holds")
	allHold := true
	for _, eps := range []float64{0.5, 1} {
		for _, n := range []int{256, 512, 1024} {
			p := memmap.LemmaTwo(n, 2, eps)
			mp := memmap.Generate(p, int64(n)*31+int64(eps*8))
			q := p.N / p.R()
			res := mp.Audit(q, 40, 99)
			allHold = allHold && res.Holds
			tb.AddRow(n, eps, p.C, p.R(), res.Q, res.Bound, res.MinDistinct,
				res.MeanDistinct, res.Holds)
		}
	}
	notes := []string{
		"live copies are chosen adversarially (concentrated in popular modules) per probed set;",
		"an extra greedy-adversarial variable set is probed besides 40 random sets.",
	}
	if allHold {
		notes = append(notes, "every audited random map satisfies the Lemma 2 bound — as the counting proof predicts for almost all maps.")
	} else {
		notes = append(notes, "WARNING: some map failed the audit; rerun with a different seed (the lemma excludes only a vanishing fraction).")
	}
	return Result{
		ID:    "E2",
		Title: "Lemma 2 — expansion property of random memory maps",
		Claim: "any q ≤ n/(2c−1) live variables have live copies in ≥ (2c−1)q/b distinct modules",
		Table: tb,
		Notes: notes,
	}
}

// permutationBatch builds the canonical full P-RAM step: processor i reads
// variable π(i).
func permutationBatch(n int, seed int64) model.Batch {
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	b := model.NewBatch(n)
	for i := 0; i < n; i++ {
		b[i] = model.Request{Proc: i, Op: model.OpRead, Addr: perm[i]}
	}
	return b
}

// writeBatch builds a full write step: processor i writes variable i.
func writeBatch(n int) model.Batch {
	b := model.NewBatch(n)
	for i := 0; i < n; i++ {
		b[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: i, Value: model.Word(i)}
	}
	return b
}

// E3DMMPC measures Theorem 2: phases per P-RAM step on the DMMPC across n,
// with constant redundancy, and fits the growth against log n.
func E3DMMPC() Result {
	tb := stats.NewTable("n", "M", "r", "phases(perm)", "phases(write)", "phases/log2(n)")
	sizes := []int{64, 128, 256, 512, 1024}
	var ns, ys []float64
	rConst := 0
	for _, n := range sizes {
		dm := core.NewDMMPC(n, core.Config{})
		rp := dm.ExecuteStep(permutationBatch(n, 5))
		rw := dm.ExecuteStep(writeBatch(n))
		tb.AddRow(n, dm.P.M, dm.Redundancy(), rp.Phases, rw.Phases,
			float64(rp.Phases)/math.Log2(float64(n)))
		ns = append(ns, float64(n))
		ys = append(ys, float64(rp.Phases))
		rConst = dm.Redundancy()
	}
	best := stats.BestFit(ns, ys, stats.GrowthConst, stats.GrowthLog,
		stats.GrowthLog2, stats.GrowthSqrt, stats.GrowthLinear)
	return Result{
		ID:    "E3",
		Title: "Theorem 2 — DMMPC simulation: constant redundancy, O(log n) phases",
		Claim: "M = n^(1+ε) modules ⇒ r = O((k−ε)/ε) = O(1) and O(log n) time per step",
		Table: tb,
		Notes: []string{
			fmt.Sprintf("redundancy column is flat: r = %d at every n.", rConst),
			fmt.Sprintf("best growth fit of phases over n: %s (ratio spread %.2f).",
				best.Growth.Name, best.Spread),
		},
	}
}

// E4MPCvsDMMPC is the paper's headline head-to-head: same majority-rule
// protocol, coarse vs fine granularity.
func E4MPCvsDMMPC() Result {
	tb := stats.NewTable("n", "m", "r MPC", "phases MPC", "r DMMPC", "phases DMMPC")
	sizes := []int{64, 128, 256, 512, 1024}
	var rsMPC, rsDM []int
	for _, n := range sizes {
		mp := mpc.New(n, mpc.Config{})
		dm := core.NewDMMPC(n, core.Config{})
		bp := permutationBatch(n, 5)
		rm := mp.ExecuteStep(bp)
		rd := dm.ExecuteStep(permutationBatch(n, 5))
		tb.AddRow(n, mp.P.Mem, mp.Redundancy(), rm.Phases, dm.Redundancy(), rd.Phases)
		rsMPC = append(rsMPC, mp.Redundancy())
		rsDM = append(rsDM, dm.Redundancy())
	}
	return Result{
		ID:    "E4",
		Title: "UW'87 MPC baseline vs the paper's DMMPC",
		Claim: "equal polylog step time, but redundancy falls from Θ(log m) to Θ(1)",
		Table: tb,
		Notes: []string{
			fmt.Sprintf("MPC redundancy grows %d→%d over the sweep; DMMPC stays at %d.",
				rsMPC[0], rsMPC[len(rsMPC)-1], rsDM[0]),
			"both drain a full permutation step in a comparable, slowly-growing phase count.",
		},
	}
}
