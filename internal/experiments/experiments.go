// Package experiments implements the reproduction harness: one runner per
// experiment in DESIGN.md §4 (E1–E8), each regenerating the table that
// operationalizes one of the paper's claims. The cmd/experiments CLI prints
// them; the root bench_test.go wraps them in testing.B benchmarks; their
// recorded outputs live in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Result is a finished experiment: a rendered table plus interpretation.
type Result struct {
	ID    string
	Title string
	Claim string // the paper statement being reproduced
	Table *stats.Table
	Notes []string
}

// String renders the result for terminal output.
func (r Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	fmt.Fprintf(&sb, "claim: %s\n\n", r.Claim)
	sb.WriteString(r.Table.String())
	for _, n := range r.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// Markdown renders the result as a markdown section (the EXPERIMENTS.md
// source format).
func (r Result) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s — %s\n\n", r.ID, r.Title)
	fmt.Fprintf(&sb, "**Claim:** %s\n\n", r.Claim)
	sb.WriteString(r.Table.Markdown())
	if len(r.Notes) > 0 {
		sb.WriteString("\n")
		for _, n := range r.Notes {
			sb.WriteString("- " + n + "\n")
		}
	}
	return sb.String()
}

// Runner produces a Result.
type Runner func() Result

// registry maps experiment ids to runners.
var registry = map[string]Runner{
	"e1":  E1LowerBound,
	"e2":  E2Expansion,
	"e3":  E3DMMPC,
	"e4":  E4MPCvsDMMPC,
	"e5":  E5MOT,
	"e6":  E6Comparison,
	"e7":  E7IDA,
	"e8":  E8VLSI,
	"e9":  E9PROM,
	"e10": E10Ablations,
	"e11": E11Slowdown,
	"e14": E14ReplaySweep,
	"e17": E17StageAttribution,
}

// order fixes the presentation sequence (numeric, not lexicographic).
var order = []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e14", "e17"}

// IDs returns the registered experiment ids in numeric order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for _, id := range order {
		if _, ok := registry[id]; ok {
			out = append(out, id)
		}
	}
	if len(out) != len(registry) {
		// A runner was registered without being added to `order`.
		missing := make([]string, 0)
		//pram:unordered membership scan; missing is sorted before use below
		for id := range registry {
			found := false
			for _, o := range out {
				if o == id {
					found = true
					break
				}
			}
			if !found {
				missing = append(missing, id)
			}
		}
		sort.Strings(missing)
		out = append(out, missing...)
	}
	return out
}

// Run executes one experiment by id.
func Run(id string) (Result, bool) {
	r, ok := registry[strings.ToLower(id)]
	if !ok {
		return Result{}, false
	}
	return r(), true
}

// All runs every experiment in order.
func All() []Result {
	var out []Result
	for _, id := range IDs() {
		r, _ := Run(id)
		out = append(out, r)
	}
	return out
}
