package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/hashsim"
	"repro/internal/ida"
	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/mpc"
	"repro/internal/stats"
	"repro/internal/vlsi"
	"repro/internal/xmath"
)

// E5MOT measures Theorem 3: network cycles per P-RAM step on the paper's
// leaf-memory 2DMOT across n, against the Luccio et al. root-memory
// baseline, and fits the growth against log²n/log log n.
func E5MOT() Result {
	tb := stats.NewTable("n", "side", "r paper", "cycles paper", "r Luccio", "cycles Luccio")
	sizes := []int{16, 32, 64, 128, 256}
	var ns, ys []float64
	for _, n := range sizes {
		mt := core.NewMOT2D(n, core.MOTConfig{})
		lu := core.NewLuccio(n, core.MOTConfig{})
		rm := mt.ExecuteStep(permutationBatch(n, 5))
		rl := lu.ExecuteStep(permutationBatch(n, 5))
		tb.AddRow(n, mt.Side, mt.Redundancy(), rm.NetworkCycles,
			lu.Redundancy(), rl.NetworkCycles)
		ns = append(ns, float64(n))
		ys = append(ys, float64(rm.NetworkCycles))
	}
	best := stats.BestFit(ns, ys, stats.GrowthLog, stats.GrowthLog2,
		stats.GrowthLog2OverLogLog, stats.GrowthSqrt, stats.GrowthLinear)
	return Result{
		ID:    "E5",
		Title: "Theorem 3 — 2DMOT with memory at the leaves",
		Claim: "deterministic step in O(log²n/log log n) cycles with r = Θ(1); Luccio'90 pays r = Θ(log m) for the same fabric",
		Table: tb,
		Notes: []string{
			fmt.Sprintf("best growth fit of paper cycles over n: %s (ratio spread %.2f); the paper bound log²n/loglog n is an upper bound, so any fit at or below it is consistent.",
				best.Growth.Name, best.Spread),
			"paper redundancy is flat; Luccio redundancy grows with m = n².",
		},
	}
}

// E6Comparison is the survey table of Section 1 made quantitative: every
// scheme in the paper's related-work discussion on the same permutation
// step.
func E6Comparison() Result {
	tb := stats.NewTable("scheme", "model", "redundancy", "time/step (measured)", "unit")
	for _, n := range []int{128, 512} {
		sub := fmt.Sprintf("[n=%d] ", n)
		// Ideal P-RAM reference.
		tb.AddRow(sub+"ideal P-RAM", "shared memory", 1, 1, "steps")
		// Upfal–Wigderson on MPC.
		m := mpc.New(n, mpc.Config{})
		rm := m.ExecuteStep(permutationBatch(n, 5))
		tb.AddRow(sub+"UW'87 majority", "MPC (M=n)", m.Redundancy(), rm.Phases, "phases")
		// Herley–Bilardi (analytic only: constructive expanders lack
		// practical constants — the paper makes this very point).
		logm := math.Log2(math.Pow(float64(n), 2))
		hb := int(math.Ceil(logm / math.Max(1, math.Log2(logm))))
		tb.AddRow(sub+"Herley–Bilardi'88", "BDN (expanders)", hb, "—", "analytic")
		// Alt–Hagerup–Mehlhorn–Preparata '87 (analytic: O(log n·log m)
		// deterministic BDN time via sorting networks, Θ(log m) copies).
		tb.AddRow(sub+"AHMP'87 sorting", "BDN (sorting net)",
			int(math.Ceil(logm)), fmt.Sprintf("%.0f (bound)", math.Log2(float64(n))*logm), "analytic")
		// Luccio et al. on the 2DMOT, modules at roots.
		lu := core.NewLuccio(n, core.MOTConfig{})
		rl := lu.ExecuteStep(permutationBatch(n, 5))
		tb.AddRow(sub+"Luccio'90", "2DMOT (roots)", lu.Redundancy(), rl.NetworkCycles, "cycles")
		// This paper, Section 2.
		dm := core.NewDMMPC(n, core.Config{})
		rd := dm.ExecuteStep(permutationBatch(n, 5))
		tb.AddRow(sub+"THIS PAPER §2", "DMMPC (M=n²)", dm.Redundancy(), rd.Phases, "phases")
		// This paper, Section 3.
		mt := core.NewMOT2D(n, core.MOTConfig{})
		rt := mt.ExecuteStep(permutationBatch(n, 5))
		tb.AddRow(sub+"THIS PAPER §3", "2DMOT (leaves)", mt.Redundancy(), rt.NetworkCycles, "cycles")
		// Schuster IDA.
		sc := ida.NewMemory(n, ida.Config{MemCells: n * n})
		rs := sc.ExecuteStep(permutationBatch(n, 5))
		tb.AddRow(sub+"Schuster'87 IDA", "MPC (M=n)",
			fmt.Sprintf("%.1fx space", sc.Blowup()), rs.Phases, "phases")
		// Hashing, random and adversarial — abstract module-load model
		// and the physical butterfly network (Ranade-style combining).
		hs := hashsim.New(n, hashsim.Config{})
		rh := hs.ExecuteStep(permutationBatch(n, 5))
		adv := hs.ExecuteStep(hashsim.AdversarialBatch(hs.Hash(), n, hs.MemSize()))
		tb.AddRow(sub+"hashing (probabilistic)", "MPC (M=n)", 1,
			fmt.Sprintf("%d rnd / %d adv", rh.Phases, adv.Phases), "phases")
		hb2 := hashsim.New(n, hashsim.Config{Butterfly: true})
		rb := hb2.ExecuteStep(permutationBatch(n, 5))
		ab := hb2.ExecuteStep(hashsim.AdversarialBatch(hb2.Hash(), n, hb2.MemSize()))
		tb.AddRow(sub+"hashing on butterfly", "BDN (Ranade)", 1,
			fmt.Sprintf("%d rnd / %d adv", rb.NetworkCycles, ab.NetworkCycles), "cycles")
	}
	return Result{
		ID:    "E6",
		Title: "Cross-scheme comparison (the paper's Section 1 discussion, measured)",
		Claim: "the paper is the only deterministic scheme with constant redundancy AND polylog worst-case time",
		Table: tb,
		Notes: []string{
			"hashing is fastest on random traffic but collapses to Θ(n) on the adversarial step — the motivation for deterministic schemes.",
			"Schuster'87 gets constant SPACE at Θ(log n) extra work per access (see E7).",
		},
	}
}

// E7IDA profiles the Schuster alternative: constant storage blowup,
// Θ(log n)-growing per-access work.
func E7IDA() Result {
	tb := stats.NewTable("n", "b", "d", "blowup", "quorum", "fieldops/read", "fieldops/write", "phases(perm)")
	for _, n := range []int{64, 256, 1024} {
		mem := ida.NewMemory(n, ida.Config{MemCells: 4096})
		// One isolated read.
		before := mem.FieldOps()
		b0 := model.NewBatch(n)
		b0[0] = model.Request{Proc: 0, Op: model.OpRead, Addr: 0}
		mem.ExecuteStep(b0)
		readOps := mem.FieldOps() - before
		// One isolated write.
		before = mem.FieldOps()
		b1 := model.NewBatch(n)
		b1[0] = model.Request{Proc: 0, Op: model.OpWrite, Addr: 0, Value: 1}
		mem.ExecuteStep(b1)
		writeOps := mem.FieldOps() - before
		rp := mem.ExecuteStep(permutationBatch(n, 5))
		tb.AddRow(n, memBlockLen(n), memBlockLen(n)*2,
			mem.Blowup(), mem.QuorumSize(), readOps, writeOps, rp.Phases)
	}
	return Result{
		ID:    "E7",
		Title: "Schuster '87 — information dispersal memory",
		Claim: "storage grows by a constant factor (d/b) but Θ(log n) elements are processed per access",
		Table: tb,
		Notes: []string{
			"blowup stays 2.0 at every n while per-access field work grows with b = Θ(log n) —",
			"the mirror image of the paper's scheme, which keeps work constant and pays constant copies.",
		},
	}
}

// memBlockLen mirrors ida.NewMemory's default b = max(2, ceil(log2 n)).
func memBlockLen(n int) int { return max(2, xmath.CeilLog2(n)) }

// E8VLSI checks the layout-area claims of Section 3.
func E8VLSI() Result {
	tb := stats.NewTable("n", "m=n²", "granule g", "area/(r·m)", "area-linear?", "bandwidth gain √M")
	const r = 7
	for _, n := range []int{1 << 8, 1 << 10, 1 << 12} {
		m := n * n
		for _, g := range []float64{1, vlsi.AreaOptimalGranule(n), 4 * vlsi.AreaOptimalGranule(n)} {
			ratio := vlsi.SimulatorArea(m, g, r) / (float64(r) * float64(m))
			modules := int(float64(r) * float64(m) / g)
			tb.AddRow(n, m, fmt.Sprintf("%.0f", g), ratio,
				vlsi.IsAreaLinear(m, g, r, 3), vlsi.BandwidthGain(m, n, modules))
		}
	}
	return Result{
		ID:    "E8",
		Title: "Section 3 — VLSI area and memory bandwidth",
		Claim: "g = Ω(log²n) ⇒ simulator area O(m) (optimal); the 2DMOT turns the same silicon's perimeter into Θ(√M) memory bandwidth",
		Table: tb,
		Notes: []string{
			"g=1 rows blow past the linear-area budget (wiring dominates); g = log²n rows sit at a constant ratio, as claimed.",
			"bandwidth gain over a 1-port MPC module grows with machine size — the mechanism behind the redundancy reduction.",
		},
	}
}

// E2 audit helper re-exported for the memmapcheck CLI.
func AuditMap(n int, k, eps float64, seed int64, trials int) memmap.AuditResult {
	p := memmap.LemmaTwo(n, k, eps)
	mp := memmap.Generate(p, seed)
	return mp.Audit(p.N/p.R(), trials, seed+1)
}
