package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/memmap"
	"repro/internal/mot"
	"repro/internal/prom"
	"repro/internal/quorum"
	"repro/internal/stats"
)

// E9PROM evaluates the conclusion's P-ROM proposal: shared read-only
// storage of the memory map versus per-processor look-up tables.
func E9PROM() Result {
	tb := stats.NewTable("n", "r", "table/proc (KB)", "all tables (KB)", "P-ROM (KB)",
		"saving", "lookup phases", "step phases (base→+PROM)")
	for _, n := range []int{64, 256, 1024} {
		dm := core.NewDMMPC(n, core.Config{})
		d := prom.NewDirectory(dm.P)
		wrapped := prom.Wrap(core.NewDMMPC(n, core.Config{}), dm.P)
		base := dm.ExecuteStep(permutationBatch(n, 5))
		plus := wrapped.ExecuteStep(permutationBatch(n, 5))
		tb.AddRow(n, dm.Redundancy(),
			d.TotalBits()/8/1024,
			d.ReplicatedBits(n)/8/1024,
			d.TotalBits()/8/1024,
			fmt.Sprintf("%.0f×", d.Saving(n)),
			wrapped.LookupPhases(),
			fmt.Sprintf("%d→%d", base.Phases, plus.Phases))
	}
	return Result{
		ID:    "E9",
		Title: "Conclusion — P-ROM: shared parallel address look-up",
		Claim: "a parallel read-only map store cuts total look-up storage from O(mn·log rm) to O(m·log rm) bits",
		Table: tb,
		Notes: []string{
			"the storage saving is exactly n×, as the conclusion conjectures;",
			"the price is a small, bounded lookup-phase overhead per step (combining makes same-variable lookups free).",
		},
	}
}

// E10Ablations isolates three design choices DESIGN.md calls out: the
// routing collision policy, the dual-rail bank doubling, and the
// constructive (algebraic) memory map.
func E10Ablations() Result {
	tb := stats.NewTable("ablation", "variant", "r", "cost", "unit")
	const n = 64

	// (a) Routing policy on the 2DMOT: drop-and-retry (the paper's rule)
	// vs queue-in-place, same permutation step.
	for _, pol := range []struct {
		name string
		p    mot.Policy
	}{{"drop+retry (paper)", mot.DropOnCollision}, {"queue", mot.QueueOnCollision}} {
		mt := core.NewMOT2D(n, core.MOTConfig{Policy: pol.p})
		rep := mt.ExecuteStep(permutationBatch(n, 5))
		tb.AddRow("routing policy", pol.name, mt.Redundancy(), rep.NetworkCycles, "cycles")
	}

	// (b) Dual-rail access (Theorem 3's closing remark).
	for _, dr := range []bool{false, true} {
		mt := core.NewMOT2D(n, core.MOTConfig{DualRail: dr})
		rep := mt.ExecuteStep(permutationBatch(n, 5))
		variant := "column rail only"
		if dr {
			variant = "rows+columns (remark)"
		}
		tb.AddRow("dual rail", variant, mt.Redundancy(), rep.NetworkCycles, "cycles")
	}

	// (c) Memory map construction: stored random table vs computable
	// algebraic map (the conclusion's open problem), same engine.
	p := memmap.LemmaTwo(n, 2, 1)
	for _, mk := range []struct {
		name string
		mp   *memmap.Map
	}{
		{"random table", memmap.Generate(p, 11)},
		{"algebraic (computable)", memmap.GenerateAlgebraic(p, 11)},
	} {
		st := quorum.NewStore(mk.mp)
		eng := quorum.NewEngine(st, quorum.NewCompleteBipartite(), n)
		reqs := make([]quorum.Request, n)
		for i := range reqs {
			reqs[i] = quorum.Request{Proc: i, Var: i, Write: true, Value: 1}
		}
		res := eng.ExecuteBatch(reqs)
		tb.AddRow("memory map", mk.name, p.R(), res.Phases, "phases")
	}
	return Result{
		ID:    "E10",
		Title: "Ablations — routing policy, dual-rail banks, constructive maps",
		Claim: "design-choice isolation for the simulation scheme's three tunable mechanisms",
		Table: tb,
		Notes: []string{
			"queueing trades fewer phases for longer ones — total cycles stay the same order;",
			"dual rail halves the quorum constant (r 15→7 at these defaults) and cuts cycles too — fewer copies to touch;",
			"the computable algebraic map matches the stored random table's phase count, evidence for the conclusion's conjecture.",
		},
	}
}
