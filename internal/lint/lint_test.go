package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each analyzer is exercised against four fixture flavors: a true
// positive (bad), an annotated suppression (suppressed), a stale or
// misplaced annotation, and a clean package — plus an out-of-scope run
// that presents the same kind of code under an import path the
// analyzer does not check. The import path passed to linttest.Run is
// what places a fixture in or out of an analyzer's scope, so these
// tests pin the scope predicates as much as the analyzers.

func TestNoWallClock(t *testing.T) {
	linttest.Run(t, "nowallclock/bad", "repro/internal/quorum", lint.NoWallClock)
	linttest.Run(t, "nowallclock/suppressed", "repro/internal/serve", lint.NoWallClock)
	linttest.Run(t, "nowallclock/stale", "repro/internal/model", lint.NoWallClock)
	linttest.Run(t, "nowallclock/clean", "repro/internal/mot", lint.NoWallClock)
	linttest.Run(t, "nowallclock/outofscope", "repro/cmd/tool", lint.NoWallClock)
}

func TestNoMapRange(t *testing.T) {
	linttest.Run(t, "nomaprange/bad", "repro/internal/model", lint.NoMapRange)
	linttest.Run(t, "nomaprange/suppressed", "repro/internal/model", lint.NoMapRange)
	linttest.Run(t, "nomaprange/stale", "repro/internal/model", lint.NoMapRange)
	linttest.Run(t, "nomaprange/clean", "repro/internal/model", lint.NoMapRange)
	linttest.Run(t, "nomaprange/outofscope", "repro/cmd/tool", lint.NoMapRange)
}

func TestNoGlobalRand(t *testing.T) {
	linttest.Run(t, "noglobalrand/bad", "repro/internal/workloads", lint.NoGlobalRand)
	linttest.Run(t, "noglobalrand/suppressed", "repro/internal/workloads", lint.NoGlobalRand)
	linttest.Run(t, "noglobalrand/stale", "repro/internal/workloads", lint.NoGlobalRand)
	linttest.Run(t, "noglobalrand/clean", "repro/internal/workloads", lint.NoGlobalRand)
	linttest.Run(t, "noglobalrand/outofscope", "example.com/outside", lint.NoGlobalRand)
}

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, "hotalloc/bad", "repro/internal/quorum", lint.HotAlloc)
	linttest.Run(t, "hotalloc/suppressed", "repro/internal/quorum", lint.HotAlloc)
	linttest.Run(t, "hotalloc/stale", "repro/internal/quorum", lint.HotAlloc)
	linttest.Run(t, "hotalloc/clean", "repro/internal/quorum", lint.HotAlloc)
	// The observability hot shapes: histogram observe and flight/wait ring
	// stores stay silent; unbounded appends, boxing and formatting flag.
	linttest.Run(t, "hotalloc/observe", "repro/internal/serve", lint.HotAlloc)
	linttest.Run(t, "hotalloc/observebad", "repro/internal/serve", lint.HotAlloc)
}

func TestPramDirective(t *testing.T) {
	linttest.Run(t, "pramdirective/bad", "repro/internal/quorum", lint.PramDirective)
	linttest.Run(t, "pramdirective/noeffect", "repro/cmd/tool", lint.PramDirective)
	linttest.Run(t, "pramdirective/clean", "repro/internal/serve", lint.PramDirective)
}

// TestHotAllocScopeFree pins that hotalloc is opt-in by annotation, not
// by package: the same bad fixture flags identically under an import
// path outside the module.
func TestHotAllocScopeFree(t *testing.T) {
	linttest.Run(t, "hotalloc/bad", "example.com/outside", lint.HotAlloc)
}
