package lint

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the package time functions that read or schedule
// against the wall clock. Pure arithmetic on time.Duration and
// construction of zero time.Time values stay legal — only the ambient
// clock is banned.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
}

// NoWallClock enforces the virtual-time invariant: inside the
// virtual-time packages (model, quorum, mot, replay, serve,
// experiments) nothing may consult the wall clock, because every run
// must be a pure function of (seed, specs, script) — the property the
// H13 determinism harness and every golden trace depend on. A file
// whose job is genuinely wall-clock bound (the HTTP round loop,
// experiment latency measurement) opts out with a file-scoped
// //pram:wallclock annotation above its package clause; the analyzer
// verifies the annotation is actually needed and correctly placed.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc: "forbid time.Now/Since/Until/Sleep/NewTimer/NewTicker/After/AfterFunc/Tick " +
		"in virtual-time packages unless the file is annotated //pram:wallclock",
	Run: runNoWallClock,
}

func runNoWallClock(pass *Pass) error {
	if !IsVirtualTimePackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		exempt := FileWallclock(pass.Fset, f)
		used := false
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if obj.Type().(*types.Signature).Recv() != nil || !wallClockFuncs[obj.Name()] {
				return true
			}
			used = true
			if exempt == nil {
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock in virtual-time package %s "+
						"(runs must be pure functions of seed/specs/script); "+
						"confine it to a //pram:wallclock file or inject virtual time",
					obj.Name(), pass.Pkg.Path())
			}
			return true
		})
		if exempt != nil {
			exempt.Used = true
			if !used {
				pass.Reportf(exempt.Pos,
					"stale //pram:wallclock: file no longer touches the wall clock; drop the annotation")
			}
		}
	}
	return nil
}
