// Package linttest is a miniature analysistest: it runs a single
// lint.Analyzer over a fixture package under internal/lint/testdata and
// checks its diagnostics against // want "regexp" expectations embedded
// in the fixture source.
//
// The real golang.org/x/tools/go/analysis/analysistest is not available
// to this module (the tree builds against the standard library only),
// so this package reimplements the slice of its contract the lint suite
// needs:
//
//   - a fixture directory is one package: every *.go file in it is
//     parsed and type-checked together, importing only the standard
//     library (resolved from source via go/importer);
//   - the package is presented to the analyzer under a CALLER-CHOSEN
//     import path, which is how tests exercise the scope predicates —
//     the same fixture can be run as "repro/internal/quorum" (in scope)
//     and as "example.com/outside" (out of scope);
//   - a comment containing `// want "re"` expects exactly one
//     diagnostic on its line whose message matches the regexp; several
//     quoted regexps in one want comment expect several diagnostics.
//     The marker may sit in a trailing comment on the offending line or
//     be embedded at the end of a //pram: directive comment (needed
//     when the diagnostic points at the directive itself, as stale-
//     suppression reports do).
//
// Unmatched expectations and unexpected diagnostics are both test
// failures, so fixtures double as a pin on the exact diagnostic text.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// stdImporter resolves standard-library imports from GOROOT source. It
// is shared (with its FileSet) across all Run calls in a test binary so
// each std package is type-checked once, not once per fixture.
var (
	importerOnce sync.Once
	sharedFset   *token.FileSet
	sharedImp    types.Importer
	importerMu   sync.Mutex
)

func stdImporter() (*token.FileSet, types.Importer) {
	importerOnce.Do(func() {
		sharedFset = token.NewFileSet()
		sharedImp = importer.ForCompiler(sharedFset, "source", nil)
	})
	return sharedFset, sharedImp
}

// expectation is one // want regexp pinned to a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run type-checks the fixture package in dir (relative to the caller's
// testdata/src directory, or absolute), presents it to analyzer a under
// importPath, and compares diagnostics against the fixture's // want
// expectations.
func Run(t *testing.T, dir, importPath string, a *lint.Analyzer) {
	t.Helper()
	if !filepath.IsAbs(dir) {
		dir = filepath.Join("testdata", "src", dir)
	}
	pkg, err := loadFixture(dir, importPath)
	if err != nil {
		t.Fatalf("linttest: loading fixture %s: %v", dir, err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("linttest: running %s on %s: %v", a.Name, dir, err)
	}

	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatalf("linttest: parsing // want comments in %s: %v", dir, err)
	}

	for _, d := range diags {
		if !claimWant(wants, d) {
			t.Errorf("%s:%d: unexpected diagnostic: %s",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				w.file, w.line, w.re)
		}
	}
}

// claimWant marks the first unmatched expectation on the diagnostic's
// line whose regexp matches, and reports whether one was found.
func claimWant(wants []*expectation, d lint.Diagnostic) bool {
	base := filepath.Base(d.Pos.Filename)
	for _, w := range wants {
		if w.matched || w.file != base || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// loadFixture parses and type-checks every *.go file in dir as one
// package with the given import path. Fixture files may import only
// the standard library.
func loadFixture(dir, importPath string) (*lint.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)

	fset, imp := stdImporter()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: imp}
	// The source importer mutates shared caches; serialize in case the
	// test binary runs fixtures in parallel.
	importerMu.Lock()
	tpkg, err := conf.Check(importPath, fset, files, info)
	importerMu.Unlock()
	if err != nil {
		return nil, err
	}
	return &lint.Package{
		Path:  importPath,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// wantMarker locates the expectation list inside a comment's text.
var wantMarker = regexp.MustCompile(`// want (.*)$`)

// quoted matches one double-quoted Go string literal.
var quoted = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// collectWants scans every comment in the fixture for want markers.
func collectWants(pkg *lint.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantMarker.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quoted.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, err
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, err
					}
					wants = append(wants, &expectation{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						re:   re,
					})
				}
			}
		}
	}
	return wants, nil
}
