// Fixture: the global source is unchecked outside this module.
// Run under "example.com/outside".
package fixture

import "math/rand"

func Roll() int { return rand.Intn(6) }
