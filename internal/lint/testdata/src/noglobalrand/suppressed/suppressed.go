// Fixture: a justified //pram:globalrand line suppression.
// Run under "repro/internal/workloads".
package fixture

import "math/rand"

func Jitter() int {
	//pram:globalrand demo-only jitter; determinism not required here
	return rand.Intn(3)
}
