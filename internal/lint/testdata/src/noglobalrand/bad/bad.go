// Fixture: package-level math/rand draws from the shared global
// source. Run under "repro/internal/workloads".
package fixture

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func Draw() (int, int) {
	a := rand.Intn(10)                 // want "rand\\.Intn draws from the process-global source"
	b := randv2.IntN(10)               // want "rand\\.IntN draws from the process-global source"
	rand.Shuffle(2, func(i, j int) {}) // want "rand\\.Shuffle draws from the process-global source"
	return a, b
}

func Seeded() int {
	r := rand.New(rand.NewSource(1)) // constructors are the approved path
	return r.Intn(10)                // methods on an explicit *rand.Rand are fine
}
