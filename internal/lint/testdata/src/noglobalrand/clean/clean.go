// Fixture: randomness threaded through an explicitly seeded *rand.Rand.
// Run under "repro/internal/workloads".
package fixture

import "math/rand"

type gen struct{ r *rand.Rand }

func newGen(seed int64) *gen {
	return &gen{r: rand.New(rand.NewSource(seed))}
}

func (g *gen) Next() int { return g.r.Intn(100) }
