// Fixture: a //pram:globalrand annotation with nothing to excuse.
// Run under "repro/internal/workloads".
package fixture

//pram:globalrand left behind after the rand call moved // want "stale //pram:globalrand"
func Nop() int { return 4 }
