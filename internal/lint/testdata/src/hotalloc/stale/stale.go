// Fixture: //pram:coldalloc annotations that excuse nothing — one
// inside a hot function (stale), one outside any hot function
// (no effect). Run under "repro/internal/quorum".
package fixture

// tick is hot but allocation-free.
//
//pram:hotpath
func tick(n int) int {
	//pram:coldalloc nothing on the next line allocates // want "stale //pram:coldalloc"
	return n + 1
}

func cold(n int) int {
	//pram:coldalloc not in a hot function at all // want "//pram:coldalloc outside a //pram:hotpath function has no effect"
	return n + 2
}
