// Fixture: the arena-alias idiom keeps ownership through local hoists,
// a justified //pram:coldalloc excuses the panic guard, and fmt is
// unrestricted outside hot paths. Run under "repro/internal/quorum".
package fixture

import "fmt"

type ring struct {
	recs []int
}

// drain is hot; its contract-violation guard is cold by definition.
//
//pram:hotpath
func (r *ring) drain(n int) {
	if n < 0 {
		//pram:coldalloc caller-contract panic guard, never taken in steady state
		panic(fmt.Sprintf("ring.drain: negative count %d", n))
	}
	recs := r.recs[:0] // alias hoist: ownership propagates from the receiver
	for i := 0; i < n; i++ {
		recs = append(recs, i)
	}
	r.recs = recs
}

// report is not annotated hot: formatting is unrestricted here.
func (r *ring) report() string { return fmt.Sprintf("%v", r.recs) }
