// Fixture: the tempting-but-allocating ways to write the observability
// hot paths — growing the ring instead of overwriting, formatting inside
// observe, boxing the event for a generic sink. Run under
// "repro/internal/serve".
package fixture

import "fmt"

type event struct {
	round int64
	kind  uint8
}

type recorder struct {
	log   []event
	total int64
}

type sink interface{ accept(any) }

// push grows an unbounded log instead of storing into a fixed ring.
//
//pram:hotpath
func (r *recorder) push(ev event, spill []event) []event {
	r.log = append(r.log, ev) // receiver-owned arena: fine
	spill = append(spill, ev) // want "append to spill in hot path push"
	return append(spill, ev)  // want "append to spill in hot path push"
}

type histogram struct {
	counts []int64
	total  int64
}

// observe formats and boxes on every sample.
//
//pram:hotpath
func (h *histogram) observe(v int64, out sink) string {
	h.counts[0]++
	h.total++
	out.accept(v)                      // want "argument boxes int64 into any in hot path observe"
	track := func() int64 { return v } // want "closure in hot path observe captures v"
	_ = track()
	return fmt.Sprintf("%d", v) // want "fmt\\.Sprintf in hot path observe: formatting allocates"
}

type spanRecorder struct {
	spans []event
}

// pushSpan materialises labels per span — a stringly-typed stage name and
// boxed args — instead of storing a flat struct into an owned ring.
//
//pram:hotpath
func (r *spanRecorder) pushSpan(round int64, out sink, args []any) []any {
	name := fmt.Sprintf("round-%d", round) // want "fmt\\.Sprintf in hot path pushSpan: formatting allocates"
	out.accept(name)                       // want "argument boxes string into any in hot path pushSpan"
	boxed := any(round)                    // want "conversion boxes int64 into any in hot path pushSpan"
	args = append(args, boxed)             // want "append to args in hot path pushSpan"
	return args
}
