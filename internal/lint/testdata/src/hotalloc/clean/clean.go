// Fixture: a hot function whose appends are all rooted in owned
// arenas (receiver and pointer parameter), including a two-step alias
// chain. Run under "repro/internal/quorum".
package fixture

type arena struct{ buf, aux []int }

type shard struct{ sc arena }

// fill is hot; every append lands in an owned arena.
//
//pram:hotpath
func (s *shard) fill(a *arena, n int) {
	sc := &s.sc
	buf := sc.buf[:0]
	for i := 0; i < n; i++ {
		buf = append(buf, i)
		a.aux = append(a.aux, i*i)
	}
	sc.buf = buf
}
