// Fixture: every construct hotalloc flags, inside one //pram:hotpath
// function. Run under "repro/internal/quorum".
package fixture

import "fmt"

type sim struct {
	buf  []int
	name string
}

type sink interface{ accept(any) }

// step is the per-round hot loop.
//
//pram:hotpath
func (s *sim) step(n int, out sink, scratch []int) string {
	s.buf = append(s.buf, n)     // receiver-owned arena: fine
	scratch = append(scratch, n) // want "append to scratch in hot path step"
	out.accept(n)                // want "argument boxes int into any in hot path step"
	f := func() int { return n } // want "closure in hot path step captures n"
	_ = f()
	return fmt.Sprintf("%d", n) // want "fmt\\.Sprintf in hot path step: formatting allocates"
}

// label boxes its result on every call.
//
//pram:hotpath
func (s *sim) label() any {
	return any(s.name) // want "conversion boxes string into any in hot path label"
}
