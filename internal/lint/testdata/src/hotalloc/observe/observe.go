// Fixture: the observability hot shapes — a fixed-boundary histogram
// observe and a flight-recorder ring append. Both mutate receiver-owned
// preallocated state only; hotalloc must stay silent. Run under
// "repro/internal/serve".
package fixture

type histogram struct {
	counts []int64
	sum    int64
	total  int64
}

// observe is the per-sample hot path: bucket index + three int64 bumps
// into a preallocated counts slice.
//
//pram:hotpath
func (h *histogram) observe(v int64) {
	idx := 0
	for b := int64(1); b < v && idx < len(h.counts)-1; b *= 2 {
		idx++
	}
	h.counts[idx]++
	h.sum += v
	h.total++
}

type event struct {
	round int64
	kind  uint8
	a, b  int64
}

type recorder struct {
	ring  []event
	total int64
}

// push is the per-event hot path: a struct store into a preallocated ring
// slot, overwriting the oldest once full.
//
//pram:hotpath
func (r *recorder) push(ev event) {
	r.ring[r.total%int64(len(r.ring))] = ev
	r.total++
}

type waiter struct {
	ring       []int64
	head, live int
}

// pushWait/popWait: the queue-wait ring pair — receiver-owned stores and
// index arithmetic only.
//
//pram:hotpath
func (w *waiter) pushWait(round int64) {
	w.ring[(w.head+w.live)%len(w.ring)] = round
	w.live++
}

//pram:hotpath
func (w *waiter) popWait() int64 {
	r := w.ring[w.head]
	w.head = (w.head + 1) % len(w.ring)
	w.live--
	return r
}

type spanEvent struct {
	round, start, dur int64
	stage             uint8
	track             int32
	a, b, c           int64
}

type spanRecorder struct {
	ring  []spanEvent
	total int64
	vt    int64
}

// pushSpan/advance: the span-recorder hot pair — a flat struct store into
// a preallocated ring slot (overwriting the oldest once full) plus
// virtual-clock arithmetic. No labels, no maps, no boxing.
//
//pram:hotpath
func (r *spanRecorder) pushSpan(ev spanEvent) {
	r.ring[r.total%int64(len(r.ring))] = ev
	r.total++
}

//pram:hotpath
func (r *spanRecorder) advance(d int64) {
	r.vt += d
}
