// Fixture: correctly placed annotations in a package none of their
// analyzers check. Run under "repro/cmd/tool".
//
//pram:wallclock presentation layer // want "//pram:wallclock has no effect"
package fixture

func Total(m map[int]int) int {
	t := 0
	//pram:unordered nomaprange does not check cmd/ // want "//pram:unordered has no effect"
	for _, v := range m {
		t += v
	}
	return t
}
