// Fixture: grammar violations — misplaced wallclock, unknown name,
// hotpath outside a function doc comment. Run under
// "repro/internal/quorum".
package fixture

//pram:wallclock must sit above the package clause // want "//pram:wallclock is file-scoped"

//pram:hotloop no such directive // want "unknown directive //pram:hotloop"
var x = 1

func f() int {
	//pram:hotpath inside a body, not a doc comment // want "//pram:hotpath is declaration-scoped"
	return x
}
