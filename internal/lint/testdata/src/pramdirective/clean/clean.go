// Fixture: every directive in its legal position and scope.
// Run under "repro/internal/serve".
//
//pram:wallclock measurement file: clock reads never touch sim state
package fixture

import "math/rand"

// hot is the per-round loop.
//
//pram:hotpath
func hot(r *rand.Rand, m map[int]int) int {
	t := 0
	//pram:unordered integer addition commutes
	for _, v := range m {
		t += v
	}
	//pram:globalrand consumed by noglobalrand, not pramdirective
	t += r.Intn(3)
	//pram:coldalloc consumed by hotalloc, not pramdirective
	return t
}
