// Fixture: the sorted-key idiom that replaces a map range.
// Run under "repro/internal/model".
package fixture

import "sort"

func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for range m { // keyless: only counts, order unobservable
		keys = append(keys, "")
	}
	keys = keys[:0]
	//pram:unordered key collection: the sort below fixes the order
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
