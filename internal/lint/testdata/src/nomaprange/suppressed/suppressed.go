// Fixture: commutative map ranges carrying //pram:unordered, in both
// attachment positions. Run under "repro/internal/model".
package fixture

func Sum(m map[int]int) int {
	total := 0
	//pram:unordered integer addition commutes; order cannot leak
	for _, v := range m {
		total += v
	}
	for _, v := range m { //pram:unordered integer addition commutes
		total += v
	}
	return total
}
