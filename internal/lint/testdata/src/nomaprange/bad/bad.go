// Fixture: order-sensitive map range in a deterministic package.
// Run under "repro/internal/model".
package fixture

func Keys(m map[int]string) []int {
	var out []int
	for k := range m { // want "range over map m in deterministic package"
		out = append(out, k)
	}
	n := 0
	for range m { // exempt: no iteration variables, order unobservable
		n++
	}
	return out[:min(len(out), n)]
}
