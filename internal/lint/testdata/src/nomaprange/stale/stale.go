// Fixture: a //pram:unordered annotation with no map range to excuse.
// Run under "repro/internal/model".
package fixture

func Sum(vals []int) int {
	total := 0
	//pram:unordered left over from a refactor // want "stale //pram:unordered"
	for _, v := range vals {
		total += v
	}
	return total
}
