// Fixture: map ranges are unchecked outside the deterministic set.
// Run under "repro/cmd/tool".
package fixture

func Dump(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
