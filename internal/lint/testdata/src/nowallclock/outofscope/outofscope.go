// Fixture: wall-clock reads are fine outside the virtual-time
// packages. Run under "repro/cmd/tool".
package fixture

import "time"

func Stamp() time.Time { return time.Now() }
