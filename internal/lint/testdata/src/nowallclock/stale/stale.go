// Fixture: a //pram:wallclock exemption with nothing left to exempt.
// Run under "repro/internal/model".
//
//pram:wallclock nothing in this file reads the clock any more // want "stale //pram:wallclock"
package fixture

func Nop() int { return 1 }
