// Fixture: time.Duration arithmetic is legal; only the ambient clock
// is banned. Run under "repro/internal/mot".
package fixture

import "time"

func Budget(rounds int) time.Duration {
	return time.Duration(rounds) * 5 * time.Millisecond
}
