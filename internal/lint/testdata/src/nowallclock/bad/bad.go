// Fixture: wall-clock reads in a virtual-time package, no exemption.
// Run under "repro/internal/quorum".
package fixture

import "time"

func Tick() time.Duration {
	start := time.Now()          // want "time\\.Now reads the wall clock in virtual-time package"
	time.Sleep(time.Millisecond) // want "time\\.Sleep reads the wall clock"
	return time.Since(start)     // want "time\\.Since reads the wall clock"
}
