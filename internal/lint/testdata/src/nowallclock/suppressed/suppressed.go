// Fixture: wall-clock use exempted by the file-scoped annotation.
// Run under "repro/internal/serve".
//
//pram:wallclock HTTP front end: ticks are translated to virtual rounds
package fixture

import "time"

func Poll() time.Time { return time.Now() }
