package lint

import (
	"go/ast"
	"go/types"
)

// NoMapRange enforces the classic bit-for-bit killer: ranging over a
// map in a deterministic package. Go randomizes map iteration order per
// run, so any map range whose body's effect depends on visit order
// (appending, emitting, first-wins assignment, accumulating
// order-sensitive floats) silently breaks the byte-identical-report
// invariant. A range whose body is genuinely commutative (set
// membership counting, max/min over values, inserting into another
// keyed structure) is annotated //pram:unordered on or directly above
// the range statement; the analyzer reports stale annotations so the
// assertion cannot outlive the loop.
//
// Ranges that bind no iteration variables (`for range m { ... }`) are
// exempt: with no key or value in scope the body cannot observe order.
var NoMapRange = &Analyzer{
	Name: "nomaprange",
	Doc: "forbid range-over-map in deterministic packages unless annotated " +
		"//pram:unordered (map iteration order is randomized per run)",
	Run: runNoMapRange,
}

func runNoMapRange(pass *Pass) error {
	if !IsDeterministicPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		var unordered []*Directive
		for _, d := range ScanDirectives(pass.Fset, f) {
			if d.Name == "unordered" {
				unordered = append(unordered, d)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if rng.Key == nil && rng.Value == nil {
				return true
			}
			line := pass.Fset.Position(rng.Pos()).Line
			for _, d := range unordered {
				if d.attachedTo(line) {
					d.Used = true
					return true
				}
			}
			pass.Reportf(rng.Pos(),
				"range over map %s in deterministic package %s: iteration order is "+
					"randomized per run; iterate a sorted key slice, or annotate "+
					"//pram:unordered if the body is commutative", types.ExprString(rng.X),
				pass.Pkg.Path())
			return true
		})
		for _, d := range unordered {
			if !d.Used {
				pass.Reportf(d.Pos,
					"stale //pram:unordered: no map range on this or the next line")
			}
		}
	}
	return nil
}
