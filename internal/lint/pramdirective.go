package lint

import (
	"go/ast"
)

// PramDirective validates the //pram: annotation grammar itself, so a
// typo'd or misplaced annotation fails CI instead of silently
// suppressing nothing: unknown directive names, //pram:wallclock not in
// file-scoped position (above the package clause), //pram:wallclock in
// a package that is not under the virtual-time invariant, and
// //pram:hotpath outside a function's doc comment.
var PramDirective = &Analyzer{
	Name: "pramdirective",
	Doc: "validate //pram: annotation grammar: known names, file-scoped wallclock, " +
		"hotpath on function doc comments",
	Run: runPramDirective,
}

func runPramDirective(pass *Pass) error {
	for _, f := range pass.Files {
		// Doc-comment spans where //pram:hotpath is legal.
		type span struct{ lo, hi int }
		var docSpans []span
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Doc != nil {
				docSpans = append(docSpans, span{int(fn.Doc.Pos()), int(fn.Doc.End())})
			}
		}
		for _, d := range ScanDirectives(pass.Fset, f) {
			switch d.Name {
			case "wallclock":
				if !d.BeforePackage {
					pass.Reportf(d.Pos,
						"//pram:wallclock is file-scoped: place it above the package clause "+
							"(it exempts the whole file, so it must be visible at the top)")
				} else if !IsVirtualTimePackage(pass.Pkg.Path()) {
					pass.Reportf(d.Pos,
						"//pram:wallclock has no effect in %s: only virtual-time packages "+
							"(model, quorum, mot, replay, serve, experiments) are checked",
						pass.Pkg.Path())
				}
			case "hotpath":
				inDoc := false
				for _, s := range docSpans {
					if int(d.Pos) >= s.lo && int(d.Pos) < s.hi {
						inDoc = true
						break
					}
				}
				if !inDoc {
					pass.Reportf(d.Pos,
						"//pram:hotpath is declaration-scoped: place it in the doc comment "+
							"of the function it opts into hotalloc")
				}
			case "unordered":
				if !IsDeterministicPackage(pass.Pkg.Path()) {
					pass.Reportf(d.Pos,
						"//pram:unordered has no effect in %s: only deterministic packages "+
							"(root + internal/...) are checked by nomaprange", pass.Pkg.Path())
				}
			case "globalrand", "coldalloc":
				// Scope-wide analyzers; their consumers report staleness.
			default:
				pass.Reportf(d.Pos,
					"unknown directive //pram:%s (known: wallclock, unordered, globalrand, "+
						"hotpath, coldalloc)", d.Name)
			}
		}
	}
	return nil
}
