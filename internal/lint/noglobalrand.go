package lint

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand (and v2) package-level functions
// that BUILD explicitly seeded generators rather than touching the
// shared global state. These are the approved path: randomness must
// flow through a *rand.Rand (or PCG/ChaCha8 source) whose seed is part
// of the run's configuration, so per-subsystem RNG partitioning stays
// possible and reseeding one subsystem cannot perturb another.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// NoGlobalRand forbids the global math/rand state everywhere in this
// module (internal/, cmd/, examples/, the root package). The global
// functions (rand.Intn, rand.Perm, rand.Shuffle, ...) share one
// process-wide source: any call order perturbation — a new goroutine, a
// reordered init, a test running first — changes every subsequent draw,
// which breaks (seed → identical run) reproducibility in a way no seed
// threading can repair. Methods on an explicit *rand.Rand are always
// fine. A line that genuinely wants ambient randomness (none does
// today) can carry //pram:globalrand with a justification.
var NoGlobalRand = &Analyzer{
	Name: "noglobalrand",
	Doc: "forbid package-level math/rand functions (global shared state); " +
		"thread an explicitly seeded *rand.Rand instead",
	Run: runNoGlobalRand,
}

func runNoGlobalRand(pass *Pass) error {
	if !IsModulePackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		var allowed []*Directive
		for _, d := range ScanDirectives(pass.Fset, f) {
			if d.Name == "globalrand" {
				allowed = append(allowed, d)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil {
				return true
			}
			if p := obj.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			if obj.Type().(*types.Signature).Recv() != nil || randConstructors[obj.Name()] {
				return true
			}
			line := pass.Fset.Position(sel.Pos()).Line
			for _, d := range allowed {
				if d.attachedTo(line) {
					d.Used = true
					return true
				}
			}
			pass.Reportf(sel.Pos(),
				"rand.%s draws from the process-global source; thread a seeded "+
					"*rand.Rand through the call path instead (//pram:globalrand to "+
					"override outside simulation code)", obj.Name())
			return true
		})
		for _, d := range allowed {
			if !d.Used {
				pass.Reportf(d.Pos,
					"stale //pram:globalrand: no global math/rand use on this or the next line")
			}
		}
	}
	return nil
}
