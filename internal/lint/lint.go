package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check. It mirrors the shape of
// golang.org/x/tools/go/analysis.Analyzer, but is self-contained: the
// container this repo builds in has no module cache beyond the standard
// library, so the framework is reimplemented here on stdlib go/ast +
// go/types only. Keeping the same (Name, Doc, Run(*Pass)) contract means
// the analyzers can migrate to the real multichecker mechanically if
// x/tools ever becomes available.
type Analyzer struct {
	// Name is the short diagnostic prefix, e.g. "nowallclock".
	Name string
	// Doc is the one-paragraph invariant statement shown by
	// `pramvet -help`.
	Doc string
	// Run inspects one type-checked package and reports findings via
	// pass.Report. It must not depend on map iteration order itself:
	// pramvet sorts diagnostics by position before printing, but
	// analysistest fixtures compare per-line, so Run should visit files
	// in pass.Files order.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to every package and returns the combined
// findings sorted by file, line, column, then analyzer name. An analyzer
// returning an error aborts the run: analyzer errors are bugs in the
// analyzer, not findings in the tree.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzing %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// All returns every pramvet analyzer in its canonical order.
func All() []*Analyzer {
	return []*Analyzer{
		NoWallClock,
		NoMapRange,
		NoGlobalRand,
		HotAlloc,
		PramDirective,
	}
}
