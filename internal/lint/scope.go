package lint

import "strings"

// Module is the import-path prefix of this repository's module. The
// scope predicates below match full import paths against it so that a
// hypothetical downstream package that happens to be called "quorum"
// never inherits this repo's invariants by accident.
const Module = "repro"

// virtualTimePackages are the packages that run in VIRTUAL round/cycle
// time: everything observable about them must be a pure function of
// (seed, specs, script), so any wall-clock read is a determinism bug.
// internal/serve is on the list even though its HTTP front end
// necessarily runs a wall-clock loop: that one file opts out with a
// file-scoped //pram:wallclock annotation, which nowallclock verifies.
// internal/experiments is on the list because experiment REPORTS feed
// CSV goldens; its wall-clock latency measurements likewise opt out
// per file with a justification comment.
var virtualTimePackages = map[string]bool{
	"model":       true,
	"quorum":      true,
	"mot":         true,
	"span":        true,
	"replay":      true,
	"serve":       true,
	"experiments": true,
}

// IsVirtualTimePackage reports whether the package at path must stay
// free of wall-clock reads (the nowallclock invariant).
func IsVirtualTimePackage(path string) bool {
	rest, ok := strings.CutPrefix(path, Module+"/internal/")
	return ok && virtualTimePackages[rest]
}

// IsDeterministicPackage reports whether the package at path carries the
// bit-for-bit determinism invariant (the nomaprange invariant): the root
// package and everything under internal/. The cmd/ and examples/ trees
// are presentation layers — their output ordering is governed by the
// stats/table layer they call into, not by their own loops — so they are
// deliberately outside this set.
func IsDeterministicPackage(path string) bool {
	if path == Module {
		return true
	}
	return strings.HasPrefix(path, Module+"/internal/")
}

// IsModulePackage reports whether the package at path belongs to this
// module at all (the noglobalrand invariant applies module-wide,
// including cmd/ and examples/).
func IsModulePackage(path string) bool {
	return path == Module || strings.HasPrefix(path, Module+"/")
}
