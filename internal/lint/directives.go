package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //pram: directive grammar. A directive is a line comment of the
// exact form
//
//	//pram:<name> [justification...]
//
// (no space between // and pram:, mirroring the //go: directive
// convention so gofmt keeps it glued to the next line). The five names
// and their scopes:
//
//	//pram:wallclock  file-scoped; must appear above the package clause.
//	                  Exempts the file from nowallclock. The annotation
//	                  asserts every wall-clock read in the file is
//	                  confined to measurement/IO, never simulation state.
//	//pram:unordered  statement-scoped; on the line of a range-over-map
//	                  statement or the line directly above it. Asserts
//	                  the loop body is commutative, so iteration order
//	                  cannot leak into observable state.
//	//pram:globalrand line-scoped; same attachment rule. Permits a use
//	                  of global math/rand state on that line (tooling
//	                  and examples only — never simulation packages).
//	//pram:hotpath    declaration-scoped; in a function's doc comment.
//	                  Opts the function into hotalloc's zero-alloc
//	                  source checks.
//	//pram:coldalloc  line-scoped, inside a //pram:hotpath function.
//	                  Marks a line as a cold/guarded path that is
//	                  allowed to allocate (error exits, first-call
//	                  growth).
//
// Every analyzer that honors a suppression also reports the STALE form
// of it — an annotation with nothing left to suppress — so annotations
// cannot outlive the code they excused. pramdirective validates the
// grammar itself (unknown names, mis-scoped wallclock/hotpath).
const directivePrefix = "//pram:"

// KnownDirectives is the closed set of valid //pram: names.
var KnownDirectives = map[string]bool{
	"wallclock":  true,
	"unordered":  true,
	"globalrand": true,
	"hotpath":    true,
	"coldalloc":  true,
}

// Directive is one scanned //pram: line in one file.
type Directive struct {
	Name string // text between "pram:" and the first space
	Pos  token.Pos
	Line int
	// BeforePackage is true when the directive sits above the package
	// clause — the only placement where //pram:wallclock is valid.
	BeforePackage bool
	// Used is set by the analyzer that consumed the directive as a
	// suppression; unconsumed suppressions are reported as stale.
	Used bool
}

// ScanDirectives returns every //pram: directive in f, in position order.
func ScanDirectives(fset *token.FileSet, f *ast.File) []*Directive {
	var out []*Directive
	for _, g := range f.Comments {
		for _, c := range g.List {
			name, ok := parseDirective(c.Text)
			if !ok {
				continue
			}
			out = append(out, &Directive{
				Name:          name,
				Pos:           c.Pos(),
				Line:          fset.Position(c.Pos()).Line,
				BeforePackage: c.Pos() < f.Package,
			})
		}
	}
	return out
}

// parseDirective extracts the directive name from a comment's text, or
// reports false if the comment is not a //pram: directive at all.
func parseDirective(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, directivePrefix)
	if !ok {
		return "", false
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest, true
}

// attachedTo reports whether a line-scoped directive attaches to a
// statement beginning at stmtLine: trailing on the same line, or alone
// on the line directly above.
func (d *Directive) attachedTo(stmtLine int) bool {
	return d.Line == stmtLine || d.Line == stmtLine-1
}

// FileWallclock reports whether f carries a file-scoped
// //pram:wallclock annotation, returning the directive when present.
func FileWallclock(fset *token.FileSet, f *ast.File) *Directive {
	for _, d := range ScanDirectives(fset, f) {
		if d.Name == "wallclock" && d.BeforePackage {
			return d
		}
	}
	return nil
}

// IsHotPath reports whether fn's doc comment carries //pram:hotpath.
func IsHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if name, ok := parseDirective(c.Text); ok && name == "hotpath" {
			return true
		}
	}
	return false
}
