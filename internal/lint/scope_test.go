package lint

import "testing"

func TestScopePredicates(t *testing.T) {
	cases := []struct {
		path                   string
		virtual, deterministic bool
		module                 bool
	}{
		{"repro", false, true, true},
		{"repro/internal/model", true, true, true},
		{"repro/internal/quorum", true, true, true},
		{"repro/internal/mot", true, true, true},
		{"repro/internal/replay", true, true, true},
		{"repro/internal/serve", true, true, true},
		{"repro/internal/experiments", true, true, true},
		{"repro/internal/memmap", false, true, true},
		{"repro/internal/workloads", false, true, true},
		{"repro/cmd/pramvet", false, false, true},
		{"repro/examples/demo", false, false, true},
		// A foreign module with coincidentally matching suffixes must
		// never inherit this repo's invariants.
		{"example.com/quorum", false, false, false},
		{"example.com/internal/quorum", false, false, false},
		{"reprox/internal/model", false, false, false},
	}
	for _, c := range cases {
		if got := IsVirtualTimePackage(c.path); got != c.virtual {
			t.Errorf("IsVirtualTimePackage(%q) = %v, want %v", c.path, got, c.virtual)
		}
		if got := IsDeterministicPackage(c.path); got != c.deterministic {
			t.Errorf("IsDeterministicPackage(%q) = %v, want %v", c.path, got, c.deterministic)
		}
		if got := IsModulePackage(c.path); got != c.module {
			t.Errorf("IsModulePackage(%q) = %v, want %v", c.path, got, c.module)
		}
	}
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text string
		name string
		ok   bool
	}{
		{"//pram:unordered addition commutes", "unordered", true},
		{"//pram:wallclock", "wallclock", true},
		{"//pram:hotpath\tjustification after a tab", "hotpath", true},
		{"// pram:unordered spaced prefix is prose, not a directive", "", false},
		{"//go:noinline", "", false},
		{"// plain comment", "", false},
	}
	for _, c := range cases {
		name, ok := parseDirective(c.text)
		if ok != c.ok || (ok && name != c.name) {
			t.Errorf("parseDirective(%q) = %q, %v; want %q, %v", c.text, name, ok, c.name, c.ok)
		}
	}
}

func TestDirectiveAttachment(t *testing.T) {
	d := &Directive{Line: 10}
	for line, want := range map[int]bool{10: true, 11: true, 9: false, 12: false} {
		if got := d.attachedTo(line); got != want {
			t.Errorf("directive on line 10: attachedTo(%d) = %v, want %v", line, got, want)
		}
	}
}
