package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	ImportMap  map[string]string
	Error      *listPkgError
	DepsErrors []*listPkgError
}

type listPkgError struct {
	Err string
}

// LoadPackages loads and type-checks the packages matching patterns
// (resolved relative to dir, which must sit inside the module), plus
// their full transitive dependency closure, entirely from source. It
// shells out to `go list -json -deps` for build-constraint-correct file
// lists and dependency order, then runs go/types bottom-up with an
// importer backed by the already-checked packages — the stdlib-only
// replacement for golang.org/x/tools/go/packages, which this container
// cannot fetch.
//
// Only non-test GoFiles are analyzed: the determinism and zero-alloc
// invariants are properties of shipping code; tests exercise them but
// are free to range maps and read clocks while doing so.
//
// CGO_ENABLED=0 is forced so cgo-flavored files (import "C") never
// reach the type checker and std packages resolve to their pure-Go
// fallbacks.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	var order []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		order = append(order, lp)
	}

	fset := token.NewFileSet()
	checked := map[string]*types.Package{"unsafe": types.Unsafe}
	imp := &mapImporter{checked: checked}
	var targets []*Package

	for _, lp := range order {
		if lp.ImportPath == "unsafe" {
			continue
		}
		target := !lp.Standard && !lp.DepOnly
		mode := parser.SkipObjectResolution
		if target {
			mode |= parser.ParseComments
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, mode)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", filepath.Join(lp.Dir, name), err)
			}
			files = append(files, f)
		}
		var info *types.Info
		if target {
			info = &types.Info{
				Types: map[ast.Expr]types.TypeAndValue{},
				Defs:  map[*ast.Ident]types.Object{},
				Uses:  map[*ast.Ident]types.Object{},
			}
		}
		imp.importMap = lp.ImportMap
		var firstErr error
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				if firstErr == nil {
					firstErr = err
				}
			},
		}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if firstErr == nil {
			firstErr = err
		}
		if firstErr != nil {
			return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, firstErr)
		}
		checked[lp.ImportPath] = tpkg
		if target {
			targets = append(targets, &Package{
				Path:  lp.ImportPath,
				Fset:  fset,
				Files: files,
				Types: tpkg,
				Info:  info,
			})
		}
	}
	return targets, nil
}

// mapImporter resolves imports against the packages checked so far.
// `go list -deps` guarantees dependency order, so a miss is a loader
// bug, not a user error.
type mapImporter struct {
	checked   map[string]*types.Package
	importMap map[string]string // per-package vendor/test remapping
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if pkg, ok := m.checked[path]; ok {
		return pkg, nil
	}
	return nil, errors.New("import " + path + " not in dependency closure")
}
