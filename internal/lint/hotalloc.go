package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc is the source-level complement to the testing.AllocsPerRun
// suite: the alloc tests prove THAT a hot path stayed at 0 allocs/op,
// this analyzer points at the LINE that would break it. For every
// function whose doc comment carries //pram:hotpath it flags the four
// constructs that have historically defeated the zero-alloc invariant:
//
//   - fmt.* calls (Sprintf/Errorf/...): formatting always allocates;
//   - interface boxing at call sites: passing or converting a
//     non-pointer-shaped value (string, struct, int, slice header) into
//     an interface parameter materializes it on the heap;
//   - closures that capture enclosing variables: the closure and every
//     captured variable move to the heap;
//   - append to a slice the function does not own (not rooted in the
//     receiver or a pointer-typed parameter): growth allocates, and
//     ownership is what lets the arena pattern amortize it to zero.
//
// A line that is deliberately cold — an error exit, first-call growth of
// a receiver arena — carries //pram:coldalloc with a justification; the
// analyzer consumes the annotation and reports it when stale.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flag allocation-causing constructs (fmt, interface boxing, capturing " +
		"closures, unowned append) inside //pram:hotpath functions",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		var cold []*Directive
		for _, d := range ScanDirectives(pass.Fset, f) {
			if d.Name == "coldalloc" {
				cold = append(cold, d)
			}
		}
		var hotRanges [][2]int // [start line, end line] of hotpath functions
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !IsHotPath(fn) {
				continue
			}
			hotRanges = append(hotRanges, [2]int{
				pass.Fset.Position(fn.Pos()).Line,
				pass.Fset.Position(fn.End()).Line,
			})
			checkHotFunc(pass, fn, cold)
		}
		for _, d := range cold {
			if d.Used {
				continue
			}
			inHot := false
			for _, r := range hotRanges {
				if d.Line >= r[0] && d.Line <= r[1] {
					inHot = true
					break
				}
			}
			if inHot {
				pass.Reportf(d.Pos,
					"stale //pram:coldalloc: no allocation-causing construct on this or the next line")
			} else {
				pass.Reportf(d.Pos,
					"//pram:coldalloc outside a //pram:hotpath function has no effect; drop it")
			}
		}
	}
	return nil
}

// reportHot emits a hotalloc finding unless a //pram:coldalloc directive
// is attached to its line.
func reportHot(pass *Pass, cold []*Directive, pos ast.Node, format string, args ...any) {
	line := pass.Fset.Position(pos.Pos()).Line
	for _, d := range cold {
		if d.attachedTo(line) {
			d.Used = true
			return
		}
	}
	pass.Reportf(pos.Pos(), format, args...)
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl, cold []*Directive) {
	info := pass.TypesInfo

	// Slice-owner roots: the receiver, plus every pointer-typed
	// parameter (a *shard-style scratch owner passed explicitly).
	owners := map[types.Object]bool{}
	if fn.Recv != nil {
		for _, field := range fn.Recv.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					owners[obj] = true
				}
			}
		}
	}
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			for _, name := range field.Names {
				obj := info.Defs[name]
				if obj == nil {
					continue
				}
				if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
					owners[obj] = true
				}
			}
		}
	}
	propagateOwnership(info, fn.Body, owners)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, fn, n, owners, cold)
		case *ast.FuncLit:
			checkHotClosure(pass, fn, n, cold)
		}
		return true
	})
}

func checkHotCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, owners map[types.Object]bool, cold []*Directive) {
	info := pass.TypesInfo
	funTV, ok := info.Types[call.Fun]
	if !ok {
		return
	}

	// Conversion to an interface type: T(x) with interface T boxes x.
	if funTV.IsType() {
		if len(call.Args) == 1 && types.IsInterface(funTV.Type) {
			if atv, ok := info.Types[call.Args[0]]; ok && boxes(atv) {
				reportHot(pass, cold, call,
					"conversion boxes %s into %s in hot path %s (heap-allocates the value)",
					atv.Type, funTV.Type, fn.Name.Name)
			}
		}
		return
	}

	// Builtins: only append needs checking.
	if funTV.IsBuiltin() {
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
			if !ownedSlice(info, call.Args[0], owners) {
				reportHot(pass, cold, call,
					"append to %s in hot path %s: the slice is not rooted in the receiver "+
						"or a pointer parameter, so growth allocates outside any owned arena",
					types.ExprString(call.Args[0]), fn.Name.Name)
			}
		}
		return
	}

	// fmt.* always formats, which always allocates.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj, ok := info.Uses[sel.Sel].(*types.Func); ok &&
			obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			reportHot(pass, cold, call,
				"fmt.%s in hot path %s: formatting allocates; precompute the message "+
					"or move it to a cold path", obj.Name(), fn.Name.Name)
			return
		}
	}

	// Interface boxing at the call site: a non-interface argument
	// passed to an interface-typed parameter.
	sig, ok := funTV.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var ptype types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through whole, no per-element boxing
			}
			ptype = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			ptype = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(ptype) {
			continue
		}
		atv, ok := info.Types[arg]
		if !ok || !boxes(atv) {
			continue
		}
		reportHot(pass, cold, arg,
			"argument boxes %s into %s in hot path %s (heap-allocates per call)",
			atv.Type, ptype, fn.Name.Name)
	}
}

// boxes reports whether converting a value of tv's type to an interface
// allocates: nil and interface values don't, pointer-shaped kinds
// (pointers, maps, chans, funcs, unsafe.Pointer) fit the interface data
// word directly, everything else (strings, structs, arrays, slices,
// numerics beyond the runtime's small-int cache) goes to the heap.
func boxes(tv types.TypeAndValue) bool {
	if tv.IsNil() || tv.Type == nil {
		return false
	}
	if types.IsInterface(tv.Type) {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return false
	}
	return true
}

// propagateOwnership extends the owner set through local aliases, the
// shape the arena pattern actually takes in the hot loops: hoisting a
// receiver field into a local (`active := nw.active[:0]`, `sc := &m.sc`)
// must not launder away its ownership. Any variable assigned from an
// expression rooted in an owner (through selectors, slicings, &, * and
// append chains) becomes an owner itself; iterate to a fixpoint so
// chains of hoists (`sc := &m.sc; recs := sc.recs[:0]`) resolve in any
// statement order.
func propagateOwnership(info *types.Info, body ast.Node, owners map[types.Object]bool) {
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, lhs := range assign.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || owners[obj] {
					continue
				}
				if ownedSlice(info, assign.Rhs[i], owners) {
					owners[obj] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			return
		}
	}
}

// ownedSlice reports whether the append destination expr is rooted in
// the method receiver, a pointer-typed parameter, or a local alias of
// either (see propagateOwnership) — the ownership shapes under which
// the arena pattern keeps steady-state growth at zero.
func ownedSlice(info *types.Info, expr ast.Expr, owners map[types.Object]bool) bool {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.UnaryExpr:
			if e.Op != token.AND {
				return false
			}
			expr = e.X
		case *ast.CallExpr:
			// append(owned, ...) keeps ownership on the result.
			if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
				if tv, ok := info.Types[e.Fun]; ok && tv.IsBuiltin() {
					expr = e.Args[0]
					continue
				}
			}
			return false
		case *ast.Ident:
			return owners[info.Uses[e]]
		default:
			return false
		}
	}
}

// checkHotClosure flags a func literal that captures variables of the
// enclosing function: captured variables and the closure itself move to
// the heap.
func checkHotClosure(pass *Pass, fn *ast.FuncDecl, fl *ast.FuncLit, cold []*Directive) {
	info := pass.TypesInfo
	var captured []string
	seen := map[types.Object]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() || seen[obj] {
			return true
		}
		// Captured = declared inside the enclosing function but outside
		// this literal. Package-level variables are not captures.
		if v.Pos() >= fn.Pos() && v.Pos() < fn.End() &&
			!(v.Pos() >= fl.Pos() && v.Pos() < fl.End()) {
			seen[obj] = true
			captured = append(captured, v.Name())
		}
		return true
	})
	if len(captured) == 0 {
		return
	}
	names := captured[0]
	for _, n := range captured[1:] {
		names += ", " + n
	}
	reportHot(pass, cold, fl,
		"closure in hot path %s captures %s by reference: the closure and its "+
			"captures escape to the heap; hoist state into the receiver or pass it explicitly",
		fn.Name.Name, names)
}
