// Package lint machine-enforces the two invariants everything in this
// repository leans on — determinism and zero-allocation hot paths — as
// a suite of static analyzers run by cmd/pramvet over the whole tree
// on every CI run.
//
// # Why a linter
//
// The simulator's contract is that a run is a pure function of
// (seed, specs, script): the same inputs produce bit-for-bit identical
// step reports, traces and store fingerprints across engine counts K,
// router worker counts, and host machines. That property is what the
// golden-trace tests, the record/replay verifier and the serving
// -check gate all certify — but they certify it AFTER a violation is
// written, on the inputs they happen to run. The analyzers here reject
// the violating LINE at review time, for every input:
//
//	nowallclock    no time.Now/Since/Until/Sleep/NewTimer/NewTicker/
//	               After/AfterFunc/Tick in the virtual-time packages
//	               (model, quorum, mot, replay, serve, experiments).
//	               A file whose job is wall-clock bound — the HTTP
//	               round loop, experiment latency measurement — opts
//	               out per file with //pram:wallclock.
//	nomaprange     no range over a map in deterministic packages (the
//	               root package and internal/...): Go randomizes map
//	               iteration order per run. Commutative loop bodies
//	               are annotated //pram:unordered; keyless ranges
//	               (`for range m`) are exempt because the body cannot
//	               observe order.
//	noglobalrand   no package-level math/rand (or v2) functions
//	               anywhere in the module: the global source is shared
//	               process-wide state, so any call-order perturbation
//	               reseeds every subsequent draw. Randomness flows
//	               through explicitly seeded *rand.Rand values.
//	hotalloc       inside functions annotated //pram:hotpath, flag the
//	               constructs that defeat the zero-alloc invariant the
//	               AllocsPerRun tests and cmd/bench -diff lock in:
//	               fmt.* calls, interface boxing at call sites and
//	               conversions, closures capturing enclosing
//	               variables, and append to slices not rooted in the
//	               receiver or a pointer parameter (local aliases of
//	               owned arenas — `sc := &m.sc; recs := sc.recs[:0]` —
//	               are traced and stay owned). Deliberately cold lines
//	               (panic guards, error exits) carry //pram:coldalloc.
//	pramdirective  validates the //pram: grammar itself: unknown
//	               names, misplaced file-scoped wallclock, hotpath
//	               outside a function doc comment, and annotations in
//	               packages their analyzer never checks.
//
// Every suppression is itself checked: an annotation with nothing left
// to excuse is reported as stale, so escape hatches cannot outlive the
// code they excused. The //pram: directive grammar is specified on
// directivePrefix in directives.go; the package scope predicates
// (which import paths carry which invariant) live in scope.go.
//
// # Framework
//
// The Analyzer/Pass shapes mirror golang.org/x/tools/go/analysis, but
// the implementation is standard library only (go/ast, go/types): this
// repository builds in environments with no module cache beyond the
// standard library, so x/tools is deliberately not a dependency.
// Package loading (load.go) shells out to `go list -json -deps` and
// type-checks bottom-up from source. If x/tools ever becomes
// available, each Analyzer ports mechanically to the real
// multichecker. Tests drive the analyzers through the miniature
// analysistest in the linttest subpackage against fixture packages
// under testdata/src.
package lint
