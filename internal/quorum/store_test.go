package quorum

import (
	"testing"

	"repro/internal/memmap"
	"repro/internal/model"
)

// TestClockCrossesUint32Boundary is the regression test for the old uint32
// timestamp clock, which panicked ("timestamp clock overflow") once a
// long-running server's batch count wrapped 2^32. The clock and stamps are
// uint64 now: starting every module clock just below the old overflow
// point, batches must stream across the boundary with correct read values
// and strictly advancing stamps.
func TestClockCrossesUint32Boundary(t *testing.T) {
	const n = 64
	p := memmap.LemmaTwo(n, 2, 1)
	st := NewStore(memmap.Generate(p, 11))
	eng := NewEngine(st, NewCompleteBipartite(), n)

	start := uint64(1)<<32 - 2 // two batches below the old panic point
	for v := range st.rowStamp {
		st.rowStamp[v] = start
	}

	for round := 0; round < 6; round++ {
		writes := make([]Request, n)
		for i := range writes {
			writes[i] = Request{Proc: i, Var: i, Write: true, Value: model.Word(round*n + i)}
		}
		if res := eng.ExecuteBatch(writes); res.Stalled {
			t.Fatalf("round %d: write batch stalled", round)
		}
		reads := make([]Request, n)
		for i := range reads {
			reads[i] = Request{Proc: i, Var: i}
		}
		res := eng.ExecuteBatch(reads)
		if res.Stalled {
			t.Fatalf("round %d: read batch stalled", round)
		}
		for i := range reads {
			if want := model.Word(round*n + i); res.Values[i] != want {
				t.Fatalf("round %d: read var %d = %d, want %d (clock=%d)",
					round, i, res.Values[i], want, st.Clock())
			}
		}
	}
	if c := st.Clock(); c <= 1<<32 {
		t.Errorf("clock = %d, expected to have crossed the old uint32 overflow point %d", c, uint64(1)<<32)
	}
}

// TestStoreModuleSharding checks the module shard index: the segments
// tile the m·r cells exactly, every cell appears in exactly one module's
// shard, and it is the shard of the module the memory map places that
// copy in.
func TestStoreModuleSharding(t *testing.T) {
	p := memmap.LemmaTwo(64, 2, 1)
	mp := memmap.Generate(p, 7)
	st := NewStore(mp)

	cells := mp.Vars() * mp.R()
	seen := make([]bool, cells)
	covered := 0
	for mod := 0; mod < mp.Modules(); mod++ {
		start, end := st.ModuleSegment(mod)
		if start > end || start < 0 || end > cells {
			t.Fatalf("module %d: malformed segment [%d, %d)", mod, start, end)
		}
		shard := st.ModuleCells(mod)
		if len(shard) != end-start {
			t.Fatalf("module %d: %d cells for segment [%d, %d)", mod, len(shard), start, end)
		}
		covered += len(shard)
		for _, ci := range shard {
			v, j := int(ci)/mp.R(), int(ci)%mp.R()
			if seen[ci] {
				t.Fatalf("cell %d (v=%d j=%d) owned by two shards", ci, v, j)
			}
			seen[ci] = true
			if mp.ModuleOf(v, j) != mod {
				t.Fatalf("cell (v=%d j=%d) in module %d's shard, map says %d",
					v, j, mod, mp.ModuleOf(v, j))
			}
		}
	}
	if covered != cells {
		t.Fatalf("shards cover %d cells, want %d", covered, cells)
	}
}

// TestStampBatchRowLocality checks the Lamport stamping rule: a batch's
// stamp is one past the maximum row stamp over the variables it WRITES,
// exactly those rows' stamps advance to it, read-only batches stamp
// nothing — the properties that make disjoint batches order-independent.
func TestStampBatchRowLocality(t *testing.T) {
	p := memmap.LemmaTwo(32, 2, 1)
	mp := memmap.Generate(p, 3)
	st := NewStore(mp)

	// Seed the written row's clock high; the stamp must clear it. The read
	// row's higher clock must NOT feed the stamp.
	st.rowStamp[5] = 41
	st.rowStamp[9] = 90
	reqs := []Request{{Proc: 0, Var: 5, Write: true, Value: 1}, {Proc: 1, Var: 9}}
	now := st.StampBatch(reqs)
	if now != 42 {
		t.Fatalf("stamp = %d, want 42 (one past the hottest WRITTEN row)", now)
	}
	if st.RowStamp(5) != 42 {
		t.Errorf("written row stamp = %d, want 42", st.RowStamp(5))
	}
	if st.RowStamp(9) != 90 {
		t.Errorf("read row stamp = %d, want untouched 90", st.RowStamp(9))
	}
	if st.RowStamp(7) != 0 {
		t.Errorf("unrelated row stamp = %d, want 0", st.RowStamp(7))
	}
	// A read-only batch stamps nothing and returns 0.
	if got := st.StampBatch([]Request{{Proc: 0, Var: 5}}); got != 0 {
		t.Errorf("read-only batch stamp = %d, want 0", got)
	}
	if st.RowStamp(5) != 42 {
		t.Errorf("read-only batch moved row 5's stamp to %d", st.RowStamp(5))
	}
}

// TestStoreFingerprintSensitivity: equal images hash equal; changing one
// copy's value or timestamp changes the fingerprint.
func TestStoreFingerprintSensitivity(t *testing.T) {
	p := memmap.LemmaTwo(16, 2, 1)
	mp := memmap.Generate(p, 5)
	a, b := NewStore(mp), NewStore(mp)
	a.LoadCell(3, 77)
	b.LoadCell(3, 77)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical images produced different fingerprints")
	}
	b.WriteCopy(3, 1, 77, 9) // same value, new stamp
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("timestamp change not reflected in fingerprint")
	}
}
