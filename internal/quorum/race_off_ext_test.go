//go:build !race

package quorum_test

// raceEnabled reports that the race detector is active.
const raceEnabled = false
