package quorum

import (
	"fmt"

	"repro/internal/model"
)

// Attempt is one copy access scheduled in a phase: the processor proc tries
// to touch copy `Copy` of variable `Var`, which lives in memory module
// `Module` (for the 2DMOT this is a bank/column id). Write distinguishes
// update accesses from retrieval accesses. Slot carries the copy's dense
// cell index (v·r + Copy in the store's row-major cell array), resolved
// once at schedule time (interconnects ignore it; the engine's grant loop
// uses it to touch the granted cell without re-deriving the index).
type Attempt struct {
	Proc   int
	Module int
	Var    int
	Copy   int
	Slot   int32
	Write  bool
}

// Interconnect decides, for each phase, which scheduled copy accesses are
// granted and how much simulated time the phase costs. Implementations:
// the complete bipartite K(n,M) of the DMMPC (unit phases, per-module
// bandwidth), and the 2DMOT packet network (cycle-accurate, collisions).
type Interconnect interface {
	// RoutePhase processes one phase of attempts and reports which were
	// granted, the phase's simulated duration, and the peak per-module load.
	// Implementations may reuse the returned slice: its contents are only
	// valid until the next RoutePhase call on the same interconnect.
	RoutePhase(attempts []Attempt) (granted []bool, time int64, maxLoad int)
}

// CycleTimed marks interconnects whose RoutePhase time is measured in
// physical network cycles (the 2DMOT) rather than abstract protocol
// phases; the backend then surfaces the time as NetworkCycles too.
type CycleTimed interface {
	TimeInCycles() bool
}

// Request is one deduplicated variable access for the engine: an entire
// read batch or write batch of a P-RAM step, after concurrent accesses to
// the same variable have been combined/resolved by the backend.
type Request struct {
	Proc  int // representative issuing processor (cluster owner, priority)
	Var   int
	Write bool
	Value model.Word // payload when Write
}

// Result reports the cost and outcome of executing one access batch.
//
// The Values, Satisfied and LiveTrace slices alias the engine's reusable
// scratch arena: they are valid until the next ExecuteBatch or
// ExecuteBatchTwoStage call on the same engine, and must be copied if they
// need to outlive it.
type Result struct {
	Phases        int
	Time          int64
	CopyAccesses  int64
	MaxModuleLoad int
	LiveTrace     []int // live (unsatisfied) requests after each phase
	Values        []model.Word
	Satisfied     []bool
	Stalled       bool // progress cap hit (bad map or broken interconnect)
	// Stage1Phases/Stage2Phases break Phases down when the two-stage
	// schedule is used (ExecuteBatchTwoStage); zero otherwise.
	Stage1Phases int
	Stage2Phases int
}

// Engine runs the cluster-based two-stage access protocol over a store and
// an interconnect.
//
// All per-batch working state lives in a scratch arena owned by the engine
// and reused across batches, so in steady state ExecuteBatch performs zero
// heap allocations (an invariant locked in by TestExecuteBatchZeroAllocs).
// The arena makes an Engine single-threaded: one batch at a time.
type Engine struct {
	store    *Store
	net      Interconnect
	n        int // processors
	c        int // quorum size
	r        int // redundancy 2c−1 (= cluster size)
	clusters int // ⌈n/r⌉

	// MaxPhases caps the phase loop so corrupted maps surface as a stalled
	// Result instead of an infinite loop. Zero selects a generous default.
	MaxPhases int

	sc engineScratch
}

// engineScratch is the engine's reusable per-batch arena. Buffers grow to
// the largest batch seen and are then recycled forever.
type engineScratch struct {
	states   []reqState
	qstart   []int // per-cluster queue offsets into qbuf (len clusters+1)
	qfill    []int // per-cluster fill cursors during bucketing
	qbuf     []int // request indices, bucketed by cluster
	rr       []int // per-cluster round-robin cursors
	attempts []Attempt
	owners   []int // parallel to attempts: request index
	trace    []int // live-trace accumulator (spans both two-stage stages)

	// Primary result buffers back the Result of the exported entry points;
	// the secondary set backs the inner stage-2 run of the two-stage
	// schedule, which must not clobber the stage-1 result it merges into.
	values     []model.Word
	satisfied  []bool
	values2    []model.Word
	satisfied2 []bool
	liveReqs   []Request
	liveIdx    []int
}

// NewEngine returns an engine for n processors over store and net.
func NewEngine(store *Store, net Interconnect, n int) *Engine {
	p := store.Map().P
	r := p.R()
	return &Engine{
		store:    store,
		net:      net,
		n:        n,
		c:        p.C,
		r:        r,
		clusters: (n + r - 1) / r,
	}
}

// maxPhases returns the stall cap.
func (e *Engine) maxPhases(requests int) int {
	if e.MaxPhases > 0 {
		return e.MaxPhases
	}
	// Even a fully serialized system needs only ~requests·c module grants;
	// grant at least one per phase and pad generously.
	return requests*e.c*4 + 64*e.r + 256
}

// reqState tracks one live request through the phases.
type reqState struct {
	accessed  uint64 // bitmask of copies touched (r ≤ 64 always holds here)
	count     int
	done      bool
	bestTS    uint64
	bestVal   model.Word
	anyAccess bool
}

// grow resizes buf to n entries, reusing its backing array when possible.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// primaryBuffers returns the cleared result buffers for an exported batch.
func (e *Engine) primaryBuffers(n int) ([]model.Word, []bool) {
	e.sc.values = grow(e.sc.values, n)
	e.sc.satisfied = grow(e.sc.satisfied, n)
	clear(e.sc.values)
	clear(e.sc.satisfied)
	return e.sc.values, e.sc.satisfied
}

// secondaryBuffers returns the cleared result buffers for the stage-2 sub-run.
func (e *Engine) secondaryBuffers(n int) ([]model.Word, []bool) {
	e.sc.values2 = grow(e.sc.values2, n)
	e.sc.satisfied2 = grow(e.sc.satisfied2, n)
	clear(e.sc.values2)
	clear(e.sc.satisfied2)
	return e.sc.values2, e.sc.satisfied2
}

// ExecuteBatch runs the protocol on one batch of deduplicated requests and
// returns per-request read values plus the phase/time accounting.
//
// Protocol shape (faithful to UW'87 as used by the paper, §1–2): processors
// are organized in clusters of 2c−1; in each phase every cluster advances
// round-robin to its next live request and its member processors attempt
// the request's still-unaccessed copies in distinct modules. Granted
// accesses accumulate; a request dies (is satisfied) once c copies are
// touched. The memory map's expansion property makes the live-set shrink
// geometrically, which the LiveTrace in the Result lets tests verify.
func (e *Engine) ExecuteBatch(reqs []Request) Result {
	e.sc.trace = e.sc.trace[:0]
	values, satisfied := e.primaryBuffers(len(reqs))
	return e.run(reqs, values, satisfied)
}

// run executes one batch into the given result buffers, appending the live
// trace to the shared arena accumulator (so the two-stage schedule's stages
// land in one contiguous trace).
//
//pram:hotpath
func (e *Engine) run(reqs []Request, values []model.Word, satisfied []bool) Result {
	res := Result{Values: values, Satisfied: satisfied}
	if len(reqs) == 0 {
		return res
	}
	if e.r > 64 {
		//pram:coldalloc guarded construction-error panic, unreachable in steady state
		panic(fmt.Sprintf("quorum.Engine: redundancy %d exceeds bitmask width", e.r))
	}
	now := e.store.StampBatch(reqs)
	sc := &e.sc
	sc.states = grow(sc.states, len(reqs))
	states := sc.states
	for i := range states {
		states[i] = reqState{}
	}

	// Bucket requests by the cluster of their issuing processor, preserving
	// batch order within each cluster (a counting sort into a flat buffer).
	clusters := e.clusters
	sc.qstart = grow(sc.qstart, clusters+1)
	sc.qfill = grow(sc.qfill, clusters)
	sc.qbuf = grow(sc.qbuf, len(reqs))
	sc.rr = grow(sc.rr, clusters)
	clear(sc.qfill)
	clear(sc.rr)
	for _, rq := range reqs {
		sc.qfill[e.clusterOf(rq.Proc)]++
	}
	off := 0
	for k := 0; k < clusters; k++ {
		sc.qstart[k] = off
		off += sc.qfill[k]
		sc.qfill[k] = sc.qstart[k]
	}
	sc.qstart[clusters] = off
	for i, rq := range reqs {
		k := e.clusterOf(rq.Proc)
		sc.qbuf[sc.qfill[k]] = i
		sc.qfill[k]++
	}

	live := len(reqs)
	phaseCap := e.maxPhases(len(reqs))
	traceStart := len(sc.trace)
	attempts := sc.attempts[:0]
	owners := sc.owners[:0]
	for phase := 0; live > 0; phase++ {
		if phase >= phaseCap {
			res.Stalled = true
			break
		}
		attempts = attempts[:0]
		owners = owners[:0]
		for k := 0; k < clusters; k++ {
			idx := e.nextLive(sc.qbuf[sc.qstart[k]:sc.qstart[k+1]], &sc.rr[k], states)
			if idx < 0 {
				continue
			}
			attempts, owners = e.scheduleRequest(k, idx, reqs[idx], &states[idx], attempts, owners)
		}
		granted, t, load := e.net.RoutePhase(attempts)
		res.Phases++
		res.Time += t
		if load > res.MaxModuleLoad {
			res.MaxModuleLoad = load
		}
		for ai, ok := range granted {
			if !ok {
				continue
			}
			a := attempts[ai]
			st := &states[owners[ai]]
			if st.accessed&(1<<uint(a.Copy)) != 0 {
				continue // duplicate grant of the same copy; ignore
			}
			st.accessed |= 1 << uint(a.Copy)
			st.count++
			res.CopyAccesses++
			if a.Write {
				e.store.WriteSlot(a.Slot, reqs[owners[ai]].Value, now)
			} else {
				v, ts := e.store.ReadSlot(a.Slot)
				if !st.anyAccess || ts > st.bestTS {
					st.bestTS, st.bestVal = ts, v
				}
				st.anyAccess = true
			}
			if st.count >= e.c && !st.done {
				st.done = true
				live--
			}
		}
		sc.trace = append(sc.trace, live)
	}
	sc.attempts = attempts
	sc.owners = owners
	res.LiveTrace = sc.trace[traceStart:len(sc.trace):len(sc.trace)]
	for i := range reqs {
		satisfied[i] = states[i].done
		if !reqs[i].Write && states[i].anyAccess {
			values[i] = states[i].bestVal
		}
	}
	return res
}

// clusterOf maps a processor id to its cluster, clamping overflow ids into
// the last (possibly short) cluster.
func (e *Engine) clusterOf(proc int) int {
	k := proc / e.r
	if k >= e.clusters {
		k = e.clusters - 1
	}
	return k
}

// nextLive advances a cluster's round-robin cursor to its next unsatisfied
// request, returning −1 if none remain.
func (e *Engine) nextLive(queue []int, cursor *int, states []reqState) int {
	for scanned := 0; scanned < len(queue); scanned++ {
		idx := queue[*cursor%len(queue)]
		*cursor++
		if !states[idx].done {
			return idx
		}
	}
	return -1
}

// scheduleRequest assigns the member processors of cluster k to the live
// (unaccessed) copies of request idx, one attempt per processor, each in a
// distinct module by the map's distinctness invariant.
func (e *Engine) scheduleRequest(k, idx int, rq Request, st *reqState, attempts []Attempt, owners []int) ([]Attempt, []int) {
	base := k * e.r
	end := base + e.r
	if end > e.n {
		end = e.n
	}
	members := end - base
	copies := e.store.Map().Copies(rq.Var)
	rowBase := int32(rq.Var * e.r)
	member := 0
	for j := 0; j < e.r && member < members; j++ {
		if st.accessed&(1<<uint(j)) != 0 {
			continue
		}
		attempts = append(attempts, Attempt{
			Proc:   base + member,
			Module: int(copies[j]),
			Var:    rq.Var,
			Copy:   j,
			Slot:   rowBase + int32(j),
			Write:  rq.Write,
		})
		owners = append(owners, idx)
		member++
	}
	return attempts, owners
}
