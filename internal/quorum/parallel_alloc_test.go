// External-package allocation tests for the quorum backend over the REAL
// interconnect: a 2DMOT packet network with multi-core routing. (External
// so it can import repro/internal/mot, which itself imports quorum.) They
// extend the steady-state zero-allocation invariant across the whole
// pipeline — engine scratch arena, parallel router worker pool, step
// dedup/report — and lock the serial/parallel determinism contract at the
// batch level.
package quorum_test

import (
	"testing"

	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/mot"
	"repro/internal/quorum"
)

// motMachine builds a quorum machine over a 2DMOT network at Theorem 3
// parameters with the given router worker count.
func motMachine(n, workers int) (*quorum.Machine, *mot.Network) {
	p, side := memmap.TheoremThree(n, 2, 2)
	mp := memmap.Generate(p, 3)
	nw := mot.NewNetwork(side, mot.ModulesAtLeaves, mot.Config{Parallelism: workers})
	m := quorum.NewMachine("mot-alloc-test", n, model.CRCWPriority, quorum.NewStore(mp), nw)
	return m, nw
}

// TestExecuteStepParallelRouterZeroAllocs locks the whole step pipeline —
// conflict check, dedup, engine, PARALLEL packet routing, report — at zero
// steady-state allocations, workers warm and arenas reused.
func TestExecuteStepParallelRouterZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation invariants are measured without the race detector")
	}
	const n = 64
	m, nw := motMachine(n, 4)
	if nw.Parallelism() != 4 {
		t.Fatalf("router resolved %d workers, want 4", nw.Parallelism())
	}
	batch := model.NewBatch(n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			batch[i] = model.Request{Proc: i, Op: model.OpRead, Addr: (i * 7) % n}
		} else {
			batch[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: (i * 3) % n, Value: model.Word(i)}
		}
	}
	for i := 0; i < 5; i++ { // grow the arenas, warm the pool
		if rep := m.ExecuteStep(batch); rep.Err != nil {
			t.Fatal(rep.Err)
		}
	}
	if avg := testing.AllocsPerRun(20, func() {
		if rep := m.ExecuteStep(batch); rep.Err != nil {
			t.Fatal(rep.Err)
		}
	}); avg != 0 {
		t.Errorf("ExecuteStep over the parallel router allocates %.1f/op in steady state, want 0", avg)
	}
}

// TestExecuteBatchSerialVsParallelRouter drives identical request batches
// through two machines that differ only in router parallelism and demands
// identical results: the engine's phase loop feeds each phase from the
// previous phase's grants, so this exercises the retry feedback path the
// RoutePhase-level differential tests cannot.
func TestExecuteBatchSerialVsParallelRouter(t *testing.T) {
	const n = 64
	ms, _ := motMachine(n, 1)
	mp, _ := motMachine(n, 4)
	reqs := make([]quorum.Request, n)
	for i := range reqs {
		reqs[i] = quorum.Request{Proc: i, Var: (i * 13) % (n * 2), Write: i%3 == 0, Value: model.Word(i)}
	}
	for round := 0; round < 3; round++ {
		rs := ms.Engine().ExecuteBatch(reqs)
		rp := mp.Engine().ExecuteBatch(reqs)
		if rs.Phases != rp.Phases || rs.Time != rp.Time ||
			rs.CopyAccesses != rp.CopyAccesses || rs.MaxModuleLoad != rp.MaxModuleLoad ||
			rs.Stalled != rp.Stalled {
			t.Fatalf("round %d diverged:\n serial   %+v\n parallel %+v", round, rs, rp)
		}
		for i := range reqs {
			if rs.Values[i] != rp.Values[i] || rs.Satisfied[i] != rp.Satisfied[i] {
				t.Fatalf("round %d request %d: serial (v=%d s=%v) parallel (v=%d s=%v)",
					round, i, rs.Values[i], rs.Satisfied[i], rp.Values[i], rp.Satisfied[i])
			}
		}
		for i := range rs.LiveTrace {
			if rs.LiveTrace[i] != rp.LiveTrace[i] {
				t.Fatalf("round %d live trace diverged at phase %d: %d vs %d",
					round, i, rs.LiveTrace[i], rp.LiveTrace[i])
			}
		}
	}
}
