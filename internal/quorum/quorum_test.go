package quorum

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/memmap"
	"repro/internal/model"
)

func testSetup(t testing.TB, n int) (*Store, *Engine) {
	t.Helper()
	p := memmap.LemmaTwo(n, 2, 1)
	mp := memmap.Generate(p, 11)
	st := NewStore(mp)
	eng := NewEngine(st, NewCompleteBipartite(), n)
	return st, eng
}

func TestWriteThenReadSingle(t *testing.T) {
	st, eng := testSetup(t, 64)
	w := eng.ExecuteBatch([]Request{{Proc: 0, Var: 5, Write: true, Value: 77}})
	if !w.Satisfied[0] || w.Stalled {
		t.Fatalf("write not satisfied: %+v", w)
	}
	r := eng.ExecuteBatch([]Request{{Proc: 3, Var: 5}})
	if !r.Satisfied[0] {
		t.Fatal("read not satisfied")
	}
	if r.Values[0] != 77 {
		t.Errorf("read = %d, want 77", r.Values[0])
	}
	if st.CommittedValue(5) != 77 {
		t.Errorf("committed = %d, want 77", st.CommittedValue(5))
	}
}

func TestWriteUpdatesAtLeastCCopies(t *testing.T) {
	st, eng := testSetup(t, 64)
	c := st.Map().P.C
	for _, v := range []int{0, 9, 100, 999} {
		eng.ExecuteBatch([]Request{{Proc: 1, Var: v, Write: true, Value: model.Word(v)}})
		if fresh := st.FreshCopies(v); fresh < c {
			t.Errorf("var %d: only %d fresh copies, need >= c = %d", v, fresh, c)
		}
	}
}

func TestReadSeesLatestOfTwoWrites(t *testing.T) {
	st, eng := testSetup(t, 64)
	eng.ExecuteBatch([]Request{{Proc: 0, Var: 7, Write: true, Value: 1}})
	eng.ExecuteBatch([]Request{{Proc: 9, Var: 7, Write: true, Value: 2}})
	r := eng.ExecuteBatch([]Request{{Proc: 4, Var: 7}})
	if r.Values[0] != 2 {
		t.Errorf("read = %d, want 2 (latest write)", r.Values[0])
	}
	if st.CommittedValue(7) != 2 {
		t.Errorf("committed = %d, want 2", st.CommittedValue(7))
	}
}

func TestFullPermutationBatch(t *testing.T) {
	const n = 256
	_, eng := testSetup(t, n)
	// Every processor writes its own variable, then reads its neighbor's.
	writes := make([]Request, n)
	for i := range writes {
		writes[i] = Request{Proc: i, Var: i, Write: true, Value: model.Word(i * 3)}
	}
	wres := eng.ExecuteBatch(writes)
	for i, ok := range wres.Satisfied {
		if !ok {
			t.Fatalf("write %d unsatisfied", i)
		}
	}
	reads := make([]Request, n)
	for i := range reads {
		reads[i] = Request{Proc: i, Var: (i + 1) % n}
	}
	rres := eng.ExecuteBatch(reads)
	for i := range reads {
		want := model.Word(((i + 1) % n) * 3)
		if rres.Values[i] != want {
			t.Errorf("proc %d read %d, want %d", i, rres.Values[i], want)
		}
	}
	if rres.Stalled || wres.Stalled {
		t.Error("batch stalled on a healthy map")
	}
	t.Logf("n=%d: write phases=%d read phases=%d", n, wres.Phases, rres.Phases)
}

func TestLiveTraceDecays(t *testing.T) {
	const n = 512
	_, eng := testSetup(t, n)
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Proc: i, Var: i, Write: true, Value: 1}
	}
	res := eng.ExecuteBatch(reqs)
	if res.Stalled {
		t.Fatal("stalled")
	}
	// The live count must be non-increasing and reach zero.
	prev := n
	for _, l := range res.LiveTrace {
		if l > prev {
			t.Fatalf("live count increased: %v", res.LiveTrace)
		}
		prev = l
	}
	if res.LiveTrace[len(res.LiveTrace)-1] != 0 {
		t.Errorf("batch ended with live requests: %v", res.LiveTrace)
	}
}

func TestQuorumIntersectionProperty(t *testing.T) {
	// Any write quorum (c of 2c−1) intersects any read quorum: after the
	// engine writes, reads through the engine must return the new value no
	// matter which copies the protocol happens to touch. Randomized batches
	// of interleaved writes/reads against a reference map.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n, vars = 32, 64
		p := memmap.LemmaTwo(n, 2, 1)
		mp := memmap.Generate(p, seed)
		st := NewStore(mp)
		eng := NewEngine(st, NewCompleteBipartite(), n)
		ref := make(map[int]model.Word)
		for round := 0; round < 8; round++ {
			// Random write batch over distinct vars.
			nw := 1 + rng.Intn(8)
			seen := map[int]bool{}
			var ws []Request
			for i := 0; i < nw; i++ {
				v := rng.Intn(vars)
				if seen[v] {
					continue
				}
				seen[v] = true
				val := model.Word(rng.Intn(1000))
				ws = append(ws, Request{Proc: rng.Intn(n), Var: v, Write: true, Value: val})
				ref[v] = val
			}
			wres := eng.ExecuteBatch(ws)
			for _, ok := range wres.Satisfied {
				if !ok {
					return false
				}
			}
			// Read back a random subset of everything written so far.
			var rs []Request
			var want []model.Word
			for v, val := range ref {
				if rng.Intn(2) == 0 {
					rs = append(rs, Request{Proc: rng.Intn(n), Var: v})
					want = append(want, val)
				}
			}
			rres := eng.ExecuteBatch(rs)
			for i := range rs {
				if !rres.Satisfied[i] || rres.Values[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCorruptMapStallsOrSlows(t *testing.T) {
	// With all copies confined to r modules, a full batch must take far
	// more phases than on a healthy map (bandwidth r per phase at best).
	const n = 256
	p := memmap.LemmaTwo(n, 2, 1)
	healthyMap := memmap.Generate(p, 5)
	corruptMap := memmap.GenerateCorrupt(p, p.R(), 5)
	mkReqs := func() []Request {
		reqs := make([]Request, n)
		for i := range reqs {
			reqs[i] = Request{Proc: i, Var: i, Write: true, Value: 1}
		}
		return reqs
	}
	healthy := NewEngine(NewStore(healthyMap), NewCompleteBipartite(), n)
	corrupt := NewEngine(NewStore(corruptMap), NewCompleteBipartite(), n)
	hres := healthy.ExecuteBatch(mkReqs())
	cres := corrupt.ExecuteBatch(mkReqs())
	if hres.Stalled {
		t.Fatal("healthy map stalled")
	}
	if !cres.Stalled && cres.Phases < 4*hres.Phases {
		t.Errorf("corrupt map phases=%d not clearly worse than healthy=%d",
			cres.Phases, hres.Phases)
	}
	t.Logf("healthy=%d phases, corrupt=%d phases (stalled=%v)",
		hres.Phases, cres.Phases, cres.Stalled)
}

func TestStallCapRespected(t *testing.T) {
	const n = 64
	p := memmap.LemmaTwo(n, 2, 1)
	mp := memmap.GenerateCorrupt(p, p.R(), 1)
	eng := NewEngine(NewStore(mp), NewCompleteBipartite(), n)
	eng.MaxPhases = 3
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Proc: i, Var: i, Write: true, Value: 1}
	}
	res := eng.ExecuteBatch(reqs)
	if !res.Stalled {
		t.Error("expected stall under tiny phase cap")
	}
	if res.Phases != 3 {
		t.Errorf("phases = %d, want exactly the cap 3", res.Phases)
	}
}

func TestEmptyBatch(t *testing.T) {
	_, eng := testSetup(t, 16)
	res := eng.ExecuteBatch(nil)
	if res.Phases != 0 || res.Time != 0 || res.Stalled {
		t.Errorf("empty batch cost something: %+v", res)
	}
}

func TestBipartiteBandwidthArbitration(t *testing.T) {
	cb := NewCompleteBipartite()
	attempts := []Attempt{
		{Proc: 5, Module: 1},
		{Proc: 2, Module: 1},
		{Proc: 9, Module: 1},
		{Proc: 0, Module: 2},
	}
	granted, cost, load := cb.RoutePhase(attempts)
	if cost != 1 {
		t.Errorf("phase cost = %d, want 1", cost)
	}
	if load != 3 {
		t.Errorf("max load = %d, want 3", load)
	}
	want := []bool{false, true, false, true} // lowest proc per module
	for i := range want {
		if granted[i] != want[i] {
			t.Errorf("granted[%d] = %v, want %v", i, granted[i], want[i])
		}
	}
}

func TestBipartiteHigherBandwidth(t *testing.T) {
	cb := &CompleteBipartite{Bandwidth: 2, PhaseCost: 4}
	attempts := []Attempt{
		{Proc: 5, Module: 1}, {Proc: 2, Module: 1}, {Proc: 9, Module: 1},
	}
	granted, cost, _ := cb.RoutePhase(attempts)
	if cost != 4 {
		t.Errorf("cost = %d, want 4", cost)
	}
	n := 0
	for _, g := range granted {
		if g {
			n++
		}
	}
	if n != 2 {
		t.Errorf("granted %d, want 2", n)
	}
	if !granted[1] || !granted[0] {
		t.Error("should grant procs 2 and 5")
	}
}

func TestStoreLoadCellAndClock(t *testing.T) {
	p := memmap.LemmaTwo(16, 2, 1)
	st := NewStore(memmap.Generate(p, 1))
	st.LoadCell(3, 42)
	if st.CommittedValue(3) != 42 {
		t.Error("LoadCell not visible")
	}
	if st.FreshCopies(3) != st.Map().R() {
		t.Error("LoadCell must refresh all copies")
	}
	c0 := st.Clock()
	st.Tick()
	if st.Clock() != c0+1 {
		t.Error("Tick did not advance clock")
	}
}
