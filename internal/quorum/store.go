// Package quorum implements the majority-rule replicated-memory protocol of
// Upfal & Wigderson (1987) that the paper's Theorems 2 and 3 build on: each
// shared variable has 2c−1 time-stamped copies spread over the memory
// modules by a memmap.Map; a write refreshes at least c copies, a read
// collects at least c copies and takes the most recent — any two quorums
// intersect, so reads are always current.
//
// The package separates the protocol (Engine: clusters, phases, live/dead
// variables) from the interconnect (Interconnect: which copy accesses are
// granted in a phase and at what simulated cost), so the same engine drives
// the MPC (M = n, Θ(log m) copies), the paper's DMMPC (M = n^(1+ε), Θ(1)
// copies) and the 2DMOT network of Section 3.
//
// # Zero-allocation invariant
//
// The hot path — Machine.ExecuteStep → Engine.ExecuteBatch →
// Interconnect.RoutePhase — performs zero heap allocations in steady
// state, so benchmarks measure the protocol rather than the garbage
// collector. Every per-step and per-batch structure lives in a scratch
// arena owned by its component and reused across invocations: the engine
// keeps request states, flattened cluster queues, attempt/owner buffers and
// the live-trace accumulator; the backend keeps the sorted dedup records
// and the dense per-processor values buffer; the bipartite interconnect
// keeps a phase-stamped per-module load table. The price is aliasing —
// Result and StepReport slices are valid only until the next call on the
// same component — and single-threadedness per machine instance.
// testing.AllocsPerRun tests (alloc_test.go) lock the invariant; golden
// trace tests (golden_test.go, testdata/) pin the behavior bit-for-bit to
// the pre-arena reference implementation.
package quorum

import (
	"fmt"

	"repro/internal/memmap"
	"repro/internal/model"
)

// Store holds the 2c−1 time-stamped copies of every variable.
type Store struct {
	mp    *memmap.Map
	r     int
	ts    []uint32     // m × r timestamps
	val   []model.Word // m × r values
	clock uint32       // advances once per access batch
}

// NewStore allocates copy storage for the variables covered by mp.
func NewStore(mp *memmap.Map) *Store {
	r := mp.R()
	m := mp.Vars()
	return &Store{
		mp:  mp,
		r:   r,
		ts:  make([]uint32, m*r),
		val: make([]model.Word, m*r),
	}
}

// Map returns the memory map the store distributes copies with.
func (s *Store) Map() *memmap.Map { return s.mp }

// Tick advances the logical clock that stamps the writes of the next access
// batch. The Engine calls it once per batch.
func (s *Store) Tick() uint32 {
	s.clock++
	if s.clock == 0 {
		panic("quorum.Store: timestamp clock overflow")
	}
	return s.clock
}

// Clock returns the current logical time.
func (s *Store) Clock() uint32 { return s.clock }

// WriteCopy stamps copy j of variable v with (value, now).
func (s *Store) WriteCopy(v, j int, value model.Word, now uint32) {
	i := v*s.r + j
	s.val[i] = value
	s.ts[i] = now
}

// ReadCopy returns copy j of variable v with its timestamp.
func (s *Store) ReadCopy(v, j int) (model.Word, uint32) {
	i := v*s.r + j
	return s.val[i], s.ts[i]
}

// LoadCell initializes every copy of v to value at time zero, bypassing the
// protocol (workload setup).
func (s *Store) LoadCell(v int, value model.Word) {
	for j := 0; j < s.r; j++ {
		i := v*s.r + j
		s.val[i] = value
		s.ts[i] = 0
	}
}

// CommittedValue returns the value a correct majority read of v would
// produce: the freshest copy. Reading all copies (not just c) is legitimate
// here because this is the zero-cost debug/verification view.
func (s *Store) CommittedValue(v int) model.Word {
	best := s.val[v*s.r]
	bestTS := s.ts[v*s.r]
	for j := 1; j < s.r; j++ {
		i := v*s.r + j
		if s.ts[i] > bestTS {
			bestTS = s.ts[i]
			best = s.val[i]
		}
	}
	return best
}

// FreshCopies returns how many copies of v carry its maximum timestamp —
// at least c after any protocol write, an invariant the tests assert.
func (s *Store) FreshCopies(v int) int {
	maxTS := uint32(0)
	for j := 0; j < s.r; j++ {
		if t := s.ts[v*s.r+j]; t > maxTS {
			maxTS = t
		}
	}
	k := 0
	for j := 0; j < s.r; j++ {
		if s.ts[v*s.r+j] == maxTS {
			k++
		}
	}
	return k
}

// String describes the store.
func (s *Store) String() string {
	return fmt.Sprintf("quorum.Store{vars=%d r=%d clock=%d}", s.mp.Vars(), s.r, s.clock)
}
