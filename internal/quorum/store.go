// Package quorum implements the majority-rule replicated-memory protocol of
// Upfal & Wigderson (1987) that the paper's Theorems 2 and 3 build on: each
// shared variable has 2c−1 time-stamped copies spread over the memory
// modules by a memmap.Map; a write refreshes at least c copies, a read
// collects at least c copies and takes the most recent — any two quorums
// intersect, so reads are always current.
//
// The package separates the protocol (Engine: clusters, phases, live/dead
// variables) from the interconnect (Interconnect: which copy accesses are
// granted in a phase and at what simulated cost), so the same engine drives
// the MPC (M = n, Θ(log m) copies), the paper's DMMPC (M = n^(1+ε), Θ(1)
// copies) and the 2DMOT network of Section 3.
//
// # Zero-allocation invariant
//
// The hot path — Machine.ExecuteStep → Engine.ExecuteBatch →
// Interconnect.RoutePhase — performs zero heap allocations in steady
// state, so benchmarks measure the protocol rather than the garbage
// collector. Every per-step and per-batch structure lives in a scratch
// arena owned by its component and reused across invocations: the engine
// keeps request states, flattened cluster queues, attempt/owner buffers and
// the live-trace accumulator; the backend keeps the sorted dedup records
// and the dense per-processor values buffer; the bipartite interconnect
// keeps a phase-stamped per-module load table. The price is aliasing —
// Result and StepReport slices are valid only until the next call on the
// same component — and single-threadedness per machine instance. The Pool
// extends the invariant across engines: its union-find arrays, component
// buffers, worker pool and merged-report buffers are all reused, so a
// steady-state ExecuteSteps is allocation-free too (pool tests lock it).
// testing.AllocsPerRun tests (alloc_test.go) lock the invariant; golden
// trace tests (golden_test.go, testdata/) pin the behavior bit-for-bit to
// the pre-arena reference implementation.
//
// # Shard-ownership invariant
//
// The Store is sharded BY MEMORY MODULE: every cell (one replicated copy)
// and every row stamp belongs to exactly one module shard — a cell to the
// module the memmap places it in (ModuleSegment/ModuleCells materialize
// each shard's cell set, what a distributed deployment would put on that
// module's node), a row stamp to the row's 2c−1-module set. All state a
// batch mutates is therefore owned by the modules the batch touches: the
// union of memmap rows of its variables, ALL 2c−1 modules per variable,
// not only the quorum that ends up granted. That makes module sets the
// unit of concurrency: engines whose batches touch disjoint module sets
// share NO mutable store state and may execute fully in parallel with
// zero locking. (Module-level grouping is deliberately conservative —
// distinct variables never share cells even inside one module — but the
// module is the machine's physical resource and the granularity every
// deployment story shards by. The cell ARRAY stays row-major because the
// protocol touches copies row-wise; ownership, not byte adjacency, is
// what the concurrency contract needs, and the modules a row spans are
// disjoint between components either way.)
//
// The Pool enforces the ownership rule: each step it partitions the shard
// batches into module-connectivity components (union-find over touched
// modules, mirroring the 2DMOT router's tree-connectivity components) and
// hands each component to exactly one worker goroutine, which executes the
// component's batches serially in ascending shard order. A goroutine may
// touch a module's segment and clock only while executing the component
// that owns that module this step; between steps the pool's barrier
// publishes every write. Batches that contend on a module are thereby
// MERGED into one serial component — that deterministic merge, not a lock,
// is how contention is resolved, so the result is bit-for-bit identical to
// running every shard serially in index order (pool differential tests).
//
// Timestamps come from per-row logical clocks, not one global counter:
// copy timestamps are only ever COMPARED within one variable's row (a
// majority read picks the freshest of that variable's copies), so the
// clock can shard all the way down to the row — rowStamp[v] holds the
// stamp of v's latest write batch. A batch's stamp is 1 + the maximum
// row stamp over the variables it writes, written back to those rows'
// stamps; read-only batches stamp nothing. Stamps along each variable's
// write chain strictly increase — exactly the ordering majority reads
// need — and a row's stamp is owned by the same module set as its copies,
// so disjoint components never observe each other's clocks (this is the
// per-module clock of the sharding design taken to its finest grain: a
// module's clock, were it materialized, would be the max over the rows in
// its segment). Clocks and stamps are uint64: at one tick per batch per
// row, overflow is unreachable (the old uint32 clock panicked after 2^32
// batches — a real limit for a long-running multi-engine server; see
// TestClockCrossesUint32Boundary).
//
// Merged StepReports follow the same aliasing rule as everything else in
// the arena design: the per-shard reports returned by Pool.ExecuteSteps
// alias each shard Machine's scratch (valid until that shard's next step),
// and the aggregate report's Values slice aliases a pool-owned buffer
// (valid until the pool's next ExecuteSteps).
//
// # Trace replay
//
// The machine/pool boundary is also the capture point of the trace
// record/replay subsystem (repro/internal/replay): a StepSink attached via
// Machine.SetStepSink or Pool.SetStepSink observes every executed step's
// POST-DEDUP request batches — the exact []Request streams the engine ran —
// plus the reader fan-out lists and the step's cost report, and
// Machine.ExecuteDedupStep / Pool.ExecuteDedupSteps feed such batches back
// in without the sort/dedup/conflict-check front end. Replay is bit-for-bit
// because everything the engine's behavior depends on is a deterministic
// function of (construction parameters, the dedup'd batch sequence): the
// store starts zeroed, LoadCells initializations are part of the recorded
// stream, per-row Lamport stamps advance only on recorded write batches,
// and interconnect state (the 2DMOT's never-reset cycle clock, the
// bipartite graph's phase stamps) evolves only per routed batch. The one
// contract is completeness: the sink must see every step and load since
// construction, which is why recorders attach before the first step. In a
// Pool each shard machine records under its own lane id (shard k = lane k)
// and the pool's StepBarrier delimits rounds, so a recorder can serialize
// concurrent shard streams in canonical ascending-lane order — the same
// serial reference order the pool's determinism contract is stated in.
//
// # Serving lane
//
// The Pool is also the substrate of the multi-tenant serving front end
// (repro/internal/serve, cmd/serve): tenants submit step batches through
// bounded admission queues and a deterministic scheduler assigns each
// tenant to a shard by its variable band (memmap.GenerateBanded), so
// co-scheduled tenants touch disjoint module sets and every round runs on
// the disjoint-component fast path above. Three pool affordances exist
// for that layer: shard machines accept batches NARROWER than their
// processor count (tenants of uneven sizes multiplex onto one pool — idle
// lanes pass empty batches and stay singleton components; the
// uneven-shard differential tests pin this against the serial reference),
// LastActive/LastComponents expose the per-round occupancy and component
// census (K − LastComponents() is the round's forced serial-merge count,
// the serving layer's degradation signal), and Close retires the executor
// goroutines eagerly for graceful shutdown — the pool stays usable and
// restarts them lazily if stepped again.
//
// # Invariants are machine-enforced
//
// The two package-wide contracts above are not convention: the pramvet
// analyzer suite (repro/internal/lint, run over the tree by CI) rejects
// the source constructs that break them. quorum is a virtual-time
// package — nothing here may read the wall clock (nowallclock), range
// over a map without a commutativity annotation (nomaprange), or touch
// global math/rand state (noglobalrand) — and the steady-state hot
// path is annotated //pram:hotpath (Engine.run, Machine.ExecuteStep,
// Machine.ExecuteDedupStep, Pool.ExecuteSteps/ExecuteDedupSteps), so
// hotalloc flags any fmt call, interface boxing, capturing closure or
// unowned append added to it before the AllocsPerRun tests ever run.
// Deliberately cold lines inside those functions (contract-violation
// panic guards) carry //pram:coldalloc with a justification; the
// analyzers report stale annotations, so the escape hatches cannot
// outlive the code they excuse.
package quorum

import (
	"fmt"
	"math"

	"repro/internal/memmap"
	"repro/internal/model"
)

// Store holds the 2c−1 time-stamped copies of every variable, sharded by
// memory module in OWNERSHIP and indexed by variable row in LAYOUT: the
// cells of a row are contiguous (the protocol always touches copies
// row-wise, so this is the cache-friendly direction — a module-major cell
// layout was measured 40%+ slower at m = 2^20 because every quorum access
// scattered across 2c−1 segments), while the per-module segment index
// (ModuleSegment/ModuleCells, built lazily) materializes exactly which
// cells each module's shard owns — what a distributed deployment would
// place on module m's node, and the partition the Pool's component
// scheduler enforces. The logical clock shards the same way (one stamp
// per variable row, owned by the row's module set). See the package doc's
// "Shard-ownership invariant" section for the concurrency rules.
type Store struct {
	mp       *memmap.Map
	r        int
	cells    []cell   // m × r (value, timestamp) pairs, row-major
	rowStamp []uint64 // per variable: stamp of its latest write batch

	// Module shard index, built lazily by shardIndex: seg[mod] ..
	// seg[mod+1] delimit module mod's cell indices in modIdx. Diagnostics
	// and deployment export only — not safe concurrently with execution.
	seg    []int32
	modIdx []int32
}

// cell is one replicated copy: value and write timestamp together, so a
// granted copy access costs one cache line instead of two (separate value
// and timestamp arrays halve on every miss).
type cell struct {
	val model.Word
	ts  uint64
}

// NewStore allocates copy storage for the variables covered by mp.
func NewStore(mp *memmap.Map) *Store {
	r := mp.R()
	m := mp.Vars()
	cells := m * r
	if cells > math.MaxInt32 {
		panic(fmt.Sprintf("quorum.NewStore: %d copies exceed the 32-bit slot index range", cells))
	}
	return &Store{
		mp:       mp,
		r:        r,
		cells:    make([]cell, cells),
		rowStamp: make([]uint64, m),
	}
}

// shardIndex lazily builds the module shard index: a counting sort of the
// m·r cell indices by owning module.
func (s *Store) shardIndex() {
	if s.modIdx != nil {
		return
	}
	m := s.mp.Vars()
	mods := s.mp.Modules()
	s.seg = make([]int32, mods+1)
	s.modIdx = make([]int32, m*s.r)
	for v := 0; v < m; v++ {
		for _, mod := range s.mp.Copies(v) {
			s.seg[mod+1]++
		}
	}
	for mod := 0; mod < mods; mod++ {
		s.seg[mod+1] += s.seg[mod]
	}
	fill := make([]int32, mods)
	for v := 0; v < m; v++ {
		for j, mod := range s.mp.Copies(v) {
			s.modIdx[s.seg[mod]+fill[mod]] = int32(v*s.r + j)
			fill[mod]++
		}
	}
}

// ReadSlot returns the cell at a dense index v·r+j (from Attempt.Slot).
func (s *Store) ReadSlot(slot int32) (model.Word, uint64) {
	c := s.cells[slot]
	return c.val, c.ts
}

// WriteSlot stamps the cell at a dense index v·r+j with (value, now).
func (s *Store) WriteSlot(slot int32, value model.Word, now uint64) {
	s.cells[slot] = cell{val: value, ts: now}
}

// Map returns the memory map the store distributes copies with.
func (s *Store) Map() *memmap.Map { return s.mp }

// StampBatch computes the Lamport timestamp for one access batch and
// advances the written rows' clocks to it: 1 + the maximum row stamp over
// the variables the batch WRITES (a write must outrank every stamp already
// on its row, and a row's stamp upper-bounds them). Read-only batches
// return 0 without touching any clock — no write uses the stamp, and a
// row's ordering is carried entirely by its own write chain. The Engine
// calls this once per batch in place of a global tick; batches writing
// disjoint variable sets neither observe nor perturb each other's clocks,
// which is what lets pool engines run disjoint-module components
// concurrently yet bit-for-bit identically to serial execution.
func (s *Store) StampBatch(reqs []Request) uint64 {
	var now uint64
	writes := false
	for i := range reqs {
		if !reqs[i].Write {
			continue
		}
		writes = true
		if c := s.rowStamp[reqs[i].Var]; c > now {
			now = c
		}
	}
	if !writes {
		return 0
	}
	now++
	for i := range reqs {
		if reqs[i].Write {
			s.rowStamp[reqs[i].Var] = now
		}
	}
	return now
}

// Tick advances every row clock to one past the store's maximum — the
// global-clock view, equivalent to stamping a batch that writes every
// variable. It survives for direct store users and tests; the engine
// stamps per batch. O(m); not for hot paths.
func (s *Store) Tick() uint64 {
	now := s.Clock() + 1
	for v := range s.rowStamp {
		s.rowStamp[v] = now
	}
	return now
}

// Clock returns the current logical time: the maximum over the per-row
// clocks. O(m); not for hot paths.
func (s *Store) Clock() uint64 {
	var max uint64
	for _, c := range s.rowStamp {
		if c > max {
			max = c
		}
	}
	return max
}

// RowStamp returns the stamp of variable v's latest write batch.
func (s *Store) RowStamp(v int) uint64 { return s.rowStamp[v] }

// WriteCopy stamps copy j of variable v with (value, now).
func (s *Store) WriteCopy(v, j int, value model.Word, now uint64) {
	s.cells[v*s.r+j] = cell{val: value, ts: now}
}

// ReadCopy returns copy j of variable v with its timestamp.
func (s *Store) ReadCopy(v, j int) (model.Word, uint64) {
	c := s.cells[v*s.r+j]
	return c.val, c.ts
}

// LoadCell initializes every copy of v to value at time zero, bypassing the
// protocol (workload setup).
func (s *Store) LoadCell(v int, value model.Word) {
	for j := 0; j < s.r; j++ {
		s.cells[v*s.r+j] = cell{val: value}
	}
}

// CommittedValue returns the value a correct majority read of v would
// produce: the freshest copy. Reading all copies (not just c) is legitimate
// here because this is the zero-cost debug/verification view.
func (s *Store) CommittedValue(v int) model.Word {
	best, bestTS := s.ReadCopy(v, 0)
	for j := 1; j < s.r; j++ {
		if val, ts := s.ReadCopy(v, j); ts > bestTS {
			bestTS = ts
			best = val
		}
	}
	return best
}

// FreshCopies returns how many copies of v carry its maximum timestamp —
// at least c after any protocol write, an invariant the tests assert.
func (s *Store) FreshCopies(v int) int {
	var maxTS uint64
	for j := 0; j < s.r; j++ {
		if _, t := s.ReadCopy(v, j); t > maxTS {
			maxTS = t
		}
	}
	k := 0
	for j := 0; j < s.r; j++ {
		if _, t := s.ReadCopy(v, j); t == maxTS {
			k++
		}
	}
	return k
}

// ModuleSegment returns the half-open range into the module shard index
// owned by module mod — the unit of shard ownership (see the package
// doc). ModuleCells resolves the range to cell indices. Builds the lazy
// index; diagnostics only, not safe concurrently with execution.
func (s *Store) ModuleSegment(mod int) (start, end int) {
	s.shardIndex()
	return int(s.seg[mod]), int(s.seg[mod+1])
}

// ModuleCells returns the dense cell indices (v·r+j) of module mod's
// shard: exactly the cells a distributed deployment would place on module
// mod's node. The returned slice aliases the lazy shard index and must
// not be modified; diagnostics only, not safe concurrently with
// execution.
func (s *Store) ModuleCells(mod int) []int32 {
	s.shardIndex()
	return s.modIdx[s.seg[mod]:s.seg[mod+1]]
}

// Fingerprint hashes the full copy state — every (value, timestamp) pair in
// variable-major order — with FNV-1a. Two stores with equal fingerprints
// hold bit-for-bit identical replicated images, which is how the pool
// differential tests compare concurrent execution against the serial
// reference without exporting the arrays.
func (s *Store) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(x uint64) {
		for b := 0; b < 64; b += 8 {
			h ^= (x >> b) & 0xff
			h *= prime
		}
	}
	for _, c := range s.cells {
		mix(uint64(c.val))
		mix(c.ts)
	}
	return h
}

// String describes the store.
func (s *Store) String() string {
	return fmt.Sprintf("quorum.Store{vars=%d r=%d modules=%d clock=%d}",
		s.mp.Vars(), s.r, s.mp.Modules(), s.Clock())
}
