// Multi-engine execution: K independent quorum Machines — one per workload
// shard, each serving its own simulated P-RAM program — run concurrently
// against ONE sharded memory image.
//
// The concurrency unit is the memory module (see the package doc's
// "Shard-ownership invariant"). Each step the Pool partitions the shard
// batches into MODULE-CONNECTIVITY COMPONENTS: the finest grouping in
// which two batches that touch any common module (any module holding a
// copy of a variable either batch accesses) land in the same group. The
// union-find mirrors the 2DMOT router's tree-connectivity components one
// level up the stack: what trees are to a phase's packets, modules are to
// a step's batches. Components share no store segments and no module
// clocks, so they execute fully in parallel; batches inside a component
// are executed serially in ascending shard order by a single worker — the
// deterministic merge that resolves module contention without a lock. The
// result is bit-for-bit identical to executing every shard serially in
// index order (pool differential tests), so the Engines knob, like the
// router's Parallelism knob, trades wall-clock only.
//
// The worker pool is bounded and persistent, patterned on the router's:
// the caller participates as worker 0, background workers park on a token
// channel between steps and pull components off an atomic cursor, and a
// runtime cleanup retires the goroutines when the Pool becomes
// unreachable. Steady-state ExecuteSteps performs zero heap allocations
// (TestPoolExecuteStepsZeroAllocs).
package quorum

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/model"
)

// PoolConfig tunes construction of a multi-engine Pool.
type PoolConfig struct {
	// Engines is the number of workload shards K, each served by its own
	// Machine: 0 consults the PRAMSIM_ENGINES environment variable
	// (absent/off → 1), > 0 uses exactly that many, < 0 uses GOMAXPROCS.
	Engines int
	// Procs is the processor count of EACH shard's simulated P-RAM.
	Procs int
	// Mode is the per-shard conflict convention.
	Mode model.Mode
	// Workers bounds the goroutines executing components: 0 selects
	// min(Engines, GOMAXPROCS), 1 forces serial execution on the caller,
	// > 1 uses that many, < 0 uses GOMAXPROCS — in every case clamped to
	// Engines, since a step never has more components than shards.
	// Execution is bit-for-bit identical at every setting.
	Workers int
	// TwoStage, when non-nil, selects the faithful UW'87 two-stage
	// schedule on every shard machine.
	TwoStage *TwoStageConfig
}

// Pool owns a sharded Store and K Machines serving independent P-RAM
// programs against it. All exported methods must be called from one
// goroutine (the pool spreads work internally); per-shard programs are
// typically driven by internal/machine on top.
type Pool struct {
	store    *Store
	machines []*Machine
	k        int // engines (workload shards)
	n        int // processors per shard
	par      int // worker goroutines (caller included)

	// Construction inputs, kept so Resize can build additional shard
	// machines identical to the originals.
	name       string
	newNet     func(shard int) Interconnect
	mode       model.Mode
	twoStage   *TwoStageConfig
	cfgWorkers int // the PoolConfig.Workers encoding, re-resolved on Resize

	// Step-scoped partition state. modOwner/modStamp are per module and
	// stamped per step so they never need clearing; the union-find and
	// component buffers are K-sized.
	step       int64
	modOwner   []int32
	modStamp   []int64
	ufParent   []int32
	compID     []int32
	compCnt    []int32
	compEnd    []int32
	compShards []int32
	lastComp   int
	lastActive int

	batches []model.Batch // current step's shard batches (set for the step)
	dedup   []DedupStep   // current step's pre-deduplicated batches (replay)
	reports []model.StepReport
	agg     model.StepReport

	// sink, when non-nil, is notified after every ExecuteSteps round
	// (StepBarrier); the shard machines carry the per-lane RecordStep
	// hooks (SetStepSink).
	sink StepSink

	workers *poolWorkers
}

// poolWorkers is the persistent background-goroutine set of one Pool. The
// calling goroutine acts as worker 0; workers park on the start channel
// between steps and pull components off the atomic cursor.
type poolWorkers struct {
	stop     chan struct{}
	stopOnce sync.Once
	start    chan struct{}
	wg       sync.WaitGroup
	next     atomic.Int32

	// Step-shared state, written by the caller before the start tokens are
	// sent (the sends publish it) and cleared when the step ends so the
	// worker set never keeps the Pool alive.
	p     *Pool
	ncomp int32
}

// NewPool builds K shard machines over store, each with its own
// interconnect from newNet (interconnects hold per-engine routing scratch
// and must not be shared). Shard machines are named name[k].
func NewPool(name string, store *Store, newNet func(shard int) Interconnect, cfg PoolConfig) *Pool {
	k := ResolveEngines(cfg.Engines)
	if cfg.Procs < 1 {
		panic(fmt.Sprintf("quorum.NewPool: Procs=%d < 1", cfg.Procs))
	}
	p := &Pool{
		store:      store,
		machines:   make([]*Machine, k),
		k:          k,
		n:          cfg.Procs,
		name:       name,
		newNet:     newNet,
		mode:       cfg.Mode,
		cfgWorkers: cfg.Workers,
		modOwner:   make([]int32, store.Map().Modules()),
		modStamp:   make([]int64, store.Map().Modules()),
		ufParent:   make([]int32, k),
		compID:     make([]int32, k),
		compCnt:    make([]int32, k),
		compEnd:    make([]int32, k),
		compShards: make([]int32, k),
		reports:    make([]model.StepReport, k),
	}
	if cfg.TwoStage != nil {
		ts := *cfg.TwoStage
		p.twoStage = &ts
	}
	for i := range p.machines {
		p.machines[i] = p.newMachine(i)
	}
	p.par = resolveWorkers(cfg.Workers, k)
	return p
}

// newMachine builds shard i's machine from the pool's construction inputs.
func (p *Pool) newMachine(i int) *Machine {
	m := NewMachine(fmt.Sprintf("%s[%d]", p.name, i), p.n, p.mode, p.store, p.newNet(i))
	if p.twoStage != nil {
		ts := *p.twoStage
		m.SetTwoStage(&ts)
	}
	if p.sink != nil {
		m.SetStepSink(p.sink, i)
	}
	return m
}

// ResolveEngines maps the PoolConfig.Engines / core.Config.Engines
// encoding to a concrete shard count ≥ 1: 0 consults PRAMSIM_ENGINES,
// < 0 uses GOMAXPROCS.
func ResolveEngines(k int) int {
	if k == 0 {
		k = envEngines()
	}
	if k < 0 {
		k = runtime.GOMAXPROCS(0)
	}
	if k < 1 {
		k = 1
	}
	return k
}

// envEngines reads the PRAMSIM_ENGINES environment variable: an integer
// engine count, or "on"/"true"/"max" for GOMAXPROCS; unset, empty, "off",
// "false" or "0" select a single engine. Any other value panics: a
// malformed knob silently collapsing to one engine would let CI
// pool-equivalence runs test nothing (the same contract as
// PRAMSIM_PARALLEL).
func envEngines() int {
	switch v := os.Getenv("PRAMSIM_ENGINES"); v {
	case "", "off", "false", "0":
		return 1
	case "on", "true", "max":
		return runtime.GOMAXPROCS(0)
	default:
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			panic(fmt.Sprintf(
				"quorum: PRAMSIM_ENGINES=%q is not a valid engine count (want an integer >= 1, on/true/max, or off/false/0); refusing to fall back to one engine silently", v))
		}
		return n
	}
}

// resolveWorkers maps the PoolConfig.Workers encoding to a goroutine count
// in [1, k]: more workers than components can ever exist would only park.
func resolveWorkers(w, k int) int {
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > k {
		w = k
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Engines returns K, the number of workload shards.
func (p *Pool) Engines() int { return p.k }

// ShardProcs returns the processor count of each shard's simulated P-RAM.
func (p *Pool) ShardProcs() int { return p.n }

// Workers returns the resolved executor goroutine count.
func (p *Pool) Workers() int { return p.par }

// Machine returns shard k's Machine (for per-shard tuning in tests).
func (p *Pool) Machine(k int) *Machine { return p.machines[k] }

// Store returns the shared sharded store.
func (p *Pool) Store() *Store { return p.store }

// LastComponents reports how many module-connectivity components the most
// recent ExecuteSteps partitioned its batches into — K when every shard
// touched disjoint modules (full parallelism), 1 when contention merged
// everything into one serial chain.
func (p *Pool) LastComponents() int { return p.lastComp }

// LastActive reports how many shards of the most recent ExecuteSteps /
// ExecuteDedupSteps round carried any work (at least one non-idle request).
// Idle shards are always singleton components, so a round with no forced
// serial merges has LastComponents() == Engines(); the serving front end
// uses K − LastComponents() as the round's forced-merge count and
// LastActive() as its occupancy.
func (p *Pool) LastActive() int { return p.lastActive }

// LastDedupRequests reports the post-dedup batch size — deduplicated read
// plus write requests — of the step shard sh most recently executed
// through ExecuteSteps. It reads the sizes the dedup pass left in the
// shard machine's scratch, so observing it costs nothing on the execution
// path (unlike a StepSink, which makes every step materialize its reader
// fan-out lists). Valid between rounds for shards that executed a non-empty
// batch; an idle shard reports 0.
func (p *Pool) LastDedupRequests(sh int) int {
	return p.machines[sh].LastDedupRequests()
}

// LastStepBreakdown reports the per-leg split — read-quorum time, read
// phases, live-request area — of the step shard sh most recently
// executed through ExecuteSteps (Machine.LastStepBreakdown). Like
// LastDedupRequests it reads shard-machine scratch, so observing it is
// free; valid between rounds for shards that executed a non-empty batch.
func (p *Pool) LastStepBreakdown(sh int) (readTime int64, readPhases int, liveArea int64) {
	return p.machines[sh].LastStepBreakdown()
}

// ShardInterconnect exposes shard sh's fabric (Machine.Interconnect) so
// observers can read per-shard routing counters without a StepSink.
func (p *Pool) ShardInterconnect(sh int) Interconnect {
	return p.machines[sh].Interconnect()
}

// Close retires the pool's background executor goroutines NOW instead of
// waiting for the runtime cleanup at collection time — the graceful-
// shutdown hook of a serving deployment. The pool stays usable: a later
// ExecuteSteps restarts the workers lazily. Safe to call repeatedly.
func (p *Pool) Close() {
	if p.workers != nil {
		p.workers.shutdown()
		p.workers = nil
	}
}

// SetWorkers reconfigures the executor goroutine count (same encoding as
// PoolConfig.Workers). Must not be called concurrently with ExecuteSteps.
// Execution stays bit-for-bit identical at every setting.
func (p *Pool) SetWorkers(w int) {
	w = resolveWorkers(w, p.k)
	if w == p.par {
		return
	}
	if p.workers != nil {
		p.workers.shutdown()
		p.workers = nil
	}
	p.par = w
}

// Resize reconfigures the pool to k workload shards ONLINE, between
// rounds: growing appends fresh machines (identical construction to the
// originals — same store, same per-shard interconnect factory, same mode
// and two-stage schedule), shrinking retires the top shards. The store is
// module-sharded and shared, so a resize moves NO data — it only changes
// how many concurrent lanes the next round may carry; callers that map
// work onto shards (the serving front end's band%K placement) re-band on
// top. Per-shard results stay bit-for-bit: a batch executes identically on
// any shard machine, and the component partition is re-derived every step.
//
// Must not be called concurrently with ExecuteSteps, and invalidates the
// report slices returned by earlier rounds. The worker count is re-resolved
// from the construction-time Workers encoding against the new k. Resizing
// allocates (machine construction); it is a transition, not a hot path.
func (p *Pool) Resize(k int) {
	if k < 1 {
		panic(fmt.Sprintf("quorum.Pool.Resize: k=%d < 1", k))
	}
	if k == p.k {
		return
	}
	if k < p.k {
		for i := k; i < p.k; i++ {
			p.machines[i] = nil // release retired shards' scratch
		}
		p.machines = p.machines[:k]
	} else {
		for i := p.k; i < k; i++ {
			p.machines = append(p.machines, p.newMachine(i))
		}
	}
	p.k = k
	p.ufParent = make([]int32, k)
	p.compID = make([]int32, k)
	p.compCnt = make([]int32, k)
	p.compEnd = make([]int32, k)
	p.compShards = make([]int32, k)
	p.reports = make([]model.StepReport, k)
	if par := resolveWorkers(p.cfgWorkers, k); par != p.par {
		if p.workers != nil {
			p.workers.shutdown()
			p.workers = nil
		}
		p.par = par
	}
	// Census values describe the previous round's shard set; reset so a
	// caller polling between rounds never reads occupancy above the new k.
	if p.lastComp > k {
		p.lastComp = k
	}
	if p.lastActive > k {
		p.lastActive = k
	}
}

// SetStepSink attaches a step sink to every shard machine — shard k
// records under lane k, the trace format's shard-lane layout — and to the
// pool itself, which calls sink.StepBarrier after every ExecuteSteps round
// (nil detaches everywhere). Attach before the first step; see
// Machine.SetStepSink.
func (p *Pool) SetStepSink(sink StepSink) {
	p.sink = sink
	for k, m := range p.machines {
		m.SetStepSink(sink, k)
	}
}

// ExecuteSteps runs one P-RAM step per workload shard — batches[k] on
// shard k's machine — and returns the deterministic aggregate report plus
// the per-shard reports. len(batches) must equal Engines(); idle shards
// pass an empty (or all-OpNone) batch.
//
// Aliasing: the per-shard reports alias each shard machine's scratch
// (valid until that shard's next step); the aggregate's Values alias a
// pool-owned buffer (valid until the next ExecuteSteps). Copy them to keep
// them.
//
//pram:hotpath
func (p *Pool) ExecuteSteps(batches []model.Batch) (model.StepReport, []model.StepReport) {
	if len(batches) != p.k {
		//pram:coldalloc caller-contract panic guard, never taken in steady state
		panic(fmt.Sprintf("quorum.Pool: %d batches for %d engines", len(batches), p.k))
	}
	ncomp := p.partition(batches)
	p.batches = batches
	p.dispatch(ncomp)
	p.batches = nil

	model.MergeStepReports(&p.agg, p.reports, p.n)
	if p.sink != nil {
		p.sink.StepBarrier()
	}
	return p.agg, p.reports
}

// DedupStep is one shard's pre-deduplicated step — the post-dedup read and
// write batches plus the reader fan-out lists a StepSink captured — the
// unit Pool.ExecuteDedupSteps replays. See Machine.ExecuteDedupStep for
// the field semantics.
type DedupStep struct {
	Reads       []Request
	ReaderOff   []int32
	ReaderProcs []int32
	Writes      []Request
}

// ExecuteDedupSteps is ExecuteSteps for pre-deduplicated steps — the
// replay entry point. It partitions the shard steps into the same
// module-connectivity components (the request batches name exactly the
// variables the original batches touched, so the components match the
// recorded run's) and executes each shard via ExecuteDedupStep. Aliasing
// and determinism contracts are ExecuteSteps'; step sinks are NOT invoked.
//
//pram:hotpath
func (p *Pool) ExecuteDedupSteps(steps []DedupStep) (model.StepReport, []model.StepReport) {
	if len(steps) != p.k {
		//pram:coldalloc caller-contract panic guard, never taken in steady state
		panic(fmt.Sprintf("quorum.Pool: %d dedup steps for %d engines", len(steps), p.k))
	}
	ncomp := p.partitionDedup(steps)
	p.dedup = steps
	p.dispatch(ncomp)
	p.dedup = nil

	model.MergeStepReports(&p.agg, p.reports, p.n)
	return p.agg, p.reports
}

// dispatch executes the partitioned components — serially on the caller,
// or on the worker pool when both the worker count and the component count
// allow parallelism.
func (p *Pool) dispatch(ncomp int) {
	p.lastComp = ncomp
	if p.par == 1 || ncomp == 1 {
		// Serial path: every component on the caller, in component order.
		for c := 0; c < ncomp; c++ {
			p.runComponent(c)
		}
		return
	}
	w := p.ensureWorkers()
	w.p, w.ncomp = p, int32(ncomp)
	w.next.Store(0)
	wake := p.par - 1
	if ncomp-1 < wake {
		wake = ncomp - 1
	}
	w.wg.Add(wake)
	for i := 0; i < wake; i++ {
		w.start <- struct{}{}
	}
	w.drain()
	w.wg.Wait()
	w.p = nil
}

// partition groups the step's shard batches into module-connectivity
// components and orders them for execution: components are numbered by
// their smallest shard index, and shards within a component stay in
// ascending order — the serial reference order, which is what makes the
// merge deterministic.
func (p *Pool) partition(batches []model.Batch) int {
	p.partitionReset()
	p.lastActive = 0
	for k, b := range batches {
		active := false
		for i := range b {
			if b[i].Op == model.OpNone {
				continue
			}
			active = true
			p.touchVar(int32(k), b[i].Addr)
		}
		if active {
			p.lastActive++
		}
	}
	return p.numberComponents()
}

// partitionDedup is partition over pre-deduplicated steps: the request
// batches name exactly the variables the original batches touched (dedup
// only collapses duplicates), so the component structure is identical.
func (p *Pool) partitionDedup(steps []DedupStep) int {
	p.partitionReset()
	p.lastActive = 0
	for k := range steps {
		if len(steps[k].Reads) > 0 || len(steps[k].Writes) > 0 {
			p.lastActive++
		}
		for i := range steps[k].Reads {
			p.touchVar(int32(k), steps[k].Reads[i].Var)
		}
		for i := range steps[k].Writes {
			p.touchVar(int32(k), steps[k].Writes[i].Var)
		}
	}
	return p.numberComponents()
}

// partitionReset opens a new step's partition epoch.
func (p *Pool) partitionReset() {
	p.step++
	for i := range p.ufParent {
		p.ufParent[i] = int32(i)
		p.compID[i] = -1
	}
}

// touchVar links shard k to every module holding a copy of variable v,
// merging it with any shard that touched one of them earlier this step.
func (p *Pool) touchVar(k int32, v int) {
	for _, mod := range p.store.Map().Copies(v) {
		if p.modStamp[mod] != p.step {
			p.modStamp[mod] = p.step
			p.modOwner[mod] = k
		} else {
			p.union(k, p.modOwner[mod])
		}
	}
}

// numberComponents finishes a partition epoch.
func (p *Pool) numberComponents() int {
	// Number components by first appearance (ascending shard index) and
	// counting-sort the shards by component, preserving shard order.
	ncomp := int32(0)
	for k := 0; k < p.k; k++ {
		r := p.find(int32(k))
		if p.compID[r] < 0 {
			p.compID[r] = ncomp
			p.compCnt[ncomp] = 0
			ncomp++
		}
		p.compCnt[p.compID[r]]++
	}
	off := int32(0)
	for c := int32(0); c < ncomp; c++ {
		off += p.compCnt[c]
		p.compEnd[c] = off
		p.compCnt[c] = off - p.compCnt[c] // becomes the fill cursor
	}
	for k := 0; k < p.k; k++ {
		id := p.compID[p.find(int32(k))]
		p.compShards[p.compCnt[id]] = int32(k)
		p.compCnt[id]++
	}
	return int(ncomp)
}

// find returns the root of a union-find node with path halving.
func (p *Pool) find(x int32) int32 {
	for p.ufParent[x] != x {
		p.ufParent[x] = p.ufParent[p.ufParent[x]]
		x = p.ufParent[x]
	}
	return x
}

// union links the components of two shards. Linking the larger root under
// the smaller keeps roots deterministic without a size array: component
// identity below only depends on the partition, not the link shape.
func (p *Pool) union(a, b int32) {
	ra, rb := p.find(a), p.find(b)
	if ra == rb {
		return
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	p.ufParent[rb] = ra
}

// runComponent executes one component's shard steps serially in ascending
// shard order, from whichever source (live batches or pre-deduplicated
// replay steps) the current dispatch set.
func (p *Pool) runComponent(c int) {
	beg := int32(0)
	if c > 0 {
		beg = p.compEnd[c-1]
	}
	for _, k := range p.compShards[beg:p.compEnd[c]] {
		if p.dedup != nil {
			s := &p.dedup[k]
			p.reports[k] = p.machines[k].ExecuteDedupStep(s.Reads, s.ReaderOff, s.ReaderProcs, s.Writes)
		} else {
			p.reports[k] = p.machines[k].ExecuteStep(p.batches[k])
		}
	}
}

// ensureWorkers lazily starts the background executor goroutines (the
// caller is worker 0, so par−1 goroutines are spawned).
func (p *Pool) ensureWorkers() *poolWorkers {
	if p.workers != nil {
		return p.workers
	}
	w := &poolWorkers{
		stop:  make(chan struct{}),
		start: make(chan struct{}, p.par-1),
	}
	for i := 1; i < p.par; i++ {
		go w.work()
	}
	// Retire the goroutines when the Pool is collected. The cleanup must
	// not capture p (that would keep it alive forever); workers reach p
	// only via w.p, which is cleared between steps.
	runtime.AddCleanup(p, (*poolWorkers).shutdown, w)
	p.workers = w
	return w
}

// work is the body of one background executor goroutine.
func (w *poolWorkers) work() {
	for {
		select {
		case <-w.stop:
			return
		case <-w.start:
		}
		w.drain()
		w.wg.Done()
	}
}

// drain executes components off the step's cursor until none remain.
func (w *poolWorkers) drain() {
	p := w.p
	for {
		c := w.next.Add(1) - 1
		if c >= w.ncomp {
			return
		}
		p.runComponent(int(c))
	}
}

// shutdown retires the background goroutines; safe to call twice (a worker
// set replaced by SetWorkers is shut down eagerly, and the Pool's runtime
// cleanup fires for it again at collection time).
func (w *poolWorkers) shutdown() {
	w.stopOnce.Do(func() { close(w.stop) })
}
