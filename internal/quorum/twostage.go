package quorum

import "repro/internal/xmath"

// TwoStageConfig enables the faithful two-stage schedule of Upfal &
// Wigderson as used by the paper (§1's review and Luccio et al.'s
// adaptation):
//
//   - Stage 1 interleaves the 2c−1 requests of every cluster round-robin
//     for a FIXED budget of phases — O(log log n) passes over the cluster's
//     requests — after which all but ~n/(2c−1) requests are dead.
//   - Stage 2 drains the stragglers, one live request per cluster, with the
//     copy accesses queued at the modules and served at bandwidth
//     s = O(log n) per phase to match the interconnect's latency (the
//     pipelining that gives Theorem 3 its O(log²n/log log n) time).
//
// Correctness is unaffected by the stage split: a straggler's stage 2
// access starts from a clean slate and still gathers/updates a full quorum
// of c copies; only the TIME accounting changes.
type TwoStageConfig struct {
	// Stage1Phases caps stage 1; 0 selects (2c−1)·(⌈log2 log2 n⌉+2),
	// the paper's O(log log n) passes over each cluster's requests.
	Stage1Phases int
	// Stage2Bandwidth is the per-module service rate during stage 2;
	// 0 selects ⌈log2 n⌉.
	Stage2Bandwidth int
}

// BandwidthSetter is implemented by interconnects whose per-phase module
// service rate can be retuned between stages (the complete bipartite graph
// and the 2DMOT's module queues both support it).
type BandwidthSetter interface {
	SetBandwidth(perPhase int)
}

// stage1Budget resolves the stage 1 phase cap.
func (ts *TwoStageConfig) stage1Budget(n, r int) int {
	if ts.Stage1Phases > 0 {
		return ts.Stage1Phases
	}
	passes := xmath.CeilLog2(xmath.CeilLog2(max(n, 4))+1) + 2
	return r * passes
}

// stage2Bandwidth resolves the stage 2 service rate.
func (ts *TwoStageConfig) stage2Bandwidth(n int) int {
	if ts.Stage2Bandwidth > 0 {
		return ts.Stage2Bandwidth
	}
	return max(1, xmath.CeilLog2(n))
}

// ExecuteBatchTwoStage runs one access batch under the two-stage schedule.
// The Result's Phases/Time/LiveTrace span both stages; Stage1Phases and
// Stage2Phases break the count down. Like ExecuteBatch, the Result's slices
// alias the engine's scratch arena: both stages append to one contiguous
// live-trace buffer, and stage 2 runs in the arena's secondary result
// buffers so merging cannot clobber the stage-1 frame.
func (e *Engine) ExecuteBatchTwoStage(reqs []Request, cfg TwoStageConfig) Result {
	e.sc.trace = e.sc.trace[:0]
	values, satisfied := e.primaryBuffers(len(reqs))
	// Stage 1: the ordinary round-robin loop, capped at the budget. A
	// "stall" here is not an error — it is the designed handoff point.
	saveMax := e.MaxPhases
	e.MaxPhases = cfg.stage1Budget(e.n, e.r)
	stage1 := e.run(reqs, values, satisfied)
	e.MaxPhases = saveMax
	stage1.Stage1Phases = stage1.Phases
	if !stage1.Stalled {
		return stage1
	}
	// Stage 2: drain the stragglers with boosted module bandwidth.
	liveReqs := e.sc.liveReqs[:0]
	liveIdx := e.sc.liveIdx[:0]
	for i, ok := range stage1.Satisfied {
		if !ok {
			liveReqs = append(liveReqs, reqs[i])
			liveIdx = append(liveIdx, i)
		}
	}
	e.sc.liveReqs = liveReqs
	e.sc.liveIdx = liveIdx
	if bs, ok := e.net.(BandwidthSetter); ok {
		bs.SetBandwidth(cfg.stage2Bandwidth(e.n))
		defer bs.SetBandwidth(1)
	}
	values2, satisfied2 := e.secondaryBuffers(len(liveReqs))
	stage2 := e.run(liveReqs, values2, satisfied2)
	// Merge stage 2 outcomes into stage 1's result frame.
	merged := stage1
	merged.Stalled = stage2.Stalled
	merged.Phases += stage2.Phases
	merged.Time += stage2.Time
	merged.CopyAccesses += stage2.CopyAccesses
	if stage2.MaxModuleLoad > merged.MaxModuleLoad {
		merged.MaxModuleLoad = stage2.MaxModuleLoad
	}
	// Both stages appended to the shared accumulator, so the merged trace
	// is simply its full extent.
	merged.LiveTrace = e.sc.trace[:len(e.sc.trace):len(e.sc.trace)]
	merged.Stage2Phases = stage2.Phases
	for j, i := range liveIdx {
		merged.Satisfied[i] = stage2.Satisfied[j]
		merged.Values[i] = stage2.Values[j]
	}
	return merged
}
