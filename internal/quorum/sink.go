package quorum

import (
	"fmt"

	"repro/internal/model"
)

// StepSink observes the post-dedup request stream at the engine/pool
// boundary — the hook the trace record/replay subsystem (repro/internal/
// replay) captures machine runs through. A Machine with a sink attached
// reports, after every executed step, the deduplicated read and write
// batches it fed the engine, the reader fan-out lists that turn per-request
// read values back into per-processor values, and the step's cost report.
//
// All slice arguments alias machine scratch and are valid only for the
// duration of the call: a sink must encode or copy what it keeps. Sinks
// must not mutate any argument and must not call back into the machine.
//
// In a multi-engine Pool every shard machine carries its own lane id
// (Pool.SetStepSink assigns lane k to shard k), and shard machines execute
// concurrently: RecordStep may be called from different goroutines for
// DIFFERENT lanes at the same time, never concurrently for one lane. The
// pool calls StepBarrier from the caller's goroutine after each
// ExecuteSteps round, with every RecordStep of the round ordered before it
// (the pool's worker barrier publishes them) — the point where a recorder
// can serialize the round's lanes in canonical ascending order.
type StepSink interface {
	// RecordStep reports one executed step: the deduplicated batches, the
	// per-read-request reader lists (readerProcs[readerOff[g]:readerOff[g+1]]
	// are the ascending processor ids whose reads collapsed into reads[g];
	// the run starts with reads[g].Proc itself), and the assembled report.
	RecordStep(lane int, reads []Request, readerOff, readerProcs []int32, writes []Request, rep model.StepReport)
	// RecordLoad reports a LoadCells memory initialization. Loads must not
	// interleave with pool step execution (they are setup-time events).
	RecordLoad(lane int, base model.Addr, vals []model.Word)
	// StepBarrier marks the end of one Pool.ExecuteSteps round. Single
	// machines never call it.
	StepBarrier()
}

// SetStepSink attaches a step sink to the machine under the given lane id
// (nil detaches). Attach before the first step: a trace that misses steps
// since construction replays against interconnect and clock state the
// recorded costs did not see. Replay entry points (ExecuteDedupStep) never
// invoke the sink, so replaying through a recording machine cannot
// re-record.
func (m *Machine) SetStepSink(sink StepSink, lane int) {
	m.sink = sink
	m.lane = lane
}

// buildReaderLists materializes the reader fan-out — for every deduplicated
// read request g, the ascending processor ids recs[readStart[g]:readEnd[g]]
// that issued reads of its variable — as flat int32 arrays in the scratch
// arena. Only recording runs pay for it.
func (m *Machine) buildReaderLists() ([]int32, []int32) {
	sc := &m.sc
	sc.readerOff = sc.readerOff[:0]
	sc.readerProcs = sc.readerProcs[:0]
	for g := range sc.readReqs {
		sc.readerOff = append(sc.readerOff, int32(len(sc.readerProcs)))
		for k := sc.readStart[g]; k < sc.readEnd[g]; k++ {
			sc.readerProcs = append(sc.readerProcs, int32(sc.recs[k].Proc))
		}
	}
	sc.readerOff = append(sc.readerOff, int32(len(sc.readerProcs)))
	return sc.readerOff, sc.readerProcs
}

// ExecuteDedupStep executes one P-RAM step from its POST-DEDUP form — the
// deduplicated read batch, the reader fan-out lists, and the deduplicated
// write batch, exactly what a StepSink observed — skipping the sort/dedup/
// conflict-check front of ExecuteStep. It is the replay entry point: cost
// accounting, store mutations and the dense Values buffer are bit-for-bit
// those of the ExecuteStep call the batches were captured from (conflict-
// discipline checking is a dedup-layer property and is not re-run, so
// rep.Err only reports protocol stalls).
//
// readerOff/readerProcs may be nil, in which case each read's value is
// fanned out to its representative processor only. The returned report
// aliases machine scratch like ExecuteStep's. The sink, if any, is NOT
// invoked.
//
//pram:hotpath
func (m *Machine) ExecuteDedupStep(reads []Request, readerOff, readerProcs []int32, writes []Request) model.StepReport {
	if readerOff != nil && len(readerOff) != len(reads)+1 {
		//pram:coldalloc caller-contract panic guard, never taken in steady state
		panic(fmt.Sprintf("quorum.ExecuteDedupStep: %d reader offsets for %d reads", len(readerOff), len(reads)))
	}
	sc := &m.sc

	// Size the dense Values buffer by the same rule as ExecuteStep: at
	// least one slot per machine processor, extended to the largest
	// processor id the step names.
	maxProc := m.n - 1
	for i := range reads {
		if reads[i].Proc > maxProc {
			maxProc = reads[i].Proc
		}
	}
	for _, p := range readerProcs {
		if int(p) > maxProc {
			maxProc = int(p)
		}
	}
	for i := range writes {
		if writes[i].Proc > maxProc {
			maxProc = writes[i].Proc
		}
	}

	var rep model.StepReport
	sc.values = grow(sc.values, maxProc+1)
	values := sc.values
	clear(values)
	rep.Values = values

	rres := m.runBatch(reads)
	// Fan the per-request values out to every recorded reader NOW: the
	// write batch below reuses the engine's result buffers.
	if readerOff != nil {
		for g := range reads {
			v := rres.Values[g]
			for _, p := range readerProcs[readerOff[g]:readerOff[g+1]] {
				values[p] = v
			}
		}
	} else {
		for g := range reads {
			values[reads[g].Proc] = rres.Values[g]
		}
	}
	readLastLive := lastLive(rres)

	wres := m.runBatch(writes)
	return m.assembleReport(rep, rres, wres, readLastLive)
}
