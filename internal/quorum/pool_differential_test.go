// Differential test harness for the multi-engine pool: concurrent
// execution is only correct if it is BIT-FOR-BIT the serial single-engine
// reference — same per-shard StepReports, same aggregate, same replicated
// memory image (values AND timestamps) — across interconnects, policies,
// rails, schedules, seeds and engine counts. The reference is the plain
// loop the pool replaces: the same K machines' steps executed one after
// another in ascending shard order on a second store drawn from the same
// map. (External package so the MOT-backed cases can import
// repro/internal/mot, which itself imports quorum.)
package quorum_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/mot"
	"repro/internal/quorum"
)

// poolHarness couples a pool to its serial reference over one memory map.
type poolHarness struct {
	pool *quorum.Pool
	ref  []*quorum.Machine
	refR []model.StepReport
	mem  int
}

// newPoolHarness builds the pool and reference sides with independent
// stores over the same map and independent interconnect instances.
func newPoolHarness(mp *memmap.Map, k, nPer, workers int, mode model.Mode,
	newNet func(shard int) quorum.Interconnect, twoStage *quorum.TwoStageConfig) *poolHarness {
	h := &poolHarness{
		pool: quorum.NewPool("pool", quorum.NewStore(mp), newNet,
			quorum.PoolConfig{Engines: k, Procs: nPer, Mode: mode, Workers: workers, TwoStage: twoStage}),
		ref:  make([]*quorum.Machine, k),
		refR: make([]model.StepReport, k),
		mem:  mp.Vars(),
	}
	refStore := quorum.NewStore(mp)
	for i := range h.ref {
		m := quorum.NewMachine(fmt.Sprintf("ref[%d]", i), nPer, mode, refStore, newNet(i))
		if twoStage != nil {
			ts := *twoStage
			m.SetTwoStage(&ts)
		}
		h.ref[i] = m
	}
	return h
}

// stepFingerprint collapses a StepReport to its comparable fields (Values
// aliases a reusable buffer, so it is rendered into the string).
func stepFingerprint(rep model.StepReport) string {
	return fmt.Sprintf("t=%d ph=%d cyc=%d copies=%d cont=%d err=%v vals=%v",
		rep.Time, rep.Phases, rep.NetworkCycles, rep.CopyAccesses,
		rep.ModuleContention, rep.Err, rep.Values)
}

// shardBatch draws one shard's step: mostly band-local traffic with a
// crossProb chance per request of addressing the full variable space,
// which forces component merges.
func shardBatch(rng *rand.Rand, h *poolHarness, shard int, crossProb float64) model.Batch {
	k := h.pool.Engines()
	nPer := h.pool.ShardProcs()
	lo, hi := memmap.BandRange(shard, h.mem, k)
	b := model.NewBatch(nPer)
	for i := 0; i < nPer; i++ {
		addr := lo + rng.Intn(hi-lo)
		if rng.Float64() < crossProb {
			addr = rng.Intn(h.mem)
		}
		switch rng.Intn(3) {
		case 0:
			b[i] = model.Request{Proc: i, Op: model.OpRead, Addr: addr}
		case 1:
			b[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: addr, Value: model.Word(rng.Int63n(1 << 20))}
		default:
			b[i] = model.Request{Proc: i, Op: model.OpNone}
		}
	}
	return b
}

// runDifferentialSteps drives both sides through the same step stream and
// fails on the first divergence; afterwards the stores must carry
// identical images down to the timestamps.
func runDifferentialSteps(t *testing.T, h *poolHarness, seed int64, steps int, crossProb float64) {
	t.Helper()
	k := h.pool.Engines()
	rng := rand.New(rand.NewSource(seed))
	batches := make([]model.Batch, k)
	var refAgg model.StepReport
	for s := 0; s < steps; s++ {
		for sh := range batches {
			batches[sh] = shardBatch(rng, h, sh, crossProb)
		}
		agg, shardReps := h.pool.ExecuteSteps(batches)
		for sh := 0; sh < k; sh++ {
			h.refR[sh] = h.ref[sh].ExecuteStep(batches[sh])
		}
		for sh := 0; sh < k; sh++ {
			fp, fr := stepFingerprint(shardReps[sh]), stepFingerprint(h.refR[sh])
			if fp != fr {
				t.Fatalf("step %d shard %d diverged:\n pool %s\n ref  %s", s, sh, fp, fr)
			}
		}
		model.MergeStepReports(&refAgg, h.refR, h.pool.ShardProcs())
		if fa, fr := stepFingerprint(agg), stepFingerprint(refAgg); fa != fr {
			t.Fatalf("step %d aggregate diverged:\n pool %s\n ref  %s", s, fa, fr)
		}
	}
	if hp, hr := h.pool.Store().Fingerprint(), h.ref[0].Store().Fingerprint(); hp != hr {
		t.Fatalf("store images diverged after %d steps: pool %x, ref %x", steps, hp, hr)
	}
	for v := 0; v < h.mem; v += 1 + h.mem/64 {
		if vp, vr := h.pool.Store().CommittedValue(v), h.ref[0].Store().CommittedValue(v); vp != vr {
			t.Fatalf("committed[%d]: pool %d, ref %d", v, vp, vr)
		}
	}
}

// TestDifferentialPoolBipartite sweeps the DMMPC-style pool over engine
// counts, worker counts, band layouts and traffic mixes, asserting
// bit-for-bit equality with the serial reference.
func TestDifferentialPoolBipartite(t *testing.T) {
	newCB := func(int) quorum.Interconnect { return quorum.NewCompleteBipartite() }
	for _, K := range []int{1, 2, 4, 8} {
		for _, banded := range []bool{true, false} {
			for _, cross := range []float64{0, 0.3} {
				name := fmt.Sprintf("K=%d/banded=%v/cross=%.1f", K, banded, cross)
				t.Run(name, func(t *testing.T) {
					const nPer = 16
					p := memmap.LemmaTwo(nPer*K, 2, 1)
					for seed := int64(1); seed <= 3; seed++ {
						var mp *memmap.Map
						if banded {
							mp = memmap.GenerateBanded(p, seed*31, K)
						} else {
							mp = memmap.Generate(p, seed*31)
						}
						h := newPoolHarness(mp, K, nPer, -1, model.CRCWPriority, newCB, nil)
						runDifferentialSteps(t, h, seed*977, 5, cross)
					}
				})
			}
		}
	}
}

// TestDifferentialPoolWorkerCounts pins worker-count independence: 1
// (serial caller), 2, and an oversubscribed count shake out different
// component interleavings, all bit-for-bit identical.
func TestDifferentialPoolWorkerCounts(t *testing.T) {
	const K, nPer = 4, 16
	p := memmap.LemmaTwo(nPer*K, 2, 1)
	mp := memmap.GenerateBanded(p, 7, K)
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("w=%d", workers), func(t *testing.T) {
			h := newPoolHarness(mp, K, nPer, workers, model.CRCWPriority,
				func(int) quorum.Interconnect { return quorum.NewCompleteBipartite() }, nil)
			runDifferentialSteps(t, h, 5, 6, 0.2)
		})
	}
}

// TestDifferentialPoolMOT runs the pool with 2DMOT packet networks as the
// shard interconnects — cycle-accurate routing, both policies, dual rail
// and the two-stage schedule — against the serial reference. Each shard
// machine owns its own network; the shared object under test is the
// sharded store.
func TestDifferentialPoolMOT(t *testing.T) {
	type tc struct {
		name     string
		dualRail bool
		policy   mot.Policy
		twoStage *quorum.TwoStageConfig
	}
	cases := []tc{
		{"plain", false, mot.DropOnCollision, nil},
		{"queue", false, mot.QueueOnCollision, nil},
		{"dualrail", true, mot.DropOnCollision, nil},
		{"twostage", false, mot.DropOnCollision, &quorum.TwoStageConfig{}},
		{"dualrail-twostage", true, mot.DropOnCollision, &quorum.TwoStageConfig{}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, K := range []int{1, 2, 4} {
				const nPer = 16
				nTotal := nPer * K
				var p memmap.Params
				var side int
				if c.dualRail {
					p, side = memmap.TheoremThreeDual(nTotal, 2, 2)
				} else {
					p, side = memmap.TheoremThree(nTotal, 2, 2)
				}
				mp := memmap.GenerateBanded(p, 13, K)
				newNet := func(int) quorum.Interconnect {
					return mot.NewNetwork(side, mot.ModulesAtLeaves,
						mot.Config{Policy: c.policy, DualRail: c.dualRail})
				}
				h := newPoolHarness(mp, K, nPer, -1, model.CRCWPriority, newNet, c.twoStage)
				runDifferentialSteps(t, h, 23+int64(K), 4, 0.2)
			}
		})
	}
}

// TestDifferentialPoolEnvEngines builds the pool with Engines: 0 so the
// shard count resolves from PRAMSIM_ENGINES — under the CI race job
// (PRAMSIM_ENGINES=4) this doubles as the pool-equivalence check for the
// env-configured engine count, with the router's own PRAMSIM_PARALLEL
// workers running inside each shard.
func TestDifferentialPoolEnvEngines(t *testing.T) {
	K := quorum.ResolveEngines(0)
	const nPer = 16
	p := memmap.LemmaTwo(nPer*K, 2, 1)
	mp := memmap.GenerateBanded(p, 3, K)
	h := newPoolHarness(mp, K, nPer, 0, model.CRCWPriority,
		func(int) quorum.Interconnect { return quorum.NewCompleteBipartite() }, nil)
	if h.pool.Engines() != K {
		t.Fatalf("pool resolved %d engines, want %d", h.pool.Engines(), K)
	}
	runDifferentialSteps(t, h, 41, 5, 0.25)
}

// TestPoolExecuteStepsZeroAllocs locks the pool's steady-state
// zero-allocation invariant: partition, worker dispatch, K shard steps and
// the report merge all run out of reused arenas.
func TestPoolExecuteStepsZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation invariants are measured without the race detector")
	}
	const K, nPer = 4, 32
	p := memmap.LemmaTwo(nPer*K, 2, 1)
	mp := memmap.GenerateBanded(p, 11, K)
	pl := quorum.NewPool("alloc", quorum.NewStore(mp),
		func(int) quorum.Interconnect { return quorum.NewCompleteBipartite() },
		quorum.PoolConfig{Engines: K, Procs: nPer, Mode: model.CRCWPriority, Workers: -1})
	batches := make([]model.Batch, K)
	mem := mp.Vars()
	for k := range batches {
		lo, hi := memmap.BandRange(k, mem, K)
		b := model.NewBatch(nPer)
		for i := 0; i < nPer; i++ {
			addr := lo + (i*13)%(hi-lo)
			if i%2 == 0 {
				b[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: addr, Value: model.Word(i)}
			} else {
				b[i] = model.Request{Proc: i, Op: model.OpRead, Addr: addr}
			}
		}
		batches[k] = b
	}
	for i := 0; i < 5; i++ { // grow arenas, warm the worker set
		if agg, _ := pl.ExecuteSteps(batches); agg.Err != nil {
			t.Fatal(agg.Err)
		}
	}
	if avg := testing.AllocsPerRun(20, func() {
		if agg, _ := pl.ExecuteSteps(batches); agg.Err != nil {
			t.Fatal(agg.Err)
		}
	}); avg != 0 {
		t.Errorf("ExecuteSteps allocates %.1f/op in steady state, want 0", avg)
	}
}
