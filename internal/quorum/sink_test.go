package quorum

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/memmap"
	"repro/internal/model"
)

// captureSink copies every recorded step (the slices alias machine
// scratch, so a sink must deep-copy what it keeps).
type captureSink struct {
	lanes    []int
	steps    []DedupStep
	reports  []string
	loads    int
	barriers int
}

func (c *captureSink) RecordStep(lane int, reads []Request, readerOff, readerProcs []int32,
	writes []Request, rep model.StepReport) {
	c.lanes = append(c.lanes, lane)
	c.steps = append(c.steps, DedupStep{
		Reads:       append([]Request(nil), reads...),
		ReaderOff:   append([]int32(nil), readerOff...),
		ReaderProcs: append([]int32(nil), readerProcs...),
		Writes:      append([]Request(nil), writes...),
	})
	c.reports = append(c.reports, reportString(&rep))
}

func (c *captureSink) RecordLoad(lane int, base model.Addr, vals []model.Word) { c.loads++ }

func (c *captureSink) StepBarrier() { c.barriers++ }

func reportString(rep *model.StepReport) string {
	return fmt.Sprintf("t=%d ph=%d cyc=%d cp=%d cont=%d err=%v vals=%v",
		rep.Time, rep.Phases, rep.NetworkCycles, rep.CopyAccesses,
		rep.ModuleContention, rep.Err != nil, rep.Values)
}

// mixedBatch draws a random step with shared addresses (multi-reader
// fan-out) and concurrent writes.
func mixedBatch(rng *rand.Rand, n, mem int) model.Batch {
	b := model.NewBatch(n)
	for i := 0; i < n; i++ {
		addr := rng.Intn(mem / 4) // dense address reuse
		switch rng.Intn(3) {
		case 0:
			b[i] = model.Request{Proc: i, Op: model.OpRead, Addr: addr}
		case 1:
			b[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: addr, Value: model.Word(rng.Int63n(1 << 16))}
		}
	}
	return b
}

// TestExecuteDedupStepMatchesExecuteStep: feeding a captured post-dedup
// step back through ExecuteDedupStep on an identically constructed machine
// reproduces the original StepReport bit-for-bit (Err excepted — the dedup
// layer's conflict check is not re-run) and the same store image.
func TestExecuteDedupStepMatchesExecuteStep(t *testing.T) {
	const n, steps = 32, 10
	p := memmap.LemmaTwo(n, 2, 1)
	mp := memmap.Generate(p, 17)
	live := NewMachine("live", n, model.CRCWPriority, NewStore(mp), NewCompleteBipartite())
	rep := NewMachine("replay", n, model.CRCWPriority, NewStore(mp), NewCompleteBipartite())

	sink := &captureSink{}
	live.SetStepSink(sink, 3)
	rng := rand.New(rand.NewSource(5))
	var liveReports []string
	for s := 0; s < steps; s++ {
		r := live.ExecuteStep(mixedBatch(rng, n, mp.Vars()))
		liveReports = append(liveReports, reportString(&r))
	}
	live.SetStepSink(nil, 0)

	if len(sink.steps) != steps {
		t.Fatalf("sink captured %d steps, want %d", len(sink.steps), steps)
	}
	for _, lane := range sink.lanes {
		if lane != 3 {
			t.Fatalf("sink saw lane %d, want 3", lane)
		}
	}
	for s, ds := range sink.steps {
		r := rep.ExecuteDedupStep(ds.Reads, ds.ReaderOff, ds.ReaderProcs, ds.Writes)
		got := reportString(&r)
		if got != liveReports[s] {
			t.Errorf("step %d diverged:\n live  %s\n dedup %s", s, liveReports[s], got)
		}
		if sink.reports[s] != liveReports[s] {
			// The sink's recorded report must equal the returned one too.
			t.Errorf("step %d: sink recorded %s, ExecuteStep returned %s", s, sink.reports[s], liveReports[s])
		}
	}
	if lf, rf := live.Store().Fingerprint(), rep.Store().Fingerprint(); lf != rf {
		t.Errorf("store fingerprints diverged: live %x, dedup %x", lf, rf)
	}
}

// TestDedupStepDoesNotRecord: replay entry points must not re-invoke the
// sink.
func TestDedupStepDoesNotRecord(t *testing.T) {
	const n = 16
	p := memmap.LemmaTwo(n, 2, 1)
	mp := memmap.Generate(p, 9)
	m := NewMachine("m", n, model.CRCWPriority, NewStore(mp), NewCompleteBipartite())
	sink := &captureSink{}
	m.SetStepSink(sink, 0)
	m.ExecuteDedupStep([]Request{{Proc: 0, Var: 1}}, nil, nil, []Request{{Proc: 1, Var: 2, Write: true, Value: 7}})
	if len(sink.steps) != 0 {
		t.Fatalf("ExecuteDedupStep recorded %d steps through the sink", len(sink.steps))
	}
}

// TestPoolSetStepSinkLanes: the pool wires shard k to lane k and fires the
// barrier once per round.
func TestPoolSetStepSinkLanes(t *testing.T) {
	const k, nPer = 4, 8
	p := memmap.LemmaTwo(k*nPer, 2, 1)
	mp := memmap.GenerateBanded(p, 7, k)
	pl := NewPool("sink", NewStore(mp), func(int) Interconnect { return NewCompleteBipartite() },
		PoolConfig{Engines: k, Procs: nPer, Mode: model.CRCWPriority})
	sink := &captureSink{}
	pl.SetStepSink(sink)

	batches := make([]model.Batch, k)
	for sh := range batches {
		lo, _ := memmap.BandRange(sh, mp.Vars(), k)
		b := model.NewBatch(nPer)
		for i := 0; i < nPer; i++ {
			b[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: lo + i, Value: model.Word(sh*100 + i)}
		}
		batches[sh] = b
	}
	const rounds = 3
	for r := 0; r < rounds; r++ {
		pl.ExecuteSteps(batches)
	}
	if sink.barriers != rounds {
		t.Errorf("saw %d barriers, want %d", sink.barriers, rounds)
	}
	if len(sink.steps) != rounds*k {
		t.Fatalf("captured %d steps, want %d", len(sink.steps), rounds*k)
	}
	// Every round records each lane exactly once (order within a round is
	// execution order; the recorder serializes rounds at the barrier).
	for r := 0; r < rounds; r++ {
		seen := make(map[int]bool)
		for _, lane := range sink.lanes[r*k : (r+1)*k] {
			if seen[lane] {
				t.Fatalf("round %d recorded lane %d twice", r, lane)
			}
			seen[lane] = true
		}
	}
	// Replaying the captured rounds through ExecuteDedupSteps on a fresh
	// pool reproduces the store image.
	pl2 := NewPool("sink2", NewStore(mp), func(int) Interconnect { return NewCompleteBipartite() },
		PoolConfig{Engines: k, Procs: nPer, Mode: model.CRCWPriority})
	for r := 0; r < rounds; r++ {
		round := make([]DedupStep, k)
		for i, lane := range sink.lanes[r*k : (r+1)*k] {
			round[lane] = sink.steps[r*k+i]
		}
		pl2.ExecuteDedupSteps(round)
	}
	if a, b := pl.Store().Fingerprint(), pl2.Store().Fingerprint(); a != b {
		t.Errorf("pool replay fingerprint %x, live %x", b, a)
	}
}
