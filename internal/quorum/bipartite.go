package quorum

import (
	"cmp"
	"slices"
)

// CompleteBipartite is the interconnect of the MPC and DMMPC models: every
// processor reaches every memory module directly (K(n,n) resp. K(n,M)), so
// a phase costs one time unit and the only resource limit is per-module
// bandwidth — each module serves at most Bandwidth requests per phase
// (1 in the classical models).
//
// RoutePhase is allocation-free and sort-free in steady state: per-module
// arbitration uses a phase-stamped load table indexed by module id (grown
// lazily to the highest module seen, i.e. O(M) like the machine itself).
// Attempts are processed in ascending processor order — the order the
// engine schedules them in — so the first Bandwidth attempts seen per
// module are exactly the lowest-processor ones; unsorted callers are
// detected and sorted first. The returned granted slice is reused across
// calls (see Interconnect).
type CompleteBipartite struct {
	// Bandwidth is the number of copy accesses a module can serve per
	// phase; the MPC/DMMPC definitions use 1.
	Bandwidth int
	// PhaseCost is the simulated duration of a phase (default 1).
	PhaseCost int64

	granted []bool
	order   []int32
	phase   int64   // stamp: current RoutePhase invocation
	stamp   []int64 // per-module: last phase that touched it
	load    []int32 // per-module: attempts seen this phase
}

// NewCompleteBipartite returns the standard unit-bandwidth interconnect.
func NewCompleteBipartite() *CompleteBipartite {
	return &CompleteBipartite{Bandwidth: 1, PhaseCost: 1}
}

// SetBandwidth implements BandwidthSetter (stage-2 pipelining).
func (cb *CompleteBipartite) SetBandwidth(perPhase int) {
	if perPhase < 1 {
		perPhase = 1
	}
	cb.Bandwidth = perPhase
}

// RoutePhase implements Interconnect: per module, the Bandwidth attempts
// with the lowest processor ids are granted (deterministic priority
// arbitration), the rest are refused and will be retried by the engine.
func (cb *CompleteBipartite) RoutePhase(attempts []Attempt) ([]bool, int64, int) {
	cb.granted = grow(cb.granted, len(attempts))
	granted := cb.granted
	clear(granted)
	bw := cb.Bandwidth
	if bw <= 0 {
		bw = 1
	}
	cost := cb.PhaseCost
	if cost <= 0 {
		cost = 1
	}
	if len(attempts) == 0 {
		return granted, 0, 0
	}
	cb.phase++
	maxModule, sorted := 0, true
	for i, a := range attempts {
		if a.Module > maxModule {
			maxModule = a.Module
		}
		if i > 0 && a.Proc < attempts[i-1].Proc {
			sorted = false
		}
	}
	if cap(cb.stamp) <= maxModule {
		cb.stamp = make([]int64, maxModule+1)
		cb.load = make([]int32, maxModule+1)
	}
	stamp, load := cb.stamp[:maxModule+1], cb.load[:maxModule+1]
	maxLoad := 0
	serve := func(i int) {
		a := attempts[i]
		if stamp[a.Module] != cb.phase {
			stamp[a.Module] = cb.phase
			load[a.Module] = 0
		}
		load[a.Module]++
		if int(load[a.Module]) <= bw {
			granted[i] = true
		}
		if int(load[a.Module]) > maxLoad {
			maxLoad = int(load[a.Module])
		}
	}
	if sorted {
		for i := range attempts {
			serve(i)
		}
		return granted, cost, maxLoad
	}
	// Rare path: direct callers with unsorted attempts. Arbitrate in
	// ascending (proc, index) order so grants stay deterministic and
	// identical to the engine-ordered case.
	order := grow(cb.order, len(attempts))
	cb.order = order
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortFunc(order, func(x, y int32) int {
		if attempts[x].Proc != attempts[y].Proc {
			return cmp.Compare(attempts[x].Proc, attempts[y].Proc)
		}
		return cmp.Compare(x, y)
	})
	for _, i := range order {
		serve(int(i))
	}
	return granted, cost, maxLoad
}
