package quorum

import "sort"

// CompleteBipartite is the interconnect of the MPC and DMMPC models: every
// processor reaches every memory module directly (K(n,n) resp. K(n,M)), so
// a phase costs one time unit and the only resource limit is per-module
// bandwidth — each module serves at most Bandwidth requests per phase
// (1 in the classical models).
type CompleteBipartite struct {
	// Bandwidth is the number of copy accesses a module can serve per
	// phase; the MPC/DMMPC definitions use 1.
	Bandwidth int
	// PhaseCost is the simulated duration of a phase (default 1).
	PhaseCost int64
}

// NewCompleteBipartite returns the standard unit-bandwidth interconnect.
func NewCompleteBipartite() *CompleteBipartite {
	return &CompleteBipartite{Bandwidth: 1, PhaseCost: 1}
}

// SetBandwidth implements BandwidthSetter (stage-2 pipelining).
func (cb *CompleteBipartite) SetBandwidth(perPhase int) {
	if perPhase < 1 {
		perPhase = 1
	}
	cb.Bandwidth = perPhase
}

// RoutePhase implements Interconnect: per module, the Bandwidth attempts
// with the lowest processor ids are granted (deterministic priority
// arbitration), the rest are refused and will be retried by the engine.
func (cb *CompleteBipartite) RoutePhase(attempts []Attempt) ([]bool, int64, int) {
	granted := make([]bool, len(attempts))
	bw := cb.Bandwidth
	if bw <= 0 {
		bw = 1
	}
	cost := cb.PhaseCost
	if cost <= 0 {
		cost = 1
	}
	if len(attempts) == 0 {
		return granted, 0, 0
	}
	byModule := make(map[int][]int)
	for i, a := range attempts {
		byModule[a.Module] = append(byModule[a.Module], i)
	}
	maxLoad := 0
	for _, idxs := range byModule {
		if len(idxs) > maxLoad {
			maxLoad = len(idxs)
		}
		sort.Slice(idxs, func(x, y int) bool {
			return attempts[idxs[x]].Proc < attempts[idxs[y]].Proc
		})
		for rank, i := range idxs {
			if rank < bw {
				granted[i] = true
			}
		}
	}
	return granted, cost, maxLoad
}
