package quorum

import (
	"testing"

	"repro/internal/memmap"
)

// TestLiveTraceGeometricDecay verifies the mechanism behind O(log n)
// phases: the expansion property makes the live-request count fall by a
// constant factor per pass over the cluster queues — the invariant the
// Lemma 2 → Theorem 2 argument rests on.
func TestLiveTraceGeometricDecay(t *testing.T) {
	const n = 1024
	p := memmap.LemmaTwo(n, 2, 1)
	eng := NewEngine(NewStore(memmap.Generate(p, 21)), NewCompleteBipartite(), n)
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Proc: i, Var: (i * 131) % p.Mem, Write: true, Value: 1}
	}
	res := eng.ExecuteBatch(reqs)
	if res.Stalled {
		t.Fatal("stalled")
	}
	trace := res.LiveTrace
	// Sample the trace once per cluster pass (every r phases): each pass
	// must clear at least half the remaining live requests on a healthy
	// fine-grain map.
	r := p.R()
	prev := n
	for i := r - 1; i < len(trace); i += r {
		cur := trace[i]
		if cur > (prev+1)/2 {
			t.Fatalf("pass ending at phase %d: live %d -> %d, decay slower than 1/2 (trace %v)",
				i+1, prev, cur, trace)
		}
		prev = cur
	}
	if trace[len(trace)-1] != 0 {
		t.Error("batch did not drain")
	}
	t.Logf("n=%d drained in %d phases, trace=%v", n, res.Phases, trace)
}

// TestDecayDegradesOnCoarseGrain shows the contrast the paper draws: the
// same protocol on an MPC-granularity map (M = n) drains more slowly per
// copy because module contention throttles each phase.
func TestDecayDegradesOnCoarseGrain(t *testing.T) {
	const n = 512
	fine := memmap.LemmaTwo(n, 2, 1)
	coarse := memmap.LemmaOne(n, 2)
	mkReqs := func(m int) []Request {
		reqs := make([]Request, n)
		for i := range reqs {
			reqs[i] = Request{Proc: i, Var: (i * 131) % m, Write: true, Value: 1}
		}
		return reqs
	}
	fe := NewEngine(NewStore(memmap.Generate(fine, 3)), NewCompleteBipartite(), n)
	ce := NewEngine(NewStore(memmap.Generate(coarse, 3)), NewCompleteBipartite(), n)
	fres := fe.ExecuteBatch(mkReqs(fine.Mem))
	cres := ce.ExecuteBatch(mkReqs(coarse.Mem))
	// Normalize per copy: phases / r. Fine grain should be at least as
	// good per copy and strictly cheaper in total despite equal n.
	finePerCopy := float64(fres.Phases) / float64(fine.R())
	coarsePerCopy := float64(cres.Phases) / float64(coarse.R())
	if finePerCopy > coarsePerCopy*1.5 {
		t.Errorf("fine-grain per-copy phases %.2f worse than coarse %.2f",
			finePerCopy, coarsePerCopy)
	}
	t.Logf("fine: %d phases (r=%d), coarse: %d phases (r=%d)",
		fres.Phases, fine.R(), cres.Phases, coarse.R())
}
