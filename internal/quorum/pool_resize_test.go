// Differential tests for online pool resizing: a pool that shrinks or
// grows between rounds must stay bit-for-bit with a fixed-K reference pool
// running the same batches (idle lanes empty) — shard reports, committed
// memory and store timestamps all equal. Shard machines are interchangeable
// (results depend only on batch + store state, never on shard index), which
// is exactly what makes Resize a remap rather than a migration.
package quorum_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/quorum"
)

// layoutBatch builds shard's deterministic step against a FIXED band
// layout (bands never changes across resizes — it is the serve layer's
// tenant-band count, not the pool's current K).
func layoutBatch(mem, nPer, shard, bands, round int) model.Batch {
	lo, hi := memmap.BandRange(shard, mem, bands)
	b := model.NewBatch(nPer)
	for i := 0; i < nPer; i++ {
		addr := lo + (i*7+round*3)%(hi-lo)
		switch (i + round) % 3 {
		case 0:
			b[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: addr,
				Value: model.Word(1000*shard + 10*round + i)}
		case 1:
			b[i] = model.Request{Proc: i, Op: model.OpRead, Addr: addr}
		default:
			b[i] = model.Request{Proc: i, Op: model.OpNone}
		}
	}
	return b
}

// resizePools builds the live (resizing) and reference (fixed-K) pools
// over independent stores drawn from the same banded map.
func resizePools(nPer, bands, liveK, refK int) (live, ref *quorum.Pool) {
	p := memmap.LemmaTwo(nPer*bands, 2, 1)
	mp := memmap.GenerateBanded(p, 11, bands)
	newCB := func(int) quorum.Interconnect { return quorum.NewCompleteBipartite() }
	live = quorum.NewPool("live", quorum.NewStore(mp), newCB,
		quorum.PoolConfig{Engines: liveK, Procs: nPer, Mode: model.CRCWPriority, Workers: -1})
	ref = quorum.NewPool("ref", quorum.NewStore(mp), newCB,
		quorum.PoolConfig{Engines: refK, Procs: nPer, Mode: model.CRCWPriority, Workers: 1})
	return live, ref
}

// runResizeRound executes one round on both pools — the live pool carries
// the first live.Engines() lanes, the reference pads the rest with empty
// batches — and fails on any divergence in the shared lanes' reports.
func runResizeRound(t *testing.T, live, ref *quorum.Pool, bands, round int) {
	t.Helper()
	mem := live.Store().Map().Vars()
	nPer := live.ShardProcs()
	lk, rk := live.Engines(), ref.Engines()
	liveB := make([]model.Batch, lk)
	refB := make([]model.Batch, rk)
	for sh := 0; sh < lk; sh++ {
		liveB[sh] = layoutBatch(mem, nPer, sh, bands, round)
		refB[sh] = liveB[sh]
	}
	_, liveR := live.ExecuteSteps(liveB)
	_, refR := ref.ExecuteSteps(refB)
	for sh := 0; sh < lk; sh++ {
		fl, fr := stepFingerprint(liveR[sh]), stepFingerprint(refR[sh])
		if fl != fr {
			t.Fatalf("round %d shard %d diverged after resize:\n live %s\n ref  %s",
				round, sh, fl, fr)
		}
	}
}

// checkResizeStores asserts the two pools committed identical images.
func checkResizeStores(t *testing.T, live, ref *quorum.Pool) {
	t.Helper()
	if fl, fr := live.Store().Fingerprint(), ref.Store().Fingerprint(); fl != fr {
		t.Fatalf("store images diverged: live %x, ref %x", fl, fr)
	}
}

// TestPoolResizeShrinkGrowDifferential drives one pool through
// K=4 → 2 → 1 → 4 transitions mid-stream against a fixed K=4 reference:
// every surviving lane's report and the final store image are bit-for-bit.
func TestPoolResizeShrinkGrowDifferential(t *testing.T) {
	const nPer, bands = 16, 4
	live, ref := resizePools(nPer, bands, 4, 4)
	round := 0
	for _, k := range []int{4, 2, 1, 4} {
		live.Resize(k)
		if live.Engines() != k {
			t.Fatalf("Engines() = %d after Resize(%d)", live.Engines(), k)
		}
		for r := 0; r < 3; r++ {
			runResizeRound(t, live, ref, bands, round)
			round++
		}
	}
	checkResizeStores(t, live, ref)
	live.Close()
	ref.Close()
}

// TestPoolResizeGrowBeyondStart grows a pool past its construction-time K
// (fresh machines are built from the stored constructor inputs) and checks
// the new lanes against a pool born at the larger K.
func TestPoolResizeGrowBeyondStart(t *testing.T) {
	const nPer, bands = 16, 4
	live, ref := resizePools(nPer, bands, 2, 4)
	// Warm both pools at the small width first.
	for r := 0; r < 2; r++ {
		runResizeRound(t, live, ref, bands, r)
	}
	live.Resize(4)
	for r := 2; r < 5; r++ {
		runResizeRound(t, live, ref, bands, r)
	}
	checkResizeStores(t, live, ref)
	live.Close()
	ref.Close()
}

// TestPoolResizeCensusAndWorkers pins the transition bookkeeping: census
// getters never report above the new K, the worker count re-resolves
// against it, and degenerate calls behave (same-K no-op, k<1 panics).
func TestPoolResizeCensusAndWorkers(t *testing.T) {
	const nPer, bands = 8, 4
	live, _ := resizePools(nPer, bands, 4, 1)
	mem := live.Store().Map().Vars()
	batches := make([]model.Batch, 4)
	for sh := range batches {
		batches[sh] = layoutBatch(mem, nPer, sh, bands, 0)
	}
	live.ExecuteSteps(batches)
	if live.LastComponents() != 4 || live.LastActive() != 4 {
		t.Fatalf("pre-resize census: comp=%d active=%d, want 4/4",
			live.LastComponents(), live.LastActive())
	}
	live.Resize(2)
	if live.LastComponents() > 2 || live.LastActive() > 2 {
		t.Fatalf("post-resize census above new K: comp=%d active=%d",
			live.LastComponents(), live.LastActive())
	}
	if got, want := live.Workers(), live.Engines(); got > want {
		t.Fatalf("Workers() = %d after Resize(2), want ≤ %d", got, want)
	}
	live.Resize(2) // same-K: must be a no-op, not a rebuild
	if live.Engines() != 2 {
		t.Fatalf("Engines() = %d after same-K resize", live.Engines())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Resize(0) did not panic")
			}
		}()
		live.Resize(0)
	}()
	live.Close()
}

// TestPoolResizeSinkLanes checks that machines created by a grow inherit
// the pool's step sink on their own lane.
func TestPoolResizeSinkLanes(t *testing.T) {
	const nPer, bands = 8, 4
	live, _ := resizePools(nPer, bands, 2, 1)
	sink := &laneSink{}
	live.SetStepSink(sink)
	live.Resize(4)
	mem := live.Store().Map().Vars()
	batches := make([]model.Batch, 4)
	for sh := range batches {
		batches[sh] = layoutBatch(mem, nPer, sh, bands, 1)
	}
	live.ExecuteSteps(batches)
	if got := fmt.Sprint(sink.lanes); got != "map[0:1 1:1 2:1 3:1]" {
		t.Fatalf("sink lanes after grow = %s, want one step on each of 0..3", got)
	}
	live.Close()
}

// laneSink counts RecordStep calls per lane. RecordStep may run from
// worker goroutines (one per concurrent component), so the map is locked.
type laneSink struct {
	mu    sync.Mutex
	lanes map[int]int
}

func (s *laneSink) RecordStep(lane int, reads []quorum.Request, readerOff, readerProcs []int32,
	writes []quorum.Request, rep model.StepReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lanes == nil {
		s.lanes = map[int]int{}
	}
	s.lanes[lane]++
}

func (s *laneSink) RecordLoad(lane, base int, vals []model.Word) {}
func (s *laneSink) StepBarrier()                                 {}
