package quorum

import (
	"errors"
	"testing"

	"repro/internal/memmap"
	"repro/internal/model"
)

func backendSetup(t testing.TB, n int, mode model.Mode) *Machine {
	t.Helper()
	p := memmap.LemmaTwo(n, 2, 1)
	st := NewStore(memmap.Generate(p, 7))
	return NewMachine("test-machine", n, mode, st, NewCompleteBipartite())
}

func TestBackendConcurrentReadsCombine(t *testing.T) {
	const n = 32
	m := backendSetup(t, n, model.CRCWPriority)
	m.LoadCells(5, []model.Word{123})
	batch := model.NewBatch(n)
	for i := 0; i < n; i++ {
		batch[i] = model.Request{Proc: i, Op: model.OpRead, Addr: 5}
	}
	rep := m.ExecuteStep(batch)
	for i := 0; i < n; i++ {
		if rep.Values[i] != 123 {
			t.Fatalf("proc %d read %d", i, rep.Values[i])
		}
	}
	// Combined: the engine saw ONE request, costing ~r phases, far less
	// than n.
	if rep.Phases > 2*m.Redundancy() {
		t.Errorf("combined hot-spot read cost %d phases (r=%d)", rep.Phases, m.Redundancy())
	}
}

func TestBackendPriorityVsArbitraryWrites(t *testing.T) {
	mkBatch := func() model.Batch {
		return model.Batch{
			{Proc: 4, Op: model.OpWrite, Addr: 9, Value: 44},
			{Proc: 1, Op: model.OpWrite, Addr: 9, Value: 11},
			{Proc: 7, Op: model.OpWrite, Addr: 9, Value: 77},
		}
	}
	pr := backendSetup(t, 16, model.CRCWPriority)
	pr.ExecuteStep(mkBatch())
	if got := pr.ReadCell(9); got != 11 {
		t.Errorf("priority committed %d, want 11", got)
	}
	ar := backendSetup(t, 16, model.CRCWArbitrary)
	ar.ExecuteStep(mkBatch())
	if got := ar.ReadCell(9); got != 77 {
		t.Errorf("arbitrary committed %d, want 77 (highest proc)", got)
	}
}

func TestBackendEREWViolationReported(t *testing.T) {
	m := backendSetup(t, 8, model.EREW)
	batch := model.Batch{
		{Proc: 0, Op: model.OpRead, Addr: 3},
		{Proc: 1, Op: model.OpRead, Addr: 3},
	}
	rep := m.ExecuteStep(batch)
	var ce *model.ConflictError
	if !errors.As(rep.Err, &ce) {
		t.Fatalf("EREW violation not surfaced: %v", rep.Err)
	}
}

func TestBackendStallSurfacesAsError(t *testing.T) {
	const n = 64
	p := memmap.LemmaTwo(n, 2, 1)
	st := NewStore(memmap.GenerateCorrupt(p, p.R(), 3))
	m := NewMachine("corrupt", n, model.CRCWPriority, st, NewCompleteBipartite())
	m.Engine().MaxPhases = 4
	batch := model.NewBatch(n)
	for i := 0; i < n; i++ {
		batch[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: i, Value: 1}
	}
	rep := m.ExecuteStep(batch)
	var se *StallError
	if !errors.As(rep.Err, &se) {
		t.Fatalf("stall not surfaced: %v", rep.Err)
	}
	if se.Batch != "write" {
		t.Errorf("stalled batch = %q, want write", se.Batch)
	}
	if se.Live == 0 {
		t.Error("stall reports zero live requests")
	}
}

func TestBackendReadAndWriteSameCellInOneStep(t *testing.T) {
	m := backendSetup(t, 8, model.CRCWPriority)
	m.LoadCells(2, []model.Word{50})
	batch := model.Batch{
		{Proc: 0, Op: model.OpRead, Addr: 2},
		{Proc: 1, Op: model.OpWrite, Addr: 2, Value: 99},
	}
	rep := m.ExecuteStep(batch)
	if rep.Values[0] != 50 {
		t.Errorf("read saw %d, want pre-step 50", rep.Values[0])
	}
	if m.ReadCell(2) != 99 {
		t.Errorf("write lost")
	}
}

func TestBackendAccessors(t *testing.T) {
	m := backendSetup(t, 16, model.CREW)
	if m.Name() != "test-machine" {
		t.Error("name")
	}
	if m.Procs() != 16 {
		t.Error("procs")
	}
	if m.Mode() != model.CREW {
		t.Error("mode")
	}
	if m.Redundancy() != m.Store().Map().R() {
		t.Error("redundancy")
	}
	if m.Params() == "" {
		t.Error("params empty")
	}
	if m.MemSize() != m.Store().Map().Vars() {
		t.Error("memsize")
	}
}

func TestBackendNoNetworkCyclesOnBipartite(t *testing.T) {
	m := backendSetup(t, 8, model.CREW)
	batch := model.NewBatch(8)
	batch[0] = model.Request{Proc: 0, Op: model.OpRead, Addr: 0}
	rep := m.ExecuteStep(batch)
	if rep.NetworkCycles != 0 {
		t.Errorf("bipartite machine reported %d network cycles", rep.NetworkCycles)
	}
}

func TestStallErrorMessage(t *testing.T) {
	e := &StallError{Batch: "read", Phases: 9, Live: 3}
	want := "quorum protocol stalled: read batch stopped after 9 phases with 3 live requests"
	if e.Error() != want {
		t.Errorf("message = %q", e.Error())
	}
}
