package quorum

import (
	"math/rand"
	"testing"

	"repro/internal/memmap"
	"repro/internal/model"
)

// TestPartialClusterSizes: n not divisible by 2c−1 leaves a short last
// cluster; the protocol must still drain everything.
func TestPartialClusterSizes(t *testing.T) {
	for _, n := range []int{5, 13, 65, 129, 255} {
		p := memmap.LemmaTwo(256, 2, 1) // map sized for 256; n may be smaller
		st := NewStore(memmap.Generate(p, 3))
		eng := NewEngine(st, NewCompleteBipartite(), n)
		reqs := make([]Request, n)
		for i := range reqs {
			reqs[i] = Request{Proc: i, Var: i, Write: true, Value: model.Word(i)}
		}
		res := eng.ExecuteBatch(reqs)
		if res.Stalled {
			t.Errorf("n=%d: stalled", n)
			continue
		}
		for i, ok := range res.Satisfied {
			if !ok {
				t.Fatalf("n=%d: request %d unsatisfied", n, i)
			}
		}
		for i := range reqs {
			if got := st.CommittedValue(i); got != model.Word(i) {
				t.Errorf("n=%d: var %d = %d", n, i, got)
			}
		}
	}
}

// TestReadNeverWrittenVariable: all copies at timestamp 0 value 0.
func TestReadNeverWrittenVariable(t *testing.T) {
	p := memmap.LemmaTwo(64, 2, 1)
	eng := NewEngine(NewStore(memmap.Generate(p, 3)), NewCompleteBipartite(), 64)
	res := eng.ExecuteBatch([]Request{{Proc: 5, Var: 999}})
	if !res.Satisfied[0] || res.Values[0] != 0 {
		t.Errorf("virgin read: satisfied=%v value=%d", res.Satisfied[0], res.Values[0])
	}
}

// TestDuplicateVariableRequestsInOneBatch: two requests for the same var
// (as can happen if a caller skips deduplication) must both complete and
// agree.
func TestDuplicateVariableRequestsInOneBatch(t *testing.T) {
	p := memmap.LemmaTwo(64, 2, 1)
	st := NewStore(memmap.Generate(p, 3))
	eng := NewEngine(st, NewCompleteBipartite(), 64)
	st.LoadCell(7, 42)
	res := eng.ExecuteBatch([]Request{
		{Proc: 0, Var: 7},
		{Proc: 40, Var: 7},
	})
	if !res.Satisfied[0] || !res.Satisfied[1] {
		t.Fatal("duplicate reads unsatisfied")
	}
	if res.Values[0] != 42 || res.Values[1] != 42 {
		t.Errorf("duplicate reads disagree: %d vs %d", res.Values[0], res.Values[1])
	}
}

// TestInterleavedReadWriteBatches hammers the store with alternating
// batches and verifies against a plain map.
func TestInterleavedReadWriteBatches(t *testing.T) {
	const n, vars = 64, 256
	p := memmap.LemmaTwo(n, 2, 1)
	st := NewStore(memmap.Generate(p, 3))
	eng := NewEngine(st, NewCompleteBipartite(), n)
	ref := map[int]model.Word{}
	rng := rand.New(rand.NewSource(8))
	for round := 0; round < 30; round++ {
		var reqs []Request
		seen := map[int]bool{}
		for i := 0; i < n/2; i++ {
			v := rng.Intn(vars)
			if seen[v] {
				continue
			}
			seen[v] = true
			val := model.Word(rng.Intn(1 << 20))
			reqs = append(reqs, Request{Proc: rng.Intn(n), Var: v, Write: true, Value: val})
			ref[v] = val
		}
		if res := eng.ExecuteBatch(reqs); res.Stalled {
			t.Fatal("stalled")
		}
	}
	// Full read-back.
	for v, want := range ref {
		res := eng.ExecuteBatch([]Request{{Proc: v % n, Var: v}})
		if res.Values[0] != want {
			t.Fatalf("var %d = %d, want %d", v, res.Values[0], want)
		}
	}
}

// TestFreshCopiesInvariantUnderLoad: after every write batch, each written
// variable has at least c fresh copies — the quorum-intersection
// precondition — even under heavy interleaving.
func TestFreshCopiesInvariantUnderLoad(t *testing.T) {
	const n = 128
	p := memmap.LemmaTwo(n, 2, 1)
	st := NewStore(memmap.Generate(p, 5))
	eng := NewEngine(st, NewCompleteBipartite(), n)
	rng := rand.New(rand.NewSource(2))
	for round := 0; round < 10; round++ {
		var reqs []Request
		seen := map[int]bool{}
		for len(reqs) < n {
			v := rng.Intn(512)
			if seen[v] {
				continue
			}
			seen[v] = true
			reqs = append(reqs, Request{Proc: len(reqs), Var: v, Write: true, Value: 1})
		}
		eng.ExecuteBatch(reqs)
		for v := range seen {
			if fresh := st.FreshCopies(v); fresh < p.C {
				t.Fatalf("round %d: var %d has %d fresh copies < c=%d", round, v, fresh, p.C)
			}
		}
	}
}

// TestEngineOversizedRedundancyPanics guards the copy bitmask width.
func TestEngineOversizedRedundancyPanics(t *testing.T) {
	p := memmap.Params{N: 8, M: 512, Mem: 64, K: 2, Eps: 1, B: 4, C: 40} // r = 79 > 64
	mp := memmap.Generate(p, 1)
	eng := NewEngine(NewStore(mp), NewCompleteBipartite(), 8)
	defer func() {
		if recover() == nil {
			t.Error("r > 64 did not panic")
		}
	}()
	eng.ExecuteBatch([]Request{{Proc: 0, Var: 1, Write: true, Value: 1}})
}
