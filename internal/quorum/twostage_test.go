package quorum

import (
	"testing"

	"repro/internal/memmap"
	"repro/internal/model"
)

func TestTwoStageCompletesAndMatchesValues(t *testing.T) {
	const n = 256
	p := memmap.LemmaTwo(n, 2, 1)
	mp := memmap.Generate(p, 11)
	// Two engines over the SAME map: one plain, one two-stage; they must
	// agree on every read value.
	plainStore := NewStore(mp)
	tsStore := NewStore(mp)
	plain := NewEngine(plainStore, NewCompleteBipartite(), n)
	two := NewEngine(tsStore, NewCompleteBipartite(), n)

	writes := make([]Request, n)
	for i := range writes {
		writes[i] = Request{Proc: i, Var: i, Write: true, Value: model.Word(i * 5)}
	}
	pw := plain.ExecuteBatch(writes)
	tw := two.ExecuteBatchTwoStage(writes, TwoStageConfig{})
	if tw.Stalled {
		t.Fatal("two-stage stalled on a healthy map")
	}
	for i := range writes {
		if !pw.Satisfied[i] || !tw.Satisfied[i] {
			t.Fatalf("write %d unsatisfied (plain=%v two=%v)", i, pw.Satisfied[i], tw.Satisfied[i])
		}
	}
	reads := make([]Request, n)
	for i := range reads {
		reads[i] = Request{Proc: i, Var: (i + 7) % n}
	}
	pr := plain.ExecuteBatch(reads)
	tr := two.ExecuteBatchTwoStage(reads, TwoStageConfig{})
	for i := range reads {
		if pr.Values[i] != tr.Values[i] {
			t.Fatalf("read %d: plain %d vs two-stage %d", i, pr.Values[i], tr.Values[i])
		}
		want := model.Word(((i + 7) % n) * 5)
		if tr.Values[i] != want {
			t.Fatalf("read %d = %d, want %d", i, tr.Values[i], want)
		}
	}
}

func TestTwoStageEngagesStageTwoUnderTinyBudget(t *testing.T) {
	const n = 256
	p := memmap.LemmaTwo(n, 2, 1)
	eng := NewEngine(NewStore(memmap.Generate(p, 3)), NewCompleteBipartite(), n)
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Proc: i, Var: i, Write: true, Value: 1}
	}
	res := eng.ExecuteBatchTwoStage(reqs, TwoStageConfig{Stage1Phases: 2})
	if res.Stage1Phases != 2 {
		t.Errorf("stage 1 phases = %d, want 2", res.Stage1Phases)
	}
	if res.Stage2Phases == 0 {
		t.Error("stage 2 never engaged despite truncated stage 1")
	}
	if res.Stalled {
		t.Error("two-stage failed to drain")
	}
	for i, ok := range res.Satisfied {
		if !ok {
			t.Fatalf("request %d unsatisfied", i)
		}
	}
}

func TestTwoStageFinishesInStageOneWhenEasy(t *testing.T) {
	const n = 64
	p := memmap.LemmaTwo(n, 2, 1)
	eng := NewEngine(NewStore(memmap.Generate(p, 3)), NewCompleteBipartite(), n)
	reqs := []Request{{Proc: 0, Var: 1, Write: true, Value: 9}}
	res := eng.ExecuteBatchTwoStage(reqs, TwoStageConfig{})
	if res.Stage2Phases != 0 {
		t.Errorf("trivial batch reached stage 2 (%d phases)", res.Stage2Phases)
	}
	if !res.Satisfied[0] {
		t.Error("unsatisfied")
	}
}

func TestTwoStageRestoresBandwidth(t *testing.T) {
	const n = 128
	cb := NewCompleteBipartite()
	p := memmap.LemmaTwo(n, 2, 1)
	eng := NewEngine(NewStore(memmap.Generate(p, 3)), cb, n)
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Proc: i, Var: i, Write: true, Value: 1}
	}
	eng.ExecuteBatchTwoStage(reqs, TwoStageConfig{Stage1Phases: 1})
	if cb.Bandwidth != 1 {
		t.Errorf("bandwidth left at %d after stage 2", cb.Bandwidth)
	}
}

func TestTwoStageBudgetDefaults(t *testing.T) {
	ts := &TwoStageConfig{}
	// n=1024, r=7: passes = ceil(log2(ceil(log2 1024)+1))+2 = ceil(log2 11)+2 = 6;
	// budget = 42.
	if got := ts.stage1Budget(1024, 7); got != 42 {
		t.Errorf("stage1Budget = %d, want 42", got)
	}
	if got := ts.stage2Bandwidth(1024); got != 10 {
		t.Errorf("stage2Bandwidth = %d, want 10", got)
	}
	ts = &TwoStageConfig{Stage1Phases: 5, Stage2Bandwidth: 3}
	if ts.stage1Budget(1024, 7) != 5 || ts.stage2Bandwidth(1024) != 3 {
		t.Error("explicit overrides ignored")
	}
}
