package quorum

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// StallError reports that the protocol failed to drain a step's requests
// within the phase cap — the observable symptom of a memory map without the
// expansion property (or of a broken interconnect).
type StallError struct {
	Batch  string
	Phases int
	Live   int
}

// Error implements the error interface.
func (e *StallError) Error() string {
	return fmt.Sprintf("quorum protocol stalled: %s batch stopped after %d phases with %d live requests",
		e.Batch, e.Phases, e.Live)
}

// Machine adapts the quorum engine into a full model.Backend: it converts a
// P-RAM step into a deduplicated read batch followed by a write batch,
// preserving P-RAM semantics (reads see pre-step state; write conflicts
// resolved per Mode) while the engine charges phases/time.
//
// It is the shared chassis of the MPC baseline (Lemma 1 parameters) and the
// paper's DMMPC (Lemma 2 parameters); the 2DMOT machine plugs in a packet
// network as the Interconnect.
type Machine struct {
	name  string
	n     int
	mode  model.Mode
	store *Store
	eng   *Engine

	// twoStage, when non-nil, selects the faithful UW'87 two-stage
	// schedule for every batch (SetTwoStage).
	twoStage *TwoStageConfig
}

// NewMachine assembles a quorum-protocol backend.
func NewMachine(name string, n int, mode model.Mode, store *Store, net Interconnect) *Machine {
	return &Machine{
		name:  name,
		n:     n,
		mode:  mode,
		store: store,
		eng:   NewEngine(store, net, n),
	}
}

// Engine exposes the underlying engine (for tuning MaxPhases in tests).
func (m *Machine) Engine() *Engine { return m.eng }

// SetTwoStage switches the machine to the two-stage schedule (nil reverts
// to the plain round-robin loop).
func (m *Machine) SetTwoStage(cfg *TwoStageConfig) { m.twoStage = cfg }

// runBatch dispatches a deduplicated batch to the configured scheduler.
func (m *Machine) runBatch(reqs []Request) Result {
	if m.twoStage != nil {
		return m.eng.ExecuteBatchTwoStage(reqs, *m.twoStage)
	}
	return m.eng.ExecuteBatch(reqs)
}

// Store exposes the underlying copy store.
func (m *Machine) Store() *Store { return m.store }

// Name implements model.Backend.
func (m *Machine) Name() string { return m.name }

// MemSize implements model.Backend.
func (m *Machine) MemSize() int { return m.store.Map().Vars() }

// Procs implements model.Backend.
func (m *Machine) Procs() int { return m.n }

// Mode returns the conflict convention.
func (m *Machine) Mode() model.Mode { return m.mode }

// Params returns the memory-map parameter point the machine runs at.
func (m *Machine) Params() string { return m.store.Map().P.String() }

// Redundancy returns the copies-per-variable the machine pays.
func (m *Machine) Redundancy() int { return m.store.Map().R() }

// ExecuteStep implements model.Backend.
func (m *Machine) ExecuteStep(batch model.Batch) model.StepReport {
	rep := model.StepReport{Values: make(map[int]model.Word, batch.Reads())}
	rep.Err = model.CheckConflicts(batch, m.mode)

	// --- Read sub-step: dedup concurrent reads per variable. ---
	readersOf := make(map[model.Addr][]int)
	for _, r := range batch {
		if r.Op == model.OpRead {
			readersOf[r.Addr] = append(readersOf[r.Addr], r.Proc)
		}
	}
	readVars := sortedAddrs(readersOf)
	readReqs := make([]Request, len(readVars))
	for i, v := range readVars {
		procs := readersOf[v]
		sort.Ints(procs)
		readReqs[i] = Request{Proc: procs[0], Var: v}
	}
	rres := m.runBatch(readReqs)
	for i, v := range readVars {
		for _, p := range readersOf[v] {
			rep.Values[p] = rres.Values[i]
		}
	}

	// --- Write sub-step: resolve conflicting writers per Mode, dedup. ---
	winner := make(map[model.Addr]model.Request)
	for _, r := range batch {
		if r.Op != model.OpWrite {
			continue
		}
		prev, seen := winner[r.Addr]
		switch {
		case !seen:
			winner[r.Addr] = r
		case m.mode == model.CRCWArbitrary:
			if r.Proc > prev.Proc {
				winner[r.Addr] = r
			}
		default:
			if r.Proc < prev.Proc {
				winner[r.Addr] = r
			}
		}
	}
	writeVars := make([]int, 0, len(winner))
	for v := range winner {
		writeVars = append(writeVars, v)
	}
	sort.Ints(writeVars)
	writeReqs := make([]Request, len(writeVars))
	for i, v := range writeVars {
		w := winner[v]
		writeReqs[i] = Request{Proc: w.Proc, Var: v, Write: true, Value: w.Value}
	}
	wres := m.runBatch(writeReqs)

	// --- Assemble the report. ---
	rep.Time = rres.Time + wres.Time
	rep.Phases = rres.Phases + wres.Phases
	rep.CopyAccesses = rres.CopyAccesses + wres.CopyAccesses
	if ct, ok := m.eng.net.(CycleTimed); ok && ct.TimeInCycles() {
		rep.NetworkCycles = rep.Time
	}
	rep.ModuleContention = rres.MaxModuleLoad
	if wres.MaxModuleLoad > rep.ModuleContention {
		rep.ModuleContention = wres.MaxModuleLoad
	}
	if rres.Stalled && rep.Err == nil {
		rep.Err = &StallError{Batch: "read", Phases: rres.Phases, Live: lastLive(rres)}
	}
	if wres.Stalled && rep.Err == nil {
		rep.Err = &StallError{Batch: "write", Phases: wres.Phases, Live: lastLive(wres)}
	}
	return rep
}

// ReadCell implements model.Backend.
func (m *Machine) ReadCell(a model.Addr) model.Word { return m.store.CommittedValue(a) }

// LoadCells implements model.Backend.
func (m *Machine) LoadCells(base model.Addr, vals []model.Word) {
	for i, v := range vals {
		m.store.LoadCell(base+i, v)
	}
}

func sortedAddrs(set map[model.Addr][]int) []int {
	out := make([]int, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

func lastLive(r Result) int {
	if len(r.LiveTrace) == 0 {
		return 0
	}
	return r.LiveTrace[len(r.LiveTrace)-1]
}
