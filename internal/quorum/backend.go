package quorum

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/model"
)

// StallError reports that the protocol failed to drain a step's requests
// within the phase cap — the observable symptom of a memory map without the
// expansion property (or of a broken interconnect).
type StallError struct {
	Batch  string
	Phases int
	Live   int
}

// Error implements the error interface.
func (e *StallError) Error() string {
	return fmt.Sprintf("quorum protocol stalled: %s batch stopped after %d phases with %d live requests",
		e.Batch, e.Phases, e.Live)
}

// Machine adapts the quorum engine into a full model.Backend: it converts a
// P-RAM step into a deduplicated read batch followed by a write batch,
// preserving P-RAM semantics (reads see pre-step state; write conflicts
// resolved per Mode) while the engine charges phases/time.
//
// It is the shared chassis of the MPC baseline (Lemma 1 parameters) and the
// paper's DMMPC (Lemma 2 parameters); the 2DMOT machine plugs in a packet
// network as the Interconnect.
//
// ExecuteStep is allocation-free in steady state: concurrent accesses are
// deduplicated by sorting a reusable record slice (grouped by address)
// instead of building per-step maps, and the StepReport's Values slice is a
// dense per-processor buffer reused across steps.
//
// A Machine is single-threaded, but several Machines may share one Store:
// the Pool runs one Machine per workload shard concurrently under the
// store's shard-ownership invariant (see the package doc), scheduling
// machines whose steps touch overlapping module sets onto one goroutine.
type Machine struct {
	name  string
	n     int
	mode  model.Mode
	store *Store
	eng   *Engine

	// twoStage, when non-nil, selects the faithful UW'87 two-stage
	// schedule for every batch (SetTwoStage).
	twoStage *TwoStageConfig

	// sink, when non-nil, observes every executed step's post-dedup
	// batches under lane id `lane` (SetStepSink; the trace record/replay
	// hook).
	sink StepSink
	lane int

	// Read-leg breakdown of the most recent ExecuteStep, captured before
	// the write batch clobbers the engine's shared result buffers: the
	// retrieval leg's time and phase count plus the step's live-request
	// area (Σ live counts over both legs' phase traces). Free accessors
	// (LastStepBreakdown) in the LastDedupRequests mold; the serving
	// lane's span recorder reads them instead of attaching a StepSink.
	lastReadTime   int64
	lastReadPhases int
	lastLiveArea   int64

	sc stepScratch
}

// stepScratch holds the Machine's reusable per-step buffers.
type stepScratch struct {
	recs      []model.ConflictRec
	recsTmp   []model.ConflictRec // radix sort ping-pong buffer
	readReqs  []Request
	readStart []int32 // per read request: start of its reader run in recs
	readEnd   []int32 // per read request: end of its reader run in recs
	writeReqs []Request
	values    []model.Word // dense per-proc read values (the StepReport.Values buffer)

	// Reader fan-out lists for the step sink (buildReaderLists); only
	// recording runs populate them.
	readerOff   []int32
	readerProcs []int32
}

// NewMachine assembles a quorum-protocol backend.
func NewMachine(name string, n int, mode model.Mode, store *Store, net Interconnect) *Machine {
	return &Machine{
		name:  name,
		n:     n,
		mode:  mode,
		store: store,
		eng:   NewEngine(store, net, n),
	}
}

// Engine exposes the underlying engine (for tuning MaxPhases in tests).
func (m *Machine) Engine() *Engine { return m.eng }

// ParallelismSetter is implemented by interconnects whose phase routing
// can spread across OS cores (the 2DMOT packet network advances disjoint
// tree-connectivity components on a worker pool). Implementations must
// keep grants, times and loads bit-for-bit identical to their serial
// routing — the knob trades wall-clock only, never determinism.
type ParallelismSetter interface {
	// SetParallelism selects the worker count: 1 forces serial routing,
	// > 1 uses that many workers, < 0 all of GOMAXPROCS, and 0 the
	// implementation default.
	SetParallelism(workers int)
}

// SetParallelism forwards the multi-core routing knob to the machine's
// interconnect and reports whether it supports one. Interconnects that are
// already cheap per phase (the ideal complete bipartite graph) ignore the
// knob and keep their single-threaded routing.
func (m *Machine) SetParallelism(workers int) bool {
	ps, ok := m.eng.net.(ParallelismSetter)
	if ok {
		ps.SetParallelism(workers)
	}
	return ok
}

// SetTwoStage switches the machine to the two-stage schedule (nil reverts
// to the plain round-robin loop).
func (m *Machine) SetTwoStage(cfg *TwoStageConfig) { m.twoStage = cfg }

// runBatch dispatches a deduplicated batch to the configured scheduler.
func (m *Machine) runBatch(reqs []Request) Result {
	if m.twoStage != nil {
		return m.eng.ExecuteBatchTwoStage(reqs, *m.twoStage)
	}
	return m.eng.ExecuteBatch(reqs)
}

// Store exposes the underlying copy store.
func (m *Machine) Store() *Store { return m.store }

// Name implements model.Backend.
func (m *Machine) Name() string { return m.name }

// MemSize implements model.Backend.
func (m *Machine) MemSize() int { return m.store.Map().Vars() }

// Procs implements model.Backend.
func (m *Machine) Procs() int { return m.n }

// Mode returns the conflict convention.
func (m *Machine) Mode() model.Mode { return m.mode }

// Params returns the memory-map parameter point the machine runs at.
func (m *Machine) Params() string { return m.store.Map().P.String() }

// Redundancy returns the copies-per-variable the machine pays.
func (m *Machine) Redundancy() int { return m.store.Map().R() }

// ExecuteStep implements model.Backend.
//
//pram:hotpath
func (m *Machine) ExecuteStep(batch model.Batch) model.StepReport {
	sc := &m.sc

	// Flatten the step's active requests and sort them by address, reads
	// before writes within a group, ascending processor ids within each
	// run — one sort replaces the per-step readersOf/winner maps AND feeds
	// the conflict check (which only needs address grouping).
	recs := sc.recs[:0]
	maxProc := m.n - 1
	maxAddr := model.Addr(0)
	radixable := true // ascending procs, non-negative addresses
	prevProc := -1
	for _, r := range batch {
		if r.Op == model.OpNone {
			continue
		}
		recs = append(recs, model.ConflictRec{Addr: r.Addr, Proc: r.Proc, Val: r.Value, Write: r.Op == model.OpWrite})
		if r.Proc > maxProc {
			maxProc = r.Proc
		}
		if r.Proc <= prevProc || r.Addr < 0 {
			radixable = false
		}
		prevProc = r.Proc
		if r.Addr > maxAddr {
			maxAddr = r.Addr
		}
	}
	if radixable {
		// Batches list requests in ascending processor order (Batch is
		// indexed by processor), so a stable radix pass on (Addr, Write)
		// produces the full (Addr, Write, Proc) order ~4x cheaper than the
		// comparison sort — the dedup pass was the largest remaining step
		// cost at n ≥ 1024.
		sc.recsTmp = grow(sc.recsTmp, len(recs))
		recs, sc.recsTmp = model.RadixSortConflictRecs(recs, sc.recsTmp[:len(recs)], maxAddr)
	} else {
		// Rare path: direct callers with out-of-order processors.
		slices.SortFunc(recs, func(a, b model.ConflictRec) int {
			if a.Addr != b.Addr {
				return cmp.Compare(a.Addr, b.Addr)
			}
			if a.Write != b.Write {
				if a.Write {
					return 1
				}
				return -1
			}
			return cmp.Compare(a.Proc, b.Proc)
		})
	}
	sc.recs = recs

	var rep model.StepReport
	rep.Err = model.CheckSortedRecords(recs, m.mode)

	sc.values = grow(sc.values, maxProc+1)
	values := sc.values
	clear(values)
	rep.Values = values

	// One walk over the address groups builds both deduplicated batches:
	// per address, the readers [i,k) get one read request owned by the
	// lowest-processor reader, and the writers [k,j) resolve to one write
	// request per Mode — Priority (and the EREW/CREW/common fallback)
	// takes the first (lowest-proc) writer, Arbitrary the last.
	readReqs := sc.readReqs[:0]
	readStart := sc.readStart[:0]
	readEnd := sc.readEnd[:0]
	writeReqs := sc.writeReqs[:0]
	for i := 0; i < len(recs); {
		j := i
		for j < len(recs) && recs[j].Addr == recs[i].Addr {
			j++
		}
		k := i
		for k < j && !recs[k].Write {
			k++
		}
		if k > i {
			readReqs = append(readReqs, Request{Proc: recs[i].Proc, Var: recs[i].Addr})
			readStart = append(readStart, int32(i))
			readEnd = append(readEnd, int32(k))
		}
		if k < j {
			w := recs[k]
			if m.mode == model.CRCWArbitrary {
				w = recs[j-1]
			}
			writeReqs = append(writeReqs, Request{Proc: w.Proc, Var: w.Addr, Write: true, Value: w.Val})
		}
		i = j
	}
	sc.readReqs = readReqs
	sc.readStart = readStart
	sc.readEnd = readEnd
	sc.writeReqs = writeReqs

	rres := m.runBatch(readReqs)
	// Fan the per-address values out to every reader NOW: the write batch
	// below reuses the engine's result buffers.
	for g := range readReqs {
		v := rres.Values[g]
		for k := readStart[g]; k < readEnd[g]; k++ {
			values[recs[k].Proc] = v
		}
	}
	readLastLive := lastLive(rres)
	m.lastReadTime = rres.Time
	m.lastReadPhases = rres.Phases
	area := int64(0)
	for _, l := range rres.LiveTrace {
		area += int64(l)
	}

	wres := m.runBatch(writeReqs)
	for _, l := range wres.LiveTrace {
		area += int64(l)
	}
	m.lastLiveArea = area
	rep = m.assembleReport(rep, rres, wres, readLastLive)

	if m.sink != nil {
		off, procs := m.buildReaderLists()
		m.sink.RecordStep(m.lane, readReqs, off, procs, writeReqs, rep)
	}
	return rep
}

// LastDedupRequests reports the post-dedup batch size — deduplicated read
// plus write requests — of the most recent ExecuteStep. The sizes live in
// the machine's scratch arena, so exposing them is free; the serving lane's
// dedup-batch-size histogram observes this instead of attaching a StepSink
// (which would make every step pay for reader-list materialization).
// ExecuteDedupStep (the replay entry point) does not update it.
func (m *Machine) LastDedupRequests() int {
	return len(m.sc.readReqs) + len(m.sc.writeReqs)
}

// LastStepBreakdown reports the most recent ExecuteStep's per-leg split:
// the retrieval (read-quorum) leg's simulated time and phase count, and
// the step's live-request area — the integral of the engine's LiveTrace
// decay curve over both legs' phases. The values are captured into
// machine scratch before the write batch reuses the engine's result
// buffers, so exposing them is free; the commit leg's time is the step
// report's Time minus readTime. ExecuteDedupStep (the replay entry
// point) does not update it.
func (m *Machine) LastStepBreakdown() (readTime int64, readPhases int, liveArea int64) {
	return m.lastReadTime, m.lastReadPhases, m.lastLiveArea
}

// Interconnect exposes the machine's fabric. The serving lane's span
// recorder type-asserts it to read cycle/hop counter deltas off
// cycle-timed networks; tuning knobs stay on Engine.
func (m *Machine) Interconnect() Interconnect { return m.eng.net }

// assembleReport fills the cost and error fields of a step report from the
// read- and write-batch results. Only the scalar fields of rres are read
// (its slices were clobbered by the write batch's run); readLastLive is the
// read batch's final live count, saved before the clobber.
func (m *Machine) assembleReport(rep model.StepReport, rres, wres Result, readLastLive int) model.StepReport {
	rep.Time = rres.Time + wres.Time
	rep.Phases = rres.Phases + wres.Phases
	rep.CopyAccesses = rres.CopyAccesses + wres.CopyAccesses
	if ct, ok := m.eng.net.(CycleTimed); ok && ct.TimeInCycles() {
		rep.NetworkCycles = rep.Time
	}
	rep.ModuleContention = rres.MaxModuleLoad
	if wres.MaxModuleLoad > rep.ModuleContention {
		rep.ModuleContention = wres.MaxModuleLoad
	}
	if rres.Stalled && rep.Err == nil {
		rep.Err = &StallError{Batch: "read", Phases: rres.Phases, Live: readLastLive}
	}
	if wres.Stalled && rep.Err == nil {
		rep.Err = &StallError{Batch: "write", Phases: wres.Phases, Live: lastLive(wres)}
	}
	return rep
}

// ReadCell implements model.Backend.
func (m *Machine) ReadCell(a model.Addr) model.Word { return m.store.CommittedValue(a) }

// LoadCells implements model.Backend.
func (m *Machine) LoadCells(base model.Addr, vals []model.Word) {
	for i, v := range vals {
		m.store.LoadCell(base+i, v)
	}
	if m.sink != nil {
		m.sink.RecordLoad(m.lane, base, vals)
	}
}

func lastLive(r Result) int {
	if len(r.LiveTrace) == 0 {
		return 0
	}
	return r.LiveTrace[len(r.LiveTrace)-1]
}
