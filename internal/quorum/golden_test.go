package quorum

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/memmap"
	"repro/internal/model"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// goldenResult is the engine-observable outcome of one batch.
type goldenResult struct {
	Phases        int          `json:"phases"`
	Time          int64        `json:"time"`
	CopyAccesses  int64        `json:"copyAccesses"`
	MaxModuleLoad int          `json:"maxModuleLoad"`
	LiveTrace     []int        `json:"liveTrace"`
	Values        []model.Word `json:"values"`
	Satisfied     []bool       `json:"satisfied"`
	Stalled       bool         `json:"stalled"`
	Stage1Phases  int          `json:"stage1Phases"`
	Stage2Phases  int          `json:"stage2Phases"`
}

func snapResult(r Result) goldenResult {
	g := goldenResult{
		Phases:        r.Phases,
		Time:          r.Time,
		CopyAccesses:  r.CopyAccesses,
		MaxModuleLoad: r.MaxModuleLoad,
		Stalled:       r.Stalled,
		Stage1Phases:  r.Stage1Phases,
		Stage2Phases:  r.Stage2Phases,
	}
	g.LiveTrace = append([]int{}, r.LiveTrace...)
	g.Values = append([]model.Word{}, r.Values...)
	g.Satisfied = append([]bool{}, r.Satisfied...)
	return g
}

// engineScenario runs a deterministic write-then-read workload through the
// engine over the complete bipartite interconnect and records every Result.
func engineScenario(n int, twoStage bool, seed int64) []goldenResult {
	p := memmap.LemmaTwo(n, 2, 1)
	st := NewStore(memmap.Generate(p, seed))
	eng := NewEngine(st, NewCompleteBipartite(), n)
	rng := rand.New(rand.NewSource(seed * 31))
	var out []goldenResult
	run := func(reqs []Request) Result {
		if twoStage {
			return eng.ExecuteBatchTwoStage(reqs, TwoStageConfig{})
		}
		return eng.ExecuteBatch(reqs)
	}
	for round := 0; round < 4; round++ {
		k := 1 + rng.Intn(n)
		writes := make([]Request, 0, k)
		seen := map[int]bool{}
		for i := 0; i < k; i++ {
			v := rng.Intn(p.M / 4)
			if seen[v] {
				continue
			}
			seen[v] = true
			writes = append(writes, Request{
				Proc:  rng.Intn(n),
				Var:   v,
				Write: true,
				Value: rng.Int63n(1 << 30),
			})
		}
		out = append(out, snapResult(run(writes)))
		reads := make([]Request, len(writes))
		for i, w := range writes {
			reads[i] = Request{Proc: w.Proc, Var: w.Var}
		}
		out = append(out, snapResult(run(reads)))
	}
	return out
}

// TestGoldenEngineBatches locks ExecuteBatch and ExecuteBatchTwoStage to the
// recorded phase counts, times, live traces, values and satisfied bits of
// the reference implementation.
func TestGoldenEngineBatches(t *testing.T) {
	got := map[string][]goldenResult{}
	for _, twoStage := range []bool{false, true} {
		for _, seed := range []int64{1, 7, 42} {
			name := fmt.Sprintf("twostage=%v/seed=%d", twoStage, seed)
			got[name] = engineScenario(64, twoStage, seed)
		}
	}
	path := filepath.Join("testdata", "golden_engine.json")
	if *updateGolden {
		writeGolden(t, path, got)
		return
	}
	var want map[string][]goldenResult
	readGolden(t, path, &want)
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("scenario %s missing", name)
			continue
		}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("scenario %s diverged from golden trace", name)
		}
	}
	if len(got) != len(want) {
		t.Errorf("scenario count %d != golden %d", len(got), len(want))
	}
}

func writeGolden(t *testing.T, path string, v any) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}

func readGolden(t *testing.T, path string, v any) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatal(err)
	}
}
