// Differential coverage for UNEVEN shard sizes: the serving front end
// multiplexes tenants with different simulated P-RAM sizes onto one pool,
// so a round's batches can name different processor-id prefixes per lane —
// including empty (idle) lanes. The equal-sized-shard matrix in
// pool_differential_test.go never exercises that shape; these tests pin it
// to the same serial shard-order reference, with the same bit-for-bit
// contract, across worker counts and traffic mixes.
package quorum_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/quorum"
)

// unevenBatch draws one shard's step over only the first `active`
// processors (the uneven-tenant shape: active varies per shard), mixing
// band-local and cross-band traffic like shardBatch.
func unevenBatch(rng *rand.Rand, h *poolHarness, shard, active int, crossProb float64) model.Batch {
	k := h.pool.Engines()
	lo, hi := memmap.BandRange(shard, h.mem, k)
	b := model.NewBatch(active)
	for i := 0; i < active; i++ {
		addr := lo + rng.Intn(hi-lo)
		if rng.Float64() < crossProb {
			addr = rng.Intn(h.mem)
		}
		switch rng.Intn(3) {
		case 0:
			b[i] = model.Request{Proc: i, Op: model.OpRead, Addr: addr}
		case 1:
			b[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: addr, Value: model.Word(rng.Int63n(1 << 20))}
		default:
			b[i] = model.Request{Proc: i, Op: model.OpNone}
		}
	}
	return b
}

// TestDifferentialPoolUnevenShards drives lanes of widths n, n/2, n/4, …
// and one permanently idle lane through the pool and its serial reference.
func TestDifferentialPoolUnevenShards(t *testing.T) {
	const K, nPer = 4, 16
	newCB := func(int) quorum.Interconnect { return quorum.NewCompleteBipartite() }
	// Lane widths 16, 8, 4, 0: lane 3 is an always-empty (idle) shard.
	widths := [K]int{nPer, nPer / 2, nPer / 4, 0}
	for _, workers := range []int{1, 4} {
		for _, cross := range []float64{0, 0.3} {
			t.Run(fmt.Sprintf("w=%d/cross=%.1f", workers, cross), func(t *testing.T) {
				p := memmap.LemmaTwo(nPer*K, 2, 1)
				for seed := int64(1); seed <= 3; seed++ {
					mp := memmap.GenerateBanded(p, seed*13, K)
					h := newPoolHarness(mp, K, nPer, workers, model.CRCWPriority, newCB, nil)
					rng := rand.New(rand.NewSource(seed * 577))
					batches := make([]model.Batch, K)
					var refAgg model.StepReport
					for s := 0; s < 6; s++ {
						for sh := range batches {
							batches[sh] = unevenBatch(rng, h, sh, widths[sh], cross)
						}
						agg, shardReps := h.pool.ExecuteSteps(batches)
						for sh := 0; sh < K; sh++ {
							h.refR[sh] = h.ref[sh].ExecuteStep(batches[sh])
						}
						for sh := 0; sh < K; sh++ {
							if fp, fr := stepFingerprint(shardReps[sh]), stepFingerprint(h.refR[sh]); fp != fr {
								t.Fatalf("step %d shard %d diverged:\n pool %s\n ref  %s", s, sh, fp, fr)
							}
						}
						model.MergeStepReports(&refAgg, h.refR, h.pool.ShardProcs())
						if fa, fr := stepFingerprint(agg), stepFingerprint(refAgg); fa != fr {
							t.Fatalf("step %d aggregate diverged:\n pool %s\n ref  %s", s, fa, fr)
						}
						if got := h.pool.LastActive(); got > 3 {
							t.Fatalf("step %d: LastActive=%d with a permanently idle lane", s, got)
						}
					}
					if hp, hr := h.pool.Store().Fingerprint(), h.ref[0].Store().Fingerprint(); hp != hr {
						t.Fatalf("store images diverged: pool %x, ref %x", hp, hr)
					}
				}
			})
		}
	}
}

// TestPoolLastActiveCensus pins the occupancy hook: LastActive counts
// exactly the lanes that carried non-idle requests, and idle lanes stay
// singleton components (no forced merges from idleness).
func TestPoolLastActiveCensus(t *testing.T) {
	const K, nPer = 4, 8
	p := memmap.LemmaTwo(nPer*K, 2, 1)
	mp := memmap.GenerateBanded(p, 3, K)
	pool := quorum.NewPool("census", quorum.NewStore(mp),
		func(int) quorum.Interconnect { return quorum.NewCompleteBipartite() },
		quorum.PoolConfig{Engines: K, Procs: nPer, Mode: model.CRCWPriority, Workers: 1})
	batches := make([]model.Batch, K)
	for active := 0; active <= K; active++ {
		for sh := 0; sh < K; sh++ {
			if sh < active {
				lo, _ := memmap.BandRange(sh, p.Mem, K)
				b := model.NewBatch(nPer)
				b[0] = model.Request{Proc: 0, Op: model.OpRead, Addr: lo}
				batches[sh] = b
			} else {
				batches[sh] = nil // idle lane
			}
		}
		pool.ExecuteSteps(batches)
		if got := pool.LastActive(); got != active {
			t.Errorf("LastActive = %d, want %d", got, active)
		}
		if got := pool.LastComponents(); got != K {
			t.Errorf("active=%d: LastComponents = %d, want %d (disjoint bands + idle singletons)", active, got, K)
		}
	}
	// Close retires the worker set and stays reusable + idempotent.
	pool.Close()
	pool.Close()
	if agg, _ := pool.ExecuteSteps(batches); agg.Err != nil {
		t.Fatalf("ExecuteSteps after Close: %v", agg.Err)
	}
}
