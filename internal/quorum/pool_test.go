package quorum

import (
	"runtime"
	"testing"

	"repro/internal/memmap"
	"repro/internal/model"
)

// bandedPoolSetup builds a K-engine pool over a banded map: shard k's
// variable band maps only into shard k's module band, so shards touching
// their own bands form K disjoint components by construction.
func bandedPoolSetup(t testing.TB, nPerShard, k int, workers int) *Pool {
	t.Helper()
	p := memmap.LemmaTwo(nPerShard*k, 2, 1)
	mp := memmap.GenerateBanded(p, 11, k)
	return NewPool("pool-test", NewStore(mp),
		func(int) Interconnect { return NewCompleteBipartite() },
		PoolConfig{Engines: k, Procs: nPerShard, Mode: model.CRCWPriority, Workers: workers})
}

// bandBatch builds a step in which every processor of shard k reads or
// writes inside shard k's own variable band.
func bandBatch(pl *Pool, shard, round int) model.Batch {
	mem := pl.Store().Map().Vars()
	lo, hi := memmap.BandRange(shard, mem, pl.Engines())
	n := pl.ShardProcs()
	b := model.NewBatch(n)
	for i := 0; i < n; i++ {
		addr := lo + (i*7+round)%(hi-lo)
		if (i+round)%2 == 0 {
			b[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: addr, Value: model.Word(100*shard + i + round)}
		} else {
			b[i] = model.Request{Proc: i, Op: model.OpRead, Addr: addr}
		}
	}
	return b
}

// TestPoolDisjointBandsFullParallelism: band-local traffic on a banded map
// partitions into exactly K components, and committed memory matches the
// per-shard writes.
func TestPoolDisjointBandsFullParallelism(t *testing.T) {
	const nPer, K = 32, 4
	pl := bandedPoolSetup(t, nPer, K, -1)
	batches := make([]model.Batch, K)
	for round := 0; round < 3; round++ {
		for k := range batches {
			batches[k] = bandBatch(pl, k, round)
		}
		agg, shards := pl.ExecuteSteps(batches)
		if pl.LastComponents() != K {
			t.Fatalf("round %d: %d components, want %d (disjoint bands)", round, pl.LastComponents(), K)
		}
		if agg.Err != nil {
			t.Fatalf("round %d: aggregate error %v", round, agg.Err)
		}
		if len(shards) != K {
			t.Fatalf("got %d shard reports, want %d", len(shards), K)
		}
		// Writes of this round are visible in committed memory.
		for k := range batches {
			for _, rq := range batches[k] {
				if rq.Op == model.OpWrite {
					if got := pl.Store().CommittedValue(rq.Addr); got != rq.Value {
						t.Fatalf("round %d shard %d: committed[%d] = %d, want %d",
							round, k, rq.Addr, got, rq.Value)
					}
				}
			}
		}
	}
}

// TestPoolContentionMergesComponents: shards that touch a common variable
// share that variable's modules and must be merged into one component.
func TestPoolContentionMergesComponents(t *testing.T) {
	const nPer, K = 8, 4
	pl := bandedPoolSetup(t, nPer, K, -1)
	batches := make([]model.Batch, K)
	for k := range batches {
		b := model.NewBatch(nPer)
		b[0] = model.Request{Proc: 0, Op: model.OpRead, Addr: 0} // same var everywhere
		batches[k] = b
	}
	pl.ExecuteSteps(batches)
	if pl.LastComponents() != 1 {
		t.Fatalf("%d components, want 1 (all shards share variable 0)", pl.LastComponents())
	}
}

// TestPoolAggregateReport: aggregate semantics over shards — makespan
// fields take maxima, work sums, Values land at shard offsets.
func TestPoolAggregateReport(t *testing.T) {
	const nPer, K = 16, 2
	pl := bandedPoolSetup(t, nPer, K, 1)
	// Shard writes, then shard reads; check values at global offsets.
	writes := make([]model.Batch, K)
	for k := range writes {
		writes[k] = bandBatch(pl, k, 0)
	}
	_, shardReps := pl.ExecuteSteps(writes)
	reads := make([]model.Batch, K)
	for k := range reads {
		b := model.NewBatch(nPer)
		for i := 0; i < nPer; i++ {
			b[i] = model.Request{Proc: i, Op: model.OpRead, Addr: writes[k][0].Addr}
		}
		reads[k] = b
	}
	agg, shardReps2 := pl.ExecuteSteps(reads)
	shardReps = shardReps2
	if len(agg.Values) != K*nPer {
		t.Fatalf("aggregate Values len %d, want %d", len(agg.Values), K*nPer)
	}
	var wantCopies int64
	for k := 0; k < K; k++ {
		if shardReps[k].Phases > agg.Phases || shardReps[k].Time > agg.Time {
			t.Errorf("aggregate makespan below shard %d: agg %+v shard %+v", k, agg, shardReps[k])
		}
		wantCopies += shardReps[k].CopyAccesses
		want := writes[k][0].Value
		for i := 0; i < nPer; i++ {
			if agg.Values[k*nPer+i] != want {
				t.Fatalf("agg.Values[%d] = %d, want %d", k*nPer+i, agg.Values[k*nPer+i], want)
			}
		}
	}
	if agg.CopyAccesses != wantCopies {
		t.Errorf("aggregate CopyAccesses = %d, want summed %d", agg.CopyAccesses, wantCopies)
	}
}

// TestPoolWorkersResolution pins the Workers encoding.
func TestPoolWorkersResolution(t *testing.T) {
	maxp := runtime.GOMAXPROCS(0)
	cases := []struct{ w, k, want int }{
		{1, 8, 1},
		{3, 8, 3},
		{100, 8, 8}, // clamped to K
		{0, 2, min(2, maxp)},
		{-1, 64, min(64, maxp)},
	}
	for _, c := range cases {
		if got := resolveWorkers(c.w, c.k); got != c.want {
			t.Errorf("resolveWorkers(%d, %d) = %d, want %d", c.w, c.k, got, c.want)
		}
	}
}

// TestResolveEnginesEnv pins the PRAMSIM_ENGINES encoding, including the
// loud failure on malformed values — a typo'd knob must never silently
// collapse a CI equivalence run to one engine.
func TestResolveEnginesEnv(t *testing.T) {
	set := func(v string) {
		t.Setenv("PRAMSIM_ENGINES", v)
	}
	set("")
	if got := ResolveEngines(0); got != 1 {
		t.Errorf("empty env: engines = %d, want 1", got)
	}
	set("off")
	if got := ResolveEngines(0); got != 1 {
		t.Errorf("off: engines = %d, want 1", got)
	}
	set("6")
	if got := ResolveEngines(0); got != 6 {
		t.Errorf("6: engines = %d, want 6", got)
	}
	set("max")
	if got := ResolveEngines(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("max: engines = %d, want GOMAXPROCS", got)
	}
	// Explicit counts bypass the env entirely.
	set("banana")
	if got := ResolveEngines(3); got != 3 {
		t.Errorf("explicit 3: engines = %d, want 3", got)
	}
	for _, bad := range []string{"four", "-2", "1.5", "2x"} {
		set(bad)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PRAMSIM_ENGINES=%q did not fail loudly", bad)
				}
			}()
			ResolveEngines(0)
		}()
	}
}

// TestPoolBatchCountMismatch: feeding the wrong number of shard batches is
// a programming error and must not be silently truncated.
func TestPoolBatchCountMismatch(t *testing.T) {
	pl := bandedPoolSetup(t, 8, 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("ExecuteSteps accepted a mismatched batch count")
		}
	}()
	pl.ExecuteSteps(make([]model.Batch, 3))
}
