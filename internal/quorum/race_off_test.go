//go:build !race

package quorum

// raceEnabled reports that the race detector is active.
const raceEnabled = false
