package quorum

import (
	"testing"

	"repro/internal/memmap"
	"repro/internal/model"
)

// allocSetup builds an engine plus canonical read and write batches.
func allocSetup(n int) (*Engine, []Request, []Request) {
	p := memmap.LemmaTwo(n, 2, 1)
	st := NewStore(memmap.Generate(p, 11))
	eng := NewEngine(st, NewCompleteBipartite(), n)
	writes := make([]Request, n)
	reads := make([]Request, n)
	for i := range writes {
		writes[i] = Request{Proc: i, Var: i, Write: true, Value: model.Word(i)}
		reads[i] = Request{Proc: i, Var: i}
	}
	return eng, reads, writes
}

// TestExecuteBatchZeroAllocs locks the engine's steady-state zero-allocation
// invariant: once the scratch arena has grown to the batch shape, neither
// read nor write batches touch the heap.
func TestExecuteBatchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation invariants are measured without the race detector")
	}
	eng, reads, writes := allocSetup(256)
	for i := 0; i < 3; i++ { // grow the arena
		eng.ExecuteBatch(writes)
		eng.ExecuteBatch(reads)
	}
	if avg := testing.AllocsPerRun(20, func() {
		if eng.ExecuteBatch(writes).Stalled {
			t.Fatal("stalled")
		}
	}); avg != 0 {
		t.Errorf("ExecuteBatch(writes) allocates %.1f/op in steady state, want 0", avg)
	}
	if avg := testing.AllocsPerRun(20, func() {
		if eng.ExecuteBatch(reads).Stalled {
			t.Fatal("stalled")
		}
	}); avg != 0 {
		t.Errorf("ExecuteBatch(reads) allocates %.1f/op in steady state, want 0", avg)
	}
}

// TestExecuteBatchTwoStageZeroAllocs extends the invariant to the two-stage
// schedule, which exercises the arena's secondary result buffers.
func TestExecuteBatchTwoStageZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation invariants are measured without the race detector")
	}
	eng, reads, writes := allocSetup(256)
	cfg := TwoStageConfig{}
	for i := 0; i < 3; i++ {
		eng.ExecuteBatchTwoStage(writes, cfg)
		eng.ExecuteBatchTwoStage(reads, cfg)
	}
	if avg := testing.AllocsPerRun(20, func() {
		if r := eng.ExecuteBatchTwoStage(writes, cfg); r.Stalled {
			t.Fatal("stalled")
		}
	}); avg != 0 {
		t.Errorf("ExecuteBatchTwoStage allocates %.1f/op in steady state, want 0", avg)
	}
}

// TestExecuteStepZeroAllocs locks the whole backend step pipeline — conflict
// check, sorted dedup, engine, interconnect, report — at zero steady-state
// allocations under CRCW-Priority.
func TestExecuteStepZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation invariants are measured without the race detector")
	}
	const n = 256
	p := memmap.LemmaTwo(n, 2, 1)
	st := NewStore(memmap.Generate(p, 11))
	m := NewMachine("alloc-test", n, model.CRCWPriority, st, NewCompleteBipartite())
	batch := model.NewBatch(n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			batch[i] = model.Request{Proc: i, Op: model.OpRead, Addr: (i * 7) % n}
		} else {
			batch[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: (i * 3) % n, Value: model.Word(i)}
		}
	}
	for i := 0; i < 3; i++ {
		m.ExecuteStep(batch)
	}
	if avg := testing.AllocsPerRun(20, func() {
		if rep := m.ExecuteStep(batch); rep.Err != nil {
			t.Fatal(rep.Err)
		}
	}); avg != 0 {
		t.Errorf("ExecuteStep allocates %.1f/op in steady state, want 0", avg)
	}
}
