package stats

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("n", "phases", "ratio")
	tb.AddRow(64, 12, 1.5)
	tb.AddRow(1024, 20, 2.0)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4 (header, rule, 2 rows)", len(lines))
	}
	if !strings.HasPrefix(lines[0], "n") || !strings.Contains(lines[0], "phases") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[3], "1024") {
		t.Errorf("row wrong: %q", lines[3])
	}
	if tb.Len() != 2 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 || s.N != 5 {
		t.Errorf("summary wrong: %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Errorf("stddev = %v", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Min != 0 || s.Mean != 0 {
		t.Errorf("empty summary wrong: %+v", s)
	}
}

func TestFitExactShape(t *testing.T) {
	ns := []float64{64, 256, 1024, 4096}
	ys := make([]float64, len(ns))
	for i, n := range ns {
		ys[i] = 2.5 * math.Log2(n)
	}
	f := Fit(ns, ys, GrowthLog)
	if math.Abs(f.Spread-1) > 1e-9 {
		t.Errorf("exact log series: spread = %v, want 1", f.Spread)
	}
	if math.Abs(f.LoC-2.5) > 1e-9 {
		t.Errorf("constant = %v, want 2.5", f.LoC)
	}
}

func TestBestFitDistinguishesShapes(t *testing.T) {
	ns := []float64{64, 256, 1024, 4096, 16384}
	logSeries := make([]float64, len(ns))
	linSeries := make([]float64, len(ns))
	for i, n := range ns {
		logSeries[i] = 3 * math.Log2(n)
		linSeries[i] = 0.1 * n
	}
	cands := []Growth{GrowthConst, GrowthLog, GrowthLog2, GrowthLinear}
	if got := BestFit(ns, logSeries, cands...); got.Growth.Name != "log n" {
		t.Errorf("log series classified as %q", got.Growth.Name)
	}
	if got := BestFit(ns, linSeries, cands...); got.Growth.Name != "n" {
		t.Errorf("linear series classified as %q", got.Growth.Name)
	}
}

func TestGrowthLog2OverLogLog(t *testing.T) {
	// At n = 65536: log²n = 256, loglog = 4 → 64.
	if got := GrowthLog2OverLogLog.F(65536); math.Abs(got-64) > 1e-9 {
		t.Errorf("got %v, want 64", got)
	}
	// Clamp below.
	if got := GrowthLog2OverLogLog.F(2); got != 1 {
		t.Errorf("clamped value = %v, want 1", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	total := 0
	for _, c := range h.Buckets {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram lost values: %v", h.Buckets)
	}
	for i, c := range h.Buckets {
		if c != 2 {
			t.Errorf("bucket %d = %d, want 2", i, c)
		}
	}
	if !strings.Contains(h.Bar(10), "#") {
		t.Error("Bar output empty")
	}
}

func TestFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched series did not panic")
		}
	}()
	Fit([]float64{1}, []float64{1, 2}, GrowthLog)
}
