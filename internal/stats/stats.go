// Package stats provides the small reporting toolkit the experiment
// harness uses: aligned text tables, numeric series summaries, and
// growth-shape fits against the paper's target functions (log n, log²n,
// log²n/log log n, …).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table accumulates rows and renders them with aligned columns — the
// format cmd/experiments prints and EXPERIMENTS.md records.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column names.
func NewTable(cols ...string) *Table {
	return &Table{header: cols}
}

// AddRow appends a row; values are rendered with %v, floats with %.3g.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteString("\n")
	}
	writeRow(t.header)
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored markdown table (the
// format EXPERIMENTS.md records).
func (t *Table) Markdown() string {
	var sb strings.Builder
	sb.WriteString("| " + strings.Join(t.header, " | ") + " |\n")
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = "---"
	}
	sb.WriteString("|" + strings.Join(rule, "|") + "|\n")
	for _, r := range t.rows {
		cells := make([]string, len(t.header))
		for i := range cells {
			if i < len(r) {
				cells[i] = r[i]
			}
		}
		sb.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	return sb.String()
}

// CSV renders the table as RFC 4180 comma-separated values (header first)
// — the machine-readable form replay-driven sweeps emit for downstream
// plotting.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRec := func(cells []string) {
		for i := range t.header {
			if i > 0 {
				sb.WriteByte(',')
			}
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			sb.WriteString(c)
		}
		sb.WriteByte('\n')
	}
	writeRec(t.header)
	for _, r := range t.rows {
		writeRec(r)
	}
	return sb.String()
}

// Summary holds order statistics of a sample.
type Summary struct {
	N                int
	Min, Max         float64
	Mean, Median     float64
	P90              float64
	StdDev           float64
	Sum              float64
	MinIndex, MaxIdx int
}

// Summarize computes a Summary of vals (empty input yields zeros).
func Summarize(vals []float64) Summary {
	s := Summary{N: len(vals)}
	if len(vals) == 0 {
		return s
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	for i, v := range vals {
		s.Sum += v
		if v == s.Min && s.MinIndex == 0 {
			s.MinIndex = i
		}
		if v == s.Max {
			s.MaxIdx = i
		}
	}
	s.Mean = s.Sum / float64(len(vals))
	s.Median = sorted[len(sorted)/2]
	s.P90 = sorted[(len(sorted)*9)/10]
	var ss float64
	for _, v := range vals {
		d := v - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(len(vals)))
	return s
}

// Growth names a target growth function for shape fitting.
type Growth struct {
	Name string
	F    func(n float64) float64
}

// Standard growth functions from the paper's bounds.
var (
	GrowthConst          = Growth{"1", func(n float64) float64 { return 1 }}
	GrowthLog            = Growth{"log n", math.Log2}
	GrowthLog2           = Growth{"log² n", func(n float64) float64 { l := math.Log2(n); return l * l }}
	GrowthLog2OverLogLog = Growth{"log²n/loglog n", func(n float64) float64 {
		l := math.Log2(n)
		ll := math.Log2(l)
		if ll < 1 {
			ll = 1
		}
		return l * l / ll
	}}
	GrowthLinear = Growth{"n", func(n float64) float64 { return n }}
	GrowthSqrt   = Growth{"sqrt n", math.Sqrt}
)

// FitResult reports how well a measured series matches a growth function:
// the spread (max/min) of the ratio series y_i / f(n_i). Spread near 1
// means the shape matches; spread growing with the range means it does
// not.
type FitResult struct {
	Growth Growth
	LoC    float64 // min ratio ("constant" from below)
	HiC    float64 // max ratio ("constant" from above)
	Spread float64 // HiC / LoC
}

// Fit computes the ratio spread of ys against g over sample points ns.
func Fit(ns []float64, ys []float64, g Growth) FitResult {
	if len(ns) != len(ys) || len(ns) == 0 {
		panic("stats.Fit: need equal-length nonempty series")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range ns {
		d := g.F(ns[i])
		if d <= 0 {
			panic("stats.Fit: growth function must be positive on the sample")
		}
		r := ys[i] / d
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	return FitResult{Growth: g, LoC: lo, HiC: hi, Spread: hi / lo}
}

// BestFit returns the candidate growth with the smallest ratio spread —
// the shape the measured series most plausibly follows.
func BestFit(ns, ys []float64, candidates ...Growth) FitResult {
	if len(candidates) == 0 {
		panic("stats.BestFit: need candidates")
	}
	best := Fit(ns, ys, candidates[0])
	for _, g := range candidates[1:] {
		if f := Fit(ns, ys, g); f.Spread < best.Spread {
			best = f
		}
	}
	return best
}

// Histogram counts values into k equal-width buckets over [min, max].
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
}

// NewHistogram builds a histogram of vals with k buckets.
func NewHistogram(vals []float64, k int) Histogram {
	s := Summarize(vals)
	h := Histogram{Lo: s.Min, Hi: s.Max, Buckets: make([]int, k)}
	if len(vals) == 0 || k == 0 {
		return h
	}
	span := s.Max - s.Min
	for _, v := range vals {
		var b int
		if span > 0 {
			b = int((v - s.Min) / span * float64(k))
		}
		if b >= k {
			b = k - 1
		}
		h.Buckets[b]++
	}
	return h
}

// Bar renders the histogram as ASCII bars of width up to w.
func (h Histogram) Bar(w int) string {
	maxC := 0
	for _, c := range h.Buckets {
		if c > maxC {
			maxC = c
		}
	}
	var sb strings.Builder
	for i, c := range h.Buckets {
		span := h.Hi - h.Lo
		lo := h.Lo + span*float64(i)/float64(len(h.Buckets))
		bar := 0
		if maxC > 0 {
			bar = c * w / maxC
		}
		fmt.Fprintf(&sb, "%10.3g | %s %d\n", lo, strings.Repeat("#", bar), c)
	}
	return sb.String()
}
