// Package gf implements arithmetic in the prime field GF(p) with
// p = 65537 (the Fermat prime 2^16+1), the substrate for Rabin's
// information dispersal algorithm used by the Schuster (1987) alternative
// constant-space P-RAM memory scheme the paper discusses.
//
// Elements are represented as uint32 values in [0, p). The field is large
// enough to address any dispersal width the schemes need (d ≤ p−1 distinct
// evaluation points) while keeping all products inside uint64.
package gf

import "fmt"

// P is the field modulus, the Fermat prime 2^16 + 1.
const P = 65537

// Elem is a field element in [0, P).
type Elem = uint32

// Reduce maps an arbitrary uint64 into the field.
func Reduce(x uint64) Elem { return Elem(x % P) }

// Add returns a + b mod P.
func Add(a, b Elem) Elem {
	s := a + b
	if s >= P {
		s -= P
	}
	return s
}

// Sub returns a − b mod P.
func Sub(a, b Elem) Elem {
	if a >= b {
		return a - b
	}
	return a + P - b
}

// Neg returns −a mod P.
func Neg(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return P - a
}

// Mul returns a·b mod P.
func Mul(a, b Elem) Elem {
	return Elem(uint64(a) * uint64(b) % P)
}

// Pow returns a^e mod P by binary exponentiation.
func Pow(a Elem, e uint64) Elem {
	r := Elem(1)
	base := a % P
	for e > 0 {
		if e&1 == 1 {
			r = Mul(r, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return r
}

// Inv returns the multiplicative inverse of a ≠ 0 (Fermat: a^(P−2)).
func Inv(a Elem) Elem {
	if a%P == 0 {
		panic("gf.Inv: zero has no inverse")
	}
	return Pow(a, P-2)
}

// Div returns a / b mod P for b ≠ 0.
func Div(a, b Elem) Elem { return Mul(a, Inv(b)) }

// Vec is a vector of field elements.
type Vec []Elem

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b Vec) Elem {
	if len(a) != len(b) {
		panic(fmt.Sprintf("gf.Dot: length mismatch %d vs %d", len(a), len(b)))
	}
	var acc uint64
	for i := range a {
		acc += uint64(a[i]) * uint64(b[i])
		if acc >= 1<<63 { // cannot trigger with sane lengths; defensive
			acc %= P
		}
	}
	return Elem(acc % P)
}

// SolveVandermonde solves the b×b system V·a = y where V[i][j] = x_i^j,
// for pairwise-distinct points x, returning the coefficient vector a.
// It runs the classical O(b²) Newton divided-difference scheme: first the
// divided differences of y on x, then expansion of the Newton form into
// monomial coefficients.
func SolveVandermonde(xs, ys Vec) Vec {
	b := len(xs)
	if len(ys) != b {
		panic("gf.SolveVandermonde: xs and ys must have equal length")
	}
	for i := 0; i < b; i++ {
		for j := i + 1; j < b; j++ {
			if xs[i] == xs[j] {
				panic("gf.SolveVandermonde: evaluation points must be distinct")
			}
		}
	}
	// Divided differences in place: dd[i] = f[x_0..x_i].
	dd := make(Vec, b)
	copy(dd, ys)
	for lvl := 1; lvl < b; lvl++ {
		for i := b - 1; i >= lvl; i-- {
			num := Sub(dd[i], dd[i-1])
			den := Sub(xs[i], xs[i-lvl])
			dd[i] = Div(num, den)
		}
	}
	// Expand the Newton form Σ dd[i]·Π_{j<i}(x−x_j) into monomial
	// coefficients, growing the basis polynomial one root at a time.
	coef := make(Vec, b)
	basis := Vec{1} // coefficients of Π_{j<i} (x − x_j)
	for i := 0; i < b; i++ {
		for j := range basis {
			coef[j] = Add(coef[j], Mul(dd[i], basis[j]))
		}
		if i < b-1 {
			next := make(Vec, len(basis)+1)
			for j, bc := range basis { // next = basis·(x − x_i)
				next[j+1] = Add(next[j+1], bc)
				next[j] = Sub(next[j], Mul(xs[i], bc))
			}
			basis = next
		}
	}
	return coef
}

// EvalPoly evaluates the polynomial with coefficient vector a (a[0] is the
// constant term) at point x by Horner's rule.
func EvalPoly(a Vec, x Elem) Elem {
	var r Elem
	for i := len(a) - 1; i >= 0; i-- {
		r = Add(Mul(r, x), a[i])
	}
	return r
}
