package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func re(x uint32) Elem { return x % P }

// Field axioms under testing/quick.
func TestAddCommutativeAssociative(t *testing.T) {
	f := func(a, b, c uint32) bool {
		x, y, z := re(a), re(b), re(c)
		return Add(x, y) == Add(y, x) && Add(Add(x, y), z) == Add(x, Add(y, z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulCommutativeAssociative(t *testing.T) {
	f := func(a, b, c uint32) bool {
		x, y, z := re(a), re(b), re(c)
		return Mul(x, y) == Mul(y, x) && Mul(Mul(x, y), z) == Mul(x, Mul(y, z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributive(t *testing.T) {
	f := func(a, b, c uint32) bool {
		x, y, z := re(a), re(b), re(c)
		return Mul(x, Add(y, z)) == Add(Mul(x, y), Mul(x, z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := re(a), re(b)
		return Sub(Add(x, y), y) == x && Add(x, Neg(x)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulInverse(t *testing.T) {
	f := func(a uint32) bool {
		x := re(a)
		if x == 0 {
			return true
		}
		return Mul(x, Inv(x)) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestPowMatchesRepeatedMul(t *testing.T) {
	for _, a := range []Elem{0, 1, 2, 3, 65536} {
		acc := Elem(1)
		for e := uint64(0); e < 20; e++ {
			if got := Pow(a, e); got != acc {
				t.Fatalf("Pow(%d,%d) = %d, want %d", a, e, got, acc)
			}
			acc = Mul(acc, a)
		}
	}
}

func TestFermatLittleTheorem(t *testing.T) {
	f := func(a uint32) bool {
		x := re(a)
		if x == 0 {
			return true
		}
		return Pow(x, P-1) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReduce(t *testing.T) {
	if Reduce(P) != 0 || Reduce(P+5) != 5 || Reduce(3) != 3 {
		t.Error("Reduce wrong")
	}
}

func TestDot(t *testing.T) {
	a := Vec{1, 2, 3}
	b := Vec{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %d, want 32", got)
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot mismatch did not panic")
		}
	}()
	Dot(Vec{1}, Vec{1, 2})
}

func TestEvalPolyHorner(t *testing.T) {
	// p(x) = 7 + 3x + 2x²  at x = 5 → 7 + 15 + 50 = 72
	if got := EvalPoly(Vec{7, 3, 2}, 5); got != 72 {
		t.Errorf("EvalPoly = %d, want 72", got)
	}
}

func TestSolveVandermondeRoundtrip(t *testing.T) {
	// Random polynomial, evaluate at distinct points, recover coefficients.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		b := 1 + rng.Intn(12)
		coef := make(Vec, b)
		for i := range coef {
			coef[i] = Elem(rng.Intn(P))
		}
		xs := make(Vec, b)
		perm := rng.Perm(P - 1)
		for i := range xs {
			xs[i] = Elem(perm[i] + 1)
		}
		ys := make(Vec, b)
		for i := range ys {
			ys[i] = EvalPoly(coef, xs[i])
		}
		got := SolveVandermonde(xs, ys)
		for i := range coef {
			if got[i] != coef[i] {
				t.Fatalf("trial %d: coef[%d] = %d, want %d", trial, i, got[i], coef[i])
			}
		}
	}
}

func TestSolveVandermondeDuplicatePointsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate points did not panic")
		}
	}()
	SolveVandermonde(Vec{1, 1}, Vec{2, 3})
}

func TestSolveVandermondeLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	SolveVandermonde(Vec{1, 2}, Vec{2})
}
