// Package span is the serving lane's virtual-time attribution layer: a
// fixed-size ring of flat stage spans answering "where did the round
// go?". Where the flight recorder (internal/serve) records WHAT happened
// each round, the span recorder decomposes each executed round's
// makespan into the pipeline stages the engine already counts — queue
// wait, band→shard scheduling, the union-find component partition
// (including forced merges), the quorum retrieval phase loop, the
// update/commit leg, per-shard interconnect routing, and the report
// merge — each stamped on a monotone virtual clock measured in simulated
// time units (routed cycles under a cycle-timed fabric), never wall
// clock.
//
// The contract matches the rest of the repository: recording is a struct
// store into a preallocated slot (zero allocations, //pram:hotpath
// safe), the ring keeps the most recent spans and counts what it
// overwrote, and the event stream is a pure function of (seed, specs,
// arrival script) — a live run's dump and its `serve replay -spans`
// re-derivation are byte-identical. WriteTrace renders the retained
// spans as deterministic Chrome/Perfetto trace-event JSON (fixed key
// order, oldest first) with three process tracks: the server pipeline,
// one thread per tenant, and one thread per shard.
package span

import (
	"fmt"
	"io"
	"strconv"
)

// Stage identifies one pipeline stage of a serving round.
type Stage uint8

const (
	// StageWait is the scheduled credit's admission-queue wait. It is
	// measured in ROUNDS, not simulated time units, so it renders as an
	// instant marker carrying the wait as an attribute rather than as a
	// duration on the round timeline.
	StageWait Stage = iota + 1
	// StageSchedule is the band→shard scheduling decision: how many
	// tenant steps were placed on the K shards this round.
	StageSchedule
	// StagePartition is the pool's union-find component census over the
	// scheduled batches: disjoint components, forced serial merges.
	StagePartition
	// StageQuorum is the retrieval leg of a tenant's step: the phase loop
	// that reads a live quorum of every addressed variable's copies.
	StageQuorum
	// StageCommit is the update leg: the phase loop that writes the new
	// values through to a quorum of copies.
	StageCommit
	// StageRoute is one shard's interconnect view of the same step:
	// routed cycles (the step's full duration on a cycle-timed fabric, 0
	// on the unit-cost bipartite graph) with the fabric's cycle and hop
	// counter deltas and the step's peak module load as attributes.
	StageRoute
	// StageMerge closes the round: reports folded into tenant accounting
	// at the round's makespan point.
	StageMerge
)

// String returns the stage's trace-event name.
func (st Stage) String() string {
	switch st {
	case StageWait:
		return "wait"
	case StageSchedule:
		return "schedule"
	case StagePartition:
		return "partition"
	case StageQuorum:
		return "quorum"
	case StageCommit:
		return "commit"
	case StageRoute:
		return "route"
	case StageMerge:
		return "merge"
	default:
		return "unknown"
	}
}

// Event is one fixed-width span record. Start/Dur are virtual timestamps
// on the recorder's monotone clock (simulated time units); Track is the
// tenant id for tenant stages (Wait/Quorum/Commit) and the shard id for
// StageRoute (server stages ignore it). The scalar attributes A, B, C
// are stage-specific:
//
//	StageWait:      A = wait in rounds
//	StageSchedule:  A = scheduled steps, B = K
//	StagePartition: A = disjoint components, B = forced merges, C = active shards
//	StageQuorum:    A = read phases, B = live-request area (Σ live over phases)
//	StageCommit:    A = write phases
//	StageRoute:     A = fabric cycles delta, B = hops delta, C = peak module load
//	StageMerge:     A = active shards, B = makespan, C = summed work
//
// One flat struct keeps the ring allocation-free: appending is a struct
// store into a preallocated slot.
type Event struct {
	Round   int64
	Start   int64
	Dur     int64
	Stage   Stage
	Track   int32
	A, B, C int64
}

// Recorder is the fixed-size span ring plus the virtual clock the spans
// are stamped on. The clock advances by each executed round's makespan
// (idle rounds record nothing and cost nothing), so the trace timeline
// is the serving run's simulated critical path.
type Recorder struct {
	ring  []Event
	total int64 // spans ever pushed
	vt    int64 // virtual clock (simulated time units)
}

// NewRecorder builds a ring holding the most recent `depth` spans
// (depth < 1 is clamped to 1).
func NewRecorder(depth int) *Recorder {
	if depth < 1 {
		depth = 1
	}
	return &Recorder{ring: make([]Event, depth)}
}

// Push appends one span, overwriting the oldest once the ring is full.
//
//pram:hotpath
func (r *Recorder) Push(ev Event) {
	r.ring[r.total%int64(len(r.ring))] = ev
	r.total++
}

// Now returns the current virtual timestamp.
//
//pram:hotpath
func (r *Recorder) Now() int64 { return r.vt }

// Advance moves the virtual clock forward by d simulated time units.
//
//pram:hotpath
func (r *Recorder) Advance(d int64) { r.vt += d }

// Total reports how many spans were ever recorded.
func (r *Recorder) Total() int64 { return r.total }

// Len reports how many spans the ring currently holds.
func (r *Recorder) Len() int {
	if r.total < int64(len(r.ring)) {
		return int(r.total)
	}
	return len(r.ring)
}

// Dropped reports how many spans the ring has overwritten.
func (r *Recorder) Dropped() int64 { return r.total - int64(r.Len()) }

// Events appends the retained spans, oldest first, to dst and returns it.
func (r *Recorder) Events(dst []Event) []Event {
	n := int64(r.Len())
	for i := r.total - n; i < r.total; i++ {
		dst = append(dst, r.ring[i%int64(len(r.ring))])
	}
	return dst
}

// Track pids of the trace's three process groups.
const (
	pidServer  = 0 // the per-round pipeline stages
	pidTenants = 1 // one thread per tenant (wait/quorum/commit)
	pidShards  = 2 // one thread per shard (route)
)

// WriteTrace dumps the retained spans as a deterministic Chrome/Perfetto
// trace-event JSON document: fixed key order, metadata first (process
// and thread names for the server, tenant and shard tracks), then the
// spans oldest first as "X" duration events with ts/dur on the virtual
// clock. tenants and tenantName label the tenant tracks (tenantName nil
// renders bare ids); limit > 0 emits only the most recent limit spans,
// and the document's dropped count absorbs the truncation — a cut dump
// never pretends to be complete. Dumping allocates; it runs off the hot
// path (the /debug/spans handler, shutdown, replay).
func (r *Recorder) WriteTrace(w io.Writer, tenants int, tenantName func(int) string, limit int) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	n := int64(r.Len())
	if limit > 0 && int64(limit) < n {
		n = int64(limit)
	}
	// Shard tracks come from the emitted spans themselves, so the
	// metadata is as deterministic as the event stream (and a truncated
	// dump only names shards it actually shows).
	maxShard := int32(-1)
	for i := int64(0); i < n; i++ {
		ev := &r.ring[(r.total-n+i)%int64(len(r.ring))]
		if ev.Stage == StageRoute && ev.Track > maxShard {
			maxShard = ev.Track
		}
	}
	pf("{\"displayTimeUnit\":\"ns\",\"otherData\":{\"total\":%d,\"dropped\":%d,\"clock\":%d},\"traceEvents\":[\n",
		r.total, r.total-n, r.vt)
	pf("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"server\"}},\n", pidServer)
	pf("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"pipeline\"}},\n", pidServer)
	pf("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"tenants\"}},\n", pidTenants)
	for i := 0; i < tenants; i++ {
		name := strconv.Itoa(i)
		if tenantName != nil {
			name = tenantName(i)
		}
		pf("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":%s}},\n",
			pidTenants, i, strconv.Quote(name))
	}
	pf("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"shards\"}}", pidShards)
	for sh := int32(0); sh <= maxShard; sh++ {
		pf(",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"shard %d\"}}",
			pidShards, sh, sh)
	}
	for i := int64(0); i < n; i++ {
		ev := &r.ring[(r.total-n+i)%int64(len(r.ring))]
		pf(",\n")
		writeSpan(pf, ev)
	}
	pf("\n]}\n")
	return err
}

// writeSpan renders one span as an "X" duration event with its
// stage-specific args, keys in fixed order.
func writeSpan(pf func(string, ...any), ev *Event) {
	pid, tid := pidServer, int32(0)
	switch ev.Stage {
	case StageWait, StageQuorum, StageCommit:
		pid, tid = pidTenants, ev.Track
	case StageRoute:
		pid, tid = pidShards, ev.Track
	}
	pf("{\"name\":%q,\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"args\":{\"round\":%d",
		ev.Stage.String(), pid, tid, ev.Start, ev.Dur, ev.Round)
	switch ev.Stage {
	case StageWait:
		pf(",\"wait_rounds\":%d", ev.A)
	case StageSchedule:
		pf(",\"scheduled\":%d,\"k\":%d", ev.A, ev.B)
	case StagePartition:
		pf(",\"components\":%d,\"merges\":%d,\"active\":%d", ev.A, ev.B, ev.C)
	case StageQuorum:
		pf(",\"phases\":%d,\"live_area\":%d", ev.A, ev.B)
	case StageCommit:
		pf(",\"phases\":%d", ev.A)
	case StageRoute:
		pf(",\"cycles\":%d,\"hops\":%d,\"peak_module_load\":%d", ev.A, ev.B, ev.C)
	case StageMerge:
		pf(",\"active\":%d,\"makespan\":%d,\"work\":%d", ev.A, ev.B, ev.C)
	}
	pf("}}")
}
