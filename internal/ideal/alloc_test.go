package ideal

import (
	"testing"

	"repro/internal/model"
)

// TestIdealExecuteStepZeroAllocs: the reference machine's step loop reuses
// its values, contention and conflict-check buffers and commits writes
// without per-address maps, so steady state stays off the heap in every
// conflict mode (EREW exercises the checker's scratch path).
func TestIdealExecuteStepZeroAllocs(t *testing.T) {
	for _, mode := range []model.Mode{model.CRCWPriority, model.EREW} {
		t.Run(mode.String(), func(t *testing.T) {
			const n = 64
			p := New(n, 2*n, mode)
			batch := model.NewBatch(n)
			for i := 0; i < n; i++ {
				if i%2 == 0 {
					batch[i] = model.Request{Proc: i, Op: model.OpRead, Addr: i} // distinct cells: EREW-legal
				} else {
					batch[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: n + i, Value: model.Word(i)}
				}
			}
			for i := 0; i < 3; i++ {
				p.ExecuteStep(batch)
			}
			if avg := testing.AllocsPerRun(20, func() {
				p.ExecuteStep(batch)
			}); avg != 0 {
				t.Errorf("ideal ExecuteStep allocates %.1f/op in steady state, want 0", avg)
			}
		})
	}
}
