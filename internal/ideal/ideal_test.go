package ideal

import (
	"testing"

	"repro/internal/model"
)

func TestNewPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{0, 1}, {1, 0}, {-1, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", tc.n, tc.m)
				}
			}()
			New(tc.n, tc.m, model.EREW)
		}()
	}
}

func TestBasicReadWrite(t *testing.T) {
	p := New(4, 8, model.EREW)
	w := model.NewBatch(4)
	w[0] = model.Request{Proc: 0, Op: model.OpWrite, Addr: 3, Value: 42}
	rep := p.ExecuteStep(w)
	if rep.Err != nil {
		t.Fatalf("write step error: %v", rep.Err)
	}
	if rep.Time != 1 {
		t.Errorf("ideal step time = %d, want 1", rep.Time)
	}
	r := model.NewBatch(4)
	r[1] = model.Request{Proc: 1, Op: model.OpRead, Addr: 3}
	rep = p.ExecuteStep(r)
	if got := rep.Values[1]; got != 42 {
		t.Errorf("read returned %d, want 42", got)
	}
	if p.Steps() != 2 {
		t.Errorf("steps = %d, want 2", p.Steps())
	}
}

func TestEREWViolationReportedButExecuted(t *testing.T) {
	p := New(2, 4, model.EREW)
	b := model.Batch{
		{Proc: 0, Op: model.OpWrite, Addr: 0, Value: 5},
		{Proc: 1, Op: model.OpWrite, Addr: 0, Value: 9},
	}
	rep := p.ExecuteStep(b)
	if rep.Err == nil {
		t.Error("EREW violation not reported")
	}
	if p.ReadCell(0) != 5 {
		t.Errorf("priority fallback wrote %d, want 5", p.ReadCell(0))
	}
}

func TestLoadCellsAndReadCell(t *testing.T) {
	p := New(1, 10, model.CREW)
	p.LoadCells(4, []model.Word{1, 2, 3})
	for i, want := range []model.Word{1, 2, 3} {
		if got := p.ReadCell(4 + i); got != want {
			t.Errorf("cell %d = %d, want %d", 4+i, got, want)
		}
	}
	if p.ReadCell(0) != 0 {
		t.Error("untouched cell not zero")
	}
}

func TestContentionDiagnostic(t *testing.T) {
	p := New(4, 4, model.CRCWPriority)
	b := model.Batch{
		{Proc: 0, Op: model.OpRead, Addr: 2},
		{Proc: 1, Op: model.OpRead, Addr: 2},
		{Proc: 2, Op: model.OpRead, Addr: 2},
		{Proc: 3, Op: model.OpRead, Addr: 1},
	}
	rep := p.ExecuteStep(b)
	if rep.ModuleContention != 3 {
		t.Errorf("contention = %d, want 3", rep.ModuleContention)
	}
	if rep.CopyAccesses != 4 {
		t.Errorf("copy accesses = %d, want 4", rep.CopyAccesses)
	}
}

func TestName(t *testing.T) {
	if got := New(1, 1, model.CRCWPriority).Name(); got != "ideal-PRAM(CRCW-priority)" {
		t.Errorf("Name() = %q", got)
	}
}
