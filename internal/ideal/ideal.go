// Package ideal implements the abstract P-RAM itself: n processors sharing
// an m-cell memory with unit access time (Fortune & Wyllie 1978). It is the
// reference machine every simulation in this repository is measured against,
// both for semantics (the backend-equivalence property tests) and for cost
// (its step time is the constant 1 that the simulations pay polylog factors
// to emulate).
package ideal

import (
	"fmt"
	"slices"

	"repro/internal/model"
)

// PRAM is the ideal shared-memory machine.
type PRAM struct {
	n     int
	mode  model.Mode
	mem   model.SliceStore
	store model.Store // mem boxed once (boxing a slice per step allocates)

	steps   int64        // number of executed steps, for reports
	vals    []model.Word // reusable StepReport.Values buffer
	addrs   []model.Addr // reusable contention-count scratch
	checker model.ConflictChecker
}

// New returns an ideal P-RAM with n processors and m shared cells operating
// under the given conflict mode.
func New(n, m int, mode model.Mode) *PRAM {
	if n <= 0 || m <= 0 {
		panic(fmt.Sprintf("ideal.New: need n, m > 0 (got n=%d m=%d)", n, m))
	}
	p := &PRAM{n: n, mode: mode, mem: make(model.SliceStore, m)}
	p.store = p.mem
	return p
}

// Name implements model.Backend.
func (p *PRAM) Name() string { return "ideal-PRAM(" + p.mode.String() + ")" }

// MemSize implements model.Backend.
func (p *PRAM) MemSize() int { return len(p.mem) }

// Procs implements model.Backend.
func (p *PRAM) Procs() int { return p.n }

// Mode returns the conflict convention the machine enforces.
func (p *PRAM) Mode() model.Mode { return p.mode }

// Steps returns the number of steps executed so far.
func (p *PRAM) Steps() int64 { return p.steps }

// ExecuteStep implements model.Backend. On the ideal P-RAM every step costs
// exactly one time unit regardless of the access pattern.
func (p *PRAM) ExecuteStep(batch model.Batch) model.StepReport {
	vals, err := p.checker.ResolveStepInto(p.vals, p.store, batch, p.mode)
	p.vals = vals
	p.steps++
	contention := p.maxCellContention(batch)
	return model.StepReport{
		Values:           vals,
		Time:             1,
		CopyAccesses:     int64(batch.Active()),
		ModuleContention: contention,
		Err:              err,
	}
}

// ReadCell implements model.Backend.
func (p *PRAM) ReadCell(a model.Addr) model.Word { return p.mem[a] }

// LoadCells implements model.Backend.
func (p *PRAM) LoadCells(base model.Addr, vals []model.Word) {
	copy(p.mem[base:], vals)
}

// maxCellContention reports the largest number of requests aimed at a single
// cell, a useful diagnostic even though the ideal machine does not charge
// for it. It counts by sorting a reusable address scratch, keeping the step
// loop allocation-free.
func (p *PRAM) maxCellContention(batch model.Batch) int {
	addrs := p.addrs[:0]
	for _, r := range batch {
		if r.Op != model.OpNone {
			addrs = append(addrs, r.Addr)
		}
	}
	p.addrs = addrs
	slices.Sort(addrs)
	best, run := 0, 0
	for i, a := range addrs {
		if i == 0 || a != addrs[i-1] {
			run = 0
		}
		run++
		if run > best {
			best = run
		}
	}
	return best
}
