// Metrics export. Besides modeling the paper's P-ROM (prom.go), this
// package is the repository's metrics seam: a minimal, dependency-free
// registry that renders counters and gauges in the Prometheus text
// exposition format (version 0.0.4), so serving deployments
// (repro/internal/serve, cmd/serve) can export per-tenant and per-shard
// state to any standard scraper — or just dump it to a file — without
// pulling a client library into the build.
//
// The design is snapshot-based: collectors are closures that EMIT samples
// when the registry renders, reading whatever live counters they close
// over at that moment. Nothing is recorded on the hot path — incrementing
// a served-steps counter is an int64 add in the owner's own struct — so
// registering metrics cannot disturb the zero-allocation serving
// invariant. Rendering allocates freely; it runs off the hot path.
package prom

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Sample is one exposition line: a metric name, an optional pre-rendered
// label set (`tenant="a",shard="3"` — no braces), and a value.
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// Desc describes one metric family (name, help text, and type — "counter",
// "gauge", or "histogram"). A histogram family's samples are the three
// sub-series EmitHistogram renders (Name_bucket with `le` labels, Name_sum,
// Name_count); the registry groups them under the family's one HELP/TYPE
// header and preserves their emission order, because cumulative `le`
// buckets must render in ascending numeric order and a lexical label sort
// would put le="16" before le="2".
type Desc struct {
	Name string
	Help string
	Type string
}

// Collector emits the current samples of the metric families it owns.
// Collectors run on the rendering goroutine; implementations that read
// counters mutated by another goroutine must do their own synchronization
// (the serving front end renders only between rounds or after drain).
type Collector interface {
	Describe(desc func(Desc))
	Collect(emit func(Sample))
}

// Registry renders registered collectors in the Prometheus text format.
// The zero value is ready to use.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
}

// Register adds a collector. Collectors render in registration order.
func (r *Registry) Register(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// WriteTo renders every registered collector's families: one # HELP and
// # TYPE line per family (in Describe order), then its samples sorted by
// label string for a stable output.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()

	var descs []Desc
	byName := make(map[string][]Sample)
	// alias maps a histogram family's three sub-series names to the family
	// name, so their samples collect under one header in emission order.
	alias := map[string]string{}
	for _, c := range collectors {
		c.Describe(func(d Desc) {
			if _, dup := byName[d.Name]; !dup {
				byName[d.Name] = nil
				descs = append(descs, d)
				if d.Type == "histogram" {
					alias[d.Name+"_bucket"] = d.Name
					alias[d.Name+"_sum"] = d.Name
					alias[d.Name+"_count"] = d.Name
				}
			}
		})
		c.Collect(func(s Sample) {
			name := s.Name
			if fam, ok := alias[name]; ok {
				name = fam
			}
			byName[name] = append(byName[name], s)
		})
	}
	var sb strings.Builder
	emitSample := func(s Sample) {
		if s.Labels == "" {
			fmt.Fprintf(&sb, "%s %s\n", s.Name, formatValue(s.Value))
		} else {
			fmt.Fprintf(&sb, "%s{%s} %s\n", s.Name, s.Labels, formatValue(s.Value))
		}
	}
	writeSamples := func(samples []Sample, keepOrder bool) {
		if !keepOrder {
			sort.SliceStable(samples, func(i, j int) bool { return samples[i].Labels < samples[j].Labels })
		}
		for _, s := range samples {
			emitSample(s)
		}
	}
	described := make(map[string]bool, len(descs))
	for _, d := range descs {
		described[d.Name] = true
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s %s\n", d.Name, escapeHelp(d.Help), d.Name, d.Type)
		// Histogram sub-series render exactly as emitted: per label group,
		// ascending cumulative buckets, then the group's sum and count.
		writeSamples(byName[d.Name], d.Type == "histogram")
	}
	// Samples whose family was never described (a Collect/Describe drift)
	// still render — as untyped families, sorted by name — rather than
	// silently vanishing from the exposition.
	var extras []string
	//pram:unordered key collection; extras is sorted before rendering
	for name := range byName {
		if !described[name] && len(byName[name]) > 0 {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	for _, name := range extras {
		fmt.Fprintf(&sb, "# TYPE %s untyped\n", name)
		writeSamples(byName[name], false)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// formatValue renders a sample value: integers without an exponent (the
// common case for step and queue counters), everything else via %g.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// escapeHelp escapes a HELP text per the exposition format: backslash and
// newline (double quotes are legal in help text, unlike label values). An
// unescaped newline would split the comment mid-line and corrupt every
// family after it.
func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

// Label renders one key="value" label pair, escaping the value per the
// exposition format (backslash, double quote, newline).
func Label(key, value string) string {
	esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(value)
	return key + `="` + esc + `"`
}

// Labels joins rendered label pairs.
func Labels(pairs ...string) string { return strings.Join(pairs, ",") }

// EmitHistogram renders h as the three sub-series of a Prometheus
// histogram family: cumulative `_bucket` samples in ascending `le` order
// (finite power-of-two boundaries, then `+Inf`), `_sum`, and `_count`.
// labels is the family's pre-rendered label set ("" for none); the `le`
// pair is appended to it per bucket. Call from a Collector whose Describe
// declared name with Type "histogram". Rendering allocates; it runs off
// the hot path like all collection.
func EmitHistogram(emit func(Sample), name, labels string, h *Histogram) {
	withLE := func(le string) string {
		if labels == "" {
			return `le="` + le + `"`
		}
		return labels + `,le="` + le + `"`
	}
	cum := int64(0)
	bound := int64(1)
	for i := 0; i < h.Buckets(); i++ {
		cum += h.BucketCount(i)
		emit(Sample{Name: name + "_bucket", Labels: withLE(strconv.FormatInt(bound, 10)), Value: float64(cum)})
		bound *= 2
	}
	cum += h.BucketCount(h.Buckets())
	emit(Sample{Name: name + "_bucket", Labels: withLE("+Inf"), Value: float64(cum)})
	emit(Sample{Name: name + "_sum", Labels: labels, Value: float64(h.Sum())})
	emit(Sample{Name: name + "_count", Labels: labels, Value: float64(cum)})
}
