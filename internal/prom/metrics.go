// Metrics export. Besides modeling the paper's P-ROM (prom.go), this
// package is the repository's metrics seam: a minimal, dependency-free
// registry that renders counters and gauges in the Prometheus text
// exposition format (version 0.0.4), so serving deployments
// (repro/internal/serve, cmd/serve) can export per-tenant and per-shard
// state to any standard scraper — or just dump it to a file — without
// pulling a client library into the build.
//
// The design is snapshot-based: collectors are closures that EMIT samples
// when the registry renders, reading whatever live counters they close
// over at that moment. Nothing is recorded on the hot path — incrementing
// a served-steps counter is an int64 add in the owner's own struct — so
// registering metrics cannot disturb the zero-allocation serving
// invariant. Rendering allocates freely; it runs off the hot path.
package prom

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Sample is one exposition line: a metric name, an optional pre-rendered
// label set (`tenant="a",shard="3"` — no braces), and a value.
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// Desc describes one metric family (name, help text, and type — "counter"
// or "gauge").
type Desc struct {
	Name string
	Help string
	Type string
}

// Collector emits the current samples of the metric families it owns.
// Collectors run on the rendering goroutine; implementations that read
// counters mutated by another goroutine must do their own synchronization
// (the serving front end renders only between rounds or after drain).
type Collector interface {
	Describe(desc func(Desc))
	Collect(emit func(Sample))
}

// Registry renders registered collectors in the Prometheus text format.
// The zero value is ready to use.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
}

// Register adds a collector. Collectors render in registration order.
func (r *Registry) Register(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// WriteTo renders every registered collector's families: one # HELP and
// # TYPE line per family (in Describe order), then its samples sorted by
// label string for a stable output.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()

	var descs []Desc
	byName := make(map[string][]Sample)
	for _, c := range collectors {
		c.Describe(func(d Desc) {
			if _, dup := byName[d.Name]; !dup {
				byName[d.Name] = nil
				descs = append(descs, d)
			}
		})
		c.Collect(func(s Sample) {
			byName[s.Name] = append(byName[s.Name], s)
		})
	}
	var sb strings.Builder
	writeSamples := func(samples []Sample) {
		sort.SliceStable(samples, func(i, j int) bool { return samples[i].Labels < samples[j].Labels })
		for _, s := range samples {
			if s.Labels == "" {
				fmt.Fprintf(&sb, "%s %s\n", s.Name, formatValue(s.Value))
			} else {
				fmt.Fprintf(&sb, "%s{%s} %s\n", s.Name, s.Labels, formatValue(s.Value))
			}
		}
	}
	described := make(map[string]bool, len(descs))
	for _, d := range descs {
		described[d.Name] = true
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s %s\n", d.Name, d.Help, d.Name, d.Type)
		writeSamples(byName[d.Name])
	}
	// Samples whose family was never described (a Collect/Describe drift)
	// still render — as untyped families, sorted by name — rather than
	// silently vanishing from the exposition.
	var extras []string
	//pram:unordered key collection; extras is sorted before rendering
	for name := range byName {
		if !described[name] && len(byName[name]) > 0 {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	for _, name := range extras {
		fmt.Fprintf(&sb, "# TYPE %s untyped\n", name)
		writeSamples(byName[name])
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// formatValue renders a sample value: integers without an exponent (the
// common case for step and queue counters), everything else via %g.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Label renders one key="value" label pair, escaping the value per the
// exposition format (backslash, double quote, newline).
func Label(key, value string) string {
	esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(value)
	return key + `="` + esc + `"`
}

// Labels joins rendered label pairs.
func Labels(pairs ...string) string { return strings.Join(pairs, ",") }
