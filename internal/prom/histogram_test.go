package prom

import (
	"strings"
	"testing"
)

// TestHistogramBucketing pins the power-of-two bucket boundaries: bucket i
// holds 2^(i-1) < v ≤ 2^i with v ≤ 1 in bucket 0, and everything past the
// last finite boundary in the overflow slot.
func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(4) // boundaries 1, 2, 4, 8, +Inf
	for _, tc := range []struct {
		v      int64
		bucket int
	}{
		{-3, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2},
		{5, 3}, {8, 3}, {9, 4}, {100, 4},
	} {
		before := h.BucketCount(tc.bucket)
		h.Observe(tc.v)
		if got := h.BucketCount(tc.bucket); got != before+1 {
			t.Errorf("Observe(%d) did not land in bucket %d", tc.v, tc.bucket)
		}
	}
	if h.Count() != 10 {
		t.Errorf("count %d, want 10", h.Count())
	}
	// The -3 observation clamps to 0 before summing.
	if want := int64(0 + 0 + 1 + 2 + 3 + 4 + 5 + 8 + 9 + 100); h.Sum() != want {
		t.Errorf("sum %d, want %d", h.Sum(), want)
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.BucketCount(0) != 0 {
		t.Error("Reset left state behind")
	}
}

// TestHistogramOrderInvariance locks the determinism property the serving
// tests build on: bucket contents are a pure function of the observation
// multiset, independent of order.
func TestHistogramOrderInvariance(t *testing.T) {
	vals := []int64{7, 1, 900, 3, 3, 64, 0, 31}
	a, b := NewHistogram(8), NewHistogram(8)
	for _, v := range vals {
		a.Observe(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		b.Observe(vals[i])
	}
	for i := 0; i <= a.Buckets(); i++ {
		if a.BucketCount(i) != b.BucketCount(i) {
			t.Errorf("bucket %d differs by order: %d vs %d", i, a.BucketCount(i), b.BucketCount(i))
		}
	}
	if a.Sum() != b.Sum() || a.Count() != b.Count() {
		t.Error("sum/count differ by order")
	}
}

// TestHistogramObserveZeroAllocs locks the hot-path invariant the serving
// round depends on: observing is pure arithmetic on preallocated state.
func TestHistogramObserveZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation invariants are measured without the race detector")
	}
	h := NewHistogram(24)
	v := int64(0)
	if avg := testing.AllocsPerRun(200, func() {
		h.Observe(v)
		v += 37
	}); avg != 0 {
		t.Errorf("Observe allocates %.2f/op, want 0", avg)
	}
}

// histCollector exposes one histogram family for the rendering tests.
type histCollector struct {
	name   string
	groups []struct {
		labels string
		h      *Histogram
	}
}

func (c *histCollector) Describe(desc func(Desc)) {
	desc(Desc{Name: c.name, Help: "test histogram", Type: "histogram"})
}

func (c *histCollector) Collect(emit func(Sample)) {
	for _, g := range c.groups {
		EmitHistogram(emit, c.name, g.labels, g.h)
	}
}

// TestHistogramExposition pins the full text rendering of a histogram
// family: one HELP/TYPE header, cumulative buckets in ascending numeric le
// order (which a lexical label sort would destroy: "16" < "2"), the +Inf
// bucket equal to _count, and per-group sub-series kept together.
func TestHistogramExposition(t *testing.T) {
	h := NewHistogram(5) // le 1,2,4,8,16,+Inf
	for _, v := range []int64{1, 2, 3, 16, 17, 1000} {
		h.Observe(v)
	}
	c := &histCollector{name: "test_rounds"}
	c.groups = append(c.groups, struct {
		labels string
		h      *Histogram
	}{Label("tenant", "a"), h})
	var reg Registry
	reg.Register(c)
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_rounds test histogram
# TYPE test_rounds histogram
test_rounds_bucket{tenant="a",le="1"} 1
test_rounds_bucket{tenant="a",le="2"} 2
test_rounds_bucket{tenant="a",le="4"} 3
test_rounds_bucket{tenant="a",le="8"} 3
test_rounds_bucket{tenant="a",le="16"} 4
test_rounds_bucket{tenant="a",le="+Inf"} 6
test_rounds_sum{tenant="a"} 1039
test_rounds_count{tenant="a"} 6
`
	if sb.String() != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestHistogramExpositionMultiGroup checks that several label groups of one
// family render under a single header, each group's buckets, sum and count
// contiguous and in emission order.
func TestHistogramExpositionMultiGroup(t *testing.T) {
	c := &histCollector{name: "multi"}
	for _, name := range []string{"z", "a"} { // deliberately not sorted
		h := NewHistogram(1)
		h.Observe(1)
		c.groups = append(c.groups, struct {
			labels string
			h      *Histogram
		}{Label("tenant", name), h})
	}
	var reg Registry
	reg.Register(c)
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "# TYPE multi histogram") != 1 {
		t.Errorf("want exactly one TYPE line:\n%s", out)
	}
	zi := strings.Index(out, `multi_count{tenant="z"}`)
	ai := strings.Index(out, `multi_bucket{tenant="a",le="1"}`)
	if zi < 0 || ai < 0 || zi > ai {
		t.Errorf("groups reordered or split (emission order must hold):\n%s", out)
	}
}
