package prom

import "math/bits"

// Histogram is a fixed-boundary, allocation-free histogram over the
// non-negative integers — virtual-round and virtual-time measurements,
// which is everything the serving lane observes. Boundaries are powers of
// two: bucket i counts observations v with 2^(i-1) < v ≤ 2^i (bucket 0
// counts v ≤ 1), and one overflow bucket counts everything past the last
// finite boundary. Observing is two int64 adds and an increment into a
// preallocated array; no locks, no floats, no allocation — safe on the
// //pram:hotpath serving round. Rendering (histogram exposition with
// cumulative `le` buckets, `_sum`, `_count`) allocates freely and runs off
// the hot path through Registry/EmitHistogram.
//
// Because observations are integer adds into fixed buckets, a Histogram's
// entire state is a pure function of the observation multiset: two runs
// that observe the same values in any order carry bit-for-bit identical
// bucket contents — the property the serving determinism tests assert
// across K and worker counts.
type Histogram struct {
	counts []int64 // len = buckets+1; last slot is the +Inf overflow
	sum    int64
	total  int64
}

// NewHistogram builds a histogram with the given number of finite
// power-of-two buckets (upper boundaries 1, 2, 4, …, 2^(buckets-1)) plus
// the implicit +Inf overflow bucket. buckets is clamped to [1, 63] (the
// int64 boundary range).
func NewHistogram(buckets int) *Histogram {
	if buckets < 1 {
		buckets = 1
	}
	if buckets > 63 {
		buckets = 63
	}
	return &Histogram{counts: make([]int64, buckets+1)}
}

// Observe folds one observation into the histogram. Negative values clamp
// to zero (the serving lane's measurements are all non-negative; a clamp
// keeps a bug from corrupting the bucket index).
//
//pram:hotpath
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	// Bucket index for upper boundary 2^i: v ≤ 1 → 0, else ceil(log2 v);
	// values past the last finite boundary land in the overflow slot.
	idx := 0
	if v > 1 {
		idx = bits.Len64(uint64(v - 1))
	}
	if idx >= len(h.counts)-1 {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.sum += v
	h.total++
}

// Count returns how many observations the histogram holds.
func (h *Histogram) Count() int64 { return h.total }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Buckets returns the number of finite buckets.
func (h *Histogram) Buckets() int { return len(h.counts) - 1 }

// BucketCount returns the raw (non-cumulative) count of bucket i; index
// Buckets() is the +Inf overflow bucket.
func (h *Histogram) BucketCount(i int) int64 { return h.counts[i] }

// Reset zeroes the histogram in place (no allocation).
func (h *Histogram) Reset() {
	clear(h.counts)
	h.sum = 0
	h.total = 0
}
