// A minimal, dependency-free promlint for the Prometheus text
// exposition format (0.0.4): the grammar plus the invariants a scraper
// relies on, so both `serve promlint` and unit tests can gate /metrics
// surfaces (including checked-in goldens) without pulling in the real
// promlint tool:
//
//   - HELP/TYPE comment grammar; known TYPE kinds; HELP/TYPE precede the
//     family's samples and appear at most once
//   - metric- and label-name character sets; label values correctly
//     quoted with only the \\, \", \n escapes; parseable sample values
//   - no duplicate series (same name + label set twice)
//   - counters named *_total
//   - histogram families expose only *_bucket/_sum/_count, with ascending
//     le bounds, cumulative bucket counts, a +Inf bucket, and
//     _count == the +Inf bucket per label group
package prom

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var (
	promMetricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promFamily accumulates what the linter knows about one metric family.
type promFamily struct {
	typ     string
	help    bool
	samples int
}

// histBucket is one le bucket of one histogram label group.
type histBucket struct {
	bound float64
	raw   string
	v     float64
	ln    int
}

// histGroup is one label set (minus le) of one histogram family.
type histGroup struct {
	buckets    []histBucket
	sum, count *float64
}

// LintExposition checks one exposition and returns the problems plus the
// family and sample counts. Output order is deterministic: line-anchored
// problems in file order, then post-pass problems in first-seen order.
func LintExposition(data []byte) (problems []string, families, samples int) {
	addf := func(ln int, format string, args ...any) {
		problems = append(problems, fmt.Sprintf("line %d: %s", ln, fmt.Sprintf(format, args...)))
	}
	fams := map[string]*promFamily{}
	var famOrder []string
	fam := func(name string) *promFamily {
		f := fams[name]
		if f == nil {
			f = &promFamily{}
			fams[name] = f
			famOrder = append(famOrder, name)
		}
		return f
	}
	series := map[string]int{}
	hists := map[string]map[string]*histGroup{}
	histOrder := map[string][]string{}

	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		ln := i + 1
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, _ := strings.Cut(rest, " ")
			if !promMetricNameRe.MatchString(name) {
				addf(ln, "HELP: bad metric name %q", name)
				continue
			}
			f := fam(name)
			if f.help {
				addf(ln, "duplicate HELP for %s", name)
			}
			if f.samples > 0 {
				addf(ln, "HELP for %s after its samples", name)
			}
			f.help = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				addf(ln, "TYPE: want `# TYPE name kind`")
				continue
			}
			if !promMetricNameRe.MatchString(name) {
				addf(ln, "TYPE: bad metric name %q", name)
				continue
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				addf(ln, "TYPE %s: unknown kind %q", name, typ)
			}
			if typ == "counter" && !strings.HasSuffix(name, "_total") {
				addf(ln, "counter %s should end in _total", name)
			}
			f := fam(name)
			if f.typ != "" {
				addf(ln, "duplicate TYPE for %s", name)
			}
			if f.samples > 0 {
				addf(ln, "TYPE for %s after its samples", name)
			}
			f.typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}

		name, labels, value, ok := parsePromSample(line, ln, addf)
		if !ok {
			continue
		}
		samples++

		// Histogram sub-series fold into their declared base family.
		base, suffix := name, ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			if t, ok := strings.CutSuffix(name, sfx); ok {
				if f := fams[t]; f != nil && f.typ == "histogram" {
					base, suffix = t, sfx
				}
				break
			}
		}
		f := fams[base]
		if f == nil || f.typ == "" {
			addf(ln, "sample %s has no preceding # TYPE", name)
			f = fam(base)
		} else if f.typ == "histogram" && suffix == "" {
			addf(ln, "histogram %s: sample must be %s_bucket, %s_sum or %s_count", base, base, base, base)
		}
		f.samples++

		key := seriesKey(name, labels)
		if prev, dup := series[key]; dup {
			addf(ln, "duplicate series %s (first at line %d)", key, prev)
		} else {
			series[key] = ln
		}

		if suffix == "" {
			continue
		}
		le, group := "", make([]string, 0, len(labels))
		for _, kv := range labels {
			if suffix == "_bucket" && kv[0] == "le" {
				le = kv[1]
				continue
			}
			group = append(group, kv[0]+"="+kv[1])
		}
		sort.Strings(group)
		gkey := strings.Join(group, ",")
		if hists[base] == nil {
			hists[base] = map[string]*histGroup{}
		}
		g := hists[base][gkey]
		if g == nil {
			g = &histGroup{}
			hists[base][gkey] = g
			histOrder[base] = append(histOrder[base], gkey)
		}
		v := value
		switch suffix {
		case "_bucket":
			if le == "" {
				addf(ln, "%s_bucket without an le label", base)
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				addf(ln, "%s_bucket: bad le %q", base, le)
				continue
			}
			g.buckets = append(g.buckets, histBucket{bound: bound, raw: le, v: v, ln: ln})
		case "_sum":
			if g.sum != nil {
				addf(ln, "duplicate %s_sum for {%s}", base, gkey)
			}
			g.sum = &v
		case "_count":
			if g.count != nil {
				addf(ln, "duplicate %s_count for {%s}", base, gkey)
			}
			g.count = &v
		}
	}

	// Post-pass: families need HELP; histogram groups need the cumulative
	// ascending-le shape with +Inf == _count.
	families = len(famOrder)
	for _, name := range famOrder {
		f := fams[name]
		if f.samples > 0 && !f.help {
			problems = append(problems, fmt.Sprintf("family %s has samples but no HELP", name))
		}
		if f.typ != "histogram" {
			continue
		}
		for _, gkey := range histOrder[name] {
			g := hists[name][gkey]
			at := fmt.Sprintf("%s{%s}", name, gkey)
			if len(g.buckets) == 0 {
				problems = append(problems, fmt.Sprintf("%s: no buckets", at))
				continue
			}
			last := g.buckets[len(g.buckets)-1]
			if last.raw != "+Inf" {
				problems = append(problems, fmt.Sprintf("%s: last bucket le=%q, want +Inf", at, last.raw))
			}
			for i := 1; i < len(g.buckets); i++ {
				if g.buckets[i].bound <= g.buckets[i-1].bound {
					problems = append(problems, fmt.Sprintf("line %d: %s: le %q not above %q", g.buckets[i].ln, at, g.buckets[i].raw, g.buckets[i-1].raw))
				}
				if g.buckets[i].v < g.buckets[i-1].v {
					problems = append(problems, fmt.Sprintf("line %d: %s: bucket counts not cumulative (le=%q: %g < %g)", g.buckets[i].ln, at, g.buckets[i].raw, g.buckets[i].v, g.buckets[i-1].v))
				}
			}
			if g.count == nil {
				problems = append(problems, fmt.Sprintf("%s: missing _count", at))
			} else if last.raw == "+Inf" && *g.count != last.v {
				problems = append(problems, fmt.Sprintf("%s: _count %g != +Inf bucket %g", at, *g.count, last.v))
			}
			if g.sum == nil {
				problems = append(problems, fmt.Sprintf("%s: missing _sum", at))
			}
		}
	}
	return problems, families, samples
}

// seriesKey canonicalizes a sample's identity (labels sorted by name).
func seriesKey(name string, labels [][2]string) string {
	if len(labels) == 0 {
		return name
	}
	parts := make([]string, len(labels))
	for i, kv := range labels {
		parts[i] = kv[0] + "=" + strconv.Quote(kv[1])
	}
	sort.Strings(parts)
	return name + "{" + strings.Join(parts, ",") + "}"
}

// parsePromSample parses one sample line: name[{labels}] value [timestamp].
// Label values must be quoted with only the three legal escapes.
func parsePromSample(line string, ln int, addf func(int, string, ...any)) (name string, labels [][2]string, value float64, ok bool) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	name = line[:i]
	if !promMetricNameRe.MatchString(name) {
		addf(ln, "bad metric name %q", name)
		return
	}
	if i < len(line) && line[i] == '{' {
		i++
		seen := map[string]bool{}
		for {
			if i < len(line) && line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && line[j] != '=' {
				j++
			}
			if j >= len(line) {
				addf(ln, "%s: unterminated label set", name)
				return
			}
			lname := line[i:j]
			if !promLabelNameRe.MatchString(lname) {
				addf(ln, "%s: bad label name %q", name, lname)
				return
			}
			if seen[lname] {
				addf(ln, "%s: duplicate label %q", name, lname)
				return
			}
			seen[lname] = true
			j++
			if j >= len(line) || line[j] != '"' {
				addf(ln, "%s: label %s value not quoted", name, lname)
				return
			}
			j++
			var sb strings.Builder
			closed := false
			for j < len(line) {
				c := line[j]
				if c == '\\' {
					if j+1 >= len(line) {
						addf(ln, "%s: label %s: dangling escape", name, lname)
						return
					}
					switch line[j+1] {
					case '\\':
						sb.WriteByte('\\')
					case '"':
						sb.WriteByte('"')
					case 'n':
						sb.WriteByte('\n')
					default:
						addf(ln, "%s: label %s: illegal escape \\%c", name, lname, line[j+1])
						return
					}
					j += 2
					continue
				}
				if c == '"' {
					closed = true
					j++
					break
				}
				sb.WriteByte(c)
				j++
			}
			if !closed {
				addf(ln, "%s: label %s: unterminated value", name, lname)
				return
			}
			labels = append(labels, [2]string{lname, sb.String()})
			if j < len(line) && line[j] == ',' {
				i = j + 1
				continue
			}
			i = j
		}
	}
	if i >= len(line) || line[i] != ' ' {
		addf(ln, "%s: missing space before value", name)
		return
	}
	fields := strings.Fields(line[i+1:])
	if len(fields) < 1 || len(fields) > 2 {
		addf(ln, "%s: want `value [timestamp]`, got %q", name, line[i+1:])
		return
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		addf(ln, "%s: bad sample value %q", name, fields[0])
		return
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			addf(ln, "%s: bad timestamp %q", name, fields[1])
			return
		}
	}
	return name, labels, v, true
}
