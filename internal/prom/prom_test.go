package prom

import (
	"testing"

	"repro/internal/core"
	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/workloads"
)

func TestDirectorySizing(t *testing.T) {
	p := memmap.Params{N: 64, M: 1024, Mem: 4096, K: 2, Eps: 0.5, B: 4, C: 3}
	d := NewDirectory(p)
	// 4096 vars × 5 refs × 10 bits = 204800 bits.
	if d.TotalBits() != 204800 {
		t.Errorf("TotalBits = %d, want 204800", d.TotalBits())
	}
	if d.ReplicatedBits(64) != 64*204800 {
		t.Errorf("ReplicatedBits wrong")
	}
	if d.Saving(64) != 64 {
		t.Errorf("Saving = %v, want n = 64", d.Saving(64))
	}
}

func TestLookupCostCombinesSameVariable(t *testing.T) {
	d := Directory{Vars: 100, Redundancy: 5, Modules: 16, BitsPerRef: 4}
	batch := model.NewBatch(8)
	for i := range batch {
		batch[i] = model.Request{Proc: i, Op: model.OpRead, Addr: 7}
	}
	if got := d.LookupCost(batch); got != 1 {
		t.Errorf("combined lookup cost = %d, want 1", got)
	}
}

func TestLookupCostSerializesModuleCollisions(t *testing.T) {
	d := Directory{Vars: 100, Redundancy: 5, Modules: 16, BitsPerRef: 4}
	batch := model.NewBatch(3)
	// Addresses 1, 17, 33 all live at directory module 1.
	for i, a := range []int{1, 17, 33} {
		batch[i] = model.Request{Proc: i, Op: model.OpRead, Addr: a}
	}
	if got := d.LookupCost(batch); got != 3 {
		t.Errorf("colliding lookups = %d phases, want 3", got)
	}
}

func TestLookupCostIdleFree(t *testing.T) {
	d := Directory{Vars: 10, Redundancy: 3, Modules: 4, BitsPerRef: 2}
	if got := d.LookupCost(model.NewBatch(8)); got != 0 {
		t.Errorf("idle batch cost %d", got)
	}
}

func TestWrappedMachineChargesLookups(t *testing.T) {
	dm := core.NewDMMPC(32, core.Config{})
	wrapped := Wrap(dm, dm.P)
	batch := model.NewBatch(32)
	for i := 0; i < 32; i++ {
		batch[i] = model.Request{Proc: i, Op: model.OpRead, Addr: i}
	}
	inner := dm.ExecuteStep(batch)
	outer := wrapped.ExecuteStep(batch)
	if outer.Time <= inner.Time {
		t.Errorf("wrapped time %d not above inner %d", outer.Time, inner.Time)
	}
	if wrapped.LookupPhases() == 0 {
		t.Error("no lookup phases recorded")
	}
	if wrapped.Name() != dm.Name()+"+PROM" {
		t.Errorf("name = %q", wrapped.Name())
	}
}

func TestWrappedMachineSemanticsUnchanged(t *testing.T) {
	// The P-ROM only adds cost; values and memory must be untouched.
	w := workloads.PrefixSum(16, 3)
	dm := core.NewDMMPC(w.Procs, core.Config{Mode: w.Mode})
	if dm.MemSize() < w.Cells {
		t.Skip("memory too small")
	}
	wrapped := Wrap(dm, dm.P)
	if _, err := workloads.RunOn(w, wrapped); err != nil {
		t.Fatal(err)
	}
}

func TestSavingGrowsWithN(t *testing.T) {
	for _, n := range []int{64, 1024} {
		p := memmap.LemmaTwo(n, 2, 1)
		d := NewDirectory(p)
		if d.Saving(n) != float64(n) {
			t.Errorf("n=%d: saving %v", n, d.Saving(n))
		}
	}
}
