//go:build race

package prom

// raceEnabled reports that the race detector is active: the allocation
// invariants are measured without it (its instrumentation skews Mallocs).
const raceEnabled = true
