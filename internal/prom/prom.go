// Package prom implements the P-ROM of the paper's conclusion: a parallel
// READ-ONLY memory holding the memory map Γ once, shared by all
// processors, instead of each processor storing a private O(m·r·log M)-bit
// look-up table. The conclusion conjectures this "would support
// simultaneous address look-up for all processors, and thus reduce the
// total look-up table size from O(mn·log rm) to O(m·log rm) bits".
//
// The directory spreads the entries Γ(v,·) over the machine's modules
// (entry v at module v mod M). Because the data is read-only there is no
// consistency protocol: lookups for the same variable combine (a broadcast
// up/down the access tree costs nothing extra in the phase model), and the
// only cost is module contention among DISTINCT variables that collide on
// a directory module — one extra bounded phase batch per P-RAM step.
//
// Machine wraps any model.Backend and charges that lookup cost before each
// step, so every simulation in the repository can be run "table-free".
package prom

import (
	"fmt"

	"repro/internal/memmap"
	"repro/internal/model"
)

// Directory models the shared read-only map store.
type Directory struct {
	Vars       int // m
	Redundancy int // r = 2c−1 entries per variable
	Modules    int // M modules the directory is spread over
	BitsPerRef int // bits to name one module (⌈log2 M⌉)
}

// NewDirectory sizes a directory for the given map parameters.
func NewDirectory(p memmap.Params) Directory {
	bits := 1
	for 1<<bits < p.M {
		bits++
	}
	return Directory{Vars: p.Mem, Redundancy: p.R(), Modules: p.M, BitsPerRef: bits}
}

// TotalBits returns the P-ROM's size: m·r·⌈log M⌉ bits, stored once.
func (d Directory) TotalBits() int64 {
	return int64(d.Vars) * int64(d.Redundancy) * int64(d.BitsPerRef)
}

// ReplicatedBits returns the classical cost the conclusion laments: every
// one of the n processors holds a private copy of the whole table.
func (d Directory) ReplicatedBits(n int) int64 { return int64(n) * d.TotalBits() }

// Saving returns the storage ratio ReplicatedBits/TotalBits (= n).
func (d Directory) Saving(n int) float64 {
	return float64(d.ReplicatedBits(n)) / float64(d.TotalBits())
}

// homeModule places directory entry v.
func (d Directory) homeModule(v int) int { return v % d.Modules }

// LookupCost returns the phase cost of resolving the distinct variables of
// one step batch against the directory: concurrent lookups of the same
// variable combine; distinct variables colliding on a module serialize at
// one lookup per module per phase. This is the max directory-module load.
func (d Directory) LookupCost(batch model.Batch) int {
	perModule := make(map[int]map[model.Addr]bool)
	for _, r := range batch {
		if r.Op == model.OpNone {
			continue
		}
		h := d.homeModule(r.Addr)
		if perModule[h] == nil {
			perModule[h] = make(map[model.Addr]bool)
		}
		perModule[h][r.Addr] = true
	}
	maxLoad := 0
	//pram:unordered max over per-module set sizes commutes
	for _, vars := range perModule {
		if len(vars) > maxLoad {
			maxLoad = len(vars)
		}
	}
	return maxLoad
}

// Machine charges P-ROM lookups in front of an inner backend.
type Machine struct {
	inner model.Backend
	dir   Directory

	lookupPhases int64
}

// Wrap builds a table-free machine around inner using the directory sized
// by p (normally inner's own map parameters).
func Wrap(inner model.Backend, p memmap.Params) *Machine {
	return &Machine{inner: inner, dir: NewDirectory(p)}
}

// Name implements model.Backend.
func (m *Machine) Name() string { return m.inner.Name() + "+PROM" }

// MemSize implements model.Backend.
func (m *Machine) MemSize() int { return m.inner.MemSize() }

// Procs implements model.Backend.
func (m *Machine) Procs() int { return m.inner.Procs() }

// Directory returns the P-ROM sizing.
func (m *Machine) Directory() Directory { return m.dir }

// LookupPhases returns the cumulative phases spent on address lookups.
func (m *Machine) LookupPhases() int64 { return m.lookupPhases }

// ExecuteStep implements model.Backend: directory lookup phases are added
// to the inner machine's cost.
func (m *Machine) ExecuteStep(batch model.Batch) model.StepReport {
	lk := m.dir.LookupCost(batch)
	m.lookupPhases += int64(lk)
	rep := m.inner.ExecuteStep(batch)
	rep.Time += int64(lk)
	rep.Phases += lk
	return rep
}

// ReadCell implements model.Backend.
func (m *Machine) ReadCell(a model.Addr) model.Word { return m.inner.ReadCell(a) }

// LoadCells implements model.Backend.
func (m *Machine) LoadCells(base model.Addr, vals []model.Word) {
	m.inner.LoadCells(base, vals)
}

// String describes the machine.
func (m *Machine) String() string {
	return fmt.Sprintf("prom.Machine{%s, dir=%d bits}", m.inner.Name(), m.dir.TotalBits())
}
