package prom

import (
	"strings"
	"testing"
)

// fakeCollector emits a fixed family set.
type fakeCollector struct {
	descs   []Desc
	samples []Sample
}

func (f *fakeCollector) Describe(desc func(Desc)) {
	for _, d := range f.descs {
		desc(d)
	}
}

func (f *fakeCollector) Collect(emit func(Sample)) {
	for _, s := range f.samples {
		emit(s)
	}
}

// TestRegistryExposition pins the text format: HELP/TYPE once per family,
// samples sorted by label string, integer values rendered plainly.
func TestRegistryExposition(t *testing.T) {
	var r Registry
	r.Register(&fakeCollector{
		descs: []Desc{
			{Name: "serve_steps_total", Help: "steps served", Type: "counter"},
			{Name: "serve_queue_depth", Help: "queued step credits", Type: "gauge"},
		},
		samples: []Sample{
			{Name: "serve_steps_total", Labels: Label("tenant", "b"), Value: 7},
			{Name: "serve_steps_total", Labels: Label("tenant", "a"), Value: 12},
			{Name: "serve_queue_depth", Value: 2.5},
		},
	})
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP serve_steps_total steps served
# TYPE serve_steps_total counter
serve_steps_total{tenant="a"} 12
serve_steps_total{tenant="b"} 7
# HELP serve_queue_depth queued step credits
# TYPE serve_queue_depth gauge
serve_queue_depth 2.5
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRegistryUndeclaredSample pins the drift safety net: a sample whose
// family was never described still renders (as an untyped family) instead
// of silently vanishing.
func TestRegistryUndeclaredSample(t *testing.T) {
	var r Registry
	r.Register(&fakeCollector{
		descs:   []Desc{{Name: "declared_total", Help: "h", Type: "counter"}},
		samples: []Sample{{Name: "declared_total", Value: 1}, {Name: "undeclared_total", Value: 3}},
	})
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP declared_total h
# TYPE declared_total counter
declared_total 1
# TYPE undeclared_total untyped
undeclared_total 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestHelpEscaping covers the HELP-line escapes: an unescaped newline in a
// help text would split the comment mid-line and corrupt every family
// after it.
func TestHelpEscaping(t *testing.T) {
	var r Registry
	r.Register(&fakeCollector{
		descs:   []Desc{{Name: "hostile_total", Help: "line\nbreak and back\\slash", Type: "counter"}},
		samples: []Sample{{Name: "hostile_total", Value: 1}},
	})
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP hostile_total line\nbreak and back\\slash
# TYPE hostile_total counter
hostile_total 1
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestLabelEscaping covers the three escapes the format requires.
func TestLabelEscaping(t *testing.T) {
	got := Label("name", "a\"b\\c\nd")
	want := `name="a\"b\\c\nd"`
	if got != want {
		t.Errorf("Label = %s, want %s", got, want)
	}
	if got := Labels(Label("a", "1"), Label("b", "2")); got != `a="1",b="2"` {
		t.Errorf("Labels = %s", got)
	}
}
