//go:build !race

package prom

// raceEnabled reports that the race detector is active.
const raceEnabled = false
