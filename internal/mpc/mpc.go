// Package mpc implements the module parallel computer baseline: n RAM
// processors, each owning one of M = n memory modules, interconnected by
// the complete graph (Mehlhorn & Vishkin 1984). P-RAM steps are simulated
// with the deterministic majority-rule scheme of Upfal & Wigderson (1987),
// whose Lemma 1 forces the redundancy to grow as Θ(log m) — the cost the
// paper's fine-grain DMMPC eliminates.
package mpc

import (
	"fmt"

	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/quorum"
)

// Machine is an MPC running the Upfal–Wigderson simulation.
type Machine struct {
	*quorum.Machine
	P memmap.Params
}

// Config tunes machine construction.
type Config struct {
	// K is the memory-size exponent m = n^K (default 2).
	K float64
	// Mode is the P-RAM conflict convention (default CRCW-Priority).
	Mode model.Mode
	// Seed draws the memory map (default 1).
	Seed int64
}

func (c *Config) fill() {
	if c.K == 0 {
		c.K = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// New builds an n-processor MPC with Lemma 1 (Θ(log m)-redundancy)
// parameters and a seeded random memory map.
func New(n int, cfg Config) *Machine {
	cfg.fill()
	p := memmap.LemmaOne(n, cfg.K)
	mp := memmap.Generate(p, cfg.Seed)
	st := quorum.NewStore(mp)
	name := fmt.Sprintf("MPC-UW87(n=%d, m=%d, r=%d)", n, p.Mem, p.R())
	return &Machine{
		Machine: quorum.NewMachine(name, n, cfg.Mode, st, quorum.NewCompleteBipartite()),
		P:       p,
	}
}
