package mpc

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ideal"
	"repro/internal/model"
	"repro/internal/workloads"
)

func TestWorkloadSuite(t *testing.T) {
	for _, w := range workloads.All(32, 9) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			b := New(w.Procs, Config{Mode: w.Mode})
			if b.MemSize() < w.Cells {
				t.Skipf("backend memory %d < %d", b.MemSize(), w.Cells)
			}
			if _, err := workloads.RunOn(w, b); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRedundancyGrowsWithMemory(t *testing.T) {
	// UW87's Lemma 1 cost: Θ(log m) copies. Quadrupling n (so squaring…
	// no, m = n²: 16× memory) must increase r.
	small := New(64, Config{})
	large := New(1024, Config{})
	if large.Redundancy() <= small.Redundancy() {
		t.Errorf("MPC redundancy should grow: r(64)=%d, r(1024)=%d",
			small.Redundancy(), large.Redundancy())
	}
	// And it should track log m within a constant factor.
	for _, m := range []*Machine{small, large} {
		logm := math.Log2(float64(m.P.Mem))
		r := float64(m.Redundancy())
		if r < logm/3 || r > 4*logm {
			t.Errorf("r=%v not Θ(log m = %v)", r, logm)
		}
	}
}

func TestBackendEquivalenceSpot(t *testing.T) {
	const n = 16
	mp := New(n, Config{Mode: model.CRCWPriority})
	id := ideal.New(n, mp.MemSize(), model.CRCWPriority)
	rng := rand.New(rand.NewSource(3))
	for r := 0; r < 8; r++ {
		batch := model.NewBatch(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				batch[i] = model.Request{Proc: i, Op: model.OpRead, Addr: rng.Intn(50)}
			} else {
				batch[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: rng.Intn(50), Value: model.Word(rng.Intn(99))}
			}
		}
		mr := mp.ExecuteStep(batch)
		ir := id.ExecuteStep(batch)
		for p, v := range ir.Values {
			if mr.Values[p] != v {
				t.Fatalf("round %d: proc %d read %d, ideal %d", r, p, mr.Values[p], v)
			}
		}
	}
	for a := 0; a < 50; a++ {
		if mp.ReadCell(a) != id.ReadCell(a) {
			t.Fatalf("cell %d: %d vs ideal %d", a, mp.ReadCell(a), id.ReadCell(a))
		}
	}
}

func TestPermutationStepCompletes(t *testing.T) {
	const n = 256
	mp := New(n, Config{})
	perm := rand.New(rand.NewSource(1)).Perm(n)
	batch := model.NewBatch(n)
	for i := 0; i < n; i++ {
		batch[i] = model.Request{Proc: i, Op: model.OpRead, Addr: perm[i]}
	}
	rep := mp.ExecuteStep(batch)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	t.Logf("MPC n=%d permutation read: %d phases (r=%d)", n, rep.Phases, mp.Redundancy())
}
