// Package xmath provides the small integer/real helpers the analytical
// formulas of the paper need (logarithms, power fits, ceilings) so that the
// model packages do not each reimplement them.
package xmath

import "math"

// CeilDiv returns ceil(a/b) for b > 0.
func CeilDiv(a, b int) int {
	if b <= 0 {
		panic("xmath.CeilDiv: divisor must be positive")
	}
	return (a + b - 1) / b
}

// ILog2 returns floor(log2(x)) for x >= 1.
func ILog2(x int) int {
	if x < 1 {
		panic("xmath.ILog2: argument must be >= 1")
	}
	k := 0
	for x > 1 {
		x >>= 1
		k++
	}
	return k
}

// CeilLog2 returns ceil(log2(x)) for x >= 1.
func CeilLog2(x int) int {
	if x < 1 {
		panic("xmath.CeilLog2: argument must be >= 1")
	}
	if x == 1 {
		return 0
	}
	return ILog2(x-1) + 1
}

// CeilPow2 rounds x up to the next power of two (x >= 1).
func CeilPow2(x int) int {
	return 1 << CeilLog2(x)
}

// IsPow2 reports whether x is a positive power of two.
func IsPow2(x int) bool { return x > 0 && x&(x-1) == 0 }

// ISqrt returns floor(sqrt(x)) for x >= 0.
func ISqrt(x int) int {
	if x < 0 {
		panic("xmath.ISqrt: negative argument")
	}
	r := int(math.Sqrt(float64(x)))
	for r*r > x {
		r--
	}
	for (r+1)*(r+1) <= x {
		r++
	}
	return r
}

// Log2 is log base 2 for reals.
func Log2(x float64) float64 { return math.Log2(x) }

// LogLog2 returns log2(log2(x)), the paper's ubiquitous log log factor,
// clamped below at 1 to stay meaningful for small x.
func LogLog2(x float64) float64 {
	l := math.Log2(x)
	if l < 2 {
		return 1
	}
	return math.Log2(l)
}

// PowInt returns base**exp for integer exp >= 0 using binary exponentiation.
func PowInt(base int64, exp int) int64 {
	r := int64(1)
	for exp > 0 {
		if exp&1 == 1 {
			r *= base
		}
		base *= base
		exp >>= 1
	}
	return r
}

// FitRatio measures how well the series ys (indexed by xs) follows the
// growth function f by returning max/min of ys[i]/f(xs[i]). A ratio spread
// close to 1 means the measured curve has the conjectured shape. It is the
// workhorse of the asymptotic-shape checks in the experiment harness.
func FitRatio(xs []float64, ys []float64, f func(float64) float64) (lo, hi float64) {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic("xmath.FitRatio: need equal, nonempty series")
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := range xs {
		d := f(xs[i])
		if d == 0 {
			panic("xmath.FitRatio: growth function vanished")
		}
		r := ys[i] / d
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	return lo, hi
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}
