package xmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 1, 0}, {1, 1, 1}, {5, 2, 3}, {6, 2, 3}, {7, 2, 4}, {100, 7, 15},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CeilDiv(1,0) did not panic")
		}
	}()
	CeilDiv(1, 0)
}

func TestILog2AndCeilLog2(t *testing.T) {
	cases := []struct{ x, floor, ceil int }{
		{1, 0, 0}, {2, 1, 1}, {3, 1, 2}, {4, 2, 2}, {5, 2, 3},
		{1023, 9, 10}, {1024, 10, 10}, {1025, 10, 11},
	}
	for _, c := range cases {
		if got := ILog2(c.x); got != c.floor {
			t.Errorf("ILog2(%d) = %d, want %d", c.x, got, c.floor)
		}
		if got := CeilLog2(c.x); got != c.ceil {
			t.Errorf("CeilLog2(%d) = %d, want %d", c.x, got, c.ceil)
		}
	}
}

func TestCeilPow2AndIsPow2(t *testing.T) {
	if CeilPow2(1) != 1 || CeilPow2(3) != 4 || CeilPow2(4) != 4 || CeilPow2(33) != 64 {
		t.Error("CeilPow2 wrong")
	}
	for _, x := range []int{1, 2, 4, 1024} {
		if !IsPow2(x) {
			t.Errorf("IsPow2(%d) = false", x)
		}
	}
	for _, x := range []int{0, -4, 3, 12, 1023} {
		if IsPow2(x) {
			t.Errorf("IsPow2(%d) = true", x)
		}
	}
}

func TestISqrtExhaustiveSmall(t *testing.T) {
	for x := 0; x <= 10000; x++ {
		r := ISqrt(x)
		if r*r > x || (r+1)*(r+1) <= x {
			t.Fatalf("ISqrt(%d) = %d", x, r)
		}
	}
}

func TestISqrtProperty(t *testing.T) {
	f := func(v uint32) bool {
		x := int(v % 1_000_000)
		r := ISqrt(x)
		return r*r <= x && (r+1)*(r+1) > x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowInt(t *testing.T) {
	if PowInt(2, 10) != 1024 || PowInt(3, 0) != 1 || PowInt(5, 3) != 125 {
		t.Error("PowInt wrong")
	}
}

func TestLogLog2Clamp(t *testing.T) {
	if LogLog2(2) != 1 {
		t.Errorf("LogLog2(2) = %v, want clamp 1", LogLog2(2))
	}
	if got := LogLog2(65536); math.Abs(got-4) > 1e-12 {
		t.Errorf("LogLog2(65536) = %v, want 4", got)
	}
}

func TestFitRatio(t *testing.T) {
	xs := []float64{64, 256, 1024, 4096}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Log2(x) // exactly 3·log2(n)
	}
	lo, hi := FitRatio(xs, ys, math.Log2)
	if math.Abs(lo-3) > 1e-9 || math.Abs(hi-3) > 1e-9 {
		t.Errorf("FitRatio = [%v, %v], want [3,3]", lo, hi)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean = %v, want 10", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
}
