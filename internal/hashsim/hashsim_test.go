package hashsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ideal"
	"repro/internal/model"
	"repro/internal/workloads"
)

func TestWorkloadSuite(t *testing.T) {
	for _, w := range workloads.All(16, 3) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			b := New(w.Procs, Config{MemCells: w.Cells, Mode: w.Mode})
			if _, err := workloads.RunOn(w, b); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestEquivalenceWithIdeal(t *testing.T) {
	f := func(seed int64) bool {
		const n, m = 12, 64
		hm := New(n, Config{MemCells: m, Mode: model.CRCWPriority, Seed: seed})
		id := ideal.New(n, m, model.CRCWPriority)
		rng := rand.New(rand.NewSource(seed))
		for round := 0; round < 6; round++ {
			batch := model.NewBatch(n)
			for i := 0; i < n; i++ {
				switch rng.Intn(3) {
				case 0:
					batch[i] = model.Request{Proc: i, Op: model.OpRead, Addr: rng.Intn(m)}
				case 1:
					batch[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: rng.Intn(m), Value: model.Word(rng.Intn(9999))}
				}
			}
			hr := hm.ExecuteStep(batch)
			ir := id.ExecuteStep(batch)
			for p, v := range ir.Values {
				if hr.Values[p] != v {
					return false
				}
			}
		}
		for a := 0; a < m; a++ {
			if hm.ReadCell(a) != id.ReadCell(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRandomTrafficLowLoad(t *testing.T) {
	const n = 256
	hm := New(n, Config{Seed: 5})
	rng := rand.New(rand.NewSource(8))
	batch := model.NewBatch(n)
	for i := 0; i < n; i++ {
		batch[i] = model.Request{Proc: i, Op: model.OpRead, Addr: rng.Intn(hm.MemSize())}
	}
	rep := hm.ExecuteStep(batch)
	// Random balls-in-bins: expected max load ~ ln n / ln ln n ≈ 4; allow
	// generous slack but far below the adversarial n.
	if rep.ModuleContention > 20 {
		t.Errorf("random-traffic max load = %d, suspiciously high", rep.ModuleContention)
	}
}

func TestAdversarialBatchForcesSerialization(t *testing.T) {
	const n = 128
	hm := New(n, Config{Seed: 3})
	batch := AdversarialBatch(hm.Hash(), n, hm.MemSize())
	rep := hm.ExecuteStep(batch)
	// With m = n² cells over n modules, each module has ~n addresses, so
	// the adversary should fill most of the batch with one module's
	// addresses and force ~n phases.
	if rep.Phases < n/2 {
		t.Errorf("adversarial step took only %d phases, want ≥ %d", rep.Phases, n/2)
	}
	if hm.MaxLoadSeen() < n/2 {
		t.Errorf("max load %d, want ≥ %d", hm.MaxLoadSeen(), n/2)
	}
}

func TestCombiningSameAddress(t *testing.T) {
	const n = 64
	hm := New(n, Config{Seed: 1})
	batch := model.NewBatch(n)
	for i := 0; i < n; i++ {
		batch[i] = model.Request{Proc: i, Op: model.OpRead, Addr: 7}
	}
	rep := hm.ExecuteStep(batch)
	if rep.Phases != 1 {
		t.Errorf("combined concurrent reads cost %d phases, want 1", rep.Phases)
	}
}

func TestHashDeterministicPerSeed(t *testing.T) {
	h1 := NewHash(64, 9)
	h2 := NewHash(64, 9)
	for a := 0; a < 100; a++ {
		if h1.Module(a) != h2.Module(a) {
			t.Fatal("same seed, different hash")
		}
	}
}

func TestIdleStepFree(t *testing.T) {
	hm := New(4, Config{})
	rep := hm.ExecuteStep(model.NewBatch(4))
	if rep.Time != 0 {
		t.Errorf("idle step charged %d", rep.Time)
	}
}
