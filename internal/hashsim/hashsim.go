// Package hashsim implements the probabilistic baseline the deterministic
// schemes are measured against: shared addresses are scattered over the M
// memory modules by a universal hash function (Mehlhorn & Vishkin 1984;
// Karlin & Upfal 1986), with a single copy per variable (r = 1). A step
// costs as many phases as the most-loaded module receives requests.
//
// On random traffic the expected maximum load is Θ(log n / log log n) —
// fast — but the scheme is only probabilistically good: an adversary who
// knows the hash can concentrate a whole step on one module and force Θ(n)
// time, which is exactly why the paper insists on DETERMINISTIC worst-case
// guarantees. AdversarialBatch constructs such a step for the tests and
// benchmarks.
package hashsim

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/butterfly"
	"repro/internal/model"
	"repro/internal/xmath"
)

// hashP is a prime comfortably above any address space used here.
const hashP = 2147483647 // 2^31 − 1

// Hash is a universal hash h(x) = ((a·x + b) mod p) mod M.
type Hash struct {
	A, B uint64
	M    int
}

// NewHash draws a random member of the family.
func NewHash(modules int, seed int64) Hash {
	rng := rand.New(rand.NewSource(seed))
	return Hash{
		A: uint64(1 + rng.Intn(hashP-1)),
		B: uint64(rng.Intn(hashP)),
		M: modules,
	}
}

// Module returns the module an address hashes to.
func (h Hash) Module(addr model.Addr) int {
	return int((h.A*uint64(addr) + h.B) % hashP % uint64(h.M))
}

// Machine is the hashed-memory machine (model.Backend).
type Machine struct {
	n    int
	mode model.Mode
	h    Hash
	mem  model.SliceStore
	bfly *butterfly.Network // nil = abstract module-load cost model

	maxLoadSeen int
}

// Config sizes the machine.
type Config struct {
	// MemCells is m (default n²).
	MemCells int
	// Modules is M (default n, the classical MPC granularity).
	Modules int
	// Mode is the conflict convention (default CRCW-Priority).
	Mode model.Mode
	// Seed draws the hash function.
	Seed int64
	// Butterfly routes each step through an n-input butterfly network
	// with combining and constant queues (Ranade 1987) instead of the
	// abstract per-module load model — the cost becomes round-trip
	// network cycles. Requires Modules ≤ n and n a power of two.
	Butterfly bool
	// QueueCap is the butterfly's per-node queue capacity (default 4).
	QueueCap int
}

// New builds an n-processor hashed machine.
func New(n int, cfg Config) *Machine {
	if cfg.MemCells == 0 {
		cfg.MemCells = n * n
	}
	if cfg.Modules == 0 {
		cfg.Modules = n
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	m := &Machine{
		n:    n,
		mode: cfg.Mode,
		h:    NewHash(cfg.Modules, cfg.Seed),
		mem:  make(model.SliceStore, cfg.MemCells),
	}
	if cfg.Butterfly {
		if !xmath.IsPow2(n) {
			panic(fmt.Sprintf("hashsim: butterfly needs n=%d to be a power of two", n))
		}
		if cfg.Modules > n {
			panic("hashsim: butterfly places modules on the n outputs; need Modules <= n")
		}
		m.bfly = butterfly.New(n, cfg.QueueCap)
	}
	return m
}

// Name implements model.Backend.
func (mc *Machine) Name() string {
	return fmt.Sprintf("hashed(n=%d, M=%d, r=1)", mc.n, mc.h.M)
}

// MemSize implements model.Backend.
func (mc *Machine) MemSize() int { return len(mc.mem) }

// Procs implements model.Backend.
func (mc *Machine) Procs() int { return mc.n }

// Hash exposes the machine's hash function (the adversary needs it).
func (mc *Machine) Hash() Hash { return mc.h }

// MaxLoadSeen returns the worst per-module load over all executed steps.
func (mc *Machine) MaxLoadSeen() int { return mc.maxLoadSeen }

// ExecuteStep implements model.Backend: semantics are exact; the charged
// time is the maximum number of distinct-variable requests landing on one
// module (modules serve one request per phase; concurrent accesses to the
// SAME variable combine, as in Ranade-style emulations).
func (mc *Machine) ExecuteStep(batch model.Batch) model.StepReport {
	vals, err := model.ResolveStep(mc.mem, batch, mc.mode)
	perModule := make(map[int]map[model.Addr]bool)
	for _, r := range batch {
		if r.Op == model.OpNone {
			continue
		}
		mod := mc.h.Module(r.Addr)
		if perModule[mod] == nil {
			perModule[mod] = make(map[model.Addr]bool)
		}
		perModule[mod][r.Addr] = true
	}
	maxLoad := 0
	var accesses int64
	//pram:unordered sum and max over per-module set sizes commute
	for _, vars := range perModule {
		accesses += int64(len(vars))
		if len(vars) > maxLoad {
			maxLoad = len(vars)
		}
	}
	if maxLoad > mc.maxLoadSeen {
		mc.maxLoadSeen = maxLoad
	}
	t := int64(maxLoad)
	if batch.Active() > 0 && t == 0 {
		t = 1
	}
	rep := model.StepReport{
		Values:           vals,
		Time:             t,
		Phases:           maxLoad,
		CopyAccesses:     accesses,
		ModuleContention: maxLoad,
		Err:              err,
	}
	if mc.bfly != nil {
		// Physical cost: route the step's requests through the
		// butterfly (one packet per requesting processor; in-network
		// combining absorbs concurrent same-address traffic). Replies
		// retrace the path: double the one-way makespan.
		var pkts []butterfly.Packet
		for _, r := range batch {
			if r.Op == model.OpNone {
				continue
			}
			pkts = append(pkts, butterfly.Packet{
				Src:  r.Proc,
				Dst:  mc.h.Module(r.Addr),
				Addr: r.Addr,
			})
		}
		cycles := 2 * mc.bfly.RouteBatch(pkts)
		rep.Time = cycles
		rep.NetworkCycles = cycles
	}
	return rep
}

// ReadCell implements model.Backend.
func (mc *Machine) ReadCell(a model.Addr) model.Word { return mc.mem[a] }

// LoadCells implements model.Backend.
func (mc *Machine) LoadCells(base model.Addr, vals []model.Word) {
	copy(mc.mem[base:], vals)
}

// AdversarialBatch returns a read step whose n addresses all hash to the
// same module — the worst case that deterministic simulation is designed
// to survive and hashing is not. It scans the address space for the most
// popular module and returns min(n, found) colliding addresses.
func AdversarialBatch(h Hash, n, memCells int) model.Batch {
	byModule := make(map[int][]model.Addr)
	for a := 0; a < memCells; a++ {
		mod := h.Module(a)
		byModule[mod] = append(byModule[mod], a)
	}
	best := -1
	//pram:unordered argmax by (len, lowest mod): the tie-break makes the winner order-free
	for mod, addrs := range byModule {
		if best == -1 || len(addrs) > len(byModule[best]) {
			best = mod
		} else if len(addrs) == len(byModule[best]) && mod < best {
			best = mod
		}
	}
	addrs := byModule[best]
	sort.Ints(addrs)
	batch := model.NewBatch(n)
	for i := 0; i < n && i < len(addrs); i++ {
		batch[i] = model.Request{Proc: i, Op: model.OpRead, Addr: addrs[i]}
	}
	return batch
}
