package hashsim

import (
	"math/rand"
	"testing"

	"repro/internal/ideal"
	"repro/internal/model"
	"repro/internal/workloads"
)

func TestButterflyMachineSemantics(t *testing.T) {
	const n, m = 16, 256
	hm := New(n, Config{MemCells: m, Mode: model.CRCWPriority, Butterfly: true})
	id := ideal.New(n, m, model.CRCWPriority)
	rng := rand.New(rand.NewSource(6))
	for round := 0; round < 8; round++ {
		batch := model.NewBatch(n)
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				batch[i] = model.Request{Proc: i, Op: model.OpRead, Addr: rng.Intn(m)}
			case 1:
				batch[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: rng.Intn(m), Value: model.Word(rng.Intn(500))}
			}
		}
		hr := hm.ExecuteStep(batch)
		ir := id.ExecuteStep(batch)
		for p, v := range ir.Values {
			if hr.Values[p] != v {
				t.Fatalf("round %d proc %d: %d vs ideal %d", round, p, hr.Values[p], v)
			}
		}
		if batch.Active() > 0 && hr.NetworkCycles == 0 {
			t.Error("butterfly machine charged no cycles")
		}
	}
	for a := 0; a < m; a++ {
		if hm.ReadCell(a) != id.ReadCell(a) {
			t.Fatalf("cell %d diverged", a)
		}
	}
}

func TestButterflyAdversarialSlower(t *testing.T) {
	const n = 64
	hm := New(n, Config{Seed: 3, Butterfly: true})
	rng := rand.New(rand.NewSource(8))
	random := model.NewBatch(n)
	for i := 0; i < n; i++ {
		random[i] = model.Request{Proc: i, Op: model.OpRead, Addr: rng.Intn(hm.MemSize())}
	}
	rRnd := hm.ExecuteStep(random)
	adv := AdversarialBatch(hm.Hash(), n, hm.MemSize())
	rAdv := hm.ExecuteStep(adv)
	if rAdv.NetworkCycles <= 2*rRnd.NetworkCycles {
		t.Errorf("adversarial step (%d cycles) not clearly slower than random (%d)",
			rAdv.NetworkCycles, rRnd.NetworkCycles)
	}
	t.Logf("random=%d cycles, adversarial=%d cycles", rRnd.NetworkCycles, rAdv.NetworkCycles)
}

func TestButterflyHotSpotCombines(t *testing.T) {
	// Same-address concurrent reads combine in the network: cheap even
	// though they all target one module.
	const n = 64
	hm := New(n, Config{Seed: 3, Butterfly: true})
	batch := model.NewBatch(n)
	for i := 0; i < n; i++ {
		batch[i] = model.Request{Proc: i, Op: model.OpRead, Addr: 7}
	}
	rep := hm.ExecuteStep(batch)
	// Combined traffic routes in near-latency time, far below n.
	if rep.NetworkCycles > int64(8*6+16) {
		t.Errorf("combined hot spot cost %d cycles", rep.NetworkCycles)
	}
}

func TestButterflyWorkload(t *testing.T) {
	w := workloads.PrefixSum(16, 3)
	hm := New(w.Procs, Config{MemCells: w.Cells, Mode: w.Mode, Butterfly: true})
	if _, err := workloads.RunOn(w, hm); err != nil {
		t.Fatal(err)
	}
}

func TestButterflyConfigValidation(t *testing.T) {
	for _, tc := range []struct {
		n   int
		cfg Config
	}{
		{12, Config{Butterfly: true}},              // not a power of two
		{16, Config{Butterfly: true, Modules: 32}}, // modules > n
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("n=%d cfg=%+v did not panic", tc.n, tc.cfg)
				}
			}()
			New(tc.n, tc.cfg)
		}()
	}
}
