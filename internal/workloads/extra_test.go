package workloads

import (
	"testing"

	"repro/internal/model"
)

func TestOddEvenSortSorts(t *testing.T) {
	for _, n := range []int{2, 8, 16, 33} {
		w := OddEvenSort(n, 5)
		if _, err := RunOn(w, idealFor(w)); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestOddEvenSortDescendingInput(t *testing.T) {
	const n = 16
	w := OddEvenSort(n, 5)
	desc := make([]model.Word, n)
	for i := range desc {
		desc[i] = model.Word(n - i)
	}
	w.Setup = func(b model.Backend) { b.LoadCells(0, desc) }
	if _, err := RunOn(w, idealFor(w)); err != nil {
		t.Fatal(err)
	}
}

func TestCRCWMaxFindsMax(t *testing.T) {
	for _, n := range []int{2, 8, 17} {
		w := CRCWMax(n, 7)
		if _, err := RunOn(w, idealFor(w)); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestCRCWMaxWithTies(t *testing.T) {
	const n = 8
	w := CRCWMax(n, 7)
	same := make([]model.Word, n)
	for i := range same {
		same[i] = 42
	}
	w.Setup = func(b model.Backend) { b.LoadCells(0, same) }
	w.Verify = func(b model.Backend) error {
		if got := b.ReadCell(2 * n); got != 42 {
			t.Errorf("max of ties = %d, want 42", got)
		}
		return nil
	}
	if _, err := RunOn(w, idealFor(w)); err != nil {
		t.Fatal(err)
	}
}

func TestButterflyAllReduce(t *testing.T) {
	for _, n := range []int{2, 4, 16, 64} {
		w := Butterfly(n, 3)
		if _, err := RunOn(w, idealFor(w)); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestButterflyStepCount(t *testing.T) {
	// log2(16) = 4 rounds × 3 steps, plus 2 normalize steps (even rounds →
	// no normalize; 4 rounds is even so result already in [0,n)).
	w := Butterfly(16, 3)
	rep, err := RunOn(w, idealFor(w))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 12 {
		t.Errorf("steps = %d, want 12", rep.Steps)
	}
}

func TestTransposeCorrect(t *testing.T) {
	for _, s := range []int{2, 4, 8} {
		w := Transpose(s, 9)
		if _, err := RunOn(w, idealFor(w)); err != nil {
			t.Errorf("s=%d: %v", s, err)
		}
	}
}

func TestTransposeIsEREWClean(t *testing.T) {
	w := Transpose(4, 9)
	rep, err := RunOn(w, idealFor(w))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("transpose violated EREW: %v", rep.Violations[0])
	}
}

func TestAllIncludesExtras(t *testing.T) {
	names := map[string]bool{}
	for _, w := range All(16, 1) {
		names[w.Name] = true
	}
	for _, want := range []string{"oddevensort(n=16)", "butterfly(n=16)",
		"crcwmax(n=16)", "transpose(4x4)"} {
		if !names[want] {
			t.Errorf("All() missing %s (have %v)", want, names)
		}
	}
}
