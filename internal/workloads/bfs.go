package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/machine"
	"repro/internal/model"
)

// BFS performs level-synchronous breadth-first search on a random
// undirected graph with one processor per vertex — the canonical irregular
// CRCW P-RAM workload: every frontier vertex writes the next level into
// all unvisited neighbors simultaneously, with write conflicts resolved by
// the machine (any winner is correct, so CRCW-Priority serves).
//
// Shared layout: [0,n) levels (−1 = unvisited), [n, n+1) "changed" flag,
// [n+1, n+1+n*deg) adjacency lists (vertex v's neighbors at n+1+v*deg,
// padded with −1).
func BFS(n, deg int, seed int64) Workload {
	if deg >= n {
		deg = n - 1
	}
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]int, n)
	addEdge := func(a, b int) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	// A random connected graph: a spanning path plus random extra edges,
	// capped at deg entries per vertex.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		addEdge(perm[i-1], perm[i])
	}
	for tries := 0; tries < n*deg/2; tries++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b && len(adj[a]) < deg && len(adj[b]) < deg {
			addEdge(a, b)
		}
	}
	for v := range adj {
		if len(adj[v]) > deg {
			adj[v] = adj[v][:deg]
		}
	}
	// Serial BFS for the oracle (on the possibly trimmed graph, which may
	// be disconnected; unreachable stays −1).
	want := make([]model.Word, n)
	for i := range want {
		want[i] = -1
	}
	want[0] = 0
	queue := []int{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj[v] {
			if want[u] == -1 {
				want[u] = want[v] + 1
				queue = append(queue, u)
			}
		}
	}
	maxLevel := model.Word(0)
	for _, l := range want {
		if l > maxLevel {
			maxLevel = l
		}
	}

	flagAddr := n
	adjBase := n + 1
	cells := adjBase + n*deg
	flat := make([]model.Word, n*deg)
	for v := 0; v < n; v++ {
		for j := 0; j < deg; j++ {
			if j < len(adj[v]) {
				flat[v*deg+j] = model.Word(adj[v][j])
			} else {
				flat[v*deg+j] = -1
			}
		}
	}
	levels := make([]model.Word, n)
	for i := range levels {
		levels[i] = -1
	}
	levels[0] = 0
	rounds := int(maxLevel) + 1

	return Workload{
		Name:  fmt.Sprintf("bfs(n=%d,deg=%d)", n, deg),
		Procs: n,
		Cells: cells,
		Mode:  model.CRCWPriority,
		Setup: func(b model.Backend) {
			b.LoadCells(0, levels)
			b.LoadCells(adjBase, flat)
		},
		Program: func(id int) machine.Program {
			return func(p *machine.Proc) {
				// Every branch consumes exactly the same number of P-RAM
				// steps (3 per neighbor slot), keeping the level-
				// synchronous rounds truly synchronous across processors.
				for round := 0; round < rounds; round++ {
					lvl := p.Read(id)
					onFrontier := lvl == model.Word(round)
					for j := 0; j < deg; j++ {
						nb := p.Read(adjBase + id*deg + j)
						active := onFrontier && nb >= 0
						nl := model.Word(-2)
						if active {
							nl = p.Read(int(nb))
						} else {
							p.Sync()
						}
						if active && nl == -1 {
							p.Write(int(nb), model.Word(round+1))
						} else {
							p.Sync()
						}
					}
				}
				_ = flagAddr
			}
		},
		Verify: func(b model.Backend) error {
			for v := 0; v < n; v++ {
				if got := b.ReadCell(v); got != want[v] {
					return fmt.Errorf("level[%d] = %d, want %d", v, got, want[v])
				}
			}
			return nil
		},
	}
}
