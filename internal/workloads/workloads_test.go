package workloads

import (
	"testing"

	"repro/internal/ideal"
	"repro/internal/model"
)

// idealFor builds an ideal P-RAM big enough for w, in w's conflict mode.
func idealFor(w Workload) model.Backend {
	return ideal.New(w.Procs, w.Cells, w.Mode)
}

func TestAllWorkloadsVerifyOnIdeal(t *testing.T) {
	for _, w := range All(32, 42) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			rep, err := RunOn(w, idealFor(w))
			if err != nil {
				t.Fatal(err)
			}
			if rep.Steps == 0 {
				t.Error("no steps executed")
			}
		})
	}
}

func TestWorkloadsRespectDeclaredMode(t *testing.T) {
	// Running each workload under its own declared (weakest) mode must not
	// produce conflict violations; that is what Mode documents.
	for _, w := range All(16, 7) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			rep, err := RunOn(w, idealFor(w))
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Violations) != 0 {
				t.Errorf("declared mode %v violated: %v", w.Mode, rep.Violations[0])
			}
		})
	}
}

func TestTreeSumSteps(t *testing.T) {
	w := TreeSum(64, 1)
	rep, err := RunOn(w, idealFor(w))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 3*6 { // log2(64) rounds × 3 steps
		t.Errorf("steps = %d, want 18", rep.Steps)
	}
}

func TestPrefixSumNonPowerSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 17, 33} {
		w := PrefixSum(n, 3)
		if _, err := RunOn(w, idealFor(w)); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestBitonicSortSortsAdversarialInput(t *testing.T) {
	// Descending input is the classical worst case for partially verified
	// sorters.
	w := BitonicSort(32, 5)
	desc := make([]model.Word, 32)
	for i := range desc {
		desc[i] = model.Word(32 - i)
	}
	w.Setup = func(b model.Backend) { b.LoadCells(0, desc) }
	if _, err := RunOn(w, idealFor(w)); err != nil {
		t.Fatal(err)
	}
}

func TestListRankSmallSizes(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		w := ListRank(n, 11)
		if _, err := RunOn(w, idealFor(w)); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestMatVecRectangular(t *testing.T) {
	w := MatVec(8, 16, 2)
	if _, err := RunOn(w, idealFor(w)); err != nil {
		t.Fatal(err)
	}
}

func TestRunOnRejectsUndersizedBackend(t *testing.T) {
	w := TreeSum(32, 1)
	if _, err := RunOn(w, ideal.New(4, 1024, model.EREW)); err == nil {
		t.Error("undersized processor count accepted")
	}
	if _, err := RunOn(w, ideal.New(32, 4, model.EREW)); err == nil {
		t.Error("undersized memory accepted")
	}
}

func TestVerifyCatchesWrongOutput(t *testing.T) {
	// Run the real program, then corrupt memory and re-verify: the oracle
	// must notice.
	w := Broadcast(8, 55)
	b := idealFor(w)
	if _, err := RunOn(w, b); err != nil {
		t.Fatal(err)
	}
	b.LoadCells(3, []model.Word{0})
	if err := w.Verify(b); err == nil {
		t.Error("verification passed on corrupted memory")
	}
}

func TestRandomAccessRuns(t *testing.T) {
	w := RandomAccess(8, 64, 5, 1)
	rep, err := RunOn(w, idealFor(w))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 5 {
		t.Errorf("steps = %d, want 5", rep.Steps)
	}
}
