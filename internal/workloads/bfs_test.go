package workloads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

func TestBFSOnIdeal(t *testing.T) {
	for _, tc := range []struct{ n, deg int }{{8, 3}, {16, 4}, {32, 4}, {64, 6}} {
		w := BFS(tc.n, tc.deg, 11)
		if _, err := RunOn(w, idealFor(w)); err != nil {
			t.Errorf("n=%d deg=%d: %v", tc.n, tc.deg, err)
		}
	}
}

func TestBFSOnDMMPC(t *testing.T) {
	w := BFS(16, 3, 5)
	b := core.NewDMMPC(w.Procs, core.Config{Mode: w.Mode})
	if b.MemSize() < w.Cells {
		t.Skipf("memory %d < %d", b.MemSize(), w.Cells)
	}
	if _, err := RunOn(w, b); err != nil {
		t.Fatal(err)
	}
}

func TestBFSSourceLevelZero(t *testing.T) {
	w := BFS(16, 3, 7)
	b := idealFor(w)
	if _, err := RunOn(w, b); err != nil {
		t.Fatal(err)
	}
	if b.ReadCell(0) != 0 {
		t.Errorf("source level = %d, want 0", b.ReadCell(0))
	}
	// Levels are either -1 (unreached) or nonnegative and at most n.
	for v := 0; v < 16; v++ {
		l := b.ReadCell(v)
		if l < -1 || l > 16 {
			t.Errorf("level[%d] = %d out of range", v, l)
		}
	}
}

func TestBFSDegreeClamped(t *testing.T) {
	// deg >= n must not explode.
	w := BFS(8, 100, 3)
	if _, err := RunOn(w, idealFor(w)); err != nil {
		t.Fatal(err)
	}
	_ = model.Word(0)
}
