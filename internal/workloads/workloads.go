// Package workloads provides the library of P-RAM programs used by the
// examples, the integration tests and the benchmark harness: the classical
// shared-memory kernels the P-RAM literature (and the paper's introduction)
// motivates — parallel reduction, prefix sums, broadcast, list ranking by
// pointer jumping, bitonic sorting, matrix–vector products — plus synthetic
// access patterns (permutation, hot-spot, random) that stress the
// simulations' contention handling.
//
// A Workload bundles processor/memory sizing, input setup, the per-
// processor program and a verification oracle, so any workload can be run
// and checked on any model.Backend.
package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/machine"
	"repro/internal/model"
)

// Workload is a self-verifying P-RAM program.
type Workload struct {
	Name  string
	Procs int
	Cells int
	Mode  model.Mode // weakest conflict convention the program needs

	// Setup loads the input into shared memory.
	Setup func(b model.Backend)
	// Program returns processor id's code.
	Program func(id int) machine.Program
	// Verify checks the output left in shared memory.
	Verify func(b model.Backend) error
}

// RunOn executes the workload on a backend and verifies the result.
// The backend must have been built with at least w.Procs processors and
// w.Cells cells.
func RunOn(w Workload, b model.Backend) (*machine.RunReport, error) {
	if b.Procs() < w.Procs {
		return nil, fmt.Errorf("workload %s needs %d processors, backend has %d", w.Name, w.Procs, b.Procs())
	}
	if b.MemSize() < w.Cells {
		return nil, fmt.Errorf("workload %s needs %d cells, backend has %d", w.Name, w.Cells, b.MemSize())
	}
	if w.Setup != nil {
		w.Setup(b)
	}
	m := machine.New(b)
	rep := m.RunEach(func(id int) machine.Program {
		if id < w.Procs {
			return w.Program(id)
		}
		return func(*machine.Proc) {} // surplus processors halt immediately
	})
	if err := rep.Err(); err != nil {
		return rep, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	if w.Verify != nil {
		if err := w.Verify(b); err != nil {
			return rep, fmt.Errorf("workload %s: %w", w.Name, err)
		}
	}
	return rep, nil
}

// TreeSum reduces n inputs (cells [0,n)) into cell 0 by a balanced binary
// tree: the canonical O(log n) EREW reduction.
func TreeSum(n int, seed int64) Workload {
	input := randWords(n, seed, 1000)
	var want model.Word
	for _, v := range input {
		want += v
	}
	return Workload{
		Name:  fmt.Sprintf("treesum(n=%d)", n),
		Procs: n,
		Cells: n,
		Mode:  model.EREW,
		Setup: func(b model.Backend) { b.LoadCells(0, input) },
		Program: func(id int) machine.Program {
			return func(p *machine.Proc) {
				for stride := 1; stride < n; stride *= 2 {
					if id%(2*stride) == 0 && id+stride < n {
						a := p.Read(id)
						c := p.Read(id + stride)
						p.Write(id, a+c)
					} else {
						p.Sync()
						p.Sync()
						p.Sync()
					}
				}
			}
		},
		Verify: func(b model.Backend) error {
			if got := b.ReadCell(0); got != want {
				return fmt.Errorf("sum = %d, want %d", got, want)
			}
			return nil
		},
	}
}

// PrefixSum computes inclusive prefix sums of n inputs by Hillis–Steele
// doubling with two buffers: cells [0,n) input/ping, [n,2n) pong. Needs
// CREW (cell i is read by processors i and i+stride in the same step).
func PrefixSum(n int, seed int64) Workload {
	input := randWords(n, seed, 1000)
	want := make([]model.Word, n)
	acc := model.Word(0)
	for i, v := range input {
		acc += v
		want[i] = acc
	}
	rounds := 0
	for s := 1; s < n; s *= 2 {
		rounds++
	}
	return Workload{
		Name:  fmt.Sprintf("prefixsum(n=%d)", n),
		Procs: n,
		Cells: 2 * n,
		Mode:  model.CREW,
		Setup: func(b model.Backend) { b.LoadCells(0, input) },
		Program: func(id int) machine.Program {
			return func(p *machine.Proc) {
				src, dst := 0, n
				for stride := 1; stride < n; stride *= 2 {
					v := p.Read(src + id)
					if id >= stride {
						v += p.Read(src + id - stride)
					} else {
						p.Sync()
					}
					p.Write(dst+id, v)
					src, dst = dst, src
				}
				// Normalize: result into cells [0,n) if it ended in pong.
				if rounds%2 == 1 {
					v := p.Read(n + id)
					p.Write(id, v)
				}
			}
		},
		Verify: func(b model.Backend) error {
			for i := 0; i < n; i++ {
				if got := b.ReadCell(i); got != want[i] {
					return fmt.Errorf("prefix[%d] = %d, want %d", i, got, want[i])
				}
			}
			return nil
		},
	}
}

// Broadcast distributes the value in cell 0 to cells [0,n) by recursive
// doubling — the EREW way to simulate a concurrent read.
func Broadcast(n int, value model.Word) Workload {
	return Workload{
		Name:  fmt.Sprintf("broadcast(n=%d)", n),
		Procs: n,
		Cells: n,
		Mode:  model.EREW,
		Setup: func(b model.Backend) { b.LoadCells(0, []model.Word{value}) },
		Program: func(id int) machine.Program {
			return func(p *machine.Proc) {
				for have := 1; have < n; have *= 2 {
					if id >= have && id < 2*have && id < n {
						v := p.Read(id - have)
						p.Write(id, v)
					} else {
						p.Sync()
						p.Sync()
					}
				}
			}
		},
		Verify: func(b model.Backend) error {
			for i := 0; i < n; i++ {
				if got := b.ReadCell(i); got != value {
					return fmt.Errorf("cell %d = %d, want %d", i, got, value)
				}
			}
			return nil
		},
	}
}

// ListRank ranks a random singly-linked list of n nodes by pointer jumping
// (Wyllie): cells [0,n) hold next pointers (self-loop at the tail), cells
// [n,2n) hold the accumulating rank (distance to tail). CREW: converged
// pointers are read concurrently.
func ListRank(n int, seed int64) Workload {
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	// perm defines list order: perm[0] is head, perm[n-1] is tail.
	next := make([]model.Word, n)
	wantRank := make([]model.Word, n)
	for i := 0; i < n-1; i++ {
		next[perm[i]] = model.Word(perm[i+1])
	}
	next[perm[n-1]] = model.Word(perm[n-1]) // tail self-loop
	for i := 0; i < n; i++ {
		wantRank[perm[i]] = model.Word(n - 1 - i)
	}
	initRank := make([]model.Word, n)
	for i := range initRank {
		if next[i] != model.Word(i) {
			initRank[i] = 1
		}
	}
	rounds := 0
	for s := 1; s < n; s *= 2 {
		rounds++
	}
	return Workload{
		Name:  fmt.Sprintf("listrank(n=%d)", n),
		Procs: n,
		Cells: 2 * n,
		Mode:  model.CREW,
		Setup: func(b model.Backend) {
			b.LoadCells(0, next)
			b.LoadCells(n, initRank)
		},
		Program: func(id int) machine.Program {
			return func(p *machine.Proc) {
				for r := 0; r < rounds; r++ {
					nx := p.Read(id)
					rk := p.Read(n + id)
					nrk := p.Read(n + int(nx))
					nnx := p.Read(int(nx))
					if int(nx) != id {
						p.Write(n+id, rk+nrk)
						p.Write(id, nnx)
					} else {
						p.Sync()
						p.Sync()
					}
				}
			}
		},
		Verify: func(b model.Backend) error {
			for i := 0; i < n; i++ {
				if got := b.ReadCell(n + i); got != wantRank[i] {
					return fmt.Errorf("rank[%d] = %d, want %d", i, got, wantRank[i])
				}
			}
			return nil
		},
	}
}

// BitonicSort sorts n = 2^k random words in cells [0,n) with Batcher's
// bitonic network: O(log²n) compare-exchange rounds, EREW (each round
// touches disjoint pairs, the lower partner doing the work).
func BitonicSort(n int, seed int64) Workload {
	input := randWords(n, seed, 1<<30)
	return Workload{
		Name:  fmt.Sprintf("bitonicsort(n=%d)", n),
		Procs: n,
		Cells: n,
		Mode:  model.EREW,
		Setup: func(b model.Backend) { b.LoadCells(0, input) },
		Program: func(id int) machine.Program {
			return func(p *machine.Proc) {
				for k := 2; k <= n; k *= 2 {
					for j := k / 2; j > 0; j /= 2 {
						partner := id ^ j
						if partner > id {
							ascending := id&k == 0
							a := p.Read(id)
							c := p.Read(partner)
							if (a > c) == ascending {
								p.Write(id, c)
								p.Write(partner, a)
							} else {
								p.Sync()
								p.Sync()
							}
						} else {
							p.Sync()
							p.Sync()
							p.Sync()
							p.Sync()
						}
					}
				}
			}
		},
		Verify: func(b model.Backend) error {
			prev := b.ReadCell(0)
			for i := 1; i < n; i++ {
				cur := b.ReadCell(i)
				if cur < prev {
					return fmt.Errorf("not sorted at %d: %d > %d", i, prev, cur)
				}
				prev = cur
			}
			return nil
		},
	}
}

// MatVec multiplies a rows×cols matrix by a vector with one processor per
// row — the workload the 2DMOT was originally proposed for (Nath et al.
// 1983). Layout: A row-major at 0, x at rows·cols, y at rows·cols+cols.
// CREW: every processor reads each x[j].
func MatVec(rows, cols int, seed int64) Workload {
	a := randWords(rows*cols, seed, 100)
	x := randWords(cols, seed+1, 100)
	want := make([]model.Word, rows)
	for i := 0; i < rows; i++ {
		var s model.Word
		for j := 0; j < cols; j++ {
			s += a[i*cols+j] * x[j]
		}
		want[i] = s
	}
	xBase := rows * cols
	yBase := xBase + cols
	return Workload{
		Name:  fmt.Sprintf("matvec(%dx%d)", rows, cols),
		Procs: rows,
		Cells: rows*cols + cols + rows,
		Mode:  model.CREW,
		Setup: func(b model.Backend) {
			b.LoadCells(0, a)
			b.LoadCells(xBase, x)
		},
		Program: func(id int) machine.Program {
			return func(p *machine.Proc) {
				var s model.Word
				for j := 0; j < cols; j++ {
					aij := p.Read(id*cols + j)
					xj := p.Read(xBase + j)
					s += aij * xj
				}
				p.Write(yBase+id, s)
			}
		},
		Verify: func(b model.Backend) error {
			for i := 0; i < rows; i++ {
				if got := b.ReadCell(yBase + i); got != want[i] {
					return fmt.Errorf("y[%d] = %d, want %d", i, got, want[i])
				}
			}
			return nil
		},
	}
}

// Permutation routes: processor i reads cell π(i) and writes the value to
// cell n+i. EREW (π is a permutation), the paper's canonical "arbitrary
// P-RAM step".
func Permutation(n int, seed int64) Workload {
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	input := randWords(n, seed+7, 1<<20)
	return Workload{
		Name:  fmt.Sprintf("permutation(n=%d)", n),
		Procs: n,
		Cells: 2 * n,
		Mode:  model.EREW,
		Setup: func(b model.Backend) { b.LoadCells(0, input) },
		Program: func(id int) machine.Program {
			return func(p *machine.Proc) {
				v := p.Read(perm[id])
				p.Write(n+id, v)
			}
		},
		Verify: func(b model.Backend) error {
			for i := 0; i < n; i++ {
				if got := b.ReadCell(n + i); got != input[perm[i]] {
					return fmt.Errorf("out[%d] = %d, want %d", i, got, input[perm[i]])
				}
			}
			return nil
		},
	}
}

// HotSpot makes every processor read cell 0 simultaneously (a concurrent-
// read storm) and then write its own cell. CRCW/CREW stress test for the
// combining logic of the simulations.
func HotSpot(n int) Workload {
	return Workload{
		Name:  fmt.Sprintf("hotspot(n=%d)", n),
		Procs: n,
		Cells: n + 1,
		Mode:  model.CREW,
		Setup: func(b model.Backend) { b.LoadCells(0, []model.Word{123}) },
		Program: func(id int) machine.Program {
			return func(p *machine.Proc) {
				v := p.Read(0)
				p.Write(1+id, v*2)
			}
		},
		Verify: func(b model.Backend) error {
			for i := 0; i < n; i++ {
				if got := b.ReadCell(1 + i); got != 246 {
					return fmt.Errorf("cell %d = %d, want 246", 1+i, got)
				}
			}
			return nil
		},
	}
}

// RandomAccess has each processor perform `rounds` uniformly random reads
// and writes over m cells under CRCW-Priority — the unstructured traffic
// used for backend-equivalence property tests.
func RandomAccess(n, m, rounds int, seed int64) Workload {
	return Workload{
		Name:  fmt.Sprintf("randomaccess(n=%d,m=%d,rounds=%d)", n, m, rounds),
		Procs: n,
		Cells: m,
		Mode:  model.CRCWPriority,
		Program: func(id int) machine.Program {
			return func(p *machine.Proc) {
				rng := rand.New(rand.NewSource(seed + int64(id)*7919))
				for r := 0; r < rounds; r++ {
					if rng.Intn(2) == 0 {
						p.Read(rng.Intn(m))
					} else {
						p.Write(rng.Intn(m), model.Word(rng.Intn(1<<16)))
					}
				}
			}
		},
	}
}

// All returns the standard self-verifying suite at size n (a power of two).
func All(n int, seed int64) []Workload {
	ws := []Workload{
		TreeSum(n, seed),
		PrefixSum(n, seed),
		Broadcast(n, 99),
		ListRank(n, seed),
		BitonicSort(n, seed),
		MatVec(n, 8, seed),
		Permutation(n, seed),
		HotSpot(n),
		OddEvenSort(n, seed),
		Butterfly(n, seed),
		CRCWMax(n, seed),
	}
	if s := isqrt(n); s*s == n {
		ws = append(ws, Transpose(s, seed))
	}
	return ws
}

// isqrt returns floor(sqrt(x)) for small x.
func isqrt(x int) int {
	s := 0
	for (s+1)*(s+1) <= x {
		s++
	}
	return s
}

// randWords returns n deterministic pseudo-random words in [0, limit).
func randWords(n int, seed int64, limit int64) []model.Word {
	rng := rand.New(rand.NewSource(seed))
	out := make([]model.Word, n)
	for i := range out {
		out[i] = model.Word(rng.Int63n(limit))
	}
	return out
}
