package workloads

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/model"
)

// OddEvenSort sorts n keys with odd–even transposition: n rounds of
// disjoint compare-exchanges, EREW, O(n) steps — the classical mesh-
// friendly sorter, a useful contrast to bitonic's O(log²n) rounds.
func OddEvenSort(n int, seed int64) Workload {
	input := randWords(n, seed, 1<<30)
	return Workload{
		Name:  fmt.Sprintf("oddevensort(n=%d)", n),
		Procs: n,
		Cells: n,
		Mode:  model.EREW,
		Setup: func(b model.Backend) { b.LoadCells(0, input) },
		Program: func(id int) machine.Program {
			return func(p *machine.Proc) {
				for round := 0; round < n; round++ {
					start := round % 2
					if id%2 == start && id+1 < n {
						a := p.Read(id)
						c := p.Read(id + 1)
						if a > c {
							p.Write(id, c)
							p.Write(id+1, a)
						} else {
							p.Sync()
							p.Sync()
						}
					} else {
						p.Sync()
						p.Sync()
						p.Sync()
						p.Sync()
					}
				}
			}
		},
		Verify: func(b model.Backend) error {
			prev := b.ReadCell(0)
			for i := 1; i < n; i++ {
				cur := b.ReadCell(i)
				if cur < prev {
					return fmt.Errorf("not sorted at %d: %d > %d", i, prev, cur)
				}
				prev = cur
			}
			return nil
		},
	}
}

// CRCWMax finds the maximum of n inputs in O(1) P-RAM steps using the
// classical CRCW trick: processor pairs (i,j) concurrently write a
// "loser" flag, then every non-loser writes itself as the answer. Needs
// n² processors in the textbook version; this n-processor rendering runs
// the pair loop in O(n) steps per processor but keeps the concurrent-
// write pattern, exercising CRCW-Priority combining under heavy fan-in.
func CRCWMax(n int, seed int64) Workload {
	input := randWords(n, seed, 1<<20)
	want := input[0]
	for _, v := range input[1:] {
		if v > want {
			want = v
		}
	}
	// Layout: [0,n) inputs, [n,2n) loser flags, 2n the answer.
	return Workload{
		Name:  fmt.Sprintf("crcwmax(n=%d)", n),
		Procs: n,
		Cells: 2*n + 1,
		Mode:  model.CRCWPriority,
		Setup: func(b model.Backend) { b.LoadCells(0, input) },
		Program: func(id int) machine.Program {
			return func(p *machine.Proc) {
				mine := p.Read(id)
				// Mark every input beaten by mine (ties: higher index
				// loses, keeping exactly one winner).
				for j := 0; j < n; j++ {
					other := p.Read(j)
					if other < mine || (other == mine && j > id) {
						p.Write(n+j, 1)
					} else {
						p.Sync()
					}
				}
				flag := p.Read(n + id)
				if flag == 0 {
					p.Write(2*n, mine) // the unique non-loser
				} else {
					p.Sync()
				}
			}
		},
		Verify: func(b model.Backend) error {
			if got := b.ReadCell(2 * n); got != want {
				return fmt.Errorf("max = %d, want %d", got, want)
			}
			return nil
		},
	}
}

// Butterfly performs log n rounds of FFT-style exchange: in round k,
// processor i combines its cell with that of partner i XOR 2^k (here an
// add, standing in for a butterfly's complex multiply-add). After all
// rounds every cell holds the total sum — an all-reduce with the exact
// communication pattern of FFT/hypercube algorithms. CREW (partners read
// each other's cells concurrently).
func Butterfly(n int, seed int64) Workload {
	input := randWords(n, seed, 1000)
	var want model.Word
	for _, v := range input {
		want += v
	}
	return Workload{
		Name:  fmt.Sprintf("butterfly(n=%d)", n),
		Procs: n,
		Cells: 2 * n,
		Mode:  model.CREW,
		Setup: func(b model.Backend) { b.LoadCells(0, input) },
		Program: func(id int) machine.Program {
			return func(p *machine.Proc) {
				src, dst := 0, n
				for bit := 1; bit < n; bit *= 2 {
					mine := p.Read(src + id)
					theirs := p.Read(src + (id ^ bit))
					p.Write(dst+id, mine+theirs)
					src, dst = dst, src
				}
				// Normalize the result back into [0,n) if it ended in
				// the scratch buffer.
				rounds := 0
				for b := 1; b < n; b *= 2 {
					rounds++
				}
				if rounds%2 == 1 {
					v := p.Read(n + id)
					p.Write(id, v)
				}
			}
		},
		Verify: func(b model.Backend) error {
			for i := 0; i < n; i++ {
				if got := b.ReadCell(i); got != want {
					return fmt.Errorf("cell %d = %d, want all-reduce %d", i, got, want)
				}
			}
			return nil
		},
	}
}

// Transpose moves an s×s matrix (n = s² cells at [0,n)) to its transpose
// at [n,2n) with one processor per element — a bandwidth-bound all-to-all
// permutation whose access pattern is the classic network stress test.
func Transpose(s int, seed int64) Workload {
	n := s * s
	input := randWords(n, seed, 1<<20)
	return Workload{
		Name:  fmt.Sprintf("transpose(%dx%d)", s, s),
		Procs: n,
		Cells: 2 * n,
		Mode:  model.EREW,
		Setup: func(b model.Backend) { b.LoadCells(0, input) },
		Program: func(id int) machine.Program {
			return func(p *machine.Proc) {
				i, j := id/s, id%s
				v := p.Read(id)
				p.Write(n+j*s+i, v)
			}
		},
		Verify: func(b model.Backend) error {
			for i := 0; i < s; i++ {
				for j := 0; j < s; j++ {
					if got := b.ReadCell(n + j*s + i); got != input[i*s+j] {
						return fmt.Errorf("T[%d][%d] = %d, want %d", j, i, got, input[i*s+j])
					}
				}
			}
			return nil
		},
	}
}
