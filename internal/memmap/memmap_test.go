package memmap

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLemmaTwoConstantRedundancy(t *testing.T) {
	// The whole point of the paper: with ε > 0 fixed, redundancy must not
	// grow with n.
	var rs []int
	for _, n := range []int{64, 256, 1024, 4096, 16384} {
		p := LemmaTwo(n, 2.0, 1.0)
		if err := p.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rs = append(rs, p.R())
	}
	for i := 1; i < len(rs); i++ {
		if rs[i] != rs[0] {
			t.Fatalf("redundancy varies with n: %v", rs)
		}
	}
	if rs[0] < 3 {
		t.Errorf("redundancy %d suspiciously low for a 2c-1 scheme", rs[0])
	}
}

func TestLemmaTwoSatisfiesInequality(t *testing.T) {
	for _, tc := range []struct{ k, eps float64 }{
		{1.5, 0.25}, {2, 0.5}, {2, 1}, {3, 0.5}, {3, 1},
	} {
		p := LemmaTwo(1024, tc.k, tc.eps)
		want := (p.B*tc.k - tc.eps) / (tc.eps * (p.B - 2))
		if float64(p.C) <= want {
			t.Errorf("k=%g eps=%g: c=%d does not exceed Lemma 2 threshold %.2f",
				tc.k, tc.eps, p.C, want)
		}
	}
}

func TestLemmaTwoPanicsOnZeroEps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LemmaTwo with eps=0 did not panic")
		}
	}()
	LemmaTwo(64, 2, 0)
}

func TestLemmaOneLogarithmicRedundancy(t *testing.T) {
	small := LemmaOne(64, 2)   // m = 4096
	large := LemmaOne(4096, 2) // m = 16M
	if large.C <= small.C {
		t.Errorf("UW87 c should grow with m: c(64)=%d, c(4096)=%d", small.C, large.C)
	}
	if small.M != 64 || large.M != 4096 {
		t.Error("LemmaOne must keep M = n (MPC)")
	}
	// c within a constant factor of log_b m.
	for _, p := range []Params{small, large} {
		logbm := math.Log(float64(p.Mem)) / math.Log(p.B)
		if float64(p.C) < logbm || float64(p.C) > 3*logbm+3 {
			t.Errorf("c=%d out of Θ(log_b m) range (log_b m = %.1f)", p.C, logbm)
		}
	}
}

func TestTheoremThreeSideAndBanks(t *testing.T) {
	p, side := TheoremThree(256, 2, 2.0)
	// side ≈ 256^1.5 = 4096, a power of two and > n.
	if side != 4096 {
		t.Errorf("side = %d, want 4096", side)
	}
	if p.M != side {
		t.Errorf("effective bank count %d != side %d", p.M, side)
	}
	if p.Eps <= 0 {
		t.Errorf("eps' = %v, want > 0", p.Eps)
	}
	// Constant redundancy across n at fixed δ.
	pBig, _ := TheoremThree(1024, 2, 2.0)
	if pBig.C != p.C {
		t.Errorf("c varies with n: %d vs %d", p.C, pBig.C)
	}
}

func TestTheoremThreeDeltaOneStaysFineGrain(t *testing.T) {
	p, side := TheoremThree(256, 2, 1.0)
	if side <= 256 {
		t.Errorf("side = %d must exceed n", side)
	}
	if p.Eps <= 0 {
		t.Errorf("eps' = %v, want > 0", p.Eps)
	}
}

func TestTheoremThreePanicsBelowDeltaOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TheoremThree(δ<1) did not panic")
		}
	}()
	TheoremThree(64, 2, 0.5)
}

func TestLemmaTwoWithModulesPanicsOnCoarseGrain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LemmaTwoWithModules(M=n) did not panic")
		}
	}()
	LemmaTwoWithModules(64, 2, 64)
}

func TestParamsDerived(t *testing.T) {
	p := Params{N: 100, M: 1000, Mem: 10000, K: 2, Eps: 0.5, B: 4, C: 3}
	if p.R() != 5 {
		t.Errorf("R = %d, want 5", p.R())
	}
	if p.ClusterSize() != 5 {
		t.Errorf("ClusterSize = %d, want 5", p.ClusterSize())
	}
	if p.Clusters() != 20 {
		t.Errorf("Clusters = %d, want 20", p.Clusters())
	}
	if got := p.ExpansionBound(8); math.Abs(got-10) > 1e-12 {
		t.Errorf("ExpansionBound(8) = %v, want 10", got)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{N: 0, M: 1, Mem: 1, B: 4, C: 1},
		{N: 1, M: 1, Mem: 1, B: 4, C: 0},
		{N: 1, M: 2, Mem: 1, B: 4, C: 5},  // r = 9 > M
		{N: 1, M: 10, Mem: 1, B: 2, C: 1}, // b too small
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %v", i, p)
		}
	}
	good := Params{N: 16, M: 64, Mem: 256, K: 2, Eps: 0.5, B: 4, C: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected good params: %v", err)
	}
}

func TestGenerateDistinctModules(t *testing.T) {
	p := LemmaTwo(128, 2, 1)
	mp := Generate(p, 42)
	if v := mp.CheckDistinct(); v != -1 {
		t.Errorf("variable %d has duplicate modules: %v", v, mp.Copies(v))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := LemmaTwo(64, 2, 1)
	a := Generate(p, 7)
	b := Generate(p, 7)
	for v := 0; v < 50; v++ {
		ca, cb := a.Copies(v), b.Copies(v)
		for j := range ca {
			if ca[j] != cb[j] {
				t.Fatalf("same seed produced different maps at var %d", v)
			}
		}
	}
	c := Generate(p, 8)
	same := true
	for v := 0; v < 50 && same; v++ {
		ca, cc := a.Copies(v), c.Copies(v)
		for j := range ca {
			if ca[j] != cc[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical maps (first 50 vars)")
	}
}

func TestModuleLoadsBalance(t *testing.T) {
	p := LemmaTwo(256, 2, 1)
	mp := Generate(p, 1)
	loads := mp.ModuleLoads()
	total := 0
	maxLoad := 0
	for _, l := range loads {
		total += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	if total != p.Mem*p.R() {
		t.Errorf("total copies = %d, want %d", total, p.Mem*p.R())
	}
	mean := float64(total) / float64(p.M)
	if float64(maxLoad) > 4*mean+8 {
		t.Errorf("max module load %d far above mean %.1f — map unbalanced", maxLoad, mean)
	}
}

func TestAuditRandomMapHolds(t *testing.T) {
	p := LemmaTwo(512, 2, 1)
	mp := Generate(p, 3)
	q := p.N / p.R()
	res := mp.Audit(q, 50, 99)
	if !res.Holds {
		t.Errorf("random Lemma-2 map failed expansion audit: min=%d bound=%.1f",
			res.MinDistinct, res.Bound)
	}
	if res.MeanDistinct < float64(res.MinDistinct) {
		t.Error("mean below min")
	}
}

func TestAuditDetectsCorruptMap(t *testing.T) {
	p := LemmaTwo(512, 2, 1)
	// All copies squeezed into r modules: expansion capped at r regardless
	// of q, so any q with bound > r must fail.
	mp := GenerateCorrupt(p, p.R(), 3)
	q := p.N / p.R()
	res := mp.Audit(q, 20, 5)
	if res.Holds {
		t.Errorf("audit failed to flag corrupt map: min=%d bound=%.1f",
			res.MinDistinct, res.Bound)
	}
	if res.MinDistinct > p.R() {
		t.Errorf("corrupt map reports %d distinct modules, window was %d",
			res.MinDistinct, p.R())
	}
}

func TestAuditClampsQ(t *testing.T) {
	p := LemmaTwo(64, 2, 1)
	mp := Generate(p, 3)
	res := mp.Audit(1<<20, 5, 5)
	if res.Q > p.N/p.R() {
		t.Errorf("audit q=%d exceeds lemma range n/(2c-1)=%d", res.Q, p.N/p.R())
	}
}

func TestBytesPerProcessor(t *testing.T) {
	p := Params{N: 16, M: 1024, Mem: 1000, K: 2, Eps: 0.5, B: 4, C: 2}
	mp := Generate(p, 1)
	// 1000 vars × 3 copies × 10 bits = 30000 bits = 3750 bytes.
	if got := mp.BytesPerProcessor(); got != 3750 {
		t.Errorf("BytesPerProcessor = %d, want 3750", got)
	}
}

// Property: every generated map keeps copies in range and distinct,
// for arbitrary small parameter draws.
func TestGeneratePropertyDistinctInRange(t *testing.T) {
	f := func(seed int64, nn, cc uint8) bool {
		n := 8 + int(nn%56)
		c := 2 + int(cc%3)
		p := Params{N: n, M: 4 * n, Mem: 2 * n, K: 2, Eps: 1, B: 4, C: c}
		if p.R() > p.M {
			return true
		}
		mp := Generate(p, seed)
		if mp.CheckDistinct() != -1 {
			return false
		}
		for v := 0; v < p.Mem; v++ {
			for _, mod := range mp.Copies(v) {
				if int(mod) >= p.M {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
