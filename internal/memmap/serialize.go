package memmap

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Serialization of memory maps. The paper's conclusion measures the map's
// storage cost in bits (the O(m·r·log M) table each processor must hold);
// this file makes that table a concrete artifact that can be written,
// shipped and reloaded — what a deployment of the scheme would distribute
// to its processors at boot.

// magic identifies the file format; bump the version on layout changes.
var magic = [8]byte{'P', 'R', 'A', 'M', 'M', 'A', 'P', '1'}

// WriteTo serializes the map (header: params; body: m×r little-endian
// uint32 module ids). It returns the number of bytes written.
func (mp *Map) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	put := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		k, err := bw.Write(buf[:])
		n += int64(k)
		return err
	}
	if k, err := bw.Write(magic[:]); err != nil {
		return n + int64(k), err
	}
	n += int64(len(magic))
	p := mp.P
	for _, v := range []uint64{
		uint64(p.N), uint64(p.M), uint64(p.Mem), uint64(p.C),
		math.Float64bits(p.K), math.Float64bits(p.Eps), math.Float64bits(p.B),
	} {
		if err := put(v); err != nil {
			return n, err
		}
	}
	var buf [4]byte
	for _, mod := range mp.copies {
		binary.LittleEndian.PutUint32(buf[:], mod)
		k, err := bw.Write(buf[:])
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadMap deserializes a map written by WriteTo, validating the header and
// the distinct-modules invariant.
func ReadMap(r io.Reader) (*Map, error) {
	br := bufio.NewReader(r)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("memmap: reading magic: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("memmap: bad magic %q", got[:])
	}
	get := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	var raw [7]uint64
	for i := range raw {
		v, err := get()
		if err != nil {
			return nil, fmt.Errorf("memmap: reading header: %w", err)
		}
		raw[i] = v
	}
	p := Params{
		N: int(raw[0]), M: int(raw[1]), Mem: int(raw[2]), C: int(raw[3]),
		K: math.Float64frombits(raw[4]), Eps: math.Float64frombits(raw[5]),
		B: math.Float64frombits(raw[6]),
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("memmap: invalid header: %w", err)
	}
	mp := &Map{P: p, copies: make([]uint32, p.Mem*p.R())}
	var buf [4]byte
	for i := range mp.copies {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("memmap: reading body at entry %d: %w", i, err)
		}
		mod := binary.LittleEndian.Uint32(buf[:])
		if int(mod) >= p.M {
			return nil, fmt.Errorf("memmap: entry %d names module %d ≥ M=%d", i, mod, p.M)
		}
		mp.copies[i] = mod
	}
	if v := mp.CheckDistinct(); v != -1 {
		return nil, fmt.Errorf("memmap: variable %d has duplicate modules", v)
	}
	return mp, nil
}
