package memmap

import (
	"math/rand"
	"sort"
)

// AuditResult reports the measured expansion of a map: over all probed sets
// of q live variables (with the adversary choosing which c copies of each
// are live), the minimum number of distinct modules those live copies
// occupied, against the Lemma 1/2 bound (2c−1)q/b.
type AuditResult struct {
	Q            int     // live-set size probed
	Trials       int     // number of probe sets
	MinDistinct  int     // worst distinct-module count observed
	Bound        float64 // (2c−1)·q/b from the lemma
	MeanDistinct float64 // average distinct-module count
	Holds        bool    // MinDistinct >= Bound
}

// Audit probes the expansion property at live-set size q using `trials`
// random variable sets, plus one greedily constructed adversarial set. For
// each probed set the live copies are chosen adversarially: the c copies of
// each variable residing in the globally most popular modules, which is the
// concentration a malicious access pattern would exploit.
func (mp *Map) Audit(q, trials int, seed int64) AuditResult {
	if q < 1 {
		panic("memmap.Audit: q must be >= 1")
	}
	if max := mp.P.N / mp.R(); q > max && max > 0 {
		q = max // the lemma only speaks about q ≤ n/(2c−1)
	}
	rng := rand.New(rand.NewSource(seed))
	res := AuditResult{Q: q, Trials: trials, Bound: mp.P.ExpansionBound(q), MinDistinct: mp.P.M + 1}
	sum := 0
	probe := func(vars []int) {
		d := mp.adversarialDistinct(vars)
		sum += d
		if d < res.MinDistinct {
			res.MinDistinct = d
		}
	}
	for t := 0; t < trials; t++ {
		probe(sampleVars(rng, mp.P.Mem, q))
	}
	probe(mp.greedyConcentratedSet(q))
	res.MeanDistinct = float64(sum) / float64(trials+1)
	res.Holds = float64(res.MinDistinct) >= res.Bound
	return res
}

// adversarialDistinct returns the number of distinct modules covered when,
// for each variable in vars, the adversary declares live the c copies lying
// in the most popular modules of the set (minimizing spread).
func (mp *Map) adversarialDistinct(vars []int) int {
	pop := make(map[uint32]int)
	for _, v := range vars {
		for _, mod := range mp.Copies(v) {
			pop[mod]++
		}
	}
	c := mp.P.C
	distinct := make(map[uint32]bool)
	row := make([]uint32, mp.R())
	for _, v := range vars {
		copy(row, mp.Copies(v))
		// Most popular modules first: those are where copies coincide.
		sort.Slice(row, func(i, j int) bool {
			pi, pj := pop[row[i]], pop[row[j]]
			if pi != pj {
				return pi > pj
			}
			return row[i] < row[j]
		})
		for j := 0; j < c; j++ {
			distinct[row[j]] = true
		}
	}
	return len(distinct)
}

// greedyConcentratedSet builds a worst-case-flavored live set: starting from
// the most loaded module, it repeatedly adds the variable whose copies fall
// most heavily inside the modules already covered. This is the natural
// greedy adversary against a random map.
func (mp *Map) greedyConcentratedSet(q int) []int {
	loads := mp.ModuleLoads()
	hot := 0
	for mod, l := range loads {
		if l > loads[hot] {
			hot = mod
		}
	}
	covered := map[uint32]bool{uint32(hot): true}
	used := make(map[int]bool, q)
	vars := make([]int, 0, q)
	// Candidate pool: scanning all m variables q times is O(mq); cap the
	// pool for large maps — the greedy signal saturates quickly.
	pool := mp.P.Mem
	if pool > 1<<16 {
		pool = 1 << 16
	}
	for len(vars) < q {
		bestV, bestScore := -1, -1
		for v := 0; v < pool; v++ {
			if used[v] {
				continue
			}
			score := 0
			for _, mod := range mp.Copies(v) {
				if covered[mod] {
					score++
				}
			}
			if score > bestScore {
				bestScore, bestV = score, v
			}
		}
		used[bestV] = true
		vars = append(vars, bestV)
		for _, mod := range mp.Copies(bestV) {
			covered[mod] = true
		}
	}
	return vars
}

// sampleVars draws q distinct variables uniformly.
func sampleVars(rng *rand.Rand, m, q int) []int {
	if q > m {
		q = m
	}
	seen := make(map[int]bool, q)
	out := make([]int, 0, q)
	for len(out) < q {
		v := rng.Intn(m)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// GenerateCorrupt draws a map that deliberately violates the expansion
// property by confining all copies to a tiny window of `window` modules.
// Used by failure-injection tests to show the audits and the quorum
// protocol's progress accounting actually detect bad maps.
func GenerateCorrupt(p Params, window int, seed int64) *Map {
	if window < p.R() {
		window = p.R()
	}
	if window > p.M {
		window = p.M
	}
	rng := rand.New(rand.NewSource(seed))
	r := p.R()
	mp := &Map{P: p, copies: make([]uint32, p.Mem*r)}
	scratch := make(map[uint32]bool, r)
	for v := 0; v < p.Mem; v++ {
		clear(scratch)
		row := mp.copies[v*r : (v+1)*r]
		for j := 0; j < r; j++ {
			for {
				mod := uint32(rng.Intn(window))
				if !scratch[mod] {
					scratch[mod] = true
					row[j] = mod
					break
				}
			}
		}
	}
	return mp
}
