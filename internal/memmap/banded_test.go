package memmap

import (
	"testing"
	"testing/quick"
)

// TestBandPartitionConsistency: BandOf and BandRange define the same
// partition — every index lies inside the range of its own band — for
// arbitrary sizes and band counts, including non-dividing ones.
func TestBandPartitionConsistency(t *testing.T) {
	f := func(sizeRaw, bandsRaw uint8) bool {
		size := int(sizeRaw)%200 + 1
		bands := int(bandsRaw)%10 + 1
		if bands > size {
			bands = size
		}
		covered := 0
		for b := 0; b < bands; b++ {
			lo, hi := BandRange(b, size, bands)
			covered += hi - lo
			for i := lo; i < hi; i++ {
				if BandOf(i, size, bands) != b {
					t.Logf("size=%d bands=%d: index %d in range of band %d but BandOf says %d",
						size, bands, i, b, BandOf(i, size, bands))
					return false
				}
			}
		}
		return covered == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestGenerateBandedConfinement: every variable's copies stay inside its
// band's module range, in distinct modules, and the map validates like any
// other.
func TestGenerateBandedConfinement(t *testing.T) {
	const bands = 4
	p := LemmaTwo(256, 2, 1)
	mp := GenerateBanded(p, 9, bands)
	if v := mp.CheckDistinct(); v >= 0 {
		t.Fatalf("variable %d has duplicate modules", v)
	}
	for v := 0; v < p.Mem; v++ {
		b := BandOf(v, p.Mem, bands)
		lo, hi := BandRange(b, p.M, bands)
		for j, mod := range mp.Copies(v) {
			if int(mod) < lo || int(mod) >= hi {
				t.Fatalf("var %d (band %d) copy %d in module %d, outside band modules [%d, %d)",
					v, b, j, mod, lo, hi)
			}
		}
	}
}

// TestGenerateBandedExpansionPerBand: each band, audited as its own scaled
// memory system, keeps the expansion property the protocol's progress
// argument needs (smoke-level: the greedy adversary finds no violating
// set).
func TestGenerateBandedExpansionPerBand(t *testing.T) {
	const bands = 2
	p := LemmaTwo(128, 2, 1)
	mp := GenerateBanded(p, 9, bands)
	q := p.N / bands / p.R()
	if q < 2 {
		q = 2
	}
	res := mp.Audit(q, 10, 1)
	if !res.Holds {
		t.Errorf("banded map fails the expansion audit at q=%d: %+v", q, res)
	}
}

// TestGenerateBandedRejectsTinyBands: bands that leave fewer modules than
// the redundancy cannot place distinct copies and must be rejected loudly.
func TestGenerateBandedRejectsTinyBands(t *testing.T) {
	p := LemmaTwo(64, 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("GenerateBanded accepted bands with fewer modules than the redundancy")
		}
	}()
	GenerateBanded(p, 1, p.M/p.R()+1)
}
