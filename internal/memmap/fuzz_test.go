package memmap

import (
	"bytes"
	"testing"
)

// FuzzReadMap: arbitrary bytes must produce an error or a valid map,
// never a panic or an invariant-violating map.
func FuzzReadMap(f *testing.F) {
	p := LemmaTwo(16, 2, 1)
	var good bytes.Buffer
	Generate(p, 3).WriteTo(&good)
	f.Add(good.Bytes())
	f.Add([]byte("PRAMMAP1 short"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		mp, err := ReadMap(bytes.NewReader(data))
		if err != nil {
			return
		}
		if mp.CheckDistinct() != -1 {
			t.Fatal("accepted map violates distinctness")
		}
		if err := mp.P.Validate(); err != nil {
			t.Fatalf("accepted map has invalid params: %v", err)
		}
	})
}
