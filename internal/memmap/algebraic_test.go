package memmap

import "testing"

func TestAlgebraicDistinctAndInRange(t *testing.T) {
	p := LemmaTwo(256, 2, 1)
	mp := GenerateAlgebraic(p, 17)
	if v := mp.CheckDistinct(); v != -1 {
		t.Fatalf("variable %d has duplicate modules", v)
	}
	for v := 0; v < p.Mem; v += 97 {
		for _, mod := range mp.Copies(v) {
			if int(mod) >= p.M {
				t.Fatalf("module %d out of range", mod)
			}
		}
	}
}

func TestAlgebraicDeterministic(t *testing.T) {
	p := LemmaTwo(64, 2, 1)
	a := GenerateAlgebraic(p, 5)
	b := GenerateAlgebraic(p, 5)
	for v := 0; v < 100; v++ {
		ca, cb := a.Copies(v), b.Copies(v)
		for j := range ca {
			if ca[j] != cb[j] {
				t.Fatal("same seed, different algebraic map")
			}
		}
	}
}

func TestAlgebraicExpansionAudit(t *testing.T) {
	// The open problem is whether a computable map can match the random
	// map's expansion. Audit the linear-congruential candidate: it should
	// at least satisfy the Lemma 2 bound at moderate sizes (structured
	// maps can in principle fail adversarially; the audit is the point).
	p := LemmaTwo(512, 2, 1)
	mp := GenerateAlgebraic(p, 17)
	res := mp.Audit(p.N/p.R(), 40, 7)
	t.Logf("algebraic map: min=%d bound=%.1f holds=%v", res.MinDistinct, res.Bound, res.Holds)
	if !res.Holds {
		t.Errorf("algebraic map failed the Lemma-2 audit: min=%d bound=%.1f",
			res.MinDistinct, res.Bound)
	}
}

func TestAlgebraicStorageSaving(t *testing.T) {
	p := LemmaTwo(1024, 2, 1)
	mp := Generate(p, 1)
	table := mp.BytesPerProcessor()
	alg := AlgebraicTableBytes(p)
	if alg >= table/1000 {
		t.Errorf("algebraic storage %d not dramatically below table %d", alg, table)
	}
	if alg != int64(p.R())*16 {
		t.Errorf("algebraic bytes = %d, want %d", alg, p.R()*16)
	}
}

func TestAlgebraicLoadBalance(t *testing.T) {
	p := LemmaTwo(256, 2, 1)
	mp := GenerateAlgebraic(p, 3)
	loads := mp.ModuleLoads()
	total, maxLoad := 0, 0
	for _, l := range loads {
		total += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	if total != p.Mem*p.R() {
		t.Errorf("copies lost: %d != %d", total, p.Mem*p.R())
	}
	mean := float64(total) / float64(p.M)
	if float64(maxLoad) > 6*mean+8 {
		t.Errorf("algebraic map unbalanced: max %d vs mean %.1f", maxLoad, mean)
	}
}
