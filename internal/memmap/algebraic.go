package memmap

// The paper's conclusion poses an open problem: replace the nonconstructive
// (stored-table) memory map with one "that could be constructed by simple
// computations within a processor", eliminating the O(m·r·log M)-bit
// look-up table. This file provides such a candidate — an algebraic map
// computed from (v, j) in O(1) arithmetic — so its expansion quality can be
// audited against random maps (ablation benchmark AblationAlgebraicMap).

// GenerateAlgebraic returns the map Γ(v, j) = (a_j·v + b_j) mod M where
// the per-copy coefficients a_j, b_j are derived from the seed by a
// splitmix64 chain with a_j forced odd (a unit mod any even M, keeping the
// images of v spread). Copies of one variable land in distinct modules by
// linear-probe correction, preserving the Map invariant.
//
// Unlike Generate, no table is stored conceptually — any processor can
// recompute Γ(v, j) from the 2r coefficients — although this implementation
// materializes the values for uniform access by the engine.
func GenerateAlgebraic(p Params, seed int64) *Map {
	if err := p.Validate(); err != nil {
		panic("memmap.GenerateAlgebraic: " + err.Error())
	}
	r := p.R()
	as := make([]uint64, r)
	bs := make([]uint64, r)
	x := uint64(seed)
	for j := 0; j < r; j++ {
		x = splitmix(x)
		as[j] = x | 1 // odd multiplier
		x = splitmix(x)
		bs[j] = x
	}
	mp := &Map{P: p, copies: make([]uint32, p.Mem*r)}
	M := uint64(p.M)
	seen := make(map[uint32]bool, r)
	for v := 0; v < p.Mem; v++ {
		clear(seen)
		row := mp.copies[v*r : (v+1)*r]
		for j := 0; j < r; j++ {
			mod := uint32((as[j]*uint64(v) + bs[j]) % M)
			for seen[mod] { // linear probe to restore distinctness
				mod = uint32((uint64(mod) + 1) % M)
			}
			seen[mod] = true
			row[j] = mod
		}
	}
	return mp
}

// AlgebraicTableBytes returns the per-processor storage an algebraic map
// needs: just the 2r 64-bit coefficients, versus BytesPerProcessor() for a
// stored table — the saving the conclusion is after.
func AlgebraicTableBytes(p Params) int64 { return int64(p.R()) * 16 }

// splitmix is the splitmix64 step function.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
