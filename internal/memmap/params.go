// Package memmap implements the replicated memory maps at the heart of the
// paper: the distribution Γ of 2c−1 copies of each of m shared variables
// over M memory modules, with the parameter selections of Upfal–Wigderson's
// Lemma 1 (M = n, c = Θ(log m)) and of the paper's Lemma 2
// (M = n^(1+ε), constant c > (bk−ε)/(ε(b−2))), plus auditing machinery that
// measures the expansion property the correctness proofs rest on.
//
// The paper's maps are nonconstructive (existence by counting); following
// the proofs, which show almost every random map is good, this package draws
// seeded pseudo-random maps and verifies the expansion property empirically
// (random sampling plus a greedy concentration adversary).
package memmap

import (
	"fmt"
	"math"

	"repro/internal/xmath"
)

// Params fixes the dimensions of a replicated memory system.
type Params struct {
	N   int // P-RAM processors
	M   int // memory modules of the simulating machine
	Mem int // m, number of shared variables

	K   float64 // memory-size exponent: m = n^K
	Eps float64 // granularity exponent: M = n^(1+Eps); 0 for the MPC
	B   float64 // expansion slack b (Lemma 1: b > 4, Lemma 2: b > 2)
	C   int     // quorum parameter: 2c−1 copies, c needed per access
}

// R returns the redundancy 2c−1, the number of copies per variable.
func (p Params) R() int { return 2*p.C - 1 }

// ClusterSize returns the processor-cluster size used by the two-stage
// access protocol, which equals the redundancy 2c−1.
func (p Params) ClusterSize() int { return p.R() }

// Clusters returns the number of processor clusters, ceil(n/(2c−1)).
func (p Params) Clusters() int { return xmath.CeilDiv(p.N, p.R()) }

// ExpansionBound returns the module count Lemma 1/2 guarantees for q live
// variables: (2c−1)·q/b.
func (p Params) ExpansionBound(q int) float64 {
	return float64(p.R()) * float64(q) / p.B
}

// Validate checks internal consistency.
func (p Params) Validate() error {
	switch {
	case p.N <= 0 || p.M <= 0 || p.Mem <= 0:
		return fmt.Errorf("memmap: dimensions must be positive (n=%d M=%d m=%d)", p.N, p.M, p.Mem)
	case p.C < 1:
		return fmt.Errorf("memmap: quorum parameter c=%d < 1", p.C)
	case p.R() > p.M:
		return fmt.Errorf("memmap: redundancy 2c-1=%d exceeds module count M=%d", p.R(), p.M)
	case p.B <= 2:
		return fmt.Errorf("memmap: expansion slack b=%g must exceed 2", p.B)
	}
	return nil
}

// String summarizes the parameter point.
func (p Params) String() string {
	return fmt.Sprintf("n=%d M=%d m=%d k=%.2f eps=%.2f b=%.1f c=%d r=%d",
		p.N, p.M, p.Mem, p.K, p.Eps, p.B, p.C, p.R())
}

// LemmaOne returns Upfal–Wigderson '87 parameters for an MPC: M = n modules
// and c = Θ(log m / log b) with b > 4, so the redundancy 2c−1 grows as
// Θ(log m). This is the baseline the paper improves on.
func LemmaOne(n int, k float64) Params {
	const b = 6.0 // any constant > 4 works; 6 keeps c modest at bench sizes
	m := memSize(n, k)
	c := int(math.Ceil(math.Log(float64(m))/math.Log(b))) + 1
	if c < 2 {
		c = 2
	}
	p := Params{N: n, M: n, Mem: m, K: k, Eps: 0, B: b, C: c}
	clampRedundancy(&p)
	return p
}

// LemmaTwo returns the paper's parameters for a DMMPC with fine-grain
// memory: M = n^(1+ε) modules and the constant
// c > (bk−ε)/(ε(b−2)) of Lemma 2 — redundancy independent of n and m.
func LemmaTwo(n int, k, eps float64) Params {
	if eps <= 0 {
		panic("memmap.LemmaTwo: need ε > 0 (ε = 0 is the coarse-grain MPC regime)")
	}
	modules := int(math.Ceil(math.Pow(float64(n), 1+eps)))
	return LemmaTwoWithModules(n, k, modules)
}

// LemmaTwoWithModules is LemmaTwo for an explicitly chosen module count
// M > n (so ε = log_n M − 1 > 0). It is how the 2DMOT machine applies the
// lemma to its √M physical columns.
func LemmaTwoWithModules(n int, k float64, modules int) Params {
	if modules <= n {
		panic("memmap.LemmaTwoWithModules: need M > n for the fine-grain regime")
	}
	eps := math.Log(float64(modules))/math.Log(float64(n)) - 1
	return lemmaTwoAt(n, k, eps, modules)
}

// lemmaTwoAt applies the Lemma 2 inequality at a given ε with a given
// physical module count (which may exceed n^(1+ε); extra modules only help
// expansion).
func lemmaTwoAt(n int, k, eps float64, modules int) Params {
	const b = 4.0 // any constant > 2; 4 balances c against the bound slack
	m := memSize(n, k)
	cMin := (b*k - eps) / (eps * (b - 2))
	if alt := (b - 1) / (b - 2); alt > cMin {
		cMin = alt
	}
	c := int(math.Floor(cMin)) + 1
	if c < 2 {
		c = 2
	}
	p := Params{N: n, M: modules, Mem: m, K: k, Eps: eps, B: b, C: c}
	clampRedundancy(&p)
	return p
}

// TheoremThree returns the parameters for the 2DMOT deployment of Section 3:
// M = n^(1+δ) modules at the leaves of a √M × √M mesh of trees (δ > 1 so
// that the grid side is at least n and the n processors fit on the roots).
// The √M columns act as independent banks, so Lemma 2 applies with module
// count M' = √M = n^((1+δ)/2); the returned Params carry that effective
// bank count in M (the physical grid side, rounded up to a power of two).
func TheoremThree(n int, k, delta float64) (Params, int) {
	if delta < 1 {
		panic("memmap.TheoremThree: need δ ≥ 1 so the grid side √M covers the n processors")
	}
	side := ceilPow2(int(math.Ceil(math.Pow(float64(n), (1+delta)/2))))
	if side <= n {
		side = ceilPow2(n + 1) // δ = 1 exactly: nudge into the ε' > 0 regime
	}
	// The quorum constant comes from the NOMINAL bank exponent
	// ε' = (δ−1)/2, so it is the same at every n (the paper's r = Θ(1));
	// rounding side up to a power of two only adds banks, which helps.
	epsNominal := (delta - 1) / 2
	if epsNominal <= 0 {
		return LemmaTwoWithModules(n, k, side), side
	}
	return lemmaTwoAt(n, k, epsNominal, side), side
}

// TheoremThreeDual applies the closing remark of Theorem 3's proof: by
// accessing simultaneously along rows AND columns, both the a rows and the
// a columns of the grid serve as independent banks — 2·side in total —
// "which further reduces the redundancy by a factor of 2, as can be shown
// by a modification of Lemma 2". The quorum constant is halved (floored at
// the lemma's minimum of 2) and the bank space doubled.
func TheoremThreeDual(n int, k, delta float64) (Params, int) {
	p, side := TheoremThree(n, k, delta)
	p.M = 2 * side
	c := (p.C + 1) / 2
	if c < 2 {
		c = 2
	}
	p.C = c
	clampRedundancy(&p)
	return p, side
}

// ceilPow2 rounds up to a power of two (local copy to keep the dependency
// graph flat).
func ceilPow2(x int) int {
	p := 1
	for p < x {
		p <<= 1
	}
	return p
}

// memSize returns m = n^k rounded to at least n.
func memSize(n int, k float64) int {
	m := int(math.Ceil(math.Pow(float64(n), k)))
	if m < n {
		m = n
	}
	return m
}

// clampRedundancy caps r at M (only reachable at toy sizes) preserving the
// invariant 2c−1 ≤ M that distinct-module placement needs.
func clampRedundancy(p *Params) {
	for p.R() > p.M && p.C > 1 {
		p.C--
	}
}
