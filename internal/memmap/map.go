package memmap

import (
	"fmt"
	"math/rand"
)

// Map is a memory map Γ: variable → the 2c−1 distinct modules holding its
// copies. Copies of one variable always reside in distinct modules, so a
// module holds at most one copy of any variable (the paper's standing
// assumption; it is what lets quorum accesses proceed in parallel).
type Map struct {
	P      Params
	copies []uint32 // m × r, row-major: copies[v*r+j] = module of copy j
}

// Generate draws a seeded pseudo-random map for the given parameters. The
// proofs of Lemma 1/Lemma 2 show that all but a vanishing fraction of maps
// have the expansion property, so a random draw is precisely the object the
// paper reasons about; use Audit to quantify a particular draw.
func Generate(p Params, seed int64) *Map {
	if err := p.Validate(); err != nil {
		panic("memmap.Generate: " + err.Error())
	}
	rng := rand.New(rand.NewSource(seed))
	r := p.R()
	mp := &Map{P: p, copies: make([]uint32, p.Mem*r)}
	scratch := make(map[uint32]bool, r)
	for v := 0; v < p.Mem; v++ {
		clear(scratch)
		row := mp.copies[v*r : (v+1)*r]
		for j := 0; j < r; j++ {
			for {
				mod := uint32(rng.Intn(p.M))
				if !scratch[mod] {
					scratch[mod] = true
					row[j] = mod
					break
				}
			}
		}
	}
	return mp
}

// R returns the redundancy (copies per variable).
func (mp *Map) R() int { return mp.P.R() }

// Vars returns the number of variables the map covers.
func (mp *Map) Vars() int { return mp.P.Mem }

// Modules returns the module count M.
func (mp *Map) Modules() int { return mp.P.M }

// Copies returns the modules holding v's copies. The returned slice aliases
// the map's storage and must not be modified.
func (mp *Map) Copies(v int) []uint32 {
	r := mp.R()
	return mp.copies[v*r : (v+1)*r]
}

// ModuleOf returns the module holding copy j of variable v.
func (mp *Map) ModuleOf(v, j int) int { return int(mp.copies[v*mp.R()+j]) }

// ModuleLoads returns, for each module, how many variable copies it stores.
// A balanced map keeps these near m·r/M.
func (mp *Map) ModuleLoads() []int {
	loads := make([]int, mp.P.M)
	for _, mod := range mp.copies {
		loads[mod]++
	}
	return loads
}

// CheckDistinct verifies the distinct-modules invariant for every variable,
// returning the first violating variable or −1.
func (mp *Map) CheckDistinct() int {
	r := mp.R()
	seen := make(map[uint32]bool, r)
	for v := 0; v < mp.P.Mem; v++ {
		clear(seen)
		for _, mod := range mp.Copies(v) {
			if seen[mod] {
				return v
			}
			seen[mod] = true
		}
	}
	return -1
}

// BytesPerProcessor returns the size of the address look-up table each
// processor must store, O(m·r·log M) bits rendered in bytes — the cost the
// paper's conclusion laments and proposes the P-ROM to shrink.
func (mp *Map) BytesPerProcessor() int64 {
	bitsPerEntry := 1
	for 1<<bitsPerEntry < mp.P.M {
		bitsPerEntry++
	}
	return int64(mp.P.Mem) * int64(mp.R()) * int64(bitsPerEntry) / 8
}

// String describes the map.
func (mp *Map) String() string {
	return fmt.Sprintf("memmap{%s}", mp.P)
}
