package memmap

import (
	"bytes"
	"strings"
	"testing"
)

func TestSerializeRoundtrip(t *testing.T) {
	p := LemmaTwo(64, 2, 1)
	orig := Generate(p, 17)
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadMap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.P != orig.P {
		t.Errorf("params differ: %+v vs %+v", got.P, orig.P)
	}
	for v := 0; v < p.Mem; v += 53 {
		a, b := orig.Copies(v), got.Copies(v)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("var %d copy %d differs", v, j)
			}
		}
	}
}

func TestSerializeSizeMatchesTableEstimate(t *testing.T) {
	p := LemmaTwo(64, 2, 1)
	mp := Generate(p, 1)
	var buf bytes.Buffer
	mp.WriteTo(&buf)
	// Body: m·r×4 bytes; header: 8 magic + 7×8.
	want := p.Mem*p.R()*4 + 8 + 56
	if buf.Len() != want {
		t.Errorf("file size %d, want %d", buf.Len(), want)
	}
}

func TestReadMapRejectsBadMagic(t *testing.T) {
	if _, err := ReadMap(strings.NewReader("NOTAMAP0 garbage")); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReadMapRejectsTruncated(t *testing.T) {
	p := LemmaTwo(16, 2, 1)
	mp := Generate(p, 3)
	var buf bytes.Buffer
	mp.WriteTo(&buf)
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadMap(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated file accepted")
	}
}

func TestReadMapRejectsOutOfRangeModule(t *testing.T) {
	p := LemmaTwo(16, 2, 1)
	mp := Generate(p, 3)
	var buf bytes.Buffer
	mp.WriteTo(&buf)
	data := buf.Bytes()
	// Corrupt the first body entry to an impossible module id.
	off := 8 + 56
	data[off] = 0xff
	data[off+1] = 0xff
	data[off+2] = 0xff
	data[off+3] = 0x7f
	if _, err := ReadMap(bytes.NewReader(data)); err == nil {
		t.Error("out-of-range module accepted")
	}
}

func TestReadMapRejectsDuplicateModules(t *testing.T) {
	p := LemmaTwo(16, 2, 1)
	mp := Generate(p, 3)
	var buf bytes.Buffer
	mp.WriteTo(&buf)
	data := buf.Bytes()
	// Make copy 1 of variable 0 identical to copy 0.
	off := 8 + 56
	copy(data[off+4:off+8], data[off:off+4])
	if _, err := ReadMap(bytes.NewReader(data)); err == nil {
		t.Error("duplicate-module map accepted")
	}
}
