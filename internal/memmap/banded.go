package memmap

import (
	"fmt"
	"math/rand"
)

// GenerateBanded draws a seeded pseudo-random map whose variable space and
// module space are both cut into `bands` aligned ranges: the copies of a
// band-b variable are placed only in band-b modules. Band b covers
// variables [b·m/bands, (b+1)·m/bands) and modules [b·M/bands,
// (b+1)·M/bands) (integer-floored bounds, so uneven sizes differ by at
// most one).
//
// This is the deployment map of a multi-program server: give each of K
// concurrent engines the variable band of its own simulated program and
// the engines touch DISJOINT module sets by construction — the store's
// shard-ownership invariant then lets every step of every program run in
// parallel with no merged components at all. Within each band the draw is
// exactly Generate's: 2c−1 copies in distinct modules, uniform over the
// band. Lemma 2's expansion argument applies band-wise at the scaled point
// (n/bands processors, m/bands variables, M/bands modules) — the exponents
// k and ε are preserved, so the per-band redundancy constant is unchanged;
// Audit quantifies any particular draw as usual.
//
// Cross-band accesses remain CORRECT (the map is a valid memmap.Map and
// any engine may address any variable); they only cost parallelism, since
// batches that meet in a module get merged into one serial component.
func GenerateBanded(p Params, seed int64, bands int) *Map {
	if err := p.Validate(); err != nil {
		panic("memmap.GenerateBanded: " + err.Error())
	}
	if bands < 1 {
		panic(fmt.Sprintf("memmap.GenerateBanded: bands=%d < 1", bands))
	}
	if minBand := p.M / bands; minBand < p.R() {
		panic(fmt.Sprintf(
			"memmap.GenerateBanded: %d bands leave %d modules per band, fewer than the redundancy %d",
			bands, minBand, p.R()))
	}
	rng := rand.New(rand.NewSource(seed))
	r := p.R()
	mp := &Map{P: p, copies: make([]uint32, p.Mem*r)}
	scratch := make(map[uint32]bool, r)
	for v := 0; v < p.Mem; v++ {
		b := BandOf(v, p.Mem, bands)
		lo, hi := BandRange(b, p.M, bands)
		clear(scratch)
		row := mp.copies[v*r : (v+1)*r]
		for j := 0; j < r; j++ {
			for {
				mod := uint32(lo + rng.Intn(hi-lo))
				if !scratch[mod] {
					scratch[mod] = true
					row[j] = mod
					break
				}
			}
		}
	}
	return mp
}

// BandOf returns which of `bands` aligned ranges over a space of `size`
// indices the index i falls in: the unique b with BandRange(b)'s lo ≤ i <
// hi. (The largest b with ⌊b·size/bands⌋ ≤ i is ⌊(i·bands+bands−1)/size⌋;
// a plain ⌊i·bands/size⌋ disagrees with BandRange at boundaries when
// bands does not divide size.)
func BandOf(i, size, bands int) int {
	return (i*bands + bands - 1) / size
}

// BandRange returns the half-open index range of band b over a space of
// `size` indices cut into `bands` ranges.
func BandRange(b, size, bands int) (lo, hi int) {
	return b * size / bands, (b + 1) * size / bands
}
