// Package lowerbound implements Theorem 1 of the paper: the counting
// argument that lower-bounds the redundancy any P-RAM simulation scheme
// needs on a DMMPC with n processors, M = n^(1+ε) modules and m = n^k
// variables to finish an arbitrary step in time h,
//
//	r = Ω( (k−1)·log n / (ε·log n + log h) ).
//
// The package provides the asymptotic bound, a numeric solver for the
// exact inequality the proof derives, and the constructive adversary the
// proof implies: given any concrete memory map with too little redundancy,
// it finds a set of variables whose copies concentrate in few modules, so
// that a step accessing them is forced to serialize.
package lowerbound

import (
	"math"
	"sort"

	"repro/internal/memmap"
)

// AsymptoticR returns the Θ-form bound (k−1)·log n / (ε·log n + log h).
// For constant k>1, ε>0 and polylog h this is O(1) — the observation that
// makes the paper's constant-redundancy scheme possible.
func AsymptoticR(n int, k, eps float64, h float64) float64 {
	logn := math.Log2(float64(n))
	logh := math.Log2(h)
	den := eps*logn + logh
	if den <= 0 {
		return math.Inf(1)
	}
	return (k - 1) * logn / den
}

// ExactP solves the proof's inequality for the smallest average update
// count p (p ≤ r) consistent with simulating a step in time h:
//
//	p ≥ (log m − log n − 1) / (2·[log(M−2p+1) − log(n/h − 2p)])
//
// by fixed-point iteration (the right side decreases in p). Returns 0 when
// the regime is degenerate (n/h too small for the argument to bite).
func ExactP(n, M int, m float64, h int) float64 {
	q := float64(n)/float64(h) - 1 // module-set size of the counting argument
	if q <= 2 {
		return 0
	}
	num := math.Log2(m) - math.Log2(float64(n)) - 1
	if num <= 0 {
		return 0
	}
	p := 0.5
	for iter := 0; iter < 64; iter++ {
		den := 2 * (math.Log2(float64(M)-2*p+1) - math.Log2(float64(n)/float64(h)-2*p))
		if den <= 0 {
			return math.Inf(1)
		}
		next := num / den
		if next <= p || 2*next >= float64(n)/float64(h)-1 {
			return math.Max(next, p)
		}
		p = next
	}
	return p
}

// Concentration describes the adversarial variable set found against a map.
type Concentration struct {
	Vars    []int // the chosen variables
	Modules int   // distinct modules their copies occupy
	// SerialLower is the forced step time for a machine whose modules
	// serve one access per phase: every chosen variable must receive at
	// least one copy access, so time ≥ Vars/Modules.
	SerialLower float64
}

// FindConcentrated greedily builds the Theorem-1 adversary for a concrete
// map: count variables whose FULL copy sets fall inside a small module
// window, growing the window from the most loaded modules. It returns the
// best (most forcing) concentration over the windows probed.
func FindConcentrated(mp *memmap.Map, maxVars int) Concentration {
	loads := mp.ModuleLoads()
	order := make([]int, len(loads))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if loads[order[a]] != loads[order[b]] {
			return loads[order[a]] > loads[order[b]]
		}
		return order[a] < order[b]
	})
	best := Concentration{Modules: len(loads)}
	window := make(map[uint32]bool)
	r := mp.R()
	// Grow the window module by module; after each growth step, collect
	// the variables fully inside it. O(m·r) per probe — probe at powers
	// of two to keep it cheap.
	probeAt := 1
	for wi := 0; wi < len(order); wi++ {
		window[uint32(order[wi])] = true
		if wi+1 != probeAt {
			continue
		}
		probeAt *= 2
		var vars []int
		for v := 0; v < mp.Vars() && len(vars) < maxVars; v++ {
			inside := true
			for j := 0; j < r; j++ {
				if !window[uint32(mp.ModuleOf(v, j))] {
					inside = false
					break
				}
			}
			if inside {
				vars = append(vars, v)
			}
		}
		if len(vars) == 0 {
			continue
		}
		force := float64(len(vars)) / float64(len(window))
		if force > best.SerialLower {
			best = Concentration{
				Vars:        vars,
				Modules:     len(window),
				SerialLower: force,
			}
		}
	}
	return best
}

// RedundancyTable renders the Theorem 1 bound across the (k, ε) grid the
// paper's discussion walks through, at h = log²n. A row with ε = 0 shows
// the coarse-grain (MPC) regime where the bound is Θ(log n / log log n);
// every ε > 0 row collapses to O(1).
type TableRow struct {
	K, Eps float64
	N      int
	R      float64
}

// Table evaluates AsymptoticR over the given grids.
func Table(ns []int, ks, epss []float64) []TableRow {
	var rows []TableRow
	for _, k := range ks {
		for _, e := range epss {
			for _, n := range ns {
				h := math.Pow(math.Log2(float64(n)), 2)
				rows = append(rows, TableRow{K: k, Eps: e, N: n, R: AsymptoticR(n, k, e, h)})
			}
		}
	}
	return rows
}
