package lowerbound

import (
	"math"
	"testing"

	"repro/internal/memmap"
)

func TestAsymptoticRConstantWhenFineGrain(t *testing.T) {
	// k=2, ε=1, h=log²n: bound must stay O(1) as n grows.
	prev := math.Inf(1)
	for _, n := range []int{1 << 8, 1 << 12, 1 << 16, 1 << 20} {
		h := math.Pow(math.Log2(float64(n)), 2)
		r := AsymptoticR(n, 2, 1, h)
		if r > 2 {
			t.Errorf("n=%d: bound %v should be ≤ (k-1)/ε + o(1) = 1 + o(1)", n, r)
		}
		_ = prev
		prev = r
	}
}

func TestAsymptoticRGrowsWhenCoarseGrain(t *testing.T) {
	// ε=0 (MPC): bound becomes (k−1)·log n / log h = Θ(log n / log log n),
	// so it must grow with n.
	small := AsymptoticR(1<<8, 2, 0, math.Pow(8, 2))
	large := AsymptoticR(1<<20, 2, 0, math.Pow(20, 2))
	if large <= small {
		t.Errorf("coarse-grain bound should grow: %v -> %v", small, large)
	}
}

func TestAsymptoticRTrivialCases(t *testing.T) {
	// k=1: one variable per processor, no contention, bound 0.
	if r := AsymptoticR(1024, 1, 0.5, 100); r != 0 {
		t.Errorf("k=1 bound = %v, want 0", r)
	}
	// Degenerate denominator.
	if r := AsymptoticR(1024, 2, 0, 1); !math.IsInf(r, 1) {
		t.Errorf("h=1, eps=0 should blow up, got %v", r)
	}
}

func TestExactPPositiveInCoarseRegime(t *testing.T) {
	// MPC regime: M=n, m=n², h=16 — the counting argument must force p>1.
	n := 1 << 12
	p := ExactP(n, n, float64(n)*float64(n), 16)
	if p <= 1 {
		t.Errorf("coarse-grain exact bound p = %v, want > 1", p)
	}
}

func TestExactPVanishesFineGrain(t *testing.T) {
	// Fine grain: M = n^2 modules. The bound should be ≤ a small constant.
	n := 1 << 10
	p := ExactP(n, n*n, float64(n)*float64(n), 16)
	if p > 3 {
		t.Errorf("fine-grain exact bound p = %v, want small constant", p)
	}
}

func TestExactPDegenerate(t *testing.T) {
	if p := ExactP(16, 16, 256, 16); p != 0 {
		t.Errorf("degenerate n/h: p = %v, want 0", p)
	}
	if p := ExactP(1024, 1024, float64(1024), 4); p != 0 {
		t.Errorf("m = n: p = %v, want 0 (log m - log n - 1 < 0)", p)
	}
}

func TestFindConcentratedOnCorruptMap(t *testing.T) {
	// A map squeezed into r modules concentrates everything: the adversary
	// must find a set forcing ~m/r-ish serialization.
	p := memmap.Params{N: 128, M: 512, Mem: 1024, K: 2, Eps: 1, B: 4, C: 2}
	mp := memmap.GenerateCorrupt(p, p.R(), 7)
	conc := FindConcentrated(mp, 128)
	if len(conc.Vars) == 0 {
		t.Fatal("adversary found nothing on a fully concentrated map")
	}
	if conc.SerialLower < 8 {
		t.Errorf("forced serialization %v, want ≥ 8 on a corrupt map", conc.SerialLower)
	}
}

func TestFindConcentratedOnHealthyMapIsWeak(t *testing.T) {
	// Against a Lemma-2 map the same adversary should gain little: the
	// expansion property spreads every variable set.
	p := memmap.LemmaTwo(128, 2, 1)
	mp := memmap.Generate(p, 7)
	conc := FindConcentrated(mp, 128)
	if conc.SerialLower > 4 {
		t.Errorf("adversary forced %v serialization on a healthy map", conc.SerialLower)
	}
}

func TestTableShape(t *testing.T) {
	rows := Table([]int{256, 1024}, []float64{2, 3}, []float64{0, 0.5, 1})
	if len(rows) != 2*2*3 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	// Bound must increase with k and decrease with ε.
	find := func(k, e float64, n int) float64 {
		for _, r := range rows {
			if r.K == k && r.Eps == e && r.N == n {
				return r.R
			}
		}
		t.Fatalf("row (%v,%v,%d) missing", k, e, n)
		return 0
	}
	if find(3, 0.5, 1024) <= find(2, 0.5, 1024) {
		t.Error("bound should grow with k")
	}
	if find(2, 1, 1024) >= find(2, 0.5, 1024) {
		t.Error("bound should shrink with ε")
	}
}
