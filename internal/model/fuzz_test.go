package model

import "testing"

// FuzzResolveStep: arbitrary request streams must preserve the core step
// invariants under every conflict mode — reads return pre-step values and
// exactly the read set is answered.
func FuzzResolveStep(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, uint8(2))
	f.Add([]byte{9, 9, 9, 9, 9, 9}, uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, modeRaw uint8) {
		const m = 16
		mode := Mode(modeRaw % 5)
		mem := make(SliceStore, m)
		for i := range mem {
			mem[i] = Word(i * 11)
		}
		pre := make([]Word, m)
		copy(pre, mem)
		var batch Batch
		for i := 0; i+2 < len(raw) && i/3 < 32; i += 3 {
			proc := i / 3
			switch raw[i] % 3 {
			case 0:
				batch = append(batch, Request{Proc: proc, Op: OpRead, Addr: int(raw[i+1]) % m})
			case 1:
				batch = append(batch, Request{Proc: proc, Op: OpWrite, Addr: int(raw[i+1]) % m, Value: Word(raw[i+2])})
			default:
				batch = append(batch, Request{Proc: proc, Op: OpNone})
			}
		}
		vals, _ := ResolveStep(mem, batch, mode)
		reads := 0
		for _, r := range batch {
			if r.Op == OpRead {
				reads++
				if vals[r.Proc] != pre[r.Addr] {
					t.Fatalf("read by %d saw %d, want pre-step %d", r.Proc, vals[r.Proc], pre[r.Addr])
				}
			}
		}
		if len(vals) != reads {
			t.Fatalf("answered %d reads, batch had %d", len(vals), reads)
		}
		// Cells not written must be unchanged.
		written := map[Addr]bool{}
		for _, r := range batch {
			if r.Op == OpWrite {
				written[r.Addr] = true
			}
		}
		for a := 0; a < m; a++ {
			if !written[a] && mem[a] != pre[a] {
				t.Fatalf("cell %d changed without a writer", a)
			}
		}
	})
}
