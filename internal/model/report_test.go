package model

import (
	"errors"
	"testing"
)

func TestMergeStepReports(t *testing.T) {
	errB := errors.New("shard b failed")
	parts := []StepReport{
		{Values: []Word{1, 2}, Time: 10, Phases: 3, CopyAccesses: 100, ModuleContention: 2, NetworkCycles: 50},
		{Values: []Word{3, 4}, Time: 7, Phases: 5, CopyAccesses: 30, ModuleContention: 4, NetworkCycles: 80, Err: errB},
		{Values: []Word{5}, Time: 12, Phases: 1, CopyAccesses: 1, ModuleContention: 1, NetworkCycles: 0},
	}
	var agg StepReport
	MergeStepReports(&agg, parts, 2)

	if agg.Time != 12 || agg.Phases != 5 || agg.NetworkCycles != 80 || agg.ModuleContention != 4 {
		t.Errorf("makespan/peak fields wrong: %+v", agg)
	}
	if agg.CopyAccesses != 131 {
		t.Errorf("CopyAccesses = %d, want summed 131", agg.CopyAccesses)
	}
	if agg.Err != errB {
		t.Errorf("Err = %v, want first non-nil in shard order", agg.Err)
	}
	want := []Word{1, 2, 3, 4, 5, 0} // shard k at offset 2k; short shard zero-padded
	if len(agg.Values) != len(want) {
		t.Fatalf("Values len = %d, want %d", len(agg.Values), len(want))
	}
	for i, w := range want {
		if agg.Values[i] != w {
			t.Errorf("Values[%d] = %d, want %d", i, agg.Values[i], w)
		}
	}
}

// TestMergeStepReportsReuse: merging into the same dst reuses the Values
// buffer (no allocation in steady state) and fully overwrites stale state.
func TestMergeStepReportsReuse(t *testing.T) {
	parts := []StepReport{{Values: []Word{9}, Time: 1, Err: errors.New("old")}}
	var agg StepReport
	MergeStepReports(&agg, parts, 1)
	buf := &agg.Values[0]

	parts2 := []StepReport{{Values: []Word{4}, Time: 2}}
	if avg := testing.AllocsPerRun(10, func() {
		MergeStepReports(&agg, parts2, 1)
	}); avg != 0 {
		t.Errorf("steady-state merge allocates %.1f/op, want 0", avg)
	}
	if &agg.Values[0] != buf {
		t.Error("merge did not reuse the dst Values buffer")
	}
	if agg.Err != nil || agg.Values[0] != 4 || agg.Time != 2 {
		t.Errorf("stale state survived the merge: %+v", agg)
	}
}
