package model

import "sort"

// Store is the minimal mutable-memory interface the semantic resolver needs.
type Store interface {
	Get(a Addr) Word
	Set(a Addr, v Word)
}

// SliceStore is a Store backed by a flat slice, the common case.
type SliceStore []Word

// Get returns the word at address a.
func (s SliceStore) Get(a Addr) Word { return s[a] }

// Set stores v at address a.
func (s SliceStore) Set(a Addr, v Word) { s[a] = v }

// ResolveStep computes the semantic outcome of one P-RAM step against store:
// every read receives the pre-step value of its cell, and writes are
// committed afterwards under the given conflict Mode. It returns the read
// values and the first conflict-discipline violation detected (nil if the
// batch is legal under mode). Execution always proceeds; violations are
// resolved by Priority rules so that simulation can continue and tests can
// observe the error.
//
// Centralizing this logic guarantees that every backend — however exotic its
// cost model — agrees exactly on memory semantics, which is the correctness
// invariant the property tests check.
func ResolveStep(store Store, batch Batch, mode Mode) (map[int]Word, error) {
	values := make(map[int]Word, batch.Reads())
	// Reads observe pre-step state.
	for _, r := range batch {
		if r.Op == OpRead {
			values[r.Proc] = store.Get(r.Addr)
		}
	}
	err := CheckConflicts(batch, mode)
	// Commit writes. Iterating in ascending processor id and letting the
	// FIRST writer win implements Priority; Arbitrary keeps the last.
	type pw struct {
		proc int
		val  Word
	}
	writers := make(map[Addr]pw)
	for _, r := range batch {
		if r.Op != OpWrite {
			continue
		}
		prev, seen := writers[r.Addr]
		switch {
		case !seen:
			writers[r.Addr] = pw{r.Proc, r.Value}
		case mode == CRCWArbitrary:
			if r.Proc > prev.proc {
				writers[r.Addr] = pw{r.Proc, r.Value}
			}
		default: // Priority semantics: lowest id wins.
			if r.Proc < prev.proc {
				writers[r.Addr] = pw{r.Proc, r.Value}
			}
		}
	}
	for a, w := range writers {
		store.Set(a, w.val)
	}
	return values, err
}

// CheckConflicts validates batch against the conflict discipline of mode and
// returns a *ConflictError describing the first violation found (scanning
// addresses in ascending order for determinism), or nil.
func CheckConflicts(batch Batch, mode Mode) error {
	type touch struct {
		readers []int
		writers []int
		vals    []Word
	}
	byAddr := make(map[Addr]*touch)
	for _, r := range batch {
		if r.Op == OpNone {
			continue
		}
		t := byAddr[r.Addr]
		if t == nil {
			t = &touch{}
			byAddr[r.Addr] = t
		}
		if r.Op == OpRead {
			t.readers = append(t.readers, r.Proc)
		} else {
			t.writers = append(t.writers, r.Proc)
			t.vals = append(t.vals, r.Value)
		}
	}
	addrs := make([]Addr, 0, len(byAddr))
	for a := range byAddr {
		addrs = append(addrs, a)
	}
	sort.Ints(addrs)
	for _, a := range addrs {
		t := byAddr[a]
		sort.Ints(t.readers)
		sort.Ints(t.writers)
		switch mode {
		case EREW:
			if len(t.readers)+len(t.writers) > 1 {
				procs := append(append([]int{}, t.readers...), t.writers...)
				sort.Ints(procs)
				return &ConflictError{Mode: mode, Addr: a, Procs: procs, Kind: "concurrent access"}
			}
		case CREW:
			if len(t.writers) > 1 {
				return &ConflictError{Mode: mode, Addr: a, Procs: t.writers, Kind: "concurrent write"}
			}
			if len(t.writers) == 1 && len(t.readers) > 0 {
				procs := append(append([]int{}, t.readers...), t.writers...)
				sort.Ints(procs)
				return &ConflictError{Mode: mode, Addr: a, Procs: procs, Kind: "read/write collision"}
			}
		case CRCWCommon:
			for i := 1; i < len(t.vals); i++ {
				if t.vals[i] != t.vals[0] {
					return &ConflictError{Mode: mode, Addr: a, Procs: t.writers, Kind: "disagreeing common write"}
				}
			}
		case CRCWPriority, CRCWArbitrary:
			// Always legal.
		}
	}
	return nil
}
