package model

import (
	"cmp"
	"slices"
	"sort"
)

// Store is the minimal mutable-memory interface the semantic resolver needs.
type Store interface {
	Get(a Addr) Word
	Set(a Addr, v Word)
}

// SliceStore is a Store backed by a flat slice, the common case.
type SliceStore []Word

// Get returns the word at address a.
func (s SliceStore) Get(a Addr) Word { return s[a] }

// Set stores v at address a.
func (s SliceStore) Set(a Addr, v Word) { s[a] = v }

// ResolveStep computes the semantic outcome of one P-RAM step against store:
// every read receives the pre-step value of its cell, and writes are
// committed afterwards under the given conflict Mode. It returns the read
// values densely indexed by processor id (zero for processors that did not
// read) and the first conflict-discipline violation detected (nil if the
// batch is legal under mode). Execution always proceeds; violations are
// resolved by Priority rules so that simulation can continue and tests can
// observe the error.
//
// Centralizing this logic guarantees that every backend — however exotic its
// cost model — agrees exactly on memory semantics, which is the correctness
// invariant the property tests check.
func ResolveStep(store Store, batch Batch, mode Mode) ([]Word, error) {
	return ResolveStepInto(nil, store, batch, mode)
}

// ResolveStepInto is ResolveStep with a caller-supplied values buffer. The
// buffer is grown as needed and returned resized to len(batch), or further
// if some request's Proc exceeds the batch length (sparse batches from
// direct callers). Under EREW/CREW/CRCW-Common the conflict check still
// allocates scratch per call; steady-state backends use
// ConflictChecker.ResolveStepInto, which reuses it.
func ResolveStepInto(values []Word, store Store, batch Batch, mode Mode) ([]Word, error) {
	var c ConflictChecker
	return c.ResolveStepInto(values, store, batch, mode)
}

// ResolveStepInto is the allocation-free (in steady state) form of the
// package-level ResolveStepInto: the checker's scratch is reused across
// steps, so backends that own a ConflictChecker stay off the heap under
// every conflict mode.
func (c *ConflictChecker) ResolveStepInto(values []Word, store Store, batch Batch, mode Mode) ([]Word, error) {
	need := len(batch)
	ascending := true // writer procs strictly ascending in batch order?
	prevWriter := -1
	for _, r := range batch {
		if r.Op == OpNone {
			continue
		}
		if r.Proc >= need {
			need = r.Proc + 1
		}
		if r.Op == OpWrite {
			if r.Proc <= prevWriter {
				ascending = false
			}
			prevWriter = r.Proc
		}
	}
	if cap(values) < need {
		values = make([]Word, need)
	}
	values = values[:need]
	clear(values)
	// Reads observe pre-step state.
	for _, r := range batch {
		if r.Op == OpRead {
			values[r.Proc] = store.Get(r.Addr)
		}
	}
	err := c.Check(batch, mode)
	// Commit writes. Letting the LOWEST processor id win implements
	// Priority; Arbitrary keeps the highest. Batches normally list writers
	// in ascending processor order (Batch is indexed by processor), so the
	// winner per address is just the last Set in the right direction — no
	// per-address map, keeping steady-state steps allocation-free.
	if ascending {
		if mode == CRCWArbitrary {
			for _, r := range batch { // forward: highest proc writes last
				if r.Op == OpWrite {
					store.Set(r.Addr, r.Value)
				}
			}
		} else {
			for i := len(batch) - 1; i >= 0; i-- { // reverse: lowest proc writes last
				if r := batch[i]; r.Op == OpWrite {
					store.Set(r.Addr, r.Value)
				}
			}
		}
		return values, err
	}
	// Rare path: direct callers with out-of-order writer procs.
	type pw struct {
		proc int
		val  Word
	}
	writers := make(map[Addr]pw)
	for _, r := range batch {
		if r.Op != OpWrite {
			continue
		}
		prev, seen := writers[r.Addr]
		switch {
		case !seen:
			writers[r.Addr] = pw{r.Proc, r.Value}
		case mode == CRCWArbitrary:
			if r.Proc > prev.proc {
				writers[r.Addr] = pw{r.Proc, r.Value}
			}
		default: // Priority semantics: lowest id wins.
			if r.Proc < prev.proc {
				writers[r.Addr] = pw{r.Proc, r.Value}
			}
		}
	}
	//pram:unordered one winning write per distinct address: disjoint Sets commute
	for a, w := range writers {
		store.Set(a, w.val)
	}
	return values, err
}

// CheckConflicts validates batch against the conflict discipline of mode and
// returns a *ConflictError describing the first violation found (scanning
// addresses in ascending order for determinism), or nil.
func CheckConflicts(batch Batch, mode Mode) error {
	var c ConflictChecker
	return c.Check(batch, mode)
}

// ConflictRec is one active request flattened for sorted address scans —
// the record format shared by the conflict checker and the quorum backend's
// dedup pass, so one flatten+sort serves both.
type ConflictRec struct {
	Addr  Addr
	Proc  int
	Val   Word
	Write bool
}

// ConflictChecker validates conflict disciplines without allocating in
// steady state: the flattened request records are kept in a reusable scratch
// slice and grouped by a single sort instead of per-address maps. A zero
// ConflictChecker is ready to use; it is not safe for concurrent use.
type ConflictChecker struct {
	recs []ConflictRec
}

// Check validates batch against mode exactly like CheckConflicts. Under
// CRCW-Priority and CRCW-Arbitrary every batch is legal and the check is
// free.
func (c *ConflictChecker) Check(batch Batch, mode Mode) error {
	if mode == CRCWPriority || mode == CRCWArbitrary {
		return nil // always legal; keep the hot path free
	}
	recs := c.recs[:0]
	for _, r := range batch {
		if r.Op == OpNone {
			continue
		}
		recs = append(recs, ConflictRec{Addr: r.Addr, Proc: r.Proc, Val: r.Value, Write: r.Op == OpWrite})
	}
	c.recs = recs
	slices.SortFunc(recs, func(a, b ConflictRec) int {
		if a.Addr != b.Addr {
			return cmp.Compare(a.Addr, b.Addr)
		}
		return cmp.Compare(a.Proc, b.Proc)
	})
	return CheckSortedRecords(recs, mode)
}

// CheckSortedRecords validates flattened records that are already grouped
// by ascending address (any record order within an address group is
// accepted — error Procs lists are sorted independently). Callers that
// maintain such a sorted record slice anyway (the quorum backend's dedup
// pass) use this to avoid flattening and sorting the batch twice.
func CheckSortedRecords(recs []ConflictRec, mode Mode) error {
	if mode == CRCWPriority || mode == CRCWArbitrary {
		return nil
	}
	for i := 0; i < len(recs); {
		j := i
		for j < len(recs) && recs[j].Addr == recs[i].Addr {
			j++
		}
		if err := checkGroup(recs[i:j], mode); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// checkGroup validates the accesses to one address.
func checkGroup(group []ConflictRec, mode Mode) error {
	switch mode {
	case EREW:
		if len(group) > 1 {
			return &ConflictError{Mode: mode, Addr: group[0].Addr,
				Procs: groupProcs(group, false), Kind: "concurrent access"}
		}
	case CREW:
		writers := groupProcs(group, true)
		if len(writers) > 1 {
			return &ConflictError{Mode: mode, Addr: group[0].Addr,
				Procs: writers, Kind: "concurrent write"}
		}
		if len(writers) == 1 && len(group) > 1 {
			return &ConflictError{Mode: mode, Addr: group[0].Addr,
				Procs: groupProcs(group, false), Kind: "read/write collision"}
		}
	case CRCWCommon:
		var first Word
		seen := false
		for _, g := range group {
			if !g.Write {
				continue
			}
			if !seen {
				first, seen = g.Val, true
			} else if g.Val != first {
				return &ConflictError{Mode: mode, Addr: group[0].Addr,
					Procs: groupProcs(group, true), Kind: "disagreeing common write"}
			}
		}
	}
	return nil
}

// groupProcs extracts the processor ids of a group, optionally restricted
// to writers, in ascending order. Only called on error paths.
func groupProcs(group []ConflictRec, writersOnly bool) []int {
	procs := make([]int, 0, len(group))
	for _, g := range group {
		if writersOnly && !g.Write {
			continue
		}
		procs = append(procs, g.Proc)
	}
	sort.Ints(procs)
	return procs
}
