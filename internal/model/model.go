// Package model defines the vocabulary shared by every machine model in the
// repository: memory words, access requests, conflict-resolution modes, the
// per-step cost report, and the Backend interface that all P-RAM simulators
// (ideal, MPC, DMMPC, 2DMOT, IDA, hashing) implement.
//
// A P-RAM step is a batch of at most one memory request per processor.
// Reads observe the memory state at the start of the step; writes commit at
// the end of the step. Concurrent-write conflicts are resolved by the
// backend's configured Mode (Priority: the lowest processor id wins).
package model

import "fmt"

// Word is the unit of P-RAM shared memory. The paper's machines are
// word-oriented RAMs; 64-bit words are a faithful modern rendering.
type Word = int64

// Addr is an index into the shared address space [0, m).
type Addr = int

// Op distinguishes the kinds of memory requests a processor can issue in a
// step.
type Op uint8

const (
	// OpNone marks a processor that performs only local computation this
	// step (or has halted).
	OpNone Op = iota
	// OpRead fetches a shared-memory word.
	OpRead
	// OpWrite stores a shared-memory word.
	OpWrite
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpNone:
		return "none"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Mode selects the P-RAM read/write conflict convention. The paper's
// simulations carry over to any variant; the conflict rules below are
// enforced (EREW, CREW) or resolved (CRCW) by the backends.
type Mode uint8

const (
	// EREW forbids two processors from touching the same cell in a step.
	EREW Mode = iota
	// CREW allows concurrent reads of a cell but exclusive writes.
	CREW
	// CRCWPriority allows concurrent reads and writes; among concurrent
	// writers to a cell the one with the lowest processor id succeeds.
	CRCWPriority
	// CRCWCommon allows concurrent writes only if all writers agree on the
	// value; disagreement is a program error.
	CRCWCommon
	// CRCWArbitrary allows concurrent writes; an arbitrary writer wins.
	// Deterministically rendered here as the highest processor id, so that
	// it is distinguishable from Priority in tests.
	CRCWArbitrary
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case EREW:
		return "EREW"
	case CREW:
		return "CREW"
	case CRCWPriority:
		return "CRCW-priority"
	case CRCWCommon:
		return "CRCW-common"
	case CRCWArbitrary:
		return "CRCW-arbitrary"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Request is one processor's memory action for a step.
type Request struct {
	Proc  int  // issuing processor id in [0, n)
	Op    Op   // read, write or none
	Addr  Addr // shared address, meaningful when Op != OpNone
	Value Word // payload, meaningful when Op == OpWrite
}

// Batch is the collection of requests forming one P-RAM step. Entries are
// indexed by processor id; a missing processor is represented by OpNone.
type Batch []Request

// NewBatch returns an all-idle batch for n processors.
func NewBatch(n int) Batch {
	b := make(Batch, n)
	for i := range b {
		b[i] = Request{Proc: i, Op: OpNone}
	}
	return b
}

// Reads reports the number of read requests in the batch.
func (b Batch) Reads() int {
	k := 0
	for _, r := range b {
		if r.Op == OpRead {
			k++
		}
	}
	return k
}

// Writes reports the number of write requests in the batch.
func (b Batch) Writes() int {
	k := 0
	for _, r := range b {
		if r.Op == OpWrite {
			k++
		}
	}
	return k
}

// Active reports the number of non-idle requests in the batch.
func (b Batch) Active() int { return b.Reads() + b.Writes() }

// StepReport carries the simulated cost of executing one P-RAM step,
// together with the values satisfied reads produced.
type StepReport struct {
	// Values holds, indexed by processor id, the word each processor's
	// read returned; entries of processors that did not read are zero.
	// Backends may reuse the backing slice across steps, so the contents
	// are only valid until the next ExecuteStep call on the same backend —
	// copy them if they must outlive the step.
	Values []Word
	// Time is the simulated duration of the step in the backend's native
	// unit (1 for the ideal P-RAM, phases for module machines, network
	// cycles for the 2DMOT).
	Time int64
	// Phases is the number of protocol phases used by quorum backends
	// (0 for backends without a phase structure).
	Phases int
	// CopyAccesses counts individual variable-copy accesses performed.
	CopyAccesses int64
	// ModuleContention is the maximum number of requests any single memory
	// module had to serve during the step.
	ModuleContention int
	// NetworkCycles is the number of interconnect cycles consumed
	// (2DMOT backends only; 0 elsewhere).
	NetworkCycles int64
	// Err records a detected conflict-discipline violation (EREW/CREW/
	// CRCW-common), if any. The step still executes under Priority rules.
	Err error
}

// Backend is a machine that can execute P-RAM steps. Implementations must
// preserve P-RAM semantics exactly (reads see pre-step state, writes commit
// at step end, conflicts resolved per the backend's Mode) while charging
// their own model-specific cost.
type Backend interface {
	// Name identifies the machine model for reports.
	Name() string
	// MemSize returns m, the number of shared cells.
	MemSize() int
	// Procs returns n, the number of processors.
	Procs() int
	// ExecuteStep runs one P-RAM step.
	ExecuteStep(batch Batch) StepReport
	// ReadCell inspects the current committed value of a cell without
	// charging simulated time (for result verification and debugging).
	ReadCell(a Addr) Word
	// LoadCells initializes shared memory contents without charging
	// simulated time (for workload setup).
	LoadCells(base Addr, vals []Word)
}

// ConflictError describes a violation of the configured conflict mode.
type ConflictError struct {
	Mode  Mode
	Addr  Addr
	Procs []int // offending processor ids, ascending
	Kind  string
}

// Error implements the error interface.
func (e *ConflictError) Error() string {
	return fmt.Sprintf("%s violation: %s of cell %d by processors %v",
		e.Mode, e.Kind, e.Addr, e.Procs)
}
