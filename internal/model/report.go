package model

// MergeStepReports combines the per-shard reports of K P-RAM steps that
// executed side by side — one independent simulated program per shard —
// into one aggregate report, deterministically and without allocating in
// steady state (the dst buffers are reused).
//
// Aggregation semantics model K machines running concurrently in simulated
// time: makespans (Time, Phases, NetworkCycles) and peaks
// (ModuleContention) take the maximum over shards, work counters
// (CopyAccesses) sum, and Err keeps the first non-nil error in shard
// order. Values are laid out densely by GLOBAL processor id: shard k's
// processor p lands at k*procsPerShard + p. Every rule is a fold over
// shards in index order, so the merge is independent of the order the
// shards actually executed in — the property the pool's differential tests
// rely on.
//
// The merged report's Values slice aliases dst's buffer and is valid until
// the next merge into the same dst; the parts' Values are only read.
func MergeStepReports(dst *StepReport, parts []StepReport, procsPerShard int) {
	need := len(parts) * procsPerShard
	if cap(dst.Values) < need {
		dst.Values = make([]Word, need)
	}
	dst.Values = dst.Values[:need]
	clear(dst.Values)
	dst.Time = 0
	dst.Phases = 0
	dst.CopyAccesses = 0
	dst.ModuleContention = 0
	dst.NetworkCycles = 0
	dst.Err = nil
	for k := range parts {
		p := &parts[k]
		if p.Time > dst.Time {
			dst.Time = p.Time
		}
		if p.Phases > dst.Phases {
			dst.Phases = p.Phases
		}
		dst.CopyAccesses += p.CopyAccesses
		if p.ModuleContention > dst.ModuleContention {
			dst.ModuleContention = p.ModuleContention
		}
		if p.NetworkCycles > dst.NetworkCycles {
			dst.NetworkCycles = p.NetworkCycles
		}
		if dst.Err == nil && p.Err != nil {
			dst.Err = p.Err
		}
		base := k * procsPerShard
		n := len(p.Values)
		if n > procsPerShard {
			n = procsPerShard
		}
		copy(dst.Values[base:base+n], p.Values[:n])
	}
}
