package model

import (
	"cmp"
	"math/rand"
	"slices"
	"testing"
)

// TestRadixSortConflictRecs: for ascending-processor inputs (the batch
// contract), the stable radix pass must reproduce the comparison sort's
// (Addr, Write, Proc) order exactly, across address widths that exercise
// 1, 2 and 3 digit passes (odd and even pass counts land the result in
// different buffers).
func TestRadixSortConflictRecs(t *testing.T) {
	for _, maxAddr := range []Addr{200, 40_000, 3_000_000} {
		rng := rand.New(rand.NewSource(int64(maxAddr)))
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(300)
			recs := make([]ConflictRec, n)
			for i := range recs {
				recs[i] = ConflictRec{
					Addr:  rng.Intn(int(maxAddr) + 1),
					Proc:  i, // ascending, as in a real batch
					Val:   Word(rng.Int63n(1 << 30)),
					Write: rng.Intn(2) == 0,
				}
			}
			want := slices.Clone(recs)
			slices.SortFunc(want, func(a, b ConflictRec) int {
				if a.Addr != b.Addr {
					return cmp.Compare(a.Addr, b.Addr)
				}
				if a.Write != b.Write {
					if a.Write {
						return 1
					}
					return -1
				}
				return cmp.Compare(a.Proc, b.Proc)
			})
			tmp := make([]ConflictRec, n)
			got, spare := RadixSortConflictRecs(recs, tmp, maxAddr)
			if len(spare) != n {
				t.Fatalf("spare buffer len %d, want %d", len(spare), n)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("maxAddr=%d trial=%d: rec %d = %+v, want %+v",
						maxAddr, trial, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRadixSortConflictRecsEmpty: degenerate inputs stay well-formed.
func TestRadixSortConflictRecsEmpty(t *testing.T) {
	got, spare := RadixSortConflictRecs(nil, nil, 0)
	if len(got) != 0 || len(spare) != 0 {
		t.Fatalf("empty sort returned %d/%d records", len(got), len(spare))
	}
}
