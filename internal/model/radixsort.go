package model

// RadixSortConflictRecs stable-sorts flattened request records by
// (Addr, Write) — address groups ascending, reads before writes within a
// group, INPUT order preserved within equal keys — using tmp (same length
// as recs) as the ping-pong buffer. It returns the sorted slice and the
// spare buffer; depending on pass parity either may be backed by recs or
// tmp, so callers must adopt both return values.
//
// This is the allocation-free replacement for the comparison sort in the
// per-step dedup pass (the largest remaining step cost at n ≥ 1024):
// batches list requests in ascending processor order, so a stable
// (Addr, Write) radix yields exactly the (Addr, Write, Proc) order the
// dedup walk and conflict check need — callers with out-of-order
// processors must fall back to a comparison sort. Addresses must be
// non-negative; maxAddr bounds the key space and hence the pass count
// (⌈bits/8⌉ passes of one counting sort each).
func RadixSortConflictRecs(recs, tmp []ConflictRec, maxAddr Addr) (sorted, spare []ConflictRec) {
	maxKey := uint64(maxAddr)<<1 | 1
	src, dst := recs, tmp
	var counts [256]int32
	for shift := uint(0); maxKey>>shift != 0; shift += 8 {
		counts = [256]int32{}
		for i := range src {
			counts[(recKey(&src[i])>>shift)&0xff]++
		}
		off := int32(0)
		for d := range counts {
			c := counts[d]
			counts[d] = off
			off += c
		}
		for i := range src {
			d := (recKey(&src[i]) >> shift) & 0xff
			dst[counts[d]] = src[i]
			counts[d]++
		}
		src, dst = dst, src
	}
	return src, dst
}

// recKey orders records by address, reads before writes.
func recKey(r *ConflictRec) uint64 {
	k := uint64(r.Addr) << 1
	if r.Write {
		k |= 1
	}
	return k
}
