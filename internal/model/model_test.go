package model

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{OpNone: "none", OpRead: "read", OpWrite: "write", Op(9): "op(9)"}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}

func TestModeString(t *testing.T) {
	cases := map[Mode]string{
		EREW: "EREW", CREW: "CREW", CRCWPriority: "CRCW-priority",
		CRCWCommon: "CRCW-common", CRCWArbitrary: "CRCW-arbitrary", Mode(99): "mode(99)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", m, got, want)
		}
	}
}

func TestNewBatchIdle(t *testing.T) {
	b := NewBatch(5)
	if len(b) != 5 {
		t.Fatalf("len = %d, want 5", len(b))
	}
	for i, r := range b {
		if r.Proc != i || r.Op != OpNone {
			t.Errorf("entry %d = %+v, want idle proc %d", i, r, i)
		}
	}
	if b.Active() != 0 || b.Reads() != 0 || b.Writes() != 0 {
		t.Errorf("idle batch reports activity: %d/%d/%d", b.Active(), b.Reads(), b.Writes())
	}
}

func TestBatchCounts(t *testing.T) {
	b := Batch{
		{Proc: 0, Op: OpRead, Addr: 1},
		{Proc: 1, Op: OpWrite, Addr: 2, Value: 7},
		{Proc: 2, Op: OpNone},
		{Proc: 3, Op: OpRead, Addr: 3},
	}
	if b.Reads() != 2 || b.Writes() != 1 || b.Active() != 3 {
		t.Errorf("counts = %d/%d/%d, want 2/1/3", b.Reads(), b.Writes(), b.Active())
	}
}

func TestResolveStepReadsSeePreState(t *testing.T) {
	mem := SliceStore{10, 20, 30}
	b := Batch{
		{Proc: 0, Op: OpRead, Addr: 1},
		{Proc: 1, Op: OpWrite, Addr: 1, Value: 99},
	}
	vals, err := ResolveStep(mem, b, CRCWPriority)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if vals[0] != 20 {
		t.Errorf("read saw %d, want pre-step value 20", vals[0])
	}
	if mem[1] != 99 {
		t.Errorf("write did not commit: cell = %d", mem[1])
	}
}

func TestResolveStepPriorityWrite(t *testing.T) {
	mem := SliceStore{0}
	b := Batch{
		{Proc: 3, Op: OpWrite, Addr: 0, Value: 3},
		{Proc: 1, Op: OpWrite, Addr: 0, Value: 1},
		{Proc: 2, Op: OpWrite, Addr: 0, Value: 2},
	}
	if _, err := ResolveStep(mem, b, CRCWPriority); err != nil {
		t.Fatalf("priority mode must accept concurrent writes: %v", err)
	}
	if mem[0] != 1 {
		t.Errorf("priority write committed %d, want 1 (lowest proc id)", mem[0])
	}
}

func TestResolveStepArbitraryWrite(t *testing.T) {
	mem := SliceStore{0}
	b := Batch{
		{Proc: 1, Op: OpWrite, Addr: 0, Value: 1},
		{Proc: 5, Op: OpWrite, Addr: 0, Value: 5},
		{Proc: 3, Op: OpWrite, Addr: 0, Value: 3},
	}
	if _, err := ResolveStep(mem, b, CRCWArbitrary); err != nil {
		t.Fatalf("arbitrary mode must accept concurrent writes: %v", err)
	}
	if mem[0] != 5 {
		t.Errorf("arbitrary write committed %d, want 5 (highest proc id convention)", mem[0])
	}
}

func TestResolveStepCommonWrite(t *testing.T) {
	mem := SliceStore{0}
	agree := Batch{
		{Proc: 0, Op: OpWrite, Addr: 0, Value: 7},
		{Proc: 1, Op: OpWrite, Addr: 0, Value: 7},
	}
	if _, err := ResolveStep(mem, agree, CRCWCommon); err != nil {
		t.Fatalf("agreeing common write flagged: %v", err)
	}
	disagree := Batch{
		{Proc: 0, Op: OpWrite, Addr: 0, Value: 7},
		{Proc: 1, Op: OpWrite, Addr: 0, Value: 8},
	}
	_, err := ResolveStep(mem, disagree, CRCWCommon)
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("disagreeing common write not flagged, err = %v", err)
	}
	if ce.Kind != "disagreeing common write" {
		t.Errorf("kind = %q", ce.Kind)
	}
}

func TestCheckConflictsEREW(t *testing.T) {
	// Two readers of the same cell violate EREW but not CREW.
	b := Batch{
		{Proc: 0, Op: OpRead, Addr: 4},
		{Proc: 2, Op: OpRead, Addr: 4},
	}
	if err := CheckConflicts(b, EREW); err == nil {
		t.Error("EREW concurrent read not detected")
	}
	if err := CheckConflicts(b, CREW); err != nil {
		t.Errorf("CREW rejected concurrent read: %v", err)
	}
}

func TestCheckConflictsCREW(t *testing.T) {
	rw := Batch{
		{Proc: 0, Op: OpRead, Addr: 4},
		{Proc: 1, Op: OpWrite, Addr: 4, Value: 1},
	}
	if err := CheckConflicts(rw, CREW); err == nil {
		t.Error("CREW read/write collision not detected")
	}
	ww := Batch{
		{Proc: 0, Op: OpWrite, Addr: 4, Value: 1},
		{Proc: 1, Op: OpWrite, Addr: 4, Value: 1},
	}
	if err := CheckConflicts(ww, CREW); err == nil {
		t.Error("CREW concurrent write not detected")
	}
	if err := CheckConflicts(ww, CRCWPriority); err != nil {
		t.Errorf("CRCW rejected concurrent write: %v", err)
	}
}

func TestCheckConflictsDisjointLegalEverywhere(t *testing.T) {
	b := Batch{
		{Proc: 0, Op: OpRead, Addr: 0},
		{Proc: 1, Op: OpWrite, Addr: 1, Value: 1},
		{Proc: 2, Op: OpRead, Addr: 2},
	}
	for _, m := range []Mode{EREW, CREW, CRCWPriority, CRCWCommon, CRCWArbitrary} {
		if err := CheckConflicts(b, m); err != nil {
			t.Errorf("%v rejected disjoint batch: %v", m, err)
		}
	}
}

func TestConflictErrorMessage(t *testing.T) {
	e := &ConflictError{Mode: EREW, Addr: 7, Procs: []int{1, 2}, Kind: "concurrent access"}
	want := "EREW violation: concurrent access of cell 7 by processors [1 2]"
	if e.Error() != want {
		t.Errorf("Error() = %q, want %q", e.Error(), want)
	}
}

// Property: under CRCW-Priority, ResolveStep is equivalent to a slow-motion
// reference implementation (reads of pre-state, then writes in ascending
// processor order with first-writer-wins).
func TestResolveStepMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const m, n = 16, 12
		mem := make(SliceStore, m)
		ref := make([]Word, m)
		for i := range mem {
			v := Word(rng.Intn(100))
			mem[i], ref[i] = v, v
		}
		batch := NewBatch(n)
		for i := range batch {
			switch rng.Intn(3) {
			case 0:
				batch[i] = Request{Proc: i, Op: OpRead, Addr: rng.Intn(m)}
			case 1:
				batch[i] = Request{Proc: i, Op: OpWrite, Addr: rng.Intn(m), Value: Word(rng.Intn(1000))}
			}
		}
		// Reference: reads of pre-state.
		wantVals := map[int]Word{}
		for _, r := range batch {
			if r.Op == OpRead {
				wantVals[r.Proc] = ref[r.Addr]
			}
		}
		written := map[Addr]bool{}
		for i := 0; i < n; i++ { // ascending proc id, first writer wins
			r := batch[i]
			if r.Op == OpWrite && !written[r.Addr] {
				ref[r.Addr] = r.Value
				written[r.Addr] = true
			}
		}
		gotVals, _ := ResolveStep(mem, batch, CRCWPriority)
		if len(gotVals) != len(batch) {
			return false
		}
		for p, got := range gotVals {
			if got != wantVals[p] { // non-readers must read as zero
				return false
			}
		}
		for a := range ref {
			if mem[a] != ref[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
