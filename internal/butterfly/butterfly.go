// Package butterfly implements the bounded-degree butterfly network that
// the probabilistic P-RAM emulations the paper cites actually ran on
// (Upfal 1984; Karlin & Upfal 1986; Ranade 1987): n = 2^d inputs, d+1
// levels, degree 4, with greedy destination-tag routing, per-edge FIFO
// queues of constant capacity, and Ranade-style COMBINING of requests for
// the same address — the mechanism that keeps queues O(1).
//
// The simulation is synchronous (one hop per cycle, one packet per
// directed edge per cycle) and is used by the hashing baseline to charge
// physically meaningful cycles instead of abstract module loads.
package butterfly

import (
	"fmt"
	"sort"

	"repro/internal/xmath"
)

// Packet is one routed request: from processor Src (level-0 row) to memory
// module Dst (level-d row), carrying an address used for combining.
type Packet struct {
	Src  int
	Dst  int
	Addr int // requests with equal Addr combine at merge points
}

// Stats aggregates routing-phase counters.
type Stats struct {
	Cycles   int64 // total simulated cycles
	Hops     int64 // edge traversals (combined packets count once)
	Combined int64 // packets absorbed into an equivalent one
	MaxQueue int   // deepest per-node queue observed
}

// Network is an n-input butterfly (n a power of two).
type Network struct {
	n, d int
	// QueueCap bounds each node's input queue; packets that would
	// overflow stall their upstream sender (backpressure). Ranade's
	// result is that constant capacity suffices; 4 is the default.
	QueueCap int

	stats Stats
}

// New builds an n-input butterfly network simulator.
func New(n int, queueCap int) *Network {
	if !xmath.IsPow2(n) {
		panic(fmt.Sprintf("butterfly: n=%d must be a power of two", n))
	}
	if queueCap <= 0 {
		queueCap = 4
	}
	return &Network{n: n, d: xmath.ILog2(n), QueueCap: queueCap}
}

// Inputs returns n.
func (nw *Network) Inputs() int { return nw.n }

// Depth returns d = log2 n, the number of routing levels.
func (nw *Network) Depth() int { return nw.d }

// Stats returns cumulative counters.
func (nw *Network) Stats() Stats { return nw.stats }

// flight is an in-flight packet (possibly representing several combined
// originals).
type flight struct {
	pkt     Packet
	level   int // current level (0 = injected, d = delivered)
	row     int
	members int // how many original packets this flight represents
}

// nodeKey identifies a butterfly node.
func nodeKey(level, row int) int { return level<<24 | row }

// RouteBatch routes one batch of packets from their sources to their
// destination modules (forward direction only; replies retrace the path
// with the same aggregate cost, so callers double the returned cycles for
// round trips). It returns the makespan in cycles.
//
// Combining: when two packets with the same Addr meet in a node's queue,
// they merge into one flight (Ranade's combining), so concurrent accesses
// to one variable never multiply traffic.
func (nw *Network) RouteBatch(pkts []Packet) int64 {
	if len(pkts) == 0 {
		return 0
	}
	// Per-node queues of flights awaiting their next hop.
	queues := make(map[int][]*flight)
	inject := make([]*flight, 0, len(pkts))
	for _, p := range pkts {
		if p.Src < 0 || p.Src >= nw.n || p.Dst < 0 || p.Dst >= nw.n {
			panic(fmt.Sprintf("butterfly: packet %+v out of range n=%d", p, nw.n))
		}
		inject = append(inject, &flight{pkt: p, level: 0, row: p.Src, members: 1})
	}
	// Deterministic order: by source then address.
	sort.Slice(inject, func(i, j int) bool {
		if inject[i].pkt.Src != inject[j].pkt.Src {
			return inject[i].pkt.Src < inject[j].pkt.Src
		}
		return inject[i].pkt.Addr < inject[j].pkt.Addr
	})
	for _, f := range inject {
		nw.enqueue(queues, nodeKey(0, f.row), f)
	}

	var cycles int64
	remaining := 0 // distinct flights (combined groups count once)
	//pram:unordered summing queue lengths is commutative
	for _, q := range queues {
		remaining += len(q)
	}
	const safetyCap = 1 << 24
	for remaining > 0 {
		cycles++
		if cycles > safetyCap {
			panic("butterfly: routing failed to make progress")
		}
		// Each node forwards its head flight one level per cycle; each
		// directed edge carries one flight per cycle; each output module
		// consumes one flight per cycle. Collect moves first, apply after
		// (synchronous step). Nodes are processed in sorted order for
		// determinism.
		type move struct {
			from int
			f    *flight
			to   int
		}
		var moves []move
		nodes := make([]int, 0, len(queues))
		//pram:unordered key collection; nodes is sorted before use below
		for k := range queues {
			if len(queues[k]) > 0 {
				nodes = append(nodes, k)
			}
		}
		sort.Ints(nodes)
		usedEdge := map[int64]bool{}
		delivered := map[int]bool{} // modules that consumed this cycle
		planned := map[int]int{}    // additions already scheduled per node
		for _, k := range nodes {
			f := queues[k][0]
			bit := (f.row ^ f.pkt.Dst) >> uint(f.level) & 1
			nextRow := f.row
			if bit == 1 {
				nextRow = f.row ^ (1 << uint(f.level))
			}
			to := nodeKey(f.level+1, nextRow)
			edge := int64(k)<<32 | int64(to)
			if usedEdge[edge] {
				continue // edge busy this cycle
			}
			if f.level+1 == nw.d {
				// Final hop: the module consumes one flight per cycle.
				if delivered[nextRow] {
					continue
				}
				delivered[nextRow] = true
			} else if nw.wouldOverflow(queues[to], planned[to], f) {
				continue // backpressure from a full downstream queue
			} else {
				planned[to]++
			}
			usedEdge[edge] = true
			moves = append(moves, move{from: k, f: f, to: to})
		}
		for _, mv := range moves {
			queues[mv.from] = queues[mv.from][1:]
			mv.f.level++
			mv.f.row = mv.to & ((1 << 24) - 1)
			nw.stats.Hops++
			if mv.f.level == nw.d {
				remaining-- // consumed by the module
				continue
			}
			merged := nw.enqueue(queues, mv.to, mv.f)
			if merged {
				remaining--
			}
		}
	}
	nw.stats.Cycles += cycles
	return cycles
}

// enqueue adds f to node k's queue, combining with an existing flight for
// the same address when possible. It reports whether f merged into an
// existing flight. Queue-depth stats cover only internal nodes (level ≥ 1);
// level-0 queues are the processors' own injection buffers.
func (nw *Network) enqueue(queues map[int][]*flight, k int, f *flight) bool {
	for _, g := range queues[k] {
		if g.pkt.Addr == f.pkt.Addr && g.pkt.Dst == f.pkt.Dst {
			g.members += f.members
			nw.stats.Combined++
			return true
		}
	}
	queues[k] = append(queues[k], f)
	if k>>24 >= 1 && len(queues[k]) > nw.stats.MaxQueue {
		nw.stats.MaxQueue = len(queues[k])
	}
	return false
}

// wouldOverflow reports whether adding f to queue q — which already has
// `planned` additions scheduled this cycle — would exceed capacity
// (combinable flights never overflow).
func (nw *Network) wouldOverflow(q []*flight, planned int, f *flight) bool {
	for _, g := range q {
		if g.pkt.Addr == f.pkt.Addr && g.pkt.Dst == f.pkt.Dst {
			return false
		}
	}
	return len(q)+planned >= nw.QueueCap
}
