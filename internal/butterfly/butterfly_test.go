package butterfly

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("n=12 did not panic")
		}
	}()
	New(12, 4)
}

func TestSinglePacketLatency(t *testing.T) {
	nw := New(16, 4)
	cycles := nw.RouteBatch([]Packet{{Src: 3, Dst: 12, Addr: 99}})
	// One packet: d = 4 hops, one per cycle, plus the final cycle that
	// observes completion.
	if cycles < 4 || cycles > 6 {
		t.Errorf("cycles = %d, want ~d = 4", cycles)
	}
	if nw.Stats().Hops != 4 {
		t.Errorf("hops = %d, want 4", nw.Stats().Hops)
	}
}

func TestIdentityRoutesInParallel(t *testing.T) {
	const n = 32
	nw := New(n, 4)
	pkts := make([]Packet, n)
	for i := range pkts {
		pkts[i] = Packet{Src: i, Dst: i, Addr: i}
	}
	cycles := nw.RouteBatch(pkts)
	// Identity routing uses only straight edges: fully parallel, ~d+1.
	if cycles > int64(nw.Depth()+2) {
		t.Errorf("identity permutation took %d cycles, want ≈ %d", cycles, nw.Depth())
	}
}

func TestAllToOneCombines(t *testing.T) {
	const n = 16
	nw := New(n, 4)
	pkts := make([]Packet, n)
	for i := range pkts {
		pkts[i] = Packet{Src: i, Dst: 5, Addr: 77} // same address: combinable
	}
	cycles := nw.RouteBatch(pkts)
	if nw.Stats().Combined == 0 {
		t.Error("no combining on an all-to-one same-address batch")
	}
	// With combining the hot spot costs barely more than a lone packet.
	if cycles > int64(4*nw.Depth()) {
		t.Errorf("combined hot-spot took %d cycles", cycles)
	}
}

func TestAllToOneDistinctAddressesSerializes(t *testing.T) {
	const n = 16
	nw := New(n, 4)
	pkts := make([]Packet, n)
	for i := range pkts {
		pkts[i] = Packet{Src: i, Dst: 5, Addr: i} // distinct: no combining
	}
	cycles := nw.RouteBatch(pkts)
	// n distinct packets into one module serialize at its consumption
	// rate of one per cycle: at least n cycles.
	if cycles < n {
		t.Errorf("distinct-address hot spot took only %d cycles, want ≥ %d", cycles, n)
	}
}

func TestRandomPermutationReasonable(t *testing.T) {
	const n = 64
	nw := New(n, 4)
	perm := rand.New(rand.NewSource(7)).Perm(n)
	pkts := make([]Packet, n)
	for i := range pkts {
		pkts[i] = Packet{Src: i, Dst: perm[i], Addr: i}
	}
	cycles := nw.RouteBatch(pkts)
	// Random permutations on a butterfly route in O(log n) w.h.p. with
	// constant queues; allow generous slack.
	if cycles > int64(12*nw.Depth()) {
		t.Errorf("random permutation took %d cycles (d=%d)", cycles, nw.Depth())
	}
	if nw.Stats().MaxQueue > 4 {
		t.Errorf("queue exceeded capacity: %d", nw.Stats().MaxQueue)
	}
}

func TestQueueCapRespected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 32
		nw := New(n, 3)
		k := 1 + rng.Intn(n)
		pkts := make([]Packet, k)
		for i := range pkts {
			pkts[i] = Packet{Src: rng.Intn(n), Dst: rng.Intn(n), Addr: rng.Intn(64)}
		}
		nw.RouteBatch(pkts)
		return nw.Stats().MaxQueue <= 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEmptyBatchFree(t *testing.T) {
	nw := New(8, 4)
	if c := nw.RouteBatch(nil); c != 0 {
		t.Errorf("empty batch cost %d", c)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	nw := New(8, 4)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range packet did not panic")
		}
	}()
	nw.RouteBatch([]Packet{{Src: 9, Dst: 1}})
}

func TestStatsAccumulate(t *testing.T) {
	nw := New(8, 4)
	nw.RouteBatch([]Packet{{Src: 0, Dst: 7, Addr: 1}})
	h1 := nw.Stats().Hops
	nw.RouteBatch([]Packet{{Src: 1, Dst: 6, Addr: 2}})
	if nw.Stats().Hops <= h1 {
		t.Error("hops did not accumulate")
	}
}
