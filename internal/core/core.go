package core
