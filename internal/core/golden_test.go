package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/mot"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// goldenStep is the full observable outcome of one backend step.
type goldenStep struct {
	Values           []model.Word `json:"values"`
	Time             int64        `json:"time"`
	Phases           int          `json:"phases"`
	CopyAccesses     int64        `json:"copyAccesses"`
	ModuleContention int          `json:"moduleContention"`
	NetworkCycles    int64        `json:"networkCycles"`
	Err              string       `json:"err,omitempty"`
}

// goldenRun is a scenario's full recorded trajectory.
type goldenRun struct {
	Steps []goldenStep `json:"steps"`
	Stats *mot.Stats   `json:"stats,omitempty"` // 2DMOT machines only
}

// snapStep captures a StepReport densely by processor id, so the capture is
// independent of how StepReport.Values is represented.
func snapStep(rep model.StepReport, n int) goldenStep {
	g := goldenStep{
		Values:           make([]model.Word, n),
		Time:             rep.Time,
		Phases:           rep.Phases,
		CopyAccesses:     rep.CopyAccesses,
		ModuleContention: rep.ModuleContention,
		NetworkCycles:    rep.NetworkCycles,
	}
	for p := 0; p < n; p++ {
		g.Values[p] = rep.Values[p]
	}
	if rep.Err != nil {
		g.Err = rep.Err.Error()
	}
	return g
}

// mixedBatch builds a deterministic step mixing reads, writes and idles over
// a small address window (to force read/write sharing and conflicts).
func mixedBatch(n, cells int, rng *rand.Rand) model.Batch {
	b := model.NewBatch(n)
	for p := 0; p < n; p++ {
		switch rng.Intn(3) {
		case 0:
			b[p] = model.Request{Proc: p, Op: model.OpRead, Addr: rng.Intn(cells)}
		case 1:
			b[p] = model.Request{Proc: p, Op: model.OpWrite, Addr: rng.Intn(cells), Value: rng.Int63n(1 << 20)}
		default:
			b[p] = model.Request{Proc: p, Op: model.OpNone}
		}
	}
	return b
}

// runScenario drives a backend through `steps` deterministic mixed steps.
func runScenario(back model.Backend, seed int64, steps int) goldenRun {
	rng := rand.New(rand.NewSource(seed))
	n := back.Procs()
	cells := 2 * n
	var run goldenRun
	for s := 0; s < steps; s++ {
		rep := back.ExecuteStep(mixedBatch(n, cells, rng))
		run.Steps = append(run.Steps, snapStep(rep, n))
	}
	return run
}

// TestGoldenMachines locks ExecuteStep on the DMMPC and all 2DMOT variants
// (policy × dual-rail × two-stage) to the recorded reference behavior:
// identical values, times, phase counts, contention, network cycles and
// final network stats across seeds.
func TestGoldenMachines(t *testing.T) {
	got := map[string]goldenRun{}
	for _, seed := range []int64{1, 7, 42} {
		for _, ts := range []bool{false, true} {
			dm := NewDMMPC(64, Config{TwoStage: ts})
			got[fmt.Sprintf("dmmpc/twostage=%v/seed=%d", ts, seed)] = runScenario(dm, seed, 5)
		}
		for _, pol := range []mot.Policy{mot.DropOnCollision, mot.QueueOnCollision} {
			for _, dual := range []bool{false, true} {
				for _, ts := range []bool{false, true} {
					mt := NewMOT2D(16, MOTConfig{Policy: pol, DualRail: dual, TwoStage: ts})
					r := runScenario(mt, seed, 5)
					st := mt.Net.Stats()
					r.Stats = &st
					name := fmt.Sprintf("mot2d/policy=%d/dual=%v/twostage=%v/seed=%d", pol, dual, ts, seed)
					got[name] = r
				}
			}
		}
		lu := NewLuccio(16, MOTConfig{})
		r := runScenario(lu, seed, 5)
		st := lu.Net.Stats()
		r.Stats = &st
		got[fmt.Sprintf("luccio/seed=%d", seed)] = r
	}
	path := filepath.Join("testdata", "golden_machines.json")
	if *updateGolden {
		writeGolden(t, path, got)
		return
	}
	var want map[string]goldenRun
	readGolden(t, path, &want)
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("scenario %s missing", name)
			continue
		}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("scenario %s diverged from golden trace", name)
		}
	}
	if len(got) != len(want) {
		t.Errorf("scenario count %d != golden %d", len(got), len(want))
	}
}

func writeGolden(t *testing.T, path string, v any) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}

func readGolden(t *testing.T, path string, v any) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatal(err)
	}
}
