package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ideal"
	"repro/internal/model"
	"repro/internal/workloads"
)

func TestDualRailHalvesRedundancy(t *testing.T) {
	single := NewMOT2D(64, MOTConfig{})
	dual := NewMOT2D(64, MOTConfig{DualRail: true})
	if dual.Redundancy() >= single.Redundancy() {
		t.Errorf("dual-rail r=%d not below single-rail r=%d",
			dual.Redundancy(), single.Redundancy())
	}
	// The remark says "a factor of 2": 2c−1 with c halved.
	wantC := (single.P.C + 1) / 2
	if dual.P.C != wantC {
		t.Errorf("dual c=%d, want %d", dual.P.C, wantC)
	}
}

func TestDualRailRedundancyConstantAcrossN(t *testing.T) {
	r64 := NewMOT2D(64, MOTConfig{DualRail: true}).Redundancy()
	r256 := NewMOT2D(256, MOTConfig{DualRail: true}).Redundancy()
	if r64 != r256 {
		t.Errorf("dual-rail redundancy varies: %d vs %d", r64, r256)
	}
}

func TestDualRailBackendEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		const n, rounds = 8, 4
		mt := NewMOT2D(n, MOTConfig{Mode: model.CRCWPriority, Seed: seed, DualRail: true})
		id := ideal.New(n, mt.MemSize(), model.CRCWPriority)
		rng := rand.New(rand.NewSource(seed))
		for r := 0; r < rounds; r++ {
			batch := model.NewBatch(n)
			for i := 0; i < n; i++ {
				switch rng.Intn(3) {
				case 0:
					batch[i] = model.Request{Proc: i, Op: model.OpRead, Addr: rng.Intn(32)}
				case 1:
					batch[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: rng.Intn(32), Value: model.Word(rng.Intn(1000))}
				}
			}
			mr := mt.ExecuteStep(batch)
			ir := id.ExecuteStep(batch)
			for p, v := range ir.Values {
				if mr.Values[p] != v {
					return false
				}
			}
		}
		for a := 0; a < 32; a++ {
			if mt.ReadCell(a) != id.ReadCell(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestDualRailWorkloads(t *testing.T) {
	for _, w := range []workloads.Workload{
		workloads.TreeSum(16, 9),
		workloads.PrefixSum(16, 9),
		workloads.Permutation(16, 9),
	} {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			b := NewMOT2D(w.Procs, MOTConfig{Mode: w.Mode, DualRail: true})
			if b.MemSize() < w.Cells {
				t.Skip("memory too small")
			}
			if _, err := workloads.RunOn(w, b); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDualRailNameAnnotated(t *testing.T) {
	b := NewMOT2D(16, MOTConfig{DualRail: true})
	if got := b.Name(); got != "2DMOT(n=16, side=64, r=7, dual-rail)" {
		t.Errorf("name = %q", got)
	}
}
