package core

import (
	"math/rand"
	"testing"

	"repro/internal/ideal"
	"repro/internal/model"
	"repro/internal/workloads"
)

func TestTwoStageDMMPCWorkloads(t *testing.T) {
	for _, w := range []workloads.Workload{
		workloads.PrefixSum(32, 3),
		workloads.Permutation(32, 3),
		workloads.HotSpot(32),
	} {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			b := NewDMMPC(w.Procs, Config{Mode: w.Mode, TwoStage: true})
			if b.MemSize() < w.Cells {
				t.Skip("memory too small")
			}
			if _, err := workloads.RunOn(w, b); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTwoStageMOTWorkload(t *testing.T) {
	w := workloads.TreeSum(16, 3)
	b := NewMOT2D(w.Procs, MOTConfig{Mode: w.Mode, TwoStage: true})
	if _, err := workloads.RunOn(w, b); err != nil {
		t.Fatal(err)
	}
}

func TestTwoStageEquivalenceWithPlain(t *testing.T) {
	// Same seed, same steps: scheduler choice must not change any value.
	const n = 32
	plain := NewDMMPC(n, Config{Mode: model.CRCWPriority, Seed: 9})
	two := NewDMMPC(n, Config{Mode: model.CRCWPriority, Seed: 9, TwoStage: true})
	id := ideal.New(n, plain.MemSize(), model.CRCWPriority)
	rng := rand.New(rand.NewSource(4))
	for round := 0; round < 6; round++ {
		batch := model.NewBatch(n)
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				batch[i] = model.Request{Proc: i, Op: model.OpRead, Addr: rng.Intn(64)}
			case 1:
				batch[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: rng.Intn(64), Value: model.Word(rng.Intn(999))}
			}
		}
		pr := plain.ExecuteStep(batch)
		tr := two.ExecuteStep(batch)
		ir := id.ExecuteStep(batch)
		for p, v := range ir.Values {
			if pr.Values[p] != v || tr.Values[p] != v {
				t.Fatalf("round %d proc %d: plain=%d two=%d ideal=%d",
					round, p, pr.Values[p], tr.Values[p], v)
			}
		}
	}
	for a := 0; a < 64; a++ {
		if plain.ReadCell(a) != two.ReadCell(a) {
			t.Fatalf("cell %d diverged", a)
		}
	}
}

func TestTwoStageWithDualRailCombined(t *testing.T) {
	// The two paper extensions compose: halved redundancy AND the staged
	// schedule, still semantically exact.
	w := workloads.Permutation(16, 5)
	b := NewMOT2D(w.Procs, MOTConfig{Mode: w.Mode, DualRail: true, TwoStage: true})
	if b.MemSize() < w.Cells {
		t.Skip("memory too small")
	}
	if _, err := workloads.RunOn(w, b); err != nil {
		t.Fatal(err)
	}
	if b.Redundancy() != 7 {
		t.Errorf("dual-rail redundancy = %d, want 7", b.Redundancy())
	}
}
