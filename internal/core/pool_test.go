package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/memmap"
	"repro/internal/model"
)

// bandStep builds one step per shard: every processor of shard k writes or
// reads inside shard k's own variable band.
func poolBandSteps(dp *core.DMMPCPool, round int) []model.Batch {
	k := dp.Engines()
	n := dp.ShardProcs()
	mem := dp.Store().Map().Vars()
	batches := make([]model.Batch, k)
	for sh := 0; sh < k; sh++ {
		lo, hi := memmap.BandRange(sh, mem, k)
		b := model.NewBatch(n)
		for i := 0; i < n; i++ {
			addr := lo + (i*11+round)%(hi-lo)
			if (i+round)%3 == 0 {
				b[i] = model.Request{Proc: i, Op: model.OpRead, Addr: addr}
			} else {
				b[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: addr, Value: model.Word(1000*sh + 10*i + round)}
			}
		}
		batches[sh] = b
	}
	return batches
}

// TestDMMPCPoolServesDisjointPrograms: the banded deployment runs K
// band-local programs at full parallelism (K components every step) and
// commits their writes.
func TestDMMPCPoolServesDisjointPrograms(t *testing.T) {
	const n = 32
	dp := core.NewDMMPCPool(n, core.Config{Engines: 4})
	if dp.Engines() != 4 {
		t.Fatalf("pool has %d engines, want 4", dp.Engines())
	}
	for round := 0; round < 3; round++ {
		batches := poolBandSteps(dp, round)
		agg, shards := dp.ExecuteSteps(batches)
		if agg.Err != nil {
			t.Fatalf("round %d: %v", round, agg.Err)
		}
		if dp.LastComponents() != dp.Engines() {
			t.Fatalf("round %d: %d components, want %d (banded map, band-local programs)",
				round, dp.LastComponents(), dp.Engines())
		}
		for sh := range shards {
			if shards[sh].Phases == 0 {
				t.Errorf("round %d shard %d: no phases recorded", round, sh)
			}
		}
		for sh, b := range batches {
			for _, rq := range b {
				if rq.Op == model.OpWrite {
					if got := dp.Store().CommittedValue(rq.Addr); got != rq.Value {
						t.Fatalf("round %d shard %d: committed[%d] = %d, want %d",
							round, sh, rq.Addr, got, rq.Value)
					}
				}
			}
		}
	}
}

// TestDMMPCPoolTwoStage: the two-stage schedule flows through to every
// shard machine.
func TestDMMPCPoolTwoStage(t *testing.T) {
	const n = 32
	dp := core.NewDMMPCPool(n, core.Config{Engines: 2, TwoStage: true})
	batches := poolBandSteps(dp, 0)
	agg, _ := dp.ExecuteSteps(batches)
	if agg.Err != nil {
		t.Fatal(agg.Err)
	}
	if agg.Phases == 0 {
		t.Error("two-stage pool step recorded no phases")
	}
}

// TestDMMPCPoolEnvDefault: Engines: 0 resolves from the environment, so
// the CI race job's PRAMSIM_ENGINES=4 exercises a real multi-engine pool
// here without the test hard-coding a count.
func TestDMMPCPoolEnvDefault(t *testing.T) {
	dp := core.NewDMMPCPool(16, core.Config{})
	if dp.Engines() < 1 {
		t.Fatalf("resolved %d engines", dp.Engines())
	}
	batches := poolBandSteps(dp, 1)
	if agg, _ := dp.ExecuteSteps(batches); agg.Err != nil {
		t.Fatal(agg.Err)
	}
}
