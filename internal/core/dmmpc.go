// Package core implements the paper's contribution: deterministic P-RAM
// simulation with constant redundancy on fine-grain distributed-memory
// machines.
//
// Two machines are provided:
//
//   - The DMMPC of Section 2 (Theorem 2): n processors and M = n^(1+ε)
//     memory modules joined by the complete bipartite graph K(n,M). With
//     the Lemma 2 memory map, the Upfal–Wigderson majority-rule protocol
//     runs with a CONSTANT number of copies per variable — redundancy
//     r = O((k−ε)/ε) = O(1) — and O(log n) phases per P-RAM step.
//
//   - The DMBDN of Section 3 (Theorem 3): the same protocol on a feasible
//     bounded-degree machine, a √M × √M two-dimensional mesh of trees with
//     the memory modules at the LEAVES (not at the processors, as in
//     Luccio et al. 1990) and the n processors at tree roots. Requests
//     route down a row tree, up and down a column tree; the √M columns act
//     as n^(1+ε') independent banks, so Lemma 2 again yields constant
//     redundancy, at O(log²n / log log n) time per step.
//
// Both expose model.Backend, so any P-RAM program run by internal/machine
// executes on them unchanged.
package core

import (
	"fmt"

	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/quorum"
)

// Config tunes construction of the paper's machines.
type Config struct {
	// K is the memory-size exponent m = n^K (default 2).
	K float64
	// Eps is the granularity exponent: the DMMPC uses M = n^(1+Eps)
	// modules (default 1, i.e. M = n²).
	Eps float64
	// Mode is the P-RAM conflict convention (default CRCW-Priority).
	Mode model.Mode
	// Seed draws the memory map (default 1).
	Seed int64
	// TwoStage selects the faithful UW'87 two-stage schedule (bounded
	// stage 1, pipelined stage 2) instead of the plain round-robin loop.
	TwoStage bool
	// Parallelism is the interconnect routing worker count, forwarded via
	// quorum.ParallelismSetter. The DMMPC's ideal complete bipartite graph
	// routes a phase in one pass and ignores the knob; it exists here so
	// machine configs stay drop-in interchangeable with MOTConfig.
	Parallelism int
	// Engines is the workload-shard count K of the multi-engine
	// deployments (NewDMMPCPool): 0 consults PRAMSIM_ENGINES (absent/off
	// → 1), > 0 uses exactly that many, < 0 uses GOMAXPROCS. Single-
	// machine constructors ignore it. Where Parallelism spreads one
	// step's routing across cores, Engines runs K independent simulated
	// programs' steps concurrently against one sharded memory image —
	// bit-for-bit identical to serving them one after another.
	Engines int
	// Workers bounds the pool's executor goroutines (0 → min(Engines,
	// GOMAXPROCS)); see quorum.PoolConfig.Workers.
	Workers int
}

func (c *Config) fill() {
	if c.K == 0 {
		c.K = 2
	}
	if c.Eps == 0 {
		c.Eps = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// DMMPC is the distributed-memory module parallel computer of Section 2
// running the constant-redundancy simulation of Theorem 2.
type DMMPC struct {
	*quorum.Machine
	P memmap.Params
}

// NewDMMPC builds the Theorem 2 machine: M = n^(1+ε) modules, constant
// quorum parameter c from Lemma 2, seeded random memory map.
func NewDMMPC(n int, cfg Config) *DMMPC {
	cfg.fill()
	p := memmap.LemmaTwo(n, cfg.K, cfg.Eps)
	mp := memmap.Generate(p, cfg.Seed)
	st := quorum.NewStore(mp)
	name := fmt.Sprintf("DMMPC(n=%d, M=%d, r=%d)", n, p.M, p.R())
	m := &DMMPC{
		Machine: quorum.NewMachine(name, n, cfg.Mode, st, quorum.NewCompleteBipartite()),
		P:       p,
	}
	if cfg.TwoStage {
		m.SetTwoStage(&quorum.TwoStageConfig{})
	}
	if cfg.Parallelism != 0 {
		m.SetParallelism(cfg.Parallelism)
	}
	return m
}

// DMMPCPool is the multi-program deployment of the Theorem 2 machine: K
// independent engines, each simulating its own n-processor P-RAM program,
// execute concurrently against ONE sharded memory image. The memory map is
// banded K ways (memmap.GenerateBanded) so that band-local programs touch
// disjoint module sets by construction and every step runs at full
// parallelism; cross-band traffic stays correct and is serialized per
// module-connectivity component by the pool's deterministic merge.
type DMMPCPool struct {
	*quorum.Pool
	P memmap.Params
}

// NewDMMPCPool builds the K-engine DMMPC deployment: Lemma 2 parameters at
// the TOTAL processor count K·n (so the per-band point is Lemma 2 at n
// processors, m/K variables and M/K modules), a banded seeded map, one
// complete-bipartite interconnect per engine. Program k should address the
// variable band [k·m/K, (k+1)·m/K) for full parallelism.
func NewDMMPCPool(n int, cfg Config) *DMMPCPool {
	cfg.fill()
	k := quorum.ResolveEngines(cfg.Engines)
	p := memmap.LemmaTwo(n*k, cfg.K, cfg.Eps)
	mp := memmap.GenerateBanded(p, cfg.Seed, k)
	name := fmt.Sprintf("DMMPCPool(K=%d, n=%d, M=%d, r=%d)", k, n, p.M, p.R())
	var ts *quorum.TwoStageConfig
	if cfg.TwoStage {
		ts = &quorum.TwoStageConfig{}
	}
	return &DMMPCPool{
		Pool: quorum.NewPool(name, quorum.NewStore(mp),
			func(int) quorum.Interconnect { return quorum.NewCompleteBipartite() },
			quorum.PoolConfig{Engines: k, Procs: n, Mode: cfg.Mode, Workers: cfg.Workers, TwoStage: ts}),
		P: p,
	}
}
