package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ideal"
	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/workloads"
)

func TestDMMPCWorkloadSuite(t *testing.T) {
	for _, w := range workloads.All(32, 9) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			b := NewDMMPC(w.Procs, Config{Mode: w.Mode})
			if b.MemSize() < w.Cells {
				t.Skipf("backend memory %d < %d", b.MemSize(), w.Cells)
			}
			rep, err := workloads.RunOn(w, b)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Phases == 0 {
				t.Error("quorum machine reported zero phases")
			}
		})
	}
}

func TestMOT2DWorkloadSuite(t *testing.T) {
	for _, w := range workloads.All(16, 9) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			b := NewMOT2D(w.Procs, MOTConfig{Mode: w.Mode})
			if b.MemSize() < w.Cells {
				t.Skipf("backend memory %d < %d", b.MemSize(), w.Cells)
			}
			rep, err := workloads.RunOn(w, b)
			if err != nil {
				t.Fatal(err)
			}
			if rep.NetworkCycles == 0 {
				t.Error("2DMOT machine reported zero network cycles")
			}
		})
	}
}

func TestLuccioWorkloadSuite(t *testing.T) {
	for _, w := range workloads.All(16, 9) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			b := NewLuccio(w.Procs, MOTConfig{Mode: w.Mode})
			if b.MemSize() < w.Cells {
				t.Skipf("backend memory %d < %d", b.MemSize(), w.Cells)
			}
			if _, err := workloads.RunOn(w, b); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConstantRedundancyHeadline is the paper's main claim rendered as a
// test: DMMPC and 2DMOT redundancy must not grow with n.
func TestConstantRedundancyHeadline(t *testing.T) {
	var dm, mt []int
	for _, n := range []int{64, 128, 256, 512} {
		dm = append(dm, NewDMMPC(n, Config{}).Redundancy())
		mt = append(mt, NewMOT2D(n, MOTConfig{}).Redundancy())
	}
	for i := 1; i < len(dm); i++ {
		if dm[i] != dm[0] {
			t.Errorf("DMMPC redundancy grows with n: %v", dm)
			break
		}
	}
	for i := 1; i < len(mt); i++ {
		if mt[i] != mt[0] {
			t.Errorf("2DMOT redundancy grows with n: %v", mt)
			break
		}
	}
}

// TestBackendEquivalenceDMMPC: random CRCW programs leave identical memory
// on the DMMPC and on the ideal P-RAM — the simulation is semantically
// exact, only slower.
func TestBackendEquivalenceDMMPC(t *testing.T) {
	f := func(seed int64) bool {
		const n, rounds = 16, 6
		dm := NewDMMPC(n, Config{Mode: model.CRCWPriority, Seed: seed})
		m := dm.MemSize()
		id := ideal.New(n, m, model.CRCWPriority)
		rng := rand.New(rand.NewSource(seed))
		for r := 0; r < rounds; r++ {
			batch := model.NewBatch(n)
			for i := 0; i < n; i++ {
				switch rng.Intn(3) {
				case 0:
					batch[i] = model.Request{Proc: i, Op: model.OpRead, Addr: rng.Intn(64)}
				case 1:
					batch[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: rng.Intn(64), Value: model.Word(rng.Intn(1000))}
				}
			}
			dr := dm.ExecuteStep(batch)
			ir := id.ExecuteStep(batch)
			for p, v := range ir.Values {
				if dr.Values[p] != v {
					return false
				}
			}
		}
		for a := 0; a < 64; a++ {
			if dm.ReadCell(a) != id.ReadCell(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestBackendEquivalenceMOT2D: same equivalence for the mesh-of-trees
// machine.
func TestBackendEquivalenceMOT2D(t *testing.T) {
	f := func(seed int64) bool {
		const n, rounds = 8, 4
		mt := NewMOT2D(n, MOTConfig{Mode: model.CRCWPriority, Seed: seed})
		id := ideal.New(n, mt.MemSize(), model.CRCWPriority)
		rng := rand.New(rand.NewSource(seed))
		for r := 0; r < rounds; r++ {
			batch := model.NewBatch(n)
			for i := 0; i < n; i++ {
				switch rng.Intn(3) {
				case 0:
					batch[i] = model.Request{Proc: i, Op: model.OpRead, Addr: rng.Intn(32)}
				case 1:
					batch[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: rng.Intn(32), Value: model.Word(rng.Intn(1000))}
				}
			}
			mr := mt.ExecuteStep(batch)
			ir := id.ExecuteStep(batch)
			for p, v := range ir.Values {
				if mr.Values[p] != v {
					return false
				}
			}
		}
		for a := 0; a < 32; a++ {
			if mt.ReadCell(a) != id.ReadCell(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestDMMPCPhasesLogarithmic drives a full permutation step at doubling n
// and checks that phases grow like O(log n), not like n.
func TestDMMPCPhasesLogarithmic(t *testing.T) {
	var phases []int
	sizes := []int{64, 128, 256, 512, 1024}
	for _, n := range sizes {
		dm := NewDMMPC(n, Config{})
		batch := model.NewBatch(n)
		perm := rand.New(rand.NewSource(5)).Perm(n)
		for i := 0; i < n; i++ {
			batch[i] = model.Request{Proc: i, Op: model.OpRead, Addr: perm[i]}
		}
		rep := dm.ExecuteStep(batch)
		if rep.Err != nil {
			t.Fatalf("n=%d: %v", n, rep.Err)
		}
		phases = append(phases, rep.Phases)
	}
	t.Logf("phases over n=%v: %v", sizes, phases)
	// 16× more processors should cost only a few extra phases (additive
	// log growth), nothing like 16×.
	if phases[len(phases)-1] > 3*phases[0] {
		t.Errorf("phase growth looks super-logarithmic: %v", phases)
	}
}

func TestMOT2DStepTimeReasonable(t *testing.T) {
	n := 64
	mt := NewMOT2D(n, MOTConfig{})
	batch := model.NewBatch(n)
	for i := 0; i < n; i++ {
		batch[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: i, Value: 1}
	}
	rep := mt.ExecuteStep(batch)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep.Time <= 0 {
		t.Error("no simulated time charged")
	}
	if rep.NetworkCycles != rep.Time {
		t.Errorf("cycles %d != time %d for a network machine", rep.NetworkCycles, rep.Time)
	}
	t.Logf("n=%d write step: %d phases, %d cycles", n, rep.Phases, rep.NetworkCycles)
}

func TestLuccioRedundancyGrowsWhilePaperStaysFlat(t *testing.T) {
	// Parameter-level comparison (no machine construction, so arbitrarily
	// large n is free): Luccio's r = Θ(log m) must grow across n while the
	// paper's 2DMOT r stays exactly flat, overtaking it at scale.
	luSmall := memmap.LemmaOne(64, 2).R()
	luLarge := memmap.LemmaOne(65536, 2).R()
	p3Small, _ := memmap.TheoremThree(64, 2, 2)
	p3Large, _ := memmap.TheoremThree(65536, 2, 2)
	if luLarge <= luSmall {
		t.Errorf("Luccio redundancy did not grow: %d -> %d", luSmall, luLarge)
	}
	if p3Small.R() != p3Large.R() {
		t.Errorf("paper redundancy varies: %d -> %d", p3Small.R(), p3Large.R())
	}
	if luLarge <= p3Large.R() {
		t.Errorf("at n=65536 Luccio r=%d should exceed paper r=%d", luLarge, p3Large.R())
	}
}

func TestConfigDefaults(t *testing.T) {
	dm := NewDMMPC(64, Config{})
	if dm.P.K != 2 || dm.P.Eps != 1 {
		t.Errorf("defaults wrong: %+v", dm.P)
	}
	mt := NewMOT2D(64, MOTConfig{})
	if mt.Side < 64 {
		t.Errorf("side %d below n", mt.Side)
	}
}
