package core

import (
	"fmt"

	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/mot"
	"repro/internal/quorum"
	"repro/internal/xmath"
)

// MOTConfig tunes construction of the mesh-of-trees machines.
type MOTConfig struct {
	// K is the memory-size exponent m = n^K (default 2).
	K float64
	// Delta sets the physical module count M = n^(1+Delta) of the
	// Theorem 3 machine (default 2, i.e. a grid of side n^1.5). Must be
	// ≥ 1 so the n processors fit on the grid's tree roots.
	Delta float64
	// Mode is the P-RAM conflict convention (default CRCW-Priority).
	Mode model.Mode
	// Seed draws the memory map (default 1).
	Seed int64
	// Policy is the tree-edge contention rule (default DropOnCollision,
	// the paper's routing).
	Policy mot.Policy
	// DualRail enables the simultaneous row+column access of Theorem 3's
	// closing remark: the grid's rows become a second set of banks and the
	// redundancy halves.
	DualRail bool
	// TwoStage selects the faithful UW'87 two-stage schedule with the
	// stage-2 module queues served at O(log n) per phase — the pipelining
	// Luccio et al. (1990) and Theorem 3 use.
	TwoStage bool
	// Parallelism selects the network router's worker count: 0 consults
	// PRAMSIM_PARALLEL (default serial), 1 forces the serial reference
	// router, > 1 uses that many workers, < 0 uses GOMAXPROCS. Routing is
	// bit-for-bit identical at every setting (see repro/internal/mot).
	Parallelism int
	// Engines is the workload-shard count K of the multi-engine
	// deployment (NewMOT2DPool): 0 consults PRAMSIM_ENGINES (absent/off
	// → 1), > 0 uses exactly that many, < 0 uses GOMAXPROCS. Single-
	// machine constructors ignore it.
	Engines int
	// Workers bounds the pool's executor goroutines (0 → min(Engines,
	// GOMAXPROCS)); see quorum.PoolConfig.Workers.
	Workers int
}

func (c *MOTConfig) fill() {
	if c.K == 0 {
		c.K = 2
	}
	if c.Delta == 0 {
		c.Delta = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// MOT2D is the Theorem 3 machine: a √M × √M two-dimensional mesh of trees
// with the memory modules at the leaves and the n processors at the tree
// roots, running the constant-redundancy majority-rule simulation.
type MOT2D struct {
	*quorum.Machine
	P    memmap.Params
	Side int
	Net  *mot.Network
}

// NewMOT2D builds the paper's DMBDN machine (Section 3, Fig. 8). With
// cfg.DualRail it applies the proof's closing remark — rows and columns
// both serve as banks — halving the redundancy.
func NewMOT2D(n int, cfg MOTConfig) *MOT2D {
	cfg.fill()
	var p memmap.Params
	var side int
	if cfg.DualRail {
		p, side = memmap.TheoremThreeDual(n, cfg.K, cfg.Delta)
	} else {
		p, side = memmap.TheoremThree(n, cfg.K, cfg.Delta)
	}
	if n > side {
		panic(fmt.Sprintf("core.NewMOT2D: n=%d exceeds grid side %d", n, side))
	}
	mp := memmap.Generate(p, cfg.Seed)
	nw := mot.NewNetwork(side, mot.ModulesAtLeaves,
		mot.Config{Policy: cfg.Policy, DualRail: cfg.DualRail, Parallelism: cfg.Parallelism})
	st := quorum.NewStore(mp)
	name := fmt.Sprintf("2DMOT(n=%d, side=%d, r=%d", n, side, p.R())
	if cfg.DualRail {
		name += ", dual-rail"
	}
	name += ")"
	m := &MOT2D{
		Machine: quorum.NewMachine(name, n, cfg.Mode, st, nw),
		P:       p,
		Side:    side,
		Net:     nw,
	}
	if cfg.TwoStage {
		m.SetTwoStage(&quorum.TwoStageConfig{})
	}
	return m
}

// MOT2DPool is the multi-program deployment of the Theorem 3 machine: K
// independent engines, each simulating its own n-processor P-RAM program,
// execute concurrently against ONE sharded memory image, each routing its
// phases over its OWN √M × √M mesh of trees (interconnects hold per-engine
// scratch and clocks; a distributed deployment would give each serving
// lane its own fabric). The memory map is banded K ways over the grid's
// banks (memmap.GenerateBanded), so band-local programs touch disjoint
// module sets by construction; cross-band traffic stays correct and is
// serialized per module-connectivity component by the pool's deterministic
// merge.
type MOT2DPool struct {
	*quorum.Pool
	P    memmap.Params
	Side int
}

// NewMOT2DPool builds the K-engine 2DMOT deployment: Theorem 3 parameters
// at the TOTAL processor count K·n, a banded seeded map, one leaf-deployed
// mesh network per engine. Program k should address the variable band
// [k·m/K, (k+1)·m/K) for full parallelism.
func NewMOT2DPool(n int, cfg MOTConfig) *MOT2DPool {
	cfg.fill()
	k := quorum.ResolveEngines(cfg.Engines)
	nTotal := n * k
	var p memmap.Params
	var side int
	if cfg.DualRail {
		p, side = memmap.TheoremThreeDual(nTotal, cfg.K, cfg.Delta)
	} else {
		p, side = memmap.TheoremThree(nTotal, cfg.K, cfg.Delta)
	}
	if nTotal > side {
		panic(fmt.Sprintf("core.NewMOT2DPool: K·n=%d exceeds grid side %d", nTotal, side))
	}
	mp := memmap.GenerateBanded(p, cfg.Seed, k)
	name := fmt.Sprintf("2DMOTPool(K=%d, n=%d, side=%d, r=%d)", k, n, side, p.R())
	var ts *quorum.TwoStageConfig
	if cfg.TwoStage {
		ts = &quorum.TwoStageConfig{}
	}
	return &MOT2DPool{
		Pool: quorum.NewPool(name, quorum.NewStore(mp),
			func(int) quorum.Interconnect {
				return mot.NewNetwork(side, mot.ModulesAtLeaves,
					mot.Config{Policy: cfg.Policy, DualRail: cfg.DualRail, Parallelism: cfg.Parallelism})
			},
			quorum.PoolConfig{Engines: k, Procs: n, Mode: cfg.Mode, Workers: cfg.Workers, TwoStage: ts}),
		P:    p,
		Side: side,
	}
}

// Luccio is the baseline 2DMOT deployment of Luccio, Pietracaprina & Pucci
// (1990): processors AND memory modules at the coalesced tree roots, the
// mesh acting purely as a switching fabric. Because the module count stays
// M = n (coarse granularity), the memory map must fall back to Lemma 1 and
// the redundancy grows as Θ(log m) — the cost the paper's leaf deployment
// removes.
type Luccio struct {
	*quorum.Machine
	P    memmap.Params
	Side int
	Net  *mot.Network
}

// NewLuccio builds the baseline machine on an n×n grid (n rounded up to a
// power of two).
func NewLuccio(n int, cfg MOTConfig) *Luccio {
	cfg.fill()
	side := xmath.CeilPow2(n)
	p := memmap.LemmaOne(n, cfg.K)
	mp := memmap.Generate(p, cfg.Seed)
	nw := mot.NewNetwork(side, mot.ModulesAtRoots,
		mot.Config{Policy: cfg.Policy, Parallelism: cfg.Parallelism})
	st := quorum.NewStore(mp)
	name := fmt.Sprintf("2DMOT-Luccio90(n=%d, side=%d, r=%d)", n, side, p.R())
	m := &Luccio{
		Machine: quorum.NewMachine(name, n, cfg.Mode, st, nw),
		P:       p,
		Side:    side,
		Net:     nw,
	}
	if cfg.TwoStage {
		m.SetTwoStage(&quorum.TwoStageConfig{})
	}
	return m
}
