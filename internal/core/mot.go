package core

import (
	"fmt"

	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/mot"
	"repro/internal/quorum"
	"repro/internal/xmath"
)

// MOTConfig tunes construction of the mesh-of-trees machines.
type MOTConfig struct {
	// K is the memory-size exponent m = n^K (default 2).
	K float64
	// Delta sets the physical module count M = n^(1+Delta) of the
	// Theorem 3 machine (default 2, i.e. a grid of side n^1.5). Must be
	// ≥ 1 so the n processors fit on the grid's tree roots.
	Delta float64
	// Mode is the P-RAM conflict convention (default CRCW-Priority).
	Mode model.Mode
	// Seed draws the memory map (default 1).
	Seed int64
	// Policy is the tree-edge contention rule (default DropOnCollision,
	// the paper's routing).
	Policy mot.Policy
	// DualRail enables the simultaneous row+column access of Theorem 3's
	// closing remark: the grid's rows become a second set of banks and the
	// redundancy halves.
	DualRail bool
	// TwoStage selects the faithful UW'87 two-stage schedule with the
	// stage-2 module queues served at O(log n) per phase — the pipelining
	// Luccio et al. (1990) and Theorem 3 use.
	TwoStage bool
	// Parallelism selects the network router's worker count: 0 consults
	// PRAMSIM_PARALLEL (default serial), 1 forces the serial reference
	// router, > 1 uses that many workers, < 0 uses GOMAXPROCS. Routing is
	// bit-for-bit identical at every setting (see repro/internal/mot).
	Parallelism int
}

func (c *MOTConfig) fill() {
	if c.K == 0 {
		c.K = 2
	}
	if c.Delta == 0 {
		c.Delta = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// MOT2D is the Theorem 3 machine: a √M × √M two-dimensional mesh of trees
// with the memory modules at the leaves and the n processors at the tree
// roots, running the constant-redundancy majority-rule simulation.
type MOT2D struct {
	*quorum.Machine
	P    memmap.Params
	Side int
	Net  *mot.Network
}

// NewMOT2D builds the paper's DMBDN machine (Section 3, Fig. 8). With
// cfg.DualRail it applies the proof's closing remark — rows and columns
// both serve as banks — halving the redundancy.
func NewMOT2D(n int, cfg MOTConfig) *MOT2D {
	cfg.fill()
	var p memmap.Params
	var side int
	if cfg.DualRail {
		p, side = memmap.TheoremThreeDual(n, cfg.K, cfg.Delta)
	} else {
		p, side = memmap.TheoremThree(n, cfg.K, cfg.Delta)
	}
	if n > side {
		panic(fmt.Sprintf("core.NewMOT2D: n=%d exceeds grid side %d", n, side))
	}
	mp := memmap.Generate(p, cfg.Seed)
	nw := mot.NewNetwork(side, mot.ModulesAtLeaves,
		mot.Config{Policy: cfg.Policy, DualRail: cfg.DualRail, Parallelism: cfg.Parallelism})
	st := quorum.NewStore(mp)
	name := fmt.Sprintf("2DMOT(n=%d, side=%d, r=%d", n, side, p.R())
	if cfg.DualRail {
		name += ", dual-rail"
	}
	name += ")"
	m := &MOT2D{
		Machine: quorum.NewMachine(name, n, cfg.Mode, st, nw),
		P:       p,
		Side:    side,
		Net:     nw,
	}
	if cfg.TwoStage {
		m.SetTwoStage(&quorum.TwoStageConfig{})
	}
	return m
}

// Luccio is the baseline 2DMOT deployment of Luccio, Pietracaprina & Pucci
// (1990): processors AND memory modules at the coalesced tree roots, the
// mesh acting purely as a switching fabric. Because the module count stays
// M = n (coarse granularity), the memory map must fall back to Lemma 1 and
// the redundancy grows as Θ(log m) — the cost the paper's leaf deployment
// removes.
type Luccio struct {
	*quorum.Machine
	P    memmap.Params
	Side int
	Net  *mot.Network
}

// NewLuccio builds the baseline machine on an n×n grid (n rounded up to a
// power of two).
func NewLuccio(n int, cfg MOTConfig) *Luccio {
	cfg.fill()
	side := xmath.CeilPow2(n)
	p := memmap.LemmaOne(n, cfg.K)
	mp := memmap.Generate(p, cfg.Seed)
	nw := mot.NewNetwork(side, mot.ModulesAtRoots,
		mot.Config{Policy: cfg.Policy, Parallelism: cfg.Parallelism})
	st := quorum.NewStore(mp)
	name := fmt.Sprintf("2DMOT-Luccio90(n=%d, side=%d, r=%d)", n, side, p.R())
	m := &Luccio{
		Machine: quorum.NewMachine(name, n, cfg.Mode, st, nw),
		P:       p,
		Side:    side,
		Net:     nw,
	}
	if cfg.TwoStage {
		m.SetTwoStage(&quorum.TwoStageConfig{})
	}
	return m
}
