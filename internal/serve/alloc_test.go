package serve

import (
	"bytes"
	"testing"

	"repro/internal/model"
	"repro/internal/replay"
	"repro/internal/span"
)

// TestServeRoundZeroAllocs locks the serving hot path's steady-state
// zero-allocation invariant: admission, band-aware scheduling, generator
// fill, the pool round and per-tenant accounting all run out of reusable
// state.
func TestServeRoundZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation invariants are measured without the race detector")
	}
	s, err := NewServer(Config{
		Tenants: []TenantConfig{
			{Name: "a", Band: 0, Procs: 32, Arrival: Arrival{Window: 2},
				Source: NewPatternSource(replay.Uniform, 32, 0, 1)},
			{Name: "b", Band: 1, Procs: 32, Arrival: Arrival{Window: 2},
				Source: NewPatternSource(replay.Hotspot, 32, 0, 2)},
			{Name: "c", Band: 2, Procs: 16, Arrival: Arrival{Window: 2},
				Source: NewPatternSource(replay.Broadcast, 16, 0, 3)},
		},
		Bands:   3,
		Engines: 3,
		Workers: 0,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ { // grow every arena
		s.Round()
	}
	if avg := testing.AllocsPerRun(50, func() {
		if s.Round() != 3 {
			t.Fatal("closed-loop round did not schedule every shard")
		}
	}); avg != 0 {
		t.Errorf("Round allocates %.2f/op in steady state, want 0", avg)
	}
}

// TestFlightPushZeroAllocs locks the flight recorder's append: a struct
// store into a preallocated ring slot, even once the ring wraps.
func TestFlightPushZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation invariants are measured without the race detector")
	}
	f := NewFlightRecorder(8)
	if avg := testing.AllocsPerRun(200, func() {
		f.push(FlightEvent{Round: f.total, Kind: FlightRound, A: 1, K: 2})
	}); avg != 0 {
		t.Errorf("flight push allocates %.2f/op, want 0", avg)
	}
	if f.Dropped() == 0 {
		t.Error("ring never wrapped — the test did not cover the overwrite path")
	}
}

// TestSpanPushZeroAllocs locks the span recorder's append: a flat struct
// store into a preallocated ring slot plus virtual-clock arithmetic, even
// once the ring wraps. (TestServeRoundZeroAllocs covers the same path
// end-to-end: Round emits its per-stage spans inside the 0-alloc budget.)
func TestSpanPushZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation invariants are measured without the race detector")
	}
	r := span.NewRecorder(8)
	if avg := testing.AllocsPerRun(200, func() {
		r.Push(span.Event{Round: r.Total(), Start: r.Now(), Dur: 3,
			Stage: span.StageQuorum, Track: 1, A: 2, B: 5})
		r.Advance(3)
	}); avg != 0 {
		t.Errorf("span push allocates %.2f/op, want 0", avg)
	}
	if r.Dropped() == 0 {
		t.Error("ring never wrapped — the test did not cover the overwrite path")
	}
}

// TestSubmitZeroAllocs extends the invariant to external admission: Submit
// (wait-ring pushes + flight event) and the round that serves the credit
// are allocation-free in steady state.
func TestSubmitZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation invariants are measured without the race detector")
	}
	s, err := NewServer(externalPair())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		s.Submit(0, 2)
		s.Submit(1, 6) // overflows cap 4: the rejection path is hot too
		s.Round()
	}
	if avg := testing.AllocsPerRun(50, func() {
		s.Submit(0, 1)
		s.Submit(1, 6)
		s.Round()
	}); avg != 0 {
		t.Errorf("Submit+Round allocates %.2f/op in steady state, want 0", avg)
	}
}

// TestServeTraceRoundZeroAllocs extends the invariant to a trace-backed
// tenant: frame decode, batch reconstruction and band remap are all
// allocation-free in steady state.
func TestServeTraceRoundZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation invariants are measured without the race detector")
	}
	rcfg := replay.Config{Kind: replay.KindDMMPC, Lanes: 1, Procs: 16, Mode: model.CRCWPriority}
	built, err := rcfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec, err := replay.NewRecorder(&buf, built)
	if err != nil {
		t.Fatal(err)
	}
	gen := replay.NewGenerator(replay.Uniform, 1, 16, built.Params.Mem, 5)
	for s := 0; s < 120; s++ {
		if rep := built.Machine.ExecuteStep(gen.Step(s)[0]); rep.Err != nil {
			t.Fatal(rep.Err)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(Config{
		Tenants: []TenantConfig{
			{Name: "trace", Band: 0, Procs: 16, Arrival: Arrival{Window: 1},
				Source: NewTraceSource(buf.Bytes(), 0, false)},
		},
		Bands:   1,
		Engines: 1,
		Seed:    9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.Round()
	}
	if avg := testing.AllocsPerRun(50, func() {
		if s.Round() != 1 {
			t.Fatal("trace tenant starved before its trace ended")
		}
	}); avg != 0 {
		t.Errorf("trace-backed Round allocates %.2f/op in steady state, want 0", avg)
	}
}
