package serve

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/prom"
	"repro/internal/replay"
)

// mixConfig builds a fresh 4-tenant finite mix — uneven tenant sizes,
// mixed patterns, closed-loop window 2 — over 4 bands. Source factories
// hold per-server state, so every call returns an independent config.
func mixConfig(engines, workers int) Config {
	return Config{
		Tenants: []TenantConfig{
			{Name: "alpha", Band: 0, Procs: 16, Arrival: Arrival{Window: 2},
				Source: NewPatternSource(replay.Uniform, 16, 20, 101)},
			{Name: "beta", Band: 1, Procs: 16, Arrival: Arrival{Window: 2},
				Source: NewPatternSource(replay.Hotspot, 16, 20, 102)},
			{Name: "gamma", Band: 2, Procs: 8, Arrival: Arrival{Window: 2},
				Source: NewPatternSource(replay.Uniform, 8, 15, 103)},
			{Name: "delta", Band: 3, Procs: 4, Arrival: Arrival{Window: 2},
				Source: NewPatternSource(replay.Broadcast, 4, 10, 104)},
		},
		Bands:   4,
		Engines: engines,
		Workers: workers,
		Seed:    7,
	}
}

// runMix serves the mix to completion and returns the per-tenant stats
// plus the final store fingerprint.
func runMix(t *testing.T, cfg Config) ([]TenantStats, uint64) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ServeAll(2000); err != nil {
		t.Fatal(err)
	}
	stats := make([]TenantStats, s.NumTenants())
	for i := range stats {
		stats[i] = s.TenantStats(i)
		if stats[i].SrcErr != nil {
			t.Fatalf("tenant %s source: %v", stats[i].Name, stats[i].SrcErr)
		}
	}
	return stats, s.Fingerprint()
}

// TestServeDeterministic is the acceptance differential: the same seed and
// arrival script must produce identical per-tenant StepReport streams
// (hashes), step counts and final store fingerprints across every engine
// count K ∈ {1,2,4,8} and worker count — serving parallelism trades wall
// clock only.
func TestServeDeterministic(t *testing.T) {
	refStats, refFP := runMix(t, mixConfig(1, 1))
	wantSteps := []int64{20, 20, 15, 10}
	for i, st := range refStats {
		if st.Steps != wantSteps[i] {
			t.Fatalf("tenant %s executed %d steps, want %d", st.Name, st.Steps, wantSteps[i])
		}
		if st.Rejected != 0 {
			t.Fatalf("closed-loop tenant %s rejected %d", st.Name, st.Rejected)
		}
	}
	for _, K := range []int{1, 2, 4, 8} {
		for _, workers := range []int{1, 0} {
			t.Run(fmt.Sprintf("K=%d/workers=%d", K, workers), func(t *testing.T) {
				stats, fp := runMix(t, mixConfig(K, workers))
				if fp != refFP {
					t.Errorf("fingerprint %x, want %x", fp, refFP)
				}
				for i, st := range stats {
					ref := refStats[i]
					if st.Steps != ref.Steps || st.Hash != ref.Hash ||
						st.SimTime != ref.SimTime || st.Phases != ref.Phases ||
						st.Copies != ref.Copies || st.MaxCont != ref.MaxCont {
						t.Errorf("tenant %s diverged: got {steps=%d hash=%x t=%d ph=%d cp=%d cont=%d}, want {steps=%d hash=%x t=%d ph=%d cp=%d cont=%d}",
							st.Name, st.Steps, st.Hash, st.SimTime, st.Phases, st.Copies, st.MaxCont,
							ref.Steps, ref.Hash, ref.SimTime, ref.Phases, ref.Copies, ref.MaxCont)
					}
				}
			})
		}
	}
}

// TestServeBandedMixStaysMergeFree locks the band-aware fast path: a
// band-local mix never forces a serial-component merge at any K.
func TestServeBandedMixStaysMergeFree(t *testing.T) {
	for _, K := range []int{1, 2, 4} {
		s, err := NewServer(mixConfig(K, 0))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.ServeAll(2000); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		if st.ForcedMerges != 0 || st.MergedRounds != 0 || st.BandOverlaps != 0 {
			t.Errorf("K=%d: banded mix degraded: %+v", K, st)
		}
		s.Close()
	}
}

// TestServeBackpressure drives an open-loop arrival process past the queue
// cap and checks the explicit-rejection contract: depth never exceeds the
// cap, every overflow is counted, and accounting balances exactly.
func TestServeBackpressure(t *testing.T) {
	s, err := NewServer(Config{
		Tenants: []TenantConfig{{
			Name: "burst", Band: 0, Procs: 8, QueueCap: 2,
			Arrival: Arrival{Period: 1, Burst: 3},
			Source:  NewPatternSource(replay.Uniform, 8, 0, 42),
		}},
		Bands:   1,
		Engines: 1,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.Round()
		if q := s.TenantStats(0).Queue; q > 2 {
			t.Fatalf("round %d: queue depth %d exceeds cap 2", i, q)
		}
	}
	st := s.TenantStats(0)
	if st.Submitted != 30 {
		t.Errorf("submitted %d, want 30", st.Submitted)
	}
	if st.Rejected == 0 {
		t.Error("overloaded queue rejected nothing")
	}
	if st.Steps+int64(st.Queue)+st.Rejected != st.Submitted {
		t.Errorf("accounting leak: steps %d + queue %d + rejected %d != submitted %d",
			st.Steps, st.Queue, st.Rejected, st.Submitted)
	}
	if st.MaxQueue != 2 {
		t.Errorf("high-water queue %d, want 2", st.MaxQueue)
	}

	// Drain consumes every admitted credit and stops admission.
	s.Drain()
	st = s.TenantStats(0)
	if st.Queue != 0 {
		t.Errorf("queue depth %d after drain, want 0", st.Queue)
	}
	if st.Submitted != 30 {
		t.Errorf("drain admitted more work: submitted %d", st.Submitted)
	}
	if got := s.Round(); got != 0 {
		t.Errorf("round after drain executed %d steps", got)
	}
}

// TestServeClosedLoopWindowAboveCap checks a closed-loop window larger
// than the queue cap is honored (the window is itself a queue bound) and
// never rejects.
func TestServeClosedLoopWindowAboveCap(t *testing.T) {
	s, err := NewServer(Config{
		Tenants: []TenantConfig{{
			Name: "wide", Band: 0, Procs: 8, QueueCap: 2,
			Arrival: Arrival{Window: 16},
			Source:  NewPatternSource(replay.Uniform, 8, 0, 42),
		}},
		Bands:   1,
		Engines: 1,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Run(20)
	st := s.TenantStats(0)
	if st.Rejected != 0 {
		t.Errorf("closed-loop window rejected %d credits", st.Rejected)
	}
	if st.MaxQueue != 16 {
		t.Errorf("high-water queue %d, want the window 16", st.MaxQueue)
	}
}

// TestServeUnservedCredits checks the accounting identity when a source
// exhausts under admitted credits: the leftovers are counted as Unserved,
// never silently voided.
func TestServeUnservedCredits(t *testing.T) {
	s, err := NewServer(Config{
		Tenants: []TenantConfig{{
			Name: "short", Band: 0, Procs: 8, QueueCap: 16,
			Arrival: Arrival{Period: 1, Burst: 4},
			Source:  NewPatternSource(replay.Uniform, 8, 3, 42), // 3 steps only
		}},
		Bands:   1,
		Engines: 1,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Run(5)
	s.Drain()
	st := s.TenantStats(0)
	if st.Steps != 3 {
		t.Fatalf("executed %d steps of a 3-step source", st.Steps)
	}
	if st.Unserved == 0 {
		t.Error("credits beyond the source's end not counted as Unserved")
	}
	if st.Steps+int64(st.Queue)+st.Rejected+st.Unserved != st.Submitted {
		t.Errorf("accounting leak: steps %d + queue %d + rejected %d + unserved %d != submitted %d",
			st.Steps, st.Queue, st.Rejected, st.Unserved, st.Submitted)
	}
}

// TestServeBurstyArrivals checks the on/off gating of the open-loop shape.
func TestServeBurstyArrivals(t *testing.T) {
	a := Arrival{Period: 1, Burst: 2, On: 3, Off: 2}
	var got []int
	for r := int64(0); r < 10; r++ {
		got = append(got, a.arrivals(r, 0))
	}
	want := []int{2, 2, 2, 0, 0, 2, 2, 2, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arrivals = %v, want %v", got, want)
		}
	}
}

// TestServeTraceTenant serves a recorded trace alongside a live generator
// tenant and checks the trace's step count and run-to-run determinism.
func TestServeTraceTenant(t *testing.T) {
	// Record a small single-lane DMMPC trace.
	rcfg := replay.Config{Kind: replay.KindDMMPC, Lanes: 1, Procs: 8, Mode: model.CRCWPriority}
	built, err := rcfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec, err := replay.NewRecorder(&buf, built)
	if err != nil {
		t.Fatal(err)
	}
	gen := replay.NewGenerator(replay.Uniform, 1, 8, built.Params.Mem, 5)
	const traceSteps = 6
	for s := 0; s < traceSteps; s++ {
		if rep := built.Machine.ExecuteStep(gen.Step(s)[0]); rep.Err != nil {
			t.Fatal(rep.Err)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	mk := func() Config {
		return Config{
			Tenants: []TenantConfig{
				{Name: "trace", Band: 0, Procs: 8, Arrival: Arrival{Window: 1},
					Source: NewTraceSource(buf.Bytes(), 0, false)},
				{Name: "live", Band: 1, Procs: 8, Arrival: Arrival{Window: 1},
					Source: NewPatternSource(replay.Uniform, 8, 10, 9)},
			},
			Bands:   2,
			Engines: 2,
			Seed:    11,
		}
	}
	stats1, fp1 := runMix(t, mk())
	if stats1[0].Steps != traceSteps {
		t.Errorf("trace tenant executed %d steps, want %d", stats1[0].Steps, traceSteps)
	}
	stats2, fp2 := runMix(t, mk())
	if fp1 != fp2 || stats1[0].Hash != stats2[0].Hash || stats1[1].Hash != stats2[1].Hash {
		t.Errorf("trace-tenant serving not reproducible: fp %x/%x, hashes %x/%x %x/%x",
			fp1, fp2, stats1[0].Hash, stats2[0].Hash, stats1[1].Hash, stats2[1].Hash)
	}
}

// TestServeUnevenTenantsShareShard multiplexes three tenants of different
// sizes onto fewer engines than bands and checks round-robin fairness.
func TestServeUnevenTenantsShareShard(t *testing.T) {
	s, err := NewServer(Config{
		Tenants: []TenantConfig{
			{Name: "big", Band: 0, Procs: 16, Arrival: Arrival{Window: 1},
				Source: NewPatternSource(replay.Uniform, 16, 12, 1)},
			{Name: "mid", Band: 1, Procs: 8, Arrival: Arrival{Window: 1},
				Source: NewPatternSource(replay.Uniform, 8, 12, 2)},
			{Name: "small", Band: 2, Procs: 2, Arrival: Arrival{Window: 1},
				Source: NewPatternSource(replay.Uniform, 2, 12, 3)},
		},
		Bands:   3,
		Engines: 2, // bands 0 and 2 share shard 0
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ServeAll(500); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.NumTenants(); i++ {
		if st := s.TenantStats(i); st.Steps != 12 {
			t.Errorf("tenant %s executed %d steps, want 12", st.Name, st.Steps)
		}
	}
	if st := s.Stats(); st.ForcedMerges != 0 {
		t.Errorf("band-local mix forced %d merges", st.ForcedMerges)
	}
}

// TestServeMetricsExposition renders the serving metrics and spot-checks
// family presence and a tenant sample.
func TestServeMetricsExposition(t *testing.T) {
	s, err := NewServer(mixConfig(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ServeAll(2000); err != nil {
		t.Fatal(err)
	}
	var reg prom.Registry
	s.Metrics(&reg)
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE pramsim_serve_rounds_total counter",
		"pramsim_serve_engines 2",
		`pramsim_serve_tenant_steps_total{tenant="alpha",band="0",shard="0"} 20`,
		`pramsim_serve_tenant_queue_depth{tenant="delta",band="3",shard="1"} 0`,
		"pramsim_serve_forced_merges_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestServeConfigValidation exercises the error paths.
func TestServeConfigValidation(t *testing.T) {
	if _, err := NewServer(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	bad := mixConfig(1, 0)
	bad.Tenants[2].Band = 9
	if _, err := NewServer(bad); err == nil {
		t.Error("out-of-range band accepted")
	}
	bad = mixConfig(1, 0)
	bad.Tenants[0].Procs = 0
	if _, err := NewServer(bad); err == nil {
		t.Error("zero procs accepted")
	}
	bad = mixConfig(1, 0)
	bad.Tenants[0].Source = nil
	if _, err := NewServer(bad); err == nil {
		t.Error("missing source accepted")
	}
	// Infeasible map point (bands below redundancy) errors, not panics.
	tiny := Config{
		Tenants: []TenantConfig{{Name: "t", Band: 0, Procs: 2, Source: NewPatternSource(replay.Uniform, 2, 1, 1)}},
		Bands:   1,
	}
	tiny.Tenants[0].Band = 0
	tiny.Bands = 1
	tiny.Eps = 0.0001 // M ≈ n: far fewer modules per band than the redundancy
	if _, err := NewServer(tiny); err == nil {
		t.Skip("tiny point unexpectedly feasible; validation covered elsewhere")
	}
}
