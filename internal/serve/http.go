// This file is the ONE place the serving lane touches the wall clock:
// the live HTTP round loop ticks in real time to pace virtual rounds.
// Wall time never reaches simulation state — every tick is translated
// into a virtual-round advance, and the PRAMARS1 script records those
// rounds so `serve replay` reproduces the run entirely in virtual time.
//
//pram:wallclock
package serve

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"repro/internal/prom"
	"repro/internal/replay"
)

// HTTPOptions configures the live HTTP front end around a Server.
type HTTPOptions struct {
	// Registry receives the server's, autoscaler's and HTTP layer's
	// collectors and backs GET /metrics (nil → a fresh internal registry).
	Registry *prom.Registry
	// Script, when non-nil, records every admitted submission, every
	// autoscaler resize and the final drain as a PRAMARS1 arrival script —
	// the half of the determinism story the wall clock would otherwise
	// destroy. The HTTPServer writes the footer at Shutdown; the caller
	// still owns the underlying writer.
	Script *replay.ScriptRecorder
	// Autoscaler, when non-nil, is consulted after every round; resizes it
	// performs are recorded into Script.
	Autoscaler *Autoscaler
	// Pprof mounts the stdlib /debug/pprof/* handlers on the mux. Off by
	// default: the profiles are wall-clock observations of the host process
	// (CPU samples, goroutine stacks, heap), strictly outside the virtual
	// timeline, and they expose process internals — opt in per deployment.
	Pprof bool
	// Logf receives operational one-liners (listen, drain, resize).
	Logf func(format string, args ...any)
}

// HTTPServer is the live serving mode: it maps tenant submissions arriving
// over HTTP onto the Server's bounded admission queues (backpressure is an
// explicit 429, never a silent drop), advances virtual rounds on a
// wall-clock ticker, exposes the metrics registry and a health probe, and
// drains gracefully on Shutdown. Determinism in wall-clock mode comes from
// recording: with a Script (and Server.StartTrace) attached, the live run
// writes an arrival script + trace that replay bit-for-bit in virtual time
// — the wall clock only decides WHICH virtual schedule gets recorded.
//
// All Server access is serialized behind one mutex: handlers and the round
// loop interleave at round granularity, so every HTTP-visible state is a
// between-rounds state.
type HTTPServer struct {
	mu     sync.Mutex
	s      *Server
	as     *Autoscaler
	script *replay.ScriptRecorder
	reg    *prom.Registry
	logf   func(string, ...any)

	pprof bool

	shut    bool
	shutErr error
	quit    chan struct{}

	// HTTP admission counters (guarded by mu).
	submits   int64 // submissions admitted to Server.Submit
	throttled int64 // submissions answered 429 (queue rejected credits)
	denied    int64 // submissions answered 503 (draining or shut down)
}

// NewHTTPServer wires the front end: server + autoscaler metrics land on
// the registry alongside the HTTP layer's own counters.
func NewHTTPServer(s *Server, o HTTPOptions) *HTTPServer {
	reg := o.Registry
	if reg == nil {
		reg = &prom.Registry{}
	}
	h := &HTTPServer{
		s: s, as: o.Autoscaler, script: o.Script,
		reg: reg, logf: o.Logf, pprof: o.Pprof, quit: make(chan struct{}),
	}
	s.Metrics(reg)
	if h.as != nil {
		h.as.Metrics(reg)
	}
	reg.Register(httpCollector{h})
	return h
}

// Server exposes the wrapped serving core. Touch it only before Loop
// starts or after Shutdown returns — in between the HTTPServer owns it.
func (h *HTTPServer) Server() *Server { return h.s }

// Registry returns the metrics registry backing GET /metrics.
func (h *HTTPServer) Registry() *prom.Registry { return h.reg }

// Handler returns the HTTP surface:
//
//	POST /submit?tenant=NAME&steps=N   offer N step credits (default 1)
//	GET  /metrics                      Prometheus text exposition
//	GET  /healthz                      200 ok, 503 once draining
//	GET  /debug/flight[?limit=N]       flight-recorder dump (JSON, virtual time)
//	GET  /debug/spans[?limit=N]        span-recorder dump (Perfetto trace JSON)
//	GET  /debug/pprof/*                stdlib profiles (only with Pprof: true)
func (h *HTTPServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/submit", h.handleSubmit)
	mux.HandleFunc("/metrics", h.handleMetrics)
	mux.HandleFunc("/healthz", h.handleHealthz)
	mux.HandleFunc("/debug/flight", h.handleFlight)
	mux.HandleFunc("/debug/spans", h.handleSpans)
	if h.pprof {
		// The stdlib handlers self-register on http.DefaultServeMux; mount
		// them explicitly so they exist only when opted in and only here.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleSubmit maps one submission onto the tenant's bounded queue. The
// split between accepted and rejected credits is the Server's own
// deterministic admission decision; this handler only translates it to
// status codes — 200 all accepted, 429 when the queue rejected any part
// (backpressure made loud), 404 unknown tenant, 503 during drain. Denied
// (503) submissions never reach the Server and are never recorded: a
// replayed script must contain exactly the submissions that touched the
// admission accounting.
func (h *HTTPServer) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	name := q.Get("tenant")
	n := 1
	if v := q.Get("steps"); v != "" {
		var err error
		if n, err = strconv.Atoi(v); err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("bad steps %q: want a positive integer", v), http.StatusBadRequest)
			return
		}
	}
	h.mu.Lock()
	id, ok := h.s.TenantID(name)
	if !ok {
		h.mu.Unlock()
		http.Error(w, fmt.Sprintf("unknown tenant %q", name), http.StatusNotFound)
		return
	}
	if h.shut || h.s.Draining() {
		h.denied++
		h.mu.Unlock()
		http.Error(w, "draining: admission stopped", http.StatusServiceUnavailable)
		return
	}
	if h.script != nil {
		h.script.Submit(h.s.Stats().Rounds, id, n)
	}
	acc, rej := h.s.Submit(id, n)
	h.submits++
	status := http.StatusOK
	if rej > 0 {
		h.throttled++
		status = http.StatusTooManyRequests
	}
	h.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"tenant\":%q,\"accepted\":%d,\"rejected\":%d}\n", name, acc, rej)
}

// handleMetrics renders the registry between rounds.
func (h *HTTPServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	defer h.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	h.reg.WriteTo(w)
}

// debugQuery enforces the /debug/* read contract shared by the flight
// and span dumps: GET only (anything else is 405 with an Allow header,
// matching handleSubmit's shape), plus an optional bounded ?limit=N tail
// (400 on a malformed or non-positive N). limit 0 means everything the
// ring retained.
func debugQuery(w http.ResponseWriter, r *http.Request) (limit int, ok bool) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return 0, false
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("bad limit %q: want a positive integer", v), http.StatusBadRequest)
			return 0, false
		}
		limit = n
	}
	return limit, true
}

// handleFlight dumps the flight recorder between rounds: the most recent
// structured round/admission/resize/decision events, in virtual round time,
// as deterministic JSON. The dump a live run serves here is reproduced
// byte-for-byte by `serve replay` from the recorded script. ?limit=N
// bounds the dump to the N most recent events (the truncation is counted
// in the dump's dropped field).
func (h *HTTPServer) handleFlight(w http.ResponseWriter, r *http.Request) {
	limit, ok := debugQuery(w, r)
	if !ok {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	h.s.WriteFlightTail(w, limit)
}

// handleSpans dumps the span recorder between rounds: the most recent
// per-stage round-pipeline spans as deterministic Chrome/Perfetto
// trace-event JSON, on the virtual makespan clock. Like the flight dump
// it is replay-reproducible (`serve replay -spans`) and ?limit=N bounds
// it to the N most recent spans with counted truncation.
func (h *HTTPServer) handleSpans(w http.ResponseWriter, r *http.Request) {
	limit, ok := debugQuery(w, r)
	if !ok {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	h.s.WriteSpansTail(w, limit)
}

// handleHealthz flips to 503 once admission stops, so load balancers stop
// routing submissions at a draining deployment.
func (h *HTTPServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	draining := h.shut || h.s.Draining()
	h.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// Tick advances one serving round and lets the autoscaler act; resizes are
// recorded into the script at the round they take effect.
func (h *HTTPServer) Tick() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.shut {
		return
	}
	h.s.Round()
	if h.as != nil {
		if nk := h.as.Observe(); nk != 0 && h.script != nil {
			h.script.Resize(h.s.Stats().Rounds, nk)
		}
	}
}

// Loop runs the wall-clock round loop — one Tick per interval (0 → 5ms) —
// until Shutdown. It blocks; run it on its own goroutine next to the HTTP
// listener.
func (h *HTTPServer) Loop(every time.Duration) {
	if every <= 0 {
		every = 5 * time.Millisecond
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-h.quit:
			return
		case <-tick.C:
			h.Tick()
		}
	}
}

// Shutdown is the graceful-drain half of SIGTERM handling: it records the
// drain into the script, stops admission, runs the queues dry, closes the
// trace (if one is recording) and writes the script footer — then releases
// the round loop. Idempotent; returns the first recording error. The
// caller still owns the Server (and its pool) and the underlying files.
func (h *HTTPServer) Shutdown() error {
	h.mu.Lock()
	if h.shut {
		err := h.shutErr
		h.mu.Unlock()
		return err
	}
	h.shut = true
	if h.script != nil {
		h.script.Drain(h.s.Stats().Rounds)
	}
	h.s.StopAdmission()
	h.s.Drain()
	err := h.s.StopTrace()
	if h.script != nil {
		tenants := make([]replay.ScriptTenant, h.s.NumTenants())
		for i := range tenants {
			st := h.s.TenantStats(i)
			tenants[i] = replay.ScriptTenant{Name: st.Name, Steps: st.Steps, Hash: st.Hash}
		}
		if serr := h.script.Close(tenants, h.s.Stats().Rounds, h.s.Fingerprint()); serr != nil && err == nil {
			err = serr
		}
	}
	h.shutErr = err
	if h.logf != nil {
		st := h.s.Stats()
		h.logf("drained after %d rounds (%d exec, %d resizes)", st.Rounds, st.ExecRounds, st.Resizes)
	}
	h.mu.Unlock()
	close(h.quit)
	return err
}

// httpCollector exposes the HTTP admission counters.
type httpCollector struct{ h *HTTPServer }

func (c httpCollector) Describe(desc func(prom.Desc)) {
	desc(prom.Desc{Name: "pramsim_serve_http_submits_total", Help: "submissions admitted to the server", Type: "counter"})
	desc(prom.Desc{Name: "pramsim_serve_http_throttled_total", Help: "submissions answered 429 (queue rejected credits)", Type: "counter"})
	desc(prom.Desc{Name: "pramsim_serve_http_denied_total", Help: "submissions answered 503 while draining", Type: "counter"})
}

func (c httpCollector) Collect(emit func(prom.Sample)) {
	emit(prom.Sample{Name: "pramsim_serve_http_submits_total", Value: float64(c.h.submits)})
	emit(prom.Sample{Name: "pramsim_serve_http_throttled_total", Value: float64(c.h.throttled)})
	emit(prom.Sample{Name: "pramsim_serve_http_denied_total", Value: float64(c.h.denied)})
}
