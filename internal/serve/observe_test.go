package serve

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/prom"
	"repro/internal/replay"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// histString renders a histogram's full state for bit-for-bit comparison.
func histString(h *prom.Histogram) string {
	var sb strings.Builder
	for i := 0; i <= h.Buckets(); i++ {
		fmt.Fprintf(&sb, "%d,", h.BucketCount(i))
	}
	fmt.Fprintf(&sb, "sum=%d,count=%d", h.Sum(), h.Count())
	return sb.String()
}

// serveMix runs a mix to completion and hands the still-open server to fn.
func serveMix(t *testing.T, cfg Config, fn func(s *Server)) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ServeAll(2000); err != nil {
		t.Fatal(err)
	}
	fn(s)
}

// TestHistogramsKInvariant: for a finite mix served to completion, every
// tenant executes the exact same step multiset at every K, so the
// per-tenant step-time histograms and the server-wide dedup-batch-size
// histogram must be bit-for-bit identical across engine counts. (Queue
// waits, occupancy and round aggregates legitimately depend on the round
// schedule and are K-variant; TestObservabilityWorkerInvariant pins those.)
func TestHistogramsKInvariant(t *testing.T) {
	var refStep []string
	var refDedup string
	var refQuorum, refCommit []int64
	serveMix(t, mixConfig(1, 1), func(s *Server) {
		for i, tn := range s.tenants {
			refStep = append(refStep, histString(tn.hStep))
			ts := s.TenantStats(i)
			if ts.QuorumTime+ts.CommitTime != ts.SimTime {
				t.Errorf("tenant %s: stage split %d+%d does not tile SimTime %d",
					tn.cfg.Name, ts.QuorumTime, ts.CommitTime, ts.SimTime)
			}
			refQuorum = append(refQuorum, ts.QuorumTime)
			refCommit = append(refCommit, ts.CommitTime)
		}
		refDedup = histString(s.hDedup)
		if s.hDedup.Count() == 0 || s.hRoundMakespan.Count() == 0 {
			t.Fatal("histograms empty — instrumentation not wired")
		}
	})
	for _, K := range []int{2, 4, 8} {
		serveMix(t, mixConfig(K, 0), func(s *Server) {
			for i, tn := range s.tenants {
				if got := histString(tn.hStep); got != refStep[i] {
					t.Errorf("K=%d tenant %s step-time histogram diverged:\n got %s\nwant %s",
						K, tn.cfg.Name, got, refStep[i])
				}
				// The span layer's per-tenant stage split is K-invariant for
				// the same reason hStep is: the step multiset — and each
				// step's retrieval/update decomposition — is a pure function
				// of the tenant's program.
				ts := s.TenantStats(i)
				if ts.QuorumTime != refQuorum[i] || ts.CommitTime != refCommit[i] {
					t.Errorf("K=%d tenant %s stage split diverged: got %d/%d want %d/%d",
						K, tn.cfg.Name, ts.QuorumTime, ts.CommitTime, refQuorum[i], refCommit[i])
				}
			}
			if got := histString(s.hDedup); got != refDedup {
				t.Errorf("K=%d dedup histogram diverged:\n got %s\nwant %s", K, got, refDedup)
			}
		})
	}
}

// TestObservabilityWorkerInvariant: worker count is pure wall-clock
// parallelism, so EVERYTHING the observability layer records — the full
// flight JSON, the full span-trace JSON (including its critical-path
// stage split) and every histogram — must be bit-for-bit identical
// across worker counts at fixed K. SpanDepth 64 forces the span ring to
// wrap so the truncation accounting is pinned too.
func TestObservabilityWorkerInvariant(t *testing.T) {
	type snap struct {
		flight string
		spans  string
		crit   [2]int64
		hists  []string
	}
	take := func(s *Server) snap {
		var buf bytes.Buffer
		if err := s.WriteFlight(&buf); err != nil {
			t.Fatal(err)
		}
		sn := snap{flight: buf.String()}
		buf.Reset()
		if err := s.WriteSpans(&buf); err != nil {
			t.Fatal(err)
		}
		sn.spans = buf.String()
		st := s.Stats()
		sn.crit = [2]int64{st.CritQuorumTime, st.CritCommitTime}
		for _, tn := range s.tenants {
			sn.hists = append(sn.hists, histString(tn.hStep), histString(tn.hWait))
		}
		sn.hists = append(sn.hists, histString(s.hRoundActive),
			histString(s.hRoundMakespan), histString(s.hRoundWork), histString(s.hDedup))
		return sn
	}
	mix := func(workers int) Config {
		cfg := mixConfig(4, workers)
		cfg.SpanDepth = 64
		return cfg
	}
	var ref snap
	serveMix(t, mix(1), func(s *Server) {
		ref = take(s)
		if s.flight.Total() == 0 {
			t.Fatal("flight recorder empty")
		}
		if s.spans.Dropped() == 0 {
			t.Fatal("span ring never wrapped — SpanDepth 64 no longer exercises truncation")
		}
	})
	for _, workers := range []int{2, 0} {
		serveMix(t, mix(workers), func(s *Server) {
			got := take(s)
			if got.flight != ref.flight {
				t.Errorf("workers=%d flight dump diverged:\n got %s\nwant %s", workers, got.flight, ref.flight)
			}
			if got.spans != ref.spans {
				t.Errorf("workers=%d span dump diverged:\n got %s\nwant %s", workers, got.spans, ref.spans)
			}
			if got.crit != ref.crit {
				t.Errorf("workers=%d critical-path split diverged: got %v want %v", workers, got.crit, ref.crit)
			}
			for i := range ref.hists {
				if got.hists[i] != ref.hists[i] {
					t.Errorf("workers=%d histogram %d diverged: got %s want %s", workers, i, got.hists[i], ref.hists[i])
				}
			}
		})
	}
}

// TestFlightReplayParity: a scripted run's flight dump and histograms are
// reproduced exactly by PlayScript on a fresh server — the serve-level
// half of the `serve replay -flight` contract.
func TestFlightReplayParity(t *testing.T) {
	script := []replay.ScriptEvent{
		{Round: 0, Tenant: 0, Credits: 3},
		{Round: 0, Tenant: 1, Credits: 6}, // overflows cap 4 → deterministic reject
		{Round: 2, Tenant: 0, Credits: 2},
		{Round: 3, K: 2},
		{Round: 5, Tenant: 1, Credits: 1},
		{Round: 7, K: 1},
		{Round: 9}, // drain
	}
	const rounds = 14
	run := func() (string, string, []string, uint64) {
		s, err := NewServer(externalPair())
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		s.PlayScript(script, rounds)
		var buf bytes.Buffer
		if err := s.WriteFlight(&buf); err != nil {
			t.Fatal(err)
		}
		flight := buf.String()
		buf.Reset()
		if err := s.WriteSpans(&buf); err != nil {
			t.Fatal(err)
		}
		var hists []string
		for _, tn := range s.tenants {
			hists = append(hists, histString(tn.hStep), histString(tn.hWait))
		}
		hists = append(hists, histString(s.hRoundActive), histString(s.hRoundWork), histString(s.hDedup))
		return flight, buf.String(), hists, s.Fingerprint()
	}
	flight1, spans1, hists1, fp1 := run()
	flight2, spans2, hists2, fp2 := run()
	if flight1 != flight2 {
		t.Errorf("flight dump not reproducible:\n%s\nvs\n%s", flight1, flight2)
	}
	if spans1 != spans2 {
		t.Errorf("span dump not reproducible:\n%s\nvs\n%s", spans1, spans2)
	}
	for i := range hists1 {
		if hists1[i] != hists2[i] {
			t.Errorf("histogram %d not reproducible: %s vs %s", i, hists1[i], hists2[i])
		}
	}
	if fp1 != fp2 {
		t.Errorf("fingerprint not reproducible: %x vs %x", fp1, fp2)
	}
	for _, frag := range []string{
		`"kind":"submit","tenant":"ext1","accepted":4,"rejected":2`,
		`"kind":"resize","from":1,"to":2`,
		`"kind":"resize","from":2,"to":1`,
		`"kind":"drain"`,
		`"kind":"round"`,
	} {
		if !strings.Contains(flight1, frag) {
			t.Errorf("flight dump missing %q:\n%s", frag, flight1)
		}
	}
	for _, frag := range []string{
		`"name":"schedule"`, `"name":"partition"`, `"name":"wait"`,
		`"name":"quorum"`, `"name":"commit"`, `"name":"route"`, `"name":"merge"`,
	} {
		if !strings.Contains(spans1, frag) {
			t.Errorf("span dump missing %q:\n%s", frag, spans1)
		}
	}
}

// TestGoldenExposition pins the full /metrics exposition of a deterministic
// two-tenant run — families, label escaping, histogram bucket series and
// their order — and re-renders after an online Resize to prove the scrape
// never carries stale shard-labeled families. Regenerate with
// `go test ./internal/serve -run TestGoldenExposition -update`.
func TestGoldenExposition(t *testing.T) {
	s, err := NewServer(Config{
		Tenants: []TenantConfig{
			{Name: "alpha", Band: 0, Procs: 8, Arrival: Arrival{Window: 2},
				Source: NewPatternSource(replay.Uniform, 8, 6, 1)},
			{Name: "beta", Band: 1, Procs: 8, Arrival: Arrival{Window: 2},
				Source: NewPatternSource(replay.Hotspot, 8, 6, 2)},
		},
		Bands: 2, Engines: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var reg prom.Registry
	s.Metrics(&reg)
	if err := s.ServeAll(100); err != nil {
		t.Fatal(err)
	}

	check := func(name string) {
		t.Helper()
		var buf bytes.Buffer
		if _, err := reg.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("testdata", name)
		if *updateGolden {
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (regenerate with -update)", err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("exposition diverged from %s (regenerate with -update if intended):\n--- got ---\n%s", path, buf.String())
		}
	}
	check("golden_metrics.txt")

	// Shrink to K=1: tenant beta moves to shard 0. The re-rendered scrape
	// must carry the new placement and drop every shard="1" series.
	s.Resize(1)
	check("golden_metrics_resized.txt")
	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `shard="1"`) {
		t.Error("post-resize exposition still carries shard=\"1\" series")
	}
	if !strings.Contains(buf.String(), `pramsim_serve_tenant_steps_total{tenant="beta",band="1",shard="0"}`) {
		t.Error("post-resize exposition missing beta's shard=\"0\" placement")
	}
}

// TestGoldenExpositionLint runs the dependency-free promlint over the
// checked-in golden scrapes, so a golden regenerated with -update can
// never smuggle a grammar or histogram-shape violation past CI: the
// goldens prove the exposition is STABLE, this proves it is VALID.
func TestGoldenExpositionLint(t *testing.T) {
	for _, name := range []string{"golden_metrics.txt", "golden_metrics_resized.txt"} {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		problems, families, samples := prom.LintExposition(data)
		for _, p := range problems {
			t.Errorf("%s: %s", name, p)
		}
		if families == 0 || samples == 0 {
			t.Errorf("%s: lint saw %d families / %d samples — empty golden?", name, families, samples)
		}
	}
}
