package serve

import (
	"repro/internal/model"
	"repro/internal/replay"
)

// genSource adapts one lane of a replay.Generator — the synthetic pattern
// shapes of internal/replay/generate.go — as a band-local tenant source:
// the generator draws addresses in [0, span) and the source offsets them
// into the tenant's band in place.
type genSource struct {
	g     *replay.Generator
	lo    int
	procs int
	limit int64 // 0 = unbounded
	steps int64
}

// NewPatternSource returns a factory for pattern-shaped BAND-LOCAL traffic:
// procs processors drawing addresses inside the tenant's own band, for
// `steps` steps (0 = unbounded, for closed-loop load generation bounded by
// rounds). The (pattern, procs, steps, seed) tuple names a reproducible
// stream.
func NewPatternSource(pattern replay.Pattern, procs int, steps, seed int64) SourceFactory {
	return func(b Band) Source {
		return &genSource{
			g:     replay.NewGenerator(pattern, 1, procs, b.Span(), seed),
			lo:    b.Lo,
			procs: procs,
			limit: steps,
		}
	}
}

// NewGlobalPatternSource is NewPatternSource over the FULL variable space,
// ignoring the tenant's band — deliberately cross-band traffic that forces
// serial-component merges (the degradation metrics' test load, and the
// worst case a mix can contain).
func NewGlobalPatternSource(pattern replay.Pattern, procs int, steps, seed int64) SourceFactory {
	return func(b Band) Source {
		return &genSource{
			g:     replay.NewGenerator(pattern, 1, procs, b.Mem, seed),
			lo:    0,
			procs: procs,
			limit: steps,
		}
	}
}

// Procs implements Source.
func (g *genSource) Procs() int { return g.procs }

// Err implements Source: generated streams cannot fail.
func (g *genSource) Err() error { return nil }

// NextBatch implements Source.
func (g *genSource) NextBatch() (model.Batch, bool) {
	if g.limit > 0 && g.steps >= g.limit {
		return nil, false
	}
	b := g.g.Step(int(g.steps))[0]
	g.steps++
	if g.lo != 0 {
		for i := range b {
			if b[i].Op != model.OpNone {
				b[i].Addr += g.lo
			}
		}
	}
	return b, true
}

// TraceConfigured is implemented by sources backed by a recorded PRAMTRC1
// trace: TraceConfig returns the trace's header configuration (machine
// kind, lane shape, knobs) and true. Wrapper sources forward it, so the
// header survives adapters like Remap and NewServer can validate the
// recorded machine kind against the pool's interconnect.
type TraceConfigured interface {
	TraceConfig() (replay.Config, bool)
}

// TraceHeader unwraps a source's recorded trace header, if it has one.
func TraceHeader(src Source) (replay.Config, bool) {
	if tc, ok := src.(TraceConfigured); ok {
		return tc.TraceConfig()
	}
	return replay.Config{}, false
}

// remapSource folds a source's addresses into a band with a modular remap
// — shape-preserving (hot variables stay hot, broadcasts stay broadcasts)
// but NOT offset-preserving, so it is the adapter for streams recorded
// against a different variable space, like trace sources.
type remapSource struct {
	inner Source
	lo    int
	span  int
}

// Remap confines a source's addresses to the band: addr → Lo + addr mod
// Span. Sources that already emit band-fitting addresses pass through
// unchanged batches (the arithmetic is still applied; it is the identity
// on [0, Span) plus the offset).
func Remap(src Source, b Band) Source {
	return &remapSource{inner: src, lo: b.Lo, span: b.Span()}
}

// Procs implements Source.
func (r *remapSource) Procs() int { return r.inner.Procs() }

// Err implements Source.
func (r *remapSource) Err() error { return r.inner.Err() }

// NextBatch implements Source, remapping in place.
func (r *remapSource) NextBatch() (model.Batch, bool) {
	b, ok := r.inner.NextBatch()
	if !ok {
		return nil, false
	}
	for i := range b {
		if b[i].Op != model.OpNone {
			b[i].Addr = r.lo + b[i].Addr%r.span
		}
	}
	return b, true
}

// TraceConfig implements TraceConfigured by delegation: remapping does not
// change what was recorded.
func (r *remapSource) TraceConfig() (replay.Config, bool) {
	return TraceHeader(r.inner)
}

// traceSource adapts one lane of a replay.BatchSource as a Source that
// also surfaces its PRAMTRC1 header.
type traceSource struct{ *replay.BatchSource }

// TraceConfig implements TraceConfigured.
func (t traceSource) TraceConfig() (replay.Config, bool) { return t.Config(), true }

// NewTraceSource returns a factory serving one lane of a recorded PRAMTRC1
// trace (replay.BatchSource) as tenant traffic, with the trace's addresses
// modularly remapped into the tenant's band. When loop is true the trace
// restarts at eof and streams indefinitely. The trace's header rides along
// (TraceConfigured), so NewServer validates the recorded machine kind
// against the pool's interconnect at admission.
func NewTraceSource(data []byte, lane int, loop bool) SourceFactory {
	return func(b Band) Source {
		src, err := replay.NewBatchSource(data, lane, loop)
		if err != nil {
			return &failedSource{err: err}
		}
		return Remap(traceSource{src}, b)
	}
}

// failedSource is a source that was dead on arrival: it yields nothing and
// reports its construction error, so a bad trace surfaces in TenantStats
// and the Logf hook instead of panicking inside NewServer.
type failedSource struct{ err error }

func (f *failedSource) Procs() int                     { return 1 }
func (f *failedSource) Err() error                     { return f.err }
func (f *failedSource) NextBatch() (model.Batch, bool) { return nil, false }
