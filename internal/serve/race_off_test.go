//go:build !race

package serve

// raceEnabled reports that the race detector is active.
const raceEnabled = false
