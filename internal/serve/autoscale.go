package serve

import (
	"fmt"

	"repro/internal/prom"
)

// AutoscaleConfig tunes the serving-lane autoscaler. The zero value is a
// usable policy: K ∈ [1, Bands], 16-round decision windows, one-window
// cooldown, grow at half-full queues, block growth when half the window's
// executed rounds forced serial merges.
type AutoscaleConfig struct {
	// Min and Max bound K. Min 0 → 1. Max 0 → the server's band count —
	// shards beyond the band count can never receive a tenant, so growing
	// past it only burns goroutines; an explicit Max is clamped to it too.
	Min, Max int
	// Interval is the decision window in observed rounds (0 → 16): signals
	// accumulate over the window and at most one resize fires per window.
	Interval int
	// Cooldown is how many full windows to sit out after a resize (0 → 1),
	// letting queues re-equilibrate before the next decision.
	Cooldown int
	// QueueHighFrac is the average queue-fill fraction (queued credits over
	// total queue capacity) that triggers growth (0 → 0.5). Shrinking
	// requires the fill to stay under a quarter of this.
	QueueHighFrac float64
	// MergeBlockFrac blocks growth when at least this fraction of the
	// window's executed rounds forced serial-component merges (0 → 0.5):
	// merge pressure means the mix is not component-parallel, and more
	// engines cannot help a workload that keeps collapsing into one
	// component.
	MergeBlockFrac float64
}

// Autoscaler closes the serving loop: it watches the degradation signals
// the server already counts — rejections, queue depth, pool occupancy
// (LastActive), forced serial merges — and grows or shrinks the engine
// count K online via Server.Resize. Decisions are a deterministic pure
// function of the observed round stream, so a recorded (arrival script,
// resize rounds) pair replays bit-for-bit; live HTTP mode records the
// RESIZES it performed rather than re-running this policy at replay time
// (see the package doc's rejection-determinism caveat).
//
// Drive it from the serving goroutine: call Observe after every Round.
// Observe is allocation-free except on the rounds it actually resizes.
type Autoscaler struct {
	s   *Server
	cfg AutoscaleConfig

	// Window accumulators.
	rounds    int
	activeSum int64
	queueSum  int64
	capSum    int64

	// Snapshots of the server's monotone counters at the window start.
	lastRejected   int64
	lastExecRounds int64
	lastMergedR    int64

	// prevExec distinguishes executed rounds from idle ones per Observe
	// call: the pool's LastActive census is stale on idle rounds, which
	// must count as zero occupancy or an idle server never scales down.
	prevExec int64

	cooldown int
	grows    int64
	shrinks  int64
}

// NewAutoscaler binds an autoscaler to a server, normalizing the config.
func NewAutoscaler(s *Server, cfg AutoscaleConfig) *Autoscaler {
	if cfg.Min < 1 {
		cfg.Min = 1
	}
	if cfg.Max < 1 || cfg.Max > s.bands {
		cfg.Max = s.bands
	}
	if cfg.Min > cfg.Max {
		cfg.Min = cfg.Max
	}
	if cfg.Interval < 1 {
		cfg.Interval = 16
	}
	if cfg.Cooldown < 1 {
		cfg.Cooldown = 1
	}
	if cfg.QueueHighFrac <= 0 {
		cfg.QueueHighFrac = 0.5
	}
	if cfg.MergeBlockFrac <= 0 {
		cfg.MergeBlockFrac = 0.5
	}
	a := &Autoscaler{s: s, cfg: cfg, prevExec: s.execRounds}
	a.snapshot()
	return a
}

// snapshot pins the monotone-counter baselines for a new window.
func (a *Autoscaler) snapshot() {
	a.lastRejected = a.rejectedTotal()
	a.lastExecRounds = a.s.execRounds
	a.lastMergedR = a.s.mergedRounds
}

// rejectedTotal sums the per-tenant rejection counters.
func (a *Autoscaler) rejectedTotal() int64 {
	var r int64
	for _, t := range a.s.tenants {
		r += t.rejected
	}
	return r
}

// Grows and Shrinks report the lifetime resize decisions by direction.
func (a *Autoscaler) Grows() int64   { return a.grows }
func (a *Autoscaler) Shrinks() int64 { return a.shrinks }

// Config returns the normalized policy (for banners and diagnostics).
func (a *Autoscaler) Config() AutoscaleConfig { return a.cfg }

// Observe folds one completed round into the window and, at window end,
// decides. It returns the new K when it resized and 0 otherwise.
func (a *Autoscaler) Observe() int {
	s := a.s
	a.rounds++
	if s.execRounds != a.prevExec {
		a.activeSum += int64(s.pool.LastActive())
		a.prevExec = s.execRounds
	}
	for _, t := range s.tenants {
		a.queueSum += int64(t.credits)
		a.capSum += int64(t.cap)
	}
	if a.rounds < a.cfg.Interval {
		return 0
	}

	rejDelta := a.rejectedTotal() - a.lastRejected
	execDelta := s.execRounds - a.lastExecRounds
	mergedDelta := s.mergedRounds - a.lastMergedR
	queueFrac := 0.0
	if a.capSum > 0 {
		queueFrac = float64(a.queueSum) / float64(a.capSum)
	}
	avgActive := float64(a.activeSum) / float64(a.rounds)
	mergeFrac := 0.0
	if execDelta > 0 {
		mergeFrac = float64(mergedDelta) / float64(execDelta)
	}

	a.rounds, a.activeSum, a.queueSum, a.capSum = 0, 0, 0, 0
	a.snapshot()
	if a.cooldown > 0 {
		a.cooldown--
		return 0
	}

	k := s.k
	// decision records the verdict AND its full window inputs into the
	// flight recorder — the audit trail that answers WHY the autoscaler
	// resized (or deliberately held), reproduced bit-for-bit by replay.
	decision := func(to int) {
		s.flight.push(FlightEvent{Round: s.round, Kind: FlightDecision,
			K: int32(k), To: int32(to),
			A: rejDelta, B: execDelta, C: mergedDelta,
			F1: queueFrac, F2: avgActive, F3: mergeFrac})
	}
	// Grow on admission pressure — rejections or persistently deep queues —
	// unless the window's merge rate says the mix cannot use more lanes.
	if (rejDelta > 0 || queueFrac >= a.cfg.QueueHighFrac) && k < a.cfg.Max {
		if mergeFrac >= a.cfg.MergeBlockFrac {
			decision(0) // the withheld grow: pressure was there, parallelism was not
			if s.logf != nil {
				s.logf("serve: autoscaler holding K=%d under pressure: %.0f%% of rounds forced serial merges (cross-band mix)", k, 100*mergeFrac)
			}
			return 0
		}
		nk := k * 2
		if nk > a.cfg.Max {
			nk = a.cfg.Max
		}
		decision(nk)
		s.Resize(nk)
		a.grows++
		a.cooldown = a.cfg.Cooldown
		return nk
	}
	// Shrink on sustained low occupancy with no admission pressure.
	if k > a.cfg.Min && avgActive*2 <= float64(k) && rejDelta == 0 && queueFrac*4 < a.cfg.QueueHighFrac {
		nk := k / 2
		if nk < a.cfg.Min {
			nk = a.cfg.Min
		}
		decision(nk)
		s.Resize(nk)
		a.shrinks++
		a.cooldown = a.cfg.Cooldown
		return nk
	}
	return 0
}

// Metrics registers the autoscaler's decision counters with a registry.
func (a *Autoscaler) Metrics(reg *prom.Registry) {
	reg.Register(autoscaleCollector{a})
}

type autoscaleCollector struct{ a *Autoscaler }

func (c autoscaleCollector) Describe(desc func(prom.Desc)) {
	desc(prom.Desc{Name: "pramsim_serve_autoscale_grows_total", Help: "autoscaler grow decisions", Type: "counter"})
	desc(prom.Desc{Name: "pramsim_serve_autoscale_shrinks_total", Help: "autoscaler shrink decisions", Type: "counter"})
	desc(prom.Desc{Name: "pramsim_serve_autoscale_k_min", Help: "autoscaler K lower bound", Type: "gauge"})
	desc(prom.Desc{Name: "pramsim_serve_autoscale_k_max", Help: "autoscaler K upper bound", Type: "gauge"})
}

func (c autoscaleCollector) Collect(emit func(prom.Sample)) {
	emit(prom.Sample{Name: "pramsim_serve_autoscale_grows_total", Value: float64(c.a.grows)})
	emit(prom.Sample{Name: "pramsim_serve_autoscale_shrinks_total", Value: float64(c.a.shrinks)})
	emit(prom.Sample{Name: "pramsim_serve_autoscale_k_min", Value: float64(c.a.cfg.Min)})
	emit(prom.Sample{Name: "pramsim_serve_autoscale_k_max", Value: float64(c.a.cfg.Max)})
}

// String summarizes the policy for run banners.
func (c AutoscaleConfig) String() string {
	return fmt.Sprintf("K∈[%d,%d] window=%d cooldown=%d queue≥%.2f merge-block≥%.2f",
		c.Min, c.Max, c.Interval, c.Cooldown, c.QueueHighFrac, c.MergeBlockFrac)
}
