package serve

import (
	"bytes"
	"testing"

	"repro/internal/replay"
)

// TestServeResizeKInvariance is the serving half of the resize determinism
// story: a finite closed-loop mix served through a K=4 → 2 → 4 resize
// sequence must produce the SAME per-tenant hashes, step counts and store
// fingerprint as the fixed-K reference run — a resize trades wall clock
// and occupancy only.
func TestServeResizeKInvariance(t *testing.T) {
	refStats, refFP := runMix(t, mixConfig(1, 1))

	s, err := NewServer(mixConfig(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Run(5)
	checkIdentity(t, s, "pre-resize")
	s.Resize(2)
	checkIdentity(t, s, "post-shrink")
	s.Run(5)
	s.Resize(4)
	checkIdentity(t, s, "post-grow")
	if err := s.ServeAll(2000); err != nil {
		t.Fatal(err)
	}
	if got := s.Resizes(); got != 2 {
		t.Errorf("Resizes() = %d, want 2", got)
	}
	if fp := s.Fingerprint(); fp != refFP {
		t.Errorf("fingerprint %x after resizes, want %x", fp, refFP)
	}
	for i, ref := range refStats {
		st := s.TenantStats(i)
		if st.Steps != ref.Steps || st.Hash != ref.Hash {
			t.Errorf("tenant %s diverged across resizes: steps %d/%d hash %x/%x",
				st.Name, st.Steps, ref.Steps, st.Hash, ref.Hash)
		}
	}
	checkIdentity(t, s, "final")
}

// TestServeResizeOccupancy pins the operational point of a resize: with
// one tenant per band, K controls how many shards carry work each round.
func TestServeResizeOccupancy(t *testing.T) {
	s, err := NewServer(mixConfig(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Round()
	if got := s.Pool().LastActive(); got != 4 {
		t.Fatalf("K=4 occupancy %d, want 4 (one tenant per shard)", got)
	}
	s.Resize(1)
	s.Round()
	if got := s.Pool().LastActive(); got != 1 {
		t.Errorf("K=1 occupancy %d, want 1 (all tenants share the shard)", got)
	}
	s.Resize(4)
	s.Round()
	if got := s.Pool().LastActive(); got != 4 {
		t.Errorf("re-grown occupancy %d, want 4", got)
	}
	checkIdentity(t, s, "after occupancy sweep")
}

// externalPair builds a 2-tenant external-admission mix (no autonomous
// arrivals: credits enter via Submit only).
func externalPair() Config {
	return Config{
		Tenants: []TenantConfig{
			{Name: "ext0", Band: 0, Procs: 8, QueueCap: 4, Arrival: Arrival{External: true},
				Source: NewPatternSource(replay.Uniform, 8, 0, 31)},
			{Name: "ext1", Band: 1, Procs: 8, QueueCap: 4, Arrival: Arrival{External: true},
				Source: NewPatternSource(replay.Hotspot, 8, 0, 32)},
		},
		Bands:   2,
		Engines: 1,
		Seed:    7,
	}
}

// TestServeSubmitExternal covers the external-admission path: no
// autonomous arrivals, bounded acceptance, rejection counting, the drain
// guard, and the admission identity throughout.
func TestServeSubmitExternal(t *testing.T) {
	s, err := NewServer(externalPair())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Run(3)
	if st := s.TenantStats(0); st.Submitted != 0 || st.Steps != 0 {
		t.Fatalf("external tenant ran without Submit: %+v", st)
	}
	id, ok := s.TenantID("ext0")
	if !ok || id != 0 {
		t.Fatalf("TenantID(ext0) = %d,%v", id, ok)
	}
	if _, ok := s.TenantID("nobody"); ok {
		t.Fatal("TenantID resolved an unknown tenant")
	}
	acc, rej := s.Submit(0, 10) // cap 4: 4 accepted, 6 rejected
	if acc != 4 || rej != 6 {
		t.Errorf("Submit(0,10) = %d,%d, want 4,6", acc, rej)
	}
	if acc, rej = s.Submit(1, 2); acc != 2 || rej != 0 {
		t.Errorf("Submit(1,2) = %d,%d, want 2,0", acc, rej)
	}
	checkIdentity(t, s, "after submits")
	// K=1: both tenants share shard 0, round-robin serves one step per round.
	s.Run(4)
	if st0, st1 := s.TenantStats(0), s.TenantStats(1); st0.Steps != 2 || st1.Steps != 2 {
		t.Errorf("round-robin served %d/%d steps after 4 rounds, want 2/2", st0.Steps, st1.Steps)
	}
	s.StopAdmission()
	if acc, rej = s.Submit(0, 3); acc != 0 || rej != 3 {
		t.Errorf("draining Submit = %d,%d, want 0,3", acc, rej)
	}
	s.Drain()
	for i := 0; i < s.NumTenants(); i++ {
		if q := s.TenantStats(i).Queue; q != 0 {
			t.Errorf("tenant %d queue %d after drain", i, q)
		}
	}
	checkIdentity(t, s, "after drain")
}

// TestServeScriptReplayBitForBit is the live-mode determinism acceptance:
// a run driven by external submissions and an online resize, recorded as a
// PRAMTRC1 trace + arrival script, replays in virtual time to the same
// per-tenant hashes, the same fingerprint — and byte-identical trace
// output when re-recorded.
func TestServeScriptReplayBitForBit(t *testing.T) {
	// --- the "live" run (virtual stand-in for wall-clock HTTP mode) ---
	live, err := NewServer(externalPair())
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	var liveTrace bytes.Buffer
	if err := live.StartTrace(&liveTrace); err != nil {
		t.Fatal(err)
	}
	var scriptBuf bytes.Buffer
	rec, err := replay.NewScriptRecorder(&scriptBuf, "externalPair test mix")
	if err != nil {
		t.Fatal(err)
	}
	submit := func(id, n int) {
		rec.Submit(live.Stats().Rounds, id, n)
		live.Submit(id, n)
	}
	for r := 0; r < 20; r++ {
		if r%3 == 0 {
			submit(0, 2)
		}
		if r%4 == 0 {
			submit(1, 3)
		}
		if r == 10 {
			rec.Resize(live.Stats().Rounds, 2)
			live.Resize(2)
		}
		live.Round()
	}
	rec.Drain(live.Stats().Rounds)
	live.Drain()
	if err := live.StopTrace(); err != nil {
		t.Fatal(err)
	}
	tenants := make([]replay.ScriptTenant, live.NumTenants())
	for i := range tenants {
		st := live.TenantStats(i)
		tenants[i] = replay.ScriptTenant{Name: st.Name, Steps: st.Steps, Hash: st.Hash}
	}
	if err := rec.Close(tenants, live.Stats().Rounds, live.Fingerprint()); err != nil {
		t.Fatal(err)
	}
	checkIdentity(t, live, "live run")

	// --- the offline replay ---
	sc, err := replay.ReadScript(bytes.NewReader(scriptBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewServer(externalPair())
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	var repTrace bytes.Buffer
	if err := rep.StartTrace(&repTrace); err != nil {
		t.Fatal(err)
	}
	rep.PlayScript(sc.Events, sc.Rounds)
	if err := rep.StopTrace(); err != nil {
		t.Fatal(err)
	}
	if got := rep.Stats().Rounds; got != sc.Rounds {
		t.Errorf("replay ran %d rounds, script says %d", got, sc.Rounds)
	}
	for i, want := range sc.Tenants {
		st := rep.TenantStats(i)
		if st.Name != want.Name || st.Steps != want.Steps || st.Hash != want.Hash {
			t.Errorf("tenant %d: replay {%s %d %x}, script {%s %d %x}",
				i, st.Name, st.Steps, st.Hash, want.Name, want.Steps, want.Hash)
		}
		liveSt := live.TenantStats(i)
		if st.Submitted != liveSt.Submitted || st.Rejected != liveSt.Rejected ||
			st.Unserved != liveSt.Unserved || st.Queue != liveSt.Queue {
			t.Errorf("tenant %d accounting diverged: replay {sub=%d rej=%d uns=%d q=%d}, live {sub=%d rej=%d uns=%d q=%d}",
				i, st.Submitted, st.Rejected, st.Unserved, st.Queue,
				liveSt.Submitted, liveSt.Rejected, liveSt.Unserved, liveSt.Queue)
		}
	}
	if rep.Fingerprint() != sc.Fingerprint {
		t.Errorf("replay fingerprint %x, script %x", rep.Fingerprint(), sc.Fingerprint)
	}
	if rep.Resizes() != 1 {
		t.Errorf("replay performed %d resizes, want the recorded 1", rep.Resizes())
	}
	if !bytes.Equal(liveTrace.Bytes(), repTrace.Bytes()) {
		t.Errorf("re-recorded trace differs from the live capture (%d vs %d bytes)",
			liveTrace.Len(), repTrace.Len())
	}
	checkIdentity(t, rep, "replay run")
}

// TestServeRoundObserveZeroAllocs extends the zero-alloc invariant to the
// closed loop: Round + Autoscaler.Observe stay allocation-free in steady
// state (Min == Max pins K so no transition fires mid-measurement).
func TestServeRoundObserveZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation invariants are measured without the race detector")
	}
	s, err := NewServer(Config{
		Tenants: []TenantConfig{
			{Name: "a", Band: 0, Procs: 32, Arrival: Arrival{Window: 2},
				Source: NewPatternSource(replay.Uniform, 32, 0, 1)},
			{Name: "b", Band: 1, Procs: 32, Arrival: Arrival{Window: 2},
				Source: NewPatternSource(replay.Hotspot, 32, 0, 2)},
			{Name: "c", Band: 2, Procs: 16, Arrival: Arrival{Window: 2},
				Source: NewPatternSource(replay.Broadcast, 16, 0, 3)},
		},
		Bands:   3,
		Engines: 3,
		Workers: 0,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a := NewAutoscaler(s, AutoscaleConfig{Min: 3, Max: 3, Interval: 4})
	for i := 0; i < 10; i++ {
		s.Round()
		a.Observe()
	}
	if avg := testing.AllocsPerRun(50, func() {
		s.Round()
		a.Observe()
	}); avg != 0 {
		t.Errorf("Round+Observe allocates %.2f/op in steady state, want 0", avg)
	}
}
