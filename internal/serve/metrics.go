package serve

import (
	"strconv"

	"repro/internal/prom"
)

// collector renders the server's counters as Prometheus families. Label
// strings are precomputed at registration so collection allocates only in
// the registry's own rendering — and recomputed when an online Resize
// moves tenants between shards (the shard label is part of the identity).
type collector struct {
	s            *Server
	labelsK      int // the K the cached labels were computed for
	tenantLabels []string
	shardLabels  []string
	// histLabels are per-tenant labels WITHOUT the shard: histograms
	// accumulate across online resizes, so stamping them with a placement
	// that can change mid-run would strand observations under stale series.
	histLabels []string
	// stageQuorumLabels/stageCommitLabels extend histLabels with the
	// stage label for the per-tenant stage-time attribution families —
	// like histLabels they deliberately omit the shard, so the series
	// survive online resizes (and stay K-invariant, see the package doc).
	stageQuorumLabels []string
	stageCommitLabels []string
}

// Metrics registers the server's serving metrics with a prom.Registry.
// Render only between rounds (or after Drain): the underlying counters are
// mutated by the serving goroutine without synchronization.
func (s *Server) Metrics(reg *prom.Registry) {
	c := &collector{s: s}
	c.refreshLabels()
	reg.Register(c)
}

// refreshLabels (re)computes the per-tenant and per-shard label strings
// for the server's current K.
func (c *collector) refreshLabels() {
	s := c.s
	c.labelsK = s.k
	c.tenantLabels = c.tenantLabels[:0]
	for _, t := range s.tenants {
		c.tenantLabels = append(c.tenantLabels, prom.Labels(
			prom.Label("tenant", t.cfg.Name),
			prom.Label("band", strconv.Itoa(t.cfg.Band)),
			prom.Label("shard", strconv.Itoa(t.shard))))
	}
	c.shardLabels = c.shardLabels[:0]
	for sh := 0; sh < s.k; sh++ {
		c.shardLabels = append(c.shardLabels, prom.Label("shard", strconv.Itoa(sh)))
	}
	c.histLabels = c.histLabels[:0]
	c.stageQuorumLabels = c.stageQuorumLabels[:0]
	c.stageCommitLabels = c.stageCommitLabels[:0]
	for _, t := range s.tenants {
		c.histLabels = append(c.histLabels, prom.Labels(
			prom.Label("tenant", t.cfg.Name),
			prom.Label("band", strconv.Itoa(t.cfg.Band))))
		c.stageQuorumLabels = append(c.stageQuorumLabels, prom.Labels(
			prom.Label("tenant", t.cfg.Name),
			prom.Label("band", strconv.Itoa(t.cfg.Band)),
			prom.Label("stage", "quorum")))
		c.stageCommitLabels = append(c.stageCommitLabels, prom.Labels(
			prom.Label("tenant", t.cfg.Name),
			prom.Label("band", strconv.Itoa(t.cfg.Band)),
			prom.Label("stage", "commit")))
	}
}

// Describe implements prom.Collector.
func (c *collector) Describe(desc func(prom.Desc)) {
	for _, d := range []prom.Desc{
		{Name: "pramsim_serve_rounds_total", Help: "virtual serving rounds elapsed", Type: "counter"},
		{Name: "pramsim_serve_exec_rounds_total", Help: "rounds that executed at least one tenant step", Type: "counter"},
		{Name: "pramsim_serve_idle_rounds_total", Help: "rounds with nothing to schedule", Type: "counter"},
		{Name: "pramsim_serve_merged_rounds_total", Help: "executed rounds with at least one forced serial-component merge", Type: "counter"},
		{Name: "pramsim_serve_forced_merges_total", Help: "forced serial-component merges (cross-band module contention)", Type: "counter"},
		{Name: "pramsim_serve_band_overlap_tenants", Help: "tenants admitted onto a band another tenant already owns", Type: "gauge"},
		{Name: "pramsim_serve_engines", Help: "engine (shard) count K", Type: "gauge"},
		{Name: "pramsim_serve_resizes_total", Help: "online engine-count (K) transitions performed", Type: "counter"},
		{Name: "pramsim_serve_pool_last_active", Help: "shards that carried work in the most recent executed round", Type: "gauge"},
		{Name: "pramsim_serve_pool_last_components", Help: "module-connectivity components of the most recent executed round", Type: "gauge"},
		{Name: "pramsim_serve_draining", Help: "1 while admission is stopped and queues drain", Type: "gauge"},
		{Name: "pramsim_serve_tenant_steps_total", Help: "tenant steps executed", Type: "counter"},
		{Name: "pramsim_serve_tenant_submitted_total", Help: "step credits offered by the tenant's arrival process", Type: "counter"},
		{Name: "pramsim_serve_tenant_rejected_total", Help: "step credits rejected by the bounded admission queue", Type: "counter"},
		{Name: "pramsim_serve_tenant_unserved_total", Help: "step credits admitted but voided by source exhaustion", Type: "counter"},
		{Name: "pramsim_serve_tenant_queue_depth", Help: "current admission-queue depth in step credits", Type: "gauge"},
		{Name: "pramsim_serve_tenant_sim_time_total", Help: "summed simulated step time", Type: "counter"},
		{Name: "pramsim_serve_tenant_phases_total", Help: "summed quorum protocol phases", Type: "counter"},
		{Name: "pramsim_serve_tenant_stage_time_total", Help: "summed simulated step time attributed per pipeline stage (quorum retrieval vs commit update; the stages tile sim_time)", Type: "counter"},
		{Name: "pramsim_serve_round_critical_stage_time_total", Help: "summed per-round makespan attributed to the critical shard's pipeline stage (quorum retrieval vs commit update)", Type: "counter"},
		{Name: "pramsim_serve_shard_tenants", Help: "tenants placed on the shard", Type: "gauge"},
		{Name: "pramsim_serve_shard_net_cycles_total", Help: "interconnect cycles routed by the shard's mesh over its machine lifetime (MOT2D fabrics only)", Type: "counter"},
		{Name: "pramsim_serve_shard_net_hops_total", Help: "interconnect edge traversals routed by the shard's mesh over its machine lifetime (MOT2D fabrics only)", Type: "counter"},
		{Name: "pramsim_serve_tenant_step_time", Help: "simulated time per executed tenant step (power-of-two buckets)", Type: "histogram"},
		{Name: "pramsim_serve_tenant_queue_wait_rounds", Help: "virtual rounds a credit waited in the admission queue before executing", Type: "histogram"},
		{Name: "pramsim_serve_round_active_shards", Help: "shards that carried work, per executed round", Type: "histogram"},
		{Name: "pramsim_serve_round_makespan", Help: "slowest shard's simulated step time, per executed round", Type: "histogram"},
		{Name: "pramsim_serve_round_work", Help: "summed simulated step time across shards, per executed round", Type: "histogram"},
		{Name: "pramsim_serve_step_dedup_requests", Help: "post-dedup quorum request count (reads plus writes) per executed tenant step", Type: "histogram"},
	} {
		desc(d)
	}
}

// Collect implements prom.Collector.
func (c *collector) Collect(emit func(prom.Sample)) {
	s := c.s
	if c.labelsK != s.k {
		c.refreshLabels()
	}
	st := s.Stats()
	emit(prom.Sample{Name: "pramsim_serve_rounds_total", Value: float64(st.Rounds)})
	emit(prom.Sample{Name: "pramsim_serve_exec_rounds_total", Value: float64(st.ExecRounds)})
	emit(prom.Sample{Name: "pramsim_serve_idle_rounds_total", Value: float64(st.IdleRounds)})
	emit(prom.Sample{Name: "pramsim_serve_merged_rounds_total", Value: float64(st.MergedRounds)})
	emit(prom.Sample{Name: "pramsim_serve_forced_merges_total", Value: float64(st.ForcedMerges)})
	emit(prom.Sample{Name: "pramsim_serve_band_overlap_tenants", Value: float64(st.BandOverlaps)})
	emit(prom.Sample{Name: "pramsim_serve_engines", Value: float64(s.k)})
	emit(prom.Sample{Name: "pramsim_serve_resizes_total", Value: float64(st.Resizes)})
	emit(prom.Sample{Name: "pramsim_serve_pool_last_active", Value: float64(s.pool.LastActive())})
	emit(prom.Sample{Name: "pramsim_serve_pool_last_components", Value: float64(s.pool.LastComponents())})
	draining := 0.0
	if s.draining {
		draining = 1
	}
	emit(prom.Sample{Name: "pramsim_serve_draining", Value: draining})
	for i, t := range s.tenants {
		l := c.tenantLabels[i]
		emit(prom.Sample{Name: "pramsim_serve_tenant_steps_total", Labels: l, Value: float64(t.steps)})
		emit(prom.Sample{Name: "pramsim_serve_tenant_submitted_total", Labels: l, Value: float64(t.submitted)})
		emit(prom.Sample{Name: "pramsim_serve_tenant_rejected_total", Labels: l, Value: float64(t.rejected)})
		emit(prom.Sample{Name: "pramsim_serve_tenant_unserved_total", Labels: l, Value: float64(t.unserved)})
		emit(prom.Sample{Name: "pramsim_serve_tenant_queue_depth", Labels: l, Value: float64(t.credits)})
		emit(prom.Sample{Name: "pramsim_serve_tenant_sim_time_total", Labels: l, Value: float64(t.simTime)})
		emit(prom.Sample{Name: "pramsim_serve_tenant_phases_total", Labels: l, Value: float64(t.phases)})
	}
	for i, t := range s.tenants {
		emit(prom.Sample{Name: "pramsim_serve_tenant_stage_time_total", Labels: c.stageQuorumLabels[i], Value: float64(t.stageQuorum)})
		emit(prom.Sample{Name: "pramsim_serve_tenant_stage_time_total", Labels: c.stageCommitLabels[i], Value: float64(t.stageCommit)})
	}
	emit(prom.Sample{Name: "pramsim_serve_round_critical_stage_time_total",
		Labels: prom.Label("stage", "quorum"), Value: float64(st.CritQuorumTime)})
	emit(prom.Sample{Name: "pramsim_serve_round_critical_stage_time_total",
		Labels: prom.Label("stage", "commit"), Value: float64(st.CritCommitTime)})
	for sh := 0; sh < s.k; sh++ {
		emit(prom.Sample{Name: "pramsim_serve_shard_tenants", Labels: c.shardLabels[sh], Value: float64(len(s.byShard[sh]))})
	}
	// Raw fabric counters, per shard machine (satellite of the span work):
	// cumulative over the shard MACHINE's lifetime — a shard retired by a
	// shrink drops its series, and a later grow starts the id over at
	// zero. Only cycle-timed meshes have them; Bipartite emits none.
	for sh := 0; sh < s.k; sh++ {
		nw := s.nets[sh]
		if nw == nil {
			continue
		}
		fst := nw.Stats()
		emit(prom.Sample{Name: "pramsim_serve_shard_net_cycles_total", Labels: c.shardLabels[sh], Value: float64(fst.Cycles)})
		emit(prom.Sample{Name: "pramsim_serve_shard_net_hops_total", Labels: c.shardLabels[sh], Value: float64(fst.Hops)})
	}
	for i, t := range s.tenants {
		prom.EmitHistogram(emit, "pramsim_serve_tenant_step_time", c.histLabels[i], t.hStep)
		prom.EmitHistogram(emit, "pramsim_serve_tenant_queue_wait_rounds", c.histLabels[i], t.hWait)
	}
	prom.EmitHistogram(emit, "pramsim_serve_round_active_shards", "", s.hRoundActive)
	prom.EmitHistogram(emit, "pramsim_serve_round_makespan", "", s.hRoundMakespan)
	prom.EmitHistogram(emit, "pramsim_serve_round_work", "", s.hRoundWork)
	prom.EmitHistogram(emit, "pramsim_serve_step_dedup_requests", "", s.hDedup)
}
