package serve

import (
	"fmt"
	"io"
	"strconv"
)

// FlightKind tags one flight-recorder event.
type FlightKind uint8

const (
	// FlightRound is one executed serving round: how many tenant steps were
	// scheduled, how many forced serial merges the pool reported, the
	// occupancy census, and the K it ran at.
	FlightRound FlightKind = iota + 1
	// FlightSubmit is one external Server.Submit call and its deterministic
	// accepted/rejected split.
	FlightSubmit
	// FlightReject is an autonomous-arrival overflow: credits an open-loop
	// burst offered beyond the tenant's queue cap.
	FlightReject
	// FlightResize is one online K transition.
	FlightResize
	// FlightDecision is an autoscaler verdict WITH its full window inputs —
	// the "why" behind (or deliberately withheld before) a resize.
	FlightDecision
	// FlightDrain marks the admission stop.
	FlightDrain
)

// FlightEvent is one fixed-width flight-recorder record. The scalar
// fields are kind-specific (see the dump renderer); keeping one flat
// struct lets the ring hold events by value with no per-event allocation.
type FlightEvent struct {
	Round  int64
	Kind   FlightKind
	Tenant int32 // FlightSubmit, FlightReject
	K, To  int32 // FlightResize (from/to), FlightDecision (current/target)

	// A, B, C per kind:
	//   FlightRound:    scheduled steps, forced merges, active shards
	//   FlightSubmit:   accepted, rejected
	//   FlightReject:   rejected credits
	//   FlightDecision: rejected delta, executed-rounds delta, merged-rounds delta
	A, B, C int64

	// F1, F2, F3 (FlightDecision): queue-fill fraction, average active
	// shards, merged-round fraction over the decision window.
	F1, F2, F3 float64
}

// FlightRecorder is a fixed-size ring of FlightEvents — the serving lane's
// black box. Appending is a struct store into a preallocated slot (zero
// allocations, //pram:hotpath safe); the ring keeps the most recent
// events and counts what it overwrote, so a dump can never silently
// pretend to be complete. Everything recorded is in VIRTUAL round time:
// the same (seed, specs, script) produces a bit-for-bit identical event
// stream, and `serve replay` reproduces a live run's dump exactly.
type FlightRecorder struct {
	ring  []FlightEvent
	total int64 // events ever pushed
}

// NewFlightRecorder builds a ring holding the most recent `depth` events
// (depth < 1 is clamped to 1).
func NewFlightRecorder(depth int) *FlightRecorder {
	if depth < 1 {
		depth = 1
	}
	return &FlightRecorder{ring: make([]FlightEvent, depth)}
}

// push appends one event, overwriting the oldest once the ring is full.
//
//pram:hotpath
func (f *FlightRecorder) push(ev FlightEvent) {
	f.ring[f.total%int64(len(f.ring))] = ev
	f.total++
}

// Total reports how many events were ever recorded.
func (f *FlightRecorder) Total() int64 { return f.total }

// Len reports how many events the ring currently holds.
func (f *FlightRecorder) Len() int {
	if f.total < int64(len(f.ring)) {
		return int(f.total)
	}
	return len(f.ring)
}

// Dropped reports how many events the ring has overwritten.
func (f *FlightRecorder) Dropped() int64 { return f.total - int64(f.Len()) }

// Events appends the retained events, oldest first, to dst and returns it.
func (f *FlightRecorder) Events(dst []FlightEvent) []FlightEvent {
	n := int64(f.Len())
	for i := f.total - n; i < f.total; i++ {
		dst = append(dst, f.ring[i%int64(len(f.ring))])
	}
	return dst
}

// WriteJSON dumps the retained events as deterministic JSON: fixed key
// order, oldest event first, floats in strconv 'g' form — two runs with
// identical event streams produce byte-identical dumps. tenantName maps a
// tenant id to its display name (nil renders bare ids). Dumping allocates;
// it runs off the hot path (the /debug/flight handler, shutdown, replay).
func (f *FlightRecorder) WriteJSON(w io.Writer, tenantName func(int) string) error {
	return f.WriteJSONTail(w, tenantName, 0)
}

// WriteJSONTail is WriteJSON bounded to the most recent `limit` events
// (limit <= 0 dumps everything retained). Truncation is never silent:
// the dump's dropped count absorbs whatever the bound cut off, exactly
// as it counts ring overwrites.
func (f *FlightRecorder) WriteJSONTail(w io.Writer, tenantName func(int) string, limit int) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	n := int64(f.Len())
	if limit > 0 && int64(limit) < n {
		n = int64(limit)
	}
	pf("{\"total\":%d,\"dropped\":%d,\"events\":[", f.total, f.total-n)
	for i := int64(0); i < n; i++ {
		ev := &f.ring[(f.total-n+i)%int64(len(f.ring))]
		if i > 0 {
			pf(",")
		}
		pf("\n")
		writeEvent(pf, ev, tenantName)
	}
	if n > 0 {
		pf("\n")
	}
	pf("]}\n")
	return err
}

// writeEvent renders one event with kind-specific keys.
func writeEvent(pf func(string, ...any), ev *FlightEvent, tenantName func(int) string) {
	tenant := func() string {
		if tenantName == nil {
			return strconv.Itoa(int(ev.Tenant))
		}
		return strconv.Quote(tenantName(int(ev.Tenant)))
	}
	switch ev.Kind {
	case FlightRound:
		pf("{\"round\":%d,\"kind\":\"round\",\"scheduled\":%d,\"merges\":%d,\"active\":%d,\"k\":%d}",
			ev.Round, ev.A, ev.B, ev.C, ev.K)
	case FlightSubmit:
		pf("{\"round\":%d,\"kind\":\"submit\",\"tenant\":%s,\"accepted\":%d,\"rejected\":%d}",
			ev.Round, tenant(), ev.A, ev.B)
	case FlightReject:
		pf("{\"round\":%d,\"kind\":\"reject\",\"tenant\":%s,\"rejected\":%d}",
			ev.Round, tenant(), ev.A)
	case FlightResize:
		pf("{\"round\":%d,\"kind\":\"resize\",\"from\":%d,\"to\":%d}", ev.Round, ev.K, ev.To)
	case FlightDecision:
		action := "hold"
		switch {
		case ev.To > ev.K:
			action = "grow"
		case ev.To != 0 && ev.To < ev.K:
			action = "shrink"
		}
		pf("{\"round\":%d,\"kind\":\"decision\",\"action\":%q,\"k\":%d,\"to\":%d,"+
			"\"rej_delta\":%d,\"exec_delta\":%d,\"merged_delta\":%d,"+
			"\"queue_frac\":%s,\"avg_active\":%s,\"merge_frac\":%s}",
			ev.Round, action, ev.K, ev.To, ev.A, ev.B, ev.C,
			jsonFloat(ev.F1), jsonFloat(ev.F2), jsonFloat(ev.F3))
	case FlightDrain:
		pf("{\"round\":%d,\"kind\":\"drain\"}", ev.Round)
	default:
		pf("{\"round\":%d,\"kind\":\"unknown\"}", ev.Round)
	}
}

// jsonFloat renders a float deterministically (shortest round-trip form,
// always with enough shape to stay a JSON number).
func jsonFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	return s
}
