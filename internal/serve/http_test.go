package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/replay"
)

// postSubmit drives POST /submit and returns the status code and body.
func postSubmit(t *testing.T, base, tenant string, steps int) (int, string) {
	t.Helper()
	url := fmt.Sprintf("%s/submit?tenant=%s&steps=%d", base, tenant, steps)
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestHTTPSubmitBackpressure is the HTTP half of the loud-backpressure
// contract: a submission the bounded queue cannot fully admit answers 429
// AND bumps the tenant's Rejected counter — never a silent drop.
func TestHTTPSubmitBackpressure(t *testing.T) {
	s, err := NewServer(externalPair()) // QueueCap 4 per tenant
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := NewHTTPServer(s, HTTPOptions{})
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()

	code, body := postSubmit(t, ts.URL, "ext0", 2)
	if code != http.StatusOK || !strings.Contains(body, `"accepted":2,"rejected":0`) {
		t.Errorf("in-cap submit: code %d body %q", code, body)
	}
	// 2 queued + 10 offered against cap 4 → 2 accepted, 8 rejected.
	code, body = postSubmit(t, ts.URL, "ext0", 10)
	if code != http.StatusTooManyRequests {
		t.Errorf("overflow submit: code %d, want 429", code)
	}
	if !strings.Contains(body, `"accepted":2,"rejected":8`) {
		t.Errorf("overflow body %q, want accepted 2 rejected 8", body)
	}
	if st := s.TenantStats(0); st.Rejected != 8 || st.Submitted != 12 {
		t.Errorf("rejected=%d submitted=%d, want 8/12 (429 must bump Rejected)", st.Rejected, st.Submitted)
	}
	checkIdentity(t, s, "after 429")

	if code, _ = postSubmit(t, ts.URL, "nobody", 1); code != http.StatusNotFound {
		t.Errorf("unknown tenant code %d, want 404", code)
	}
	resp, err := http.Get(ts.URL + "/submit?tenant=ext0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /submit code %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/submit?tenant=ext0&steps=zero", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad steps code %d, want 400", resp.StatusCode)
	}
}

// TestHTTPMetricsAndHealth covers the scrape endpoint and the drain flip.
func TestHTTPMetricsAndHealth(t *testing.T) {
	s, err := NewServer(externalPair())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a := NewAutoscaler(s, AutoscaleConfig{Interval: 8})
	h := NewHTTPServer(s, HTTPOptions{Autoscaler: a})
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz: %d %q", code, body)
	}
	postSubmit(t, ts.URL, "ext0", 2)
	h.Tick()
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics code %d", code)
	}
	for _, want := range []string{
		"pramsim_serve_engines 1",
		"pramsim_serve_http_submits_total 1",
		"pramsim_serve_autoscale_k_max 2",
		`pramsim_serve_tenant_submitted_total{tenant="ext0",band="0",shard="0"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	if err := h.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := h.Shutdown(); err != nil { // idempotent
		t.Fatal(err)
	}
	if code, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("draining healthz code %d, want 503", code)
	}
	code, _ = postSubmit(t, ts.URL, "ext0", 1)
	if code != http.StatusServiceUnavailable {
		t.Errorf("draining submit code %d, want 503", code)
	}
	// A denied submission never reached the server's accounting.
	if st := s.TenantStats(0); st.Submitted != 2 {
		t.Errorf("denied submit leaked into accounting: submitted=%d, want 2", st.Submitted)
	}
	checkIdentity(t, s, "after shutdown")
}

// TestHTTPFlightEndpoint: /debug/flight serves the server's flight dump —
// byte-identical to WriteFlight — and reflects admissions and rounds.
func TestHTTPFlightEndpoint(t *testing.T) {
	s, err := NewServer(externalPair())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := NewHTTPServer(s, HTTPOptions{})
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()

	postSubmit(t, ts.URL, "ext0", 2)
	h.Tick()
	resp, err := http.Get(ts.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/flight code %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/debug/flight content-type %q", ct)
	}
	var want bytes.Buffer
	if err := s.WriteFlight(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Errorf("/debug/flight differs from WriteFlight:\nhttp:  %s\ndirect: %s", body, want.Bytes())
	}
	for _, frag := range []string{`"kind":"submit","tenant":"ext0","accepted":2`, `"kind":"round"`} {
		if !strings.Contains(string(body), frag) {
			t.Errorf("flight dump missing %q in %s", frag, body)
		}
	}
}

// TestHTTPSpansEndpoint: /debug/spans serves the span recorder's
// Perfetto trace — byte-identical to WriteSpans — and both debug
// endpoints reject non-GET methods and honor a bounded ?limit=N.
func TestHTTPSpansEndpoint(t *testing.T) {
	s, err := NewServer(externalPair())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := NewHTTPServer(s, HTTPOptions{})
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()

	postSubmit(t, ts.URL, "ext0", 3)
	postSubmit(t, ts.URL, "ext1", 2)
	for i := 0; i < 4; i++ {
		h.Tick()
	}
	resp, err := http.Get(ts.URL + "/debug/spans")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/spans code %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/debug/spans content-type %q", ct)
	}
	var want bytes.Buffer
	if err := s.WriteSpans(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Errorf("/debug/spans differs from WriteSpans:\nhttp:  %s\ndirect: %s", body, want.Bytes())
	}
	for _, frag := range []string{`"name":"quorum"`, `"name":"merge"`, `"clock":`} {
		if !strings.Contains(string(body), frag) {
			t.Errorf("span dump missing %q in %s", frag, body)
		}
	}

	for _, path := range []string{"/debug/flight", "/debug/spans"} {
		resp, err := http.Post(ts.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s code %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
			t.Errorf("POST %s Allow %q, want GET", path, allow)
		}
		for _, bad := range []string{"0", "-3", "x"} {
			resp, err = http.Get(ts.URL + path + "?limit=" + bad)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("GET %s?limit=%s code %d, want 400", path, bad, resp.StatusCode)
			}
		}
	}

	// A positive limit truncates oldest-first and says so: the dump's
	// dropped counter absorbs the truncation, total stays the full count.
	resp, err = http.Get(ts.URL + "/debug/spans?limit=2")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	total, kept := s.Spans().Total(), int64(2)
	wantHeader := fmt.Sprintf(`"total":%d,"dropped":%d`, total, total-kept)
	if !strings.Contains(string(body), wantHeader) {
		t.Errorf("limited span dump missing %q in %s", wantHeader, body)
	}
	if got := int64(strings.Count(string(body), `"ph":"X"`)); got != kept {
		t.Errorf("limited span dump carries %d spans, want %d", got, kept)
	}
	resp, err = http.Get(ts.URL + "/debug/flight?limit=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	ftotal := s.Flight().Total()
	wantHeader = fmt.Sprintf(`"total":%d,"dropped":%d`, ftotal, ftotal-1)
	if !strings.Contains(string(body), wantHeader) {
		t.Errorf("limited flight dump missing %q in %s", wantHeader, body)
	}
}

// TestHTTPPprofGate: the stdlib profile handlers exist on the mux only when
// HTTPOptions.Pprof opts in.
func TestHTTPPprofGate(t *testing.T) {
	s, err := NewServer(externalPair())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, tc := range []struct {
		pprof bool
		want  int
	}{{false, http.StatusNotFound}, {true, http.StatusOK}} {
		h := NewHTTPServer(s, HTTPOptions{Pprof: tc.pprof})
		ts := httptest.NewServer(h.Handler())
		resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("pprof=%v: /debug/pprof/cmdline code %d, want %d", tc.pprof, resp.StatusCode, tc.want)
		}
		ts.Close()
	}
}

// TestHTTPRecordedRunReplays is the end-to-end live-mode acceptance at the
// HTTP layer: a run driven through the handlers — including a 429'd
// overflow and a denied post-drain submission — records a script + trace
// that replay bit-for-bit.
func TestHTTPRecordedRunReplays(t *testing.T) {
	s, err := NewServer(externalPair())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var trace, script bytes.Buffer
	if err := s.StartTrace(&trace); err != nil {
		t.Fatal(err)
	}
	rec, err := replay.NewScriptRecorder(&script, "http test mix")
	if err != nil {
		t.Fatal(err)
	}
	h := NewHTTPServer(s, HTTPOptions{Script: rec})
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()

	for r := 0; r < 12; r++ {
		if r%2 == 0 {
			postSubmit(t, ts.URL, "ext0", 2)
		}
		if r%5 == 0 {
			postSubmit(t, ts.URL, "ext1", 6) // overflows cap 4 → 429 recorded as a submission
		}
		h.Tick()
	}
	if err := h.Shutdown(); err != nil {
		t.Fatal(err)
	}
	postSubmit(t, ts.URL, "ext0", 3) // denied: must NOT be in the script
	live := make([]TenantStats, s.NumTenants())
	for i := range live {
		live[i] = s.TenantStats(i)
	}

	sc, err := replay.ReadScript(bytes.NewReader(script.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewServer(externalPair())
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	var repTrace bytes.Buffer
	if err := rep.StartTrace(&repTrace); err != nil {
		t.Fatal(err)
	}
	rep.PlayScript(sc.Events, sc.Rounds)
	if err := rep.StopTrace(); err != nil {
		t.Fatal(err)
	}
	for i, want := range live {
		st := rep.TenantStats(i)
		if st.Steps != want.Steps || st.Hash != want.Hash ||
			st.Submitted != want.Submitted || st.Rejected != want.Rejected {
			t.Errorf("tenant %d: replay {steps=%d hash=%x sub=%d rej=%d}, live {steps=%d hash=%x sub=%d rej=%d}",
				i, st.Steps, st.Hash, st.Submitted, st.Rejected,
				want.Steps, want.Hash, want.Submitted, want.Rejected)
		}
	}
	if rep.Fingerprint() != sc.Fingerprint {
		t.Errorf("replay fingerprint %x, script %x", rep.Fingerprint(), sc.Fingerprint)
	}
	if !bytes.Equal(trace.Bytes(), repTrace.Bytes()) {
		t.Errorf("re-recorded trace differs from live capture (%d vs %d bytes)", trace.Len(), repTrace.Len())
	}
	checkIdentity(t, rep, "http replay")
}
