// Package serve is the multi-tenant serving front end over quorum.Pool —
// the "serving lane" the ROADMAP's scaling work built toward. It admits
// workload submissions from per-tenant traffic sources (live synthetic
// generators reusing the replay package's patterns, or recorded PRAMTRC1
// traces via replay.BatchSource), queues them behind bounded per-tenant
// admission queues with explicit backpressure, and schedules them onto a
// pool of K concurrent quorum engines with BAND-AWARE placement: each
// tenant owns one variable band of a memmap.GenerateBanded image and is
// pinned to shard band%K, so tenants that are co-scheduled in a round
// touch disjoint module bands by construction and hit the pool's
// zero-locking disjoint-component fast path.
//
// # Determinism
//
// A serving run is a pure function of (map seed, tenant specs, arrival
// script): there is no wall clock anywhere. Rounds advance a virtual
// round counter; arrivals are arithmetic in that counter; the scheduler is
// a deterministic round-robin per shard; and the pool's own contract makes
// each round bit-for-bit independent of its worker count. The memory map
// is banded by the TENANT count (not by K), and band-local tenants write
// only their own rows, so per-tenant StepReports and the final store
// fingerprint are ALSO invariant across the engine count K — a mix served
// at K=8 is, per tenant, the same computation as at K=1, merely faster
// (TestServeDeterministic locks this across K ∈ {1,2,4,8} and worker
// counts). The one caveat is backpressure: rejection counts depend on how
// fast queues drain, so open-loop mixes that overflow their queues are
// deterministic per (K, script) but not across K.
//
// # Backpressure and degradation
//
// Admission queues are credit counters with a hard cap: an arrival beyond
// the cap is REJECTED and counted (Rejected per tenant), never silently
// dropped or blocked on. Placement degradation is equally loud: admitting
// a tenant whose band another tenant already owns bumps BandOverlaps (the
// two serialize behind one shard's queue instead of running in parallel),
// and any round whose batches collide on a module — cross-band traffic —
// counts its forced serial-component merges (ForcedMerges, from the
// pool's component census). Both fire the optional Logf hook once, so a
// deployment sees its fast path eroding instead of just slowing down.
//
// # Autoscaling and resize determinism
//
// The engine count K is a wall-clock knob, not a semantic one, and the
// Autoscaler exploits that: watching the degradation signals the server
// already counts (forced merges, pool occupancy, queue depth, rejection
// rate), it grows or shrinks K online via Server.Resize — the pool adds or
// retires shard machines and every tenant re-bands to shard band%K, with
// no data movement (the store is module-sharded) and no accounting reset,
// so the admission identity submitted == steps + queue + rejected +
// unserved holds through every transition. Because per-tenant results are
// K-invariant, a resize changes occupancy and wall clock only: per-tenant
// hashes and the store fingerprint are unchanged by WHEN (or whether) the
// autoscaler acts.
//
// The caveat is, as ever, rejection determinism: Rejected counts depend
// on queue drain rates, and drain rates depend on K. An open-loop or
// externally-submitted mix that overflows its queues is deterministic per
// (K schedule, arrival script) — which is why live HTTP mode records both
// the resize rounds and the submissions into the arrival script — but a
// DIFFERENT K schedule may split the same submissions differently between
// served and rejected. Replays therefore re-apply the recorded resizes at
// their recorded rounds instead of re-running the autoscaler policy; when
// the script's meta line carries the recorded policy, a replay can instead
// run a SHADOW autoscaler (PlayScriptObserved), which reproduces the same
// resize stream — the script's own resize events become no-ops — plus the
// autoscaler's decision records in the flight recorder.
//
// # Observability
//
// The serving lane observes itself in VIRTUAL time, with the same
// determinism contract as everything else: every measurement is a pure
// function of (seed, specs, script), so two runs of one deployment produce
// bit-for-bit identical telemetry, and `serve replay` reproduces a live
// run's telemetry exactly.
//
//   - Histograms (prom.Histogram, power-of-two buckets, int64 hot path):
//     per-tenant simulated step time and queue-wait rounds, per-round
//     makespan / summed work / active-shard occupancy, and post-dedup
//     quorum batch sizes (via Pool.LastDedupRequests — free, no StepSink).
//     All render as Prometheus histogram families on /metrics. For finite
//     mixes served to completion the step-time and dedup families are
//     K-invariant (the step multiset is); wait/occupancy families depend
//     on the round schedule and are invariant across worker counts only.
//   - The flight recorder (FlightRecorder) is the lane's black box: a
//     fixed-size ring of structured round records — admissions and their
//     accept/reject splits, arrival-overflow rejections, resizes, drain,
//     and every autoscaler decision WITH its window inputs (rejection /
//     executed / merged deltas, queue fill, mean occupancy, merge
//     fraction). GET /debug/flight and Server.WriteFlight dump it as
//     deterministic JSON; appending is a struct store into a preallocated
//     slot, and truncation is never silent (the dump counts what the ring
//     dropped).
//   - The wall-clock side stays quarantined: HTTPOptions.Pprof optionally
//     mounts the stdlib /debug/pprof/* handlers (host-process profiles,
//     opt-in, wallclock-scoped http.go only).
//
// # Span tracing
//
// The span recorder (internal/span) answers the question the round-level
// telemetry cannot: WHERE did the round go. Every executed round is
// decomposed into the pipeline stages the engine already counts — queue
// wait, band→shard scheduling, the union-find component partition (with
// forced merges), each tenant step's quorum (retrieval) and commit
// (update) legs, per-shard interconnect routing (fabric cycle/hop
// counter deltas and peak module load), and the closing report merge —
// stamped on a monotone virtual clock that advances by each round's
// makespan. GET /debug/spans, Server.WriteSpans and `serve spans` render
// the ring as deterministic Chrome/Perfetto trace-event JSON with server,
// tenant and shard tracks; `serve replay -spans` re-derives a live
// capture byte-for-byte. The quorum/commit split tiles each step's Time
// exactly, so the per-tenant pramsim_serve_tenant_stage_time_total
// counter families are K-invariant for finite mixes served to completion
// (labels are tenant+band+stage only, surviving resizes), while the
// critical-path split (pramsim_serve_round_critical_stage_time_total)
// follows the round schedule and is worker/replay-invariant only.
//
// The per-round serving path — admission, scheduling, pool execution,
// accounting, histogram observation, flight and span recording —
// performs zero steady-state heap allocations (TestServeRoundZeroAllocs,
// TestSubmitZeroAllocs, TestFlightPushZeroAllocs, TestSpanPushZeroAllocs),
// extending the repository's invariant one layer further up the stack.
package serve

import (
	"fmt"
	"io"

	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/mot"
	"repro/internal/prom"
	"repro/internal/quorum"
	"repro/internal/replay"
	"repro/internal/span"
)

// Interconnect selects the fabric each pool shard routes its protocol
// phases over.
type Interconnect uint8

const (
	// Bipartite is the DMMPC's complete bipartite processor–module graph
	// (quorum.NewCompleteBipartite): contention-free routing, phase cost 1.
	// The default, and the only fabric the serving lane had before the
	// per-shard mesh option.
	Bipartite Interconnect = iota
	// MOT2D gives every shard its OWN √M × √M two-dimensional mesh of
	// trees with modules at the leaves (the paper's Theorem 3 machine,
	// core.NewMOT2DPool's deployment): phase costs become real routed
	// cycle counts, and the SoA router core carries the serving lane. The
	// Lemma 2 (KExp, Eps) point is replaced by a Theorem 3 (KExp, Gran)
	// point sized at nMax·Bands total processors.
	MOT2D
)

// String implements fmt.Stringer.
func (ic Interconnect) String() string {
	if ic == MOT2D {
		return "mot2d"
	}
	return "bipartite"
}

// ParseInterconnect maps the CLI spellings to an Interconnect kind.
func ParseInterconnect(s string) (Interconnect, error) {
	switch s {
	case "", "bipartite", "dmmpc", "complete":
		return Bipartite, nil
	case "mot2d", "mot", "mesh":
		return MOT2D, nil
	default:
		return Bipartite, fmt.Errorf("serve: unknown interconnect %q (want bipartite or mot2d)", s)
	}
}

// Band is one tenant's slice of the variable space: the half-open range
// [Lo, Hi) of the server's Mem variables the tenant should address.
// Factories for global (deliberately cross-band) traffic may ignore it.
type Band struct {
	Lo, Hi int
	Mem    int
}

// Span returns the band's width.
func (b Band) Span() int { return b.Hi - b.Lo }

// Source yields one tenant's step batches in submission order.
type Source interface {
	// Procs returns the width of the batches NextBatch yields (the
	// tenant's simulated P-RAM size).
	Procs() int
	// NextBatch returns the tenant's next step batch, or false when the
	// source is exhausted. The batch may alias source-owned scratch and
	// the server may mutate it in place before executing it.
	NextBatch() (model.Batch, bool)
	// Err reports the failure that ended the stream early, nil for a
	// clean end.
	Err() error
}

// SourceFactory binds a tenant's traffic source to its assigned band at
// server construction time.
type SourceFactory func(b Band) Source

// Arrival is a deterministic arrival process in virtual round time.
// Window > 0 selects CLOSED-LOOP operation: the tenant keeps Window step
// credits outstanding (replenished every round, never rejected — the
// W-users-resubmit-on-completion model). Window == 0 selects OPEN-LOOP
// operation: every Period rounds a burst of Burst credits arrives,
// regardless of completion, and credits beyond the queue cap are
// rejected; On/Off > 0 additionally gate the process into on/off phases
// of that many rounds (the bursty shape). External disables autonomous
// arrivals entirely: credits enter only through Server.Submit — the live
// HTTP admission mode, where the arrival process is the outside world and
// determinism comes from recording it as a script. The zero value (with
// External false) defaults to closed-loop with a window of 1; an EXPLICIT
// open-loop request needs Period or Burst > 0 — cmd/serve's parser rejects
// `open:0:0` rather than let it silently degrade to that default.
type Arrival struct {
	Window   int
	Period   int
	Burst    int
	On       int
	Off      int
	External bool
}

// arrivals returns how many credits arrive at virtual round r.
func (a Arrival) arrivals(r int64, credits int) int {
	if a.External {
		return 0
	}
	// Closed loop: an explicit Window, or the FULL zero value. A struct
	// with any open-loop field set (even a degenerate zero Period/Burst
	// with On/Off shaping) meant open loop and must not fall back here.
	if a.Window > 0 || (a.Period == 0 && a.Burst == 0 && a.On == 0 && a.Off == 0) {
		w := a.Window
		if w == 0 {
			w = 1
		}
		if credits >= w {
			return 0
		}
		return w - credits
	}
	period := int64(a.Period)
	if period < 1 {
		period = 1
	}
	burst := a.Burst
	if burst < 1 {
		burst = 1
	}
	if cycle := int64(a.On + a.Off); a.On > 0 && cycle > 0 && r%cycle >= int64(a.On) {
		return 0
	}
	if r%period != 0 {
		return 0
	}
	return burst
}

// TenantConfig declares one tenant of a serving mix.
type TenantConfig struct {
	// Name labels the tenant in metrics and summaries.
	Name string
	// Band is the variable band this tenant owns, in [0, Config.Bands).
	Band int
	// Procs is the tenant's simulated P-RAM size (its batches' width).
	Procs int
	// Source builds the tenant's traffic stream.
	Source SourceFactory
	// Arrival is the tenant's submission process.
	Arrival Arrival
	// QueueCap overrides Config.QueueCap for this tenant when > 0.
	QueueCap int
}

// Config assembles a serving deployment.
type Config struct {
	// Tenants is the workload mix. At least one.
	Tenants []TenantConfig
	// Bands is how many variable bands the map is cut into (0 → one per
	// tenant). Must be ≥ every tenant's Band+1.
	Bands int
	// Engines is the pool's engine count K (0 consults PRAMSIM_ENGINES,
	// < 0 GOMAXPROCS).
	Engines int
	// Workers bounds the pool's executor goroutines (quorum.PoolConfig).
	Workers int
	// Mode is the conflict convention. The zero value selects
	// CRCW-Priority: a multi-tenant front end serves arbitrary concurrent
	// traffic, and an exclusivity discipline would make every hotspot or
	// broadcast step allocate a violation error on the hot path. Set an
	// explicit stricter mode only for mixes known to respect it.
	Mode model.Mode
	// Seed draws the memory map (0 → 1).
	Seed int64
	// Interconnect selects each shard's fabric: Bipartite (default) or
	// MOT2D per-shard meshes.
	Interconnect Interconnect
	// KExp and Eps are the Lemma 2 exponents (0 → 2 and 1). Under MOT2D,
	// KExp is the Theorem 3 memory exponent instead (0 → 1.5) and Eps is
	// unused.
	KExp, Eps float64
	// Gran is the Theorem 3 granularity exponent δ for MOT2D meshes
	// (0 → 1.5): the grid side is ceilPow2((nMax·Bands)^((1+δ)/2)), so
	// bigger mixes need a smaller δ to stay inside mot.MaxSide.
	Gran float64
	// DualRail enables the row+column dual-rail banks on MOT2D meshes
	// (Theorem 3's closing remark; halves the redundancy).
	DualRail bool
	// AllowTraceKindMismatch admits trace sources whose recorded header
	// names a different machine kind than the pool's interconnect (the
	// addresses still remap fine; the recorded cycle counts just came from
	// a different fabric). Off by default: a mismatch is an error.
	AllowTraceKindMismatch bool
	// QueueCap is the default per-tenant admission-queue capacity in step
	// credits (0 → 8).
	QueueCap int
	// FlightDepth sizes the flight recorder's event ring (0 → 512). The
	// ring keeps the most recent events and counts what it overwrote.
	FlightDepth int
	// SpanDepth sizes the span recorder's ring (0 → 4096 spans). One
	// executed round records 3 + 4·(active shards) spans, so the default
	// keeps a few hundred recent rounds at small K. The depth is NOT part
	// of the recorded arrival script: a live capture and its replay must
	// agree on it for the `serve replay -spans` byte-compare, so both
	// sides rely on the same config default.
	SpanDepth int
	// Logf, when non-nil, receives one-shot degradation warnings (band
	// overlap at admission, first forced merge, source failures). It is
	// never called on the steady-state path.
	Logf func(format string, args ...any)
}

// tenant is the server-side state of one admitted tenant.
type tenant struct {
	cfg   TenantConfig
	id    int
	shard int
	band  Band
	src   Source
	cap   int

	credits int
	done    bool

	// Accounting (exported via TenantStats).
	submitted int64
	rejected  int64
	unserved  int64
	steps     int64
	maxQueue  int
	simTime   int64
	phases    int64
	copies    int64
	cycles    int64
	maxCont   int
	errSteps  int64
	hash      uint64
	srcErr    error

	// Queue-wait tracking: a FIFO ring of admission rounds, one entry per
	// queued credit (capacity = the tenant's queue cap, so it can never
	// overflow). Popping on execution yields the credit's wait in virtual
	// rounds, observed into hWait.
	waitRing []int64
	waitHead int
	waitLen  int

	// Per-tenant distributions (virtual time; K- and worker-invariant for
	// finite mixes run to completion, see the package doc).
	hStep *prom.Histogram // per-step simulated time
	hWait *prom.Histogram // queue wait in rounds per executed credit

	// Stage attribution (exported via TenantStats and the
	// tenant_stage_time counter families): the tenant's summed simulated
	// step time split into the retrieval (quorum) and update (commit)
	// legs. The two tile simTime exactly and, like simTime, are
	// K-invariant for finite mixes served to completion.
	stageQuorum int64
	stageCommit int64
}

// pushWait records one admitted credit's admission round.
//
//pram:hotpath
func (t *tenant) pushWait(r int64) {
	t.waitRing[(t.waitHead+t.waitLen)%len(t.waitRing)] = r
	t.waitLen++
}

// popWait removes the oldest queued credit's admission round.
//
//pram:hotpath
func (t *tenant) popWait() int64 {
	r := t.waitRing[t.waitHead]
	t.waitHead = (t.waitHead + 1) % len(t.waitRing)
	t.waitLen--
	return r
}

// Server multiplexes the tenant mix onto the engine pool. All methods must
// be called from one goroutine; the pool spreads each round's work
// internally.
type Server struct {
	pool   *quorum.Pool
	store  *quorum.Store
	params memmap.Params
	ic     Interconnect
	side   int // MOT2D grid side (0 under Bipartite)
	bands  int
	k      int
	nMax   int

	// Resolved construction parameters, kept so StartTrace can synthesize
	// a faithful PRAMTRC1 header for the deployment.
	mode     model.Mode
	seed     int64
	kExp     float64
	eps      float64
	gran     float64
	dualRail bool

	tenants []*tenant
	byShard [][]int // tenant ids per shard, in admission order
	cursor  []int   // per-shard round-robin position

	batches    []model.Batch
	execTenant []int32
	empty      model.Batch

	round    int64 // virtual admission clock (advances every Round)
	draining bool

	// Serving counters (exported via Stats).
	execRounds   int64
	idleRounds   int64
	mergedRounds int64
	forcedMerges int64
	bandOverlaps int64
	resizes      int64

	rec *replay.Recorder // live trace capture (tenant-lane), nil when off

	// Observability: the flight recorder and the server-wide round
	// distributions (all virtual-time; observation is allocation-free).
	flight         *FlightRecorder
	hRoundActive   *prom.Histogram // active shards per executed round
	hRoundMakespan *prom.Histogram // max shard step time per executed round
	hRoundWork     *prom.Histogram // summed shard step time per executed round
	hDedup         *prom.Histogram // post-dedup requests per executed step

	// Span tracing (see the package doc): the stage-span ring plus the
	// per-shard scratch its hot path reads. nets/netPrev cache each
	// shard's mesh handle and fabric counter baseline (nil/zero under
	// Bipartite) for the route spans' cycle/hop deltas; waitScratch holds
	// the wait (in rounds) of the credit each shard scheduled this round;
	// critQuorum/critCommit accumulate the critical-path makespan split.
	spans       *span.Recorder
	nets        []*mot.Network
	netPrev     []mot.Stats
	waitScratch []int64
	critQuorum  int64
	critCommit  int64

	logf        func(string, ...any)
	loggedMerge bool
}

// Histogram bucket counts (finite power-of-two buckets; see prom.Histogram).
// Fixed at construction so bucket layouts — part of the exposition — never
// depend on K, worker counts, or the traffic observed.
const (
	stepTimeBuckets    = 24 // per-step simulated time (cycles under MOT2D)
	queueWaitBuckets   = 16 // queue wait in rounds
	occupancyBuckets   = 8  // active shards per round
	roundCostBuckets   = 24 // per-round makespan/work
	dedupBuckets       = 16 // post-dedup requests per step
	defaultFlightDepth = 512
	defaultSpanDepth   = 4096
)

// NewServer builds the deployment: a Lemma 2 parameter point at
// maxProcs·Bands total processors, a map banded by the TENANT band count
// (K-invariant, see the package doc), one store, and a K-engine bipartite
// pool whose machines are sized to the largest tenant — tenants with
// smaller Procs simply leave the upper processors idle, so lanes of
// uneven sizes multiplex onto one pool. Infeasible parameter points
// surface as errors, not panics.
func NewServer(cfg Config) (s *Server, err error) {
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("serve: no tenants")
	}
	bands := cfg.Bands
	if bands == 0 {
		bands = len(cfg.Tenants)
	}
	nMax := 0
	for i := range cfg.Tenants {
		t := &cfg.Tenants[i]
		if t.Procs < 1 {
			return nil, fmt.Errorf("serve: tenant %q: Procs=%d < 1", t.Name, t.Procs)
		}
		if t.Band < 0 || t.Band >= bands {
			return nil, fmt.Errorf("serve: tenant %q: band %d outside [0,%d)", t.Name, t.Band, bands)
		}
		if t.Source == nil {
			return nil, fmt.Errorf("serve: tenant %q: no source", t.Name)
		}
		if t.Procs > nMax {
			nMax = t.Procs
		}
	}
	mode := cfg.Mode
	if mode == model.EREW {
		mode = model.CRCWPriority
	}
	kExp, eps, seed := cfg.KExp, cfg.Eps, cfg.Seed
	if kExp == 0 {
		kExp = 2
		if cfg.Interconnect == MOT2D {
			// Meshes pay side = (nTotal·m-granularity)^((1+δ)/2) in silicon;
			// the Theorem 3 experiments run m = n^1.5 at production sizes.
			kExp = 1.5
		}
	}
	if eps == 0 {
		eps = 1
	}
	gran := cfg.Gran
	if gran == 0 {
		gran = 1.5
	}
	if seed == 0 {
		seed = 1
	}
	// The memmap generators and pool constructor panic on infeasible
	// points (bands below the redundancy, oversized stores, meshes past
	// the dense-edge ceiling); a serving config must not crash the
	// deployment. The recover is scoped to exactly those calls: a panic in
	// a user SourceFactory (admitted below, outside this closure) stays a
	// panic with its stack intact.
	var p memmap.Params
	var side int
	var store *quorum.Store
	var pool *quorum.Pool
	k := quorum.ResolveEngines(cfg.Engines)
	if err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("serve: infeasible deployment parameters: %v", r)
			}
		}()
		if cfg.Interconnect == MOT2D {
			// Theorem 3 point at the TOTAL processor count, one mesh per
			// shard — core.NewMOT2DPool's wiring, banded by the TENANT
			// count so per-tenant results stay K-invariant.
			if cfg.DualRail {
				p, side = memmap.TheoremThreeDual(nMax*bands, kExp, gran)
			} else {
				p, side = memmap.TheoremThree(nMax*bands, kExp, gran)
			}
			if nMax > side {
				return fmt.Errorf("largest tenant procs %d exceed grid side %d (raise Gran)", nMax, side)
			}
			store = quorum.NewStore(memmap.GenerateBanded(p, seed, bands))
			pool = quorum.NewPool("serve", store,
				func(int) quorum.Interconnect {
					return mot.NewNetwork(side, mot.ModulesAtLeaves,
						mot.Config{DualRail: cfg.DualRail})
				},
				quorum.PoolConfig{Engines: k, Procs: nMax, Mode: mode, Workers: cfg.Workers})
			return nil
		}
		p = memmap.LemmaTwo(nMax*bands, kExp, eps)
		store = quorum.NewStore(memmap.GenerateBanded(p, seed, bands))
		pool = quorum.NewPool("serve", store,
			func(int) quorum.Interconnect { return quorum.NewCompleteBipartite() },
			quorum.PoolConfig{Engines: k, Procs: nMax, Mode: mode, Workers: cfg.Workers})
		return nil
	}(); err != nil {
		return nil, err
	}
	// Every error return below this point must retire the pool's executor
	// goroutines: a rejected config (bad tenant, trace kind mismatch) is a
	// recoverable error, not a license to leak workers.
	defer func() {
		if err != nil {
			pool.Close()
		}
	}()

	s = &Server{
		pool:       pool,
		store:      store,
		params:     p,
		ic:         cfg.Interconnect,
		side:       side,
		bands:      bands,
		k:          k,
		nMax:       nMax,
		mode:       mode,
		seed:       seed,
		kExp:       kExp,
		eps:        eps,
		gran:       gran,
		dualRail:   cfg.DualRail,
		byShard:    make([][]int, k),
		cursor:     make([]int, k),
		batches:    make([]model.Batch, k),
		execTenant: make([]int32, k),
		logf:       cfg.Logf,
	}
	depth := cfg.FlightDepth
	if depth == 0 {
		depth = defaultFlightDepth
	}
	s.flight = NewFlightRecorder(depth)
	sdepth := cfg.SpanDepth
	if sdepth == 0 {
		sdepth = defaultSpanDepth
	}
	s.spans = span.NewRecorder(sdepth)
	s.waitScratch = make([]int64, k)
	s.refreshNets()
	s.hRoundActive = prom.NewHistogram(occupancyBuckets)
	s.hRoundMakespan = prom.NewHistogram(roundCostBuckets)
	s.hRoundWork = prom.NewHistogram(roundCostBuckets)
	s.hDedup = prom.NewHistogram(dedupBuckets)
	qcap := cfg.QueueCap
	if qcap == 0 {
		qcap = 8
	}
	bandOwner := make(map[int]string, bands)
	for i := range cfg.Tenants {
		tc := cfg.Tenants[i]
		if tc.Name == "" {
			tc.Name = fmt.Sprintf("tenant%d", i)
		}
		lo, hi := memmap.BandRange(tc.Band, p.Mem, bands)
		t := &tenant{
			cfg:   tc,
			id:    i,
			shard: tc.Band % k,
			band:  Band{Lo: lo, Hi: hi, Mem: p.Mem},
			cap:   qcap,
		}
		if tc.QueueCap > 0 {
			t.cap = tc.QueueCap
		}
		// A closed-loop window is itself a queue bound: the tenant never
		// holds more than Window credits. Clipping the window at a smaller
		// cap would reject replenishments every round — against the
		// Arrival contract — so the effective cap accommodates it.
		if tc.Arrival.Window > t.cap {
			t.cap = tc.Arrival.Window
		}
		t.src = tc.Source(t.band)
		if t.src.Procs() > tc.Procs {
			return nil, fmt.Errorf("serve: tenant %q: source procs %d exceed declared %d",
				tc.Name, t.src.Procs(), tc.Procs)
		}
		if rc, ok := TraceHeader(t.src); ok {
			// Header-validate recorded traces against the pool's fabric: a
			// PRAMTRC1 stream names the machine kind it was captured on, and
			// replaying e.g. a bipartite capture into mesh shards silently
			// changes what the recorded stream meant. Addresses remap fine
			// either way, so a config flag can override.
			want := replay.KindDMMPC
			if cfg.Interconnect == MOT2D {
				want = replay.KindMOT2D
			}
			if rc.Kind != want {
				if !cfg.AllowTraceKindMismatch {
					return nil, fmt.Errorf(
						"serve: tenant %q: trace was recorded on a %v machine but the pool serves %v interconnects; set AllowTraceKindMismatch (cmd/serve -allow-kind-mismatch) to replay it anyway",
						tc.Name, rc.Kind, cfg.Interconnect)
				}
				if s.logf != nil {
					s.logf("serve: tenant %q: replaying a %v-recorded trace onto %v interconnects (kind mismatch allowed by config)",
						tc.Name, rc.Kind, cfg.Interconnect)
				}
			}
		}
		t.waitRing = make([]int64, t.cap)
		t.hStep = prom.NewHistogram(stepTimeBuckets)
		t.hWait = prom.NewHistogram(queueWaitBuckets)
		if owner, taken := bandOwner[tc.Band]; taken {
			// The silent-degradation gap: two tenants on one band always
			// serialize behind one shard queue. Count and warn — never
			// just quietly halve their throughput.
			s.bandOverlaps++
			if s.logf != nil {
				s.logf("serve: tenant %q overlaps band %d owned by %q: co-located on shard %d, steps will serialize",
					tc.Name, tc.Band, owner, t.shard)
			}
		} else {
			bandOwner[tc.Band] = tc.Name
		}
		s.tenants = append(s.tenants, t)
		s.byShard[t.shard] = append(s.byShard[t.shard], i)
	}
	return s, nil
}

// Engines returns the pool's engine count K.
func (s *Server) Engines() int { return s.k }

// Bands returns the map's band count.
func (s *Server) Bands() int { return s.bands }

// Interconnect returns the per-shard fabric kind.
func (s *Server) Interconnect() Interconnect { return s.ic }

// Side returns the per-shard mesh side under MOT2D (0 under Bipartite).
func (s *Server) Side() int { return s.side }

// Params returns the deployment's Lemma 2 parameter point.
func (s *Server) Params() memmap.Params { return s.params }

// Pool exposes the underlying engine pool (diagnostics and tests).
func (s *Server) Pool() *quorum.Pool { return s.pool }

// Fingerprint returns the current store fingerprint — the serving run's
// committed-state digest.
func (s *Server) Fingerprint() uint64 { return s.store.Fingerprint() }

// TenantID resolves a tenant name to its index (the Submit handle).
func (s *Server) TenantID(name string) (int, bool) {
	for _, t := range s.tenants {
		if t.cfg.Name == name {
			return t.id, true
		}
	}
	return 0, false
}

// Draining reports whether admission has been stopped by Drain.
func (s *Server) Draining() bool { return s.draining }

// Resizes reports how many online K transitions the server has performed.
func (s *Server) Resizes() int64 { return s.resizes }

// Submit offers n step credits to tenant id's bounded admission queue —
// the external-admission path the HTTP front end maps POST /submit onto.
// It returns how many credits were accepted and how many rejected;
// rejection is counted, never silent, and a draining server or exhausted
// tenant rejects everything. The split is a deterministic function of the
// server's state, so replaying a recorded (round, tenant, n) submission
// script reproduces the live run's accounting exactly.
func (s *Server) Submit(id, n int) (accepted, rejected int) {
	if id < 0 || id >= len(s.tenants) {
		panic(fmt.Sprintf("serve: Submit tenant %d outside [0,%d)", id, len(s.tenants)))
	}
	if n <= 0 {
		return 0, 0
	}
	t := s.tenants[id]
	t.submitted += int64(n)
	if s.draining || t.done {
		t.rejected += int64(n)
		s.flight.push(FlightEvent{Round: s.round, Kind: FlightSubmit, Tenant: int32(id), B: int64(n)})
		return 0, n
	}
	accepted = n
	if room := t.cap - t.credits; accepted > room {
		rejected = accepted - room
		accepted = room
		t.rejected += int64(rejected)
	}
	t.credits += accepted
	if t.credits > t.maxQueue {
		t.maxQueue = t.credits
	}
	for i := 0; i < accepted; i++ {
		t.pushWait(s.round)
	}
	s.flight.push(FlightEvent{Round: s.round, Kind: FlightSubmit, Tenant: int32(id),
		A: int64(accepted), B: int64(rejected)})
	return accepted, rejected
}

// Resize changes the pool's engine count K online, between rounds: the
// pool adds or retires shard machines (quorum.Pool.Resize — the store is
// module-sharded, so no data moves) and the server re-bands every tenant
// onto shard band%K, rebuilding the per-shard schedules in admission
// order with cursors at the top. Queued credits and all per-tenant
// accounting survive untouched, so the admission identity
// submitted == steps + queue + rejected + unserved holds through the
// transition. Must be called between rounds, from the serving goroutine.
func (s *Server) Resize(k int) {
	if k < 1 {
		panic(fmt.Sprintf("serve: Resize k=%d < 1", k))
	}
	if k == s.k {
		return
	}
	prev := s.k
	s.pool.Resize(k)
	s.k = k
	s.byShard = make([][]int, k)
	s.cursor = make([]int, k)
	s.batches = make([]model.Batch, k)
	s.execTenant = make([]int32, k)
	s.waitScratch = make([]int64, k)
	s.refreshNets()
	for _, t := range s.tenants {
		t.shard = t.cfg.Band % k
		s.byShard[t.shard] = append(s.byShard[t.shard], t.id)
	}
	s.resizes++
	s.flight.push(FlightEvent{Round: s.round, Kind: FlightResize, K: int32(prev), To: int32(k)})
	if s.logf != nil {
		s.logf("serve: resized K %d -> %d (round %d, %d tenants re-banded)", prev, k, s.round, len(s.tenants))
	}
}

// refreshNets re-caches the per-shard mesh handles (nil under Bipartite)
// and their fabric counter baselines for the route spans' cycle/hop
// deltas. Shards that survive a Resize keep their machines — and with
// them their monotone fabric counters — so surviving baselines carry
// over and the deltas stay exact across transitions; shards added by a
// grow start fresh machines whose counters begin at zero.
func (s *Server) refreshNets() {
	nets := make([]*mot.Network, s.k)
	prev := make([]mot.Stats, s.k)
	for sh := 0; sh < s.k; sh++ {
		nw, ok := s.pool.ShardInterconnect(sh).(*mot.Network)
		if !ok {
			continue
		}
		nets[sh] = nw
		if sh < len(s.nets) && s.nets[sh] == nw {
			prev[sh] = s.netPrev[sh]
		}
	}
	s.nets, s.netPrev = nets, prev
}

// StartTrace begins recording the run as a PRAMTRC1 trace onto w. Lanes
// are TENANT ids, not pool shards: a translating sink renames each
// executed step's shard lane to the tenant it served, so the capture has
// a fixed lane count (the mix size) and survives online Resize — a trace
// of the workload, not of the momentary pool shape. Stop with StopTrace
// (before reading w); only one trace may be active.
func (s *Server) StartTrace(w io.Writer) error {
	if s.rec != nil {
		return fmt.Errorf("serve: a trace is already being recorded")
	}
	kind := replay.KindDMMPC
	gran := s.eps // the DMMPC header convention: Gran is the Lemma 2 ε
	if s.ic == MOT2D {
		kind = replay.KindMOT2D
		gran = s.gran
	}
	built := &replay.Built{
		Cfg: replay.Config{
			Kind: kind, Lanes: len(s.tenants), Procs: s.nMax, Mode: s.mode,
			Seed: s.seed, KExp: s.kExp, Gran: gran, DualRail: s.dualRail,
		},
		Store:  s.store,
		Params: s.params,
		Side:   s.side,
	}
	rec, err := replay.NewSinkRecorder(w, built)
	if err != nil {
		return err
	}
	s.rec = rec
	s.pool.SetStepSink(&tenantLaneSink{s: s})
	return nil
}

// StopTrace detaches the trace sink, writes the eof frame (step count +
// final store fingerprint) and reports the first recording error.
func (s *Server) StopTrace() error {
	if s.rec == nil {
		return nil
	}
	s.pool.SetStepSink(nil)
	err := s.rec.Close()
	s.rec = nil
	return err
}

// tenantLaneSink renames pool shard lanes to tenant lanes on the way into
// the trace recorder. execTenant is written by Round before the pool runs
// and read-only while shard machines execute, so concurrent RecordStep
// calls (different shards, hence different tenants) stay race-free.
type tenantLaneSink struct {
	s *Server
}

func (ts *tenantLaneSink) RecordStep(lane int, reads []quorum.Request, readerOff, readerProcs []int32,
	writes []quorum.Request, rep model.StepReport) {
	id := ts.s.execTenant[lane]
	if id < 0 {
		return // idle shard: empty batch, nothing served
	}
	ts.s.rec.RecordStep(int(id), reads, readerOff, readerProcs, writes, rep)
}

func (ts *tenantLaneSink) RecordLoad(lane int, base model.Addr, vals []model.Word) {
	// The serving path never calls LoadCells mid-run; a setup-time load
	// has no tenant to attribute to and is not part of the serving trace.
}

func (ts *tenantLaneSink) StepBarrier() {
	ts.s.rec.StepBarrier()
}

// Round executes one serving round — admission, band-aware scheduling (at
// most one queued step per shard, round-robin over the shard's tenants),
// one pool round, accounting — and returns how many tenant steps it
// executed (0 for an idle round, which skips the pool entirely).
//
//pram:hotpath
func (s *Server) Round() int {
	r := s.round
	s.round++
	if !s.draining {
		for _, t := range s.tenants {
			if t.done {
				continue
			}
			n := t.cfg.Arrival.arrivals(r, t.credits)
			if n == 0 {
				continue
			}
			t.submitted += int64(n)
			if room := t.cap - t.credits; n > room {
				t.rejected += int64(n - room)
				s.flight.push(FlightEvent{Round: r, Kind: FlightReject, Tenant: int32(t.id), A: int64(n - room)})
				n = room
			}
			t.credits += n
			if t.credits > t.maxQueue {
				t.maxQueue = t.credits
			}
			for i := 0; i < n; i++ {
				t.pushWait(r)
			}
		}
	}
	scheduled := 0
	for sh := 0; sh < s.k; sh++ {
		s.batches[sh] = s.empty
		s.execTenant[sh] = -1
		ts := s.byShard[sh]
		if len(ts) == 0 {
			continue
		}
		start := s.cursor[sh]
		for j := 0; j < len(ts); j++ {
			t := s.tenants[ts[(start+j)%len(ts)]]
			if t.done || t.credits == 0 {
				continue
			}
			b, ok := t.src.NextBatch()
			if !ok {
				t.done = true
				// Credits admitted beyond the source's end can never
				// execute; count them so the accounting identity
				// submitted == steps + queue + rejected + unserved holds.
				t.unserved += int64(t.credits)
				t.credits = 0
				t.waitHead, t.waitLen = 0, 0 // voided credits never observe a wait
				if err := t.src.Err(); err != nil {
					t.srcErr = err
					if s.logf != nil {
						//pram:coldalloc tenant source failure path, cold by definition
						s.logf("serve: tenant %q source failed after %d steps: %v", t.cfg.Name, t.steps, err)
					}
				}
				continue
			}
			t.credits--
			wait := r - t.popWait()
			t.hWait.Observe(wait)
			s.waitScratch[sh] = wait
			s.batches[sh] = b
			s.execTenant[sh] = int32(t.id)
			s.cursor[sh] = (start + j + 1) % len(ts)
			scheduled++
			break
		}
	}
	if scheduled == 0 {
		s.idleRounds++
		return 0
	}
	_, reports := s.pool.ExecuteSteps(s.batches)
	s.execRounds++
	merges := s.k - s.pool.LastComponents()
	if merges > 0 {
		s.forcedMerges += int64(merges)
		s.mergedRounds++
		if s.logf != nil && !s.loggedMerge {
			s.loggedMerge = true
			//pram:coldalloc warn-once merge log, guarded by loggedMerge
			s.logf("serve: round %d forced %d serial-component merge(s): cross-band traffic is eroding the disjoint fast path (ForcedMerges counts every one)", r, merges)
		}
	}
	// Span emission (see the package doc's "Span tracing" section): every
	// stage of this round lands on the recorder's virtual clock at `base`,
	// in a fixed order — schedule, partition, then per active shard (in
	// shard order) the tenant's wait marker, quorum and commit legs and
	// the shard's route view, and finally the merge at the makespan point.
	base := s.spans.Now()
	s.spans.Push(span.Event{Round: r, Start: base, Stage: span.StageSchedule,
		A: int64(scheduled), B: int64(s.k)})
	s.spans.Push(span.Event{Round: r, Start: base, Stage: span.StagePartition,
		A: int64(s.pool.LastComponents()), B: int64(merges), C: int64(s.pool.LastActive())})
	var makespan, work, critRead int64
	for sh := range s.execTenant {
		id := s.execTenant[sh]
		if id < 0 {
			continue
		}
		rep := &reports[sh]
		t := s.tenants[id]
		t.note(rep)
		t.hStep.Observe(rep.Time)
		s.hDedup.Observe(int64(s.pool.LastDedupRequests(sh)))
		// The read leg is the quorum (retrieval) stage, the remainder of
		// the step the commit (update) stage: the two tile rep.Time.
		readTime, readPhases, liveArea := s.pool.LastStepBreakdown(sh)
		t.stageQuorum += readTime
		t.stageCommit += rep.Time - readTime
		s.spans.Push(span.Event{Round: r, Start: base, Stage: span.StageWait,
			Track: id, A: s.waitScratch[sh]})
		s.spans.Push(span.Event{Round: r, Start: base, Dur: readTime,
			Stage: span.StageQuorum, Track: id, A: int64(readPhases), B: liveArea})
		s.spans.Push(span.Event{Round: r, Start: base + readTime, Dur: rep.Time - readTime,
			Stage: span.StageCommit, Track: id, A: int64(rep.Phases - readPhases)})
		// The shard's interconnect view of the same step: routed cycles as
		// the duration (0 on the unit-cost bipartite fabric), with the
		// mesh's cycle/hop counter deltas as attributes. Each shard runs at
		// most one tenant step per round, so the delta is this step's.
		var dc, dh int64
		if nw := s.nets[sh]; nw != nil {
			st := nw.Stats()
			d := st.Sub(s.netPrev[sh])
			dc, dh = d.Cycles, d.Hops
			s.netPrev[sh] = st
		}
		s.spans.Push(span.Event{Round: r, Start: base, Dur: rep.NetworkCycles,
			Stage: span.StageRoute, Track: int32(sh), A: dc, B: dh, C: int64(rep.ModuleContention)})
		work += rep.Time
		if rep.Time > makespan {
			makespan = rep.Time
			critRead = readTime
		}
	}
	s.critQuorum += critRead
	s.critCommit += makespan - critRead
	s.hRoundActive.Observe(int64(s.pool.LastActive()))
	s.hRoundMakespan.Observe(makespan)
	s.hRoundWork.Observe(work)
	s.flight.push(FlightEvent{Round: r, Kind: FlightRound, K: int32(s.k),
		A: int64(scheduled), B: int64(merges), C: int64(s.pool.LastActive())})
	s.spans.Push(span.Event{Round: r, Start: base + makespan, Stage: span.StageMerge,
		A: int64(s.pool.LastActive()), B: makespan, C: work})
	s.spans.Advance(makespan)
	return scheduled
}

// note folds one executed step into the tenant's accounting, including the
// order-sensitive report hash the determinism tests compare.
func (t *tenant) note(rep *model.StepReport) {
	t.steps++
	t.simTime += rep.Time
	t.phases += int64(rep.Phases)
	t.copies += rep.CopyAccesses
	t.cycles += rep.NetworkCycles
	if rep.ModuleContention > t.maxCont {
		t.maxCont = rep.ModuleContention
	}
	if rep.Err != nil {
		t.errSteps++
	}
	h := t.hash
	if h == 0 {
		h = fnvOffset
	}
	h = fnvFold(h, uint64(rep.Time))
	h = fnvFold(h, uint64(rep.Phases))
	h = fnvFold(h, uint64(rep.CopyAccesses))
	h = fnvFold(h, uint64(rep.NetworkCycles))
	h = fnvFold(h, uint64(rep.ModuleContention))
	n := t.cfg.Procs
	if n > len(rep.Values) {
		n = len(rep.Values)
	}
	for _, v := range rep.Values[:n] {
		h = fnvFold(h, uint64(v))
	}
	t.hash = h
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvFold hashes one 64-bit word into an FNV-1a accumulator bytewise.
func fnvFold(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}

// Run executes exactly `rounds` serving rounds (idle rounds included).
func (s *Server) Run(rounds int) {
	for i := 0; i < rounds; i++ {
		s.Round()
	}
}

// StopAdmission stops admission — open-loop arrivals are no longer
// accepted, closed-loop windows stop replenishing, Submit rejects — without
// executing any rounds. The replay path uses it to reproduce a recorded
// drain transition at its recorded round; interactive callers usually want
// Drain, which also runs the queues dry. The false→true transition is a
// flight event, recorded once.
func (s *Server) StopAdmission() {
	if !s.draining {
		s.draining = true
		s.flight.push(FlightEvent{Round: s.round, Kind: FlightDrain})
	}
}

// Drain stops admission — open-loop arrivals are no longer accepted,
// closed-loop windows stop replenishing — and keeps executing rounds until
// every queued credit is consumed or its source exhausted. The graceful-
// shutdown half of a serving deployment: every admitted credit either
// executes or is counted (Unserved) when its source ends first.
func (s *Server) Drain() {
	s.StopAdmission()
	for {
		live := false
		for _, t := range s.tenants {
			if !t.done && t.credits > 0 {
				live = true
				break
			}
		}
		if !live {
			return
		}
		s.Round()
	}
}

// ServeAll runs rounds until every tenant's source is exhausted and every
// queue drained, erroring out after maxRounds — the run-a-finite-mix-to-
// completion entry point the determinism tests use.
func (s *Server) ServeAll(maxRounds int) error {
	for i := 0; i < maxRounds; i++ {
		s.Round()
		alldone := true
		for _, t := range s.tenants {
			if !t.done {
				alldone = false
				break
			}
		}
		if alldone {
			s.Drain()
			return nil
		}
	}
	return fmt.Errorf("serve: mix not finished after %d rounds", maxRounds)
}

// PlayScript replays a recorded arrival script in virtual time: for every
// virtual round it applies the events recorded before that round — in
// recorded order: submissions, resizes, the admission stop — then executes
// the round, for exactly `rounds` rounds (the script footer's count, which
// includes the live run's drain rounds). Combined with identical tenant
// specs and seed this reproduces the live run bit-for-bit; re-record the
// replay through StartTrace and even the trace bytes come out identical.
func (s *Server) PlayScript(events []replay.ScriptEvent, rounds int64) {
	s.PlayScriptObserved(events, rounds, nil)
}

// PlayScriptObserved is PlayScript with a per-round observer hook: observe
// (when non-nil) runs after every executed round until the script's drain
// event has been applied — exactly when the live HTTP loop consults its
// autoscaler (HTTPServer.Tick observes after every Round; the drain rounds
// inside Shutdown are not observed). Replaying with a shadow autoscaler
// built from the recorded policy therefore reproduces the live decision
// stream — including the flight recorder's "why" records — while the
// script's own resize events become no-ops (Resize at the already-current
// K returns immediately).
func (s *Server) PlayScriptObserved(events []replay.ScriptEvent, rounds int64, observe func()) {
	i := 0
	for r := int64(0); r < rounds; r++ {
		for i < len(events) && events[i].Round <= r {
			s.applyEvent(events[i])
			i++
		}
		s.Round()
		if observe != nil && !s.draining {
			observe()
		}
	}
	for i < len(events) {
		s.applyEvent(events[i])
		i++
	}
}

// applyEvent applies one recorded external event.
func (s *Server) applyEvent(ev replay.ScriptEvent) {
	switch {
	case ev.IsResize():
		s.Resize(ev.K)
	case ev.IsDrain():
		s.StopAdmission()
	default:
		s.Submit(ev.Tenant, ev.Credits)
	}
}

// Close drains the server and retires the pool's executor goroutines.
func (s *Server) Close() {
	s.Drain()
	s.pool.Close()
}

// TenantStats is one tenant's serving account.
type TenantStats struct {
	Name      string
	Band      int
	Shard     int
	Procs     int
	Done      bool
	Submitted int64 // step credits offered by the arrival process
	Rejected  int64 // credits refused by the bounded queue
	Unserved  int64 // credits admitted but voided by source exhaustion
	Steps     int64 // steps executed
	Queue      int   // current queue depth (credits)
	MaxQueue   int   // high-water queue depth
	SimTime    int64 // summed simulated step time
	QuorumTime int64 // retrieval-leg share of SimTime (QuorumTime+CommitTime == SimTime)
	CommitTime int64 // update-leg share of SimTime
	Phases     int64
	Copies    int64
	Cycles    int64
	MaxCont   int
	ErrSteps  int64  // steps whose report carried a conflict-discipline error
	Hash      uint64 // FNV-1a over the tenant's StepReport stream
	SrcErr    error
}

// NumTenants returns the mix size.
func (s *Server) NumTenants() int { return len(s.tenants) }

// Flight exposes the server's flight recorder (diagnostics and tests).
func (s *Server) Flight() *FlightRecorder { return s.flight }

// WriteFlight dumps the flight recorder as deterministic JSON with tenant
// ids resolved to names. Call between rounds (or after drain); dumping
// allocates and is not part of the hot path.
func (s *Server) WriteFlight(w io.Writer) error {
	return s.WriteFlightTail(w, 0)
}

// WriteFlightTail is WriteFlight bounded to the most recent limit events
// (limit <= 0 dumps everything retained); the dump's dropped count
// absorbs the truncation, so a cut dump never pretends to be complete.
func (s *Server) WriteFlightTail(w io.Writer, limit int) error {
	return s.flight.WriteJSONTail(w, func(id int) string { return s.tenants[id].cfg.Name }, limit)
}

// Spans exposes the server's span recorder (diagnostics and tests).
func (s *Server) Spans() *span.Recorder { return s.spans }

// WriteSpans dumps the span recorder as a deterministic Chrome/Perfetto
// trace-event JSON document with tenant tracks resolved to names. Call
// between rounds (or after drain); dumping allocates and is not part of
// the hot path.
func (s *Server) WriteSpans(w io.Writer) error {
	return s.WriteSpansTail(w, 0)
}

// WriteSpansTail is WriteSpans bounded to the most recent limit spans
// (limit <= 0 dumps everything retained), with counted truncation.
func (s *Server) WriteSpansTail(w io.Writer, limit int) error {
	return s.spans.WriteTrace(w, len(s.tenants),
		func(id int) string { return s.tenants[id].cfg.Name }, limit)
}

// TenantStats returns tenant i's account.
func (s *Server) TenantStats(i int) TenantStats {
	t := s.tenants[i]
	return TenantStats{
		Name: t.cfg.Name, Band: t.cfg.Band, Shard: t.shard, Procs: t.cfg.Procs,
		Done: t.done, Submitted: t.submitted, Rejected: t.rejected,
		Unserved: t.unserved, Steps: t.steps,
		Queue: t.credits, MaxQueue: t.maxQueue, SimTime: t.simTime,
		QuorumTime: t.stageQuorum, CommitTime: t.stageCommit, Phases: t.phases,
		Copies: t.copies, Cycles: t.cycles, MaxCont: t.maxCont, ErrSteps: t.errSteps,
		Hash: t.hash, SrcErr: t.srcErr,
	}
}

// Stats is the server-wide serving account.
type Stats struct {
	Rounds       int64 // virtual rounds elapsed (admission clock)
	ExecRounds   int64 // rounds that executed at least one step
	IdleRounds   int64 // rounds with nothing to schedule
	MergedRounds int64 // executed rounds with ≥ 1 forced serial merge
	ForcedMerges int64 // total forced serial-component merges
	BandOverlaps int64 // tenants admitted onto an already-owned band
	Resizes      int64 // online K transitions performed

	// Critical-path makespan attribution: each executed round's makespan
	// (its critical shard's step time) split into the quorum and commit
	// legs and summed. CritQuorumTime+CritCommitTime is the run's total
	// makespan — the simulated time the serving lane actually took —
	// where the per-tenant stage times sum WORK. Which shard is critical
	// depends on the round schedule, so the split is K-variant but
	// worker- and replay-invariant.
	CritQuorumTime int64
	CritCommitTime int64
}

// Stats returns the server-wide account.
func (s *Server) Stats() Stats {
	return Stats{
		Rounds: s.round, ExecRounds: s.execRounds, IdleRounds: s.idleRounds,
		MergedRounds: s.mergedRounds, ForcedMerges: s.forcedMerges,
		BandOverlaps: s.bandOverlaps, Resizes: s.resizes,
		CritQuorumTime: s.critQuorum, CritCommitTime: s.critCommit,
	}
}
