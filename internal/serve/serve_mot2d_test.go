package serve

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/replay"
)

// mot2dMixConfig builds a fresh 2-tenant n=1024 finite mix on per-shard
// 2DMOT meshes: the production-size point of the acceptance criterion
// (nTotal = 2048, δ = 1.5 → side 16384, the dense-edge ceiling's last
// feasible power of two).
func mot2dMixConfig(engines, workers int) Config {
	return Config{
		Tenants: []TenantConfig{
			{Name: "uniform", Band: 0, Procs: 1024, Arrival: Arrival{Window: 1},
				Source: NewPatternSource(replay.Uniform, 1024, 3, 201)},
			{Name: "hotspot", Band: 1, Procs: 1024, Arrival: Arrival{Window: 1},
				Source: NewPatternSource(replay.Hotspot, 1024, 3, 202)},
		},
		Bands:        2,
		Engines:      engines,
		Workers:      workers,
		Seed:         13,
		Interconnect: MOT2D,
	}
}

// TestServeDeterministicMOT2D is the serving acceptance differential at
// production size on per-shard meshes: the same seed and arrival script
// must produce identical per-tenant StepReport streams (hashes), step
// counts and final store fingerprints across every engine count
// K ∈ {1,2,4,8} and worker count — mesh-backed serving parallelism trades
// wall clock only, exactly like the bipartite lane.
func TestServeDeterministicMOT2D(t *testing.T) {
	refStats, refFP := runMix(t, mot2dMixConfig(1, 1))
	for _, st := range refStats {
		if st.Steps != 3 {
			t.Fatalf("tenant %s executed %d steps, want 3", st.Name, st.Steps)
		}
		if st.Cycles == 0 {
			t.Fatalf("tenant %s reports no network cycles: mesh routing did not run", st.Name)
		}
	}
	for _, K := range []int{1, 2, 4, 8} {
		for _, workers := range []int{1, 0} {
			t.Run(fmt.Sprintf("K=%d/workers=%d", K, workers), func(t *testing.T) {
				s, err := NewServer(mot2dMixConfig(K, workers))
				if err != nil {
					t.Fatal(err)
				}
				if s.Interconnect() != MOT2D || s.Side() != 16384 {
					t.Fatalf("deployment shape: interconnect=%v side=%d, want mot2d/16384",
						s.Interconnect(), s.Side())
				}
				s.Close()
				stats, fp := runMix(t, mot2dMixConfig(K, workers))
				if fp != refFP {
					t.Errorf("fingerprint %x, want %x", fp, refFP)
				}
				for i, st := range stats {
					ref := refStats[i]
					if st.Steps != ref.Steps || st.Hash != ref.Hash ||
						st.SimTime != ref.SimTime || st.Cycles != ref.Cycles {
						t.Errorf("tenant %s diverged: got {steps=%d hash=%x t=%d cyc=%d}, want {steps=%d hash=%x t=%d cyc=%d}",
							st.Name, st.Steps, st.Hash, st.SimTime, st.Cycles,
							ref.Steps, ref.Hash, ref.SimTime, ref.Cycles)
					}
				}
			})
		}
	}
}

// TestServeMOT2DRoundZeroAllocs extends the serving lane's steady-state
// zero-allocation invariant to mesh-backed shards: the SoA router's arenas
// compose with the pool and the admission path without per-round heap
// traffic.
func TestServeMOT2DRoundZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation invariants are measured without the race detector")
	}
	s, err := NewServer(Config{
		Tenants: []TenantConfig{
			{Name: "a", Band: 0, Procs: 32, Arrival: Arrival{Window: 2},
				Source: NewPatternSource(replay.Uniform, 32, 0, 1)},
			{Name: "b", Band: 1, Procs: 32, Arrival: Arrival{Window: 2},
				Source: NewPatternSource(replay.Hotspot, 32, 0, 2)},
		},
		Bands:        2,
		Engines:      2,
		Seed:         7,
		Interconnect: MOT2D,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ { // grow every arena
		s.Round()
	}
	if avg := testing.AllocsPerRun(50, func() {
		if s.Round() != 2 {
			t.Fatal("closed-loop round did not schedule every shard")
		}
	}); avg != 0 {
		t.Errorf("mesh-backed Round allocates %.2f/op in steady state, want 0", avg)
	}
}

// recordTrace captures a short single-lane trace on the given machine kind
// and returns its bytes.
func recordTrace(t *testing.T, kind replay.MachineKind, procs int) []byte {
	t.Helper()
	rcfg := replay.Config{Kind: kind, Lanes: 1, Procs: procs, Mode: model.CRCWPriority}
	built, err := rcfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec, err := replay.NewRecorder(&buf, built)
	if err != nil {
		t.Fatal(err)
	}
	gen := replay.NewGenerator(replay.Uniform, 1, procs, built.Params.Mem, 5)
	for s := 0; s < 4; s++ {
		if rep := built.Machine.ExecuteStep(gen.Step(s)[0]); rep.Err != nil {
			t.Fatal(rep.Err)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServeTraceKindValidation locks the header check: a trace replayed
// into a pool whose interconnect differs from the recorded machine kind is
// refused at admission, allowed only by the explicit override, and passes
// cleanly when the kinds agree.
func TestServeTraceKindValidation(t *testing.T) {
	dmmpc := recordTrace(t, replay.KindDMMPC, 8)
	mot2d := recordTrace(t, replay.KindMOT2D, 8)
	// Procs 64 over one band keeps the Theorem 3 point feasible (side 256,
	// well above the redundancy) while the 8-proc traces ride in the lower
	// processors.
	mk := func(ic Interconnect, trace []byte, allow bool) Config {
		return Config{
			Tenants: []TenantConfig{{
				Name: "trace", Band: 0, Procs: 64, Arrival: Arrival{Window: 1},
				Source: NewTraceSource(trace, 0, false),
			}},
			Bands:                  1,
			Engines:                1,
			Seed:                   11,
			Interconnect:           ic,
			AllowTraceKindMismatch: allow,
		}
	}
	// Mismatches in both directions are refused with the kinds named.
	if _, err := NewServer(mk(MOT2D, dmmpc, false)); err == nil {
		t.Error("dmmpc trace admitted onto mot2d interconnects")
	} else if !strings.Contains(err.Error(), "dmmpc") || !strings.Contains(err.Error(), "mot2d") {
		t.Errorf("mismatch error %q does not name both kinds", err)
	}
	if _, err := NewServer(mk(Bipartite, mot2d, false)); err == nil {
		t.Error("mot2d trace admitted onto bipartite interconnects")
	}
	// The override admits, and the mix still serves to completion.
	s, err := NewServer(mk(MOT2D, dmmpc, true))
	if err != nil {
		t.Fatalf("override rejected: %v", err)
	}
	if err := s.ServeAll(200); err != nil {
		t.Fatal(err)
	}
	if st := s.TenantStats(0); st.Steps != 4 || st.SrcErr != nil {
		t.Errorf("overridden trace tenant: steps=%d err=%v, want 4/nil", st.Steps, st.SrcErr)
	}
	s.Close()
	// Matching kinds pass without the override.
	for _, c := range []struct {
		ic    Interconnect
		trace []byte
	}{{Bipartite, dmmpc}, {MOT2D, mot2d}} {
		s, err := NewServer(mk(c.ic, c.trace, false))
		if err != nil {
			t.Fatalf("%v trace refused on %v interconnects: %v", c.ic, c.ic, err)
		}
		s.Close()
	}
}

// TestParseInterconnect covers the CLI spellings.
func TestParseInterconnect(t *testing.T) {
	for in, want := range map[string]Interconnect{
		"": Bipartite, "bipartite": Bipartite, "dmmpc": Bipartite, "complete": Bipartite,
		"mot2d": MOT2D, "mot": MOT2D, "mesh": MOT2D,
	} {
		got, err := ParseInterconnect(in)
		if err != nil || got != want {
			t.Errorf("ParseInterconnect(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseInterconnect("torus"); err == nil {
		t.Error("unknown interconnect accepted")
	}
}

// TestServeMOT2DInfeasibleSideErrors checks a mix too large for the
// dense-edge ceiling surfaces as a construction error, not a panic.
func TestServeMOT2DInfeasibleSideErrors(t *testing.T) {
	cfg := mot2dMixConfig(1, 1)
	cfg.Gran = 3 // side = ceilPow2(2048^2) = 2^22 ≫ mot.MaxSide
	if _, err := NewServer(cfg); err == nil {
		t.Error("ceiling-breaching mesh accepted")
	} else if !strings.Contains(err.Error(), "infeasible") {
		t.Errorf("unexpected error shape: %v", err)
	}
}
