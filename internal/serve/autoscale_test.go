package serve

import (
	"strings"
	"testing"

	"repro/internal/prom"
	"repro/internal/replay"
)

// checkIdentity asserts the admission identity for every tenant:
// submitted == steps + queue + rejected + unserved.
func checkIdentity(t *testing.T, s *Server, when string) {
	t.Helper()
	for i := 0; i < s.NumTenants(); i++ {
		st := s.TenantStats(i)
		if got := st.Steps + int64(st.Queue) + st.Rejected + st.Unserved; got != st.Submitted {
			t.Errorf("%s: tenant %s accounting leak: steps %d + queue %d + rejected %d + unserved %d = %d != submitted %d",
				when, st.Name, st.Steps, st.Queue, st.Rejected, st.Unserved, got, st.Submitted)
		}
	}
}

// overloadConfig is a 4-tenant open-loop overload: every tenant receives 3
// credits per round against tight queues, far more than one engine drains.
func overloadConfig(engines int) Config {
	mk := func(name string, band int, seed int64) TenantConfig {
		return TenantConfig{
			Name: name, Band: band, Procs: 8, QueueCap: 4,
			Arrival: Arrival{Period: 1, Burst: 3},
			Source:  NewPatternSource(replay.Uniform, 8, 0, seed),
		}
	}
	return Config{
		Tenants: []TenantConfig{
			mk("t0", 0, 11), mk("t1", 1, 12), mk("t2", 2, 13), mk("t3", 3, 14),
		},
		Bands:   4,
		Engines: engines,
		Seed:    7,
	}
}

// TestAutoscalerGrowsUnderPressure: an overloaded K=1 deployment must grow
// toward Max, the occupancy must actually rise, and the admission identity
// must hold through every transition.
func TestAutoscalerGrowsUnderPressure(t *testing.T) {
	s, err := NewServer(overloadConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a := NewAutoscaler(s, AutoscaleConfig{Interval: 4})
	if s.Engines() != 1 {
		t.Fatalf("start K = %d", s.Engines())
	}
	activeBefore := -1
	for i := 0; i < 60; i++ {
		s.Round()
		if activeBefore < 0 {
			activeBefore = s.Pool().LastActive()
		}
		if nk := a.Observe(); nk != 0 {
			checkIdentity(t, s, "mid-resize")
		}
	}
	if s.Engines() != 4 {
		t.Errorf("overloaded server grew to K=%d, want the band count 4", s.Engines())
	}
	if a.Grows() == 0 || s.Resizes() == 0 {
		t.Errorf("grows=%d resizes=%d, want > 0", a.Grows(), s.Resizes())
	}
	if activeAfter := s.Pool().LastActive(); activeAfter <= activeBefore {
		t.Errorf("occupancy did not rise under growth: %d -> %d", activeBefore, activeAfter)
	}
	checkIdentity(t, s, "after growth")
	s.Drain()
	checkIdentity(t, s, "after drain")
}

// TestAutoscalerShrinksWhenUnderused: one light tenant on a 4-band map at
// K=4 leaves three shards permanently empty; the autoscaler must step K
// down to Min.
func TestAutoscalerShrinksWhenUnderused(t *testing.T) {
	s, err := NewServer(Config{
		Tenants: []TenantConfig{{
			Name: "lone", Band: 0, Procs: 8, QueueCap: 16,
			Arrival: Arrival{Window: 1},
			Source:  NewPatternSource(replay.Uniform, 8, 0, 5),
		}},
		Bands:   4,
		Engines: 4,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a := NewAutoscaler(s, AutoscaleConfig{Interval: 4})
	for i := 0; i < 60; i++ {
		s.Round()
		a.Observe()
	}
	if s.Engines() != 1 {
		t.Errorf("underused server shrank to K=%d, want 1", s.Engines())
	}
	if a.Shrinks() == 0 {
		t.Error("no shrink decisions recorded")
	}
	checkIdentity(t, s, "after shrink")
}

// TestAutoscalerMergeBlocksGrowth: a cross-band mix that forces serial
// merges every round must NOT be grown, no matter the queue pressure —
// more engines cannot parallelize a single component.
func TestAutoscalerMergeBlocksGrowth(t *testing.T) {
	mk := func(name string, band int, seed int64) TenantConfig {
		return TenantConfig{
			Name: name, Band: band, Procs: 8, QueueCap: 2,
			Arrival: Arrival{Period: 1, Burst: 3},
			// Global traffic: every step spans all bands, merging the shards.
			Source: NewGlobalPatternSource(replay.Uniform, 8, 0, seed),
		}
	}
	s, err := NewServer(Config{
		Tenants: []TenantConfig{mk("g0", 0, 21), mk("g1", 1, 22), mk("g2", 2, 23), mk("g3", 3, 24)},
		Bands:   4,
		Engines: 2,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a := NewAutoscaler(s, AutoscaleConfig{Interval: 4})
	for i := 0; i < 40; i++ {
		s.Round()
		a.Observe()
	}
	if st := s.Stats(); st.ForcedMerges == 0 {
		t.Fatal("global mix forced no merges; the block condition was never exercised")
	}
	if s.Engines() != 2 || a.Grows() != 0 {
		t.Errorf("merge-bound mix grew: K=%d grows=%d, want K=2 grows=0", s.Engines(), a.Grows())
	}
}

// TestAutoscalerBoundsAndMetrics pins config normalization (Max clamps to
// the band count) and the decision counters' exposition.
func TestAutoscalerBoundsAndMetrics(t *testing.T) {
	s, err := NewServer(overloadConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a := NewAutoscaler(s, AutoscaleConfig{Max: 64, Interval: 2})
	if a.cfg.Max != 4 {
		t.Errorf("Max = %d, want clamped to 4 bands", a.cfg.Max)
	}
	for i := 0; i < 30; i++ {
		s.Round()
		a.Observe()
	}
	if s.Engines() > 4 {
		t.Errorf("K=%d grew past the band count", s.Engines())
	}
	var reg prom.Registry
	a.Metrics(&reg)
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"pramsim_serve_autoscale_grows_total",
		"pramsim_serve_autoscale_k_max 4",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("autoscale exposition missing %q:\n%s", want, sb.String())
		}
	}
}

// TestAutoscalerDeterministic: the same mix and round count produce the
// same resize schedule, twice.
func TestAutoscalerDeterministic(t *testing.T) {
	run := func() (ks []int, fp uint64) {
		s, err := NewServer(overloadConfig(1))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		a := NewAutoscaler(s, AutoscaleConfig{Interval: 4})
		for i := 0; i < 50; i++ {
			s.Round()
			if nk := a.Observe(); nk != 0 {
				ks = append(ks, nk)
			}
		}
		s.Drain()
		return ks, s.Fingerprint()
	}
	k1, fp1 := run()
	k2, fp2 := run()
	if len(k1) == 0 {
		t.Fatal("no resizes to compare")
	}
	if fp1 != fp2 {
		t.Errorf("fingerprints diverged: %x vs %x", fp1, fp2)
	}
	for i := range k1 {
		if i >= len(k2) || k1[i] != k2[i] {
			t.Fatalf("resize schedules diverged: %v vs %v", k1, k2)
		}
	}
}
