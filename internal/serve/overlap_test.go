package serve

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/replay"
)

// TestServeBandOverlapCounted is the silent-degradation regression test:
// admitting a second tenant onto an owned band must bump BandOverlaps and
// fire the log hook — the pair then serializes behind one shard queue, and
// that must never happen quietly.
func TestServeBandOverlapCounted(t *testing.T) {
	var logged []string
	s, err := NewServer(Config{
		Tenants: []TenantConfig{
			{Name: "owner", Band: 0, Procs: 8, Arrival: Arrival{Window: 1},
				Source: NewPatternSource(replay.Uniform, 8, 10, 1)},
			{Name: "squatter", Band: 0, Procs: 8, Arrival: Arrival{Window: 1},
				Source: NewPatternSource(replay.Uniform, 8, 10, 2)},
		},
		Bands:   2,
		Engines: 2,
		Seed:    5,
		Logf:    func(f string, a ...any) { logged = append(logged, fmt.Sprintf(f, a...)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Stats().BandOverlaps; got != 1 {
		t.Errorf("BandOverlaps = %d at admission, want 1", got)
	}
	found := false
	for _, l := range logged {
		if strings.Contains(l, "overlaps band 0") && strings.Contains(l, "squatter") {
			found = true
		}
	}
	if !found {
		t.Errorf("no overlap warning logged; got %q", logged)
	}
	// The overlapping pair still completes — serialized, not starved.
	if err := s.ServeAll(500); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if st := s.TenantStats(i); st.Steps != 10 {
			t.Errorf("tenant %s executed %d steps, want 10", st.Name, st.Steps)
		}
	}
	// Co-location on one shard means the pair never co-schedules, so no
	// forced merges — the degradation is queueing delay, visibly counted.
	if st := s.Stats(); st.ForcedMerges != 0 {
		t.Errorf("co-located overlap forced %d merges, want 0", st.ForcedMerges)
	}
}

// TestServeForcedMergesCounted is the other half of the regression: a
// tenant whose traffic crosses bands collides with co-scheduled tenants in
// the pool's module partition, and every forced serial-component merge
// must be counted (and warned about once) instead of silently serializing.
func TestServeForcedMergesCounted(t *testing.T) {
	var logged []string
	s, err := NewServer(Config{
		Tenants: []TenantConfig{
			{Name: "local", Band: 0, Procs: 8, Arrival: Arrival{Window: 1},
				Source: NewPatternSource(replay.Uniform, 8, 20, 1)},
			{Name: "global", Band: 1, Procs: 8, Arrival: Arrival{Window: 1},
				Source: NewGlobalPatternSource(replay.Uniform, 8, 20, 2)},
		},
		Bands:   2,
		Engines: 2,
		Seed:    5,
		Logf:    func(f string, a ...any) { logged = append(logged, fmt.Sprintf(f, a...)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ServeAll(500); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.ForcedMerges == 0 || st.MergedRounds == 0 {
		t.Fatalf("cross-band traffic not counted: %+v", st)
	}
	merged := 0
	for _, l := range logged {
		if strings.Contains(l, "serial-component merge") {
			merged++
		}
	}
	if merged != 1 {
		t.Errorf("merge warning logged %d times, want exactly once; got %q", merged, logged)
	}
	if st.BandOverlaps != 0 {
		t.Errorf("distinct bands flagged as overlapping: %+v", st)
	}
}
