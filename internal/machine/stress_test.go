package machine

import (
	"testing"

	"repro/internal/ideal"
	"repro/internal/model"
)

// TestThousandProcessors checks the goroutine harness at P-RAM scale:
// 1024 processors through a multi-round program with mixed halts.
func TestThousandProcessors(t *testing.T) {
	const n = 1024
	back := ideal.New(n, 2*n, model.CREW)
	m := New(back)
	rep := m.RunEach(func(id int) Program {
		return func(p *Proc) {
			// Processors do id%7+1 rounds of read-modify-write on their
			// own cell, halting at different times.
			for k := 0; k <= id%7; k++ {
				v := p.Read(id)
				p.Write(id, v+1)
			}
		}
	})
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := model.Word(i%7 + 1)
		if got := back.ReadCell(i); got != want {
			t.Fatalf("cell %d = %d, want %d", i, got, want)
		}
	}
	// Steps = 2 × max rounds (7): stragglers define the step count.
	if rep.Steps != 14 {
		t.Errorf("steps = %d, want 14", rep.Steps)
	}
}

// TestInterleavedSyncPatterns drives processors whose step sequences are
// composed of different primitives each round — the scheduler must stay in
// lockstep regardless.
func TestInterleavedSyncPatterns(t *testing.T) {
	const n = 60
	back := ideal.New(n, n+1, model.CRCWPriority)
	m := New(back)
	rep := m.RunEach(func(id int) Program {
		return func(p *Proc) {
			for round := 0; round < 9; round++ {
				switch (id + round) % 3 {
				case 0:
					p.Read((id + round) % n)
				case 1:
					p.Write(n, model.Word(id))
				default:
					p.Sync()
				}
			}
		}
	})
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 9 {
		t.Errorf("steps = %d, want 9", rep.Steps)
	}
}

// TestRepeatedRuns confirms a machine cannot be reused mid-flight but a
// fresh machine over the same backend continues from committed state.
func TestRepeatedRunsAccumulateState(t *testing.T) {
	back := ideal.New(4, 8, model.CREW)
	for round := 1; round <= 3; round++ {
		m := New(back)
		rep := m.Run(func(p *Proc) {
			v := p.Read(p.ID())
			p.Write(p.ID(), v+1)
		})
		if err := rep.Err(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if got := back.ReadCell(i); got != 3 {
			t.Errorf("cell %d = %d, want 3 after three runs", i, got)
		}
	}
}

// TestAllHaltImmediately is the degenerate program.
func TestAllHaltImmediately(t *testing.T) {
	back := ideal.New(16, 16, model.EREW)
	rep := New(back).Run(func(p *Proc) {})
	if rep.Steps != 0 || rep.SimTime != 0 {
		t.Errorf("empty program cost %d steps / %d time", rep.Steps, rep.SimTime)
	}
}
