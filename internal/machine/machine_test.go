package machine

import (
	"strings"
	"testing"

	"repro/internal/ideal"
	"repro/internal/model"
)

// TestParallelSum runs the canonical O(log n) EREW tree reduction: cell i
// holds i+1; after the program, cell 0 holds n(n+1)/2.
func TestParallelSum(t *testing.T) {
	const n = 16
	back := ideal.New(n, n, model.EREW)
	vals := make([]model.Word, n)
	for i := range vals {
		vals[i] = model.Word(i + 1)
	}
	back.LoadCells(0, vals)
	m := New(back)
	rep := m.Run(func(p *Proc) {
		for stride := 1; stride < p.N(); stride *= 2 {
			if p.ID()%(2*stride) == 0 && p.ID()+stride < p.N() {
				a := p.Read(p.ID())
				b := p.Read(p.ID() + stride)
				p.Write(p.ID(), a+b)
			} else {
				// Keep lockstep with the active processors (3 steps).
				p.Sync()
				p.Sync()
				p.Sync()
			}
		}
	})
	if err := rep.Err(); err != nil {
		t.Fatalf("run error: %v", err)
	}
	if got := back.ReadCell(0); got != n*(n+1)/2 {
		t.Errorf("sum = %d, want %d", got, n*(n+1)/2)
	}
	wantSteps := int64(3 * 4) // log2(16) rounds of 3 steps
	if rep.Steps != wantSteps {
		t.Errorf("steps = %d, want %d", rep.Steps, wantSteps)
	}
	if rep.SimTime != wantSteps {
		t.Errorf("ideal sim time = %d, want %d", rep.SimTime, wantSteps)
	}
}

func TestRunEachPerProcessorPrograms(t *testing.T) {
	const n = 8
	back := ideal.New(n, n, model.EREW)
	m := New(back)
	rep := m.RunEach(func(id int) Program {
		return func(p *Proc) {
			p.Write(id, model.Word(id*id))
		}
	})
	if err := rep.Err(); err != nil {
		t.Fatalf("run error: %v", err)
	}
	for i := 0; i < n; i++ {
		if got := back.ReadCell(i); got != model.Word(i*i) {
			t.Errorf("cell %d = %d, want %d", i, got, i*i)
		}
	}
	if rep.Steps != 1 {
		t.Errorf("steps = %d, want 1", rep.Steps)
	}
}

// TestEarlyHalt checks that processors may halt at different times without
// deadlocking the rest.
func TestEarlyHalt(t *testing.T) {
	const n = 6
	back := ideal.New(n, n, model.EREW)
	m := New(back)
	rep := m.RunEach(func(id int) Program {
		return func(p *Proc) {
			for k := 0; k <= id; k++ {
				p.Write(id, model.Word(k))
			}
		}
	})
	if err := rep.Err(); err != nil {
		t.Fatalf("run error: %v", err)
	}
	for i := 0; i < n; i++ {
		if got := back.ReadCell(i); got != model.Word(i) {
			t.Errorf("cell %d = %d, want %d", i, got, i)
		}
	}
	if rep.Steps != n { // processor n-1 runs n steps; earlier steps overlap
		t.Errorf("steps = %d, want %d", rep.Steps, n)
	}
}

func TestPanicIsolatedAndReported(t *testing.T) {
	const n = 4
	back := ideal.New(n, n, model.CREW)
	m := New(back)
	rep := m.RunEach(func(id int) Program {
		return func(p *Proc) {
			if id == 2 {
				panic("boom")
			}
			p.Write(id, 1)
		}
	})
	if len(rep.Panics) != 1 {
		t.Fatalf("panics = %d, want 1", len(rep.Panics))
	}
	if !strings.Contains(rep.Panics[0].Error(), "processor 2") {
		t.Errorf("panic error = %v", rep.Panics[0])
	}
	if back.ReadCell(0) != 1 || back.ReadCell(1) != 1 || back.ReadCell(3) != 1 {
		t.Error("surviving processors did not complete")
	}
}

func TestViolationSurfacesInReport(t *testing.T) {
	const n = 2
	back := ideal.New(n, 4, model.EREW)
	m := New(back)
	rep := m.Run(func(p *Proc) {
		p.Read(0) // both processors read cell 0: EREW violation
	})
	if len(rep.Violations) != 1 {
		t.Fatalf("violations = %d, want 1", len(rep.Violations))
	}
	if rep.Err() == nil {
		t.Error("Err() should surface the violation")
	}
}

// TestBroadcastCREW exercises concurrent reads: all processors read cell 0
// and write it to their own cell.
func TestBroadcastCREW(t *testing.T) {
	const n = 32
	back := ideal.New(n, 2*n, model.CREW)
	back.LoadCells(0, []model.Word{77})
	m := New(back)
	rep := m.Run(func(p *Proc) {
		v := p.Read(0)
		p.Write(n+p.ID(), v)
	})
	if err := rep.Err(); err != nil {
		t.Fatalf("run error: %v", err)
	}
	for i := 0; i < n; i++ {
		if got := back.ReadCell(n + i); got != 77 {
			t.Errorf("cell %d = %d, want 77", n+i, got)
		}
	}
	if rep.Steps != 2 {
		t.Errorf("steps = %d, want 2", rep.Steps)
	}
}

func TestReadsSeePreStepState(t *testing.T) {
	// Processor 0 writes cell 1 while processor 1 reads cell 1 in the same
	// step: the read must see the old value on every backend.
	back := ideal.New(2, 4, model.CRCWPriority)
	back.LoadCells(1, []model.Word{5})
	m := New(back)
	var seen model.Word
	m.RunEach(func(id int) Program {
		if id == 0 {
			return func(p *Proc) { p.Write(1, 9) }
		}
		return func(p *Proc) { seen = p.Read(1) }
	})
	if seen != 5 {
		t.Errorf("same-step read saw %d, want pre-step 5", seen)
	}
	if back.ReadCell(1) != 9 {
		t.Errorf("write lost: cell = %d", back.ReadCell(1))
	}
}
