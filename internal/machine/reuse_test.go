package machine

import (
	"strings"
	"testing"

	"repro/internal/ideal"
	"repro/internal/model"
)

// TestMachineReusePanics: a Machine is single-use; a second Run must fail
// fast with a clear message instead of deadlocking on stale channels.
func TestMachineReusePanics(t *testing.T) {
	m := New(ideal.New(4, 16, model.CRCWPriority))
	rep := m.Run(func(p *Proc) {
		p.Write(p.ID(), model.Word(p.ID()))
	})
	if rep.Err() != nil {
		t.Fatalf("first run failed: %v", rep.Err())
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("second Run did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "consumed machine") {
			t.Fatalf("unhelpful panic message: %v", r)
		}
	}()
	m.Run(func(p *Proc) { p.Sync() })
}
