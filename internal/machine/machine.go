// Package machine executes P-RAM programs. Each of the n P-RAM processors
// runs as a goroutine; a coordinator gathers exactly one memory action per
// active processor per step, forwards the batch to a model.Backend (the
// ideal P-RAM or any of the simulating machines), and releases the
// processors in lockstep — goroutines as P-RAM processors, channels as the
// synchronous step barrier.
//
// The same Program therefore runs, unmodified, on every machine model in the
// repository, with the backend deciding only how much simulated time each
// step costs.
package machine

import (
	"fmt"

	"repro/internal/model"
)

// Program is the code of one P-RAM processor. It runs in its own goroutine
// and interacts with shared memory only through p. Returning halts the
// processor; remaining processors keep stepping.
type Program func(p *Proc)

// Proc is the interface a running processor has to the machine: its
// identity and the three P-RAM step primitives. Each call to Read, Write or
// Sync is one P-RAM step boundary; local computation between calls is free,
// exactly as in the model.
type Proc struct {
	id int
	n  int
	mc *Machine
}

// ID returns this processor's index in [0, n).
func (p *Proc) ID() int { return p.id }

// N returns the machine's processor count.
func (p *Proc) N() int { return p.n }

// Read performs a shared-memory read as this processor's action for the
// current step and returns the value (the cell's content at step start).
func (p *Proc) Read(a model.Addr) model.Word {
	return p.mc.submit(p.id, model.Request{Proc: p.id, Op: model.OpRead, Addr: a})
}

// Write performs a shared-memory write as this processor's action for the
// current step.
func (p *Proc) Write(a model.Addr, v model.Word) {
	p.mc.submit(p.id, model.Request{Proc: p.id, Op: model.OpWrite, Addr: a, Value: v})
}

// Sync spends one step doing only local computation (a P-RAM no-op step),
// keeping this processor in lockstep with the others.
func (p *Proc) Sync() {
	p.mc.submit(p.id, model.Request{Proc: p.id, Op: model.OpNone})
}

// RunReport aggregates the cost of a complete program run.
type RunReport struct {
	Steps         int64 // P-RAM steps executed
	SimTime       int64 // total simulated time in the backend's unit
	Phases        int64 // total quorum phases (module machines)
	NetworkCycles int64 // total interconnect cycles (2DMOT)
	CopyAccesses  int64 // total variable-copy accesses
	MaxContention int   // worst per-module load seen in any step
	Violations    []error
	Panics        []error
}

// Err returns the first conflict violation or processor panic, or nil.
func (r *RunReport) Err() error {
	if len(r.Violations) > 0 {
		return r.Violations[0]
	}
	if len(r.Panics) > 0 {
		return r.Panics[0]
	}
	return nil
}

// Machine couples n processor goroutines to a backend. A Machine is
// single-use: one Run/RunEach consumes it (its channels carry the residue of
// the finished run), so a second Run panics instead of deadlocking.
type Machine struct {
	backend model.Backend
	n       int

	subCh    chan submission
	replyCh  []chan model.Word
	consumed bool
}

type submission struct {
	proc int
	req  model.Request
	halt bool
	err  error // non-nil when the processor goroutine panicked
}

// New returns a machine driving backend with backend.Procs() processors.
func New(backend model.Backend) *Machine {
	n := backend.Procs()
	m := &Machine{
		backend: backend,
		n:       n,
		subCh:   make(chan submission, n),
		replyCh: make([]chan model.Word, n),
	}
	for i := range m.replyCh {
		m.replyCh[i] = make(chan model.Word, 1)
	}
	return m
}

// Backend returns the machine's backend.
func (m *Machine) Backend() model.Backend { return m.backend }

// submit hands the coordinator this processor's action for the current step
// and blocks until the step has been executed on the backend (the lockstep
// barrier). For reads the returned word is the read result.
func (m *Machine) submit(proc int, req model.Request) model.Word {
	m.subCh <- submission{proc: proc, req: req}
	return <-m.replyCh[proc]
}

// Run executes program on all n processors and returns the aggregate cost
// report. It blocks until every processor has halted.
func (m *Machine) Run(program Program) *RunReport {
	return m.RunEach(func(int) Program { return program })
}

// RunEach executes a per-processor program selected by pick(id). It blocks
// until every processor has halted. Calling it (or Run) a second time on
// the same Machine panics: the step channels of a consumed machine are
// stale, and reusing them would deadlock the coordinator.
func (m *Machine) RunEach(pick func(id int) Program) *RunReport {
	if m.consumed {
		panic("machine.Machine: Run/RunEach called on a consumed machine; create a new Machine with machine.New for each run")
	}
	m.consumed = true
	for i := 0; i < m.n; i++ {
		go m.runProc(i, pick(i))
	}
	return m.coordinate()
}

// runProc hosts one processor goroutine, converting panics into a halt
// submission so a crashing processor cannot deadlock the machine.
func (m *Machine) runProc(id int, program Program) {
	defer func() {
		var perr error
		if r := recover(); r != nil {
			perr = fmt.Errorf("processor %d panicked: %v", id, r)
		}
		m.subCh <- submission{proc: id, halt: true, err: perr}
	}()
	program(&Proc{id: id, n: m.n, mc: m})
}

// coordinate is the step loop: gather one submission per active processor,
// execute the batch, release the barrier.
func (m *Machine) coordinate() *RunReport {
	rep := &RunReport{}
	active := make([]bool, m.n)
	for i := range active {
		active[i] = true
	}
	remaining := m.n
	pending := make([]submission, 0, m.n)
	for remaining > 0 {
		pending = pending[:0]
		need := remaining
		for len(pending) < need {
			s := <-m.subCh
			if s.halt {
				active[s.proc] = false
				remaining--
				need--
				if s.err != nil {
					rep.Panics = append(rep.Panics, s.err)
				}
				continue
			}
			pending = append(pending, s)
		}
		if len(pending) == 0 {
			break // everyone halted
		}
		batch := model.NewBatch(m.n)
		for _, s := range pending {
			batch[s.proc] = s.req
		}
		sr := m.backend.ExecuteStep(batch)
		rep.Steps++
		rep.SimTime += sr.Time
		rep.Phases += int64(sr.Phases)
		rep.NetworkCycles += sr.NetworkCycles
		rep.CopyAccesses += sr.CopyAccesses
		if sr.ModuleContention > rep.MaxContention {
			rep.MaxContention = sr.ModuleContention
		}
		if sr.Err != nil {
			rep.Violations = append(rep.Violations, sr.Err)
		}
		for _, s := range pending {
			if s.req.Op == model.OpRead {
				m.replyCh[s.proc] <- sr.Values[s.proc]
			} else {
				m.replyCh[s.proc] <- 0
			}
		}
	}
	return rep
}
