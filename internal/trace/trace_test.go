package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ideal"
	"repro/internal/model"
	"repro/internal/workloads"
)

func TestRecorderLogsSteps(t *testing.T) {
	rec := Wrap(ideal.New(4, 16, model.CREW))
	b := model.NewBatch(4)
	b[0] = model.Request{Proc: 0, Op: model.OpWrite, Addr: 1, Value: 5}
	b[1] = model.Request{Proc: 1, Op: model.OpRead, Addr: 2}
	rec.ExecuteStep(b)
	rec.ExecuteStep(model.NewBatch(4))
	log := rec.Steps()
	if len(log) != 2 {
		t.Fatalf("log length = %d", len(log))
	}
	if log[0].Reads != 1 || log[0].Writes != 1 || log[0].Active != 2 {
		t.Errorf("step 0 counts wrong: %+v", log[0])
	}
	if log[1].Active != 0 {
		t.Errorf("idle step recorded activity: %+v", log[1])
	}
	if log[0].Index != 0 || log[1].Index != 1 {
		t.Error("indices wrong")
	}
}

func TestRecorderPassthroughSemantics(t *testing.T) {
	w := workloads.PrefixSum(16, 3)
	inner := ideal.New(w.Procs, w.Cells, w.Mode)
	rec := Wrap(inner)
	if _, err := workloads.RunOn(w, rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Steps()) == 0 {
		t.Error("no steps recorded")
	}
}

func TestRecorderOnQuorumMachine(t *testing.T) {
	dm := core.NewDMMPC(16, core.Config{})
	rec := Wrap(dm)
	b := model.NewBatch(16)
	for i := 0; i < 16; i++ {
		b[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: i, Value: 1}
	}
	rec.ExecuteStep(b)
	if rec.Steps()[0].Phases == 0 {
		t.Error("phases not captured")
	}
	ts := rec.TimeSummary()
	if ts.N != 1 || ts.Max == 0 {
		t.Errorf("summary wrong: %+v", ts)
	}
}

func TestRecorderViolationFlag(t *testing.T) {
	rec := Wrap(ideal.New(2, 4, model.EREW))
	b := model.Batch{
		{Proc: 0, Op: model.OpRead, Addr: 0},
		{Proc: 1, Op: model.OpRead, Addr: 0},
	}
	rec.ExecuteStep(b)
	if !rec.Steps()[0].Violation {
		t.Error("EREW violation not flagged in trace")
	}
}

func TestReportRendering(t *testing.T) {
	rec := Wrap(ideal.New(2, 4, model.CREW))
	if !strings.Contains(rec.Report(), "no steps") {
		t.Error("empty report wrong")
	}
	b := model.NewBatch(2)
	b[0] = model.Request{Proc: 0, Op: model.OpRead, Addr: 0}
	rec.ExecuteStep(b)
	rep := rec.Report()
	for _, want := range []string{"steps: 1", "time/step", "contention", "distribution"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestReset(t *testing.T) {
	rec := Wrap(ideal.New(2, 4, model.CREW))
	rec.ExecuteStep(model.NewBatch(2))
	rec.Reset()
	if len(rec.Steps()) != 0 {
		t.Error("reset did not clear log")
	}
}

// nullBackend is an allocation-free backend stub, so the rotation test
// measures the Recorder's own allocations only.
type nullBackend struct{ n, m int }

func (b *nullBackend) Name() string                                 { return "null" }
func (b *nullBackend) MemSize() int                                 { return b.m }
func (b *nullBackend) Procs() int                                   { return b.n }
func (b *nullBackend) ExecuteStep(model.Batch) model.StepReport     { return model.StepReport{Time: 1} }
func (b *nullBackend) ReadCell(model.Addr) model.Word               { return 0 }
func (b *nullBackend) LoadCells(base model.Addr, vals []model.Word) {}

// TestResetRotatesWithoutReallocating is the log-rotation contract: once a
// reporting window has grown the log's backing array, rotating via Reset
// and refilling the window performs zero heap allocations — a long-running
// server can rotate cost logs forever at steady state.
func TestResetRotatesWithoutReallocating(t *testing.T) {
	const window = 64
	rec := Wrap(&nullBackend{n: 2, m: 4})
	batch := model.NewBatch(2)
	for i := 0; i < window; i++ { // grow the backing array once
		rec.ExecuteStep(batch)
	}
	rec.Reset()
	if avg := testing.AllocsPerRun(10, func() {
		for i := 0; i < window; i++ {
			rec.ExecuteStep(batch)
		}
		if len(rec.Steps()) != window {
			t.Fatal("window not recorded")
		}
		if rec.Steps()[0].Index != 0 {
			t.Fatal("indices did not restart after rotation")
		}
		rec.Reset()
	}); avg != 0 {
		t.Errorf("rotating a %d-step window allocates %.1f/window in steady state, want 0", window, avg)
	}
}

func TestNameSuffix(t *testing.T) {
	rec := Wrap(ideal.New(2, 4, model.CREW))
	if !strings.HasSuffix(rec.Name(), "+trace") {
		t.Errorf("name = %q", rec.Name())
	}
}
