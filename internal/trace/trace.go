// Package trace provides a recording middleware for machine backends: it
// wraps any model.Backend, passes steps through unchanged, and keeps a
// per-step log of simulated costs (time, phases, cycles, contention) with
// summary statistics — the instrument behind the per-step distributions in
// the experiment write-ups and the -trace flag of cmd/pramsim.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/stats"
)

// StepRecord is the cost of one executed step.
type StepRecord struct {
	Index      int
	Active     int // non-idle requests in the batch
	Reads      int
	Writes     int
	Time       int64
	Phases     int
	Cycles     int64
	Contention int
	Violation  bool
}

// Recorder wraps a backend and logs every step.
type Recorder struct {
	inner model.Backend
	log   []StepRecord
}

// Wrap returns a recording view of inner.
func Wrap(inner model.Backend) *Recorder {
	return &Recorder{inner: inner}
}

// Name implements model.Backend.
func (r *Recorder) Name() string { return r.inner.Name() + "+trace" }

// MemSize implements model.Backend.
func (r *Recorder) MemSize() int { return r.inner.MemSize() }

// Procs implements model.Backend.
func (r *Recorder) Procs() int { return r.inner.Procs() }

// ExecuteStep implements model.Backend.
func (r *Recorder) ExecuteStep(batch model.Batch) model.StepReport {
	rep := r.inner.ExecuteStep(batch)
	r.log = append(r.log, StepRecord{
		Index:      len(r.log),
		Active:     batch.Active(),
		Reads:      batch.Reads(),
		Writes:     batch.Writes(),
		Time:       rep.Time,
		Phases:     rep.Phases,
		Cycles:     rep.NetworkCycles,
		Contention: rep.ModuleContention,
		Violation:  rep.Err != nil,
	})
	return rep
}

// ReadCell implements model.Backend.
func (r *Recorder) ReadCell(a model.Addr) model.Word { return r.inner.ReadCell(a) }

// LoadCells implements model.Backend.
func (r *Recorder) LoadCells(base model.Addr, vals []model.Word) {
	r.inner.LoadCells(base, vals)
}

// Steps returns the recorded log (alias of internal storage; treat as
// read-only — and invalidated by Reset).
func (r *Recorder) Steps() []StepRecord { return r.log }

// Reset clears the log while keeping its backing array, so long-running
// servers can rotate cost logs between reporting windows without
// reallocating: after one full window the recorder reaches a steady state
// where logging a step costs zero heap allocations
// (TestResetRotatesWithoutReallocating). Step indices restart at zero.
func (r *Recorder) Reset() { r.log = r.log[:0] }

// TimeSummary summarizes per-step simulated time.
func (r *Recorder) TimeSummary() stats.Summary {
	vals := make([]float64, len(r.log))
	for i, s := range r.log {
		vals[i] = float64(s.Time)
	}
	return stats.Summarize(vals)
}

// ContentionSummary summarizes per-step peak module load.
func (r *Recorder) ContentionSummary() stats.Summary {
	vals := make([]float64, len(r.log))
	for i, s := range r.log {
		vals[i] = float64(s.Contention)
	}
	return stats.Summarize(vals)
}

// Report renders a compact multi-line cost report.
func (r *Recorder) Report() string {
	if len(r.log) == 0 {
		return "trace: no steps recorded\n"
	}
	ts := r.TimeSummary()
	cs := r.ContentionSummary()
	var total int64
	var violations int
	for _, s := range r.log {
		total += s.Time
		if s.Violation {
			violations++
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace of %s\n", r.inner.Name())
	fmt.Fprintf(&sb, "  steps: %d   total sim time: %d\n", len(r.log), total)
	fmt.Fprintf(&sb, "  time/step:   min %.0f  median %.0f  mean %.1f  p90 %.0f  max %.0f\n",
		ts.Min, ts.Median, ts.Mean, ts.P90, ts.Max)
	fmt.Fprintf(&sb, "  contention:  min %.0f  median %.0f  mean %.1f  max %.0f\n",
		cs.Min, cs.Median, cs.Mean, cs.Max)
	if violations > 0 {
		fmt.Fprintf(&sb, "  conflict violations: %d steps\n", violations)
	}
	hist := stats.NewHistogram(timeValues(r.log), 8)
	sb.WriteString("  time/step distribution:\n")
	for _, line := range strings.Split(strings.TrimRight(hist.Bar(40), "\n"), "\n") {
		sb.WriteString("  " + line + "\n")
	}
	return sb.String()
}

func timeValues(log []StepRecord) []float64 {
	vals := make([]float64, len(log))
	for i, s := range log {
		vals[i] = float64(s.Time)
	}
	return vals
}
