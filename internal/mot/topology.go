// Package mot implements the two-dimensional mesh of trees (2DMOT, the
// "orthogonal trees" of Nath, Maheshwari & Bhatt 1983): an a×a grid of
// leaves where row i's leaves form the fringe of a complete binary row tree
// RT(i) and column j's leaves form the fringe of a column tree CT(j), with
// processors at the coalesced tree roots.
//
// The package provides a synchronous, hop-per-cycle packet simulation of
// the network and implements quorum.Interconnect: a protocol phase is
// realized by injecting one packet per attempting processor, routing it
// down its row tree, up and down the target column tree to the memory
// module, and back. Conflicting packets that meet on a tree edge collide —
// the lower-priority one is refused for this phase and retried by the
// engine, the rule Theorem 3's routing uses ("provided it does not collide
// with a conflicting request"); replies and module queues use FIFO waiting,
// which is the stage-2 pipelining of Luccio et al. (1990).
//
// # Zero-allocation invariant
//
// Network.RoutePhase performs zero heap allocations in steady state:
// packet state lives in reusable structure-of-arrays lanes (see below),
// paths are dense edge indices (see denseEdgeID) written into a reusable
// arena, edge contention is a cycle-stamped claim-set that never needs
// clearing (the global cycle counter never repeats), module counters are
// phase-interned, and each cycle walks a compacted active-packet list.
// testing.AllocsPerRun tests lock the invariant; golden-trace tests pin
// grants, cycle counts and Stats bit-for-bit to the pre-arena reference
// implementation.
//
// # SoA layout & claim resolution
//
// Packet state is STRUCTURE-OF-ARRAYS: instead of a []packet
// array-of-structs, the router keeps four parallel dense int32 lanes
// indexed by packet id (== attempt index) —
//
//	pktCur  absolute index of the packet's next edge in the path arena
//	pktEnd  absolute end-of-path offset (reaching it is the grant)
//	pktSrv  absolute module-service offset, −1 once served (the flag and
//	        the position share a lane: a packet is "not yet served" iff
//	        pktSrv ≥ 0, and "at its service point" iff pktCur == pktSrv)
//	pktMod  phase-local module id for service accounting
//
// plus cold side-tables (pktPrio for the sort path, pktTrees for the
// parallel partition) that the cycle loop never touches. The compacted
// active list holds indices into these lanes in ascending order, so a
// cycle's sweep reads each lane sequentially — cache-linear, 16 hot bytes
// per packet instead of a 32-byte struct.
//
// Edge-claim resolution is branch-free on the hot path. The claim-set is
// open-addressed and cycle-stamped; the first probe exploits an
// idempotent-store trick: a slot stamped with an older cycle is free
// (claim it — store cycle and key), and a same-cycle slot holding the
// SAME key is a collision for which re-storing (cycle, key) is a no-op —
// so both outcomes share one unconditional store and the verdict
// `ok = slot.cycle != cycle` is a flag, not a branch. Only a same-cycle
// slot holding a different key (< 25% of claims at the table's 4-slots-
// per-packet sizing) falls into the claimEdgeProbe continuation. The
// verdict then drives the whole per-packet update as conditional moves:
// the cursor advances by b2i(ok), the grant flag is the pure predicate
// `cur == pktEnd`, a drop-policy refusal is the predicate
// `!ok && unserved`, and the survivor is compacted onto the active list
// by bumping the write cursor with b2i(keep). The only branch left in
// the loop body is the once-per-packet module-service point.
//
// # Tree-partition invariant (multi-core routing)
//
// The 4a trees of the 2DMOT are edge-disjoint, and a packet interacts with
// other packets through exactly two mechanisms: edge contention (possible
// only between packets whose paths share a tree) and module service
// capacity (possible only between packets addressing the same module
// leaf). A request path traverses at most three trees — row tree of the
// issuing processor, column tree of the bank, and (on the dual-rail row
// rail) the row tree of the target row — all known at injection time.
// Partitioning a phase's packets into connected components of the
// "shares a tree or a module" relation therefore yields groups with
// disjoint edge sets, disjoint module counters and disjoint result slots,
// and the synchronous cycle loop factorizes exactly: advancing each
// component independently and merging — counter sums, makespan max, and
// per-cycle module backlogs summed by cycle offset (all components start
// at the same global cycle) — reproduces the serial router bit for bit.
// Config.Parallelism > 1 exploits this on a bounded worker pool (see
// parallel.go); the differential tests, FuzzRoutePhase and the golden
// traces under PRAMSIM_PARALLEL pin the equivalence.
package mot

import (
	"fmt"

	"repro/internal/xmath"
)

// Placement selects where the memory modules sit.
type Placement uint8

const (
	// ModulesAtLeaves is the paper's Section 3 deployment (Fig. 8): M = a²
	// modules, one per grid leaf, addressed by bank (column) and row. This
	// is what makes the √M columns act as independent banks and enables
	// constant redundancy.
	ModulesAtLeaves Placement = iota
	// ModulesAtRoots is the Luccio et al. (1990) deployment: n modules,
	// one per root processor, with the grid acting purely as a switching
	// fabric. Granularity stays m/n, so redundancy stays Θ(log n).
	ModulesAtRoots
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	if p == ModulesAtRoots {
		return "modules-at-roots"
	}
	return "modules-at-leaves"
}

// Directed tree-edge encoding: every edge of every tree is identified by
// its child endpoint (level ∈ [1,d], position ∈ [0, 2^level)) plus the tree
// kind (row/column), tree index, and direction of travel.
const (
	kindRow = 0
	kindCol = 1
	dirDown = 0 // toward the leaves
	dirUp   = 1 // toward the root
)

// edgeID packs a directed tree edge into a map key.
func edgeID(kind, dir, tree, childLevel, childPos int) uint64 {
	return uint64(kind)<<63 | uint64(dir)<<62 |
		uint64(tree)<<40 | uint64(childLevel)<<34 | uint64(childPos)
}

// Directed tree edges also have a DENSE index: within one tree the edge to
// the child at (level, pos) gets offset 2^level − 2 + pos ∈ [0, 2a−2), and
// the (kind, dir, tree) triple selects one of 4a trees, giving the compact
// range [0, 4a·(2a−2)). The router's cycle-stamped tables are keyed by
// these indices instead of map lookups on the packed uint64 ids.

// EdgesPerTree returns the directed-edge count of one tree: 2a−2.
func (t Topology) EdgesPerTree() int { return 2*t.Side - 2 }

// DenseEdgeSpace returns the size of the dense directed-edge index range.
func (t Topology) DenseEdgeSpace() int { return 4 * t.Side * t.EdgesPerTree() }

// denseEdgeID maps a directed tree edge to its dense index. It is the
// arithmetic counterpart of edgeID: two edges get equal dense indices iff
// their packed ids are equal (TestDensePathMatchesEdgeIDs locks this).
func (t Topology) denseEdgeID(kind, dir, tree, childLevel, childPos int) int32 {
	ept := t.EdgesPerTree()
	return int32(((kind<<1|dir)*t.Side+tree)*ept + (1 << childLevel) - 2 + childPos)
}

// appendRequestPathDense appends requestPath's edges as dense indices.
func (t Topology) appendRequestPathDense(dst []int32, proc, row, col int) []int32 {
	d := t.Depth
	for l := 1; l <= d; l++ {
		dst = append(dst, t.denseEdgeID(kindRow, dirDown, proc, l, col>>(d-l)))
	}
	for l := d; l >= 1; l-- {
		dst = append(dst, t.denseEdgeID(kindCol, dirUp, col, l, proc>>(d-l)))
	}
	if t.Placement == ModulesAtLeaves {
		for l := 1; l <= d; l++ {
			dst = append(dst, t.denseEdgeID(kindCol, dirDown, col, l, row>>(d-l)))
		}
	}
	// --- service point: len so far ---
	if t.Placement == ModulesAtLeaves {
		for l := d; l >= 1; l-- {
			dst = append(dst, t.denseEdgeID(kindCol, dirUp, col, l, row>>(d-l)))
		}
	}
	for l := 1; l <= d; l++ {
		dst = append(dst, t.denseEdgeID(kindCol, dirDown, col, l, proc>>(d-l)))
	}
	for l := d; l >= 1; l-- {
		dst = append(dst, t.denseEdgeID(kindRow, dirUp, proc, l, col>>(d-l)))
	}
	return dst
}

// appendRequestPathRowRailDense appends requestPathRowRail's edges as dense
// indices.
func (t Topology) appendRequestPathRowRailDense(dst []int32, proc, row, col int) []int32 {
	d := t.Depth
	for l := 1; l <= d; l++ {
		dst = append(dst, t.denseEdgeID(kindRow, dirDown, proc, l, row>>(d-l)))
	}
	for l := d; l >= 1; l-- {
		dst = append(dst, t.denseEdgeID(kindCol, dirUp, row, l, proc>>(d-l)))
	}
	for l := 1; l <= d; l++ {
		dst = append(dst, t.denseEdgeID(kindRow, dirDown, row, l, col>>(d-l)))
	}
	// --- service at leaf (row, col) ---
	for l := d; l >= 1; l-- {
		dst = append(dst, t.denseEdgeID(kindRow, dirUp, row, l, col>>(d-l)))
	}
	for l := 1; l <= d; l++ {
		dst = append(dst, t.denseEdgeID(kindCol, dirDown, row, l, proc>>(d-l)))
	}
	for l := d; l >= 1; l-- {
		dst = append(dst, t.denseEdgeID(kindRow, dirUp, proc, l, row>>(d-l)))
	}
	return dst
}

// Topology captures the static shape of an a×a 2DMOT.
type Topology struct {
	Side      int // a: leaves per tree; must be a power of two
	Depth     int // d = log2(a)
	Placement Placement
}

// MaxSide is the largest supported grid side: the router keys its
// claim-sets and path arenas by int32 dense edge indices, so the dense
// directed-edge space 4a·(2a−2) = 8a²−8a must fit int32. Side 16384 yields
// 2,147,352,576 < 2³¹−1 edges; the next power of two overflows.
const MaxSide = 16384

// NewTopology validates and returns an a×a 2DMOT shape. It panics when
// side is not a power of two or breaches the int32 dense-edge ceiling
// (side > MaxSide) — the router's claim-sets and path arenas are keyed by
// int32 dense edge indices, and a silent wraparound would corrupt routing.
func NewTopology(side int, pl Placement) Topology {
	if !xmath.IsPow2(side) {
		panic(fmt.Sprintf("mot: side %d must be a power of two", side))
	}
	if side > MaxSide {
		panic(fmt.Sprintf(
			"mot: side %d exceeds the int32 dense-edge ceiling: 4a(2a-2) = %d directed edges > max %d; the largest supported side is %d",
			side, int64(4*side)*int64(2*side-2), int64(1)<<31-1, MaxSide))
	}
	return Topology{Side: side, Depth: xmath.ILog2(side), Placement: pl}
}

// Nodes returns the total node count: a² leaves plus 2a(a−1) internal tree
// nodes (the O(M) "dummy processors, mere switches" of the DMBDN model).
func (t Topology) Nodes() int {
	a := t.Side
	return a*a + 2*a*(a-1)
}

// Switches returns only the non-leaf switching nodes.
func (t Topology) Switches() int { return 2 * t.Side * (t.Side - 1) }

// requestPath returns the forward path of a request from processor root
// `proc` to the module, and the index at which module service happens
// (== len(forward)); the reply path is appended after it.
//
// ModulesAtLeaves — module (row i, column j):
//
//	root(RT proc) ⇓ leaf(proc,j) ⇑ root(CT j) ⇓ leaf(i,j) [serve] and back.
//
// ModulesAtRoots — module at root i:
//
//	root(RT proc) ⇓ leaf(proc,i) ⇑ root(CT i) [serve] and back.
func (t Topology) requestPath(proc, row, col int) []uint64 {
	d := t.Depth
	path := make([]uint64, 0, 6*d)
	// Down row tree `proc` to leaf column `col`.
	for l := 1; l <= d; l++ {
		path = append(path, edgeID(kindRow, dirDown, proc, l, col>>(d-l)))
	}
	// Up column tree `col` from leaf position `proc` to its root.
	for l := d; l >= 1; l-- {
		path = append(path, edgeID(kindCol, dirUp, col, l, proc>>(d-l)))
	}
	if t.Placement == ModulesAtLeaves {
		// Down column tree `col` to leaf row `row`.
		for l := 1; l <= d; l++ {
			path = append(path, edgeID(kindCol, dirDown, col, l, row>>(d-l)))
		}
	}
	// --- service point: len(path) ---
	// Reply: exact reverse.
	if t.Placement == ModulesAtLeaves {
		for l := d; l >= 1; l-- {
			path = append(path, edgeID(kindCol, dirUp, col, l, row>>(d-l)))
		}
	}
	for l := 1; l <= d; l++ {
		path = append(path, edgeID(kindCol, dirDown, col, l, proc>>(d-l)))
	}
	for l := d; l >= 1; l-- {
		path = append(path, edgeID(kindRow, dirUp, proc, l, col>>(d-l)))
	}
	return path
}

// servicePos returns the index within a requestPath at which the packet is
// served by the module.
func (t Topology) servicePos() int {
	if t.Placement == ModulesAtLeaves {
		return 3 * t.Depth
	}
	return 2 * t.Depth
}

// requestPathRowRail returns the dual-rail alternative path of Theorem 3's
// closing remark ("we can simultaneously access along both rows and
// columns"): the final delivery to module (row, col) rides ROW tree `row`
// instead of column tree `col`, making the a rows a second, independent
// set of banks:
//
//	root(RT proc) ⇓ leaf(proc,row) ⇑ root(CT row)=root(RT row)
//	⇓ leaf(row,col) [serve] and back.
//
// Same 6d length and the same 3d service position as the column rail.
// Only meaningful for ModulesAtLeaves.
func (t Topology) requestPathRowRail(proc, row, col int) []uint64 {
	d := t.Depth
	path := make([]uint64, 0, 6*d)
	// Down row tree `proc` to leaf column `row`.
	for l := 1; l <= d; l++ {
		path = append(path, edgeID(kindRow, dirDown, proc, l, row>>(d-l)))
	}
	// Up column tree `row` from leaf position `proc` to the coalesced root.
	for l := d; l >= 1; l-- {
		path = append(path, edgeID(kindCol, dirUp, row, l, proc>>(d-l)))
	}
	// Down ROW tree `row` to leaf column `col` — the rail switch.
	for l := 1; l <= d; l++ {
		path = append(path, edgeID(kindRow, dirDown, row, l, col>>(d-l)))
	}
	// --- service at leaf (row, col) ---
	// Reply: exact reverse.
	for l := d; l >= 1; l-- {
		path = append(path, edgeID(kindRow, dirUp, row, l, col>>(d-l)))
	}
	for l := 1; l <= d; l++ {
		path = append(path, edgeID(kindCol, dirDown, row, l, proc>>(d-l)))
	}
	for l := d; l >= 1; l-- {
		path = append(path, edgeID(kindRow, dirUp, proc, l, row>>(d-l)))
	}
	return path
}
