// The retired array-of-structs reference router. Before the SoA rewrite
// the production cycle loop kept per-packet state in a []packet struct
// array and resolved edge claims with per-packet branching; this file
// preserves those semantics in the most naive form available — heap
// packets, packed uint64 edge ids from the requestPath reference
// generators (NOT the dense indices the production arenas use), map-based
// claim sets and module counters, no singleton fast path, no reused
// buffers — as the independent oracle the SoA core is swept against.
// Living in a _test.go file keeps it out of product builds, the same
// effect as the ignore build tag the retirement called for, while letting
// the differential tests and FuzzRoutePhase import it without ceremony.
package mot

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/quorum"
)

// refPacket is the retired AoS packet: one heap struct per attempt.
type refPacket struct {
	attempt int
	prio    int
	path    []uint64 // packed edge ids (edgeID), not dense indices
	pos     int
	service int
	module  int // grid module id row·side+col
	served  bool
}

// refNetwork mirrors Network's observable contract (RoutePhase,
// SetBandwidth, Stats) on the retired layout.
type refNetwork struct {
	topo  Topology
	cfg   Config
	clock int64
	stats Stats
}

// newRefNetwork mirrors NewNetwork's config defaulting exactly: the RowOf
// fallback must hash identically or the two routers aim packets at
// different modules.
func newRefNetwork(side int, pl Placement, cfg Config) *refNetwork {
	if cfg.ModuleCapacity <= 0 {
		cfg.ModuleCapacity = 1
	}
	if pl == ModulesAtLeaves && cfg.RowOf == nil {
		cfg.RowOf = func(v, cp int) int { return int(mix64(uint64(v)*31+uint64(cp))) & (side - 1) }
	}
	return &refNetwork{topo: NewTopology(side, pl), cfg: cfg}
}

func (rn *refNetwork) SetBandwidth(perPhase int) {
	if perPhase < 1 {
		perPhase = 1
	}
	rn.cfg.ModuleCapacity = perPhase
}

func (rn *refNetwork) Stats() Stats { return rn.stats }

// RoutePhase routes one phase the pre-SoA way: build heap packets, sort
// stably by priority, then per cycle sweep the survivors claiming edges in
// a fresh map. Deliberately allocation-heavy and branchy — it is the
// oracle, not the product.
func (rn *refNetwork) RoutePhase(attempts []quorum.Attempt) ([]bool, int64, int) {
	granted := make([]bool, len(attempts))
	if len(attempts) == 0 {
		return granted, 0, 0
	}
	side := rn.topo.Side
	pkts := make([]*refPacket, 0, len(attempts))
	modLoad := map[int]int{}
	for i, a := range attempts {
		var row, col int
		rowRail := false
		if rn.topo.Placement == ModulesAtLeaves {
			if rn.cfg.DualRail && a.Module >= side {
				rowRail = true
				row = a.Module & (side - 1)
				col = rn.cfg.RowOf(a.Var, a.Copy) & (side - 1)
			} else {
				col = a.Module & (side - 1)
				row = rn.cfg.RowOf(a.Var, a.Copy) & (side - 1)
			}
		} else {
			col = a.Module & (side - 1)
		}
		if a.Proc >= side {
			panic("mot: processor id exceeds root count")
		}
		var path []uint64
		if rowRail {
			path = rn.topo.requestPathRowRail(a.Proc, row, col)
		} else {
			path = rn.topo.requestPath(a.Proc, row, col)
		}
		pk := &refPacket{
			attempt: i,
			prio:    a.Proc,
			path:    path,
			service: rn.topo.servicePos(),
			module:  row*side + col,
		}
		pkts = append(pkts, pk)
		modLoad[pk.module]++
	}
	maxLoad := 0
	for _, c := range modLoad {
		if c > maxLoad {
			maxLoad = c
		}
	}
	// Priority order with attempt-index tie-break: a stable sort over the
	// injection order is exactly that.
	sort.SliceStable(pkts, func(x, y int) bool { return pkts[x].prio < pkts[y].prio })
	drop := rn.cfg.Policy == DropOnCollision
	start := rn.clock
	for len(pkts) > 0 {
		rn.clock++
		claims := map[uint64]bool{}
		modCnt := map[int]int{}
		queued := 0
		next := pkts[:0]
		for _, pk := range pkts {
			if pk.pos == pk.service && !pk.served {
				if modCnt[pk.module] < rn.cfg.ModuleCapacity {
					modCnt[pk.module]++
					pk.served = true
					rn.stats.Served++
				} else {
					queued++
				}
				next = append(next, pk)
				continue
			}
			e := pk.path[pk.pos]
			if !claims[e] {
				claims[e] = true
				pk.pos++
				rn.stats.Hops++
				if pk.pos == len(pk.path) {
					granted[pk.attempt] = true
					continue
				}
			} else if drop && !pk.served {
				rn.stats.Collisions++
				continue
			}
			next = append(next, pk)
		}
		pkts = next
		if queued > rn.stats.MaxQueue {
			rn.stats.MaxQueue = queued
		}
	}
	elapsed := rn.clock - start
	rn.stats.Cycles += elapsed
	return granted, elapsed, maxLoad
}

// refAttempts draws one phase's attempt set, including duplicate and
// descending processor ids (sort path, priority ties) and, under dual
// rail, row-bank ids.
func refAttempts(rng *rand.Rand, side int, dualRail bool) []quorum.Attempt {
	banks := side
	if dualRail {
		banks = 2 * side
	}
	k := 1 + rng.Intn(2*side)
	attempts := make([]quorum.Attempt, k)
	for i := range attempts {
		attempts[i] = quorum.Attempt{
			Proc:   rng.Intn(side),
			Module: rng.Intn(banks),
			Var:    rng.Intn(4096),
			Copy:   rng.Intn(8),
			Write:  rng.Intn(2) == 0,
		}
	}
	return attempts
}

// runReferencePhases drives the AoS reference and a production network
// (serial or parallel) through identical phase streams — including a
// mid-stream bandwidth change — and demands bit-for-bit equality.
func runReferencePhases(t *testing.T, side int, pl Placement, cfg Config, workers int, seed int64, phases int) {
	t.Helper()
	ref := newRefNetwork(side, pl, cfg)
	cfg.Parallelism = workers
	nw := NewNetwork(side, pl, cfg)
	rng := rand.New(rand.NewSource(seed))
	for phase := 0; phase < phases; phase++ {
		attempts := refAttempts(rng, side, cfg.DualRail)
		if phase == phases/2 {
			ref.SetBandwidth(3)
			nw.SetBandwidth(3)
		}
		gr, cr, lr := ref.RoutePhase(attempts)
		gn, cn, ln := nw.RoutePhase(attempts)
		if cr != cn || lr != ln {
			t.Fatalf("phase %d: reference (cycles=%d load=%d) != SoA (cycles=%d load=%d)",
				phase, cr, lr, cn, ln)
		}
		for i := range gr {
			if gr[i] != gn[i] {
				t.Fatalf("phase %d: grant[%d] reference=%v SoA=%v", phase, i, gr[i], gn[i])
			}
		}
	}
	if ref.Stats() != nw.Stats() {
		t.Fatalf("stats diverged:\n reference %+v\n SoA       %+v", ref.Stats(), nw.Stats())
	}
}

// TestReferenceDifferential sweeps the SoA router — serial AND parallel —
// against the retired AoS reference across sides, placements, policies,
// rails, module capacities and worker counts.
func TestReferenceDifferential(t *testing.T) {
	type tc struct {
		pl       Placement
		pol      Policy
		dualRail bool
		capacity int
	}
	cases := []tc{
		{ModulesAtLeaves, DropOnCollision, false, 1},
		{ModulesAtLeaves, QueueOnCollision, false, 1},
		{ModulesAtLeaves, DropOnCollision, true, 1},
		{ModulesAtLeaves, DropOnCollision, true, 3},
		{ModulesAtLeaves, QueueOnCollision, true, 2},
		{ModulesAtRoots, DropOnCollision, false, 1},
		{ModulesAtRoots, QueueOnCollision, false, 2},
	}
	for _, side := range []int{4, 8, 16, 32} {
		for ci, c := range cases {
			for _, workers := range []int{1, 2, 4} {
				name := fmt.Sprintf("side=%d/case=%d/pl=%v/pol=%d/dual=%v/cap=%d/w=%d",
					side, ci, c.pl, c.pol, c.dualRail, c.capacity, workers)
				t.Run(name, func(t *testing.T) {
					for seed := int64(1); seed <= 3; seed++ {
						runReferencePhases(t, side, c.pl,
							Config{Policy: c.pol, DualRail: c.dualRail, ModuleCapacity: c.capacity},
							workers, seed*1289, 6)
					}
				})
			}
		}
	}
}

// TestReferenceSingletonPhase pins the closed form the singleton fast path
// relies on: a lone packet's phase is pathLen+1 cycles and pathLen hops on
// both routers, for every placement and rail.
func TestReferenceSingletonPhase(t *testing.T) {
	const side = 8
	cases := []struct {
		name string
		pl   Placement
		cfg  Config
		att  quorum.Attempt
		want int64 // pathLen
	}{
		{"leaves", ModulesAtLeaves, Config{}, quorum.Attempt{Proc: 3, Module: 5, Var: 9}, 6 * 3},
		{"leaves-rowrail", ModulesAtLeaves, Config{DualRail: true}, quorum.Attempt{Proc: 3, Module: side + 5, Var: 9}, 6 * 3},
		{"roots", ModulesAtRoots, Config{}, quorum.Attempt{Proc: 3, Module: 5, Var: 9}, 4 * 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ref := newRefNetwork(side, c.pl, c.cfg)
			nw := NewNetwork(side, c.pl, c.cfg)
			gr, cr, _ := ref.RoutePhase([]quorum.Attempt{c.att})
			gn, cn, _ := nw.RoutePhase([]quorum.Attempt{c.att})
			if !gr[0] || !gn[0] {
				t.Fatalf("lone packet not granted: reference=%v SoA=%v", gr[0], gn[0])
			}
			if cr != c.want+1 || cn != c.want+1 {
				t.Fatalf("lone packet elapsed: reference=%d SoA=%d, want %d", cr, cn, c.want+1)
			}
			if ref.Stats().Hops != c.want || nw.Stats().Hops != c.want {
				t.Fatalf("lone packet hops: reference=%d SoA=%d, want %d",
					ref.Stats().Hops, nw.Stats().Hops, c.want)
			}
		})
	}
}
