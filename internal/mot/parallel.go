// Multi-core phase routing.
//
// A phase's packets are partitioned into TREE-CONNECTIVITY COMPONENTS:
// the finest grouping in which two packets that share any row/column tree
// (and hence possibly a tree edge) or any module leaf (and hence the
// module's service capacity) land in the same group. Packets in different
// components touch disjoint edge claim-sets, disjoint module counters and
// disjoint packet/grant slots, so components can be advanced through the
// whole synchronous cycle loop concurrently and independently — no
// barriers inside the phase. The union-find runs over the 2a tree nodes
// plus the phase's interned module nodes; each packet contributes the ≤ 3
// trees its path traverses (stashed in the pktTrees side-table during
// setup) plus its module node.
//
// Merging is deterministic by construction: grants and packet state are
// written to disjoint indices, counter sums are exact integer additions,
// the phase makespan is the max over components, and the per-cycle module
// backlogs are aligned by cycle offset (every component starts at the same
// global cycle) and summed before the MaxQueue comparison. The
// differential tests and the golden traces pin the result bit-for-bit to
// the serial router.
//
// The worker pool is bounded and persistent: exactly Parallelism shards
// (the caller participates as worker 0; GOMAXPROCS is the default for
// Parallelism < 0 — explicitly asking for more than GOMAXPROCS
// oversubscribes the scheduler, which the differential and race tests use
// on purpose to shake out interleavings on small machines). The pool is
// reused across phases; each phase wakes at most min(components,
// Parallelism)−1 background workers and dispatches components by atomic
// counter — zero steady-state allocations
// (TestRoutePhaseParallelZeroAllocs). A runtime cleanup stops the pool
// when the Network becomes unreachable; workers only reach the Network
// through a pool field that is set for the duration of a phase, so the
// pool never keeps the Network alive.
package mot

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// shard is one worker's slice of the router arena: an edge claim-set plus
// the cycle-loop accumulators for the components the worker advances.
// shards[0] doubles as the serial router's state.
type shard struct {
	// Edge claim-set: cycle-stamped open addressing keyed by dense edge
	// index. A slot whose cycle differs from the current one is free, so
	// the table never needs clearing — stale entries from other components
	// or phases only ever cause extra probing, never a false collision,
	// because claim outcomes depend solely on (cycle, key) equality.
	slots []edgeSlot
	mask  int

	queued     []int32 // per cycle offset: module backlog, summed over components
	hops       int64
	collisions int64
	served     int64
	elapsed    int64 // max component makespan this phase

	_ [64]byte // keep adjacent shards' hot counters off one cache line
}

// ensure sizes the claim-set for a phase of k attempts. Per cycle at most
// one edge claim per live packet, so 4k slots keep the per-cycle load
// factor under 25% even if every component lands on this shard.
func (sh *shard) ensure(k int) {
	need := 4 * k
	if sh.mask == 0 || len(sh.slots) < need {
		sz := 64
		for sz < need {
			sz *= 2
		}
		sh.slots = make([]edgeSlot, sz)
		sh.mask = sz - 1
	}
}

// begin resets the per-phase accumulators.
func (sh *shard) begin() {
	sh.queued = sh.queued[:0]
	sh.hops, sh.collisions, sh.served, sh.elapsed = 0, 0, 0, 0
}

// claimEdgeProbe is the cold continuation of an edge claim whose home slot
// h held a same-cycle claim for a DIFFERENT edge: keep open-addressing from
// h+1 until a free (older-cycle) slot is claimed or this edge's existing
// claim is found. The hot first probe — including the idempotent-store
// trick that makes its outcome branch-free — is inlined at both call sites
// in the cycle loops (network.go); the table is sized to 4 slots per live
// packet, so this continuation runs on well under a quarter of claims.
// Slots stamped with an older cycle count as free, so the set clears
// itself as the clock advances. Free function over a hoisted (slots, mask)
// pair so the loops keep the table in registers.
func claimEdgeProbe(slots []edgeSlot, mask int, key int32, cycle int64, h int) bool {
	for {
		h = (h + 1) & mask
		s := &slots[h]
		if s.cycle != cycle {
			s.cycle = cycle
			s.key = key
			return true
		}
		if s.key == key {
			return false
		}
	}
}

// motPool is the persistent worker pool of one parallel Network. The
// calling goroutine acts as worker 0; workers 1..n−1 park on the start
// channel between phases and pull components off an atomic cursor.
type motPool struct {
	stop     chan struct{} // closed by shutdown
	stopOnce sync.Once
	start    chan struct{} // one token per background worker per phase
	wg       sync.WaitGroup
	next     atomic.Int32

	// Phase-shared state, written by the caller before the start tokens
	// are sent (the sends publish it) and cleared when the phase ends so
	// the pool never outlives-references the Network.
	nw    *Network
	ncomp int32
	base  int64 // phase start cycle
}

// work is the body of one background worker goroutine.
func (p *motPool) work(shardIdx int) {
	for {
		select {
		case <-p.stop:
			return
		case <-p.start:
		}
		p.runShard(shardIdx)
		p.wg.Done()
	}
}

// runShard advances components on the given shard until the phase's
// component cursor is exhausted. Singleton components are resolved
// analytically — the same closed form as the serial router's fast path
// (pathLen+1 cycles, pathLen hops, one service, no collisions, no
// backlog) — so only contended components pay for the cycle loop.
func (p *motPool) runShard(shardIdx int) {
	nw := p.nw
	sh := &nw.shards[shardIdx]
	for {
		c := p.next.Add(1) - 1
		if c >= p.ncomp {
			return
		}
		end := nw.compEnd[c]
		beg := int32(0)
		if c > 0 {
			beg = nw.compEnd[c-1]
		}
		if end-beg == 1 {
			pi := nw.compPkts[beg]
			pathLen := int64(nw.pktEnd[pi] - nw.pktCur[pi])
			nw.granted[pi] = true
			sh.hops += pathLen
			sh.served++
			if pathLen+1 > sh.elapsed {
				sh.elapsed = pathLen + 1
			}
			continue
		}
		nw.advance(sh, nw.compPkts[beg:end], p.base)
	}
}

// SetParallelism reconfigures the router's worker count: 0 consults the
// PRAMSIM_PARALLEL environment variable (absent/off → serial), 1 forces
// the serial reference router, > 1 uses exactly that many workers, < 0
// uses GOMAXPROCS. Counts above GOMAXPROCS are honored, not clamped: they
// oversubscribe the scheduler (and size a claim-set shard per worker),
// which is deliberate for interleaving tests but pointless for speed.
// Must not be called concurrently with RoutePhase. Both routers produce
// bit-for-bit identical grants, cycles and Stats, so the knob is purely
// about wall-clock speed.
func (nw *Network) SetParallelism(workers int) {
	workers = resolveParallelism(workers)
	if workers == nw.par {
		return
	}
	if nw.pool != nil {
		// Worker-count change: retire the old pool's goroutines.
		nw.pool.shutdown()
		nw.pool = nil
	}
	nw.par = workers
	if len(nw.shards) < workers {
		grown := make([]shard, workers)
		copy(grown, nw.shards)
		nw.shards = grown
	}
}

// resolveParallelism maps the Config.Parallelism / SetParallelism encoding
// to a concrete worker count ≥ 1.
func resolveParallelism(p int) int {
	if p == 0 {
		p = envParallelism()
	}
	if p < 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	return p
}

// envParallelism reads the PRAMSIM_PARALLEL environment variable: an
// integer worker count, or "on"/"true"/"max" for GOMAXPROCS; unset, empty,
// "off", "false" or "0" select the serial router. Any other value panics:
// the old silent fall-back to serial meant a typo'd knob (e.g. "four",
// "-2") made CI's parallel-equivalence runs test nothing while reporting
// green (quorum's PRAMSIM_ENGINES follows the same contract).
func envParallelism() int {
	switch v := os.Getenv("PRAMSIM_PARALLEL"); v {
	case "", "off", "false", "0":
		return 1
	case "on", "true", "max":
		return runtime.GOMAXPROCS(0)
	default:
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			panic(fmt.Sprintf(
				"mot: PRAMSIM_PARALLEL=%q is not a valid worker count (want an integer >= 1, on/true/max, or off/false/0); refusing to fall back to serial routing silently", v))
		}
		return n
	}
}

// ensurePool lazily starts the background workers (the calling goroutine
// is worker 0, so par−1 goroutines are spawned).
func (nw *Network) ensurePool() *motPool {
	if nw.pool == nil {
		p := &motPool{
			stop:  make(chan struct{}),
			start: make(chan struct{}, nw.par-1),
		}
		for i := 1; i < nw.par; i++ {
			go p.work(i)
		}
		// Stop the workers when the Network is collected. The cleanup must
		// not capture nw (that would keep it alive forever), and workers
		// reach nw only via p.nw, which is cleared between phases.
		runtime.AddCleanup(nw, (*motPool).shutdown, p)
		nw.pool = p
	}
	return nw.pool
}

// shutdown retires the pool's background workers; safe to call twice (a
// pool replaced by SetParallelism is shut down eagerly, and the Network's
// runtime cleanup fires for it again at collection time).
func (p *motPool) shutdown() {
	p.stopOnce.Do(func() { close(p.stop) })
}

// partition groups the active list (already in priority order) into
// tree-connectivity components and returns their count: a union-find pass
// over the 2·side tree nodes plus the phase's interned module nodes,
// followed by a numbering pass that labels components in order of first
// appearance (priority order) and counts packets per component. On return
// compOf[j] is the component id of active[j] and compCnt[id] its packet
// count. Both routers call this: the serial one to peel off singleton
// components analytically, the parallel one to additionally dispatch the
// contended components to the worker pool.
//
//pram:hotpath
func (nw *Network) partition(active []int32) int {
	side := nw.topo.Side
	// --- Union-find over 2·side tree nodes + modCount module nodes. ---
	nodes := 2*side + int(nw.modCount)
	if len(nw.ufParent) < nodes {
		nw.ufParent = make([]int32, nodes)
		nw.ufSize = make([]int32, nodes)
		nw.ufStamp = make([]int64, nodes)
	}
	modBase := int32(2 * side)
	for _, pi := range active {
		t0, t1, t2 := nw.pktTrees[3*pi], nw.pktTrees[3*pi+1], nw.pktTrees[3*pi+2]
		r := nw.ufUnion(nw.ufFind(t0), nw.ufFind(t1))
		if t2 >= 0 {
			r = nw.ufUnion(r, nw.ufFind(t2))
		}
		nw.ufUnion(r, nw.ufFind(modBase+nw.pktMod[pi]))
	}
	// --- Number components in order of first appearance (priority order),
	// counting packets per component. The root's size field is repurposed
	// as −(id+1) once all unions are done. ---
	compCnt := nw.compCnt[:0]
	compOf := nw.compOf[:0]
	for _, pi := range active {
		r := nw.ufFind(nw.pktTrees[3*pi])
		var id int32
		if s := nw.ufSize[r]; s >= 0 {
			id = int32(len(compCnt))
			nw.ufSize[r] = -id - 1
			compCnt = append(compCnt, 0)
		} else {
			id = -s - 1
		}
		compCnt[id]++
		compOf = append(compOf, id)
	}
	nw.compCnt, nw.compOf = compCnt, compOf
	return len(compCnt)
}

// routeParallel advances one phase's packets concurrently: partition the
// active list into tree-connectivity components, dispatch the components
// to the worker pool, and merge the shard accumulators. Falls back to the
// serial loop when everything is one component; workers resolve singleton
// components analytically (see runShard) just like the serial router.
//
//pram:hotpath
func (nw *Network) routeParallel(active []int32, start int64) int64 {
	ncomp := nw.partition(active)
	compCnt, compOf := nw.compCnt, nw.compOf
	if ncomp == 1 {
		sh := &nw.shards[0]
		sh.begin()
		nw.advance(sh, active, start)
		return nw.merge(nw.shards[:1], start)
	}
	// --- Counting sort: group packet indices by component, preserving
	// priority order within each. compCnt becomes the fill cursors. ---
	nw.compEnd = growSlice(nw.compEnd, ncomp)
	off := int32(0)
	for id, c := range compCnt {
		off += c
		nw.compEnd[id] = off
		compCnt[id] = off - c
	}
	nw.compPkts = growSlice(nw.compPkts, len(active))
	for j, pi := range active {
		id := compOf[j]
		nw.compPkts[compCnt[id]] = pi
		compCnt[id]++
	}
	// compCnt now holds each component's END offset (== compEnd), a side
	// effect runShard's singleton test relies on: size = end − begin.
	// --- Dispatch: caller is worker 0, background workers 1..par−1. Every
	// shard is reset (tokens are anonymous, so ANY worker may win one and
	// merge reads them all), but only enough workers for the component
	// count are woken — a 2-component phase on an 8-way pool must not pay
	// six no-op wakeups inside the phase barrier. ---
	p := nw.ensurePool()
	for i := 0; i < nw.par; i++ {
		nw.shards[i].ensure(len(active))
		nw.shards[i].begin()
	}
	p.nw, p.ncomp, p.base = nw, int32(ncomp), start
	p.next.Store(0)
	wake := nw.par - 1
	if ncomp-1 < wake {
		wake = ncomp - 1
	}
	p.wg.Add(wake)
	for i := 0; i < wake; i++ {
		p.start <- struct{}{}
	}
	p.runShard(0)
	p.wg.Wait()
	p.nw = nil
	return nw.merge(nw.shards[:nw.par], start)
}

// ufFind returns the root of a union-find node, lazily (re)initializing
// nodes on their first touch each phase via the phase stamp and halving
// paths as it walks.
func (nw *Network) ufFind(x int32) int32 {
	if nw.ufStamp[x] != nw.phase {
		nw.ufStamp[x] = nw.phase
		nw.ufParent[x] = x
		nw.ufSize[x] = 1
		return x
	}
	for nw.ufParent[x] != x {
		nw.ufParent[x] = nw.ufParent[nw.ufParent[x]]
		x = nw.ufParent[x]
	}
	return x
}

// ufUnion links two roots by size and returns the surviving root.
func (nw *Network) ufUnion(a, b int32) int32 {
	if a == b {
		return a
	}
	if nw.ufSize[a] < nw.ufSize[b] {
		a, b = b, a
	}
	nw.ufParent[b] = a
	nw.ufSize[a] += nw.ufSize[b]
	return a
}

// growSlice resizes buf to n entries, reusing its backing array when able.
func growSlice[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}
