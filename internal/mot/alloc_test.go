package mot

import (
	"math/rand"
	"testing"

	"repro/internal/quorum"
)

// routeAttempts builds a deterministic mixed attempt set like the engine
// emits: ascending processor ids, scattered banks.
func routeAttempts(side, k int, dualRail bool, seed int64) []quorum.Attempt {
	rng := rand.New(rand.NewSource(seed))
	banks := side
	if dualRail {
		banks = 2 * side
	}
	attempts := make([]quorum.Attempt, k)
	for i := range attempts {
		attempts[i] = quorum.Attempt{
			Proc:   i,
			Module: rng.Intn(banks),
			Var:    rng.Intn(4096),
			Copy:   rng.Intn(4),
		}
	}
	return attempts
}

// TestRoutePhaseZeroAllocs locks the router's steady-state zero-allocation
// invariant across placements, policies and dual rail.
func TestRoutePhaseZeroAllocs(t *testing.T) {
	cases := []struct {
		name     string
		pl       Placement
		pol      Policy
		dualRail bool
	}{
		{"leaves-drop", ModulesAtLeaves, DropOnCollision, false},
		{"leaves-queue", ModulesAtLeaves, QueueOnCollision, false},
		{"leaves-drop-dual", ModulesAtLeaves, DropOnCollision, true},
		{"roots-drop", ModulesAtRoots, DropOnCollision, false},
	}
	if raceEnabled {
		t.Skip("allocation invariants are measured without the race detector")
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			nw := NewNetwork(64, c.pl, Config{Policy: c.pol, DualRail: c.dualRail, Parallelism: 1})
			attempts := routeAttempts(64, 64, c.dualRail, 9)
			for i := 0; i < 3; i++ { // grow the arenas
				nw.RoutePhase(attempts)
			}
			if avg := testing.AllocsPerRun(20, func() {
				nw.RoutePhase(attempts)
			}); avg != 0 {
				t.Errorf("RoutePhase allocates %.1f/op in steady state, want 0", avg)
			}
		})
	}
}

// TestRoutePhaseParallelZeroAllocs extends the zero-allocation invariant
// to the parallel router: once the pool's workers, shards, union-find and
// component buffers have warmed, a phase performs zero heap allocations
// across ALL goroutines (AllocsPerRun counts process-wide mallocs).
func TestRoutePhaseParallelZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation invariants are measured without the race detector")
	}
	cases := []struct {
		name     string
		pl       Placement
		pol      Policy
		dualRail bool
		workers  int
	}{
		{"leaves-drop-w2", ModulesAtLeaves, DropOnCollision, false, 2},
		{"leaves-queue-w4", ModulesAtLeaves, QueueOnCollision, false, 4},
		{"leaves-drop-dual-w4", ModulesAtLeaves, DropOnCollision, true, 4},
		{"roots-drop-w3", ModulesAtRoots, DropOnCollision, false, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			nw := NewNetwork(64, c.pl, Config{Policy: c.pol, DualRail: c.dualRail, Parallelism: c.workers})
			attempts := routeAttempts(64, 64, c.dualRail, 9)
			for i := 0; i < 5; i++ { // grow the arenas, warm the pool
				nw.RoutePhase(attempts)
			}
			if avg := testing.AllocsPerRun(20, func() {
				nw.RoutePhase(attempts)
			}); avg != 0 {
				t.Errorf("parallel RoutePhase allocates %.1f/op in steady state, want 0", avg)
			}
		})
	}
}

// TestDensePathMatchesEdgeIDs locks the dense edge indexing to the packed
// uint64 edge ids: paths generated both ways must agree position by
// position, with equal dense indices exactly where the packed ids are equal.
func TestDensePathMatchesEdgeIDs(t *testing.T) {
	for _, pl := range []Placement{ModulesAtLeaves, ModulesAtRoots} {
		topo := NewTopology(16, pl)
		rng := rand.New(rand.NewSource(3))
		denseOf := map[uint64]int32{}
		keyOf := map[int32]uint64{}
		check := func(packed []uint64, dense []int32) {
			t.Helper()
			if len(packed) != len(dense) {
				t.Fatalf("path lengths differ: %d vs %d", len(packed), len(dense))
			}
			for i, k := range packed {
				d := dense[i]
				if int64(d) < 0 || int64(d) >= int64(topo.DenseEdgeSpace()) {
					t.Fatalf("dense index %d out of range [0,%d)", d, topo.DenseEdgeSpace())
				}
				if prev, ok := denseOf[k]; ok && prev != d {
					t.Fatalf("packed id %x mapped to dense %d and %d", k, prev, d)
				}
				if prev, ok := keyOf[d]; ok && prev != k {
					t.Fatalf("dense id %d mapped to packed %x and %x", d, prev, k)
				}
				denseOf[k] = d
				keyOf[d] = k
			}
		}
		for trial := 0; trial < 50; trial++ {
			proc, row, col := rng.Intn(16), rng.Intn(16), rng.Intn(16)
			check(topo.requestPath(proc, row, col),
				topo.appendRequestPathDense(nil, proc, row, col))
			if pl == ModulesAtLeaves {
				check(topo.requestPathRowRail(proc, row, col),
					topo.appendRequestPathRowRailDense(nil, proc, row, col))
			}
		}
	}
}
