package mot

import (
	"testing"

	"repro/internal/quorum"
)

func TestRowRailPathShape(t *testing.T) {
	topo := NewTopology(16, ModulesAtLeaves)
	p := topo.requestPathRowRail(3, 9, 12)
	if len(p) != 6*topo.Depth {
		t.Errorf("row-rail path length = %d, want %d", len(p), 6*topo.Depth)
	}
	// Directed edges must be distinct (forward and reply use opposite
	// directions).
	seen := map[uint64]bool{}
	for _, e := range p {
		if seen[e] {
			t.Fatalf("edge %x repeated", e)
		}
		seen[e] = true
	}
}

func TestRowRailAvoidsColumnTreeOfTarget(t *testing.T) {
	topo := NewTopology(16, ModulesAtLeaves)
	colPath := topo.requestPath(3, 9, 12)
	rowPath := topo.requestPathRowRail(3, 9, 12)
	// The column rail serializes in CT(12); the row rail must never touch
	// CT(12) — that is what makes the rails independent.
	usesTree := func(path []uint64, kind, tree int) bool {
		for _, e := range path {
			k := int(e >> 63)
			tr := int(e>>40) & ((1 << 22) - 1)
			if k == kind && tr == tree {
				return true
			}
		}
		return false
	}
	if !usesTree(colPath, kindCol, 12) {
		t.Error("column rail does not use CT(12)?")
	}
	if usesTree(rowPath, kindCol, 12) {
		t.Error("row rail touches the target's column tree")
	}
	if !usesTree(rowPath, kindRow, 9) {
		t.Error("row rail does not ride RT(9)")
	}
}

func TestDualRailSinglePacket(t *testing.T) {
	side := 16
	nw := NewNetwork(side, ModulesAtLeaves, Config{DualRail: true})
	// Bank id ≥ side selects a row bank.
	granted, cycles, _ := nw.RoutePhase([]quorum.Attempt{
		{Proc: 2, Module: side + 7, Var: 11, Copy: 0},
	})
	if !granted[0] {
		t.Fatal("row-rail packet not granted")
	}
	if cycles != int64(6*4+1) {
		t.Errorf("cycles = %d, want %d", cycles, 6*4+1)
	}
}

func TestDualRailDoublesIndependentBanks(t *testing.T) {
	side := 16
	// Two packets, one per rail, aimed at grid coordinates that would
	// conflict on a single rail: same column bank vs row bank of the same
	// index. With dual rail both must be granted in one phase.
	nw := NewNetwork(side, ModulesAtLeaves, Config{
		DualRail: true,
		RowOf:    func(v, cp int) int { return 5 },
	})
	attempts := []quorum.Attempt{
		{Proc: 1, Module: 7, Var: 40, Copy: 0},        // column bank 7
		{Proc: 9, Module: side + 5, Var: 41, Copy: 0}, // row bank 5
	}
	granted, _, _ := nw.RoutePhase(attempts)
	if !granted[0] || !granted[1] {
		t.Errorf("dual-rail packets not both granted: %v", granted)
	}
}

func TestSingleRailSameBankCollides(t *testing.T) {
	side := 16
	nw := NewNetwork(side, ModulesAtLeaves, Config{
		RowOf: func(v, cp int) int { return 5 },
	})
	attempts := []quorum.Attempt{
		{Proc: 1, Module: 7, Var: 40, Copy: 0},
		{Proc: 9, Module: 7, Var: 41, Copy: 0},
	}
	granted, _, _ := nw.RoutePhase(attempts)
	if granted[0] && granted[1] {
		t.Error("same-column packets should collide on a single rail")
	}
}
