package mot

import (
	"strings"
	"testing"

	"repro/internal/quorum"
)

func TestTopologyCounts(t *testing.T) {
	topo := NewTopology(8, ModulesAtLeaves)
	if topo.Depth != 3 {
		t.Errorf("depth = %d, want 3", topo.Depth)
	}
	// 64 leaves + 2·8·7 = 112 switches = 176 nodes.
	if topo.Nodes() != 176 {
		t.Errorf("nodes = %d, want 176", topo.Nodes())
	}
	if topo.Switches() != 112 {
		t.Errorf("switches = %d, want 112", topo.Switches())
	}
}

func TestTopologyPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTopology(12) did not panic")
		}
	}()
	NewTopology(12, ModulesAtLeaves)
}

// TestTopologyDenseEdgeCeiling pins the int32 dense-edge boundary: MaxSide
// is the largest side whose 8a²−8a directed edges fit int32, and the next
// power of two must be refused loudly instead of wrapping dense indices.
func TestTopologyDenseEdgeCeiling(t *testing.T) {
	topo := NewTopology(MaxSide, ModulesAtLeaves)
	space := int64(4*topo.Side) * int64(2*topo.Side-2)
	if space != int64(topo.DenseEdgeSpace()) || space > 1<<31-1 {
		t.Fatalf("side %d: dense edge space %d (DenseEdgeSpace %d) must fit int32", MaxSide, space, topo.DenseEdgeSpace())
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("NewTopology(%d) did not panic", 2*MaxSide)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "dense-edge ceiling") || !strings.Contains(msg, "16384") {
			t.Fatalf("ceiling panic message %q does not name the ceiling and the max side", r)
		}
	}()
	NewTopology(2*MaxSide, ModulesAtLeaves)
}

func TestRequestPathLengths(t *testing.T) {
	leaves := NewTopology(16, ModulesAtLeaves)
	p := leaves.requestPath(3, 9, 12)
	if len(p) != 6*leaves.Depth {
		t.Errorf("leaves path length = %d, want %d", len(p), 6*leaves.Depth)
	}
	if leaves.servicePos() != 3*leaves.Depth {
		t.Errorf("service pos = %d, want %d", leaves.servicePos(), 3*leaves.Depth)
	}
	roots := NewTopology(16, ModulesAtRoots)
	p = roots.requestPath(3, 0, 12)
	if len(p) != 4*roots.Depth {
		t.Errorf("roots path length = %d, want %d", len(p), 4*roots.Depth)
	}
	if roots.servicePos() != 2*roots.Depth {
		t.Errorf("service pos = %d, want %d", roots.servicePos(), 2*roots.Depth)
	}
}

func TestRequestPathEdgesDistinctPerLeg(t *testing.T) {
	topo := NewTopology(8, ModulesAtLeaves)
	p := topo.requestPath(1, 5, 6)
	seen := map[uint64]int{}
	for _, e := range p {
		seen[e]++
	}
	// Forward and reply legs reuse nodes but in opposite directions, so
	// every directed edge appears exactly once.
	for e, k := range seen {
		if k != 1 {
			t.Errorf("edge %x appears %d times", e, k)
		}
	}
}

func TestSinglePacketLatency(t *testing.T) {
	nw := NewNetwork(16, ModulesAtLeaves, Config{})
	granted, cycles, load := nw.RoutePhase([]quorum.Attempt{
		{Proc: 2, Module: 7, Var: 11, Copy: 0},
	})
	if !granted[0] {
		t.Fatal("lone packet not granted")
	}
	// 6d hops + 1 service cycle, d = 4.
	want := int64(6*4 + 1)
	if cycles != want {
		t.Errorf("cycles = %d, want %d", cycles, want)
	}
	if load != 1 {
		t.Errorf("load = %d, want 1", load)
	}
}

func TestRootPlacementLatency(t *testing.T) {
	nw := NewNetwork(16, ModulesAtRoots, Config{})
	granted, cycles, _ := nw.RoutePhase([]quorum.Attempt{
		{Proc: 0, Module: 9, Var: 3, Copy: 1},
	})
	if !granted[0] {
		t.Fatal("lone packet not granted")
	}
	want := int64(4*4 + 1)
	if cycles != want {
		t.Errorf("cycles = %d, want %d", cycles, want)
	}
}

func TestDisjointPacketsAllGranted(t *testing.T) {
	nw := NewNetwork(16, ModulesAtLeaves, Config{})
	// Distinct processors, distinct banks: no shared edges.
	attempts := []quorum.Attempt{
		{Proc: 0, Module: 1, Var: 1, Copy: 0},
		{Proc: 5, Module: 9, Var: 2, Copy: 0},
		{Proc: 11, Module: 14, Var: 3, Copy: 0},
	}
	granted, cycles, _ := nw.RoutePhase(attempts)
	for i, g := range granted {
		if !g {
			t.Errorf("packet %d refused on a collision-free phase", i)
		}
	}
	if cycles != 6*4+1 {
		t.Errorf("parallel phase took %d cycles, want %d", cycles, 6*4+1)
	}
}

func TestColumnCollisionDropsLoser(t *testing.T) {
	nw := NewNetwork(16, ModulesAtLeaves, Config{})
	// Same bank/column, same variable row targets would still share the
	// column-tree ascent: lower proc id must win, the other be refused.
	attempts := []quorum.Attempt{
		{Proc: 3, Module: 5, Var: 40, Copy: 0},
		{Proc: 9, Module: 5, Var: 41, Copy: 0},
	}
	granted, _, _ := nw.RoutePhase(attempts)
	if !granted[0] {
		t.Error("higher-priority packet (proc 3) refused")
	}
	if granted[1] {
		t.Error("lower-priority packet granted despite column collision")
	}
	if nw.Stats().Collisions == 0 {
		t.Error("collision not counted")
	}
}

func TestQueuePolicyGrantsEverything(t *testing.T) {
	nw := NewNetwork(16, ModulesAtLeaves, Config{Policy: QueueOnCollision})
	attempts := []quorum.Attempt{
		{Proc: 3, Module: 5, Var: 40, Copy: 0},
		{Proc: 9, Module: 5, Var: 41, Copy: 0},
		{Proc: 12, Module: 5, Var: 42, Copy: 0},
	}
	granted, cycles, _ := nw.RoutePhase(attempts)
	for i, g := range granted {
		if !g {
			t.Errorf("packet %d refused under queue policy", i)
		}
	}
	if cycles <= 6*4+1 {
		t.Errorf("queued phase took %d cycles, should exceed the uncontended %d", cycles, 6*4+1)
	}
}

func TestModuleServiceSerializes(t *testing.T) {
	// Two packets to the SAME module (same var, same copy can't happen via
	// the engine, so use same bank and force the same row via RowOf).
	nw := NewNetwork(16, ModulesAtLeaves, Config{
		Policy: QueueOnCollision,
		RowOf:  func(v, cp int) int { return 4 },
	})
	attempts := []quorum.Attempt{
		{Proc: 1, Module: 5, Var: 40, Copy: 0},
		{Proc: 9, Module: 5, Var: 41, Copy: 0},
	}
	granted, _, load := nw.RoutePhase(attempts)
	if !granted[0] || !granted[1] {
		t.Fatal("queue policy must grant both")
	}
	if load != 2 {
		t.Errorf("module load = %d, want 2", load)
	}
	if nw.Stats().Served != 2 {
		t.Errorf("served = %d, want 2", nw.Stats().Served)
	}
}

func TestStatsAccumulateAcrossPhases(t *testing.T) {
	nw := NewNetwork(8, ModulesAtLeaves, Config{})
	for i := 0; i < 3; i++ {
		nw.RoutePhase([]quorum.Attempt{{Proc: i, Module: i, Var: i, Copy: 0}})
	}
	st := nw.Stats()
	if st.Served != 3 {
		t.Errorf("served = %d, want 3", st.Served)
	}
	if st.Hops != 3*6*3 { // 3 packets × 6d hops, d=3
		t.Errorf("hops = %d, want %d", st.Hops, 3*6*3)
	}
	if st.Cycles != 3*(6*3+1) {
		t.Errorf("cycles = %d, want %d", st.Cycles, 3*(6*3+1))
	}
}

func TestEmptyPhaseFree(t *testing.T) {
	nw := NewNetwork(8, ModulesAtLeaves, Config{})
	granted, cycles, load := nw.RoutePhase(nil)
	if len(granted) != 0 || cycles != 0 || load != 0 {
		t.Error("empty phase should be free")
	}
}

func TestProcBeyondRootsPanics(t *testing.T) {
	nw := NewNetwork(8, ModulesAtLeaves, Config{})
	defer func() {
		if recover() == nil {
			t.Error("oversized proc id did not panic")
		}
	}()
	nw.RoutePhase([]quorum.Attempt{{Proc: 8, Module: 0}})
}

func TestPlacementString(t *testing.T) {
	if ModulesAtLeaves.String() != "modules-at-leaves" || ModulesAtRoots.String() != "modules-at-roots" {
		t.Error("Placement.String wrong")
	}
}
