// Differential test harness: the parallel router is only correct if it is
// BIT-FOR-BIT the serial reference router — same grants, same cycle
// counts, same loads, same Stats — on every topology, policy, rail and
// schedule. These tests drive serial and parallel networks through
// identical phase sequences and demand exact equality, at the RoutePhase
// level and through the full quorum machine (where retry feedback, the
// two-stage schedule and bandwidth changes amplify any divergence across
// steps).
package mot_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/mot"
	"repro/internal/quorum"
)

// diffAttempts draws one phase's attempt set. Unlike the engine's
// schedules it may emit duplicate and descending processor ids, exercising
// the router's sort path and priority tie-breaking.
func diffAttempts(rng *rand.Rand, side int, dualRail bool) []quorum.Attempt {
	banks := side
	if dualRail {
		banks = 2 * side
	}
	k := 1 + rng.Intn(2*side)
	attempts := make([]quorum.Attempt, k)
	for i := range attempts {
		attempts[i] = quorum.Attempt{
			Proc:   rng.Intn(side),
			Module: rng.Intn(banks),
			Var:    rng.Intn(4096),
			Copy:   rng.Intn(8),
			Write:  rng.Intn(2) == 0,
		}
	}
	return attempts
}

// runDifferentialPhases drives a serial and a parallel network through the
// same phase sequence and fails on the first observable divergence.
func runDifferentialPhases(t *testing.T, side int, pl mot.Placement, cfg mot.Config, workers int, seed int64, phases int) {
	t.Helper()
	serialCfg := cfg
	serialCfg.Parallelism = 1
	parCfg := cfg
	parCfg.Parallelism = workers
	ser := mot.NewNetwork(side, pl, serialCfg)
	par := mot.NewNetwork(side, pl, parCfg)
	if par.Parallelism() != workers {
		t.Fatalf("parallel network resolved %d workers, want %d", par.Parallelism(), workers)
	}
	rng := rand.New(rand.NewSource(seed))
	for phase := 0; phase < phases; phase++ {
		attempts := diffAttempts(rng, side, cfg.DualRail)
		if phase == phases/2 {
			// Mid-sequence bandwidth change, like the two-stage schedule's
			// pipelined stage 2.
			ser.SetBandwidth(3)
			par.SetBandwidth(3)
		}
		gs, cs, ls := ser.RoutePhase(attempts)
		gp, cp, lp := par.RoutePhase(attempts)
		if cs != cp || ls != lp {
			t.Fatalf("phase %d: serial (cycles=%d load=%d) != parallel (cycles=%d load=%d)",
				phase, cs, ls, cp, lp)
		}
		for i := range gs {
			if gs[i] != gp[i] {
				t.Fatalf("phase %d: grant[%d] serial=%v parallel=%v", phase, i, gs[i], gp[i])
			}
		}
	}
	if ser.Stats() != par.Stats() {
		t.Fatalf("stats diverged:\n serial   %+v\n parallel %+v", ser.Stats(), par.Stats())
	}
}

// TestDifferentialRoutePhase sweeps randomized attempt streams over
// placements, policies, rails, module capacities and worker counts,
// asserting the parallel router reproduces the serial router exactly.
func TestDifferentialRoutePhase(t *testing.T) {
	type tc struct {
		pl       mot.Placement
		pol      mot.Policy
		dualRail bool
		capacity int
	}
	cases := []tc{
		{mot.ModulesAtLeaves, mot.DropOnCollision, false, 1},
		{mot.ModulesAtLeaves, mot.QueueOnCollision, false, 1},
		{mot.ModulesAtLeaves, mot.DropOnCollision, true, 1},
		{mot.ModulesAtLeaves, mot.QueueOnCollision, true, 2},
		{mot.ModulesAtRoots, mot.DropOnCollision, false, 1},
		{mot.ModulesAtRoots, mot.QueueOnCollision, false, 2},
	}
	for _, side := range []int{8, 16, 32} {
		for ci, c := range cases {
			for _, workers := range []int{2, 3, 8} {
				name := fmt.Sprintf("side=%d/case=%d/pl=%v/pol=%d/dual=%v/w=%d",
					side, ci, c.pl, c.pol, c.dualRail, workers)
				t.Run(name, func(t *testing.T) {
					for seed := int64(1); seed <= 4; seed++ {
						runDifferentialPhases(t, side, c.pl,
							mot.Config{Policy: c.pol, DualRail: c.dualRail, ModuleCapacity: c.capacity},
							workers, seed*977, 8)
					}
				})
			}
		}
	}
}

// TestDifferentialSetParallelismMidStream switches one network between
// serial and parallel routing between phases; the cycle-stamped arenas
// must carry over without contaminating either mode.
func TestDifferentialSetParallelismMidStream(t *testing.T) {
	const side = 16
	ser := mot.NewNetwork(side, mot.ModulesAtLeaves, mot.Config{Parallelism: 1})
	mix := mot.NewNetwork(side, mot.ModulesAtLeaves, mot.Config{Parallelism: 1})
	rng := rand.New(rand.NewSource(11))
	for phase := 0; phase < 12; phase++ {
		mix.SetParallelism(1 + phase%4) // 1,2,3,4,1,...
		attempts := diffAttempts(rng, side, false)
		gs, cs, ls := ser.RoutePhase(attempts)
		gm, cm, lm := mix.RoutePhase(attempts)
		if cs != cm || ls != lm {
			t.Fatalf("phase %d (workers=%d): cycles/load diverged: %d/%d vs %d/%d",
				phase, mix.Parallelism(), cs, ls, cm, lm)
		}
		for i := range gs {
			if gs[i] != gm[i] {
				t.Fatalf("phase %d: grant[%d] diverged", phase, i)
			}
		}
	}
	if ser.Stats() != mix.Stats() {
		t.Fatalf("stats diverged:\n serial %+v\n mixed  %+v", ser.Stats(), mix.Stats())
	}
}

// randomBatch draws one P-RAM step with mixed reads, writes and no-ops
// over a small hot address range (maximizing conflicts and retries).
func randomBatch(rng *rand.Rand, n, cells int) model.Batch {
	batch := model.NewBatch(n)
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			batch[i] = model.Request{Proc: i, Op: model.OpRead, Addr: rng.Intn(cells)}
		case 1:
			batch[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: rng.Intn(cells), Value: model.Word(rng.Int63n(1 << 20))}
		default:
			batch[i] = model.Request{Proc: i, Op: model.OpNone}
		}
	}
	return batch
}

// stepFingerprint collapses a StepReport to its comparable fields (Values
// aliases a reusable buffer, so it is copied into the fingerprint string).
func stepFingerprint(rep model.StepReport) string {
	return fmt.Sprintf("t=%d ph=%d cyc=%d copies=%d cont=%d err=%v vals=%v",
		rep.Time, rep.Phases, rep.NetworkCycles, rep.CopyAccesses,
		rep.ModuleContention, rep.Err, rep.Values)
}

// TestDifferentialMachineSteps runs whole quorum-machine step streams —
// priority mode, dual rail and the two-stage schedule — on a serial and a
// parallel MOT2D and compares every StepReport and the final memory image.
// Retries feed each phase's attempt set from the previous phase's grants,
// so any single-phase divergence compounds and is caught here.
func TestDifferentialMachineSteps(t *testing.T) {
	cases := []struct {
		name string
		cfg  core.MOTConfig
	}{
		{"plain", core.MOTConfig{}},
		{"dualrail", core.MOTConfig{DualRail: true}},
		{"twostage", core.MOTConfig{TwoStage: true}},
		{"dualrail-twostage", core.MOTConfig{DualRail: true, TwoStage: true}},
	}
	const n, steps = 32, 6
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			serCfg := c.cfg
			serCfg.Parallelism = 1
			parCfg := c.cfg
			parCfg.Parallelism = 4
			ser := core.NewMOT2D(n, serCfg)
			par := core.NewMOT2D(n, parCfg)
			rng := rand.New(rand.NewSource(23))
			cells := n * 2
			for s := 0; s < steps; s++ {
				batch := randomBatch(rng, n, cells)
				fs := stepFingerprint(ser.ExecuteStep(batch))
				fp := stepFingerprint(par.ExecuteStep(batch))
				if fs != fp {
					t.Fatalf("step %d diverged:\n serial   %s\n parallel %s", s, fs, fp)
				}
			}
			for a := 0; a < cells; a++ {
				if vs, vp := ser.ReadCell(a), par.ReadCell(a); vs != vp {
					t.Fatalf("cell %d: serial=%d parallel=%d", a, vs, vp)
				}
			}
			if ss, sp := ser.Net.Stats(), par.Net.Stats(); ss != sp {
				t.Fatalf("network stats diverged:\n serial   %+v\n parallel %+v", ss, sp)
			}
		})
	}
}
