//go:build !race

package mot

// raceEnabled reports that the race detector is active.
const raceEnabled = false
