package mot

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/quorum"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// goldenPhase is the recorded outcome of one RoutePhase call.
type goldenPhase struct {
	Granted []bool `json:"granted"`
	Cycles  int64  `json:"cycles"`
	MaxLoad int    `json:"maxLoad"`
}

// goldenNetTrace is the recorded outcome of a whole scenario.
type goldenNetTrace struct {
	Phases []goldenPhase `json:"phases"`
	Stats  Stats         `json:"stats"`
}

// netScenario drives a network through a deterministic sequence of phases
// drawn from seed and records every observable output. It is the
// implementation-independent contract the router refactors must preserve.
func netScenario(side int, pl Placement, pol Policy, dualRail bool, seed int64) goldenNetTrace {
	nw := NewNetwork(side, pl, Config{Policy: pol, DualRail: dualRail})
	rng := rand.New(rand.NewSource(seed))
	var tr goldenNetTrace
	banks := side
	if dualRail {
		banks = 2 * side
	}
	for phase := 0; phase < 6; phase++ {
		k := 1 + rng.Intn(side)
		attempts := make([]quorum.Attempt, 0, k)
		used := map[int]bool{}
		for i := 0; i < k; i++ {
			p := rng.Intn(side)
			if used[p] {
				continue // one attempt per processor, like the engine
			}
			used[p] = true
			attempts = append(attempts, quorum.Attempt{
				Proc:   p,
				Module: rng.Intn(banks),
				Var:    rng.Intn(1024),
				Copy:   rng.Intn(4),
				Write:  rng.Intn(2) == 0,
			})
		}
		granted, cycles, load := nw.RoutePhase(attempts)
		g := make([]bool, len(granted))
		copy(g, granted)
		tr.Phases = append(tr.Phases, goldenPhase{Granted: g, Cycles: cycles, MaxLoad: load})
	}
	tr.Stats = nw.Stats()
	return tr
}

// TestGoldenRoutePhase locks RoutePhase's grants, cycle counts, loads and
// stats to the recorded behavior of the reference implementation, across
// placements, policies, dual-rail and seeds.
func TestGoldenRoutePhase(t *testing.T) {
	type cfg struct {
		name     string
		side     int
		pl       Placement
		pol      Policy
		dualRail bool
	}
	cfgs := []cfg{
		{"leaves-drop", 16, ModulesAtLeaves, DropOnCollision, false},
		{"leaves-queue", 16, ModulesAtLeaves, QueueOnCollision, false},
		{"leaves-drop-dual", 16, ModulesAtLeaves, DropOnCollision, true},
		{"leaves-queue-dual", 16, ModulesAtLeaves, QueueOnCollision, true},
		{"roots-drop", 16, ModulesAtRoots, DropOnCollision, false},
		{"roots-queue", 16, ModulesAtRoots, QueueOnCollision, false},
	}
	got := map[string]goldenNetTrace{}
	for _, c := range cfgs {
		for _, seed := range []int64{1, 7, 42} {
			got[fmt.Sprintf("%s/seed=%d", c.name, seed)] =
				netScenario(c.side, c.pl, c.pol, c.dualRail, seed)
		}
	}
	path := filepath.Join("testdata", "golden_routephase.json")
	if *updateGolden {
		writeGolden(t, path, got)
		return
	}
	var want map[string]goldenNetTrace
	readGolden(t, path, &want)
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("scenario %s missing", name)
			continue
		}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("scenario %s diverged from golden trace:\n got %+v\nwant %+v", name, g, w)
		}
	}
	if len(got) != len(want) {
		t.Errorf("scenario count %d != golden %d", len(got), len(want))
	}
}

func writeGolden(t *testing.T, path string, v any) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}

func readGolden(t *testing.T, path string, v any) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatal(err)
	}
}
