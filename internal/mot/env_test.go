package mot

import (
	"runtime"
	"testing"
)

// TestEnvParallelism pins the PRAMSIM_PARALLEL encoding, including the
// loud failure on malformed values: a typo'd knob silently selecting the
// serial router would let CI's parallel-equivalence jobs test nothing.
func TestEnvParallelism(t *testing.T) {
	set := func(v string) { t.Setenv("PRAMSIM_PARALLEL", v) }
	for _, c := range []struct {
		v    string
		want int
	}{
		{"", 1}, {"off", 1}, {"false", 1}, {"0", 1},
		{"3", 3},
		{"on", runtime.GOMAXPROCS(0)}, {"max", runtime.GOMAXPROCS(0)},
	} {
		set(c.v)
		if got := envParallelism(); got != c.want {
			t.Errorf("PRAMSIM_PARALLEL=%q: workers = %d, want %d", c.v, got, c.want)
		}
	}
	for _, bad := range []string{"four", "-2", "1.5", "2x"} {
		set(bad)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PRAMSIM_PARALLEL=%q did not fail loudly", bad)
				}
			}()
			envParallelism()
		}()
	}
	// Explicit SetParallelism arguments never consult the env.
	set("garbage")
	if got := resolveParallelism(2); got != 2 {
		t.Errorf("resolveParallelism(2) = %d with garbage env, want 2", got)
	}
}
