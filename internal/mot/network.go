package mot

import (
	"cmp"
	"slices"

	"repro/internal/quorum"
)

// Policy selects the contention rule for request packets on tree edges.
type Policy uint8

const (
	// DropOnCollision refuses the lower-priority packet at an edge
	// conflict; the quorum engine retries it next phase. This is the
	// paper's routing rule and the default.
	DropOnCollision Policy = iota
	// QueueOnCollision makes the loser wait a cycle instead (pure
	// store-and-forward). Useful as an ablation: it trades phases for
	// longer ones.
	QueueOnCollision
)

// Config tunes the network simulation.
type Config struct {
	// ModuleCapacity is the number of requests a module can serve per
	// cycle (default 1). Requests beyond it queue at the module leaf —
	// the stage-2 pipelining of the simulation scheme.
	ModuleCapacity int
	// Policy is the tree-edge contention rule for request legs.
	Policy Policy
	// RowOf places copy `cp` of variable `v` on a grid row (needed for
	// ModulesAtLeaves; ignored for ModulesAtRoots). The memory map already
	// fixes the bank/column of every copy; the row spreads copies within
	// the bank. Must be deterministic.
	RowOf func(v, cp int) int
	// DualRail enables the row+column access of Theorem 3's remark: bank
	// ids in [0, side) are column banks (routed via the column tree), ids
	// in [side, 2·side) are ROW banks (routed via requestPathRowRail),
	// doubling the number of independent serialization points.
	DualRail bool
	// Parallelism selects how many OS workers advance a phase's
	// tree-connectivity components concurrently. 0 (the default) consults
	// the PRAMSIM_PARALLEL environment variable and falls back to the
	// serial reference router; 1 forces the serial router; values > 1 use
	// that many workers; negative values use GOMAXPROCS. The parallel
	// router is bit-for-bit identical to the serial one (see the package
	// doc and the differential tests).
	Parallelism int
}

// Stats accumulates network-level counters across phases.
type Stats struct {
	Cycles     int64 // total simulated cycles
	Hops       int64 // edge traversals
	Collisions int64 // request packets refused at a tree edge
	Served     int64 // module services completed
	MaxQueue   int   // deepest module backlog observed in any cycle
}

// Sub returns the counter deltas s−prev for a window bounded by two
// snapshots of one network's Stats. Cycles, Hops, Collisions and Served
// are monotone counters, so the differences are the window's activity;
// MaxQueue is a running maximum, not a counter — the result carries the
// current value unchanged (a per-window peak needs the per-step
// ModuleContention report instead).
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Cycles:     s.Cycles - prev.Cycles,
		Hops:       s.Hops - prev.Hops,
		Collisions: s.Collisions - prev.Collisions,
		Served:     s.Served - prev.Served,
		MaxQueue:   s.MaxQueue,
	}
}

// Network is a 2DMOT with a synchronous packet switch fabric. It implements
// quorum.Interconnect, so it slots into the quorum engine exactly where the
// complete bipartite graph of the DMMPC does — same protocol, real network.
//
// The simulation is allocation-free in steady state. Paths are materialized
// as dense edge indices (Topology.denseEdgeID) into a shared per-phase
// arena; per-cycle edge contention is a claim-set stamped with the global
// cycle counter (which never resets, so the set never needs clearing), and
// module service/load counters live in small phase-interned tables. Packet
// state is STRUCTURE-OF-ARRAYS — four parallel int32 lanes (cursor, end,
// service point, module), see the package doc's "SoA layout & claim
// resolution" section — and each cycle walks a compacted active-packet list
// of indices into those lanes. The invariant is locked in by
// TestRoutePhaseZeroAllocs; behavior is locked to the reference
// implementation by the golden-trace tests and the AoS reference router in
// reference_test.go.
//
// With Config.Parallelism > 1 a phase's packets are partitioned into
// tree-connectivity components and advanced concurrently on a bounded
// worker pool (see parallel.go); results are merged in canonical component
// order, so grants, cycle counts and Stats stay bit-for-bit identical to
// the serial router. The arenas still make a Network single-threaded from
// the caller's point of view: one phase at a time.
type Network struct {
	topo Topology
	cfg  Config

	clock int64 // global cycle counter, never reset
	stats Stats

	phase int64 // RoutePhase invocation counter; stamps the intern tables

	// shards hold the per-worker slices of the router arena: the edge
	// claim-set plus the per-component cycle-loop accumulators. shards[0]
	// doubles as the serial router's state; the pool workers own
	// shards[1:]. See parallel.go.
	shards []shard
	par    int      // resolved worker count (1 = serial reference router)
	pool   *motPool // lazily started worker pool when par > 1

	// Module interning: grid module id -> phase-local id, open addressing.
	modSlotKey   []int32
	modSlotVal   []int32
	modSlotPhase []int64
	modMask      int
	modCount     int32
	modLoad      []int32 // per phase-local module: attempts this phase
	modServed    []int64 // per phase-local module: cycle stamp of service count
	modServedCnt []int32 // per phase-local module: services this cycle

	// SoA packet state: four parallel dense int32 lanes indexed by packet
	// id (== attempt index). The cycle loop touches only these 4-byte
	// lanes plus the shared path arena, so its working set is cache-linear
	// in the compacted active order (ascending packet ids).
	pktCur []int32 // absolute index of the next edge in pathBuf
	pktEnd []int32 // absolute end-of-path offset (grant on reaching it)
	pktSrv []int32 // absolute module-service offset; −1 once served
	pktMod []int32 // phase-local module id for service accounting
	// pktPrio is the processor priority, consulted only on the cold sort
	// path (engine schedules arrive pre-sorted) — kept out of the hot
	// lanes above.
	pktPrio []int32

	// Per-phase buffers.
	active  []int32 // live packet indices in priority order, compacted per cycle
	order   []int32 // processing order when attempts arrive unsorted
	pathBuf []int32 // all packet paths, dense edge indices
	granted []bool
	// pktTrees stores, per packet, the union-find node ids of the up-to-
	// three trees its path traverses (3 entries each, −1 when unused).
	// Together with the module node they define the packet's connectivity
	// component — the unit of parallel advancement. Kept out of the hot
	// lanes so the cycle loop's working set stays minimal.
	pktTrees []int32

	// Tree-connectivity partition scratch (parallel router only).
	ufParent []int32
	ufSize   []int32
	ufStamp  []int64
	compCnt  []int32 // per component: packet count, then fill cursor
	compOf   []int32 // per active position: component id
	compEnd  []int32 // per component: end offset into compPkts
	compPkts []int32 // packet indices grouped by component, priority order
}

// edgeSlot is one entry of the cycle-stamped edge claim-set.
type edgeSlot struct {
	cycle int64
	key   int32
}

// NewNetwork builds a 2DMOT network simulator over an a×a grid.
func NewNetwork(side int, pl Placement, cfg Config) *Network {
	if cfg.ModuleCapacity <= 0 {
		cfg.ModuleCapacity = 1
	}
	if pl == ModulesAtLeaves && cfg.RowOf == nil {
		cfg.RowOf = func(v, cp int) int { return int(mix64(uint64(v)*31+uint64(cp))) & (side - 1) }
	}
	topo := NewTopology(side, pl) // panics if side breaches the int32 dense-edge ceiling
	nw := &Network{topo: topo, cfg: cfg, shards: make([]shard, 1)}
	nw.SetParallelism(cfg.Parallelism)
	return nw
}

// Topology returns the network's shape.
func (nw *Network) Topology() Topology { return nw.topo }

// TimeInCycles marks the network's phase durations as physical cycles
// (quorum.CycleTimed).
func (nw *Network) TimeInCycles() bool { return true }

// SetBandwidth implements quorum.BandwidthSetter: it retunes the module
// service rate per cycle, the knob the two-stage schedule's pipelined
// stage 2 turns up to O(log n).
func (nw *Network) SetBandwidth(perPhase int) {
	if perPhase < 1 {
		perPhase = 1
	}
	nw.cfg.ModuleCapacity = perPhase
}

// Stats returns accumulated counters.
func (nw *Network) Stats() Stats { return nw.stats }

// Parallelism returns the resolved worker count (1 = serial).
func (nw *Network) Parallelism() int { return nw.par }

// ensureTables sizes the claim-set, intern tables and per-phase buffers for
// a phase of k attempts, growing (and only growing) the reusable arenas.
func (nw *Network) ensureTables(k int) {
	nw.shards[0].ensure(k)

	needMod := 2 * k
	if nw.modMask == 0 || len(nw.modSlotKey) < needMod {
		sz := 16
		for sz < needMod {
			sz *= 2
		}
		nw.modSlotKey = make([]int32, sz)
		nw.modSlotVal = make([]int32, sz)
		nw.modSlotPhase = make([]int64, sz)
		nw.modMask = sz - 1
	}
	if cap(nw.modLoad) < k {
		nw.modLoad = make([]int32, k)
		nw.modServed = make([]int64, k)
		nw.modServedCnt = make([]int32, k)
	}
	nw.modLoad = nw.modLoad[:k]
	nw.modServed = nw.modServed[:k]
	nw.modServedCnt = nw.modServedCnt[:k]

	nw.pktCur = growSlice(nw.pktCur, k)
	nw.pktEnd = growSlice(nw.pktEnd, k)
	nw.pktSrv = growSlice(nw.pktSrv, k)
	nw.pktMod = growSlice(nw.pktMod, k)
	nw.pktPrio = growSlice(nw.pktPrio, k)
	nw.pktTrees = growSlice(nw.pktTrees, 3*k)
}

// internModule maps a grid module id to a compact phase-local id.
func (nw *Network) internModule(key int32) int32 {
	h := int((uint64(uint32(key))*0x9E3779B97F4A7C15)>>40) & nw.modMask
	for {
		if nw.modSlotPhase[h] != nw.phase {
			nw.modSlotPhase[h] = nw.phase
			nw.modSlotKey[h] = key
			id := nw.modCount
			nw.modCount++
			nw.modSlotVal[h] = id
			return id
		}
		if nw.modSlotKey[h] == key {
			return nw.modSlotVal[h]
		}
		h = (h + 1) & nw.modMask
	}
}

// b2i converts a claim/drop outcome into a branch-free increment: the
// compiler lowers it to SETcc, so the cycle loop's per-packet bookkeeping
// (cursor advance, active-list retention, counter bumps) is conditional
// moves instead of unpredictable branches.
func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// RoutePhase implements quorum.Interconnect. Each attempt becomes a packet
// injected at its processor's root on cycle one of the phase; the phase
// lasts until every packet has either returned (granted) or collided
// (refused). The phase cost is the makespan in cycles.
//
//pram:hotpath
func (nw *Network) RoutePhase(attempts []quorum.Attempt) ([]bool, int64, int) {
	if cap(nw.granted) < len(attempts) {
		nw.granted = make([]bool, len(attempts))
	}
	granted := nw.granted[:len(attempts)]
	clear(granted)
	nw.granted = granted
	if len(attempts) == 0 {
		return granted, 0, 0
	}
	side := nw.topo.Side
	nw.phase++
	nw.ensureTables(len(attempts))
	nw.modCount = 0

	pktCur, pktEnd, pktSrv := nw.pktCur, nw.pktEnd, nw.pktSrv
	pktMod, pktPrio := nw.pktMod, nw.pktPrio
	pktTrees := nw.pktTrees
	pathBuf := nw.pathBuf[:0]
	svc := int32(nw.topo.servicePos())
	sorted := true
	for i, a := range attempts {
		var row, col int
		rowRail := false
		if nw.topo.Placement == ModulesAtLeaves {
			// Attempt.Module is the bank chosen by the memory map; with
			// DualRail, banks ≥ side are row banks. The free coordinate
			// spreads copies within the bank.
			if nw.cfg.DualRail && a.Module >= side {
				rowRail = true
				row = a.Module & (side - 1)
				col = nw.cfg.RowOf(a.Var, a.Copy) & (side - 1)
			} else {
				col = a.Module & (side - 1)
				row = nw.cfg.RowOf(a.Var, a.Copy) & (side - 1)
			}
		} else {
			col = a.Module & (side - 1)
			row = 0
		}
		if a.Proc >= side {
			panic("mot: processor id exceeds root count")
		}
		lm := nw.internModule(int32(row*side + col))
		if nw.modServed[lm] != -nw.phase {
			// First sighting this phase: reset the load counter (the
			// negative phase stamp cannot collide with a cycle stamp).
			nw.modServed[lm] = -nw.phase
			nw.modLoad[lm] = 0
			nw.modServedCnt[lm] = 0
		}
		nw.modLoad[lm]++
		off := int32(len(pathBuf))
		// Tree-partition nodes: row trees are [0, side), column trees
		// [side, 2·side); the module node is added during partitioning.
		pktTrees[3*i], pktTrees[3*i+1], pktTrees[3*i+2] = int32(a.Proc), int32(side+col), -1
		if rowRail {
			pathBuf = nw.topo.appendRequestPathRowRailDense(pathBuf, a.Proc, row, col)
			// The row rail climbs column tree `row`, then switches to ROW
			// tree `row` for the final delivery.
			pktTrees[3*i+1], pktTrees[3*i+2] = int32(side+row), int32(row)
		} else {
			pathBuf = nw.topo.appendRequestPathDense(pathBuf, a.Proc, row, col)
		}
		pktCur[i] = off
		pktEnd[i] = int32(len(pathBuf))
		pktSrv[i] = off + svc
		pktMod[i] = lm
		pktPrio[i] = int32(a.Proc)
		if i > 0 && pktPrio[i-1] > pktPrio[i] {
			sorted = false
		}
	}
	nw.pathBuf = pathBuf
	maxLoad := 0
	for m := int32(0); m < nw.modCount; m++ {
		if int(nw.modLoad[m]) > maxLoad {
			maxLoad = int(nw.modLoad[m])
		}
	}
	// Deterministic processing order: by priority, then attempt index. The
	// engine schedules attempts in ascending processor order, so in steady
	// state this is the injection order and no sort happens.
	active := nw.active[:0]
	if sorted {
		for i := range attempts {
			active = append(active, int32(i))
		}
	} else {
		order := nw.order[:0]
		for i := range attempts {
			order = append(order, int32(i))
		}
		//pram:coldalloc non-escaping comparator: stays on the stack (E5 benches pin RoutePhase at 0 allocs/op)
		slices.SortFunc(order, func(x, y int32) int {
			if pktPrio[x] != pktPrio[y] {
				return cmp.Compare(pktPrio[x], pktPrio[y])
			}
			return cmp.Compare(x, y)
		})
		nw.order = order
		active = append(active, order...)
	}
	nw.active = active[:0]

	start := nw.clock
	if nw.par > 1 && len(active) > 1 {
		return granted, nw.routeParallel(active, start), maxLoad
	}

	// Singleton fast path. The tree-partition invariant (package doc) says
	// a packet alone in its tree-connectivity component can never lose an
	// edge claim (no other packet touches its trees) nor queue at its
	// module (no other packet addresses it), so its cycle-by-cycle future
	// is closed-form: it advances one edge per cycle, spends one cycle
	// being served, and returns granted after pathLen+1 cycles having
	// contributed pathLen hops, one service, zero collisions and zero
	// backlog. At production sizes most packets are singletons (k packets
	// scatter over side ≫ k banks), so resolving them analytically leaves
	// the cycle loop only the contended components. Bit-for-bit identical
	// to routing them: the golden traces, the AoS reference differential
	// tests and FuzzRoutePhase pin it.
	var fastElapsed int64
	if len(active) > 0 {
		nw.partition(active)
		compOf, compCnt := nw.compOf, nw.compCnt
		w := 0
		var hops, served int64
		for j, pi := range active {
			if compCnt[compOf[j]] == 1 {
				pathLen := int64(pktEnd[pi] - pktCur[pi])
				granted[pi] = true
				hops += pathLen
				served++
				if pathLen+1 > fastElapsed {
					fastElapsed = pathLen + 1
				}
				continue
			}
			active[w] = pi
			w++
		}
		active = active[:w]
		nw.stats.Hops += hops
		nw.stats.Served += served
	}

	// Serial reference cycle loop. advance() is its component-scoped twin
	// for the parallel router: the two bodies MUST stay textually parallel
	// (the golden traces, the differential tests and FuzzRoutePhase pin
	// them bit-for-bit). The loop lives inline here rather than calling
	// advance() because the serial path folds straight into nw.stats —
	// no per-cycle backlog recording, no shard merge.
	slots, mask := nw.shards[0].slots, nw.shards[0].mask
	modServed, modServedCnt := nw.modServed, nw.modServedCnt
	capacity := nw.cfg.ModuleCapacity
	drop := nw.cfg.Policy == DropOnCollision
	var hops, collisions, served int64
	maxQueue := nw.stats.MaxQueue
	clock := start
	for len(active) > 0 {
		clock++
		cycle := clock
		queued := 0
		w := 0
		for _, pi := range active {
			cur := pktCur[pi]
			srv := pktSrv[pi]
			// Module service point (taken once per packet per phase, plus
			// while queued at the leaf — the only branch in the loop).
			if cur == srv {
				lm := pktMod[pi]
				if modServed[lm] != cycle {
					modServed[lm] = cycle
					modServedCnt[lm] = 0
				}
				if int(modServedCnt[lm]) < capacity {
					modServedCnt[lm]++
					pktSrv[pi] = -1
					served++
				} else {
					queued++ // wait at the module leaf (stage-2 queue)
				}
				active[w] = pi
				w++
				continue
			}
			// Edge traversal: claim-set probe, then branch-free selects.
			// The first probe covers >75% of claims (the table is sized to
			// 4 slots per live packet); only a same-cycle slot holding a
			// DIFFERENT edge keeps probing. A same-cycle slot holding THIS
			// edge is a collision, and re-storing (cycle, key) into it is
			// idempotent — so both fast outcomes share one unconditional
			// store and the claim verdict is a flag, not a branch.
			e := pathBuf[cur]
			h := int((uint64(uint32(e))*0x9E3779B97F4A7C15)>>40) & mask
			s := &slots[h]
			ok := s.cycle != cycle
			if !ok && s.key != e {
				ok = claimEdgeProbe(slots, mask, e, cycle, h)
			} else {
				s.cycle = cycle
				s.key = e
			}
			// Branch-free resolution: advance the cursor by the claim
			// verdict, mark a grant when the path is exhausted, refuse an
			// unserved loser under the drop policy, and keep the packet on
			// the compacted active list unless it finished either way.
			adv := b2i(ok)
			cur += adv
			pktCur[pi] = cur
			hops += int64(adv)
			done := cur == pktEnd[pi]
			granted[pi] = done
			refused := drop && !ok && srv >= 0
			collisions += int64(b2i(refused))
			active[w] = pi
			w += int(b2i(!(done || refused)))
		}
		active = active[:w]
		if queued > maxQueue {
			maxQueue = queued
		}
	}
	nw.stats.Hops += hops
	nw.stats.Collisions += collisions
	nw.stats.Served += served
	nw.stats.MaxQueue = maxQueue
	elapsed := clock - start
	if fastElapsed > elapsed {
		elapsed = fastElapsed
	}
	nw.clock = start + elapsed
	nw.stats.Cycles += elapsed
	return granted, elapsed, maxLoad
}

// advance runs the synchronous cycle loop over one component's packets —
// act, in priority order — until every packet has returned or been refused.
// It is the parallel router's component-scoped twin of the serial loop
// inlined in RoutePhase: the two bodies MUST stay textually parallel, and
// the golden traces, differential tests and FuzzRoutePhase pin them
// bit-for-bit. act is compacted in place; all cross-packet state it
// touches (edge claims, per-cycle counters) lives in sh, and all
// per-module state is indexed by phase-local module ids that the partition
// confines to a single component.
//
//pram:hotpath
func (nw *Network) advance(sh *shard, act []int32, start int64) {
	// Hoist every hot field into locals: the cycle loop must not juggle
	// two indirection roots (nw and sh), or register spills eat the gains
	// the arena design bought.
	pktCur, pktEnd, pktSrv, pktMod := nw.pktCur, nw.pktEnd, nw.pktSrv, nw.pktMod
	pathBuf := nw.pathBuf
	granted := nw.granted
	modServed := nw.modServed
	modServedCnt := nw.modServedCnt
	capacity := nw.cfg.ModuleCapacity
	drop := nw.cfg.Policy == DropOnCollision
	slots := sh.slots
	mask := sh.mask
	var hops, collisions, served int64
	clock := start
	for len(act) > 0 {
		clock++
		cycle := clock
		queued := int32(0)
		w := 0
		for _, pi := range act {
			cur := pktCur[pi]
			srv := pktSrv[pi]
			// Module service point.
			if cur == srv {
				lm := pktMod[pi]
				if modServed[lm] != cycle {
					modServed[lm] = cycle
					modServedCnt[lm] = 0
				}
				if int(modServedCnt[lm]) < capacity {
					modServedCnt[lm]++
					pktSrv[pi] = -1
					served++
				} else {
					queued++ // wait at the module leaf (stage-2 queue)
				}
				act[w] = pi
				w++
				continue
			}
			// Edge traversal: claim-set probe, then branch-free selects
			// (see the serial loop for the probe/idempotent-store design).
			e := pathBuf[cur]
			h := int((uint64(uint32(e))*0x9E3779B97F4A7C15)>>40) & mask
			s := &slots[h]
			ok := s.cycle != cycle
			if !ok && s.key != e {
				ok = claimEdgeProbe(slots, mask, e, cycle, h)
			} else {
				s.cycle = cycle
				s.key = e
			}
			adv := b2i(ok)
			cur += adv
			pktCur[pi] = cur
			hops += int64(adv)
			done := cur == pktEnd[pi]
			granted[pi] = done
			refused := drop && !ok && srv >= 0
			collisions += int64(b2i(refused))
			act[w] = pi
			w += int(b2i(!(done || refused)))
		}
		act = act[:w]
		// Record this cycle's module backlog at its offset within the
		// phase, so per-cycle depths from concurrently advanced components
		// sum to the serial router's global count at merge time. Zero
		// depths are implicit (merge treats offsets past len as 0), so the
		// common all-served cycle costs one register compare.
		if queued != 0 {
			t := int(clock - start)
			for len(sh.queued) < t {
				sh.queued = append(sh.queued, 0)
			}
			sh.queued[t-1] += queued
		}
	}
	sh.hops += hops
	sh.collisions += collisions
	sh.served += served
	if e := clock - start; e > sh.elapsed {
		sh.elapsed = e
	}
}

// merge folds the phase's shard accumulators into the network's stats and
// clock. Counter sums are order-independent (exact int64 addition), the
// makespan is the max over shards, and the per-cycle module backlogs are
// summed offset-wise across shards before the running MaxQueue comparison —
// exactly the serial router's per-global-cycle count.
func (nw *Network) merge(shards []shard, start int64) int64 {
	var elapsed int64
	maxT := 0
	for i := range shards {
		sh := &shards[i]
		nw.stats.Hops += sh.hops
		nw.stats.Collisions += sh.collisions
		nw.stats.Served += sh.served
		if sh.elapsed > elapsed {
			elapsed = sh.elapsed
		}
		if len(sh.queued) > maxT {
			maxT = len(sh.queued)
		}
	}
	for t := 0; t < maxT; t++ {
		q := 0
		for i := range shards {
			if t < len(shards[i].queued) {
				q += int(shards[i].queued[t])
			}
		}
		if q > nw.stats.MaxQueue {
			nw.stats.MaxQueue = q
		}
	}
	nw.clock = start + elapsed
	nw.stats.Cycles += elapsed
	return elapsed
}

// mix64 is splitmix64's finalizer: a cheap, deterministic hash used to
// scatter copy rows within a bank.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
