package mot

import (
	"sort"

	"repro/internal/quorum"
)

// Policy selects the contention rule for request packets on tree edges.
type Policy uint8

const (
	// DropOnCollision refuses the lower-priority packet at an edge
	// conflict; the quorum engine retries it next phase. This is the
	// paper's routing rule and the default.
	DropOnCollision Policy = iota
	// QueueOnCollision makes the loser wait a cycle instead (pure
	// store-and-forward). Useful as an ablation: it trades phases for
	// longer ones.
	QueueOnCollision
)

// Config tunes the network simulation.
type Config struct {
	// ModuleCapacity is the number of requests a module can serve per
	// cycle (default 1). Requests beyond it queue at the module leaf —
	// the stage-2 pipelining of the simulation scheme.
	ModuleCapacity int
	// Policy is the tree-edge contention rule for request legs.
	Policy Policy
	// RowOf places copy `cp` of variable `v` on a grid row (needed for
	// ModulesAtLeaves; ignored for ModulesAtRoots). The memory map already
	// fixes the bank/column of every copy; the row spreads copies within
	// the bank. Must be deterministic.
	RowOf func(v, cp int) int
	// DualRail enables the row+column access of Theorem 3's remark: bank
	// ids in [0, side) are column banks (routed via the column tree), ids
	// in [side, 2·side) are ROW banks (routed via requestPathRowRail),
	// doubling the number of independent serialization points.
	DualRail bool
}

// Stats accumulates network-level counters across phases.
type Stats struct {
	Cycles     int64 // total simulated cycles
	Hops       int64 // edge traversals
	Collisions int64 // request packets refused at a tree edge
	Served     int64 // module services completed
	MaxQueue   int   // deepest module backlog observed in any cycle
}

// Network is a 2DMOT with a synchronous packet switch fabric. It implements
// quorum.Interconnect, so it slots into the quorum engine exactly where the
// complete bipartite graph of the DMMPC does — same protocol, real network.
type Network struct {
	topo Topology
	cfg  Config

	clock    int64            // global cycle counter, never reset
	edgeUsed map[uint64]int64 // directed edge -> last cycle it carried a packet
	stats    Stats
}

// NewNetwork builds a 2DMOT network simulator over an a×a grid.
func NewNetwork(side int, pl Placement, cfg Config) *Network {
	if cfg.ModuleCapacity <= 0 {
		cfg.ModuleCapacity = 1
	}
	if pl == ModulesAtLeaves && cfg.RowOf == nil {
		cfg.RowOf = func(v, cp int) int { return int(mix64(uint64(v)*31+uint64(cp))) & (side - 1) }
	}
	return &Network{
		topo:     NewTopology(side, pl),
		cfg:      cfg,
		edgeUsed: make(map[uint64]int64),
	}
}

// Topology returns the network's shape.
func (nw *Network) Topology() Topology { return nw.topo }

// TimeInCycles marks the network's phase durations as physical cycles
// (quorum.CycleTimed).
func (nw *Network) TimeInCycles() bool { return true }

// SetBandwidth implements quorum.BandwidthSetter: it retunes the module
// service rate per cycle, the knob the two-stage schedule's pipelined
// stage 2 turns up to O(log n).
func (nw *Network) SetBandwidth(perPhase int) {
	if perPhase < 1 {
		perPhase = 1
	}
	nw.cfg.ModuleCapacity = perPhase
}

// Stats returns accumulated counters.
func (nw *Network) Stats() Stats { return nw.stats }

// packet is one in-flight copy access.
type packet struct {
	attempt int // index into the phase's attempt slice
	prio    int // processor id: lower wins collisions
	path    []uint64
	pos     int // next edge index
	service int // path index at which the module serves the packet
	served  bool
	module  int // module key for service accounting
	done    bool
	failed  bool
}

// RoutePhase implements quorum.Interconnect. Each attempt becomes a packet
// injected at its processor's root on cycle one of the phase; the phase
// lasts until every packet has either returned (granted) or collided
// (refused). The phase cost is the makespan in cycles.
func (nw *Network) RoutePhase(attempts []quorum.Attempt) ([]bool, int64, int) {
	granted := make([]bool, len(attempts))
	if len(attempts) == 0 {
		return granted, 0, 0
	}
	side := nw.topo.Side
	pkts := make([]*packet, 0, len(attempts))
	loads := make(map[int]int)
	for i, a := range attempts {
		var row, col int
		rowRail := false
		if nw.topo.Placement == ModulesAtLeaves {
			// Attempt.Module is the bank chosen by the memory map; with
			// DualRail, banks ≥ side are row banks. The free coordinate
			// spreads copies within the bank.
			if nw.cfg.DualRail && a.Module >= side {
				rowRail = true
				row = a.Module & (side - 1)
				col = nw.cfg.RowOf(a.Var, a.Copy) & (side - 1)
			} else {
				col = a.Module & (side - 1)
				row = nw.cfg.RowOf(a.Var, a.Copy) & (side - 1)
			}
		} else {
			col = a.Module & (side - 1)
			row = 0
		}
		if a.Proc >= side {
			panic("mot: processor id exceeds root count")
		}
		mod := row*side + col
		loads[mod]++
		path := nw.topo.requestPath(a.Proc, row, col)
		if rowRail {
			path = nw.topo.requestPathRowRail(a.Proc, row, col)
		}
		pkts = append(pkts, &packet{
			attempt: i,
			prio:    a.Proc,
			path:    path,
			service: nw.topo.servicePos(),
			module:  mod,
		})
	}
	maxLoad := 0
	for _, l := range loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	// Deterministic processing order: by priority, then attempt index.
	sort.Slice(pkts, func(x, y int) bool {
		if pkts[x].prio != pkts[y].prio {
			return pkts[x].prio < pkts[y].prio
		}
		return pkts[x].attempt < pkts[y].attempt
	})

	start := nw.clock
	servedThisCycle := make(map[int]int)
	remaining := len(pkts)
	for remaining > 0 {
		nw.clock++
		cycle := nw.clock
		clear(servedThisCycle)
		queued := 0
		for _, pk := range pkts {
			if pk.done || pk.failed {
				continue
			}
			// Module service point.
			if pk.pos == pk.service && !pk.served {
				if servedThisCycle[pk.module] < nw.cfg.ModuleCapacity {
					servedThisCycle[pk.module]++
					pk.served = true
					nw.stats.Served++
				} else {
					queued++ // wait at the module leaf (stage-2 queue)
				}
				continue
			}
			// Edge traversal.
			e := pk.path[pk.pos]
			if last, busy := nw.edgeUsed[e]; busy && last == cycle {
				// Collision: someone higher-priority took this edge now.
				if nw.cfg.Policy == DropOnCollision && !pk.served {
					pk.failed = true
					remaining--
					nw.stats.Collisions++
				}
				// Replies (and Queue policy) wait for the next cycle.
				continue
			}
			nw.edgeUsed[e] = cycle
			nw.stats.Hops++
			pk.pos++
			if pk.pos == len(pk.path) {
				pk.done = true
				remaining--
			}
		}
		if queued > nw.stats.MaxQueue {
			nw.stats.MaxQueue = queued
		}
	}
	for _, pk := range pkts {
		if pk.done {
			granted[pk.attempt] = true
		}
	}
	elapsed := nw.clock - start
	nw.stats.Cycles += elapsed
	return granted, elapsed, maxLoad
}

// mix64 is splitmix64's finalizer: a cheap, deterministic hash used to
// scatter copy rows within a bank.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
