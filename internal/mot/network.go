package mot

import (
	"cmp"
	"slices"

	"repro/internal/quorum"
)

// Policy selects the contention rule for request packets on tree edges.
type Policy uint8

const (
	// DropOnCollision refuses the lower-priority packet at an edge
	// conflict; the quorum engine retries it next phase. This is the
	// paper's routing rule and the default.
	DropOnCollision Policy = iota
	// QueueOnCollision makes the loser wait a cycle instead (pure
	// store-and-forward). Useful as an ablation: it trades phases for
	// longer ones.
	QueueOnCollision
)

// Config tunes the network simulation.
type Config struct {
	// ModuleCapacity is the number of requests a module can serve per
	// cycle (default 1). Requests beyond it queue at the module leaf —
	// the stage-2 pipelining of the simulation scheme.
	ModuleCapacity int
	// Policy is the tree-edge contention rule for request legs.
	Policy Policy
	// RowOf places copy `cp` of variable `v` on a grid row (needed for
	// ModulesAtLeaves; ignored for ModulesAtRoots). The memory map already
	// fixes the bank/column of every copy; the row spreads copies within
	// the bank. Must be deterministic.
	RowOf func(v, cp int) int
	// DualRail enables the row+column access of Theorem 3's remark: bank
	// ids in [0, side) are column banks (routed via the column tree), ids
	// in [side, 2·side) are ROW banks (routed via requestPathRowRail),
	// doubling the number of independent serialization points.
	DualRail bool
	// Parallelism selects how many OS workers advance a phase's
	// tree-connectivity components concurrently. 0 (the default) consults
	// the PRAMSIM_PARALLEL environment variable and falls back to the
	// serial reference router; 1 forces the serial router; values > 1 use
	// that many workers; negative values use GOMAXPROCS. The parallel
	// router is bit-for-bit identical to the serial one (see the package
	// doc and the differential tests).
	Parallelism int
}

// Stats accumulates network-level counters across phases.
type Stats struct {
	Cycles     int64 // total simulated cycles
	Hops       int64 // edge traversals
	Collisions int64 // request packets refused at a tree edge
	Served     int64 // module services completed
	MaxQueue   int   // deepest module backlog observed in any cycle
}

// Network is a 2DMOT with a synchronous packet switch fabric. It implements
// quorum.Interconnect, so it slots into the quorum engine exactly where the
// complete bipartite graph of the DMMPC does — same protocol, real network.
//
// The simulation is allocation-free in steady state. Paths are materialized
// as dense edge indices (Topology.denseEdgeID) into a shared per-phase
// arena; per-cycle edge contention is a claim-set stamped with the global
// cycle counter (which never resets, so the set never needs clearing), and
// module service/load counters live in small phase-interned tables. Packets
// are pooled by value, and each cycle iterates a compacted active-packet
// list instead of rescanning done packets. The invariant is locked in by
// TestRoutePhaseZeroAllocs; behavior is locked to the reference
// implementation by the golden-trace tests.
//
// With Config.Parallelism > 1 a phase's packets are partitioned into
// tree-connectivity components and advanced concurrently on a bounded
// worker pool (see parallel.go); results are merged in canonical component
// order, so grants, cycle counts and Stats stay bit-for-bit identical to
// the serial router. The arenas still make a Network single-threaded from
// the caller's point of view: one phase at a time.
type Network struct {
	topo Topology
	cfg  Config

	clock int64 // global cycle counter, never reset
	stats Stats

	phase int64 // RoutePhase invocation counter; stamps the intern tables

	// shards hold the per-worker slices of the router arena: the edge
	// claim-set plus the per-component cycle-loop accumulators. shards[0]
	// doubles as the serial router's state; the pool workers own
	// shards[1:]. See parallel.go.
	shards []shard
	par    int      // resolved worker count (1 = serial reference router)
	pool   *motPool // lazily started worker pool when par > 1

	// Module interning: grid module id -> phase-local id, open addressing.
	modSlotKey   []int32
	modSlotVal   []int32
	modSlotPhase []int64
	modMask      int
	modCount     int32
	modLoad      []int32 // per phase-local module: attempts this phase
	modServed    []int64 // per phase-local module: cycle stamp of service count
	modServedCnt []int32 // per phase-local module: services this cycle

	// Packet pool and per-phase buffers.
	pkts    []packet
	active  []int32 // live packet indices in priority order, compacted per cycle
	order   []int32 // processing order when attempts arrive unsorted
	pathBuf []int32 // all packet paths, dense edge indices
	granted []bool
	// pktTrees stores, per packet, the union-find node ids of the up-to-
	// three trees its path traverses (3 entries each, −1 when unused).
	// Together with the module node they define the packet's connectivity
	// component — the unit of parallel advancement. Kept out of packet so
	// the cycle loop's working set stays at 32 bytes per packet.
	pktTrees []int32

	// Tree-connectivity partition scratch (parallel router only).
	ufParent []int32
	ufSize   []int32
	ufStamp  []int64
	compCnt  []int32 // per component: packet count, then fill cursor
	compOf   []int32 // per active position: component id
	compEnd  []int32 // per component: end offset into compPkts
	compPkts []int32 // packet indices grouped by component, priority order
}

// edgeSlot is one entry of the cycle-stamped edge claim-set.
type edgeSlot struct {
	cycle int64
	key   int32
}

// NewNetwork builds a 2DMOT network simulator over an a×a grid.
func NewNetwork(side int, pl Placement, cfg Config) *Network {
	if cfg.ModuleCapacity <= 0 {
		cfg.ModuleCapacity = 1
	}
	if pl == ModulesAtLeaves && cfg.RowOf == nil {
		cfg.RowOf = func(v, cp int) int { return int(mix64(uint64(v)*31+uint64(cp))) & (side - 1) }
	}
	topo := NewTopology(side, pl)
	if int64(topo.DenseEdgeSpace()) > int64(1)<<31-1 {
		panic("mot: grid side too large for 32-bit dense edge indices")
	}
	nw := &Network{topo: topo, cfg: cfg, shards: make([]shard, 1)}
	nw.SetParallelism(cfg.Parallelism)
	return nw
}

// Topology returns the network's shape.
func (nw *Network) Topology() Topology { return nw.topo }

// TimeInCycles marks the network's phase durations as physical cycles
// (quorum.CycleTimed).
func (nw *Network) TimeInCycles() bool { return true }

// SetBandwidth implements quorum.BandwidthSetter: it retunes the module
// service rate per cycle, the knob the two-stage schedule's pipelined
// stage 2 turns up to O(log n).
func (nw *Network) SetBandwidth(perPhase int) {
	if perPhase < 1 {
		perPhase = 1
	}
	nw.cfg.ModuleCapacity = perPhase
}

// Stats returns accumulated counters.
func (nw *Network) Stats() Stats { return nw.stats }

// Parallelism returns the resolved worker count (1 = serial).
func (nw *Network) Parallelism() int { return nw.par }

// packet is one in-flight copy access. Paths live in the network's shared
// path arena; packets are pooled by value and never escape to the heap.
// The struct is kept at 32 bytes — two per cache line — because the cycle
// loop is memory-bound on it; cold per-packet data (the partition's tree
// nodes) lives in the parallel pktTrees array instead.
type packet struct {
	attempt int32 // index into the phase's attempt slice
	prio    int32 // processor id: lower wins collisions
	pathOff int32 // offset of this packet's path in the arena
	pathLen int32
	pos     int32 // next edge index within the path
	service int32 // path index at which the module serves the packet
	module  int32 // phase-local module id for service accounting
	served  bool
}

// ensureTables sizes the claim-set, intern tables and per-phase buffers for
// a phase of k attempts, growing (and only growing) the reusable arenas.
func (nw *Network) ensureTables(k int) {
	nw.shards[0].ensure(k)

	needMod := 2 * k
	if nw.modMask == 0 || len(nw.modSlotKey) < needMod {
		sz := 16
		for sz < needMod {
			sz *= 2
		}
		nw.modSlotKey = make([]int32, sz)
		nw.modSlotVal = make([]int32, sz)
		nw.modSlotPhase = make([]int64, sz)
		nw.modMask = sz - 1
	}
	if cap(nw.modLoad) < k {
		nw.modLoad = make([]int32, k)
		nw.modServed = make([]int64, k)
		nw.modServedCnt = make([]int32, k)
	}
	nw.modLoad = nw.modLoad[:k]
	nw.modServed = nw.modServed[:k]
	nw.modServedCnt = nw.modServedCnt[:k]
}

// internModule maps a grid module id to a compact phase-local id.
func (nw *Network) internModule(key int32) int32 {
	h := int((uint64(uint32(key))*0x9E3779B97F4A7C15)>>40) & nw.modMask
	for {
		if nw.modSlotPhase[h] != nw.phase {
			nw.modSlotPhase[h] = nw.phase
			nw.modSlotKey[h] = key
			id := nw.modCount
			nw.modCount++
			nw.modSlotVal[h] = id
			return id
		}
		if nw.modSlotKey[h] == key {
			return nw.modSlotVal[h]
		}
		h = (h + 1) & nw.modMask
	}
}

// RoutePhase implements quorum.Interconnect. Each attempt becomes a packet
// injected at its processor's root on cycle one of the phase; the phase
// lasts until every packet has either returned (granted) or collided
// (refused). The phase cost is the makespan in cycles.
func (nw *Network) RoutePhase(attempts []quorum.Attempt) ([]bool, int64, int) {
	if cap(nw.granted) < len(attempts) {
		nw.granted = make([]bool, len(attempts))
	}
	granted := nw.granted[:len(attempts)]
	clear(granted)
	nw.granted = granted
	if len(attempts) == 0 {
		return granted, 0, 0
	}
	side := nw.topo.Side
	nw.phase++
	nw.ensureTables(len(attempts))
	nw.modCount = 0

	if cap(nw.pkts) < len(attempts) {
		nw.pkts = make([]packet, len(attempts))
	}
	pkts := nw.pkts[:len(attempts)]
	nw.pkts = pkts
	nw.pktTrees = growSlice(nw.pktTrees, 3*len(attempts))
	pktTrees := nw.pktTrees
	pathBuf := nw.pathBuf[:0]
	sorted := true
	for i, a := range attempts {
		var row, col int
		rowRail := false
		if nw.topo.Placement == ModulesAtLeaves {
			// Attempt.Module is the bank chosen by the memory map; with
			// DualRail, banks ≥ side are row banks. The free coordinate
			// spreads copies within the bank.
			if nw.cfg.DualRail && a.Module >= side {
				rowRail = true
				row = a.Module & (side - 1)
				col = nw.cfg.RowOf(a.Var, a.Copy) & (side - 1)
			} else {
				col = a.Module & (side - 1)
				row = nw.cfg.RowOf(a.Var, a.Copy) & (side - 1)
			}
		} else {
			col = a.Module & (side - 1)
			row = 0
		}
		if a.Proc >= side {
			panic("mot: processor id exceeds root count")
		}
		lm := nw.internModule(int32(row*side + col))
		if nw.modServed[lm] != -nw.phase {
			// First sighting this phase: reset the load counter (the
			// negative phase stamp cannot collide with a cycle stamp).
			nw.modServed[lm] = -nw.phase
			nw.modLoad[lm] = 0
			nw.modServedCnt[lm] = 0
		}
		nw.modLoad[lm]++
		off := int32(len(pathBuf))
		// Tree-partition nodes: row trees are [0, side), column trees
		// [side, 2·side); the module node is added during partitioning.
		pktTrees[3*i], pktTrees[3*i+1], pktTrees[3*i+2] = int32(a.Proc), int32(side+col), -1
		if rowRail {
			pathBuf = nw.topo.appendRequestPathRowRailDense(pathBuf, a.Proc, row, col)
			// The row rail climbs column tree `row`, then switches to ROW
			// tree `row` for the final delivery.
			pktTrees[3*i+1], pktTrees[3*i+2] = int32(side+row), int32(row)
		} else {
			pathBuf = nw.topo.appendRequestPathDense(pathBuf, a.Proc, row, col)
		}
		pkts[i] = packet{
			attempt: int32(i),
			prio:    int32(a.Proc),
			pathOff: off,
			pathLen: int32(len(pathBuf)) - off,
			service: int32(nw.topo.servicePos()),
			module:  lm,
		}
		if i > 0 && pkts[i-1].prio > pkts[i].prio {
			sorted = false
		}
	}
	nw.pathBuf = pathBuf
	maxLoad := 0
	for m := int32(0); m < nw.modCount; m++ {
		if int(nw.modLoad[m]) > maxLoad {
			maxLoad = int(nw.modLoad[m])
		}
	}
	// Deterministic processing order: by priority, then attempt index. The
	// engine schedules attempts in ascending processor order, so in steady
	// state this is the injection order and no sort happens.
	active := nw.active[:0]
	if sorted {
		for i := range pkts {
			active = append(active, int32(i))
		}
	} else {
		order := nw.order[:0]
		for i := range pkts {
			order = append(order, int32(i))
		}
		slices.SortFunc(order, func(x, y int32) int {
			if pkts[x].prio != pkts[y].prio {
				return cmp.Compare(pkts[x].prio, pkts[y].prio)
			}
			return cmp.Compare(x, y)
		})
		nw.order = order
		active = append(active, order...)
	}
	nw.active = active[:0]

	start := nw.clock
	if nw.par > 1 && len(active) > 1 {
		return granted, nw.routeParallel(active, start), maxLoad
	}

	// Serial reference cycle loop. advance() is its component-scoped twin
	// for the parallel router: the two bodies MUST stay textually parallel
	// (the golden traces, the differential tests and FuzzRoutePhase pin
	// them bit-for-bit). The loop lives inline here rather than calling
	// advance() because extracting it costs ~15% on the small-phase
	// E5/Luccio benchmarks (worse code layout for the single-component
	// case); the parallel path amortizes the call per component instead.
	slots, mask := nw.shards[0].slots, nw.shards[0].mask
	for len(active) > 0 {
		nw.clock++
		cycle := nw.clock
		queued := 0
		w := 0
		for _, pi := range active {
			pk := &pkts[pi]
			// Module service point.
			if pk.pos == pk.service && !pk.served {
				lm := pk.module
				if nw.modServed[lm] != cycle {
					nw.modServed[lm] = cycle
					nw.modServedCnt[lm] = 0
				}
				if int(nw.modServedCnt[lm]) < nw.cfg.ModuleCapacity {
					nw.modServedCnt[lm]++
					pk.served = true
					nw.stats.Served++
				} else {
					queued++ // wait at the module leaf (stage-2 queue)
				}
				active[w] = pi
				w++
				continue
			}
			// Edge traversal.
			e := pathBuf[pk.pathOff+pk.pos]
			if !claimEdge(slots, mask, e, cycle) {
				// Collision: someone higher-priority took this edge now.
				if nw.cfg.Policy == DropOnCollision && !pk.served {
					nw.stats.Collisions++
					continue // refused: drop from the active list
				}
				// Replies (and Queue policy) wait for the next cycle.
				active[w] = pi
				w++
				continue
			}
			nw.stats.Hops++
			pk.pos++
			if pk.pos == pk.pathLen {
				granted[pk.attempt] = true
				continue // returned: drop from the active list
			}
			active[w] = pi
			w++
		}
		active = active[:w]
		if queued > nw.stats.MaxQueue {
			nw.stats.MaxQueue = queued
		}
	}
	elapsed := nw.clock - start
	nw.stats.Cycles += elapsed
	return granted, elapsed, maxLoad
}

// advance runs the synchronous cycle loop over one component's packets —
// act, in priority order — until every packet has returned or been refused.
// It is the parallel router's component-scoped twin of the serial loop
// inlined in RoutePhase: the two bodies MUST stay textually parallel, and
// the golden traces, differential tests and FuzzRoutePhase pin them
// bit-for-bit. act is compacted in place; all cross-packet state it
// touches (edge claims, per-cycle counters) lives in sh, and all
// per-module state is indexed by phase-local module ids that the partition
// confines to a single component.
func (nw *Network) advance(sh *shard, act []int32, start int64) {
	// Hoist every hot field into locals: the cycle loop must not juggle
	// two indirection roots (nw and sh), or register spills eat the gains
	// the arena design bought.
	pkts := nw.pkts
	pathBuf := nw.pathBuf
	granted := nw.granted
	modServed := nw.modServed
	modServedCnt := nw.modServedCnt
	capacity := nw.cfg.ModuleCapacity
	drop := nw.cfg.Policy == DropOnCollision
	slots := sh.slots
	mask := sh.mask
	var hops, collisions, served int64
	clock := start
	for len(act) > 0 {
		clock++
		queued := int32(0)
		w := 0
		for _, pi := range act {
			pk := &pkts[pi]
			// Module service point.
			if pk.pos == pk.service && !pk.served {
				lm := pk.module
				if modServed[lm] != clock {
					modServed[lm] = clock
					modServedCnt[lm] = 0
				}
				if int(modServedCnt[lm]) < capacity {
					modServedCnt[lm]++
					pk.served = true
					served++
				} else {
					queued++ // wait at the module leaf (stage-2 queue)
				}
				act[w] = pi
				w++
				continue
			}
			// Edge traversal.
			e := pathBuf[pk.pathOff+pk.pos]
			if !claimEdge(slots, mask, e, clock) {
				// Collision: someone higher-priority took this edge now.
				if drop && !pk.served {
					collisions++
					continue // refused: drop from the active list
				}
				// Replies (and Queue policy) wait for the next cycle.
				act[w] = pi
				w++
				continue
			}
			hops++
			pk.pos++
			if pk.pos == pk.pathLen {
				granted[pk.attempt] = true
				continue // returned: drop from the active list
			}
			act[w] = pi
			w++
		}
		act = act[:w]
		// Record this cycle's module backlog at its offset within the
		// phase, so per-cycle depths from concurrently advanced components
		// sum to the serial router's global count at merge time. Zero
		// depths are implicit (merge treats offsets past len as 0), so the
		// common all-served cycle costs one register compare.
		if queued != 0 {
			t := int(clock - start)
			for len(sh.queued) < t {
				sh.queued = append(sh.queued, 0)
			}
			sh.queued[t-1] += queued
		}
	}
	sh.hops += hops
	sh.collisions += collisions
	sh.served += served
	if e := clock - start; e > sh.elapsed {
		sh.elapsed = e
	}
}

// merge folds the phase's shard accumulators into the network's stats and
// clock. Counter sums are order-independent (exact int64 addition), the
// makespan is the max over shards, and the per-cycle module backlogs are
// summed offset-wise across shards before the running MaxQueue comparison —
// exactly the serial router's per-global-cycle count.
func (nw *Network) merge(shards []shard, start int64) int64 {
	var elapsed int64
	maxT := 0
	for i := range shards {
		sh := &shards[i]
		nw.stats.Hops += sh.hops
		nw.stats.Collisions += sh.collisions
		nw.stats.Served += sh.served
		if sh.elapsed > elapsed {
			elapsed = sh.elapsed
		}
		if len(sh.queued) > maxT {
			maxT = len(sh.queued)
		}
	}
	for t := 0; t < maxT; t++ {
		q := 0
		for i := range shards {
			if t < len(shards[i].queued) {
				q += int(shards[i].queued[t])
			}
		}
		if q > nw.stats.MaxQueue {
			nw.stats.MaxQueue = q
		}
	}
	nw.clock = start + elapsed
	nw.stats.Cycles += elapsed
	return elapsed
}

// mix64 is splitmix64's finalizer: a cheap, deterministic hash used to
// scatter copy rows within a bank.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
