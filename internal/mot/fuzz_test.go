package mot

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/quorum"
)

// Property: RoutePhase always terminates, grants at least one packet when
// any were injected, and never grants a dropped packet's attempt twice.
func TestRoutePhaseAlwaysProgresses(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		side := 1 << (3 + rng.Intn(3)) // 8..32
		nw := NewNetwork(side, ModulesAtLeaves, Config{})
		k := 1 + rng.Intn(side)
		attempts := make([]quorum.Attempt, 0, k)
		used := map[int]bool{}
		for len(attempts) < k {
			p := rng.Intn(side)
			if used[p] {
				continue
			}
			used[p] = true
			attempts = append(attempts, quorum.Attempt{
				Proc:   p,
				Module: rng.Intn(side),
				Var:    rng.Intn(1024),
				Copy:   rng.Intn(8),
			})
		}
		granted, cycles, _ := nw.RoutePhase(attempts)
		if cycles <= 0 {
			return false
		}
		any := false
		for _, g := range granted {
			any = any || g
		}
		return any // at least the highest-priority packet always survives
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property (queue policy): everything is granted, regardless of pattern.
func TestQueuePolicyAlwaysGrantsAll(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		side := 16
		nw := NewNetwork(side, ModulesAtLeaves, Config{Policy: QueueOnCollision})
		k := 1 + rng.Intn(side)
		attempts := make([]quorum.Attempt, 0, k)
		used := map[int]bool{}
		for len(attempts) < k {
			p := rng.Intn(side)
			if used[p] {
				continue
			}
			used[p] = true
			attempts = append(attempts, quorum.Attempt{
				Proc: p, Module: rng.Intn(side), Var: rng.Intn(64), Copy: rng.Intn(4),
			})
		}
		granted, _, _ := nw.RoutePhase(attempts)
		for _, g := range granted {
			if !g {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestStatsMonotone: cumulative counters never decrease across phases.
func TestStatsMonotone(t *testing.T) {
	nw := NewNetwork(16, ModulesAtLeaves, Config{})
	rng := rand.New(rand.NewSource(4))
	var prev Stats
	for round := 0; round < 10; round++ {
		attempts := []quorum.Attempt{
			{Proc: rng.Intn(16), Module: rng.Intn(16), Var: rng.Intn(32)},
		}
		nw.RoutePhase(attempts)
		cur := nw.Stats()
		if cur.Cycles < prev.Cycles || cur.Hops < prev.Hops || cur.Served < prev.Served {
			t.Fatalf("stats regressed: %+v -> %+v", prev, cur)
		}
		prev = cur
	}
}

// TestBandwidthSetterAffectsServiceRate: two packets reaching the SAME
// module simultaneously via the two independent rails (column rail and
// row rail) are serialized at capacity 1 but served together at capacity
// 2. (Same-rail packets serialize on shared tree edges before the module,
// so dual rail is the only way two packets arrive in the same cycle.)
func TestBandwidthSetterAffectsServiceRate(t *testing.T) {
	const side = 16
	mk := func(capacity int) int64 {
		nw := NewNetwork(side, ModulesAtLeaves, Config{
			Policy:   QueueOnCollision,
			DualRail: true,
			// The free coordinate: row 3 for the col-rail packet (var 1),
			// column 5 for the row-rail packet (var 2) — both end at
			// module (3,5) via fully disjoint trees.
			RowOf: func(v, cp int) int {
				if v == 1 {
					return 3
				}
				return 5
			},
		})
		nw.SetBandwidth(capacity)
		attempts := []quorum.Attempt{
			// Column rail: bank/col 5, row 3 → module (3,5) via CT(5).
			{Proc: 1, Module: 5, Var: 1, Copy: 0},
			// Row rail: row bank 3, col 5 → module (3,5) via CT(3)+RT(3).
			{Proc: 2, Module: side + 3, Var: 2, Copy: 0},
		}
		granted, cycles, load := nw.RoutePhase(attempts)
		if !granted[0] || !granted[1] {
			t.Fatal("queue policy must grant both")
		}
		if load != 2 {
			t.Fatalf("expected both packets on one module, load=%d", load)
		}
		return cycles
	}
	if mk(2) >= mk(1) {
		t.Error("higher module bandwidth did not reduce cycles")
	}
}
