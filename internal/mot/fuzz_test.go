package mot

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/quorum"
)

// Property: RoutePhase always terminates, grants at least one packet when
// any were injected, and never grants a dropped packet's attempt twice.
func TestRoutePhaseAlwaysProgresses(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		side := 1 << (3 + rng.Intn(3)) // 8..32
		nw := NewNetwork(side, ModulesAtLeaves, Config{})
		k := 1 + rng.Intn(side)
		attempts := make([]quorum.Attempt, 0, k)
		used := map[int]bool{}
		for len(attempts) < k {
			p := rng.Intn(side)
			if used[p] {
				continue
			}
			used[p] = true
			attempts = append(attempts, quorum.Attempt{
				Proc:   p,
				Module: rng.Intn(side),
				Var:    rng.Intn(1024),
				Copy:   rng.Intn(8),
			})
		}
		granted, cycles, _ := nw.RoutePhase(attempts)
		if cycles <= 0 {
			return false
		}
		any := false
		for _, g := range granted {
			any = any || g
		}
		return any // at least the highest-priority packet always survives
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property (queue policy): everything is granted, regardless of pattern.
func TestQueuePolicyAlwaysGrantsAll(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		side := 16
		nw := NewNetwork(side, ModulesAtLeaves, Config{Policy: QueueOnCollision})
		k := 1 + rng.Intn(side)
		attempts := make([]quorum.Attempt, 0, k)
		used := map[int]bool{}
		for len(attempts) < k {
			p := rng.Intn(side)
			if used[p] {
				continue
			}
			used[p] = true
			attempts = append(attempts, quorum.Attempt{
				Proc: p, Module: rng.Intn(side), Var: rng.Intn(64), Copy: rng.Intn(4),
			})
		}
		granted, _, _ := nw.RoutePhase(attempts)
		for _, g := range granted {
			if !g {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// FuzzRoutePhase is the differential harness as a fuzz target: a fuzzed
// byte string drives topology choice and per-phase attempt streams through
// the retired AoS reference router (reference_test.go), a serial SoA
// network and a parallel SoA network, which must stay bit-for-bit
// identical (grants, cycles, loads, stats) on every input the fuzzer
// invents. A capacity bump mid-stream exercises SetBandwidth on all three.
func FuzzRoutePhase(f *testing.F) {
	f.Add(int64(1), uint8(0), []byte{0x03, 0x41, 0x7f, 0x10, 0xee})
	f.Add(int64(42), uint8(3), []byte{0xff, 0x00, 0xa5, 0x5a})
	f.Add(int64(7), uint8(13), []byte{0x01})
	f.Add(int64(19), uint8(21), []byte{0x80, 0x81, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87})
	f.Fuzz(func(t *testing.T, seed int64, shape uint8, stream []byte) {
		side := 8 << (shape % 3) // 8..32
		pl := ModulesAtLeaves
		if shape&4 != 0 {
			pl = ModulesAtRoots
		}
		pol := DropOnCollision
		if shape&8 != 0 {
			pol = QueueOnCollision
		}
		dualRail := pl == ModulesAtLeaves && shape&16 != 0
		cfg := Config{Policy: pol, DualRail: dualRail}
		serCfg, parCfg := cfg, cfg
		serCfg.Parallelism = 1
		parCfg.Parallelism = 2 + int(shape%3)
		ref := newRefNetwork(side, pl, cfg)
		ser := NewNetwork(side, pl, serCfg)
		par := NewNetwork(side, pl, parCfg)
		rng := rand.New(rand.NewSource(seed))
		banks := side
		if dualRail {
			banks = 2 * side
		}
		// Each stream byte seeds one attempt; phase boundaries every
		// `side` attempts keep phases non-trivial.
		var attempts []quorum.Attempt
		phases := 0
		flush := func() {
			if len(attempts) == 0 {
				return
			}
			if phases == 2 {
				ref.SetBandwidth(2)
				ser.SetBandwidth(2)
				par.SetBandwidth(2)
			}
			phases++
			gr, cr, lr := ref.RoutePhase(attempts)
			gs, cs, ls := ser.RoutePhase(attempts)
			gp, cp, lp := par.RoutePhase(attempts)
			if cr != cs || lr != ls || cs != cp || ls != lp {
				t.Fatalf("reference (cycles=%d load=%d) != serial (%d/%d) != parallel (%d/%d)",
					cr, lr, cs, ls, cp, lp)
			}
			for i := range gs {
				if gr[i] != gs[i] || gs[i] != gp[i] {
					t.Fatalf("grant[%d]: reference=%v serial=%v parallel=%v", i, gr[i], gs[i], gp[i])
				}
			}
			attempts = attempts[:0]
		}
		for _, b := range stream {
			attempts = append(attempts, quorum.Attempt{
				Proc:   int(b) % side,
				Module: (int(b) * 7 % banks) ^ rng.Intn(banks),
				Var:    rng.Intn(512),
				Copy:   int(b >> 5),
				Write:  b&1 == 1,
			})
			if len(attempts) >= side {
				flush()
			}
		}
		flush()
		if ref.Stats() != ser.Stats() || ser.Stats() != par.Stats() {
			t.Fatalf("stats diverged:\n reference %+v\n serial    %+v\n parallel  %+v",
				ref.Stats(), ser.Stats(), par.Stats())
		}
	})
}

// TestStatsMonotone: cumulative counters never decrease across phases.
func TestStatsMonotone(t *testing.T) {
	nw := NewNetwork(16, ModulesAtLeaves, Config{})
	rng := rand.New(rand.NewSource(4))
	var prev Stats
	for round := 0; round < 10; round++ {
		attempts := []quorum.Attempt{
			{Proc: rng.Intn(16), Module: rng.Intn(16), Var: rng.Intn(32)},
		}
		nw.RoutePhase(attempts)
		cur := nw.Stats()
		if cur.Cycles < prev.Cycles || cur.Hops < prev.Hops || cur.Served < prev.Served {
			t.Fatalf("stats regressed: %+v -> %+v", prev, cur)
		}
		prev = cur
	}
}

// TestBandwidthSetterAffectsServiceRate: two packets reaching the SAME
// module simultaneously via the two independent rails (column rail and
// row rail) are serialized at capacity 1 but served together at capacity
// 2. (Same-rail packets serialize on shared tree edges before the module,
// so dual rail is the only way two packets arrive in the same cycle.)
func TestBandwidthSetterAffectsServiceRate(t *testing.T) {
	const side = 16
	mk := func(capacity int) int64 {
		nw := NewNetwork(side, ModulesAtLeaves, Config{
			Policy:   QueueOnCollision,
			DualRail: true,
			// The free coordinate: row 3 for the col-rail packet (var 1),
			// column 5 for the row-rail packet (var 2) — both end at
			// module (3,5) via fully disjoint trees.
			RowOf: func(v, cp int) int {
				if v == 1 {
					return 3
				}
				return 5
			},
		})
		nw.SetBandwidth(capacity)
		attempts := []quorum.Attempt{
			// Column rail: bank/col 5, row 3 → module (3,5) via CT(5).
			{Proc: 1, Module: 5, Var: 1, Copy: 0},
			// Row rail: row bank 3, col 5 → module (3,5) via CT(3)+RT(3).
			{Proc: 2, Module: side + 3, Var: 2, Copy: 0},
		}
		granted, cycles, load := nw.RoutePhase(attempts)
		if !granted[0] || !granted[1] {
			t.Fatal("queue policy must grant both")
		}
		if load != 2 {
			t.Fatalf("expected both packets on one module, load=%d", load)
		}
		return cycles
	}
	if mk(2) >= mk(1) {
		t.Error("higher module bandwidth did not reduce cycles")
	}
}
