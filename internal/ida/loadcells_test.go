package ida

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestLoadCellsCrossingBlockBoundaries(t *testing.T) {
	mem := NewMemory(16, Config{MemCells: 64, BlockLen: 4, Shares: 8})
	// 4-cell blocks: a 10-word load starting at 2 spans blocks 0,1,2.
	vals := make([]model.Word, 10)
	for i := range vals {
		vals[i] = model.Word(1000 + i)
	}
	mem.LoadCells(2, vals)
	for i, want := range vals {
		if got := mem.ReadCell(2 + i); got != want {
			t.Errorf("cell %d = %d, want %d", 2+i, got, want)
		}
	}
	// Neighbors on both sides untouched.
	if mem.ReadCell(1) != 0 || mem.ReadCell(12) != 0 {
		t.Error("LoadCells leaked into neighboring cells")
	}
}

func TestLoadCellsThenProtocolWrites(t *testing.T) {
	// Bulk setup followed by protocol traffic on the same blocks must
	// stay coherent (version interplay between LoadCells and steps).
	mem := NewMemory(8, Config{MemCells: 32, BlockLen: 4, Shares: 8})
	vals := []model.Word{10, 20, 30, 40, 50, 60, 70, 80}
	mem.LoadCells(0, vals)
	b := model.NewBatch(8)
	b[0] = model.Request{Proc: 0, Op: model.OpWrite, Addr: 2, Value: 99}
	mem.ExecuteStep(b)
	want := []model.Word{10, 20, 99, 40, 50, 60, 70, 80}
	for i, w := range want {
		if got := mem.ReadCell(i); got != w {
			t.Errorf("cell %d = %d, want %d", i, got, w)
		}
	}
}

// Property: arbitrary interleavings of LoadCells and ReadCell match a
// plain slice model.
func TestLoadCellsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const m = 48
		mem := NewMemory(8, Config{MemCells: m, BlockLen: 3, Shares: 6, Seed: seed})
		ref := make([]model.Word, m)
		for op := 0; op < 12; op++ {
			base := rng.Intn(m)
			k := 1 + rng.Intn(m-base)
			vals := make([]model.Word, k)
			for i := range vals {
				vals[i] = model.Word(rng.Int63n(1 << 30))
				ref[base+i] = vals[i]
			}
			mem.LoadCells(base, vals)
		}
		for a := 0; a < m; a++ {
			if mem.ReadCell(a) != ref[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestExtremeWordValues(t *testing.T) {
	mem := NewMemory(8, Config{MemCells: 32})
	extremes := []model.Word{0, -1, 1<<63 - 1, -(1 << 62), 42}
	mem.LoadCells(0, extremes)
	for i, want := range extremes {
		if got := mem.ReadCell(i); got != want {
			t.Errorf("cell %d = %d, want %d (limb coding must be exact)", i, got, want)
		}
	}
}
