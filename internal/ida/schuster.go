package ida

import (
	"fmt"
	"sort"

	"repro/internal/gf"
	"repro/internal/model"
	"repro/internal/xmath"
)

// Memory is the Schuster (1987) P-RAM shared memory: the m cells are
// divided into blocks of b cells; each block is stored in recoded form as
// d versioned shares spread over d distinct modules of an n-processor MPC.
// Accessing a variable touches a quorum of (d+b)/2 shares of its block —
// any two such quorums intersect in ≥ b shares, so a read always finds b
// shares of the latest version and can decode.
//
// With b and d both Θ(log n), total memory grows only by the constant
// factor d/b, while each access processes Θ(b) elements — exactly the
// trade the paper quotes for this scheme. Implements model.Backend.
type Memory struct {
	n, m   int
	mode   model.Mode
	disp   *Dispersal
	q      int // quorum size (d+b)/2
	blocks int
	mods   int // module count (= n: MPC granularity)

	shareMod []uint32  // blocks×d: module of each share
	version  []uint32  // blocks×d: version stamp of each share
	data     []gf.Elem // blocks×d×limbs: share payloads
	clock    uint32

	// accumulated work statistics
	fieldOps int64
}

// limbs is the number of 16-bit field elements a 64-bit word splits into.
const limbs = 4

// Config sizes the memory.
type Config struct {
	// MemCells is m, the number of shared cells (default n²).
	MemCells int
	// BlockLen is b (default max(2, ceil(log2 n)) — the paper's Θ(log n)).
	BlockLen int
	// Shares is d (default 2b, storage blowup 2).
	Shares int
	// Mode is the conflict convention (default CRCW-Priority).
	Mode model.Mode
	// Seed scatters shares over modules.
	Seed int64
}

// NewMemory builds a Schuster memory for an n-processor machine.
func NewMemory(n int, cfg Config) *Memory {
	if cfg.MemCells == 0 {
		cfg.MemCells = n * n
	}
	if cfg.BlockLen == 0 {
		cfg.BlockLen = max(2, xmath.CeilLog2(n))
	}
	if cfg.Shares == 0 {
		cfg.Shares = 2 * cfg.BlockLen
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Shares > n {
		panic(fmt.Sprintf("ida.NewMemory: d=%d shares need d distinct modules but M=n=%d", cfg.Shares, n))
	}
	disp := NewDispersal(cfg.BlockLen, cfg.Shares)
	blocks := xmath.CeilDiv(cfg.MemCells, cfg.BlockLen)
	mem := &Memory{
		n:    n,
		m:    cfg.MemCells,
		mode: cfg.Mode,
		disp: disp,
		// Quorum ceil((d+b)/2): any two quorums intersect in ≥ b shares.
		q:        (cfg.Shares + cfg.BlockLen + 1) / 2,
		blocks:   blocks,
		mods:     n,
		shareMod: make([]uint32, blocks*cfg.Shares),
		version:  make([]uint32, blocks*cfg.Shares),
		data:     make([]gf.Elem, blocks*cfg.Shares*limbs),
	}
	mem.placeShares(cfg.Seed)
	mem.initZeroBlocks()
	return mem
}

// placeShares assigns each block's d shares to d distinct modules,
// deterministically from the seed.
func (mem *Memory) placeShares(seed int64) {
	d := mem.disp.D()
	for blk := 0; blk < mem.blocks; blk++ {
		seen := make(map[uint32]bool, d)
		for s := 0; s < d; s++ {
			h := mix(uint64(seed) ^ uint64(blk)*0x9e37 ^ uint64(s)<<32)
			mod := uint32(h % uint64(mem.mods))
			for seen[mod] {
				h = mix(h)
				mod = uint32(h % uint64(mem.mods))
			}
			seen[mod] = true
			mem.shareMod[blk*d+s] = mod
		}
	}
}

// initZeroBlocks stores the encoding of the all-zero block everywhere
// (evaluations of the zero polynomial are zero, so the zero value already
// in data is correct; versions stay 0).
func (mem *Memory) initZeroBlocks() {}

// Name implements model.Backend.
func (mem *Memory) Name() string {
	return fmt.Sprintf("Schuster-IDA(n=%d, b=%d, d=%d)", mem.n, mem.disp.B(), mem.disp.D())
}

// MemSize implements model.Backend.
func (mem *Memory) MemSize() int { return mem.m }

// Procs implements model.Backend.
func (mem *Memory) Procs() int { return mem.n }

// Blowup returns the storage expansion d/b (the scheme's "redundancy" in
// space, a constant by construction).
func (mem *Memory) Blowup() float64 { return mem.disp.Blowup() }

// QuorumSize returns (d+b)/2, the shares touched per access.
func (mem *Memory) QuorumSize() int { return mem.q }

// FieldOps returns the accumulated field-operation work — the scheme's
// hidden Θ(log n) per-access cost.
func (mem *Memory) FieldOps() int64 { return mem.fieldOps }

// ExecuteStep implements model.Backend.
func (mem *Memory) ExecuteStep(batch model.Batch) model.StepReport {
	need := len(batch)
	for _, r := range batch {
		if r.Op != model.OpNone && r.Proc >= need {
			need = r.Proc + 1 // sparse batch from a direct caller
		}
	}
	rep := model.StepReport{Values: make([]model.Word, need)}
	rep.Err = model.CheckConflicts(batch, mem.mode)

	// Group the step's accesses by block.
	type blockWork struct {
		readers []model.Request
		writers []model.Request
	}
	work := make(map[int]*blockWork)
	for _, r := range batch {
		if r.Op == model.OpNone {
			continue
		}
		blk := r.Addr / mem.disp.B()
		bw := work[blk]
		if bw == nil {
			bw = &blockWork{}
			work[blk] = bw
		}
		if r.Op == model.OpRead {
			bw.readers = append(bw.readers, r)
		} else {
			bw.writers = append(bw.writers, r)
		}
	}
	blks := make([]int, 0, len(work))
	//pram:unordered key collection; blks is sorted on the next line
	for b := range work {
		blks = append(blks, b)
	}
	sort.Ints(blks)

	mem.clock++
	var accesses int64
	loads := make(map[uint32]int)
	for _, blk := range blks {
		bw := work[blk]
		block := mem.readBlock(blk, &accesses, loads)
		// Reads observe pre-step state.
		for _, r := range bw.readers {
			rep.Values[r.Proc] = decodeWord(block, r.Addr%mem.disp.B())
		}
		// Apply this block's writes per conflict mode, then re-disperse.
		if len(bw.writers) > 0 {
			sort.Slice(bw.writers, func(i, j int) bool {
				return bw.writers[i].Proc < bw.writers[j].Proc
			})
			applied := map[int]bool{}
			for _, w := range bw.writers {
				off := w.Addr % mem.disp.B()
				if mem.mode == model.CRCWArbitrary {
					encodeWord(block, off, w.Value) // last (highest proc) wins
				} else if !applied[off] {
					encodeWord(block, off, w.Value) // first (lowest proc) wins
					applied[off] = true
				}
			}
			mem.writeBlock(blk, block, &accesses, loads)
		}
	}
	// Cost: the step's share accesses are served by modules of bandwidth
	// one per phase, so the step takes max-module-load phases.
	maxLoad := 0
	//pram:unordered max over module loads commutes
	for _, l := range loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	rep.Time = int64(maxLoad)
	rep.Phases = maxLoad
	rep.CopyAccesses = accesses
	rep.ModuleContention = maxLoad
	return rep
}

// quorumShares returns the deterministic, version-rotated q-subset of
// share indices used for this access.
func (mem *Memory) quorumShares(blk int, salt uint32) []int {
	d := mem.disp.D()
	start := int(mix(uint64(blk)<<32|uint64(salt)) % uint64(d))
	out := make([]int, mem.q)
	for i := range out {
		out[i] = (start + i) % d
	}
	return out
}

// readBlock gathers a read quorum, finds the newest version, and decodes
// the block's limb planes.
func (mem *Memory) readBlock(blk int, accesses *int64, loads map[uint32]int) []gf.Vec {
	d := mem.disp.D()
	idxs := mem.quorumShares(blk, mem.clock)
	newest := uint32(0)
	for _, s := range idxs {
		*accesses++
		loads[mem.shareMod[blk*d+s]]++
		if v := mem.version[blk*d+s]; v > newest {
			newest = v
		}
	}
	// Collect b shares carrying the newest version (quorum intersection
	// guarantees at least b exist among the q read).
	var take []int
	for _, s := range idxs {
		if mem.version[blk*d+s] == newest {
			take = append(take, s)
		}
		if len(take) == mem.disp.B() {
			break
		}
	}
	if len(take) < mem.disp.B() {
		panic(fmt.Sprintf("ida: quorum intersection violated at block %d: %d fresh shares < b=%d",
			blk, len(take), mem.disp.B()))
	}
	planes := make([]gf.Vec, limbs)
	for pl := 0; pl < limbs; pl++ {
		shares := make(gf.Vec, mem.disp.B())
		for i, s := range take {
			shares[i] = mem.data[(blk*d+s)*limbs+pl]
		}
		planes[pl] = mem.disp.Decode(take, shares)
		mem.fieldOps += mem.disp.FieldOpsDecode()
	}
	return planes
}

// writeBlock re-encodes the block and installs a write quorum of shares
// with a fresh version.
func (mem *Memory) writeBlock(blk int, planes []gf.Vec, accesses *int64, loads map[uint32]int) {
	d := mem.disp.D()
	newVersion := mem.clock
	encoded := make([]gf.Vec, limbs)
	for pl := 0; pl < limbs; pl++ {
		encoded[pl] = mem.disp.Encode(planes[pl])
		mem.fieldOps += mem.disp.FieldOpsEncode()
	}
	for _, s := range mem.quorumShares(blk, mem.clock^0x5bd1) {
		*accesses++
		loads[mem.shareMod[blk*d+s]]++
		mem.version[blk*d+s] = newVersion
		for pl := 0; pl < limbs; pl++ {
			mem.data[(blk*d+s)*limbs+pl] = encoded[pl][s]
		}
	}
}

// ReadCell implements model.Backend (zero-cost verification view).
func (mem *Memory) ReadCell(a model.Addr) model.Word {
	var acc int64
	var loads = map[uint32]int{}
	block := mem.readBlock(a/mem.disp.B(), &acc, loads)
	return decodeWord(block, a%mem.disp.B())
}

// LoadCells implements model.Backend: bulk initialization re-disperses the
// touched blocks at full width (all d shares, version 0 semantics kept by
// bumping the clock so later quorum reads see consistency).
func (mem *Memory) LoadCells(base model.Addr, vals []model.Word) {
	b := mem.disp.B()
	d := mem.disp.D()
	touched := map[int]bool{}
	for i := range vals {
		touched[(base+i)/b] = true
	}
	var acc int64
	loads := map[uint32]int{}
	mem.clock++
	//pram:unordered distinct blocks touch disjoint planes; acc/loads accumulate commutatively
	for blk := range touched {
		planes := mem.readBlock(blk, &acc, loads)
		for i, v := range vals {
			if (base+i)/b == blk {
				encodeWord(planes, (base+i)%b, v)
			}
		}
		// Install ALL d shares (setup is free and total).
		newVersion := mem.clock
		for pl := 0; pl < limbs; pl++ {
			enc := mem.disp.Encode(planes[pl])
			for s := 0; s < d; s++ {
				mem.data[(blk*d+s)*limbs+pl] = enc[s]
				mem.version[blk*d+s] = newVersion
			}
		}
	}
}

// encodeWord splits a 64-bit word into the block's four 16-bit limb planes
// at cell offset off.
func encodeWord(planes []gf.Vec, off int, w model.Word) {
	u := uint64(w)
	for pl := 0; pl < limbs; pl++ {
		planes[pl][off] = gf.Elem((u >> (16 * pl)) & 0xffff)
	}
}

// decodeWord reassembles a 64-bit word from the limb planes.
func decodeWord(planes []gf.Vec, off int) model.Word {
	var u uint64
	for pl := 0; pl < limbs; pl++ {
		u |= uint64(planes[pl][off]) << (16 * pl)
	}
	return model.Word(u)
}

// mix is splitmix64's finalizer.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
