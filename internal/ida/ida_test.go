package ida

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gf"
	"repro/internal/ideal"
	"repro/internal/model"
	"repro/internal/workloads"
)

func TestDispersalRoundtripAllSubsets(t *testing.T) {
	dp := NewDispersal(3, 6)
	block := gf.Vec{11, 22, 33}
	shares := dp.Encode(block)
	if len(shares) != 6 {
		t.Fatalf("shares = %d, want 6", len(shares))
	}
	// Every 3-subset of the 6 shares must recover the block.
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			for k := j + 1; k < 6; k++ {
				idxs := []int{i, j, k}
				got := dp.Decode(idxs, gf.Vec{shares[i], shares[j], shares[k]})
				for x := range block {
					if got[x] != block[x] {
						t.Fatalf("subset %v: got %v, want %v", idxs, got, block)
					}
				}
			}
		}
	}
}

func TestDispersalRoundtripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := 1 + rng.Intn(10)
		d := b + rng.Intn(10)
		dp := NewDispersal(b, d)
		block := make(gf.Vec, b)
		for i := range block {
			block[i] = gf.Elem(rng.Intn(gf.P))
		}
		shares := dp.Encode(block)
		// Random b-subset.
		perm := rng.Perm(d)[:b]
		sub := make(gf.Vec, b)
		for i, ix := range perm {
			sub[i] = shares[ix]
		}
		got := dp.Decode(perm, sub)
		for i := range block {
			if got[i] != block[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDispersalBadParamsPanics(t *testing.T) {
	for _, tc := range [][2]int{{0, 3}, {4, 3}, {1, gf.P}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDispersal(%d,%d) did not panic", tc[0], tc[1])
				}
			}()
			NewDispersal(tc[0], tc[1])
		}()
	}
}

func TestDispersalBlowup(t *testing.T) {
	if NewDispersal(4, 8).Blowup() != 2 {
		t.Error("blowup wrong")
	}
}

func TestMemoryReadZeroInitially(t *testing.T) {
	mem := NewMemory(16, Config{MemCells: 64})
	for _, a := range []int{0, 7, 63} {
		if got := mem.ReadCell(a); got != 0 {
			t.Errorf("cell %d = %d, want 0", a, got)
		}
	}
}

func TestMemoryWriteReadStep(t *testing.T) {
	mem := NewMemory(16, Config{MemCells: 64})
	w := model.NewBatch(16)
	w[0] = model.Request{Proc: 0, Op: model.OpWrite, Addr: 5, Value: 1234}
	w[1] = model.Request{Proc: 1, Op: model.OpWrite, Addr: 40, Value: -77}
	rep := mem.ExecuteStep(w)
	if rep.Time <= 0 {
		t.Error("write step charged no time")
	}
	r := model.NewBatch(16)
	r[2] = model.Request{Proc: 2, Op: model.OpRead, Addr: 5}
	r[3] = model.Request{Proc: 3, Op: model.OpRead, Addr: 40}
	rep = mem.ExecuteStep(r)
	if rep.Values[2] != 1234 {
		t.Errorf("read = %d, want 1234", rep.Values[2])
	}
	if rep.Values[3] != -77 {
		t.Errorf("read = %d, want -77 (negative words must survive limb coding)", rep.Values[3])
	}
}

func TestMemoryReadsSeePreStepState(t *testing.T) {
	mem := NewMemory(8, Config{MemCells: 32})
	mem.LoadCells(3, []model.Word{50})
	b := model.NewBatch(8)
	b[0] = model.Request{Proc: 0, Op: model.OpWrite, Addr: 3, Value: 99}
	b[1] = model.Request{Proc: 1, Op: model.OpRead, Addr: 3}
	rep := mem.ExecuteStep(b)
	if rep.Values[1] != 50 {
		t.Errorf("same-step read = %d, want pre-step 50", rep.Values[1])
	}
	if mem.ReadCell(3) != 99 {
		t.Errorf("write lost: %d", mem.ReadCell(3))
	}
}

func TestMemorySameBlockWritersResolvedByPriority(t *testing.T) {
	mem := NewMemory(8, Config{MemCells: 32, Mode: model.CRCWPriority})
	b := model.NewBatch(8)
	b[4] = model.Request{Proc: 4, Op: model.OpWrite, Addr: 10, Value: 44}
	b[2] = model.Request{Proc: 2, Op: model.OpWrite, Addr: 10, Value: 22}
	mem.ExecuteStep(b)
	if got := mem.ReadCell(10); got != 22 {
		t.Errorf("priority write = %d, want 22 (lowest proc)", got)
	}
}

func TestMemoryEquivalenceWithIdeal(t *testing.T) {
	f := func(seed int64) bool {
		const n, m = 8, 64
		mem := NewMemory(n, Config{MemCells: m, Mode: model.CRCWPriority, Seed: seed})
		id := ideal.New(n, m, model.CRCWPriority)
		rng := rand.New(rand.NewSource(seed))
		for round := 0; round < 6; round++ {
			batch := model.NewBatch(n)
			for i := 0; i < n; i++ {
				switch rng.Intn(3) {
				case 0:
					batch[i] = model.Request{Proc: i, Op: model.OpRead, Addr: rng.Intn(m)}
				case 1:
					batch[i] = model.Request{Proc: i, Op: model.OpWrite, Addr: rng.Intn(m), Value: model.Word(rng.Int63n(1 << 40))}
				}
			}
			sr := mem.ExecuteStep(batch)
			ir := id.ExecuteStep(batch)
			for p, v := range ir.Values {
				if sr.Values[p] != v {
					return false
				}
			}
		}
		for a := 0; a < m; a++ {
			if mem.ReadCell(a) != id.ReadCell(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMemoryWorkloadSuite(t *testing.T) {
	for _, w := range workloads.All(16, 3) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			mem := NewMemory(w.Procs, Config{MemCells: w.Cells, Mode: w.Mode})
			if _, err := workloads.RunOn(w, mem); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConstantStorageBlowupGrowingWork(t *testing.T) {
	// The scheme's signature: storage blowup d/b stays constant as n grows,
	// but the per-access field work grows with b = Θ(log n).
	small := NewMemory(16, Config{MemCells: 256})
	large := NewMemory(1024, Config{MemCells: 4096})
	if small.Blowup() != large.Blowup() {
		t.Errorf("blowup varies: %v vs %v", small.Blowup(), large.Blowup())
	}
	probe := func(mem *Memory) int64 {
		before := mem.FieldOps()
		b := model.NewBatch(mem.Procs())
		b[0] = model.Request{Proc: 0, Op: model.OpRead, Addr: 0}
		mem.ExecuteStep(b)
		return mem.FieldOps() - before
	}
	if probe(large) <= probe(small) {
		t.Error("per-access field work should grow with n (b = Θ(log n))")
	}
}

func TestMemoryFieldOpsAccumulate(t *testing.T) {
	mem := NewMemory(8, Config{MemCells: 32})
	if mem.FieldOps() != 0 {
		t.Error("fresh memory has nonzero work")
	}
	b := model.NewBatch(8)
	b[0] = model.Request{Proc: 0, Op: model.OpWrite, Addr: 0, Value: 1}
	mem.ExecuteStep(b)
	if mem.FieldOps() == 0 {
		t.Error("write performed no field work")
	}
}

func TestMemoryTooManySharesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("d > M did not panic")
		}
	}()
	NewMemory(4, Config{MemCells: 16, BlockLen: 4, Shares: 8})
}
