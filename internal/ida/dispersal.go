// Package ida implements Rabin's information dispersal algorithm (JACM
// 1989) and, on top of it, the Schuster (1987) alternative the paper
// discusses in Section 1: a P-RAM shared memory that achieves constant
// STORAGE blowup (d/b copies-worth of space) with redundancy-1 semantics,
// at the price of touching Θ(b) = Θ(log n) field elements per variable
// access — the trade-off the paper's constant-redundancy scheme avoids.
//
// A block of b field elements is recoded into d ≥ b shares — evaluations at
// d fixed distinct points of the polynomial whose coefficients are the
// block — such that ANY b shares recover the block by interpolation.
package ida

import (
	"fmt"

	"repro/internal/gf"
)

// Dispersal fixes the (b, d) recoding of Rabin's IDA.
type Dispersal struct {
	b, d   int
	points gf.Vec // d distinct nonzero evaluation points
}

// NewDispersal returns a b-of-d dispersal (1 ≤ b ≤ d < gf.P).
func NewDispersal(b, d int) *Dispersal {
	if b < 1 || d < b || d >= gf.P {
		panic(fmt.Sprintf("ida.NewDispersal: need 1 <= b <= d < %d (got b=%d d=%d)", gf.P, b, d))
	}
	pts := make(gf.Vec, d)
	for i := range pts {
		pts[i] = gf.Elem(i + 1)
	}
	return &Dispersal{b: b, d: d, points: pts}
}

// B returns the block length (shares needed to recover).
func (dp *Dispersal) B() int { return dp.b }

// D returns the share count.
func (dp *Dispersal) D() int { return dp.d }

// Blowup returns the storage expansion factor d/b.
func (dp *Dispersal) Blowup() float64 { return float64(dp.d) / float64(dp.b) }

// Encode recodes a block of b elements into d shares.
// Cost: O(b·d) field operations.
func (dp *Dispersal) Encode(block gf.Vec) gf.Vec {
	if len(block) != dp.b {
		panic(fmt.Sprintf("ida.Encode: block length %d, want %d", len(block), dp.b))
	}
	shares := make(gf.Vec, dp.d)
	for i, x := range dp.points {
		shares[i] = gf.EvalPoly(block, x)
	}
	return shares
}

// Decode recovers the original block from any b shares, given their
// indices in [0, d). Cost: O(b²) field operations (Newton interpolation;
// Rabin's FFT-point variant reaches O(b log b), an efficiency — not
// correctness — refinement).
func (dp *Dispersal) Decode(idxs []int, shares gf.Vec) gf.Vec {
	if len(idxs) != dp.b || len(shares) != dp.b {
		panic(fmt.Sprintf("ida.Decode: need exactly b=%d shares (got %d idxs, %d shares)",
			dp.b, len(idxs), len(shares)))
	}
	xs := make(gf.Vec, dp.b)
	for i, ix := range idxs {
		if ix < 0 || ix >= dp.d {
			panic(fmt.Sprintf("ida.Decode: share index %d out of [0,%d)", ix, dp.d))
		}
		xs[i] = dp.points[ix]
	}
	return gf.SolveVandermonde(xs, shares)
}

// FieldOpsEncode returns the field-operation count of one Encode, the unit
// of the scheme's per-access work accounting.
func (dp *Dispersal) FieldOpsEncode() int64 { return int64(dp.b) * int64(dp.d) * 2 }

// FieldOpsDecode returns the field-operation count of one Decode.
func (dp *Dispersal) FieldOpsDecode() int64 { return 3 * int64(dp.b) * int64(dp.b) }
