package replay

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/model"
	"repro/internal/mot"
	"repro/internal/quorum"
)

// magic identifies a trace file; the trailing byte is the format version.
var magic = [8]byte{'P', 'R', 'A', 'M', 'T', 'R', 'C', '1'}

// formatVersion is written into the header frame (redundantly with the
// magic's version byte) so readers can give a precise error on mismatch.
const formatVersion = 1

// Frame kinds. See the package doc's format section.
const (
	kindHeader  byte = 0x01
	kindLoad    byte = 0x02
	kindStep    byte = 0x03
	kindBarrier byte = 0x04
	kindEOF     byte = 0x05
)

// maxFramePayload caps a frame's declared payload length so a corrupted
// length varint cannot drive allocation or blocking reads. 256 MiB
// comfortably covers the largest legitimate frame (a LoadCells image
// chunk).
const maxFramePayload = 1 << 28

// castagnoli is the CRC-32C table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// kindCRC[b] is the CRC-32C state after processing the single byte b —
// precomputed so frameCRC needs no per-call byte slice (the read path is
// allocation-free).
var kindCRC = func() (t [256]uint32) {
	var b [1]byte
	for i := range t {
		b[0] = byte(i)
		t[i] = crc32.Update(0, castagnoli, b[:])
	}
	return t
}()

// frameCRC computes the checksum covering a frame's kind byte and payload.
func frameCRC(kind byte, payload []byte) uint32 {
	return crc32.Update(kindCRC[kind], castagnoli, payload)
}

// ErrTruncated reports a stream that ended before its eof frame.
var ErrTruncated = errors.New("replay: trace truncated (no eof frame)")

// ErrCorrupt is wrapped by every integrity failure (bad magic, checksum
// mismatch, malformed varints, out-of-range ids), so callers can
// distinguish corruption from I/O errors with errors.Is.
var ErrCorrupt = errors.New("replay: corrupt trace")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// StepCosts is the per-step verification record embedded at record time:
// the recorded StepReport's cost scalars plus an FNV-1a hash of its dense
// Values buffer. Replaying the step must reproduce all of them bit-for-bit
// (Err excepted — conflict-discipline violations are a dedup-layer
// property replay does not re-check, so Err only tracks protocol stalls on
// both sides; it is reported, not verified).
type StepCosts struct {
	Time             int64
	Phases           int
	CopyAccesses     int64
	NetworkCycles    int64
	ModuleContention int
	ValuesHash       uint64
	Err              bool
}

// costsOf extracts the verification record from a report.
func costsOf(rep *model.StepReport) StepCosts {
	return StepCosts{
		Time:             rep.Time,
		Phases:           rep.Phases,
		CopyAccesses:     rep.CopyAccesses,
		NetworkCycles:    rep.NetworkCycles,
		ModuleContention: rep.ModuleContention,
		ValuesHash:       HashValues(rep.Values),
		Err:              rep.Err != nil,
	}
}

// HashValues fingerprints a step's dense Values buffer with FNV-1a — the
// per-step analogue of Store.Fingerprint, covering what reads returned the
// way the final fingerprint covers what writes left behind.
func HashValues(values []model.Word) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range values {
		x := uint64(v)
		for b := 0; b < 64; b += 8 {
			h ^= (x >> b) & 0xff
			h *= prime
		}
	}
	return h
}

// --- encoding ------------------------------------------------------------

// appendFixed64 appends a little-endian 8-byte word.
func appendFixed64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// encodeHeader renders the header frame payload from a normalized config
// and the derived validation fields of its build.
func encodeHeader(buf []byte, b *Built, startFingerprint uint64) []byte {
	c := b.Cfg
	buf = binary.AppendUvarint(buf, formatVersion)
	buf = append(buf, byte(c.Kind))
	buf = binary.AppendUvarint(buf, uint64(c.Lanes))
	buf = binary.AppendUvarint(buf, uint64(c.Procs))
	buf = append(buf, byte(c.Mode))
	buf = binary.AppendVarint(buf, c.Seed)
	buf = appendFixed64(buf, math.Float64bits(c.KExp))
	buf = appendFixed64(buf, math.Float64bits(c.Gran))
	var flags byte
	if c.DualRail {
		flags |= 1
	}
	if c.TwoStage {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = append(buf, byte(c.Policy))
	buf = binary.AppendUvarint(buf, uint64(c.Stage1Phases))
	buf = binary.AppendUvarint(buf, uint64(c.Stage2Bandwidth))
	// Derived validation fields: a reader rebuilds the machine from the
	// fields above and cross-checks these.
	buf = binary.AppendUvarint(buf, uint64(b.Params.Mem))
	buf = binary.AppendUvarint(buf, uint64(b.Params.M))
	buf = binary.AppendUvarint(buf, uint64(b.Params.R()))
	buf = binary.AppendUvarint(buf, uint64(b.Side))
	buf = appendFixed64(buf, startFingerprint)
	return buf
}

// encodeLoad renders a load frame payload.
func encodeLoad(buf []byte, lane int, base model.Addr, vals []model.Word) []byte {
	buf = binary.AppendUvarint(buf, uint64(lane))
	buf = binary.AppendUvarint(buf, uint64(base))
	buf = binary.AppendUvarint(buf, uint64(len(vals)))
	for _, v := range vals {
		buf = binary.AppendVarint(buf, int64(v))
	}
	return buf
}

// encodeStep renders a step frame payload: the deduplicated batches in
// delta form plus the verification costs.
func encodeStep(buf []byte, lane int, reads []quorum.Request, readerOff, readerProcs []int32,
	writes []quorum.Request, costs StepCosts) []byte {
	buf = binary.AppendUvarint(buf, uint64(lane))
	buf = binary.AppendUvarint(buf, uint64(len(reads)))
	buf = binary.AppendUvarint(buf, uint64(len(writes)))
	prevProc, prevVar := int64(0), int64(0)
	for g := range reads {
		buf = binary.AppendVarint(buf, int64(reads[g].Proc)-prevProc)
		buf = binary.AppendVarint(buf, int64(reads[g].Var)-prevVar)
		prevProc, prevVar = int64(reads[g].Proc), int64(reads[g].Var)
		run := readerProcs[readerOff[g]:readerOff[g+1]]
		// The run's first entry is the request's own representative
		// processor; only the extras are encoded, as ascending deltas.
		buf = binary.AppendUvarint(buf, uint64(len(run)-1))
		prev := int64(run[0])
		for _, p := range run[1:] {
			buf = binary.AppendUvarint(buf, uint64(int64(p)-prev))
			prev = int64(p)
		}
	}
	prevProc, prevVar = 0, 0
	for g := range writes {
		buf = binary.AppendVarint(buf, int64(writes[g].Proc)-prevProc)
		buf = binary.AppendVarint(buf, int64(writes[g].Var)-prevVar)
		prevProc, prevVar = int64(writes[g].Proc), int64(writes[g].Var)
		buf = binary.AppendVarint(buf, int64(writes[g].Value))
	}
	buf = binary.AppendUvarint(buf, uint64(costs.Time))
	buf = binary.AppendUvarint(buf, uint64(costs.Phases))
	buf = binary.AppendUvarint(buf, uint64(costs.CopyAccesses))
	buf = binary.AppendUvarint(buf, uint64(costs.NetworkCycles))
	buf = binary.AppendUvarint(buf, uint64(costs.ModuleContention))
	buf = appendFixed64(buf, costs.ValuesHash)
	if costs.Err {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

// encodeEOF renders the eof frame payload.
func encodeEOF(buf []byte, steps int64, fingerprint uint64) []byte {
	buf = binary.AppendUvarint(buf, uint64(steps))
	buf = appendFixed64(buf, fingerprint)
	return buf
}

// --- decoding ------------------------------------------------------------

// decoder is a bounds-checked cursor over one frame's payload. All methods
// are safe on corrupt input: they latch an error and return zero values.
type decoder struct {
	buf []byte
	pos int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = corruptf(format, args...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.fail("malformed uvarint at payload offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		d.fail("malformed varint at payload offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

// count decodes a uvarint element count and sanity-bounds it by the bytes
// that could possibly encode that many elements (each costs at least min
// bytes), so a corrupt count cannot drive allocation.
func (d *decoder) count(minBytes int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if limit := uint64(len(d.buf)-d.pos) / uint64(minBytes); v > limit {
		d.fail("element count %d exceeds remaining payload", v)
		return 0
	}
	return int(v)
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.buf) {
		d.fail("payload truncated at offset %d", d.pos)
		return 0
	}
	b := d.buf[d.pos]
	d.pos++
	return b
}

func (d *decoder) fixed64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.pos+8 > len(d.buf) {
		d.fail("payload truncated at offset %d", d.pos)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.pos:])
	d.pos += 8
	return v
}

// finish errors on trailing garbage.
func (d *decoder) finish() error {
	if d.err == nil && d.pos != len(d.buf) {
		d.fail("%d trailing payload bytes", len(d.buf)-d.pos)
	}
	return d.err
}

// decodeHeader parses a header payload into a config plus the derived
// validation fields.
func decodeHeader(payload []byte) (cfg Config, mem, modules, redundancy, side int, startFP uint64, err error) {
	d := &decoder{buf: payload}
	if v := d.uvarint(); d.err == nil && v != formatVersion {
		return cfg, 0, 0, 0, 0, 0, corruptf("format version %d, this reader speaks %d", v, formatVersion)
	}
	cfg.Kind = MachineKind(d.byte())
	cfg.Lanes = int(d.uvarint())
	cfg.Procs = int(d.uvarint())
	cfg.Mode = model.Mode(d.byte())
	cfg.Seed = d.varint()
	cfg.KExp = math.Float64frombits(d.fixed64())
	cfg.Gran = math.Float64frombits(d.fixed64())
	flags := d.byte()
	cfg.DualRail = flags&1 != 0
	cfg.TwoStage = flags&2 != 0
	cfg.Policy = mot.Policy(d.byte())
	cfg.Stage1Phases = int(d.uvarint())
	cfg.Stage2Bandwidth = int(d.uvarint())
	mem = int(d.uvarint())
	modules = int(d.uvarint())
	redundancy = int(d.uvarint())
	side = int(d.uvarint())
	startFP = d.fixed64()
	if err := d.finish(); err != nil {
		return cfg, 0, 0, 0, 0, 0, err
	}
	const sane = 1 << 40 // bound header dimensions before they reach Build
	if cfg.Lanes < 1 || cfg.Lanes > 1<<20 || cfg.Procs < 1 || cfg.Procs > sane ||
		mem < 1 || mem > sane || flags > 3 ||
		math.IsNaN(cfg.KExp) || math.IsInf(cfg.KExp, 0) ||
		math.IsNaN(cfg.Gran) || math.IsInf(cfg.Gran, 0) {
		return cfg, 0, 0, 0, 0, 0, corruptf("implausible header dimensions (lanes=%d procs=%d mem=%d)", cfg.Lanes, cfg.Procs, mem)
	}
	return cfg, mem, modules, redundancy, side, startFP, nil
}
