package replay

import (
	"bytes"
	"io"

	"repro/internal/model"
)

// BatchSource turns one lane of a recorded PRAMTRC1 trace back into LIVE
// model.Batch step batches — the serving front end's trace-as-traffic
// adapter (repro/internal/serve). Where the Replayer feeds recorded
// post-dedup request streams straight into the engines that recorded them
// (bit-for-bit replay against the trace's own machine), a BatchSource
// reconstructs the PRE-dedup batch of each step — every reader in a read's
// fan-out list becomes its own OpRead request, every write an OpWrite —
// so the stream can be submitted to a DIFFERENT machine through the normal
// ExecuteStep front end. Re-deduplicating a reconstructed batch yields the
// recorded dedup stream again (reader runs are exhaustive and ascending),
// so feeding the reconstruction to an identical machine reproduces the
// recorded costs and store image exactly (TestBatchSourceRoundTrip).
//
// Load and barrier frames are skipped: a traffic source replays access
// SHAPE, not memory initialization, and round structure belongs to the
// consuming scheduler. Addresses are the trace's own [0, Mem()) variable
// ids; a consumer serving the stream into a smaller or banded variable
// space remaps them (serve.Remap).
//
// NextBatch returns batches aliasing one reusable buffer and performs zero
// steady-state heap allocations, like every other replay read path.
type BatchSource struct {
	data []byte
	br   bytes.Reader
	r    *Reader
	lane int
	loop bool

	batch model.Batch // indexed by proc, len = Config().Procs
	steps int64
	done  bool
	err   error
}

// NewBatchSource opens a trace held in memory as a batch stream for one
// lane (single-lane traces use lane 0). When loop is true the source
// rewinds at eof and streams the trace's steps again, indefinitely;
// otherwise it is exhausted at eof.
func NewBatchSource(data []byte, lane int, loop bool) (*BatchSource, error) {
	s := &BatchSource{data: data, lane: lane, loop: loop}
	s.br.Reset(data)
	r, err := NewReader(&s.br)
	if err != nil {
		return nil, err
	}
	if lane < 0 || lane >= r.Config().Lanes {
		return nil, corruptf("lane %d outside the trace's %d lanes", lane, r.Config().Lanes)
	}
	s.r = r
	s.batch = model.NewBatch(r.Config().Procs)
	return s, nil
}

// Config returns the trace's recorded machine configuration.
func (s *BatchSource) Config() Config { return s.r.Config() }

// Procs returns the per-lane processor count — the width of the batches
// NextBatch yields.
func (s *BatchSource) Procs() int { return s.r.Config().Procs }

// Mem returns the trace's variable-space size: every address NextBatch
// yields is in [0, Mem()).
func (s *BatchSource) Mem() int { return s.r.mem }

// Steps returns how many step batches have been yielded so far (across
// loop passes).
func (s *BatchSource) Steps() int64 { return s.steps }

// Err reports the stream error that ended the source early (nil after a
// clean eof).
func (s *BatchSource) Err() error { return s.err }

// NextBatch yields the next reconstructed step batch of the source's lane,
// or false when the trace is exhausted (clean eof on a non-looping source)
// or broken (Err() reports the cause). The batch aliases the source's
// reusable buffer — including across a loop rewind — and callers may
// mutate it freely before the next call.
func (s *BatchSource) NextBatch() (model.Batch, bool) {
	if s.done {
		return nil, false
	}
	for {
		f, err := s.r.Next()
		if err != nil {
			if err != io.EOF {
				s.err = err
			}
			s.done = true
			return nil, false
		}
		switch f.Kind {
		case KindStep:
			if f.Lane != s.lane {
				continue
			}
			s.reconstruct(f)
			s.steps++
			return s.batch, true
		case KindEOF:
			if !s.loop {
				s.done = true
				return nil, false
			}
			s.br.Reset(s.data)
			if err := s.r.Reset(&s.br); err != nil {
				s.err = err
				s.done = true
				return nil, false
			}
		}
		// Load and barrier frames, and other lanes' steps, are skipped.
	}
}

// reconstruct expands one post-dedup step frame into the per-processor
// batch: reader fan-out lists become one OpRead per reader, writes map
// one-to-one, every other processor idles (OpNone).
func (s *BatchSource) reconstruct(f *Frame) {
	b := s.batch
	for i := range b {
		b[i] = model.Request{Proc: i, Op: model.OpNone}
	}
	for g := range f.Reads {
		v := f.Reads[g].Var
		for _, p := range f.ReaderProcs[f.ReaderOff[g]:f.ReaderOff[g+1]] {
			b[p] = model.Request{Proc: int(p), Op: model.OpRead, Addr: v}
		}
	}
	for i := range f.Writes {
		w := &f.Writes[i]
		b[w.Proc] = model.Request{Proc: w.Proc, Op: model.OpWrite, Addr: w.Var, Value: w.Value}
	}
}
