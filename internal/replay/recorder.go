package replay

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"repro/internal/model"
	"repro/internal/quorum"
)

// Recorder captures a machine or pool run as a trace file. It implements
// quorum.StepSink: NewRecorder writes the header and attaches the sink to
// the built machines; the caller then drives the run exactly as it would
// without recording (ExecuteStep / ExecuteSteps / LoadCells) and finally
// calls Close, which appends the eof frame (recorded step count + final
// store fingerprint) and detaches.
//
// Multi-lane recording is race-free by construction: each shard machine
// encodes its frames into its own lane buffer (one goroutine per lane per
// step, see quorum.StepSink), and the pool's StepBarrier — ordered after
// every RecordStep of the round — flushes the round's lanes to the
// underlying writer in ascending lane order, the pool's canonical serial
// order. Loads are setup-time events and are written immediately.
//
// Writer errors are sticky: recording continues cheaply as a no-op and the
// first error is reported by Close (and by Err).
type Recorder struct {
	mu      sync.Mutex // guards w/err on the flush paths
	w       *bufio.Writer
	built   *Built
	lanes   int
	steps   int64
	pending [][]byte // per-lane framed bytes awaiting the round barrier
	scratch [][]byte // per-lane payload encoding buffers
	err     error
}

// NewRecorder writes the trace header for built's configuration onto w and
// attaches the recorder to built's machines. The store must still be in
// its post-construction state (the header embeds its fingerprint and
// replaying readers verify it): attach before any loads or steps.
func NewRecorder(w io.Writer, built *Built) (*Recorder, error) {
	r, err := NewSinkRecorder(w, built)
	if err != nil {
		return nil, err
	}
	if built.Pool != nil {
		built.Pool.SetStepSink(r)
	} else {
		built.Machine.SetStepSink(r, 0)
	}
	return r, nil
}

// NewSinkRecorder writes the trace header for built's configuration onto w
// but attaches NOTHING: the caller owns the sink wiring. This is the entry
// point for captures whose lane space is not the pool's shard space — the
// serving front end records through a translating sink that renames shard
// lanes to stable tenant lanes (so the lane count survives online pool
// resizes), and forwards to this recorder's StepSink methods itself.
// built.Machine and built.Pool may both be nil; only Cfg (normalized, with
// Lanes the caller's lane count), Store, Params and Side are read.
func NewSinkRecorder(w io.Writer, built *Built) (*Recorder, error) {
	r := &Recorder{
		w:       bufio.NewWriter(w),
		built:   built,
		lanes:   built.Cfg.Lanes,
		pending: make([][]byte, built.Cfg.Lanes),
		scratch: make([][]byte, built.Cfg.Lanes),
	}
	if _, err := r.w.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("replay: writing magic: %w", err)
	}
	hdr := encodeHeader(nil, built, built.Store.Fingerprint())
	if err := r.writeFrame(kindHeader, hdr); err != nil {
		return nil, err
	}
	return r, nil
}

// Err reports the first writer error, if any.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Steps reports how many step frames have been recorded so far.
func (r *Recorder) Steps() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.steps
}

// writeFrame emits one frame onto the buffered writer. Callers must hold
// mu (or be on the single-threaded setup path).
func (r *Recorder) writeFrame(kind byte, payload []byte) error {
	if r.err != nil {
		return r.err
	}
	var head [binary.MaxVarintLen64 + 1]byte
	head[0] = kind
	n := 1 + binary.PutUvarint(head[1:], uint64(len(payload)))
	if _, err := r.w.Write(head[:n]); err != nil {
		r.err = fmt.Errorf("replay: writing frame: %w", err)
		return r.err
	}
	if _, err := r.w.Write(payload); err != nil {
		r.err = fmt.Errorf("replay: writing frame: %w", err)
		return r.err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], frameCRC(kind, payload))
	if _, err := r.w.Write(crc[:]); err != nil {
		r.err = fmt.Errorf("replay: writing frame: %w", err)
	}
	return r.err
}

// frame appends a fully framed rendering of (kind, payload) to dst.
func frame(dst []byte, kind byte, payload []byte) []byte {
	dst = append(dst, kind)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, frameCRC(kind, payload))
}

// RecordStep implements quorum.StepSink. Called by lane machines — for
// pools, possibly concurrently across DIFFERENT lanes.
func (r *Recorder) RecordStep(lane int, reads []quorum.Request, readerOff, readerProcs []int32,
	writes []quorum.Request, rep model.StepReport) {
	if lane < 0 || lane >= r.lanes {
		r.failf("RecordStep lane %d outside [0,%d)", lane, r.lanes)
		return
	}
	payload := encodeStep(r.scratch[lane][:0], lane, reads, readerOff, readerProcs, writes, costsOf(&rep))
	r.scratch[lane] = payload
	r.pending[lane] = frame(r.pending[lane], kindStep, payload)
	if r.lanes == 1 {
		r.flushRound()
	}
}

// RecordLoad implements quorum.StepSink. Loads are setup-time,
// single-threaded events (see quorum.StepSink) and are flushed
// immediately, preserving global call order.
func (r *Recorder) RecordLoad(lane int, base model.Addr, vals []model.Word) {
	if lane < 0 || lane >= r.lanes {
		r.failf("RecordLoad lane %d outside [0,%d)", lane, r.lanes)
		return
	}
	payload := encodeLoad(r.scratch[lane][:0], lane, base, vals)
	r.scratch[lane] = payload
	r.mu.Lock()
	defer r.mu.Unlock()
	r.writeFrame(kindLoad, payload)
}

// StepBarrier implements quorum.StepSink: the pool calls it after every
// ExecuteSteps round, with all the round's RecordStep calls ordered before
// it. Flushes the round's lanes in ascending lane order followed by a
// barrier frame.
func (r *Recorder) StepBarrier() {
	r.flushRound()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lanes > 1 {
		r.writeFrame(kindBarrier, nil)
	}
}

// flushRound writes every lane's pending frames in ascending lane order.
func (r *Recorder) flushRound() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := range r.pending {
		if len(r.pending[k]) == 0 {
			continue
		}
		if r.err == nil {
			if _, err := r.w.Write(r.pending[k]); err != nil {
				r.err = fmt.Errorf("replay: writing frames: %w", err)
			}
		}
		r.pending[k] = r.pending[k][:0]
		r.steps++
	}
}

// failf latches a recording error.
func (r *Recorder) failf(format string, args ...any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err == nil {
		r.err = fmt.Errorf("replay: %s", fmt.Sprintf(format, args...))
	}
}

// Close flushes any pending lanes, writes the eof frame with the final
// store fingerprint, flushes the writer and detaches the sink. The
// recorder must not be used afterwards.
func (r *Recorder) Close() error {
	r.flushRound()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.built != nil {
		if r.built.Pool != nil {
			r.built.Pool.SetStepSink(nil)
		} else if r.built.Machine != nil {
			r.built.Machine.SetStepSink(nil, 0)
		}
	}
	payload := encodeEOF(nil, r.steps, r.built.Store.Fingerprint())
	r.writeFrame(kindEOF, payload)
	if err := r.w.Flush(); err != nil && r.err == nil {
		r.err = fmt.Errorf("replay: flushing trace: %w", err)
	}
	r.built = nil
	return r.err
}
