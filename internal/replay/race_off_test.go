//go:build !race

package replay

// raceEnabled reports that the race detector is active.
const raceEnabled = false
