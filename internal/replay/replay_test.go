package replay

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/mot"
)

// repFingerprint collapses a StepReport to its comparable fields (Values
// alias reusable buffers, so they are rendered into the string).
func repFingerprint(rep *model.StepReport) string {
	return fmt.Sprintf("t=%d ph=%d cyc=%d copies=%d cont=%d err=%v vals=%v",
		rep.Time, rep.Phases, rep.NetworkCycles, rep.CopyAccesses,
		rep.ModuleContention, rep.Err != nil, rep.Values)
}

// roundString renders one executed round for bit-for-bit comparison.
func roundString(agg *model.StepReport, lanes []model.StepReport) string {
	var sb strings.Builder
	sb.WriteString("agg " + repFingerprint(agg))
	for k := range lanes {
		fmt.Fprintf(&sb, " | lane%d %s", k, repFingerprint(&lanes[k]))
	}
	return sb.String()
}

// recordRun builds cfg's machines, records `steps` generated steps (after
// a LoadImage preamble) and returns the trace bytes, the live run's round
// strings, and the final store fingerprint.
func recordRun(t testing.TB, cfg Config, pattern Pattern, steps, loads int) ([]byte, []string, uint64) {
	t.Helper()
	built, err := cfg.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, built)
	if err != nil {
		t.Fatalf("recorder: %v", err)
	}
	if loads > 0 {
		LoadImage(built, loads, 99)
	}
	gen := NewGenerator(pattern, built.Cfg.Lanes, built.Cfg.Procs, built.Params.Mem, 7)
	var rounds []string
	for s := 0; s < steps; s++ {
		batches := gen.Step(s)
		if built.Pool != nil {
			agg, lanes := built.Pool.ExecuteSteps(batches)
			rounds = append(rounds, roundString(&agg, lanes))
		} else {
			rep := built.Machine.ExecuteStep(batches[0])
			rounds = append(rounds, roundString(&rep, []model.StepReport{rep}))
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return buf.Bytes(), rounds, built.Store.Fingerprint()
}

// replayRun replays a trace in verify mode and returns the replayed round
// strings, the summary and the final store fingerprint.
func replayRun(t *testing.T, data []byte) ([]string, Summary, uint64) {
	t.Helper()
	rp, err := Open(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	rp.Verify = true
	var rounds []string
	rp.OnRound = func(agg model.StepReport, lanes []model.StepReport) {
		rounds = append(rounds, roundString(&agg, lanes))
	}
	sum, err := rp.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return rounds, sum, rp.Built().Store.Fingerprint()
}

// roundTripConfigs is the coverage matrix of the acceptance criteria:
// bipartite and 2DMOT interconnects, dual-rail, two-stage, K ∈ {1, 4}.
var roundTripConfigs = []struct {
	name    string
	cfg     Config
	pattern Pattern
}{
	{"dmmpc", Config{Kind: KindDMMPC, Lanes: 1, Procs: 16, Mode: model.CRCWPriority}, Uniform},
	{"dmmpc-twostage", Config{Kind: KindDMMPC, Lanes: 1, Procs: 16, Mode: model.CRCWPriority, TwoStage: true}, Uniform},
	{"dmmpc-K4", Config{Kind: KindDMMPC, Lanes: 4, Procs: 8, Mode: model.CRCWPriority}, Banded},
	{"dmmpc-K4-cross", Config{Kind: KindDMMPC, Lanes: 4, Procs: 8, Mode: model.CRCWPriority}, Uniform},
	{"dmmpc-K4-twostage", Config{Kind: KindDMMPC, Lanes: 4, Procs: 8, Mode: model.CRCWPriority, TwoStage: true}, Banded},
	{"mot2d", Config{Kind: KindMOT2D, Lanes: 1, Procs: 8, Mode: model.CRCWPriority}, Uniform},
	{"mot2d-queue", Config{Kind: KindMOT2D, Lanes: 1, Procs: 8, Mode: model.CRCWPriority, Policy: mot.QueueOnCollision}, Uniform},
	{"mot2d-dualrail", Config{Kind: KindMOT2D, Lanes: 1, Procs: 8, Mode: model.CRCWPriority, DualRail: true}, Uniform},
	{"mot2d-twostage", Config{Kind: KindMOT2D, Lanes: 1, Procs: 8, Mode: model.CRCWPriority, TwoStage: true}, Uniform},
	{"mot2d-dualrail-twostage", Config{Kind: KindMOT2D, Lanes: 1, Procs: 8, Mode: model.CRCWPriority, DualRail: true, TwoStage: true}, Uniform},
	{"mot2d-K4", Config{Kind: KindMOT2D, Lanes: 4, Procs: 8, Mode: model.CRCWPriority}, Banded},
	{"mot2d-K4-dualrail", Config{Kind: KindMOT2D, Lanes: 4, Procs: 8, Mode: model.CRCWPriority, DualRail: true}, Banded},
	{"luccio", Config{Kind: KindLuccio, Lanes: 1, Procs: 8, Mode: model.CRCWPriority}, Uniform},
	{"dmmpc-hotspot", Config{Kind: KindDMMPC, Lanes: 1, Procs: 16, Mode: model.CRCWPriority}, Hotspot},
	{"dmmpc-broadcast", Config{Kind: KindDMMPC, Lanes: 1, Procs: 16, Mode: model.CRCWPriority}, Broadcast},
}

// TestRoundTrip is the acceptance property: for every covered config,
// record → replay produces bit-for-bit identical StepReports and store
// fingerprints, and the embedded verification passes.
func TestRoundTrip(t *testing.T) {
	for _, tc := range roundTripConfigs {
		t.Run(tc.name, func(t *testing.T) {
			const steps, loads = 12, 32
			data, liveRounds, liveFP := recordRun(t, tc.cfg, tc.pattern, steps, loads)
			gotRounds, sum, gotFP := replayRun(t, data)

			if len(gotRounds) != len(liveRounds) {
				t.Fatalf("replayed %d rounds, live run had %d", len(gotRounds), len(liveRounds))
			}
			for i := range liveRounds {
				if gotRounds[i] != liveRounds[i] {
					t.Errorf("round %d diverged:\n live   %s\n replay %s", i, liveRounds[i], gotRounds[i])
				}
			}
			if gotFP != liveFP {
				t.Errorf("store fingerprint: live %x, replay %x", liveFP, gotFP)
			}
			if !sum.VerifyOK() {
				t.Errorf("verify failed: %d mismatches %v (fingerprint ok=%v)",
					sum.Mismatches, sum.MismatchDetail, sum.FingerprintOK)
			}
			if sum.Steps != steps*int64(quorumLanes(tc.cfg)) {
				t.Errorf("summary counts %d steps, want %d", sum.Steps, steps*int64(quorumLanes(tc.cfg)))
			}
			if sum.Loads == 0 {
				t.Error("no load frames replayed")
			}
		})
	}
}

func quorumLanes(c Config) int {
	if c.Lanes < 1 {
		return 1
	}
	return c.Lanes
}

// TestSecondReplayIsIndependent re-opens the same trace twice; both
// replays must verify — replay must not depend on reader or machine state
// left over from a previous open.
func TestSecondReplayIsIndependent(t *testing.T) {
	data, _, _ := recordRun(t, Config{Kind: KindDMMPC, Lanes: 1, Procs: 16, Mode: model.CRCWPriority}, Uniform, 8, 16)
	for i := 0; i < 2; i++ {
		_, sum, _ := replayRun(t, data)
		if !sum.VerifyOK() {
			t.Fatalf("replay %d failed verification: %v", i, sum.MismatchDetail)
		}
	}
}

// TestResetReplaysAnotherPass drives a read-only trace for two passes
// through one Replayer via Reset — the multi-pass benchmark path.
func TestResetReplaysAnotherPass(t *testing.T) {
	// Broadcast steps are read-only, so a second pass stays verified.
	data, _, _ := recordRun(t, Config{Kind: KindDMMPC, Lanes: 1, Procs: 16, Mode: model.CRCWPriority}, Broadcast, 6, 0)
	rp, err := Open(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	rp.Verify = true
	if _, err := rp.Run(); err != nil {
		t.Fatal(err)
	}
	if err := rp.Reset(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	sum, err := rp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !sum.VerifyOK() {
		t.Fatalf("second pass failed verification: %v", sum.MismatchDetail)
	}
	if sum.Steps != 12 {
		t.Fatalf("summary counts %d steps over two passes, want 12", sum.Steps)
	}
}

// TestPreloadedStoreRejected: recording must start from the
// post-construction store state; Open detects a trace whose recorder
// attached late.
func TestPreloadedStoreRejected(t *testing.T) {
	cfg := Config{Kind: KindDMMPC, Lanes: 1, Procs: 16, Mode: model.CRCWPriority}
	built, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the store BEFORE attaching the recorder: the header's start
	// fingerprint no longer matches a fresh build.
	built.Store.LoadCell(3, 42)
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, built)
	if err != nil {
		t.Fatal(err)
	}
	built.Machine.ExecuteStep(model.NewBatch(16))
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("Open accepted a trace recorded over a pre-loaded store")
	}
}

// TestGeneratorDeterminism: one (pattern, shape, seed) triple must name
// one workload.
func TestGeneratorDeterminism(t *testing.T) {
	for _, p := range []Pattern{Uniform, Banded, Hotspot, Broadcast} {
		a := NewGenerator(p, 2, 8, 256, 5)
		b := NewGenerator(p, 2, 8, 256, 5)
		for s := 0; s < 4; s++ {
			ba, bb := a.Step(s), b.Step(s)
			for k := range ba {
				for i := range ba[k] {
					if ba[k][i] != bb[k][i] {
						t.Fatalf("%v: step %d lane %d proc %d diverged", p, s, k, i)
					}
				}
			}
		}
	}
}
