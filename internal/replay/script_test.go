package replay

import (
	"bytes"
	"strings"
	"testing"
)

// TestScriptRoundTrip records a representative script and parses it back.
func TestScriptRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec, err := NewScriptRecorder(&buf, `tenants="uniform:20,hotspot:10" n=64 engines=2`)
	if err != nil {
		t.Fatal(err)
	}
	rec.Submit(0, 0, 4)
	rec.Submit(0, 1, 2)
	rec.Resize(3, 4)
	rec.Submit(3, 0, 1)
	rec.Resize(9, 2)
	rec.Drain(11)
	tenants := []ScriptTenant{
		{Name: "uniform", Steps: 5, Hash: 0xdeadbeefcafe},
		{Name: "a name with spaces", Steps: 2, Hash: 0x1},
	}
	if err := rec.Close(tenants, 12, 0xfeedface); err != nil {
		t.Fatal(err)
	}

	s, err := ReadScript(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Meta != `tenants="uniform:20,hotspot:10" n=64 engines=2` {
		t.Errorf("meta = %q", s.Meta)
	}
	want := []ScriptEvent{
		{Round: 0, Tenant: 0, Credits: 4},
		{Round: 0, Tenant: 1, Credits: 2},
		{Round: 3, K: 4},
		{Round: 3, Tenant: 0, Credits: 1},
		{Round: 9, K: 2},
		{Round: 11},
	}
	if len(s.Events) != len(want) {
		t.Fatalf("got %d events, want %d", len(s.Events), len(want))
	}
	for i := range want {
		if s.Events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, s.Events[i], want[i])
		}
	}
	if !s.Events[2].IsResize() || s.Events[2].IsDrain() {
		t.Error("event 2 should classify as a resize")
	}
	if !s.Events[5].IsDrain() || s.Events[5].IsResize() {
		t.Error("event 5 should classify as a drain")
	}
	if len(s.Tenants) != 2 || s.Tenants[0] != tenants[0] || s.Tenants[1] != tenants[1] {
		t.Errorf("tenants = %+v, want %+v", s.Tenants, tenants)
	}
	if s.Rounds != 12 || s.Fingerprint != 0xfeedface {
		t.Errorf("footer = (%d, %x), want (12, feedface)", s.Rounds, s.Fingerprint)
	}
}

// TestScriptRejectsMalformed sweeps the loud-failure grammar: every
// corruption a serving incident could plausibly produce is named, not
// silently skipped.
func TestScriptRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{"empty", "", "empty script"},
		{"bad magic", "PRAMTRC1\nmeta x\nend 0 0\n", "not an arrival script"},
		{"no meta", "PRAMARS1\nend 0 0\n", "no meta line"},
		{"no end", "PRAMARS1\nmeta x\na 0 0 1\n", "truncated"},
		{"dup meta", "PRAMARS1\nmeta x\nmeta y\nend 0 0\n", "duplicate meta"},
		{"bad op", "PRAMARS1\nmeta x\nq 1 2\nend 0 0\n", "unknown op"},
		{"bad submit", "PRAMARS1\nmeta x\na 0 zero 1\nend 0 0\n", "bad submission"},
		{"zero credits", "PRAMARS1\nmeta x\na 0 0 0\nend 0 0\n", "bad submission"},
		{"zero k", "PRAMARS1\nmeta x\nr 4 0\nend 0 0\n", "bad resize"},
		{"bad tenant", "PRAMARS1\nmeta x\nt 5 nothex u\nend 0 0\n", "bad tenant hash"},
		{"tenant no name", "PRAMARS1\nmeta x\nt 5 0\nend 0 0\n", "bad tenant footer"},
		{"bad end", "PRAMARS1\nmeta x\nend 0\n", "bad end line"},
		{"after end", "PRAMARS1\nmeta x\nend 0 0\na 0 0 1\n", "content after end"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadScript(strings.NewReader(c.text))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, c.wantErr)
			}
		})
	}
	if _, err := NewScriptRecorder(&bytes.Buffer{}, "two\nlines"); err == nil {
		t.Error("multiline meta accepted")
	}
}
