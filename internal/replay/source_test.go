package replay

import (
	"bytes"
	"testing"

	"repro/internal/model"
)

// recordSourceTrace records a small single-machine uniform workload and
// returns the trace bytes plus the per-step recorded costs and the final
// store fingerprint.
func recordSourceTrace(t *testing.T, cfg Config, steps int) ([]byte, []StepCosts, uint64) {
	t.Helper()
	built, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, built)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewGenerator(Uniform, 1, cfg.Procs, built.Params.Mem, 99)
	var costs []StepCosts
	for s := 0; s < steps; s++ {
		rep := built.Machine.ExecuteStep(gen.Step(s)[0])
		if rep.Err != nil {
			t.Fatal(rep.Err)
		}
		costs = append(costs, costsOf(&rep))
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), costs, built.Store.Fingerprint()
}

// TestBatchSourceRoundTrip locks the adapter's contract: reconstructing a
// trace's pre-dedup batches and feeding them to an identical fresh machine
// through the NORMAL ExecuteStep front end reproduces the recorded per-step
// costs and the recorded final store image exactly.
func TestBatchSourceRoundTrip(t *testing.T) {
	cfg := Config{Kind: KindDMMPC, Lanes: 1, Procs: 24, Mode: model.CRCWPriority}
	data, costs, fp := recordSourceTrace(t, cfg, 12)

	src, err := NewBatchSource(data, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if src.Procs() != 24 {
		t.Fatalf("Procs = %d, want 24", src.Procs())
	}
	fresh, err := src.Config().Build()
	if err != nil {
		t.Fatal(err)
	}
	step := 0
	for {
		b, ok := src.NextBatch()
		if !ok {
			break
		}
		rep := fresh.Machine.ExecuteStep(b)
		if rep.Err != nil {
			t.Fatalf("step %d: %v", step, rep.Err)
		}
		if got := costsOf(&rep); got != costs[step] {
			t.Errorf("step %d: reconstructed costs %+v, recorded %+v", step, got, costs[step])
		}
		step++
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if step != len(costs) {
		t.Fatalf("reconstructed %d steps, recorded %d", step, len(costs))
	}
	if got := fresh.Store.Fingerprint(); got != fp {
		t.Errorf("final fingerprint %x, recorded %x", got, fp)
	}
}

// TestBatchSourceLoop verifies the looping mode rewinds at eof and keeps
// yielding the same step sequence.
func TestBatchSourceLoop(t *testing.T) {
	cfg := Config{Kind: KindDMMPC, Lanes: 1, Procs: 8, Mode: model.CRCWPriority}
	data, costs, _ := recordSourceTrace(t, cfg, 5)
	src, err := NewBatchSource(data, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	var first []string
	for i := 0; i < 2*len(costs); i++ {
		b, ok := src.NextBatch()
		if !ok {
			t.Fatalf("looping source exhausted at step %d (err %v)", i, src.Err())
		}
		s := ""
		for _, r := range b {
			s += r.Op.String() + ","
		}
		if i < len(costs) {
			first = append(first, s)
		} else if s != first[i-len(costs)] {
			t.Errorf("loop pass step %d shape diverged", i-len(costs))
		}
	}
	if src.Steps() != int64(2*len(costs)) {
		t.Errorf("Steps = %d, want %d", src.Steps(), 2*len(costs))
	}
}

// TestBatchSourceLaneSelection checks multi-lane traces split per lane and
// out-of-range lanes are rejected.
func TestBatchSourceLaneSelection(t *testing.T) {
	cfg := Config{Kind: KindDMMPC, Lanes: 2, Procs: 8, Mode: model.CRCWPriority}
	built, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, built)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewGenerator(Banded, 2, 8, built.Params.Mem, 7)
	const rounds = 4
	for s := 0; s < rounds; s++ {
		if agg, _ := built.Pool.ExecuteSteps(gen.Step(s)); agg.Err != nil {
			t.Fatal(agg.Err)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < 2; lane++ {
		src, err := NewBatchSource(buf.Bytes(), lane, false)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			if _, ok := src.NextBatch(); !ok {
				break
			}
			n++
		}
		if err := src.Err(); err != nil {
			t.Fatal(err)
		}
		if n != rounds {
			t.Errorf("lane %d yielded %d steps, want %d", lane, n, rounds)
		}
	}
	if _, err := NewBatchSource(buf.Bytes(), 2, false); err == nil {
		t.Error("lane 2 of a 2-lane trace should be rejected")
	}
}

// TestBatchSourceTruncated verifies a corrupt stream surfaces through Err.
func TestBatchSourceTruncated(t *testing.T) {
	cfg := Config{Kind: KindDMMPC, Lanes: 1, Procs: 8, Mode: model.CRCWPriority}
	data, _, _ := recordSourceTrace(t, cfg, 5)
	src, err := NewBatchSource(data[:len(data)-10], 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := src.NextBatch(); !ok {
			break
		}
	}
	if src.Err() == nil {
		t.Error("truncated trace ended without an error")
	}
}
