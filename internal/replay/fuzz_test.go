package replay

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/model"
)

// drainTrace opens and fully replays a byte stream, returning the first
// error. It is the whole attack surface of the read path: Open (magic,
// header, machine build) plus every frame decode and engine feed.
func drainTrace(data []byte) error {
	rp, err := Open(bytes.NewReader(data))
	if err != nil {
		return err
	}
	rp.Verify = true
	_, err = rp.Run()
	return err
}

// smallTrace records the seed-corpus trace: small enough to mutate
// exhaustively, covering loads, reads, writes and multi-reader fan-out.
func smallTrace(t testing.TB) []byte {
	cfg := Config{Kind: KindDMMPC, Lanes: 1, Procs: 8, Mode: model.CRCWPriority}
	built, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, built)
	if err != nil {
		t.Fatal(err)
	}
	LoadImage(built, 8, 3)
	gen := NewGenerator(Uniform, 1, 8, built.Params.Mem, 11)
	for s := 0; s < 4; s++ {
		built.Machine.ExecuteStep(gen.Step(s)[0])
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// poolTrace is a small multi-lane seed (barrier frames, lane layout).
func poolTrace(t testing.TB) []byte {
	data, _, _ := recordRun(t, Config{Kind: KindDMMPC, Lanes: 2, Procs: 8, Mode: model.CRCWPriority}, Banded, 3, 8)
	return data
}

// TestTruncatedTraceRejected: every proper prefix of a valid trace must
// error (ErrTruncated or a corruption error), never panic, never verify.
func TestTruncatedTraceRejected(t *testing.T) {
	data := smallTrace(t)
	for cut := 0; cut < len(data); cut++ {
		err := drainTrace(data[:cut])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes replayed without error", cut, len(data))
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("prefix of %d bytes: unexpected error class: %v", cut, err)
		}
	}
}

// TestBitFlippedTraceRejected: flipping any single bit must either surface
// an error or (for bits the format genuinely does not cover, of which
// there are none — the CRC spans every frame byte and the magic is
// compared) be detected. Exhaustive over the trace's bytes.
func TestBitFlippedTraceRejected(t *testing.T) {
	data := smallTrace(t)
	mut := make([]byte, len(data))
	for pos := 0; pos < len(data); pos++ {
		for bit := 0; bit < 8; bit++ {
			copy(mut, data)
			mut[pos] ^= 1 << bit
			if err := drainTrace(mut); err == nil {
				t.Fatalf("flipping byte %d bit %d went undetected", pos, bit)
			}
		}
	}
}

// TestCorruptPoolTraceRejected samples corruptions of a multi-lane trace
// (lane ids, barrier structure, round assembly).
func TestCorruptPoolTraceRejected(t *testing.T) {
	data := poolTrace(t)
	mut := make([]byte, len(data))
	for pos := 0; pos < len(data); pos++ {
		copy(mut, data)
		mut[pos] ^= 0x41
		if err := drainTrace(mut); err == nil {
			t.Fatalf("corrupting byte %d of the pool trace went undetected", pos)
		}
	}
}

// TestOverflowedLaneRejected crafts a structurally valid (CRC-correct)
// step frame whose lane uvarint is 2^63 — wrapping negative through the
// int cast — and asserts the reader rejects it instead of indexing the
// replayer's lane arrays out of range (regression: this used to panic).
func TestOverflowedLaneRejected(t *testing.T) {
	data := poolTrace(t)
	// Locate the first step frame and rewrite its payload with the huge
	// lane, re-framing it with a valid CRC.
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var stepPayload []byte
	for stepPayload == nil {
		f, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if f.Kind == KindStep {
			// Re-encode the frame from the decoded view with lane 2^63.
			p := binary.AppendUvarint(nil, 1<<63)
			p = binary.AppendUvarint(p, uint64(len(f.Reads)))
			p = binary.AppendUvarint(p, uint64(len(f.Writes)))
			prevProc, prevVar := int64(0), int64(0)
			for g := range f.Reads {
				p = binary.AppendVarint(p, int64(f.Reads[g].Proc)-prevProc)
				p = binary.AppendVarint(p, int64(f.Reads[g].Var)-prevVar)
				prevProc, prevVar = int64(f.Reads[g].Proc), int64(f.Reads[g].Var)
				p = binary.AppendUvarint(p, 0) // drop extra readers
			}
			for g := range f.Writes {
				p = binary.AppendVarint(p, int64(f.Writes[g].Proc)-prevProc)
				p = binary.AppendVarint(p, int64(f.Writes[g].Var)-prevVar)
				prevProc, prevVar = int64(f.Writes[g].Proc), int64(f.Writes[g].Var)
				p = binary.AppendVarint(p, int64(f.Writes[g].Value))
			}
			p = binary.AppendUvarint(p, uint64(f.Costs.Time))
			p = binary.AppendUvarint(p, uint64(f.Costs.Phases))
			p = binary.AppendUvarint(p, uint64(f.Costs.CopyAccesses))
			p = binary.AppendUvarint(p, uint64(f.Costs.NetworkCycles))
			p = binary.AppendUvarint(p, uint64(f.Costs.ModuleContention))
			p = appendFixed64(p, f.Costs.ValuesHash)
			p = append(p, 0)
			stepPayload = p
		}
	}
	// Reassemble the file: magic + header frame (copied verbatim) + the
	// crafted frame.
	hdrEnd := len(magic)
	d := data[hdrEnd:]
	// kind byte + length uvarint + payload + 4-byte CRC
	length, n := binary.Uvarint(d[1:])
	hdrEnd += 1 + n + int(length) + 4
	crafted := append([]byte(nil), data[:hdrEnd]...)
	crafted = frame(crafted, kindStep, stepPayload)
	err = drainTrace(crafted)
	if err == nil {
		t.Fatal("overflowed lane accepted")
	}
	if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
		t.Fatalf("unexpected error class: %v", err)
	}
}

// FuzzReadTraceFile is the satellite requirement: arbitrary bytes — seeded
// with valid traces and systematic mutations — must never panic, never
// over-allocate, and never silently misread; only clean traces verify.
func FuzzReadTraceFile(f *testing.F) {
	valid := smallTrace(f)
	f.Add(valid)
	f.Add(poolTrace(f))
	f.Add([]byte{})
	f.Add(magic[:])
	// A few structured mutants to aim the fuzzer at frame internals.
	for _, pos := range []int{8, 9, 20, len(valid) / 2, len(valid) - 5} {
		m := append([]byte(nil), valid...)
		m[pos] ^= 0xff
		f.Add(m)
	}
	f.Add(append(append([]byte(nil), valid...), valid...)) // trailing garbage
	f.Fuzz(func(t *testing.T, data []byte) {
		err := drainTrace(data)
		if err != nil {
			return // rejected: fine. The property is no panic, no misread.
		}
		// Accepted streams must re-read deterministically (a structurally
		// valid trace whose embedded costs mismatch is REPORTED, in the
		// summary, not a reader defect — but reading it twice must agree).
		rp, err := Open(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("accepted stream failed to re-open: %v", err)
		}
		if _, err := rp.Run(); err != nil {
			t.Fatalf("accepted stream failed on re-read: %v", err)
		}
	})
}
