package replay

import (
	"fmt"
	"math/rand"

	"repro/internal/memmap"
	"repro/internal/model"
)

// Pattern selects a synthetic request-stream shape, so sweeps can be
// driven from generated traces without a source program. Generated batches
// are executed through the real machines while recording, so the trace's
// embedded costs and fingerprints are real measurements, not synthetic
// estimates.
type Pattern uint8

const (
	// Uniform draws every processor's address uniformly over the full
	// variable space, alternating read and write steps — the classic
	// random-permutation-style load the E-family sweeps use.
	Uniform Pattern = iota
	// Banded confines each lane's addresses to its own variable band
	// (memmap.BandRange) — the band-local traffic of K independent
	// programs, which a banded map turns into disjoint module components.
	Banded
	// Hotspot sends most accesses (hotProb) to a small window of hot
	// variables, concentrating load on the few modules holding their
	// copies — the adversarial module-pressure shape of the faulty-memory
	// P-RAM literature (arXiv:1801.00237).
	Hotspot
	// Broadcast has every processor read one common variable per step —
	// maximal concurrent-read combining (the step dedups to a single
	// request) with a rotating target.
	Broadcast
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Banded:
		return "banded"
	case Hotspot:
		return "hotspot"
	case Broadcast:
		return "broadcast"
	default:
		return fmt.Sprintf("pattern(%d)", uint8(p))
	}
}

// ParsePattern maps a CLI spelling to its pattern.
func ParsePattern(s string) (Pattern, error) {
	switch s {
	case "uniform":
		return Uniform, nil
	case "banded":
		return Banded, nil
	case "hotspot", "hotspot-module":
		return Hotspot, nil
	case "broadcast":
		return Broadcast, nil
	}
	return 0, fmt.Errorf("replay: unknown pattern %q (want uniform, banded, hotspot or broadcast)", s)
}

// hotWindow is the hot-set size of the Hotspot pattern: small enough that
// the r modules holding the window's copies saturate, large enough to
// exercise several of them.
const hotWindow = 16

// hotProb is the probability a Hotspot access lands in the hot window.
const hotProb = 0.85

// Generator draws deterministic synthetic step batches for every lane of a
// configuration. One Generator serves all lanes from one seeded stream, so
// a (pattern, shape, seed) triple names a reproducible workload.
type Generator struct {
	pattern Pattern
	lanes   int
	procs   int
	mem     int
	rng     *rand.Rand
	batches []model.Batch
}

// NewGenerator builds a generator for the given trace shape.
func NewGenerator(pattern Pattern, lanes, procs, mem int, seed int64) *Generator {
	g := &Generator{
		pattern: pattern,
		lanes:   lanes,
		procs:   procs,
		mem:     mem,
		rng:     rand.New(rand.NewSource(seed)),
		batches: make([]model.Batch, lanes),
	}
	for k := range g.batches {
		g.batches[k] = model.NewBatch(procs)
	}
	return g
}

// Step fills and returns one step's batches, one per lane (aliasing the
// generator's reusable buffers).
func (g *Generator) Step(step int) []model.Batch {
	for k := range g.batches {
		g.fill(k, step, g.batches[k])
	}
	return g.batches
}

// fill draws lane k's batch for one step.
func (g *Generator) fill(k, step int, b model.Batch) {
	write := step%2 == 1
	lo, hi := 0, g.mem
	if g.pattern == Banded {
		lo, hi = memmap.BandRange(k, g.mem, g.lanes)
	}
	switch g.pattern {
	case Broadcast:
		// One common target per (lane, step); reads only — a broadcast
		// write would just be one write after combining.
		target := lo + (step*31+k*17)%(hi-lo)
		for i := 0; i < g.procs; i++ {
			b[i] = model.Request{Proc: i, Op: model.OpRead, Addr: target}
		}
	case Hotspot:
		for i := 0; i < g.procs; i++ {
			addr := lo + g.rng.Intn(hi-lo)
			if g.rng.Float64() < hotProb {
				w := hotWindow
				if hi-lo < w {
					w = hi - lo
				}
				addr = lo + g.rng.Intn(w)
			}
			b[i] = g.request(i, write, addr)
		}
	default: // Uniform, Banded
		for i := 0; i < g.procs; i++ {
			b[i] = g.request(i, write, lo+g.rng.Intn(hi-lo))
		}
	}
}

// request renders one processor's request. Write steps under CRCW write
// seeded values; the concurrent-write conflicts they produce are resolved
// by the machine's mode.
func (g *Generator) request(proc int, write bool, addr int) model.Request {
	if write {
		return model.Request{Proc: proc, Op: model.OpWrite, Addr: addr, Value: model.Word(g.rng.Int63n(1 << 30))}
	}
	return model.Request{Proc: proc, Op: model.OpRead, Addr: addr}
}

// LoadImage initializes `count` cells per lane (band-local, so lanes load
// disjoint ranges) with seeded values through the recorded LoadCells path,
// in chunks. It is the standard workload-setup preamble of a recorded run.
func LoadImage(b *Built, count int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	const chunk = 4096
	vals := make([]model.Word, chunk)
	for k := 0; k < b.Cfg.Lanes; k++ {
		lo, hi := memmap.BandRange(k, b.Params.Mem, b.Cfg.Lanes)
		n := count
		if n > hi-lo {
			n = hi - lo
		}
		for off := 0; off < n; off += chunk {
			c := chunk
			if off+c > n {
				c = n - off
			}
			for i := 0; i < c; i++ {
				vals[i] = rng.Int63n(1 << 30)
			}
			b.Lane(k).LoadCells(lo+off, vals[:c])
		}
	}
}
