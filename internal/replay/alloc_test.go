package replay

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/model"
)

// allocTrace records a small read-only trace (broadcast reads are
// idempotent, so multi-pass replay is exact) and opens a replayer over it.
func allocTrace(t *testing.T, cfg Config) ([]byte, *Replayer, *bytes.Reader) {
	t.Helper()
	data, _, _ := recordRun(t, cfg, Broadcast, 8, 0)
	rd := bytes.NewReader(data)
	rp, err := Open(rd)
	if err != nil {
		t.Fatal(err)
	}
	return data, rp, rd
}

// stepOrRewind drives one replayed step, rewinding at end of file — the
// shape of the E13 benchmark loop.
func stepOrRewind(t testing.TB, rp *Replayer, rd *bytes.Reader) {
	for {
		executed, err := rp.Step()
		if err != nil {
			t.Fatal(err)
		}
		if executed {
			return
		}
		if _, err := rd.Seek(0, io.SeekStart); err != nil {
			t.Fatal(err)
		}
		if err := rp.Reset(rd); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReplayStepZeroAllocs locks the acceptance invariant: the replay read
// path — frame decode plus ExecuteDedupStep, including the end-of-file
// rewind — performs zero heap allocations in steady state.
func TestReplayStepZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation invariants are measured without the race detector")
	}
	_, rp, rd := allocTrace(t, Config{Kind: KindDMMPC, Lanes: 1, Procs: 64, Mode: model.CRCWPriority})
	for i := 0; i < 20; i++ { // grow reader and engine arenas, cross a rewind
		stepOrRewind(t, rp, rd)
	}
	if avg := testing.AllocsPerRun(50, func() {
		stepOrRewind(t, rp, rd)
	}); avg != 0 {
		t.Errorf("replayed step allocates %.1f/op in steady state, want 0", avg)
	}
}

// TestPoolReplayStepZeroAllocs extends the invariant to multi-lane pool
// traces (round assembly arenas plus ExecuteDedupSteps).
func TestPoolReplayStepZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation invariants are measured without the race detector")
	}
	_, rp, rd := allocTrace(t, Config{Kind: KindDMMPC, Lanes: 4, Procs: 16, Mode: model.CRCWPriority})
	for i := 0; i < 20; i++ {
		stepOrRewind(t, rp, rd)
	}
	if avg := testing.AllocsPerRun(50, func() {
		stepOrRewind(t, rp, rd)
	}); avg != 0 {
		t.Errorf("replayed pool round allocates %.1f/op in steady state, want 0", avg)
	}
}

// TestVerifyReplayZeroAllocs keeps even the verifying replay loop
// allocation-free (hashing and cost comparison are pure arithmetic).
func TestVerifyReplayZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation invariants are measured without the race detector")
	}
	_, rp, rd := allocTrace(t, Config{Kind: KindMOT2D, Lanes: 1, Procs: 16, Mode: model.CRCWPriority})
	rp.Verify = true
	for i := 0; i < 20; i++ {
		stepOrRewind(t, rp, rd)
	}
	if sum := rp.Summary(); !sum.VerifyOK() {
		t.Fatalf("verification failed during warmup: %v", sum.MismatchDetail)
	}
	if avg := testing.AllocsPerRun(50, func() {
		stepOrRewind(t, rp, rd)
	}); avg != 0 {
		t.Errorf("verifying replayed step allocates %.1f/op in steady state, want 0", avg)
	}
}
