package replay

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The arrival script ("PRAMARS1") is the second half of the live-serving
// determinism story. A PRAMTRC1 trace captures what the engines DID; the
// arrival script captures what the outside world DID TO the server — the
// wall-clock inputs a live HTTP run is not a pure function without:
//
//	PRAMARS1
//	meta <one opaque line the recorder chose — the deployment spec>
//	a <round> <tenant> <credits>     # Server.Submit at virtual round <round>
//	r <round> <k>                    # Server.Resize to K=<k> before round <round>
//	d <round>                        # admission stopped (drain began) before <round>
//	t <steps> <hash-hex> <name>      # footer: one per tenant, final account
//	end <rounds> <fingerprint-hex>   # footer: total rounds + store fingerprint
//
// Replaying the script — rebuild the deployment from meta, then for every
// virtual round apply its recorded events in file order and execute one
// Round — reproduces the live run bit-for-bit in virtual time: same
// per-tenant report hashes, same store fingerprint, and (because the
// rejection split is a deterministic function of server state) the same
// admission accounting. The format is line-based text on purpose: scripts
// are small (events, not batches — the batches live in the trace), and a
// serving incident report you can read and edit is worth more than a few
// saved bytes. A script without its end line was truncated and every
// reader says so.

// ScriptMagic is the arrival-script format's first line.
const ScriptMagic = "PRAMARS1"

// ScriptEvent is one recorded external event, in virtual round time.
type ScriptEvent struct {
	// Round is the virtual round the event applies BEFORE (the server's
	// round counter at the moment it was applied live).
	Round int64
	// K > 0 makes this a resize event; Credits > 0 a submission of Credits
	// step credits to tenant Tenant; neither, a drain (admission stop).
	K       int
	Tenant  int
	Credits int
}

// IsResize reports whether the event is a K transition.
func (e ScriptEvent) IsResize() bool { return e.K > 0 }

// IsDrain reports whether the event is an admission stop.
func (e ScriptEvent) IsDrain() bool { return e.K == 0 && e.Credits == 0 }

// ScriptTenant is one tenant's footer account: the values a replay must
// reproduce.
type ScriptTenant struct {
	Name  string
	Steps int64
	Hash  uint64
}

// Script is a parsed arrival script.
type Script struct {
	// Meta is the recorder's opaque deployment line (cmd/serve stores the
	// CLI spec strings it rebuilds the server from).
	Meta string
	// Events are the run's external events in application order.
	Events []ScriptEvent
	// Tenants, Rounds and Fingerprint are the footer: the live run's final
	// account, the replay's -check targets.
	Tenants     []ScriptTenant
	Rounds      int64
	Fingerprint uint64
}

// ScriptRecorder streams an arrival script. Events must be recorded in
// application order; Close writes the footer. Writer errors are sticky
// and reported by Close.
type ScriptRecorder struct {
	w   *bufio.Writer
	err error
}

// NewScriptRecorder writes the magic and meta lines onto w. meta must be a
// single line (no newlines).
func NewScriptRecorder(w io.Writer, meta string) (*ScriptRecorder, error) {
	if strings.ContainsAny(meta, "\n\r") {
		return nil, fmt.Errorf("replay: script meta must be a single line")
	}
	r := &ScriptRecorder{w: bufio.NewWriter(w)}
	fmt.Fprintf(r.w, "%s\nmeta %s\n", ScriptMagic, meta)
	return r, nil
}

// Submit records a Server.Submit of n credits to tenant id at the given
// virtual round.
func (r *ScriptRecorder) Submit(round int64, tenant, n int) {
	if r.err == nil {
		_, r.err = fmt.Fprintf(r.w, "a %d %d %d\n", round, tenant, n)
	}
}

// Resize records a Server.Resize to k applied before the given round.
func (r *ScriptRecorder) Resize(round int64, k int) {
	if r.err == nil {
		_, r.err = fmt.Fprintf(r.w, "r %d %d\n", round, k)
	}
}

// Drain records the admission stop (Server.StopAdmission / the start of
// Server.Drain) before the given round.
func (r *ScriptRecorder) Drain(round int64) {
	if r.err == nil {
		_, r.err = fmt.Fprintf(r.w, "d %d\n", round)
	}
}

// Close writes the footer — every tenant's final account plus the round
// count and store fingerprint — flushes, and reports the first error.
func (r *ScriptRecorder) Close(tenants []ScriptTenant, rounds int64, fingerprint uint64) error {
	for _, t := range tenants {
		if r.err == nil {
			_, r.err = fmt.Fprintf(r.w, "t %d %016x %s\n", t.Steps, t.Hash, t.Name)
		}
	}
	if r.err == nil {
		_, r.err = fmt.Fprintf(r.w, "end %d %016x\n", rounds, fingerprint)
	}
	if err := r.w.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	if r.err != nil {
		return fmt.Errorf("replay: writing script: %w", r.err)
	}
	return nil
}

// ReadScript parses an arrival script, validating the magic, the line
// grammar and the presence of the end line.
func ReadScript(rd io.Reader) (*Script, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("replay: empty script")
	}
	if sc.Text() != ScriptMagic {
		return nil, fmt.Errorf("replay: not an arrival script (magic %q, want %q)", sc.Text(), ScriptMagic)
	}
	s := &Script{}
	sawMeta, sawEnd := false, false
	line := 1
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if sawEnd {
			return nil, fmt.Errorf("replay: script line %d: content after end line", line)
		}
		op, rest, _ := strings.Cut(text, " ")
		switch op {
		case "meta":
			if sawMeta {
				return nil, fmt.Errorf("replay: script line %d: duplicate meta", line)
			}
			sawMeta = true
			s.Meta = rest
		case "a":
			var ev ScriptEvent
			if _, err := fmt.Sscanf(rest, "%d %d %d", &ev.Round, &ev.Tenant, &ev.Credits); err != nil {
				return nil, fmt.Errorf("replay: script line %d: bad submission %q: %v", line, text, err)
			}
			if ev.Round < 0 || ev.Tenant < 0 || ev.Credits < 1 {
				return nil, fmt.Errorf("replay: script line %d: bad submission %q", line, text)
			}
			s.Events = append(s.Events, ev)
		case "r":
			var ev ScriptEvent
			if _, err := fmt.Sscanf(rest, "%d %d", &ev.Round, &ev.K); err != nil {
				return nil, fmt.Errorf("replay: script line %d: bad resize %q: %v", line, text, err)
			}
			if ev.Round < 0 || ev.K < 1 {
				return nil, fmt.Errorf("replay: script line %d: bad resize %q", line, text)
			}
			s.Events = append(s.Events, ev)
		case "d":
			var ev ScriptEvent
			if _, err := fmt.Sscanf(rest, "%d", &ev.Round); err != nil {
				return nil, fmt.Errorf("replay: script line %d: bad drain %q: %v", line, text, err)
			}
			if ev.Round < 0 {
				return nil, fmt.Errorf("replay: script line %d: bad drain %q", line, text)
			}
			s.Events = append(s.Events, ev)
		case "t":
			f := strings.SplitN(rest, " ", 3)
			if len(f) != 3 || f[2] == "" {
				return nil, fmt.Errorf("replay: script line %d: bad tenant footer %q", line, text)
			}
			steps, err := strconv.ParseInt(f[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("replay: script line %d: bad tenant steps %q: %v", line, f[0], err)
			}
			hash, err := strconv.ParseUint(f[1], 16, 64)
			if err != nil {
				return nil, fmt.Errorf("replay: script line %d: bad tenant hash %q: %v", line, f[1], err)
			}
			s.Tenants = append(s.Tenants, ScriptTenant{Name: f[2], Steps: steps, Hash: hash})
		case "end":
			f := strings.Fields(rest)
			if len(f) != 2 {
				return nil, fmt.Errorf("replay: script line %d: bad end line %q", line, text)
			}
			rounds, err := strconv.ParseInt(f[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("replay: script line %d: bad round count %q: %v", line, f[0], err)
			}
			fp, err := strconv.ParseUint(f[1], 16, 64)
			if err != nil {
				return nil, fmt.Errorf("replay: script line %d: bad fingerprint %q: %v", line, f[1], err)
			}
			s.Rounds, s.Fingerprint = rounds, fp
			sawEnd = true
		default:
			return nil, fmt.Errorf("replay: script line %d: unknown op %q", line, op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("replay: reading script: %w", err)
	}
	if !sawMeta {
		return nil, fmt.Errorf("replay: script has no meta line")
	}
	if !sawEnd {
		return nil, fmt.Errorf("replay: script is truncated (no end line)")
	}
	return s, nil
}
