// Package replay records the quorum machines' post-dedup request-batch
// streams to disk and replays them straight into the engines — the
// serving-lane measurement backbone that turns E-family sweeps at n ≥ 4096
// into pure hot-path measurements: a replayed step skips the program/
// goroutine front end and the sort/dedup/conflict-check pipeline, and one
// machine construction (~0.2 s at production sizes) is amortized across an
// entire trace file.
//
// A trace captures everything the engine's behavior is a deterministic
// function of — the machine's construction parameters, the LoadCells
// initializations, and the deduplicated quorum.Request batches of every
// step — so record → replay reproduces StepReports and the final store
// Fingerprint bit-for-bit (the differential tests in this package assert
// it across interconnects, rails, schedules and engine counts).
//
// # File format (version 1)
//
// A trace file is the 8-byte magic "PRAMTRC1" (the trailing byte is the
// format version) followed by a stream of FRAMES, each:
//
//	kind:1  payloadLen:uvarint  payload:payloadLen  crc32c:4 (LE)
//
// where the CRC-32C covers the kind byte plus the payload, so a flipped
// kind, a mis-framed length or a corrupted payload all surface as a
// checksum error; payloadLen is additionally capped (maxFramePayload) so a
// corrupted length cannot drive allocation. The frame kinds:
//
//	header  (0x01) — exactly one, first: format version, machine kind
//	                 (DMMPC / 2DMOT / Luccio'90), lane count K, per-lane
//	                 processor count n, conflict mode, map seed, the memory
//	                 and granularity exponents, dual-rail/two-stage flags
//	                 and knobs, routing policy — everything Build needs to
//	                 reconstruct the machines — plus derived validation
//	                 fields (variable count, module count, redundancy, grid
//	                 side, and the start-of-recording store fingerprint)
//	                 that Open cross-checks against a fresh build, so
//	                 parameter-derivation drift or a pre-loaded store fails
//	                 loudly instead of replaying wrong costs.
//	load    (0x02) — one LoadCells call: lane, base address, values
//	                 (zigzag varints). Setup-time memory initialization.
//	step    (0x03) — one executed step of one lane: the deduplicated read
//	                 batch, the reader fan-out lists, the deduplicated
//	                 write batch, and the step's recorded costs (time,
//	                 phases, copy accesses, network cycles, contention, an
//	                 FNV-1a hash of the dense Values buffer, and an error
//	                 flag). Request fields are delta-encoded: processor ids
//	                 and variable ids as zigzag varints against the
//	                 previous request in the batch (dedup emits batches in
//	                 ascending variable order, so the deltas are small),
//	                 write payloads as zigzag varints, and each read's
//	                 extra reader ids as plain varint deltas along the
//	                 run's ascending processor order.
//	barrier (0x04) — end of one Pool.ExecuteSteps round. Multi-lane traces
//	                 only: the frames between barriers are one step per
//	                 lane in ascending lane order (the shard-lane layout —
//	                 lane k is workload shard k, serialized in the pool's
//	                 canonical serial-reference order at the round's
//	                 barrier). Single-lane traces have no barriers; every
//	                 step frame is its own round.
//	eof     (0x05) — exactly one, last: total recorded steps and the final
//	                 store fingerprint. A stream that ends without an eof
//	                 frame was truncated and every reader reports it.
//
// Numbers are unsigned varints (uvarint), signed values zigzag varints,
// and the few fixed-width fields (float bits, fingerprints, hashes)
// little-endian 8-byte words. The read path performs zero steady-state
// heap allocations: frames decode into reusable buffers owned by the
// Reader, so replaying a step costs exactly the engine's own work.
//
// Recording hooks quorum.StepSink (see the quorum package doc's "Trace
// replay" section); replaying feeds quorum.Machine.ExecuteDedupStep /
// quorum.Pool.ExecuteDedupSteps. The verify mode re-executes every step
// and compares recorded costs, per-step Values hashes and the final
// fingerprint — the consistency-checking methodology of trace-based P-RAM
// validation (cf. arXiv:1302.5161) applied to our own engine.
package replay

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/memmap"
	"repro/internal/model"
	"repro/internal/mot"
	"repro/internal/quorum"
)

// MachineKind selects which machine family a trace drives.
type MachineKind uint8

const (
	// KindDMMPC is the Theorem 2 machine (complete bipartite K(n,M)).
	KindDMMPC MachineKind = iota
	// KindMOT2D is the Theorem 3 machine (2D mesh of trees, modules at
	// the leaves).
	KindMOT2D
	// KindLuccio is the Luccio'90 baseline (modules at the tree roots,
	// Lemma 1 redundancy). Single-lane only.
	KindLuccio
)

// String implements fmt.Stringer.
func (k MachineKind) String() string {
	switch k {
	case KindDMMPC:
		return "dmmpc"
	case KindMOT2D:
		return "mot2d"
	case KindLuccio:
		return "luccio"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseMachineKind maps a CLI spelling to its kind.
func ParseMachineKind(s string) (MachineKind, error) {
	switch s {
	case "dmmpc", "bipartite", "e3":
		return KindDMMPC, nil
	case "mot2d", "mot", "e5":
		return KindMOT2D, nil
	case "luccio":
		return KindLuccio, nil
	}
	return 0, fmt.Errorf("replay: unknown machine kind %q (want dmmpc, mot2d or luccio)", s)
}

// Config fixes the machine a trace records and replays against. It is the
// persisted part of the header: two Builds from one Config construct
// bit-for-bit interchangeable machines.
type Config struct {
	// Kind is the machine family.
	Kind MachineKind
	// Lanes is the workload-shard count K: 1 builds a single Machine, > 1
	// a K-engine Pool over a banded map (0 consults PRAMSIM_ENGINES, < 0
	// GOMAXPROCS — normalized to the resolved count before recording).
	Lanes int
	// Procs is the per-lane processor count n.
	Procs int
	// Mode is the P-RAM conflict convention.
	Mode model.Mode
	// Seed draws the memory map (0 normalizes to the constructors' 1).
	Seed int64
	// KExp is the memory-size exponent (m = n^KExp; 0 → 2).
	KExp float64
	// Gran is the granularity exponent: ε for the DMMPC (0 → 1), δ for
	// the 2DMOT (0 → 2). Ignored by Luccio.
	Gran float64
	// DualRail enables the 2DMOT's row+column banks.
	DualRail bool
	// Policy is the 2DMOT tree-edge contention rule.
	Policy mot.Policy
	// TwoStage selects the faithful UW'87 two-stage schedule, with
	// Stage1Phases/Stage2Bandwidth overriding its defaults when > 0.
	TwoStage        bool
	Stage1Phases    int
	Stage2Bandwidth int

	// Parallelism (router workers) and Workers (pool executors) are
	// runtime wall-clock knobs: NOT persisted, never affect results.
	Parallelism int `json:"-"`
	Workers     int `json:"-"`
}

// normalize resolves defaulted fields to the values the core constructors
// would pick, so the persisted header pins them explicitly.
func (c *Config) normalize() {
	c.Lanes = quorum.ResolveEngines(c.Lanes)
	if c.KExp == 0 {
		c.KExp = 2
	}
	if c.Gran == 0 {
		if c.Kind == KindDMMPC {
			c.Gran = 1
		} else {
			c.Gran = 2
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// String summarizes the configuration.
func (c Config) String() string {
	s := fmt.Sprintf("%s n=%d K=%d mode=%s seed=%d k=%.3g gran=%.3g",
		c.Kind, c.Procs, c.Lanes, c.Mode, c.Seed, c.KExp, c.Gran)
	if c.DualRail {
		s += " dual-rail"
	}
	if c.TwoStage {
		s += " two-stage"
	}
	if c.Policy == mot.QueueOnCollision {
		s += " queue"
	}
	return s
}

// Built is the machine set a Config constructs: a single Machine when
// Lanes == 1, a K-engine Pool otherwise, plus the shared store and the
// derived parameters the header validates.
type Built struct {
	Cfg     Config // normalized
	Machine *quorum.Machine
	Pool    *quorum.Pool
	Store   *quorum.Store
	Params  memmap.Params
	Side    int // grid side (0 for the bipartite machines)
}

// Lane returns the machine serving one lane (the single machine, or the
// pool's shard k).
func (b *Built) Lane(k int) *quorum.Machine {
	if b.Pool != nil {
		return b.Pool.Machine(k)
	}
	return b.Machine
}

// Build constructs the configured machines from scratch — the step a
// replay run pays ONCE per file instead of once per sweep point. Invalid
// parameter points (including ones a corrupted header names) surface as
// errors, never as the core constructors' panics.
func (c Config) Build() (b *Built, err error) {
	c.normalize()
	if c.Procs < 1 {
		return nil, fmt.Errorf("replay: Procs=%d < 1", c.Procs)
	}
	if c.Mode > model.CRCWArbitrary {
		return nil, fmt.Errorf("replay: unknown conflict mode %d", c.Mode)
	}
	if c.Policy > mot.QueueOnCollision {
		return nil, fmt.Errorf("replay: unknown routing policy %d", c.Policy)
	}
	if c.Kind == KindLuccio && c.Lanes != 1 {
		return nil, fmt.Errorf("replay: the Luccio baseline supports a single lane, not %d", c.Lanes)
	}
	// The core constructors and memmap generators panic on infeasible
	// parameter points (n over the grid side, bands below the redundancy,
	// oversized stores); a trace header must not be able to crash a
	// reader.
	defer func() {
		if r := recover(); r != nil {
			b, err = nil, fmt.Errorf("replay: infeasible machine parameters: %v", r)
		}
	}()
	b = &Built{Cfg: c}
	switch c.Kind {
	case KindDMMPC:
		cc := core.Config{K: c.KExp, Eps: c.Gran, Mode: c.Mode, Seed: c.Seed,
			Engines: c.Lanes, Workers: c.Workers}
		if c.Lanes == 1 {
			m := core.NewDMMPC(c.Procs, cc)
			b.Machine, b.Store, b.Params = m.Machine, m.Store(), m.P
		} else {
			p := core.NewDMMPCPool(c.Procs, cc)
			b.Pool, b.Store, b.Params = p.Pool, p.Store(), p.P
		}
	case KindMOT2D:
		mc := core.MOTConfig{K: c.KExp, Delta: c.Gran, Mode: c.Mode, Seed: c.Seed,
			Policy: c.Policy, DualRail: c.DualRail, Parallelism: c.Parallelism,
			Engines: c.Lanes, Workers: c.Workers}
		if c.Lanes == 1 {
			m := core.NewMOT2D(c.Procs, mc)
			b.Machine, b.Store, b.Params, b.Side = m.Machine, m.Store(), m.P, m.Side
		} else {
			p := core.NewMOT2DPool(c.Procs, mc)
			b.Pool, b.Store, b.Params, b.Side = p.Pool, p.Store(), p.P, p.Side
		}
	case KindLuccio:
		mc := core.MOTConfig{K: c.KExp, Mode: c.Mode, Seed: c.Seed,
			Policy: c.Policy, Parallelism: c.Parallelism}
		m := core.NewLuccio(c.Procs, mc)
		b.Machine, b.Store, b.Params, b.Side = m.Machine, m.Store(), m.P, m.Side
	default:
		return nil, fmt.Errorf("replay: unknown machine kind %d", c.Kind)
	}
	if c.TwoStage {
		for k := 0; k < c.Lanes; k++ {
			cfg := quorum.TwoStageConfig{Stage1Phases: c.Stage1Phases, Stage2Bandwidth: c.Stage2Bandwidth}
			b.Lane(k).SetTwoStage(&cfg)
		}
	}
	return b, nil
}
