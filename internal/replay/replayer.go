package replay

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/model"
	"repro/internal/quorum"
)

// Frame is the decoded view of one trace frame. It aliases the Reader's
// reusable buffers: a frame is valid only until the next Next call.
type Frame struct {
	Kind byte
	Lane int

	// Step frames (KindStep).
	Reads       []quorum.Request
	ReaderOff   []int32
	ReaderProcs []int32
	Writes      []quorum.Request
	Costs       StepCosts

	// Load frames (KindLoad).
	LoadBase model.Addr
	LoadVals []model.Word

	// EOF frames (KindEOF).
	Steps       int64
	Fingerprint uint64
}

// Exported frame kinds, for drivers switching on Reader output.
const (
	KindLoad    = kindLoad
	KindStep    = kindStep
	KindBarrier = kindBarrier
	KindEOF     = kindEOF
)

// Reader streams a trace file frame by frame. The read path performs zero
// steady-state heap allocations: every frame decodes into buffers owned by
// the Reader and reused across Next calls. Integrity is enforced
// throughout — magic, per-frame CRC-32C, bounds on every count and id —
// so corrupt and truncated files surface as errors wrapping ErrCorrupt or
// ErrTruncated, never as panics or silent misreads.
type Reader struct {
	br  *bufio.Reader
	cfg Config
	mem int // variable-space bound for id validation

	// Derived validation fields decoded from the header.
	hdrMem, hdrModules, hdrRedundancy, hdrSide int
	startFP                                    uint64

	frame  Frame
	buf    []byte
	crcBuf [4]byte // reusable checksum read buffer (it would escape as a local)
	sawEOF bool
	err    error // sticky
}

// NewReader opens a trace stream: it consumes the magic and header frame
// and validates both. The header's machine is NOT built — see Open for the
// executing replayer.
func NewReader(src io.Reader) (*Reader, error) {
	r := &Reader{br: bufio.NewReaderSize(src, 1<<16)}
	if err := r.readPreamble(); err != nil {
		return nil, err
	}
	return r, nil
}

// Reset rewinds the reader onto a fresh stream of the SAME trace (another
// pass for repeated-measurement replays). It re-validates magic and
// header; steady-state allocation-free.
func (r *Reader) Reset(src io.Reader) error {
	r.br.Reset(src)
	r.sawEOF = false
	r.err = nil
	return r.readPreamble()
}

// readPreamble consumes magic plus header frame.
func (r *Reader) readPreamble() error {
	var got [8]byte
	if _, err := io.ReadFull(r.br, got[:]); err != nil {
		return corruptf("reading magic: %v", err)
	}
	if got != magic {
		return corruptf("bad magic %q", got[:])
	}
	kind, payload, err := r.readFrame()
	if err != nil {
		return err
	}
	if kind != kindHeader {
		return corruptf("first frame has kind %#x, want header", kind)
	}
	cfg, mem, modules, redundancy, side, startFP, err := decodeHeader(payload)
	if err != nil {
		return err
	}
	r.cfg, r.mem = cfg, mem
	r.hdrMem, r.hdrModules, r.hdrRedundancy, r.hdrSide = mem, modules, redundancy, side
	r.startFP = startFP
	return nil
}

// Config returns the trace's machine configuration (valid after NewReader).
func (r *Reader) Config() Config { return r.cfg }

// readFrame reads one raw frame into the reusable buffer and checks its CRC.
//
//pram:hotpath
func (r *Reader) readFrame() (byte, []byte, error) {
	kind, err := r.br.ReadByte()
	if err != nil {
		if err == io.EOF {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	length, err := binary.ReadUvarint(r.br)
	if err != nil {
		return 0, nil, corruptf("frame length: %v", err)
	}
	if length > maxFramePayload {
		//pram:coldalloc corrupt-input error exit
		return 0, nil, corruptf("frame payload %d exceeds cap %d", length, maxFramePayload)
	}
	if uint64(cap(r.buf)) < length {
		r.buf = make([]byte, length)
	}
	buf := r.buf[:length]
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return 0, nil, corruptf("frame payload: %v", err)
	}
	if _, err := io.ReadFull(r.br, r.crcBuf[:]); err != nil {
		return 0, nil, corruptf("frame checksum: %v", err)
	}
	crc := &r.crcBuf
	want := uint32(crc[0]) | uint32(crc[1])<<8 | uint32(crc[2])<<16 | uint32(crc[3])<<24
	if got := frameCRC(kind, buf); got != want {
		//pram:coldalloc corrupt-input error exit
		return 0, nil, corruptf("frame checksum mismatch (kind %#x, %d bytes)", kind, length)
	}
	return kind, buf, nil
}

// Next returns the next frame. After the eof frame has been returned, Next
// reports io.EOF; a stream that ends without one reports ErrTruncated.
// Errors are sticky.
//
//pram:hotpath
func (r *Reader) Next() (*Frame, error) {
	if r.err != nil {
		return nil, r.err
	}
	if r.sawEOF {
		return nil, io.EOF
	}
	kind, payload, err := r.readFrame()
	if err != nil {
		if err == io.ErrUnexpectedEOF {
			err = ErrTruncated
		}
		r.err = err
		return nil, err
	}
	f := &r.frame
	*f = Frame{Kind: kind,
		Reads: f.Reads[:0], Writes: f.Writes[:0],
		ReaderOff: f.ReaderOff[:0], ReaderProcs: f.ReaderProcs[:0],
		LoadVals: f.LoadVals[:0]}
	switch kind {
	case kindLoad:
		err = r.decodeLoadFrame(payload, f)
	case kindStep:
		err = r.decodeStepFrame(payload, f)
	case kindBarrier:
		if len(payload) != 0 {
			//pram:coldalloc corrupt-input error exit
			err = corruptf("barrier frame carries %d payload bytes", len(payload))
		}
	case kindEOF:
		d := &decoder{buf: payload}
		f.Steps = int64(d.uvarint())
		f.Fingerprint = d.fixed64()
		if err = d.finish(); err == nil {
			r.sawEOF = true
		}
	case kindHeader:
		err = corruptf("duplicate header frame")
	default:
		//pram:coldalloc corrupt-input error exit
		err = corruptf("unknown frame kind %#x", kind)
	}
	if err != nil {
		r.err = err
		return nil, err
	}
	return f, nil
}

// decodeLoadFrame parses and validates a load frame.
func (r *Reader) decodeLoadFrame(payload []byte, f *Frame) error {
	d := &decoder{buf: payload}
	f.Lane = int(d.uvarint())
	f.LoadBase = model.Addr(d.uvarint())
	n := d.count(1)
	if d.err != nil {
		return d.err
	}
	// The < 0 arm matters: a uvarint ≥ 2^63 wraps negative through the
	// int cast and would index the replayer's lane arrays out of range.
	if f.Lane < 0 || f.Lane >= r.cfg.Lanes {
		return corruptf("load frame lane %d outside [0,%d)", f.Lane, r.cfg.Lanes)
	}
	if f.LoadBase < 0 || f.LoadBase+n > r.mem {
		return corruptf("load frame range [%d,%d) outside memory [0,%d)", f.LoadBase, f.LoadBase+n, r.mem)
	}
	f.LoadVals = growCap(f.LoadVals, n)
	for i := 0; i < n; i++ {
		f.LoadVals = append(f.LoadVals, model.Word(d.varint()))
	}
	return d.finish()
}

// decodeStepFrame parses and validates a step frame: every processor id in
// [0, Procs), every variable id in [0, mem), reader runs ascending.
//
//pram:hotpath
func (r *Reader) decodeStepFrame(payload []byte, f *Frame) error {
	d := &decoder{buf: payload}
	f.Lane = int(d.uvarint())
	nReads := d.count(3)  // ≥ dProc + dVar + readerCount bytes each
	nWrites := d.count(3) // ≥ dProc + dVar + value bytes each
	if d.err != nil {
		return d.err
	}
	if f.Lane < 0 || f.Lane >= r.cfg.Lanes { // < 0: uvarint wrapped the int cast
		//pram:coldalloc corrupt-input error exit
		return corruptf("step frame lane %d outside [0,%d)", f.Lane, r.cfg.Lanes)
	}
	procs := r.cfg.Procs
	f.Reads = growCap(f.Reads, nReads)
	f.ReaderOff = growCap(f.ReaderOff, nReads+1)
	f.Writes = growCap(f.Writes, nWrites)
	prevProc, prevVar := int64(0), int64(0)
	for g := 0; g < nReads; g++ {
		proc := prevProc + d.varint()
		v := prevVar + d.varint()
		prevProc, prevVar = proc, v
		if d.err != nil {
			return d.err
		}
		if proc < 0 || proc >= int64(procs) {
			//pram:coldalloc corrupt-input error exit
			return corruptf("read %d names processor %d outside [0,%d)", g, proc, procs)
		}
		if v < 0 || v >= int64(r.mem) {
			//pram:coldalloc corrupt-input error exit
			return corruptf("read %d names variable %d outside [0,%d)", g, v, r.mem)
		}
		f.Reads = append(f.Reads, quorum.Request{Proc: int(proc), Var: int(v)})
		f.ReaderOff = append(f.ReaderOff, int32(len(f.ReaderProcs)))
		extra := d.count(1)
		if d.err != nil {
			return d.err
		}
		f.ReaderProcs = append(f.ReaderProcs, int32(proc))
		reader := proc
		for e := 0; e < extra; e++ {
			dv := d.uvarint()
			if d.err != nil {
				return d.err
			}
			// Bound the delta before adding so a corrupt value cannot
			// overflow the running reader id past the range check.
			if dv > uint64(procs) || reader+int64(dv) >= int64(procs) {
				//pram:coldalloc corrupt-input error exit
				return corruptf("read %d reader delta %d leaves [0,%d)", g, dv, procs)
			}
			reader += int64(dv)
			f.ReaderProcs = append(f.ReaderProcs, int32(reader))
		}
	}
	f.ReaderOff = append(f.ReaderOff, int32(len(f.ReaderProcs)))
	prevProc, prevVar = 0, 0
	for g := 0; g < nWrites; g++ {
		proc := prevProc + d.varint()
		v := prevVar + d.varint()
		prevProc, prevVar = proc, v
		val := d.varint()
		if d.err != nil {
			return d.err
		}
		if proc < 0 || proc >= int64(procs) {
			//pram:coldalloc corrupt-input error exit
			return corruptf("write %d names processor %d outside [0,%d)", g, proc, procs)
		}
		if v < 0 || v >= int64(r.mem) {
			//pram:coldalloc corrupt-input error exit
			return corruptf("write %d names variable %d outside [0,%d)", g, v, r.mem)
		}
		f.Writes = append(f.Writes, quorum.Request{Proc: int(proc), Var: int(v), Write: true, Value: model.Word(val)})
	}
	f.Costs = StepCosts{
		Time:             int64(d.uvarint()),
		Phases:           int(d.uvarint()),
		CopyAccesses:     int64(d.uvarint()),
		NetworkCycles:    int64(d.uvarint()),
		ModuleContention: int(d.uvarint()),
		ValuesHash:       d.fixed64(),
		Err:              d.byte() != 0,
	}
	return d.finish()
}

// growCap returns buf emptied with capacity for at least n more elements.
func growCap[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, 0, n)
	}
	return buf[:0]
}

// --- Replayer ------------------------------------------------------------

// Summary accumulates what a replay run saw and (in verify mode) checked.
type Summary struct {
	Steps  int64 // step frames executed
	Rounds int64 // pool rounds (== Steps on single-lane traces)
	Loads  int64 // load frames applied

	SimTime       int64 // sum of recorded per-step times, as replayed
	Phases        int64
	CopyAccesses  int64
	NetworkCycles int64
	MaxContention int

	RecordedErrSteps int64 // steps whose recorded report carried an error
	ReplayErrSteps   int64 // steps whose replayed report carried an error

	// Verify-mode results.
	Mismatches          int64
	MismatchDetail      []string // first few, for diagnostics
	FingerprintChecked  bool
	FingerprintOK       bool
	RecordedFingerprint uint64
	ReplayFingerprint   uint64
}

// ok reports whether a verify run passed.
func (s *Summary) VerifyOK() bool {
	return s.Mismatches == 0 && (!s.FingerprintChecked || s.FingerprintOK)
}

// Replayer streams a trace into freshly built machines. Open pays machine
// construction once; Step/Run then drive the engines directly with the
// recorded post-dedup batches — no program layer, no goroutine barrier, no
// sort/dedup — which is what makes n ≥ 4096 sweeps routine.
type Replayer struct {
	// Verify compares every replayed step's costs and Values hash against
	// the recorded ones and, at eof, the store fingerprint. Mismatches
	// accumulate in the Summary (capped detail strings) rather than
	// aborting the run.
	Verify bool
	// OnRound, when non-nil, observes every executed round: the aggregate
	// report and the per-lane reports (both alias machine/pool scratch).
	OnRound func(agg model.StepReport, lanes []model.StepReport)

	r         *Reader
	built     *Built
	sum       Summary
	passSteps int64 // step frames executed this pass (reset by Reset)

	// Pool-round assembly: recorded frames alias the Reader's buffers and
	// are invalidated by Next, so multi-lane rounds deep-copy each lane's
	// step into reusable arenas before executing the round.
	round     []quorum.DedupStep
	roundCost []StepCosts
	roundSet  []bool
	roundFill int
	singleRep []model.StepReport // OnRound scratch for single-lane traces
}

// Open reads a trace's header from src and builds its machines. The
// returned Replayer is positioned at the first post-header frame.
func Open(src io.Reader) (*Replayer, error) { return OpenConfigured(src, 0, 0) }

// OpenConfigured is Open with the runtime wall-clock knobs set: par is the
// interconnect router's worker count, workers the pool's executor count
// (both 0 for the defaults). Neither affects replayed results — bit-for-bit
// determinism is the router's and pool's contract.
func OpenConfigured(src io.Reader, par, workers int) (*Replayer, error) {
	r, err := NewReader(src)
	if err != nil {
		return nil, err
	}
	cfg := r.Config()
	cfg.Parallelism = par
	cfg.Workers = workers
	built, err := cfg.Build()
	if err != nil {
		return nil, err
	}
	// Cross-check the header's derived parameters against the fresh
	// build: a mismatch means the parameter derivation drifted between
	// recorder and replayer versions and every recorded cost would be
	// wrong for this machine.
	if built.Params.Mem != r.hdrMem || built.Params.M != r.hdrModules ||
		built.Params.R() != r.hdrRedundancy || built.Side != r.hdrSide {
		return nil, corruptf(
			"header derivation mismatch: trace (m=%d M=%d r=%d side=%d) vs build (m=%d M=%d r=%d side=%d)",
			r.hdrMem, r.hdrModules, r.hdrRedundancy, r.hdrSide,
			built.Params.Mem, built.Params.M, built.Params.R(), built.Side)
	}
	if fp := built.Store.Fingerprint(); fp != r.startFP {
		return nil, corruptf("start fingerprint mismatch: trace %x vs fresh store %x (store was modified before recording started?)", r.startFP, fp)
	}
	rp := &Replayer{r: r, built: built}
	if cfg.Lanes > 1 {
		rp.round = make([]quorum.DedupStep, cfg.Lanes)
		rp.roundCost = make([]StepCosts, cfg.Lanes)
		rp.roundSet = make([]bool, cfg.Lanes)
	} else {
		rp.singleRep = make([]model.StepReport, 1)
	}
	return rp, nil
}

// Config returns the trace's machine configuration.
func (rp *Replayer) Config() Config { return rp.built.Cfg }

// Built exposes the constructed machines (for drivers and benchmarks).
func (rp *Replayer) Built() *Built { return rp.built }

// Summary returns the accumulated run summary.
func (rp *Replayer) Summary() Summary { return rp.sum }

// Reset rewinds the replayer onto a fresh stream of the same trace for
// another pass, keeping the built machines (construction stays amortized)
// and the accumulated summary. The store is NOT reset: replaying a trace
// with writes twice diverges from the recorded stamps, so verified
// multi-pass runs are for read-only traces (cost verification of write
// traces still holds — costs do not depend on cell contents).
func (rp *Replayer) Reset(src io.Reader) error {
	if err := rp.r.Reset(src); err != nil {
		return err
	}
	if rp.roundSet != nil {
		clear(rp.roundSet)
	}
	rp.roundFill = 0
	rp.passSteps = 0
	return nil
}

// Step processes frames until one step (single-lane) or one full round
// (multi-lane pool trace) has executed, applying any load frames on the
// way. It returns executed=false at the eof frame (after fingerprint
// verification, when enabled) with a nil error.
//
//pram:hotpath
func (rp *Replayer) Step() (executed bool, err error) {
	for {
		f, err := rp.r.Next()
		if err != nil {
			return false, err
		}
		switch f.Kind {
		case KindLoad:
			for i, v := range f.LoadVals {
				rp.built.Store.LoadCell(f.LoadBase+i, v)
			}
			rp.sum.Loads++
		case KindStep:
			if rp.built.Pool == nil {
				rep := rp.built.Machine.ExecuteDedupStep(f.Reads, f.ReaderOff, f.ReaderProcs, f.Writes)
				rp.noteStep(&rep, &f.Costs)
				rp.sum.Rounds++
				if rp.OnRound != nil {
					rp.singleRep[0] = rep
					rp.OnRound(rep, rp.singleRep)
				}
				return true, nil
			}
			if rp.roundSet[f.Lane] {
				//pram:coldalloc corrupt-input error exit
				return false, corruptf("round records lane %d twice", f.Lane)
			}
			copyDedupStep(&rp.round[f.Lane], f)
			rp.roundCost[f.Lane] = f.Costs
			rp.roundSet[f.Lane] = true
			rp.roundFill++
		case KindBarrier:
			if rp.built.Pool == nil {
				return false, corruptf("barrier frame in a single-lane trace")
			}
			if rp.roundFill != rp.built.Cfg.Lanes {
				//pram:coldalloc corrupt-input error exit
				return false, corruptf("round barrier after %d of %d lanes", rp.roundFill, rp.built.Cfg.Lanes)
			}
			agg, lanes := rp.built.Pool.ExecuteDedupSteps(rp.round)
			for k := range lanes {
				rp.noteStep(&lanes[k], &rp.roundCost[k])
			}
			rp.sum.Rounds++
			clear(rp.roundSet)
			rp.roundFill = 0
			if rp.OnRound != nil {
				rp.OnRound(agg, lanes)
			}
			return true, nil
		case KindEOF:
			if rp.roundFill != 0 {
				//pram:coldalloc corrupt-input error exit
				return false, corruptf("eof frame inside an unfinished round (%d of %d lanes)", rp.roundFill, rp.built.Cfg.Lanes)
			}
			if f.Steps != rp.passSteps {
				//pram:coldalloc corrupt-input error exit
				return false, corruptf("eof frame counts %d steps, replayed %d", f.Steps, rp.passSteps)
			}
			if rp.Verify {
				rp.sum.FingerprintChecked = true
				rp.sum.RecordedFingerprint = f.Fingerprint
				rp.sum.ReplayFingerprint = rp.built.Store.Fingerprint()
				rp.sum.FingerprintOK = rp.sum.ReplayFingerprint == rp.sum.RecordedFingerprint
				if !rp.sum.FingerprintOK {
					//pram:coldalloc verify-mismatch reporting path, cold unless the trace already failed
					rp.mismatch(fmt.Sprintf("final store fingerprint %x, recorded %x",
						rp.sum.ReplayFingerprint, rp.sum.RecordedFingerprint))
				}
			}
			return false, nil
		}
	}
}

// Run replays every remaining frame and returns the summary. A verify
// run's result is in Summary.VerifyOK, not the error (which reports
// stream-level problems only).
func (rp *Replayer) Run() (Summary, error) {
	for {
		executed, err := rp.Step()
		if err != nil {
			return rp.sum, err
		}
		if !executed {
			return rp.sum, nil
		}
	}
}

// noteStep accumulates one replayed step and verifies it when enabled.
func (rp *Replayer) noteStep(rep *model.StepReport, recorded *StepCosts) {
	rp.sum.Steps++
	rp.passSteps++
	rp.sum.SimTime += rep.Time
	rp.sum.Phases += int64(rep.Phases)
	rp.sum.CopyAccesses += rep.CopyAccesses
	rp.sum.NetworkCycles += rep.NetworkCycles
	if rep.ModuleContention > rp.sum.MaxContention {
		rp.sum.MaxContention = rep.ModuleContention
	}
	if recorded.Err {
		rp.sum.RecordedErrSteps++
	}
	if rep.Err != nil {
		rp.sum.ReplayErrSteps++
	}
	if !rp.Verify {
		return
	}
	got := costsOf(rep)
	if got.Time != recorded.Time || got.Phases != recorded.Phases ||
		got.CopyAccesses != recorded.CopyAccesses || got.NetworkCycles != recorded.NetworkCycles ||
		got.ModuleContention != recorded.ModuleContention || got.ValuesHash != recorded.ValuesHash {
		rp.mismatch(fmt.Sprintf(
			"step %d: replayed (t=%d ph=%d cp=%d cyc=%d cont=%d vh=%x) vs recorded (t=%d ph=%d cp=%d cyc=%d cont=%d vh=%x)",
			rp.sum.Steps-1,
			got.Time, got.Phases, got.CopyAccesses, got.NetworkCycles, got.ModuleContention, got.ValuesHash,
			recorded.Time, recorded.Phases, recorded.CopyAccesses, recorded.NetworkCycles, recorded.ModuleContention, recorded.ValuesHash))
	}
}

// mismatch records a verification failure, keeping the first few details.
func (rp *Replayer) mismatch(detail string) {
	rp.sum.Mismatches++
	if len(rp.sum.MismatchDetail) < 8 {
		rp.sum.MismatchDetail = append(rp.sum.MismatchDetail, detail)
	}
}

// copyDedupStep deep-copies a step frame into a reusable round slot.
func copyDedupStep(dst *quorum.DedupStep, f *Frame) {
	dst.Reads = append(dst.Reads[:0], f.Reads...)
	dst.ReaderOff = append(dst.ReaderOff[:0], f.ReaderOff...)
	dst.ReaderProcs = append(dst.ReaderProcs[:0], f.ReaderProcs...)
	dst.Writes = append(dst.Writes[:0], f.Writes...)
}
