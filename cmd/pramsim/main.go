// Command pramsim runs a P-RAM workload on a chosen machine model and
// reports the simulated cost — the quickest way to see the paper's
// machines at work.
//
// Usage:
//
//	pramsim -backend mot2d -workload prefixsum -n 64
//	pramsim -backend all   -workload bitonicsort -n 32
//	pramsim -list
//
// Backends: ideal, mpc, dmmpc, mot2d, luccio, schuster, hashed, all.
// Workloads: treesum, prefixsum, broadcast, listrank, bitonicsort,
// matvec, permutation, hotspot.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"

	pramsim "repro"
)

func workloadByName(name string, n int, seed int64) (pramsim.Workload, bool) {
	switch strings.ToLower(name) {
	case "treesum":
		return workloads.TreeSum(n, seed), true
	case "prefixsum":
		return workloads.PrefixSum(n, seed), true
	case "broadcast":
		return workloads.Broadcast(n, 42), true
	case "listrank":
		return workloads.ListRank(n, seed), true
	case "bitonicsort":
		return workloads.BitonicSort(n, seed), true
	case "matvec":
		return workloads.MatVec(n, 8, seed), true
	case "permutation":
		return workloads.Permutation(n, seed), true
	case "hotspot":
		return workloads.HotSpot(n), true
	}
	return pramsim.Workload{}, false
}

func backendByName(name string, w pramsim.Workload, seed int64) (pramsim.Backend, bool) {
	switch strings.ToLower(name) {
	case "ideal":
		return pramsim.NewIdeal(w.Procs, w.Cells, w.Mode), true
	case "mpc":
		return pramsim.NewMPC(w.Procs, pramsim.MPCConfig{Mode: w.Mode, Seed: seed}), true
	case "dmmpc":
		return pramsim.NewDMMPC(w.Procs, pramsim.DMMPCConfig{Mode: w.Mode, Seed: seed}), true
	case "mot2d":
		return pramsim.NewMOT2D(w.Procs, pramsim.MOTConfig{Mode: w.Mode, Seed: seed}), true
	case "luccio":
		return pramsim.NewLuccio(w.Procs, pramsim.MOTConfig{Mode: w.Mode, Seed: seed}), true
	case "schuster":
		return pramsim.NewSchuster(w.Procs, pramsim.SchusterConfig{MemCells: w.Cells, Mode: w.Mode, Seed: seed}), true
	case "hashed":
		return pramsim.NewHashed(w.Procs, pramsim.HashedConfig{MemCells: w.Cells, Mode: w.Mode, Seed: seed}), true
	}
	return nil, false
}

var allBackends = []string{"ideal", "mpc", "dmmpc", "mot2d", "luccio", "schuster", "hashed"}
var allWorkloads = []string{"treesum", "prefixsum", "broadcast", "listrank",
	"bitonicsort", "matvec", "permutation", "hotspot"}

func main() {
	backend := flag.String("backend", "dmmpc", "machine model (or 'all')")
	workload := flag.String("workload", "prefixsum", "P-RAM program (or 'all')")
	n := flag.Int("n", 64, "processor count (power of two recommended)")
	seed := flag.Int64("seed", 1, "input/map seed")
	list := flag.Bool("list", false, "list backends and workloads")
	showTrace := flag.Bool("trace", false, "print per-step cost distribution after each run")
	flag.Parse()

	if *list {
		fmt.Println("backends: ", strings.Join(allBackends, ", "))
		fmt.Println("workloads:", strings.Join(allWorkloads, ", "))
		return
	}
	wNames := []string{*workload}
	if *workload == "all" {
		wNames = allWorkloads
	}
	bNames := []string{*backend}
	if *backend == "all" {
		bNames = allBackends
	}

	tb := stats.NewTable("workload", "backend", "PRAM steps", "sim time",
		"phases", "net cycles", "max module load", "wall", "ok")
	for _, wn := range wNames {
		w, ok := workloadByName(wn, *n, *seed)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q (try -list)\n", wn)
			os.Exit(1)
		}
		for _, bn := range bNames {
			b, ok := backendByName(bn, w, *seed)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown backend %q (try -list)\n", bn)
				os.Exit(1)
			}
			if b.MemSize() < w.Cells {
				tb.AddRow(w.Name, b.Name(), "-", "-", "-", "-", "-", "-", "memory too small")
				continue
			}
			var rec *trace.Recorder
			run := b
			if *showTrace {
				rec = trace.Wrap(b)
				run = rec
			}
			start := time.Now()
			rep, err := pramsim.RunWorkload(w, run)
			wall := time.Since(start).Round(time.Microsecond)
			status := "verified"
			if err != nil {
				status = err.Error()
			}
			tb.AddRow(w.Name, b.Name(), rep.Steps, rep.SimTime, rep.Phases,
				rep.NetworkCycles, rep.MaxContention, wall.String(), status)
			if rec != nil {
				fmt.Print(rec.Report())
			}
		}
	}
	fmt.Print(tb.String())
}
