// Command experiments regenerates the reproduction tables E1–E8 (one per
// claim of the paper; see DESIGN.md §4 and EXPERIMENTS.md).
//
// Usage:
//
//	experiments            # run everything
//	experiments e3 e5     # run selected experiments
//	experiments -list     # list experiment ids and titles
//	experiments -csv e14  # emit an experiment's table as CSV (sweeps)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	markdown := flag.Bool("markdown", false, "emit markdown sections (EXPERIMENTS.md source format)")
	csv := flag.Bool("csv", false, "emit each experiment's table as CSV (sweep output format)")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	exit := 0
	for _, id := range ids {
		start := time.Now()
		res, ok := experiments.Run(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			exit = 1
			continue
		}
		if *markdown {
			fmt.Println(res.Markdown())
			continue
		}
		if *csv {
			fmt.Print(res.Table.CSV())
			continue
		}
		fmt.Println(res.String())
		fmt.Printf("(%s finished in %v)\n\n", res.ID, time.Since(start).Round(time.Millisecond))
	}
	os.Exit(exit)
}
