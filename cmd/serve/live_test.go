package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/replay"
	"repro/internal/serve"
)

// TestLiveFlightReplaysBitForBit is the end-to-end flight-recorder
// acceptance: a live HTTP-driven run with an autoscaler records a script,
// a trace and a flight dump; rebuilding the deployment from the script
// meta and replaying with a SHADOW autoscaler (what `serve replay -flight`
// does) reproduces the flight dump — decisions, resizes, rejects and all —
// byte for byte, along with the trace.
func TestLiveFlightReplaysBitForBit(t *testing.T) {
	const tenantSpec, arrivalSpec, autoscaleSpec = "uniform,hotspot", "external", "1:2:4"
	sf := &sharedFlags{procs: 8, engines: 1, queue: 4, seed: 3, wseed: 42, mode: "crcw"}
	arr, err := parseArrival(arrivalSpec)
	if err != nil {
		t.Fatal(err)
	}
	tcs, err := parseTenants(tenantSpec, sf, arr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := serve.Config{Tenants: tcs, Engines: sf.engines, Mode: 1, Seed: sf.seed, QueueCap: sf.queue}
	if err := sf.applyShared(&cfg); err != nil {
		t.Fatal(err)
	}
	mode, err := parseMode(sf.mode)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = mode
	s, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var trace, script bytes.Buffer
	if err := s.StartTrace(&trace); err != nil {
		t.Fatal(err)
	}
	rec, err := replay.NewScriptRecorder(&script, metaLine(sf, tenantSpec, arrivalSpec, s.Engines(), autoscaleSpec))
	if err != nil {
		t.Fatal(err)
	}
	acfg, err := parseAutoscale(autoscaleSpec)
	if err != nil {
		t.Fatal(err)
	}
	h := serve.NewHTTPServer(s, serve.HTTPOptions{
		Script:     rec,
		Autoscaler: serve.NewAutoscaler(s, acfg),
	})
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()

	// Saturating submissions force rejections → the autoscaler grows →
	// then silence shrinks it back: the flight dump gets rounds, submits,
	// rejects, decisions and resizes in both directions.
	for r := 0; r < 40; r++ {
		if r < 20 {
			tn := "t0-uniform"
			if r%3 == 0 {
				tn = "t1-hotspot"
			}
			resp, err := http.Post(fmt.Sprintf("%s/submit?tenant=%s&steps=3", ts.URL, tn), "", nil)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
		h.Tick()
	}
	if err := h.Shutdown(); err != nil {
		t.Fatal(err)
	}
	var liveFlight bytes.Buffer
	if err := s.WriteFlight(&liveFlight); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Resizes; got == 0 {
		t.Fatalf("live run performed no resizes — the scenario no longer exercises decisions")
	}

	// Replay exactly as cmdReplay does: deployment from meta, shadow
	// autoscaler from the recorded policy.
	sc, err := replay.ReadScript(bytes.NewReader(script.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rcfg, err := configFromMeta(sc.Meta, false)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := serve.NewServer(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	var repTrace bytes.Buffer
	if err := rep.StartTrace(&repTrace); err != nil {
		t.Fatal(err)
	}
	spec, err := metaValue(sc.Meta, "autoscale")
	if err != nil {
		t.Fatal(err)
	}
	if spec != autoscaleSpec {
		t.Fatalf("autoscale meta %q, want %q", spec, autoscaleSpec)
	}
	racfg, err := parseAutoscale(spec)
	if err != nil {
		t.Fatal(err)
	}
	shadow := serve.NewAutoscaler(rep, racfg)
	rep.PlayScriptObserved(sc.Events, sc.Rounds, func() { shadow.Observe() })
	if err := rep.StopTrace(); err != nil {
		t.Fatal(err)
	}

	var repFlight bytes.Buffer
	if err := rep.WriteFlight(&repFlight); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveFlight.Bytes(), repFlight.Bytes()) {
		t.Errorf("flight dump diverged:\nlive:\n%s\nreplay:\n%s", liveFlight.String(), repFlight.String())
	}
	if !bytes.Equal(trace.Bytes(), repTrace.Bytes()) {
		t.Errorf("re-recorded trace differs from live capture (%d vs %d bytes)", trace.Len(), repTrace.Len())
	}
	if fp := rep.Fingerprint(); fp != sc.Fingerprint {
		t.Errorf("replay fingerprint %016x != recorded %016x", fp, sc.Fingerprint)
	}
}
