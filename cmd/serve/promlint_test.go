package main

import (
	"strings"
	"testing"

	"repro/internal/prom"
	"repro/internal/replay"
	"repro/internal/serve"
)

// TestLintExpositionGood: a well-formed exposition with a labeled histogram
// passes clean.
func TestLintExpositionGood(t *testing.T) {
	good := `# HELP demo_total a counter
# TYPE demo_total counter
demo_total{tenant="a \"x\"\n\\y"} 3
# HELP lat latency
# TYPE lat histogram
lat_bucket{tenant="a",le="1"} 1
lat_bucket{tenant="a",le="2"} 4
lat_bucket{tenant="a",le="+Inf"} 5
lat_sum{tenant="a"} 9.5
lat_count{tenant="a"} 5
# HELP g a gauge
# TYPE g gauge
g 0.25 1700000000000
`
	problems, families, samples := lintExposition([]byte(good))
	if len(problems) != 0 {
		t.Errorf("clean exposition flagged: %v", problems)
	}
	if families != 3 || samples != 7 {
		t.Errorf("families=%d samples=%d, want 3/7", families, samples)
	}
}

// TestLintExpositionBad: each malformation is caught with a problem that
// names the defect.
func TestLintExpositionBad(t *testing.T) {
	for _, tc := range []struct {
		name, in, want string
	}{
		{"no type", "x_total 1\n", "no preceding # TYPE"},
		{"bad kind", "# TYPE x_total counterz\nx_total 1\n", "unknown kind"},
		{"counter name", "# HELP x c\n# TYPE x counter\nx 1\n", "should end in _total"},
		{"dup series", "# HELP x_total c\n# TYPE x_total counter\nx_total{a=\"1\"} 1\nx_total{a=\"1\"} 2\n", "duplicate series"},
		{"bad escape", "# HELP x_total c\n# TYPE x_total counter\nx_total{a=\"\\t\"} 1\n", "illegal escape"},
		{"unquoted", "# HELP x_total c\n# TYPE x_total counter\nx_total{a=1} 1\n", "not quoted"},
		{"bad value", "# HELP x_total c\n# TYPE x_total counter\nx_total one\n", "bad sample value"},
		{"no help", "# TYPE x_total counter\nx_total 1\n", "no HELP"},
		{"help after", "x_total 1\n# HELP x_total c\n# TYPE x_total counter\n", "after its samples"},
		{"hist bare sample", "# HELP h l\n# TYPE h histogram\nh 1\n", "must be h_bucket"},
		{"hist no inf", "# HELP h l\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "want +Inf"},
		{"hist not cumulative", "# HELP h l\n# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n", "not cumulative"},
		{"hist le order", "# HELP h l\n# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n", "not above"},
		{"hist count mismatch", "# HELP h l\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n", "_count 3 != +Inf bucket 2"},
		{"hist no sum", "# HELP h l\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n", "missing _sum"},
	} {
		problems, _, _ := lintExposition([]byte(tc.in))
		found := false
		for _, p := range problems {
			if strings.Contains(p, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: problems %v do not mention %q", tc.name, problems, tc.want)
		}
	}
}

// TestLintRealExposition is the self-check CI relies on: the exposition the
// serving registry actually renders — counters, gauges, per-tenant and
// server-wide histograms, hostile tenant names — lints clean.
func TestLintRealExposition(t *testing.T) {
	s, err := serve.NewServer(serve.Config{
		Tenants: []serve.TenantConfig{
			{Name: `evil"t\en{ant}` + "\n0", Band: 0, Procs: 8, Arrival: serve.Arrival{Window: 2},
				Source: serve.NewPatternSource(replay.Uniform, 8, 6, 1)},
			{Name: "plain", Band: 1, Procs: 8, Arrival: serve.Arrival{Window: 2},
				Source: serve.NewPatternSource(replay.Hotspot, 8, 6, 2)},
		},
		Bands: 2, Engines: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ServeAll(100); err != nil {
		t.Fatal(err)
	}
	var reg prom.Registry
	s.Metrics(&reg)
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	problems, families, samples := lintExposition([]byte(sb.String()))
	if len(problems) != 0 {
		t.Errorf("real exposition flagged:\n%s\nproblems: %v", sb.String(), problems)
	}
	if families < 20 || samples < 40 {
		t.Errorf("families=%d samples=%d — exposition suspiciously small", families, samples)
	}
	for _, fam := range []string{
		"pramsim_serve_tenant_step_time_bucket",
		"pramsim_serve_tenant_queue_wait_rounds_count",
		"pramsim_serve_round_active_shards_bucket",
		"pramsim_serve_round_makespan_sum",
		"pramsim_serve_round_work_count",
		"pramsim_serve_step_dedup_requests_bucket",
	} {
		if !strings.Contains(sb.String(), fam) {
			t.Errorf("exposition missing histogram series %s", fam)
		}
	}
}
